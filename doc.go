// Package otherworld is a complete Go reproduction of "Otherworld: Giving
// Applications a Chance to Survive OS Kernel Crashes" (Depoutovitch &
// Stumm, EuroSys 2010): a simulated machine and monolithic kernel, a
// resident crash kernel that resurrects applications from the dead kernel's
// raw memory image, the paper's five case-study applications with their
// crash procedures, the Rio/Nooks fault injector, and the full evaluation
// harness reproducing every table in the paper.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/. Start with README.md, DESIGN.md and EXPERIMENTS.md.
package otherworld
