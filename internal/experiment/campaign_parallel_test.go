package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"otherworld/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runWidthCampaign runs the same small real campaign at one pool width and
// returns its rows plus the registry snapshot.
func runWidthCampaign(width int) ([]Table5Row, *CampaignStats, *metrics.Snapshot) {
	cfg := DefaultCampaign(2, 20260805)
	cfg.Apps = []string{"vi"}
	cfg.CampaignWorkers = width
	cfg.Metrics = metrics.NewRegistry()
	rows, stats := RunTable5Campaign(cfg)
	return rows, stats, cfg.Metrics.Snapshot()
}

// TestCampaignDeterminismAcrossWidths is the acceptance gate for the
// campaign pool: a real (not stubbed) campaign run at CampaignWorkers=1 and
// =8 must produce field-for-field identical Table 5 rows, identical failure
// attributions, an identical metrics snapshot fingerprint and identical
// schedule statistics — and the width-1 rendering is pinned against a golden
// so drift is caught even when both widths drift together.
func TestCampaignDeterminismAcrossWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign in -short mode")
	}
	rows1, stats1, snap1 := runWidthCampaign(1)
	rows8, stats8, snap8 := runWidthCampaign(8)

	if !reflect.DeepEqual(rows1, rows8) {
		t.Fatalf("campaign rows depend on pool width:\nwidth 1: %+v\nwidth 8: %+v", rows1, rows8)
	}
	if snap1.Fingerprint() != snap8.Fingerprint() {
		t.Fatalf("metrics snapshot depends on pool width:\n%s\nvs\n%s",
			snap1.Fingerprint(), snap8.Fingerprint())
	}
	// Everything in CampaignStats except the live width is modeled.
	if stats1.Experiments != stats8.Experiments ||
		stats1.TotalWork != stats8.TotalWork ||
		stats1.SerialMakespan != stats8.SerialMakespan ||
		stats1.Makespan != stats8.Makespan ||
		stats1.Occupancy != stats8.Occupancy {
		t.Fatalf("schedule stats depend on pool width:\n%+v\nvs\n%+v", stats1, stats8)
	}
	if stats1.Workers != 1 || stats8.Workers != 8 {
		t.Fatalf("live widths = %d/%d, want 1/8", stats1.Workers, stats8.Workers)
	}

	var b strings.Builder
	b.WriteString(RenderTable5(rows1))
	for _, r := range TopReasons(rows1) {
		b.WriteString(r + "\n")
	}
	fmt.Fprintf(&b, "experiments=%d totalwork=%v serial=%v makespan@%dw=%v occupancy=%.4f\n",
		stats1.Experiments, stats1.TotalWork, stats1.SerialMakespan,
		CanonicalCampaignWorkers, stats1.Makespan, stats1.Occupancy)
	b.WriteString(snap1.Fingerprint())
	got := b.String()

	golden := filepath.Join("testdata", "campaign_width.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("campaign output drifted from golden (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// stubResultForSeed is a pure function of the experiment seed, covering
// every outcome the tally distinguishes — including discarded no-fault runs
// (which exercise the quota stop point) and attributed failures.
func stubResultForSeed(seed int64) Result {
	h := seed
	if h < 0 {
		h = -h
	}
	d := time.Duration(1+h%13) * time.Second
	switch h % 7 {
	case 0, 1:
		return Result{Outcome: OutcomeSuccess, AckedOps: int(h%50) + 1,
			Interruption: d / 2, ParallelInterruption: d / 4, Duration: d}
	case 2:
		return Result{Outcome: OutcomeNoKernelFault,
			Detail:   newDetail(StageNoFault, "", "injected faults never manifested", nil, nil),
			Duration: d}
	case 3:
		return Result{Outcome: OutcomeBootFailure,
			Detail:   newDetail(StageTransfer, "", "no watchdog", nil, nil),
			Duration: d}
	case 4:
		return Result{Outcome: OutcomeResurrectFailure, StructCorruption: h%14 == 4,
			Detail:   newDetail(StageResurrect, "page-copy", "bad frame 0x1a2b", nil, nil),
			Duration: d}
	default:
		return Result{Outcome: OutcomeDataCorruption,
			Detail:   newDetail(StageWorkload, "", "payload mismatch", nil, nil),
			Duration: d}
	}
}

// TestCampaignStubWidthSweep sweeps the pool width over a stubbed campaign
// whose per-seed outcomes cover discards, every failure mode and variable
// durations. Rows, attributions and metrics fingerprints must match the
// width-1 baseline exactly at every width.
func TestCampaignStubWidthSweep(t *testing.T) {
	run := func(width int) ([]Table5Row, *CampaignStats, *metrics.Snapshot) {
		cfg := DefaultCampaign(25, 777)
		cfg.Apps = []string{"vi", "JOE"}
		cfg.CampaignWorkers = width
		cfg.Metrics = metrics.NewRegistry()
		cfg.runExperiment = func(ecfg Config) Result { return stubResultForSeed(ecfg.Seed) }
		rows, stats := RunTable5Campaign(cfg)
		return rows, stats, cfg.Metrics.Snapshot()
	}
	baseRows, baseStats, baseSnap := run(1)
	if baseStats.Experiments == 0 || baseRows[0].Discarded == 0 {
		t.Fatalf("stub sweep exercised nothing: %+v", baseRows)
	}
	for _, width := range []int{2, 3, 8} {
		rows, stats, snap := run(width)
		if !reflect.DeepEqual(rows, baseRows) {
			t.Errorf("width %d: rows diverged from width 1:\n%+v\nvs\n%+v", width, rows, baseRows)
		}
		if snap.Fingerprint() != baseSnap.Fingerprint() {
			t.Errorf("width %d: metrics fingerprint diverged:\n%s\nvs\n%s",
				width, snap.Fingerprint(), baseSnap.Fingerprint())
		}
		if stats.Experiments != baseStats.Experiments || stats.TotalWork != baseStats.TotalWork {
			t.Errorf("width %d: committed work diverged: %+v vs %+v", width, stats, baseStats)
		}
	}
}

// TestCampaignParallelSpeedup pins the schedule model's headline number:
// with uniform experiment durations the pool at 4 workers must model at
// least a 2x campaign speedup (it models exactly 4x here), and wider pools
// never model a slower campaign.
func TestCampaignParallelSpeedup(t *testing.T) {
	const span = 7 * time.Second
	cfg := DefaultCampaign(8, 1)
	cfg.Apps = []string{"vi"}
	cfg.SkipProtected = true
	cfg.CampaignWorkers = 4
	cfg.Metrics = metrics.NewRegistry()
	cfg.runExperiment = func(Config) Result {
		return Result{Outcome: OutcomeSuccess, AckedOps: 1, Duration: span}
	}
	_, stats := RunTable5Campaign(cfg)
	if stats.Experiments != 8 || stats.TotalWork != 8*span {
		t.Fatalf("stats = %+v, want 8 committed experiments of %v", stats, span)
	}
	if stats.SerialMakespan != 8*span {
		t.Fatalf("serial makespan = %v, want %v", stats.SerialMakespan, 8*span)
	}
	if got := stats.SpeedupAt(4); got < 2 {
		t.Fatalf("modeled speedup at 4 workers = %.2f, want >= 2", got)
	}
	if stats.Occupancy != 1.0 {
		t.Fatalf("uniform spans should pack perfectly, occupancy = %v", stats.Occupancy)
	}
	prev := stats.ScheduleAt(1)
	for _, w := range []int{2, 4, 8} {
		cur := stats.ScheduleAt(w)
		if cur > prev {
			t.Fatalf("ScheduleAt(%d) = %v exceeds narrower pool's %v", w, cur, prev)
		}
		prev = cur
	}
	// The published gauges quote the canonical width regardless of the live
	// pool size.
	snap := cfg.Metrics.Snapshot()
	occ := snap.Get("campaign_pool_occupancy",
		metrics.Labels{"workers": fmt.Sprint(CanonicalCampaignWorkers)})
	if occ == nil || occ.Gauge != 1.0 {
		t.Fatalf("campaign_pool_occupancy gauge = %+v, want 1.0 at canonical width", occ)
	}
}
