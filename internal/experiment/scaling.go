package experiment

import (
	"fmt"
	"strings"
	"time"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/resurrect"
)

// Footprint scaling: the paper's Section 4 argument quantified — the data
// the crash kernel must read grows with the process footprint but stays a
// vanishing fraction of the address space ("even for an application with
// the largest possible memory footprint on a 32-bit system — 3 GB, the
// amount of data retrieved will be approximately 5 MB ... less than 0.13%").

// scaleProg touches a configurable number of pages.
type scaleProg struct{ pages int }

const scaleVA = 0x1000000

func (s scaleProg) Boot(env *kernel.Env) error {
	if err := env.MapAnon(scaleVA, uint64(s.pages)*phys.PageSize, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	for i := 0; i < s.pages; i++ {
		if err := env.WriteU64(scaleVA+uint64(i)*phys.PageSize, uint64(i)); err != nil {
			return err
		}
	}
	return nil
}

func (s scaleProg) Step(env *kernel.Env) error      { return kernel.ErrYield }
func (s scaleProg) Rehydrate(env *kernel.Env) error { return nil }

// ScaleSizes are the footprints swept, in pages.
var ScaleSizes = []int{256, 1024, 4096, 16384}

func init() {
	for _, pages := range ScaleSizes {
		p := pages
		kernel.RegisterProgram(fmt.Sprintf("scale-%d", p), func() kernel.Program { return scaleProg{pages: p} })
	}
}

// ScalingRow is one footprint's resurrection accounting.
type ScalingRow struct {
	// FootprintMB is the resident application size.
	FootprintMB float64
	// KernelKB is the main-kernel data the crash kernel read.
	KernelKB float64
	// PageTableFraction of KernelKB.
	PageTableFraction float64
	// FractionOfFootprint is kernel data over footprint — the paper's
	// wild-write exposure metric.
	FractionOfFootprint float64
	// ResurrectionTime is the virtual time the pass took.
	ResurrectionTime time.Duration
}

// MeasureScaling resurrects one process per footprint and reports how the
// crash kernel's read set grows.
func MeasureScaling(seed int64, mapPages bool) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(ScaleSizes))
	for _, pages := range ScaleSizes {
		opts := core.DefaultOptions()
		opts.HW = hw.Config{MemoryBytes: 512 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
		opts.CrashRegionMB = 16
		opts.Seed = seed
		opts.MapPagesResurrection = mapPages
		m, err := core.NewMachine(opts)
		if err != nil {
			return nil, err
		}
		if _, err := m.Start("scale", fmt.Sprintf("scale-%d", pages)); err != nil {
			return nil, err
		}
		if err := m.K.InjectOops("scaling"); err == nil {
			return nil, fmt.Errorf("no panic")
		}
		out, err := m.HandleFailure()
		if err != nil {
			return nil, err
		}
		if out.Result != core.ResultRecovered {
			return nil, fmt.Errorf("transfer failed: %s", out.Transfer.Reason)
		}
		pr := out.Report.Procs[0]
		if pr.Outcome != resurrect.OutcomeContinued {
			return nil, fmt.Errorf("footprint %d pages: %v (%v)", pages, pr.Outcome, pr.Err)
		}
		acct := out.Report.Acct
		footprint := float64(pages) * phys.PageSize
		rows = append(rows, ScalingRow{
			FootprintMB:         footprint / (1 << 20),
			KernelKB:            float64(acct.KernelDataBytes()) / 1024,
			PageTableFraction:   acct.PageTableFraction(),
			FractionOfFootprint: float64(acct.KernelDataBytes()) / footprint,
			ResurrectionTime:    out.Report.Duration,
		})
	}
	return rows, nil
}

// RenderScaling formats the sweep.
func RenderScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %13s %22s %14s\n",
		"Footprint", "Kernel data", "Page tables", "Kernel data/footprint", "Resurrection")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.0f MB %9.0f KB %12.0f%% %21.3f%% %13.0fms\n",
			r.FootprintMB, r.KernelKB, 100*r.PageTableFraction,
			100*r.FractionOfFootprint, float64(r.ResurrectionTime.Milliseconds()))
	}
	return b.String()
}
