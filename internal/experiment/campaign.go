package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"otherworld/internal/kernel"
)

// Table5Row aggregates a campaign for one application into the paper's
// Table 5 columns.
type Table5Row struct {
	App string
	// N is the number of experiments that manifested a kernel fault (the
	// paper observes 400 per application).
	N int
	// Discarded counts injections that never caused a kernel failure.
	Discarded int
	// Success, BootFailure, ResurrectFailure and CorruptNoProt are
	// fractions of N from the unprotected campaign.
	Success       float64
	BootFailure   float64
	ResurrectFail float64
	CorruptNoProt float64
	// CorruptProt is the corruption fraction from the protected campaign
	// (Table 5's "with user space protected" sub-column).
	CorruptProt float64
	// ProtN is the protected campaign's faulted-experiment count.
	ProtN int
	// StructCorrupt counts resurrection failures caused by detected
	// main-kernel record corruption (the "3 of 2000" statistic).
	StructCorrupt int
	// Reasons tallies boot-failure transfer reasons for diagnostics.
	Reasons map[string]int
}

// CampaignConfig parameterizes a Table 5 campaign.
type CampaignConfig struct {
	// Apps lists the applications to test (AppNames by default).
	Apps []string
	// PerApp is the number of faulted experiments per application (the
	// paper: 400).
	PerApp int
	// Seed bases the replayable experiment seeds.
	Seed int64
	// Hardening selects the Section 6 fixes; the ablation flips this.
	Hardening kernel.Hardening
	// VerifyCRC enables record checksums (the Section 4 ablation flips
	// this).
	VerifyCRC bool
	// Workers bounds parallelism (NumCPU by default).
	Workers int
	// SkipProtected skips the protected-mode corruption sub-campaign.
	SkipProtected bool
	// MemoryMB sizes experiment machines.
	MemoryMB int
}

// DefaultCampaign returns the paper's campaign shape scaled by perApp.
func DefaultCampaign(perApp int, seed int64) CampaignConfig {
	return CampaignConfig{
		Apps:      AppNames,
		PerApp:    perApp,
		Seed:      seed,
		Hardening: kernel.FullHardening(),
		VerifyCRC: true,
		MemoryMB:  256,
	}
}

// tally is one campaign pass's raw counts.
type tally struct {
	n, discarded                      int
	success, boot, resurrect, corrupt int
	structCorrupt                     int
	reasons                           map[string]int
}

// runCampaignPass collects `want` faulted experiments for one app.
func runCampaignPass(cfg CampaignConfig, app string, protection bool, want int, seedSalt int64) tally {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > want {
		workers = want
	}
	if workers < 1 {
		workers = 1
	}

	t := tally{reasons: make(map[string]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Generous attempt budget: ~20% of runs are expected to be no-fault.
	attempts := want * 3
	work := make(chan int64, attempts)
	for i := 0; i < attempts; i++ {
		work <- cfg.Seed + seedSalt + int64(i)*7919
	}
	close(work)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				mu.Lock()
				if t.n >= want {
					mu.Unlock()
					return
				}
				mu.Unlock()

				ecfg := DefaultConfig(app, seed)
				ecfg.Protection = protection
				ecfg.Hardening = cfg.Hardening
				ecfg.VerifyCRC = cfg.VerifyCRC
				if cfg.MemoryMB > 0 {
					ecfg.MemoryMB = cfg.MemoryMB
				}
				res := Run(ecfg)

				mu.Lock()
				if res.Outcome == OutcomeNoKernelFault {
					t.discarded++
					mu.Unlock()
					continue
				}
				if t.n >= want {
					mu.Unlock()
					return
				}
				t.n++
				switch res.Outcome {
				case OutcomeSuccess:
					t.success++
				case OutcomeBootFailure:
					t.boot++
					t.reasons[res.TransferReason]++
				case OutcomeResurrectFailure:
					t.resurrect++
					if res.StructCorruption {
						t.structCorrupt++
					}
				case OutcomeDataCorruption:
					t.corrupt++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return t
}

// RunTable5 runs the full Table 5 campaign: an unprotected pass providing
// the success/boot-failure/resurrect-failure/corruption columns and a
// protected pass providing the protected-corruption sub-column.
func RunTable5(cfg CampaignConfig) []Table5Row {
	if len(cfg.Apps) == 0 {
		cfg.Apps = AppNames
	}
	rows := make([]Table5Row, 0, len(cfg.Apps))
	for i, app := range cfg.Apps {
		base := runCampaignPass(cfg, app, false, cfg.PerApp, int64(i)*1_000_000)
		row := Table5Row{
			App:           app,
			N:             base.n,
			Discarded:     base.discarded,
			StructCorrupt: base.structCorrupt,
			Reasons:       base.reasons,
		}
		if base.n > 0 {
			row.Success = float64(base.success) / float64(base.n)
			row.BootFailure = float64(base.boot) / float64(base.n)
			row.ResurrectFail = float64(base.resurrect) / float64(base.n)
			row.CorruptNoProt = float64(base.corrupt) / float64(base.n)
		}
		if !cfg.SkipProtected {
			prot := runCampaignPass(cfg, app, true, cfg.PerApp, int64(i)*1_000_000+500_000)
			row.ProtN = prot.n
			if prot.n > 0 {
				row.CorruptProt = float64(prot.corrupt) / float64(prot.n)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable5 formats campaign rows like the paper's Table 5.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %13s %17s %21s %31s\n",
		"Application", "Successful", "Failure to boot", "Failure to resurrect", "Data corruption with/without")
	fmt.Fprintf(&b, "%-11s %13s %17s %21s %31s\n",
		"", "resurrection", "the crash kernel", "application", "user space protected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %12.2f%% %16.2f%% %20.2f%% %14.2f%% / %.2f%%\n",
			r.App, 100*r.Success, 100*r.BootFailure, 100*r.ResurrectFail,
			100*r.CorruptProt, 100*r.CorruptNoProt)
	}
	return b.String()
}

// Totals summarizes a campaign: total faulted runs, discarded runs and the
// kernel-structure-corruption count the paper reports in prose.
func Totals(rows []Table5Row) (faulted, discarded, structCorrupt int) {
	for _, r := range rows {
		faulted += r.N
		discarded += r.Discarded
		structCorrupt += r.StructCorrupt
	}
	return faulted, discarded, structCorrupt
}

// TopReasons returns boot-failure reasons sorted by frequency.
func TopReasons(rows []Table5Row) []string {
	counts := make(map[string]int)
	for _, r := range rows {
		for reason, n := range r.Reasons {
			counts[reason] += n
		}
	}
	out := make([]string, 0, len(counts))
	for reason, n := range counts {
		out = append(out, fmt.Sprintf("%4dx %s", n, reason))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out
}
