package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"otherworld/internal/core"
	"otherworld/internal/kernel"
	"otherworld/internal/metrics"
	"otherworld/internal/resurrect"
	"otherworld/internal/spans"
)

// Table5Row aggregates a campaign for one application into the paper's
// Table 5 columns.
type Table5Row struct {
	App string
	// N is the number of experiments that manifested a kernel fault (the
	// paper observes 400 per application).
	N int
	// Discarded counts injections that never caused a kernel failure.
	Discarded int
	// Success, BootFailure, ResurrectFailure and CorruptNoProt are
	// fractions of N from the unprotected campaign.
	Success       float64
	BootFailure   float64
	ResurrectFail float64
	CorruptNoProt float64
	// CorruptProt is the corruption fraction from the protected campaign
	// (Table 5's "with user space protected" sub-column).
	CorruptProt float64
	// ProtN is the protected campaign's faulted-experiment count.
	ProtN int
	// StructCorrupt counts resurrection failures caused by detected
	// main-kernel record corruption (the "3 of 2000" statistic).
	StructCorrupt int
	// Shortfall is how many faulted experiments short of the requested
	// count the unprotected pass came (0 when the attempt budget
	// sufficed); the fractions above are then over fewer runs than asked.
	Shortfall int
	// ProtShortfall is the protected pass's shortfall.
	ProtShortfall int
	// MeanInterruption is the mean serial-model outage over the
	// unprotected pass's successful recoveries (zero if none succeeded).
	MeanInterruption time.Duration
	// MeanParallelInterruption is the same mean under the parallel
	// schedule model at resurrect.CanonicalWorkers.
	MeanParallelInterruption time.Duration
	// P50/P95/P99 Interruption are nearest-rank percentiles of the
	// serial-model outage over the same successful recoveries — the
	// distribution behind MeanInterruption (zero when none succeeded).
	P50Interruption, P95Interruption, P99Interruption time.Duration
	// The same percentiles under the parallel schedule model at
	// resurrect.CanonicalWorkers.
	P50ParallelInterruption, P95ParallelInterruption, P99ParallelInterruption time.Duration
	// FirstTouchSamples counts demand-fault stalls observed across the
	// unprotected pass's successful recoveries (lazy campaigns only); the
	// percentiles below summarize them.
	FirstTouchSamples int
	P50FirstTouch, P95FirstTouch, P99FirstTouch time.Duration
	// Attributions tallies every non-success failure mode, aggregated by
	// structured attribution (stage, resurrection phase, panic kind,
	// normalized reason) and sorted most-frequent first.
	Attributions []AttributionCount
	// DataChecked counts unprotected-pass runs whose driver audited the
	// application's on-disk state after the crash; DataViolations of them
	// broke a recovery invariant — the "data survived" column for apps with
	// a platter audit (zero for apps without one).
	DataChecked    int
	DataViolations int
}

// CampaignConfig parameterizes a Table 5 campaign.
type CampaignConfig struct {
	// Apps lists the applications to test (AppNames by default).
	Apps []string
	// PerApp is the number of faulted experiments per application (the
	// paper: 400).
	PerApp int
	// Seed bases the replayable experiment seeds.
	Seed int64
	// Hardening selects the Section 6 fixes; the ablation flips this.
	Hardening kernel.Hardening
	// VerifyCRC enables record checksums (the Section 4 ablation flips
	// this).
	VerifyCRC bool
	// CampaignWorkers bounds campaign-level parallelism: how many whole
	// experiments run concurrently (0 falls back to Workers, then NumCPU).
	// Every tallied result, metrics increment and progress tick is
	// bit-identical at any width: the pool speculates ahead but commits
	// strictly in seed order.
	CampaignWorkers int
	// Workers is the older name for the same knob, kept for callers that
	// predate CampaignWorkers; it applies only when CampaignWorkers is 0.
	Workers int
	// ResurrectWorkers is the per-experiment resurrection pipeline width
	// (0 = NumCPU). It only changes each experiment's modeled parallel
	// interruption; every tallied outcome is identical at any width.
	ResurrectWorkers int
	// LazyInstall runs every experiment with the demand-paged resurrection
	// install (resume at context install, validated copy-on-access pages).
	LazyInstall bool
	// Stream runs every experiment through the streaming resurrection pass
	// (tier admission + pipelined install commit).
	Stream bool
	// IndexSlots sizes every experiment kernel's candidate index (0 = off).
	IndexSlots int
	// DiskCrash runs every experiment with the block-layer crash model.
	DiskCrash bool
	// Baseline replaces resurrection with a cold reboot plus application
	// restart in every experiment (the no-Otherworld control).
	Baseline bool
	// SkipProtected skips the protected-mode corruption sub-campaign.
	SkipProtected bool
	// MemoryMB sizes experiment machines.
	MemoryMB int
	// Progress, when set, is called after every finished experiment (from
	// the collecting goroutine's lock, so it must be quick) — the live
	// campaign ticker in cmd/owcampaign.
	Progress func(ProgressUpdate)
	// Metrics, when set, receives per-app/per-pass outcome and fault-kind
	// counters. Increments happen under the tally lock exactly where the
	// tallies themselves do, so the registry mirrors the rows at any
	// Workers/ResurrectWorkers setting.
	Metrics *metrics.Registry

	// runExperiment substitutes the single-experiment runner in tests;
	// nil means Run.
	runExperiment func(Config) Result
}

// ProgressUpdate is one live campaign progress tick.
type ProgressUpdate struct {
	App string
	// Protected says which pass is running.
	Protected bool
	// Faulted / Want is the pass's progress; Discarded counts no-fault
	// runs thrown away so far; Attempted counts all finished runs.
	Faulted, Want, Discarded, Attempted int
}

// DefaultCampaign returns the paper's campaign shape scaled by perApp.
func DefaultCampaign(perApp int, seed int64) CampaignConfig {
	return CampaignConfig{
		Apps:      AppNames,
		PerApp:    perApp,
		Seed:      seed,
		Hardening: kernel.FullHardening(),
		VerifyCRC: true,
		MemoryMB:  256,
	}
}

// tally is one campaign pass's raw counts.
type tally struct {
	n, discarded                      int
	success, boot, resurrect, corrupt int
	structCorrupt                     int
	dataChecked, dataViolations       int
	attribs                           map[Attribution]int
	// interruption sums the serial/parallel-model outages over successful
	// recoveries, for the Table 5 mean-interruption columns.
	interruption, parInterruption time.Duration
	// interruptions / parInterruptions keep the per-recovery samples behind
	// those sums, in commit order, for the percentile columns; firstTouch
	// accumulates every demand-fault stall (lazy campaigns only).
	interruptions, parInterruptions []time.Duration
	firstTouch                      []time.Duration
}

// sortedAttributions flattens the tally's attribution map into a
// deterministic slice: most frequent first, ties broken lexicographically.
func (t *tally) sortedAttributions() []AttributionCount {
	out := make([]AttributionCount, 0, len(t.attribs))
	for a, n := range t.attribs {
		out = append(out, AttributionCount{Attribution: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Attribution.String() < out[j].Attribution.String()
	})
	return out
}

// passSeedSalt gives each (application, pass) combination its own seed
// space. The salt occupies the high bits: a pass scans at most
// 3*PerApp seeds spaced 7919 apart, so passes stay provably disjoint as
// long as that span is below 2^44 (PerApp under ~700 billion — any
// realistic campaign). The old additive salts (i*1_000_000, +500_000) were
// smaller than a pass's span and made passes overlap, silently correlating
// the protected and unprotected campaigns.
func passSeedSalt(appIdx, pass, passCount int) int64 {
	return (int64(appIdx)*int64(passCount) + int64(pass) + 1) << 44
}

// campaignWorkers resolves the effective campaign pool width.
func (cfg CampaignConfig) campaignWorkers() int {
	w := cfg.CampaignWorkers
	if w <= 0 {
		w = cfg.Workers
	}
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return w
}

// runCampaignPass collects `want` faulted experiments for one app. It
// returns the pass tally plus the modeled duration of every committed
// attempt, in commit order, for the pool schedule model.
//
// Determinism at any width: workers execute seeds speculatively, but a
// finished experiment parks in its seed-indexed slot until every earlier
// seed has been tallied. A commit cursor under the pass mutex then folds
// slots in strict seed order and stops the moment the faulted-run quota is
// met — exactly where a serial loop would have stopped. The committed
// prefix (and with it every tally, metrics increment and progress tick) is
// therefore a pure function of the seed; speculative runs past the stop
// point are dropped unobserved. A bounded window keeps workers from racing
// arbitrarily far ahead of the commit cursor.
func runCampaignPass(cfg CampaignConfig, app string, protection bool, want int, seedSalt int64) (tally, []time.Duration) {
	workers := cfg.campaignWorkers()
	if workers > want {
		workers = want
	}
	if workers < 1 {
		workers = 1
	}

	t := tally{attribs: make(map[Attribution]int)}
	passName := "unprotected"
	if protection {
		passName = "protected"
	}
	runOne := cfg.runExperiment
	if runOne == nil {
		runOne = Run
	}
	// Generous attempt budget: ~20% of runs are expected to be no-fault.
	attempts := want * 3
	window := workers * 2
	if window < 8 {
		window = 8
	}

	type slot struct {
		res  Result
		done bool
	}
	var (
		slots     = make([]slot, attempts)
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		next      int // next seed index to hand to a worker
		commit    int // next seed index to tally
		attempted int // committed attempts (faulted + discarded)
		stopped   bool
		durs      []time.Duration
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stopped && next < attempts && next >= commit+window {
					cond.Wait()
				}
				if stopped || next >= attempts {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				ecfg := DefaultConfig(app, cfg.Seed+seedSalt+int64(i)*7919)
				ecfg.Protection = protection
				ecfg.Hardening = cfg.Hardening
				ecfg.VerifyCRC = cfg.VerifyCRC
				ecfg.ResurrectWorkers = cfg.ResurrectWorkers
				ecfg.LazyInstall = cfg.LazyInstall
				ecfg.Stream = cfg.Stream
				ecfg.IndexSlots = cfg.IndexSlots
				ecfg.DiskCrash = cfg.DiskCrash
				ecfg.Baseline = cfg.Baseline
				if cfg.MemoryMB > 0 {
					ecfg.MemoryMB = cfg.MemoryMB
				}
				res := runOne(ecfg)

				mu.Lock()
				slots[i] = slot{res: res, done: true}
				for !stopped && commit < attempts && slots[commit].done {
					r := slots[commit].res
					slots[commit] = slot{} // release the run's trace/report memory
					commit++
					attempted++
					durs = append(durs, r.Duration)
					commitResult(cfg, app, protection, passName, &t, want, attempted, r)
					if t.n >= want {
						stopped = true
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return t, durs
}

// commitResult folds one committed experiment into the pass tally. The pass
// mutex is held: metrics increments and progress ticks happen in commit
// order, so the registry and the live ticker replay identically at any
// pool width.
func commitResult(cfg CampaignConfig, app string, protection bool, passName string, t *tally, want, attempted int, res Result) {
	if res.Outcome == OutcomeNoKernelFault {
		t.discarded++
		cfg.Metrics.Counter("campaign_discarded_total",
			"injections that never caused a kernel failure",
			metrics.Labels{"app": app, "pass": passName}).Inc()
		notifyProgress(cfg, app, protection, t, want, attempted)
		return
	}
	t.n++
	cfg.Metrics.Counter("campaign_runs_total", "faulted experiments by outcome",
		metrics.Labels{"app": app, "pass": passName, "outcome": res.Outcome.String()}).Inc()
	switch res.Outcome {
	case OutcomeSuccess:
		t.success++
		t.interruption += res.Interruption
		t.parInterruption += res.ParallelInterruption
		t.interruptions = append(t.interruptions, res.Interruption)
		t.parInterruptions = append(t.parInterruptions, res.ParallelInterruption)
		t.firstTouch = append(t.firstTouch, res.FirstTouch...)
	case OutcomeBootFailure:
		t.boot++
	case OutcomeResurrectFailure:
		t.resurrect++
		if res.StructCorruption {
			t.structCorrupt++
		}
	case OutcomeDataCorruption:
		t.corrupt++
	}
	if res.DataChecked {
		t.dataChecked++
		verdict := "intact"
		if res.DataErr != nil {
			t.dataViolations++
			verdict = "violated"
		}
		cfg.Metrics.Counter("campaign_data_checks_total",
			"post-crash on-disk recovery-invariant audits by verdict",
			metrics.Labels{"app": app, "pass": passName, "verdict": verdict}).Inc()
	}
	if res.Outcome != OutcomeSuccess && res.Detail != nil {
		t.attribs[res.Detail.Attribution]++
		if pk := res.Detail.PanicKind; pk != "" {
			cfg.Metrics.Counter("campaign_fault_kinds_total",
				"non-success runs by dead-kernel panic kind",
				metrics.Labels{"app": app, "panic": pk}).Inc()
		}
	}
	notifyProgress(cfg, app, protection, t, want, attempted)
}

// notifyProgress fires the live-progress callback; the tally mutex is held.
func notifyProgress(cfg CampaignConfig, app string, protection bool, t *tally, want, attempted int) {
	if cfg.Progress == nil {
		return
	}
	cfg.Progress(ProgressUpdate{
		App:       app,
		Protected: protection,
		Faulted:   t.n,
		Want:      want,
		Discarded: t.discarded,
		Attempted: attempted,
	})
}

// CanonicalCampaignWorkers is the pool width the campaign's published
// schedule figures are quoted at, so campaign output never depends on the
// host the campaign happened to run on (the same convention as
// resurrect.CanonicalWorkers).
const CanonicalCampaignWorkers = 4

// CampaignStats summarizes the campaign pool's modeled schedule: every
// committed experiment's virtual duration fed through core.PoolSchedule.
// All published fields are quoted at CanonicalCampaignWorkers (plus the
// serial baseline), so they are identical at any live pool width.
type CampaignStats struct {
	// Workers is the live pool width the campaign executed at. It affects
	// host wall clock only — never any modeled figure.
	Workers int
	// Experiments counts committed attempts (faulted + discarded).
	Experiments int
	// TotalWork is the summed modeled duration of all committed attempts.
	TotalWork time.Duration
	// SerialMakespan is the modeled campaign wall clock on one worker.
	SerialMakespan time.Duration
	// Makespan is the modeled wall clock at CanonicalCampaignWorkers.
	Makespan time.Duration
	// Occupancy is TotalWork / (CanonicalCampaignWorkers × Makespan).
	Occupancy float64

	spans []time.Duration
}

// ScheduleAt models the campaign wall clock at a hypothetical pool width.
func (s *CampaignStats) ScheduleAt(workers int) time.Duration {
	return core.PoolSchedule(s.spans, workers)
}

// SpeedupAt is the modeled serial-over-parallel ratio at a width.
func (s *CampaignStats) SpeedupAt(workers int) float64 {
	par := s.ScheduleAt(workers)
	if par <= 0 {
		return 0
	}
	return float64(s.SerialMakespan) / float64(par)
}

// RunTable5 runs the full Table 5 campaign: an unprotected pass providing
// the success/boot-failure/resurrect-failure/corruption columns and a
// protected pass providing the protected-corruption sub-column.
func RunTable5(cfg CampaignConfig) []Table5Row {
	rows, _ := RunTable5Campaign(cfg)
	return rows
}

// RunTable5Campaign is RunTable5 plus the pool schedule model: it also
// returns the campaign's modeled timing statistics and publishes the pool
// occupancy and makespan gauges to cfg.Metrics.
func RunTable5Campaign(cfg CampaignConfig) ([]Table5Row, *CampaignStats) {
	if len(cfg.Apps) == 0 {
		cfg.Apps = AppNames
	}
	stats := &CampaignStats{Workers: cfg.campaignWorkers()}
	rows := make([]Table5Row, 0, len(cfg.Apps))
	const passCount = 2 // unprotected + protected
	for i, app := range cfg.Apps {
		base, durs := runCampaignPass(cfg, app, false, cfg.PerApp, passSeedSalt(i, 0, passCount))
		stats.spans = append(stats.spans, durs...)
		row := Table5Row{
			App:            app,
			N:              base.n,
			Discarded:      base.discarded,
			StructCorrupt:  base.structCorrupt,
			Attributions:   base.sortedAttributions(),
			DataChecked:    base.dataChecked,
			DataViolations: base.dataViolations,
		}
		if base.n < cfg.PerApp {
			row.Shortfall = cfg.PerApp - base.n
		}
		if base.n > 0 {
			row.Success = float64(base.success) / float64(base.n)
			row.BootFailure = float64(base.boot) / float64(base.n)
			row.ResurrectFail = float64(base.resurrect) / float64(base.n)
			row.CorruptNoProt = float64(base.corrupt) / float64(base.n)
		}
		// pct is safe here: every call sits behind a non-empty guard, so
		// the ok return can only be true.
		pct := func(s []time.Duration, p int) time.Duration {
			d, _ := spans.Percentile(s, p)
			return d
		}
		if base.success > 0 {
			row.MeanInterruption = base.interruption / time.Duration(base.success)
			row.MeanParallelInterruption = base.parInterruption / time.Duration(base.success)
			row.P50Interruption = pct(base.interruptions, 50)
			row.P95Interruption = pct(base.interruptions, 95)
			row.P99Interruption = pct(base.interruptions, 99)
			row.P50ParallelInterruption = pct(base.parInterruptions, 50)
			row.P95ParallelInterruption = pct(base.parInterruptions, 95)
			row.P99ParallelInterruption = pct(base.parInterruptions, 99)
		}
		row.FirstTouchSamples = len(base.firstTouch)
		if row.FirstTouchSamples > 0 {
			row.P50FirstTouch = pct(base.firstTouch, 50)
			row.P95FirstTouch = pct(base.firstTouch, 95)
			row.P99FirstTouch = pct(base.firstTouch, 99)
		}
		if !cfg.SkipProtected {
			prot, pdurs := runCampaignPass(cfg, app, true, cfg.PerApp, passSeedSalt(i, 1, passCount))
			stats.spans = append(stats.spans, pdurs...)
			row.ProtN = prot.n
			if prot.n < cfg.PerApp {
				row.ProtShortfall = cfg.PerApp - prot.n
			}
			if prot.n > 0 {
				row.CorruptProt = float64(prot.corrupt) / float64(prot.n)
			}
		}
		rows = append(rows, row)
	}
	stats.Experiments = len(stats.spans)
	for _, s := range stats.spans {
		stats.TotalWork += s
	}
	stats.SerialMakespan = core.PoolSchedule(stats.spans, 1)
	stats.Makespan = core.PoolSchedule(stats.spans, CanonicalCampaignWorkers)
	stats.Occupancy = core.PoolOccupancy(stats.spans, CanonicalCampaignWorkers)
	canon := metrics.Labels{"workers": fmt.Sprint(CanonicalCampaignWorkers)}
	cfg.Metrics.Gauge("campaign_pool_occupancy",
		"fraction of pool worker-time the modeled schedule keeps busy, at the canonical width", canon).
		Set(stats.Occupancy)
	cfg.Metrics.Gauge("campaign_pool_makespan_seconds",
		"modeled campaign wall clock under the pool schedule, at the canonical width", canon).
		Set(stats.Makespan.Seconds())
	return rows, stats
}

// RenderTable5 formats campaign rows like the paper's Table 5, extended
// with mean-interruption columns (serial schedule and the parallel schedule
// at the canonical worker count) and the serial-model interruption
// percentiles over successful recoveries. A "data survived" column appears
// only when some row actually audited on-disk state, so campaigns over the
// classic five applications render exactly as before.
func RenderTable5(rows []Table5Row) string {
	withData := false
	for _, r := range rows {
		if r.DataChecked > 0 {
			withData = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %13s %17s %21s %31s %23s %20s",
		"Application", "Successful", "Failure to boot", "Failure to resurrect",
		"Data corruption with/without", "Mean interruption", "Interruption")
	if withData {
		fmt.Fprintf(&b, " %15s", "Data survived")
	}
	fmt.Fprintf(&b, "\n%-11s %13s %17s %21s %31s %23s %20s",
		"", "resurrection", "the crash kernel", "application", "user space protected",
		fmt.Sprintf("serial / %dw", resurrect.CanonicalWorkers), "p50/p95/p99 serial")
	if withData {
		fmt.Fprintf(&b, " %15s", "(disk audit)")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %12.2f%% %16.2f%% %20.2f%% %14.2f%% / %.2f%% %14.0fs / %.0fs",
			r.App, 100*r.Success, 100*r.BootFailure, 100*r.ResurrectFail,
			100*r.CorruptProt, 100*r.CorruptNoProt,
			r.MeanInterruption.Seconds(), r.MeanParallelInterruption.Seconds())
		if r.Success > 0 {
			fmt.Fprintf(&b, " %11.0f/%.0f/%.0fs",
				r.P50Interruption.Seconds(), r.P95Interruption.Seconds(), r.P99Interruption.Seconds())
		} else {
			// No successful recoveries: a percentile over zero samples is
			// not 0s, so don't fake a "0/0/0s" cell.
			fmt.Fprintf(&b, " %15s", "n/a")
		}
		if withData {
			if r.DataChecked > 0 {
				fmt.Fprintf(&b, " %9d/%-5d", r.DataChecked-r.DataViolations, r.DataChecked)
			} else {
				fmt.Fprintf(&b, " %15s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Totals summarizes a campaign: total faulted runs, discarded runs and the
// kernel-structure-corruption count the paper reports in prose.
func Totals(rows []Table5Row) (faulted, discarded, structCorrupt int) {
	for _, r := range rows {
		faulted += r.N
		discarded += r.Discarded
		structCorrupt += r.StructCorrupt
	}
	return faulted, discarded, structCorrupt
}

// DataTotals sums the campaign's post-crash disk audits: how many runs
// checked the application's on-disk recovery invariants and how many of
// those found them violated.
func DataTotals(rows []Table5Row) (checked, violations int) {
	for _, r := range rows {
		checked += r.DataChecked
		violations += r.DataViolations
	}
	return checked, violations
}

// TopReasons returns the campaign's failure attributions sorted by
// frequency: numerically by count (descending), ties broken by the
// attribution text. (Sorting the *formatted* strings, as this used to do,
// ordered "  999x" above "10000x" and left ties in arbitrary map order.)
func TopReasons(rows []Table5Row) []string {
	counts := make(map[Attribution]int)
	for _, r := range rows {
		for _, ac := range r.Attributions {
			counts[ac.Attribution] += ac.Count
		}
	}
	type entry struct {
		a Attribution
		n int
	}
	entries := make([]entry, 0, len(counts))
	for a, n := range counts {
		entries = append(entries, entry{a, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].a.String() < entries[j].a.String()
	})
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, fmt.Sprintf("%4dx %s", e.n, e.a))
	}
	return out
}

// Shortfalls reports every row that collected fewer faulted experiments
// than requested, for the harness to warn about: an undershoot used to be
// silently absorbed into smaller-N fractions.
func Shortfalls(rows []Table5Row) []string {
	var out []string
	for _, r := range rows {
		if r.Shortfall > 0 {
			out = append(out, fmt.Sprintf("%s: %d of %d faulted experiments (unprotected pass %d short; attempt budget exhausted)",
				r.App, r.N, r.N+r.Shortfall, r.Shortfall))
		}
		if r.ProtShortfall > 0 {
			out = append(out, fmt.Sprintf("%s: %d of %d faulted experiments (protected pass %d short; attempt budget exhausted)",
				r.App, r.ProtN, r.ProtN+r.ProtShortfall, r.ProtShortfall))
		}
	}
	return out
}
