package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"otherworld/internal/kernel"
	"otherworld/internal/metrics"
	"otherworld/internal/resurrect"
)

// Table5Row aggregates a campaign for one application into the paper's
// Table 5 columns.
type Table5Row struct {
	App string
	// N is the number of experiments that manifested a kernel fault (the
	// paper observes 400 per application).
	N int
	// Discarded counts injections that never caused a kernel failure.
	Discarded int
	// Success, BootFailure, ResurrectFailure and CorruptNoProt are
	// fractions of N from the unprotected campaign.
	Success       float64
	BootFailure   float64
	ResurrectFail float64
	CorruptNoProt float64
	// CorruptProt is the corruption fraction from the protected campaign
	// (Table 5's "with user space protected" sub-column).
	CorruptProt float64
	// ProtN is the protected campaign's faulted-experiment count.
	ProtN int
	// StructCorrupt counts resurrection failures caused by detected
	// main-kernel record corruption (the "3 of 2000" statistic).
	StructCorrupt int
	// Shortfall is how many faulted experiments short of the requested
	// count the unprotected pass came (0 when the attempt budget
	// sufficed); the fractions above are then over fewer runs than asked.
	Shortfall int
	// ProtShortfall is the protected pass's shortfall.
	ProtShortfall int
	// MeanInterruption is the mean serial-model outage over the
	// unprotected pass's successful recoveries (zero if none succeeded).
	MeanInterruption time.Duration
	// MeanParallelInterruption is the same mean under the parallel
	// schedule model at resurrect.CanonicalWorkers.
	MeanParallelInterruption time.Duration
	// Attributions tallies every non-success failure mode, aggregated by
	// structured attribution (stage, resurrection phase, panic kind,
	// normalized reason) and sorted most-frequent first.
	Attributions []AttributionCount
}

// CampaignConfig parameterizes a Table 5 campaign.
type CampaignConfig struct {
	// Apps lists the applications to test (AppNames by default).
	Apps []string
	// PerApp is the number of faulted experiments per application (the
	// paper: 400).
	PerApp int
	// Seed bases the replayable experiment seeds.
	Seed int64
	// Hardening selects the Section 6 fixes; the ablation flips this.
	Hardening kernel.Hardening
	// VerifyCRC enables record checksums (the Section 4 ablation flips
	// this).
	VerifyCRC bool
	// Workers bounds experiment-level parallelism (NumCPU by default):
	// how many whole experiments run concurrently.
	Workers int
	// ResurrectWorkers is the per-experiment resurrection pipeline width
	// (0 = NumCPU). It only changes each experiment's modeled parallel
	// interruption; every tallied outcome is identical at any width.
	ResurrectWorkers int
	// SkipProtected skips the protected-mode corruption sub-campaign.
	SkipProtected bool
	// MemoryMB sizes experiment machines.
	MemoryMB int
	// Progress, when set, is called after every finished experiment (from
	// the collecting goroutine's lock, so it must be quick) — the live
	// campaign ticker in cmd/owcampaign.
	Progress func(ProgressUpdate)
	// Metrics, when set, receives per-app/per-pass outcome and fault-kind
	// counters. Increments happen under the tally lock exactly where the
	// tallies themselves do, so the registry mirrors the rows at any
	// Workers/ResurrectWorkers setting.
	Metrics *metrics.Registry

	// runExperiment substitutes the single-experiment runner in tests;
	// nil means Run.
	runExperiment func(Config) Result
}

// ProgressUpdate is one live campaign progress tick.
type ProgressUpdate struct {
	App string
	// Protected says which pass is running.
	Protected bool
	// Faulted / Want is the pass's progress; Discarded counts no-fault
	// runs thrown away so far; Attempted counts all finished runs.
	Faulted, Want, Discarded, Attempted int
}

// DefaultCampaign returns the paper's campaign shape scaled by perApp.
func DefaultCampaign(perApp int, seed int64) CampaignConfig {
	return CampaignConfig{
		Apps:      AppNames,
		PerApp:    perApp,
		Seed:      seed,
		Hardening: kernel.FullHardening(),
		VerifyCRC: true,
		MemoryMB:  256,
	}
}

// tally is one campaign pass's raw counts.
type tally struct {
	n, discarded                      int
	success, boot, resurrect, corrupt int
	structCorrupt                     int
	attribs                           map[Attribution]int
	// interruption sums the serial/parallel-model outages over successful
	// recoveries, for the Table 5 mean-interruption columns.
	interruption, parInterruption time.Duration
}

// sortedAttributions flattens the tally's attribution map into a
// deterministic slice: most frequent first, ties broken lexicographically.
func (t *tally) sortedAttributions() []AttributionCount {
	out := make([]AttributionCount, 0, len(t.attribs))
	for a, n := range t.attribs {
		out = append(out, AttributionCount{Attribution: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Attribution.String() < out[j].Attribution.String()
	})
	return out
}

// passSeedSalt gives each (application, pass) combination its own seed
// space. The salt occupies the high bits: a pass scans at most
// 3*PerApp seeds spaced 7919 apart, so passes stay provably disjoint as
// long as that span is below 2^44 (PerApp under ~700 billion — any
// realistic campaign). The old additive salts (i*1_000_000, +500_000) were
// smaller than a pass's span and made passes overlap, silently correlating
// the protected and unprotected campaigns.
func passSeedSalt(appIdx, pass, passCount int) int64 {
	return (int64(appIdx)*int64(passCount) + int64(pass) + 1) << 44
}

// runCampaignPass collects `want` faulted experiments for one app.
func runCampaignPass(cfg CampaignConfig, app string, protection bool, want int, seedSalt int64) tally {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > want {
		workers = want
	}
	if workers < 1 {
		workers = 1
	}

	t := tally{attribs: make(map[Attribution]int)}
	passName := "unprotected"
	if protection {
		passName = "protected"
	}
	passLabels := metrics.Labels{"app": app, "pass": passName}
	runOne := cfg.runExperiment
	if runOne == nil {
		runOne = Run
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Generous attempt budget: ~20% of runs are expected to be no-fault.
	attempts := want * 3
	attempted := 0
	work := make(chan int64, attempts)
	for i := 0; i < attempts; i++ {
		work <- cfg.Seed + seedSalt + int64(i)*7919
	}
	close(work)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				mu.Lock()
				if t.n >= want {
					mu.Unlock()
					return
				}
				mu.Unlock()

				ecfg := DefaultConfig(app, seed)
				ecfg.Protection = protection
				ecfg.Hardening = cfg.Hardening
				ecfg.VerifyCRC = cfg.VerifyCRC
				ecfg.ResurrectWorkers = cfg.ResurrectWorkers
				if cfg.MemoryMB > 0 {
					ecfg.MemoryMB = cfg.MemoryMB
				}
				res := runOne(ecfg)

				mu.Lock()
				attempted++
				if res.Outcome == OutcomeNoKernelFault {
					t.discarded++
					cfg.Metrics.Counter("campaign_discarded_total",
						"injections that never caused a kernel failure", passLabels).Inc()
					notifyProgress(cfg, app, protection, &t, want, attempted)
					mu.Unlock()
					continue
				}
				if t.n >= want {
					mu.Unlock()
					return
				}
				t.n++
				outLabels := metrics.Labels{"app": app, "pass": passName, "outcome": res.Outcome.String()}
				cfg.Metrics.Counter("campaign_runs_total",
					"faulted experiments by outcome", outLabels).Inc()
				switch res.Outcome {
				case OutcomeSuccess:
					t.success++
					t.interruption += res.Interruption
					t.parInterruption += res.ParallelInterruption
				case OutcomeBootFailure:
					t.boot++
				case OutcomeResurrectFailure:
					t.resurrect++
					if res.StructCorruption {
						t.structCorrupt++
					}
				case OutcomeDataCorruption:
					t.corrupt++
				}
				if res.Outcome != OutcomeSuccess && res.Detail != nil {
					t.attribs[res.Detail.Attribution]++
					if pk := res.Detail.PanicKind; pk != "" {
						cfg.Metrics.Counter("campaign_fault_kinds_total",
							"non-success runs by dead-kernel panic kind",
							metrics.Labels{"app": app, "panic": pk}).Inc()
					}
				}
				notifyProgress(cfg, app, protection, &t, want, attempted)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return t
}

// notifyProgress fires the live-progress callback; the tally mutex is held.
func notifyProgress(cfg CampaignConfig, app string, protection bool, t *tally, want, attempted int) {
	if cfg.Progress == nil {
		return
	}
	cfg.Progress(ProgressUpdate{
		App:       app,
		Protected: protection,
		Faulted:   t.n,
		Want:      want,
		Discarded: t.discarded,
		Attempted: attempted,
	})
}

// RunTable5 runs the full Table 5 campaign: an unprotected pass providing
// the success/boot-failure/resurrect-failure/corruption columns and a
// protected pass providing the protected-corruption sub-column.
func RunTable5(cfg CampaignConfig) []Table5Row {
	if len(cfg.Apps) == 0 {
		cfg.Apps = AppNames
	}
	rows := make([]Table5Row, 0, len(cfg.Apps))
	const passCount = 2 // unprotected + protected
	for i, app := range cfg.Apps {
		base := runCampaignPass(cfg, app, false, cfg.PerApp, passSeedSalt(i, 0, passCount))
		row := Table5Row{
			App:           app,
			N:             base.n,
			Discarded:     base.discarded,
			StructCorrupt: base.structCorrupt,
			Attributions:  base.sortedAttributions(),
		}
		if base.n < cfg.PerApp {
			row.Shortfall = cfg.PerApp - base.n
		}
		if base.n > 0 {
			row.Success = float64(base.success) / float64(base.n)
			row.BootFailure = float64(base.boot) / float64(base.n)
			row.ResurrectFail = float64(base.resurrect) / float64(base.n)
			row.CorruptNoProt = float64(base.corrupt) / float64(base.n)
		}
		if base.success > 0 {
			row.MeanInterruption = base.interruption / time.Duration(base.success)
			row.MeanParallelInterruption = base.parInterruption / time.Duration(base.success)
		}
		if !cfg.SkipProtected {
			prot := runCampaignPass(cfg, app, true, cfg.PerApp, passSeedSalt(i, 1, passCount))
			row.ProtN = prot.n
			if prot.n < cfg.PerApp {
				row.ProtShortfall = cfg.PerApp - prot.n
			}
			if prot.n > 0 {
				row.CorruptProt = float64(prot.corrupt) / float64(prot.n)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable5 formats campaign rows like the paper's Table 5, extended
// with mean-interruption columns (serial schedule and the parallel schedule
// at the canonical worker count) over successful recoveries.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %13s %17s %21s %31s %23s\n",
		"Application", "Successful", "Failure to boot", "Failure to resurrect",
		"Data corruption with/without", "Mean interruption")
	fmt.Fprintf(&b, "%-11s %13s %17s %21s %31s %23s\n",
		"", "resurrection", "the crash kernel", "application", "user space protected",
		fmt.Sprintf("serial / %dw", resurrect.CanonicalWorkers))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %12.2f%% %16.2f%% %20.2f%% %14.2f%% / %.2f%% %14.0fs / %.0fs\n",
			r.App, 100*r.Success, 100*r.BootFailure, 100*r.ResurrectFail,
			100*r.CorruptProt, 100*r.CorruptNoProt,
			r.MeanInterruption.Seconds(), r.MeanParallelInterruption.Seconds())
	}
	return b.String()
}

// Totals summarizes a campaign: total faulted runs, discarded runs and the
// kernel-structure-corruption count the paper reports in prose.
func Totals(rows []Table5Row) (faulted, discarded, structCorrupt int) {
	for _, r := range rows {
		faulted += r.N
		discarded += r.Discarded
		structCorrupt += r.StructCorrupt
	}
	return faulted, discarded, structCorrupt
}

// TopReasons returns the campaign's failure attributions sorted by
// frequency: numerically by count (descending), ties broken by the
// attribution text. (Sorting the *formatted* strings, as this used to do,
// ordered "  999x" above "10000x" and left ties in arbitrary map order.)
func TopReasons(rows []Table5Row) []string {
	counts := make(map[Attribution]int)
	for _, r := range rows {
		for _, ac := range r.Attributions {
			counts[ac.Attribution] += ac.Count
		}
	}
	type entry struct {
		a Attribution
		n int
	}
	entries := make([]entry, 0, len(counts))
	for a, n := range counts {
		entries = append(entries, entry{a, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].a.String() < entries[j].a.String()
	})
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, fmt.Sprintf("%4dx %s", e.n, e.a))
	}
	return out
}

// Shortfalls reports every row that collected fewer faulted experiments
// than requested, for the harness to warn about: an undershoot used to be
// silently absorbed into smaller-N fractions.
func Shortfalls(rows []Table5Row) []string {
	var out []string
	for _, r := range rows {
		if r.Shortfall > 0 {
			out = append(out, fmt.Sprintf("%s: %d of %d faulted experiments (unprotected pass %d short; attempt budget exhausted)",
				r.App, r.N, r.N+r.Shortfall, r.Shortfall))
		}
		if r.ProtShortfall > 0 {
			out = append(out, fmt.Sprintf("%s: %d of %d faulted experiments (protected pass %d short; attempt budget exhausted)",
				r.App, r.ProtN, r.ProtN+r.ProtShortfall, r.ProtShortfall))
		}
	}
	return out
}
