package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"otherworld/internal/metrics"
)

// diskRun runs one crash-model experiment at the given resurrection pool
// width and install mode.
func diskRun(app string, seed int64, workers int, lazy bool) Result {
	cfg := DefaultConfig(app, seed)
	cfg.DiskCrash = true
	cfg.ResurrectWorkers = workers
	cfg.LazyInstall = lazy
	return Run(cfg)
}

// TestDiskFingerprintDeterminism is the crash model's golden-fingerprint
// gate: for pinned seeds, the post-crash disk image must be byte-identical
// at resurrection worker widths 1 and 8, under the eager and the lazy
// (demand-paged) install, and across reruns — the crash consequences are a
// pure function of the experiment seed. The width-1 eager fingerprint is
// additionally pinned against a golden so both variants drifting together
// is still caught.
func TestDiskFingerprintDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real experiments in -short mode")
	}
	type pin struct {
		app  string
		seed int64
	}
	pins := []pin{
		{"vi", 20260808},
		{"WAL", 1105},
		{"WAL-bug", 1105},
	}
	variants := []struct {
		workers int
		lazy    bool
	}{{8, false}, {1, true}, {8, true}}
	if raceEnabled {
		// One parallel+lazy variant still races every install path against
		// the crash model; the full matrix runs race-free.
		variants = variants[2:]
	}
	var b strings.Builder
	for _, p := range pins {
		base := diskRun(p.app, p.seed, 1, false)
		if base.DiskFingerprint == "" {
			t.Fatalf("%s/%d: no disk fingerprint recorded", p.app, p.seed)
		}
		for _, v := range variants {
			got := diskRun(p.app, p.seed, v.workers, v.lazy)
			if got.DiskFingerprint != base.DiskFingerprint {
				t.Errorf("%s/%d: disk image depends on install path (workers=%d lazy=%v):\n%s\nvs base\n%s",
					p.app, p.seed, v.workers, v.lazy, got.DiskFingerprint, base.DiskFingerprint)
			}
			if got.Outcome != base.Outcome {
				t.Errorf("%s/%d: outcome depends on install path (workers=%d lazy=%v): %v vs %v",
					p.app, p.seed, v.workers, v.lazy, got.Outcome, base.Outcome)
			}
		}
		crashed := base.DiskCrash != nil
		fmt.Fprintf(&b, "%s seed=%d outcome=%s crash=%v fingerprint=%s\n",
			p.app, p.seed, base.Outcome, crashed, base.DiskFingerprint)
	}
	got := b.String()

	golden := filepath.Join("testdata", "disk_fingerprint.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("disk fingerprints drifted from golden (rerun with -update if intended):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// checkWALRows asserts the campaign's data-survival outcome: both variants
// audited, the fixed protocol clean, the buggy one caught, and the rendered
// table carrying the "Data survived" column.
func checkWALRows(t *testing.T, rows []Table5Row) {
	t.Helper()
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %+v", rows)
	}
	fixed, buggy := rows[0], rows[1]
	if fixed.App != "WAL" || buggy.App != "WAL-bug" {
		t.Fatalf("row order drifted: %q, %q", fixed.App, buggy.App)
	}
	if fixed.DataChecked == 0 || buggy.DataChecked == 0 {
		t.Fatalf("campaign never audited the platter: %+v", rows)
	}
	if fixed.DataViolations != 0 {
		t.Errorf("fixed WAL lost data in %d of %d audits; the protocol is sound, so the model is wrong",
			fixed.DataViolations, fixed.DataChecked)
	}
	if buggy.DataViolations == 0 {
		t.Errorf("buggy WAL survived all %d audits; the campaign cannot see the missing fsync", buggy.DataChecked)
	}
	if table := RenderTable5(rows); !strings.Contains(table, "Data survived") {
		t.Errorf("rendered table lacks the data-survival column:\n%s", table)
	}
}

// runWALCampaign runs the WAL data-survival campaign: both protocol
// variants, block-layer crash model on, cold-reboot recovery (the path where
// unflushed dirty pages become orphans — the only world in which the buggy
// protocol's missing fsync can cost it data).
func runWALCampaign(width int) ([]Table5Row, *metrics.Snapshot) {
	cfg := DefaultCampaign(6, 20260808)
	cfg.Apps = []string{"WAL", "WAL-bug"}
	cfg.DiskCrash = true
	cfg.Baseline = true
	cfg.SkipProtected = true
	cfg.CampaignWorkers = width
	cfg.Metrics = metrics.NewRegistry()
	rows, _ := RunTable5Campaign(cfg)
	return rows, cfg.Metrics.Snapshot()
}

// TestWALInvariantCampaign is the PR's acceptance gate: a seeded campaign
// over the buggy WAL must report at least one recovery-invariant violation,
// deterministically — identical rows across three reruns and campaign pool
// widths 1, 4 and 8 — while the fixed WAL sails through the same crash
// schedule with zero violations.
func TestWALInvariantCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign in -short mode")
	}
	if raceEnabled {
		// One width-8 pass races the crash model and the platter audit
		// inside the campaign pool — the race detector's whole interest
		// here. The rerun/width determinism matrix (4 more full campaigns)
		// runs race-free.
		rows, _ := runWALCampaign(8)
		checkWALRows(t, rows)
		return
	}
	baseRows, baseSnap := runWALCampaign(1)
	checkWALRows(t, baseRows)

	// Replayability: identical rows and metrics across reruns...
	for rerun := 0; rerun < 2; rerun++ {
		rows, snap := runWALCampaign(1)
		if !reflect.DeepEqual(rows, baseRows) {
			t.Fatalf("rerun %d diverged:\n%+v\nvs\n%+v", rerun, rows, baseRows)
		}
		if snap.Fingerprint() != baseSnap.Fingerprint() {
			t.Fatalf("rerun %d metrics diverged:\n%s\nvs\n%s", rerun, snap.Fingerprint(), baseSnap.Fingerprint())
		}
	}
	// ...and across pool widths.
	for _, width := range []int{4, 8} {
		rows, snap := runWALCampaign(width)
		if !reflect.DeepEqual(rows, baseRows) {
			t.Fatalf("width %d diverged:\n%+v\nvs\n%+v", width, rows, baseRows)
		}
		if snap.Fingerprint() != baseSnap.Fingerprint() {
			t.Fatalf("width %d metrics diverged:\n%s\nvs\n%s", width, snap.Fingerprint(), baseSnap.Fingerprint())
		}
	}
}
