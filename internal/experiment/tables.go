package experiment

import (
	"fmt"
	"strings"
	"time"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/resurrect"
	"otherworld/internal/spans"
	"otherworld/internal/workload"
)

// --- Table 3: overhead of user-space protection ---------------------------

// Table3Row is one benchmark's protection overhead.
type Table3Row struct {
	Benchmark string
	// TLBMissIncrease is (protected misses / baseline misses) - 1.
	TLBMissIncrease float64
	// Overhead is (protected cycles / baseline cycles) - 1.
	Overhead float64
	// Ops is the measured operation count (identical in both runs).
	Ops int
}

// Table3Benchmarks lists the paper's Table 3 workloads.
var Table3Benchmarks = []string{"MySQL", "Apache/PHP", "Volano"}

// measureRun drives a workload for exactly ops acknowledged operations and
// returns the cycle and TLB-miss deltas over the measurement window.
func measureRun(app string, ops int, seed int64, protection bool) (cycles, misses uint64, acked int, err error) {
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.UserSpaceProtection = protection
	opts.Seed = seed
	m, err := core.NewMachine(opts)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := DriverFor(app, seed+1)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := d.Start(m); err != nil {
		return 0, 0, 0, err
	}
	// Warm the TLB and caches before the measurement window.
	workload.RunUntilIdle(m, d, ops/10+5, (ops/10+5)*50)
	c0 := m.K.Perf.Cycles
	m0 := m.K.M.TLB.Misses
	a0 := d.Acked()
	for d.Acked() < a0+ops {
		res := workload.RunUntilIdle(m, d, ops, ops*60)
		if res.Panic != nil {
			return 0, 0, 0, fmt.Errorf("panic during measurement: %v", res.Panic)
		}
		if res.Idle && d.Acked() == a0 {
			return 0, 0, 0, fmt.Errorf("workload idle with no progress")
		}
	}
	return m.K.Perf.Cycles - c0, m.K.M.TLB.Misses - m0, d.Acked() - a0, nil
}

// MeasureTable3 runs one benchmark with protection off and on and returns
// the overhead row.
func MeasureTable3(app string, ops int, seed int64) (Table3Row, error) {
	baseCycles, baseMisses, n0, err := measureRun(app, ops, seed, false)
	if err != nil {
		return Table3Row{}, fmt.Errorf("%s baseline: %w", app, err)
	}
	protCycles, protMisses, n1, err := measureRun(app, ops, seed, true)
	if err != nil {
		return Table3Row{}, fmt.Errorf("%s protected: %w", app, err)
	}
	// Normalize per op in case the rounds differ slightly.
	bc := float64(baseCycles) / float64(n0)
	pc := float64(protCycles) / float64(n1)
	bm := float64(baseMisses) / float64(n0)
	pm := float64(protMisses) / float64(n1)
	row := Table3Row{Benchmark: app, Ops: n0}
	if bm > 0 {
		row.TLBMissIncrease = pm/bm - 1
	}
	if bc > 0 {
		row.Overhead = pc/bc - 1
	}
	return row, nil
}

// RunTable3 measures every Table 3 benchmark.
func RunTable3(ops int, seed int64) ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(Table3Benchmarks))
	for _, b := range Table3Benchmarks {
		row, err := MeasureTable3(b, ops, seed)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %23s %21s\n", "Benchmark", "Increase in TLB misses", "Performance overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %22.0f%% %20.1f%%\n", r.Benchmark, 100*r.TLBMissIncrease, 100*r.Overhead)
	}
	return b.String()
}

// --- Table 4: data read by the crash kernel --------------------------------

// Table4Row is one application's resurrection byte accounting.
type Table4Row struct {
	App string
	// KernelBytes is the main-kernel data the crash kernel read.
	KernelBytes int64
	// PageTableFraction is the page-table share of KernelBytes.
	PageTableFraction float64
	// UserBytes is the application page data copied (not counted by the
	// paper's table, reported for context).
	UserBytes int64
}

// MeasureTable4 runs the workload, induces a clean panic, and measures what
// the crash kernel read while resurrecting the application.
func MeasureTable4(app string, seed int64) (Table4Row, error) {
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = seed
	m, err := core.NewMachine(opts)
	if err != nil {
		return Table4Row{}, err
	}
	d, err := DriverFor(app, seed+1)
	if err != nil {
		return Table4Row{}, err
	}
	if err := d.Start(m); err != nil {
		return Table4Row{}, err
	}
	res := workload.RunUntilIdle(m, d, 150, 6000)
	if res.Panic != nil {
		return Table4Row{}, fmt.Errorf("panic during workload: %v", res.Panic)
	}
	if err := m.K.InjectOops("table 4 measurement"); err == nil {
		return Table4Row{}, fmt.Errorf("InjectOops did not panic")
	}
	fo, err := m.HandleFailure()
	if err != nil {
		return Table4Row{}, err
	}
	if fo.Result != core.ResultRecovered {
		return Table4Row{}, fmt.Errorf("transfer failed: %s", fo.Transfer.Reason)
	}
	acct := fo.Report.Acct
	return Table4Row{
		App:               app,
		KernelBytes:       acct.KernelDataBytes(),
		PageTableFraction: acct.PageTableFraction(),
		UserBytes:         acct.ByCategory[resurrect.CatUserData],
	}, nil
}

// RunTable4 measures every Table 4 application.
func RunTable4(seed int64) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(AppNames))
	for _, app := range AppNames {
		row, err := MeasureTable4(app, seed)
		if err != nil {
			return rows, fmt.Errorf("%s: %w", app, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable4 formats rows like the paper's Table 4.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %14s %12s\n", "Application", "Kernel memory", "Page tables")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %11d KB %11.0f%%\n", r.App, r.KernelBytes/1024, 100*r.PageTableFraction)
	}
	return b.String()
}

// --- Table 6: service interruption time ------------------------------------

// Table6Row is one workload's boot and interruption timing, measured under
// both install modes: the eager full-copy install and the demand-paged lazy
// install (Section 7's early-resume direction), each from an identically
// seeded machine.
type Table6Row struct {
	App string
	// BootTime is power-button to workload-operational (virtual time).
	BootTime time.Duration
	// Interruption is failure to workload-operational-again under the
	// serial resurrection schedule (the paper's single-threaded prototype).
	// Worker-count-independent regardless of the live pool width.
	Interruption time.Duration
	// ParallelInterruption is the same outage under the parallel schedule
	// model evaluated at resurrect.CanonicalWorkers.
	ParallelInterruption time.Duration
	// LazyInterruption / LazyParallelInterruption are the same two outages
	// with the lazy install enabled: candidates resume at context install,
	// so the blocked spans the schedule model sums collapse to parse time.
	LazyInterruption         time.Duration
	LazyParallelInterruption time.Duration
	// FirstTouchSamples and the percentile fields summarize the post-resume
	// demand-fault stalls the lazy run observed (Report.FirstTouch): how long
	// each first touch of a not-yet-installed page blocked the workload.
	// Nearest-rank percentiles over touch order, width-independent.
	FirstTouchSamples int
	P50FirstTouch     time.Duration
	P95FirstTouch     time.Duration
	P99FirstTouch     time.Duration
}

// Table6Workloads lists the paper's Table 6 rows.
var Table6Workloads = []string{"shell", "MySQL", "Apache/PHP"}

// measureTable6Mode runs the Table 6 protocol — boot to first ack, settle,
// fail, recover, run to the next ack — on one machine with the given install
// mode, returning the boot time and both schedule-model outages.
func measureTable6Mode(app string, seed int64, lazy bool) (boot, serial, parallel time.Duration, firstTouch []time.Duration, err error) {
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = seed
	opts.LazyInstall = lazy
	m, err := core.NewMachine(opts)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	d, err := DriverFor(app, seed+1)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if err := d.Start(m); err != nil {
		return 0, 0, 0, nil, err
	}
	// Operational = the first operation acknowledged.
	for d.Acked() == 0 {
		if res := workload.RunUntilIdle(m, d, 5, 200); res.Panic != nil {
			return 0, 0, 0, nil, fmt.Errorf("panic during boot measurement: %v", res.Panic)
		}
	}
	boot = m.HW.Clock.Now()

	// Let the workload settle, then fail the kernel.
	workload.RunUntilIdle(m, d, 100, 4000)
	failedAt := m.HW.Clock.Now()
	if err := m.K.InjectOops("table 6 measurement"); err == nil {
		return 0, 0, 0, nil, fmt.Errorf("InjectOops did not panic")
	}
	fo, err := m.HandleFailure()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if fo.Result != core.ResultRecovered {
		return 0, 0, 0, nil, fmt.Errorf("transfer failed: %s", fo.Transfer.Reason)
	}
	if err := d.Reattach(m); err != nil {
		return 0, 0, 0, nil, err
	}
	before := d.Acked()
	for d.Acked() <= before {
		if res := workload.RunUntilIdle(m, d, 5, 200); res.Panic != nil {
			return 0, 0, 0, nil, fmt.Errorf("panic during recovery measurement: %v", res.Panic)
		}
	}
	// The live delta reflects whatever pool width the engine ran with;
	// correct it to the serial model and re-evaluate at the canonical
	// width so the rendered row is machine-independent. Under the lazy
	// install Report.Duration and ScheduleAt sum blocked-to-resume spans,
	// so the corrected outage is time-to-resume, which is the point.
	measured := m.HW.Clock.Now() - failedAt
	if fo.Report == nil {
		return boot, measured, measured, nil, nil
	}
	live := fo.Report.Parallel.Duration
	serial = measured - live + fo.Report.Duration
	parallel = measured - live + fo.Report.ScheduleAt(resurrect.CanonicalWorkers)
	return boot, serial, parallel, fo.Report.FirstTouch, nil
}

// MeasureTable6 measures a workload's cold-boot time and its service
// interruption across a microreboot, under the eager and the lazy install.
func MeasureTable6(app string, seed int64) (Table6Row, error) {
	boot, serial, parallel, _, err := measureTable6Mode(app, seed, false)
	if err != nil {
		return Table6Row{}, err
	}
	_, lazySerial, lazyParallel, firstTouch, err := measureTable6Mode(app, seed, true)
	if err != nil {
		return Table6Row{}, fmt.Errorf("lazy install: %w", err)
	}
	row := Table6Row{
		App:                      app,
		BootTime:                 boot,
		Interruption:             serial,
		ParallelInterruption:     parallel,
		LazyInterruption:         lazySerial,
		LazyParallelInterruption: lazyParallel,
		FirstTouchSamples:        len(firstTouch),
	}
	// Percentiles only exist when the lazy run recorded stalls; rows with
	// zero samples keep zero fields and render as n/a.
	if len(firstTouch) > 0 {
		row.P50FirstTouch, _ = spans.Percentile(firstTouch, 50)
		row.P95FirstTouch, _ = spans.Percentile(firstTouch, 95)
		row.P99FirstTouch, _ = spans.Percentile(firstTouch, 99)
	}
	return row, nil
}

// RunTable6 measures every Table 6 workload.
func RunTable6(seed int64) ([]Table6Row, error) {
	rows := make([]Table6Row, 0, len(Table6Workloads))
	for _, app := range Table6Workloads {
		row, err := MeasureTable6(app, seed)
		if err != nil {
			return rows, fmt.Errorf("%s: %w", app, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable6 formats rows like the paper's Table 6 (seconds), extended
// with a parallel-resurrection column at the canonical worker count, the
// two lazy-install columns (millisecond precision: the lazy outage is
// time-to-resume, far below a second on the measured workloads), and the
// lazy run's first-touch stall percentiles (n and p50/p95/p99).
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %10s %26s %17s %17s %17s %30s\n",
		"Application", "Boot time", "Interruption (serial)",
		fmt.Sprintf("(%d workers)", resurrect.CanonicalWorkers),
		"lazy (serial)",
		fmt.Sprintf("lazy (%dw)", resurrect.CanonicalWorkers),
		"first-touch p50/p95/p99")
	for _, r := range rows {
		stalls := "n/a"
		if r.FirstTouchSamples > 0 {
			stalls = fmt.Sprintf("%v/%v/%v", r.P50FirstTouch, r.P95FirstTouch, r.P99FirstTouch)
		}
		fmt.Fprintf(&b, "%-11s %9.0fs %25.0fs %16.0fs %16.3fs %16.3fs %14s n=%d\n",
			r.App, r.BootTime.Seconds(), r.Interruption.Seconds(),
			r.ParallelInterruption.Seconds(),
			r.LazyInterruption.Seconds(),
			r.LazyParallelInterruption.Seconds(),
			stalls,
			r.FirstTouchSamples)
	}
	return b.String()
}

// --- Tables 1 and 2: policy matrix and application modifications -----------

// RenderTable1 prints the resurrection-policy matrix (Table 1), which the
// property tests in package resurrect verify behaviourally.
func RenderTable1() string {
	return strings.Join([]string{
		"                        | Crash procedure defined            | No crash procedure defined",
		"All resources           | procedure may save data and restart| execution continues from the",
		"were resurrected        | or instruct the kernel to continue | interruption point",
		"Some resources          | procedure may restore resources and| resurrection fails",
		"could not be            | continue, or save state and restart|",
		"resurrected             | (bitmask reports what is missing)  |",
	}, "\n") + "\n"
}
