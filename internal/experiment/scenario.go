package experiment

import (
	"fmt"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/resurrect"
	"otherworld/internal/spans"
	"otherworld/internal/trace"
)

// MultiMySQLRecovery crashes a machine running eight MySQL servers and
// returns the failure outcome plus the recovered machine (its registry now
// holds the full crash-and-resurrect trajectory) — the shared scenario
// behind BenchmarkResurrectParallel, the owbench snapshot entries, the
// span-plane width goldens and `owstat timeline -mysql-x8`. The servers are
// warmed with real client traffic first; that matters for the fast-path
// counters, because serving requests demand-faults each server's row arena
// (~70 pages, almost all still zero), so the resurrection scan sees the
// zero-elision and dedup opportunities a freshly-booted idle server would
// not expose. lazy runs the demand-paged install (validated speculation)
// instead of the eager full-copy.
func MultiMySQLRecovery(seed int64, resWorkers int, lazy bool) (*core.FailureOutcome, *core.Machine, error) {
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = seed
	opts.Resurrection.Workers = resWorkers
	opts.LazyInstall = lazy
	m, err := core.NewMachine(opts)
	if err != nil {
		return nil, nil, err
	}
	for j := 0; j < 8; j++ {
		if _, err := m.Start(fmt.Sprintf("mysqld-%d", j), apps.ProgMySQL); err != nil {
			return nil, nil, err
		}
	}
	// The servers share the listen port; the deterministic scheduler spreads
	// the queued inserts round-robin, so every server handles traffic.
	for i := 0; i < 96; i++ {
		m.Net.Deliver(apps.MySQLPort, []byte(fmt.Sprintf("I %d warm-%04d", i+1, i)))
	}
	m.Run(600)
	//owvet:allow errdrop: InjectOops always returns the injected panic; recovery is checked below
	_ = m.K.InjectOops("bench snapshot")
	out, err := m.HandleFailure()
	if err != nil {
		return nil, nil, err
	}
	if out.Result != core.ResultRecovered {
		return nil, nil, fmt.Errorf("transfer failed: %s", out.Transfer.Reason)
	}
	return out, m, nil
}

// SpanTreeFor reconstructs the causal span tree for a completed scenario
// recovery: it records the resume span mark on the new kernel's flight
// recorder, re-parses the crash-surviving trace ring, and builds the tree
// at the given analysis width (workers < 1 selects the canonical width).
// The tree is keyed by logical time, so for a fixed seed and install mode
// its fingerprint is bit-identical at any LIVE resurrect-worker width —
// the property the 1-vs-8 goldens pin.
func SpanTreeFor(m *core.Machine, fo *core.FailureOutcome, app string, seed int64, lazy bool, workers int) (*spans.Tree, error) {
	if fo == nil || fo.Report == nil {
		return nil, fmt.Errorf("span tree: no resurrection report")
	}
	if workers < 1 {
		workers = resurrect.CanonicalWorkers
	}
	if tr := m.Tracer(); tr != nil {
		tr.Record(trace.Event{Kind: trace.KindSpanMark, A: trace.SpanMarkResume,
			B: uint64(fo.Report.Succeeded())})
	}
	var post []trace.Event
	if reg := m.TraceRegion(); reg.Frames > 0 {
		if p := trace.Parse(m.HW.Mem, reg); p != nil {
			post = p.Events
		}
	}
	return spans.Build(spans.Input{
		App:          app,
		Seed:         seed,
		Lazy:         lazy,
		Workers:      workers,
		Report:       fo.Report,
		Interruption: fo.SerialInterruption,
		PostEvents:   post,
	})
}
