package experiment

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpanTreeWidthDeterminism pins the tentpole property of the causal
// span plane: the reconstructed span tree for the warmed 8xMySQL recovery
// is bit-identical at any LIVE resurrect-worker width, in both install
// modes. The rendered text (which doubles as the tree's fingerprint, and
// includes the critical-path shares and first-touch percentiles) is
// golden-pinned per mode, so a drift in the builder, the schedule model or
// the renderer shows up as a readable diff.
func TestSpanTreeWidthDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full crash-and-resurrect scenarios")
	}
	const seed = 20100413
	for _, tc := range []struct {
		name   string
		lazy   bool
		golden string
	}{
		{"eager", false, "spantree_mysql_x8_eager.golden"},
		{"lazy", true, "spantree_mysql_x8_lazy.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prints := make(map[int]string, 2)
			for _, w := range []int{1, 8} {
				fo, m, err := MultiMySQLRecovery(seed, w, tc.lazy)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				tree, err := SpanTreeFor(m, fo, "mysql-x8", seed, tc.lazy, 0)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if tree.Skipped != 0 {
					t.Errorf("workers=%d: clean scenario skipped %d inputs", w, tree.Skipped)
				}
				prints[w] = tree.Fingerprint()
			}
			if prints[1] != prints[8] {
				t.Fatalf("span tree differs between 1 and 8 resurrect workers:\n--- 1w ---\n%s\n--- 8w ---\n%s",
					prints[1], prints[8])
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(prints[1]), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if prints[1] != string(want) {
				t.Fatalf("span tree drifted from golden (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
					prints[1], want)
			}
		})
	}
}
