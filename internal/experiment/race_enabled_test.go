//go:build race

package experiment

// raceEnabled reports whether the race detector is compiled in. The heavy
// campaign tests scale down under it — the detector needs the pool and the
// crash model exercised, not the full rerun/width determinism matrix, and
// the ~10x slowdown would blow the package test timeout otherwise. The
// determinism matrix always runs in the race-free `make test` pass.
const raceEnabled = true
