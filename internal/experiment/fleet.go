package experiment

// The fleet-recovery scenario: hundreds of mixed MySQL / Apache / Volano /
// shell processes under a seeded open-loop request workload, crashed once
// and recovered through either the classic batch resurrection or the
// streaming pass (index-assisted discovery + SLO-tier admission + pipelined
// install commit). The scenario exists to measure what the paper's 8×MySQL
// table cannot show: how time-to-first-resume scales with population, per
// SLO tier, and what the candidate index buys the discovery prologue.
//
// Everything reported here is derived from width-independent report fields
// (ResumeTimesAt, PerCandidate, Prologue), so the fleet table, fingerprint
// and span tree are bit-identical at resurrect/campaign widths 1 and 8 —
// the property TestFleetWidthDeterminism pins against goldens.

import (
	"fmt"
	"strings"
	"time"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/phys"
	"otherworld/internal/resurrect"
	"otherworld/internal/sched"
	"otherworld/internal/spans"
)

// FleetConfig parameterizes one fleet recovery.
type FleetConfig struct {
	// Population is the total process count; the mix is derived from it
	// (1/8 mysqld tier-0, 1/8 apache + 1/4 volano tier-1, the rest shells
	// tier-2, each share at least one process).
	Population int
	// Seed drives the whole simulation.
	Seed int64
	// Workers is the live resurrection pool width (0 = NumCPU). Reported
	// numbers are re-evaluated at resurrect.CanonicalWorkers regardless.
	Workers int
	// Lazy selects the demand-paged install.
	Lazy bool
	// Stream selects the streaming pass (tier admission + pipelined
	// commit); false runs the classic batch engine for comparison.
	Stream bool
	// IndexSlots sizes the main kernel's candidate index (0 = none; the
	// discovery then always walks the full process list).
	IndexSlots int
	// CorruptIndex smashes the salvaged index header before recovery, to
	// exercise the skip-and-count fallback to the full walk.
	CorruptIndex bool
	// Arrivals is each tier's open-loop request rate in requests/sec per
	// process; requests arriving during a process's outage are lost.
	Arrivals [sched.NumTiers]int
	// Tiers overrides the program→tier admission map (nil selects
	// DefaultFleetTiers). The same map drives admission and the per-tier
	// stats, so re-tiering a program moves it in both.
	Tiers map[string]int
}

// DefaultFleet returns the standard fleet configuration at the given
// population: streaming with an index sized for the population, and the
// default request rates (tier-0 200/s, tier-1 50/s, tier-2 5/s).
func DefaultFleet(population int, seed int64) FleetConfig {
	return FleetConfig{
		Population: population,
		Seed:       seed,
		Stream:     true,
		IndexSlots: population + population/4,
		Arrivals:   [sched.NumTiers]int{200, 50, 5},
	}
}

// DefaultFleetTiers is the program→tier map the fleet runs under: database
// servers are tier-0 critical, network services tier-1, shells tier-2
// batch. Programs not listed admit at resurrect.DefaultTier.
func DefaultFleetTiers() map[string]int {
	return map[string]int{
		apps.ProgMySQL:  sched.TierCritical,
		apps.ProgApache: sched.TierStandard,
		apps.ProgVolano: sched.TierStandard,
		apps.ProgShell:  sched.TierBatch,
	}
}

// FleetTierStats is one SLO tier's recovery outcome.
type FleetTierStats struct {
	// Tier is the SLO tier (sched.TierCritical..TierBatch).
	Tier int
	// Procs counts the tier's resurrection candidates.
	Procs int
	// FirstResume is the tier's modeled time-to-first-resume at the
	// canonical width, measured from the instant of failure (microreboot
	// included). Valid only when Procs > 0.
	FirstResume time.Duration
	// P50/P95/P99 are the tier's per-process interruption percentiles at
	// the canonical width. HasPercentiles is false for an empty tier —
	// a percentile over nothing renders n/a, never 0.
	P50, P95, P99  time.Duration
	HasPercentiles bool
	// RequestsLost models the tier's open-loop requests arriving during
	// per-process outages (rate × downtime, integer math).
	RequestsLost int64
}

// FleetResult is one fleet recovery's outcome.
type FleetResult struct {
	// Outcome / Machine are the underlying recovery, for metrics and span
	// inspection.
	Outcome *core.FailureOutcome
	Machine *core.Machine
	// Population is the process count the fleet actually ran.
	Population int
	// Tiers holds per-tier stats, ascending tier order, all tiers present.
	Tiers []FleetTierStats
	// Prologue is the discovery prologue (trace salvage + candidate
	// listing); the index-assisted walk shrinks exactly this.
	Prologue time.Duration
	// IndexUsed / IndexSkipped / IndexFallback mirror the report's
	// discovery accounting.
	IndexUsed, IndexSkipped int
	IndexFallback           string
}

// fleetMix derives the deterministic process mix from the population.
func fleetMix(population int) (mysql, apache, volano, shell int) {
	if population < 4 {
		population = 4
	}
	mysql = population / 8
	if mysql < 1 {
		mysql = 1
	}
	apache = population / 8
	if apache < 1 {
		apache = 1
	}
	volano = population / 4
	if volano < 1 {
		volano = 1
	}
	shell = population - mysql - apache - volano
	if shell < 1 {
		shell = 1
	}
	return mysql, apache, volano, shell
}

// FleetRecovery boots the fleet, warms it with seeded client traffic,
// crashes the kernel and recovers, then derives the per-tier stats from
// the resurrection report at the canonical width.
func FleetRecovery(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Population <= 0 {
		cfg.Population = 512
	}
	nMySQL, nApache, nVolano, nShell := fleetMix(cfg.Population)
	population := nMySQL + nApache + nVolano + nShell

	opts := core.DefaultOptions()
	// ~0.5 MB of headroom per process on top of the kernel's base need;
	// the crash reservation scales with the population so the trace ring,
	// candidate index and protected image all fit.
	opts.HW = hw.Config{
		MemoryBytes:     256<<20 + population*(512<<10),
		NumCPUs:         2,
		TLBEntries:      64,
		WatchdogEnabled: true,
	}
	opts.CrashRegionMB = 16 + population/32
	opts.Seed = cfg.Seed
	tiers := cfg.Tiers
	if tiers == nil {
		tiers = DefaultFleetTiers()
	}
	opts.Resurrection.Workers = cfg.Workers
	opts.Resurrection.Stream = cfg.Stream
	opts.Resurrection.Tiers = tiers
	opts.LazyInstall = cfg.Lazy
	opts.CandidateIndexSlots = cfg.IndexSlots
	m, err := core.NewMachine(opts)
	if err != nil {
		return nil, err
	}

	// Tier-0 first: the databases get the lowest PIDs, which makes the
	// batch/stream comparison honest — the batch engine installs in
	// newest-first discovery order, so it resumes the critical tier last
	// all by itself, not because we stacked the deck.
	start := func(prefix, prog string, n int) error {
		for j := 0; j < n; j++ {
			if _, err := m.Start(fmt.Sprintf("%s-%d", prefix, j), prog); err != nil {
				return fmt.Errorf("start %s-%d: %w", prefix, j, err)
			}
		}
		return nil
	}
	if err := start("mysqld", apps.ProgMySQL, nMySQL); err != nil {
		return nil, err
	}
	if err := start("apache", apps.ProgApache, nApache); err != nil {
		return nil, err
	}
	if err := start("volano", apps.ProgVolano, nVolano); err != nil {
		return nil, err
	}
	if err := start("sh", apps.ProgShell, nShell); err != nil {
		return nil, err
	}

	// Seeded open-loop warmup: the deterministic scheduler spreads queued
	// requests round-robin over the listeners sharing each port, so every
	// server handles some traffic and faults in its working set.
	for i := 0; i < nMySQL*4; i++ {
		m.Net.Deliver(apps.MySQLPort, []byte(fmt.Sprintf("I %d fleet-%04d", i+1, i)))
	}
	for i := 0; i < nApache*2; i++ {
		m.Net.Deliver(apps.ApachePort, []byte(fmt.Sprintf("GET /s%d", i)))
	}
	m.Run(population*6 + nMySQL*16)

	//owvet:allow errdrop: InjectOops always returns the injected panic; recovery is checked below
	_ = m.K.InjectOops("fleet crash")
	if cfg.CorruptIndex {
		if reg := m.IndexRegion(); reg.Frames > 0 {
			// Smash the index header record so salvage rejects the whole
			// index and discovery degrades to the full walk.
			garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef}
			if err := m.HW.Mem.WriteAt(phys.FrameAddr(reg.Start), garbage); err != nil {
				return nil, fmt.Errorf("corrupt index: %w", err)
			}
		}
	}
	out, err := m.HandleFailure()
	if err != nil {
		return nil, err
	}
	if out.Result != core.ResultRecovered {
		return nil, fmt.Errorf("transfer failed: %s", out.Transfer.Reason)
	}
	rep := out.Report
	if rep == nil {
		return nil, fmt.Errorf("fleet recovery produced no resurrection report")
	}

	res := &FleetResult{
		Outcome:       out,
		Machine:       m,
		Population:    population,
		Prologue:      rep.Prologue,
		IndexUsed:     rep.IndexUsed,
		IndexSkipped:  rep.IndexSkipped,
		IndexFallback: rep.IndexFallback,
	}

	// Per-process downtime at the canonical width: the serial microreboot
	// overhead outside the pass, plus the candidate's modeled resume time
	// inside it. Tier membership comes from the admission map applied to
	// the reported program — identical for batch and streamed passes.
	outside := out.SerialInterruption - rep.Duration
	if outside < 0 {
		outside = 0
	}
	resumes := rep.ResumeTimesAt(resurrect.CanonicalWorkers)
	tierOf := resurrect.Config{Tiers: tiers}.TierOf
	byTier := make([][]time.Duration, sched.NumTiers)
	for i := range rep.Procs {
		t := tierOf(rep.Procs[i].Candidate.Program)
		var down time.Duration
		if i < len(resumes) {
			down = outside + resumes[i]
		} else {
			down = out.SerialInterruption
		}
		byTier[t] = append(byTier[t], down)
	}
	reg := m.Metrics()
	for t := 0; t < sched.NumTiers; t++ {
		st := FleetTierStats{Tier: t, Procs: len(byTier[t])}
		if n := len(byTier[t]); n > 0 {
			first := byTier[t][0]
			var lost int64
			for _, d := range byTier[t] {
				if d < first {
					first = d
				}
				lost += int64(cfg.Arrivals[t]) * int64(d) / int64(time.Second)
			}
			st.FirstResume = first
			st.RequestsLost = lost
			st.P50, _ = spans.Percentile(byTier[t], 50)
			st.P95, _ = spans.Percentile(byTier[t], 95)
			st.P99, _ = spans.Percentile(byTier[t], 99)
			st.HasPercentiles = true
		}
		res.Tiers = append(res.Tiers, st)
		if reg != nil {
			l := map[string]string{"tier": fmt.Sprint(t)}
			reg.Gauge("fleet_tier_procs",
				"resurrection candidates per SLO tier in the fleet scenario", l).
				Set(float64(st.Procs))
			if st.Procs > 0 {
				reg.Counter("fleet_requests_lost_total",
					"modeled open-loop requests lost to per-process outages, by tier", l).
					Add(st.RequestsLost)
				reg.Gauge("fleet_tier_first_resume_ns",
					"per-tier time-to-first-resume at the canonical width, failure to resume", l).
					Set(float64(st.FirstResume))
			}
		}
	}
	if reg != nil {
		reg.Gauge("fleet_population", "fleet scenario process count", nil).
			Set(float64(population))
	}
	return res, nil
}

// RenderFleetTable formats the per-tier fleet stats: population, discovery
// mode, then one row per tier with first-resume and the interruption
// percentiles (n/a for tiers with no candidates).
func (r *FleetResult) RenderFleetTable() string {
	var b strings.Builder
	mode := "full-walk"
	if r.IndexUsed > 0 {
		mode = fmt.Sprintf("index (%d entries, %d skipped)", r.IndexUsed, r.IndexSkipped)
	}
	if r.IndexFallback != "" {
		mode = fmt.Sprintf("full-walk after %q", r.IndexFallback)
	}
	fmt.Fprintf(&b, "fleet: population=%d discovery=%s prologue=%v\n", r.Population, mode, r.Prologue)
	fmt.Fprintf(&b, "%-6s %6s %15s %27s %14s\n",
		"tier", "procs", "first-resume", "interruption p50/p95/p99", "requests lost")
	for _, st := range r.Tiers {
		if !st.HasPercentiles {
			fmt.Fprintf(&b, "tier-%d %6d %15s %27s %14s\n", st.Tier, st.Procs, "n/a", "n/a", "n/a")
			continue
		}
		fmt.Fprintf(&b, "tier-%d %6d %15v %27s %14d\n",
			st.Tier, st.Procs, st.FirstResume,
			fmt.Sprintf("%v/%v/%v", st.P50, st.P95, st.P99), st.RequestsLost)
	}
	return b.String()
}

// FleetSpanTree builds the causal span tree for a completed fleet recovery;
// a streamed report groups candidate lanes by SLO tier.
func (r *FleetResult) FleetSpanTree(seed int64, lazy bool, workers int) (*spans.Tree, error) {
	return SpanTreeFor(r.Machine, r.Outcome, "fleet", seed, lazy, workers)
}
