package experiment

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPassSeedSpacesDisjoint proves the campaign's seed-space claim: the
// ranges scanned by every (application, pass) combination must not overlap.
// The old additive salts (i*1_000_000 for the app, +500_000 for the
// protected pass) were smaller than a pass's seed span (3*PerApp*7919), so
// with PerApp >= ~22 the protected pass replayed the unprotected pass's
// seeds — correlated campaigns pretending to be independent.
func TestPassSeedSpacesDisjoint(t *testing.T) {
	const apps = 5
	const passes = 2
	for _, perApp := range []int{100, 400, 100_000, 10_000_000} {
		span := int64(3*perApp) * 7919
		type rng struct {
			lo, hi int64
			name   string
		}
		var ranges []rng
		for app := 0; app < apps; app++ {
			for pass := 0; pass < passes; pass++ {
				salt := passSeedSalt(app, pass, passes)
				ranges = append(ranges, rng{salt, salt + span,
					fmt.Sprintf("app%d/pass%d", app, pass)})
			}
		}
		for i := range ranges {
			for j := i + 1; j < len(ranges); j++ {
				a, b := ranges[i], ranges[j]
				if a.lo < b.hi && b.lo < a.hi {
					t.Errorf("perApp=%d: %s [%d,%d) overlaps %s [%d,%d)",
						perApp, a.name, a.lo, a.hi, b.name, b.lo, b.hi)
				}
			}
		}
	}
}

// TestCampaignSeedsDisjoint checks disjointness end to end: a stubbed
// campaign records every seed each pass actually runs, and no seed may
// appear in two passes.
func TestCampaignSeedsDisjoint(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int64]string) // seed -> pass that used it
	cfg := DefaultCampaign(5, 12345)
	cfg.Apps = []string{"vi", "JOE"}
	cfg.Workers = 2
	cfg.runExperiment = func(ecfg Config) Result {
		pass := fmt.Sprintf("%s/prot=%v", ecfg.App, ecfg.Protection)
		mu.Lock()
		if prev, dup := seen[ecfg.Seed]; dup && prev != pass {
			t.Errorf("seed %d used by both %s and %s", ecfg.Seed, prev, pass)
		}
		seen[ecfg.Seed] = pass
		mu.Unlock()
		return Result{Outcome: OutcomeSuccess}
	}
	rows := RunTable5(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.N != 5 || r.ProtN != 5 {
			t.Fatalf("%s: N=%d ProtN=%d, want 5/5", r.App, r.N, r.ProtN)
		}
	}
	if len(seen) == 0 {
		t.Fatal("stub never ran")
	}
}

// TestCampaignUndershootReported stubs a campaign whose injections never
// manifest: the pass exhausts its want*3 attempt budget with n < want, and
// that shortfall must be recorded on the row instead of silently shrinking
// the denominators.
func TestCampaignUndershootReported(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	cfg := DefaultCampaign(4, 99)
	cfg.Apps = []string{"vi"}
	cfg.Workers = 1
	cfg.runExperiment = func(ecfg Config) Result {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n%2 == 1 {
			// Half the attempts manifest a fault...
			return Result{Outcome: OutcomeSuccess}
		}
		// ...the other half are discarded no-fault runs.
		return Result{Outcome: OutcomeNoKernelFault}
	}
	rows := RunTable5(cfg)
	r := rows[0]
	// 12 attempts, 6 faulted: want=4 is met by the unprotected pass, so
	// no shortfall there.
	if r.Shortfall != 0 {
		t.Fatalf("unexpected unprotected shortfall %d (N=%d)", r.Shortfall, r.N)
	}

	// Now a campaign where nothing ever manifests.
	cfg.runExperiment = func(Config) Result {
		return Result{Outcome: OutcomeNoKernelFault,
			Detail: newDetail(StageNoFault, "", "injected faults never manifested", nil, nil)}
	}
	rows = RunTable5(cfg)
	r = rows[0]
	if r.N != 0 {
		t.Fatalf("N = %d, want 0", r.N)
	}
	if r.Shortfall != 4 || r.ProtShortfall != 4 {
		t.Fatalf("Shortfall = %d/%d, want 4/4", r.Shortfall, r.ProtShortfall)
	}
	warns := Shortfalls(rows)
	if len(warns) != 2 {
		t.Fatalf("Shortfalls = %v, want one warning per pass", warns)
	}
	if !strings.Contains(warns[0], "vi") || !strings.Contains(warns[0], "attempt budget") {
		t.Fatalf("warning lacks context: %q", warns[0])
	}
}

// TestTopReasonsNumericOrder reproduces the lexicographic-sort bug: with a
// 10000-count reason and a 9999-count reason, string sorting put " 9999x"
// above "10000x". The fixed sort is numeric, with deterministic tiebreak.
func TestTopReasonsNumericOrder(t *testing.T) {
	mk := func(reason string, n int) AttributionCount {
		return AttributionCount{
			Attribution: Attribution{Stage: StageTransfer, Reason: reason},
			Count:       n,
		}
	}
	rows := []Table5Row{{
		App: "vi",
		Attributions: []AttributionCount{
			mk("rare", 3),
			mk("common", 10000),
			mk("frequent", 9999),
			mk("tie-b", 7),
			mk("tie-a", 7),
		},
	}}
	got := TopReasons(rows)
	if len(got) != 5 {
		t.Fatalf("got %d reasons, want 5", len(got))
	}
	wantOrder := []string{"common", "frequent", "tie-a", "tie-b", "rare"}
	for i, w := range wantOrder {
		if !strings.Contains(got[i], w) {
			t.Fatalf("position %d = %q, want reason %q (full: %v)", i, got[i], w, got)
		}
	}
	if !strings.HasPrefix(strings.TrimSpace(got[0]), "10000x") {
		t.Fatalf("top reason = %q, want the 10000-count one first", got[0])
	}
}

// TestCampaignAttributionAggregation checks that stubbed failures aggregate
// by structured attribution, sorted most-frequent first.
func TestCampaignAttributionAggregation(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	cfg := DefaultCampaign(6, 7)
	cfg.Apps = []string{"vi"}
	cfg.Workers = 1
	cfg.SkipProtected = true
	cfg.runExperiment = func(Config) Result {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n%3 == 0 {
			return Result{Outcome: OutcomeBootFailure,
				Detail: newDetail(StageTransfer, "", "no watchdog", nil, nil)}
		}
		return Result{Outcome: OutcomeResurrectFailure,
			Detail: newDetail(StageResurrect, "page-copy", "bad frame 0x1a2b", nil, nil)}
	}
	rows := RunTable5(cfg)
	r := rows[0]
	if len(r.Attributions) != 2 {
		t.Fatalf("attributions = %+v, want 2 modes", r.Attributions)
	}
	top := r.Attributions[0]
	if top.Stage != StageResurrect || top.Phase != "page-copy" {
		t.Fatalf("top attribution = %+v, want the resurrect/page-copy mode", top)
	}
	if top.Count <= r.Attributions[1].Count {
		t.Fatalf("attributions not sorted by count: %+v", r.Attributions)
	}
	// The hex address must have been normalized away so repeats aggregate.
	if strings.Contains(top.Reason, "0x1a2b") {
		t.Fatalf("reason not normalized: %q", top.Reason)
	}
}

// TestWarmupOpsNonNegativeSeed pins the negative-seed fix: Go's % keeps the
// dividend's sign, so 40 + int(seed%97) used to drop below the 40-op floor
// (to -56 at worst) for negative seeds.
func TestWarmupOpsNonNegativeSeed(t *testing.T) {
	for _, seed := range []int64{0, 1, 96, 97, -1, -96, -97, -1 << 62} {
		got := warmupOps(seed)
		if got < 40 || got > 136 {
			t.Errorf("warmupOps(%d) = %d, want within [40,136]", seed, got)
		}
	}
	// Congruent seeds must warm up identically regardless of sign wrap.
	if warmupOps(-97) != warmupOps(0) || warmupOps(-1) != warmupOps(96) {
		t.Error("warmupOps not congruent mod 97 across signs")
	}
}
