package experiment

import "testing"

// TestScalingShape checks the Section 4 size argument: kernel data grows
// with footprint, page tables dominate increasingly, and the kernel-data /
// footprint ratio stays far below 1% (the paper's 0.13% bound).
func TestScalingShape(t *testing.T) {
	rows, err := MeasureScaling(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ScaleSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].KernelKB <= rows[i-1].KernelKB {
			t.Fatalf("kernel data not monotone: %v", rows)
		}
		if rows[i].ResurrectionTime <= rows[i-1].ResurrectionTime {
			t.Fatalf("resurrection time not monotone: %v", rows)
		}
	}
	for _, r := range rows {
		if r.FractionOfFootprint > 0.01 {
			t.Fatalf("kernel data is %.3f%% of footprint, want < 1%%", 100*r.FractionOfFootprint)
		}
		if r.PageTableFraction < 0.5 {
			t.Fatalf("page tables only %.0f%%", 100*r.PageTableFraction)
		}
	}
	// The largest footprint's page-table share exceeds the smallest's,
	// mirroring Table 4's 60% -> 83% progression.
	if rows[len(rows)-1].PageTableFraction <= rows[0].PageTableFraction {
		t.Fatalf("page-table share not growing: %v", rows)
	}
}

// TestScalingMapPagesFaster: the footnote-3 fast path wins and its lead
// grows with footprint.
func TestScalingMapPagesFaster(t *testing.T) {
	slow, err := MeasureScaling(3, false)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeasureScaling(3, true)
	if err != nil {
		t.Fatal(err)
	}
	last := len(slow) - 1
	if fast[last].ResurrectionTime >= slow[last].ResurrectionTime {
		t.Fatalf("map pages (%v) should beat copy (%v) at %v MB",
			fast[last].ResurrectionTime, slow[last].ResurrectionTime, slow[last].FootprintMB)
	}
}
