// Package experiment reproduces the paper's evaluation (Section 6): the
// fault-injection campaigns behind Table 5, the protection-overhead
// measurements behind Table 3, the resurrection byte accounting behind
// Table 4, the service-interruption timings behind Table 6, and the
// 89%→97% hardening ablation.
package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"otherworld/internal/core"
	"otherworld/internal/disk"
	"otherworld/internal/faultinject"
	"otherworld/internal/fs"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/resurrect"
	"otherworld/internal/sim"
	"otherworld/internal/spans"
	"otherworld/internal/trace"
	"otherworld/internal/workload"
)

// Outcome classifies one fault-injection experiment, mapping onto Table 5's
// columns.
type Outcome int

// Experiment outcomes.
const (
	// OutcomeNoKernelFault: the injected faults never manifested; the
	// paper discards these (~20% of runs).
	OutcomeNoKernelFault Outcome = iota
	// OutcomeSuccess: the application was resurrected and its data
	// verified against the remote log.
	OutcomeSuccess
	// OutcomeBootFailure: control never reached the crash kernel
	// (Table 5, "failure to boot the crash kernel").
	OutcomeBootFailure
	// OutcomeResurrectFailure: main-kernel structure corruption (or an
	// unrecoverable resource) prevented resurrection (Table 5 column 4).
	OutcomeResurrectFailure
	// OutcomeDataCorruption: the application came back but its data
	// diverged from the remote log (Table 5 last column).
	OutcomeDataCorruption
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNoKernelFault:
		return "no-kernel-fault"
	case OutcomeSuccess:
		return "success"
	case OutcomeBootFailure:
		return "boot-failure"
	case OutcomeResurrectFailure:
		return "resurrect-failure"
	case OutcomeDataCorruption:
		return "data-corruption"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// AppNames lists the five Table 5 applications.
var AppNames = []string{"vi", "JOE", "MySQL", "Apache/PHP", "BLCR"}

// DriverFor builds the workload driver for one of the paper's application
// names (the Table 5 set plus Volano and the shell).
func DriverFor(app string, seed int64) (workload.Driver, error) {
	switch app {
	case "vi":
		return workload.NewEditorDriver("vi", "vi", seed), nil
	case "JOE":
		return workload.NewEditorDriver("joe", "joe", seed), nil
	case "MySQL":
		return workload.NewMySQLDriver(seed), nil
	case "Apache/PHP":
		return workload.NewApacheDriver(seed), nil
	case "BLCR":
		return workload.NewBLCRDriver(seed), nil
	case "Volano":
		return workload.NewVolanoDriver(seed), nil
	case "shell":
		return workload.NewShellDriver(seed), nil
	case "WAL":
		return workload.NewWALDriver(seed, false), nil
	case "WAL-bug":
		return workload.NewWALDriver(seed, true), nil
	}
	return nil, fmt.Errorf("experiment: unknown application %q", app)
}

// Config parameterizes one fault-injection experiment.
type Config struct {
	// App is the Table 5 application name.
	App string
	// Seed makes the experiment replayable.
	Seed int64
	// Protection enables user-space protection (Section 4).
	Protection bool
	// Hardening selects the Section 6 fixes (FullHardening by default via
	// DefaultConfig).
	Hardening kernel.Hardening
	// VerifyCRC enables record checksums.
	VerifyCRC bool
	// FaultsPerRun is the injection burst size (the paper uses 30).
	FaultsPerRun int
	// MemoryMB sizes the experiment machine.
	MemoryMB int
	// ResurrectWorkers is the resurrection pipeline's worker-pool width
	// (0 = NumCPU). The pool only changes the modeled interruption time;
	// every other result field is byte-identical at any width.
	ResurrectWorkers int
	// LazyInstall enables the demand-paged resurrection install: processes
	// resume as soon as their records parse, with page copies completed
	// copy-on-access (CRC-validated) or by the background sweeper.
	LazyInstall bool
	// Stream runs resurrection as the streaming pass: SLO-tier admission
	// ordering and pipelined per-candidate install commit instead of the
	// classic scan-everything-then-install batch.
	Stream bool
	// IndexSlots sizes the main kernel's candidate index in the crash
	// reservation (0 = none); discovery salvages it to skip the full
	// process-list walk.
	IndexSlots int
	// DiskCrash enables the block-layer crash model: at kernel-crash time
	// the volatile write cache may roll back, the in-flight sector write may
	// tear, and dirty page-cache pages that resurrection did not flush drain
	// to the platter in an undefined-but-seeded order.
	DiskCrash bool
	// Baseline skips Otherworld entirely: at kernel failure the machine
	// cold-reboots (the disk takes its crash consequences, every dirty page
	// orphaned) and the workload restarts the application from disk — the
	// "just reboot" recovery Otherworld is compared against.
	Baseline bool
	// BuildSpans reconstructs the post-mortem causal span tree (package
	// spans) onto Result.Spans after a recovery. Off by default: campaigns
	// aggregate percentiles without paying for per-run trees.
	BuildSpans bool
}

// DefaultConfig returns the paper's experiment parameters.
func DefaultConfig(app string, seed int64) Config {
	return Config{
		App:          app,
		Seed:         seed,
		Hardening:    kernel.FullHardening(),
		VerifyCRC:    true,
		FaultsPerRun: 30,
		MemoryMB:     256,
	}
}

// Result records one experiment.
type Result struct {
	Outcome Outcome
	// Panic is the kernel failure, if one manifested.
	Panic *kernel.PanicEvent
	// TransferReason explains a failed transfer.
	TransferReason string
	// ResurrectErr explains a failed resurrection.
	ResurrectErr error
	// VerifyErr explains detected data corruption.
	VerifyErr error
	// StructCorruption is set when the resurrection failure was a
	// detected corruption of main-kernel records (the "3 cases out of
	// 2000" statistic).
	StructCorruption bool
	// AckedOps is the workload progress across the whole experiment.
	AckedOps int
	// Detail is the structured failure attribution, set for every
	// non-success outcome: which pipeline stage failed, the resurrection
	// phase reached, and the panic context salvaged from the dead
	// kernel's flight recorder.
	Detail *FailureDetail
	// Trace is the dead kernel's recovered flight-recorder ring (nil
	// when tracing is disabled or no ring was recovered).
	Trace *trace.Parsed
	// Interruption is the serial-model outage of the recovery (zero when
	// the run never reached a recovery). Worker-count-independent.
	Interruption time.Duration
	// ParallelInterruption is the outage under the parallel schedule model
	// evaluated at resurrect.CanonicalWorkers, so campaign output does not
	// depend on the machine the campaign ran on.
	ParallelInterruption time.Duration
	// Duration is the experiment machine's virtual clock when the
	// experiment finished: the modeled cost of the whole run (boot, warmup,
	// failure, recovery, verification). The campaign pool's schedule model
	// (core.PoolSchedule) consumes these spans; like every other field it
	// is a pure function of the seed.
	Duration time.Duration
	// DataChecked is true when the driver audited the application's on-disk
	// state against its recovery invariants after the crash; DataErr is the
	// violation found (nil when the data survived intact).
	DataChecked bool
	DataErr     error
	// DiskCrash is the block-layer crash model's report (nil when the model
	// is disabled or no crash fired).
	DiskCrash *disk.CrashReport
	// DiskFingerprint hashes the post-experiment disk image (every file's
	// path and contents) when the crash model is enabled: the replay and
	// worker-width determinism tests compare it byte for byte.
	DiskFingerprint string
	// FirstTouch is the demand-fault stall sequence the resumed processes
	// paid under the lazy install (empty when eager): the samples behind
	// the Table 6 first-touch percentiles and the span plane's lazy track.
	// Worker-count-independent — touches resolve on the serial post-resume
	// execution path.
	FirstTouch []time.Duration
	// Spans is the reconstructed causal span tree for the recovery (nil
	// unless Config.BuildSpans was set and the run reached resurrection).
	Spans *spans.Tree
}

// Run executes one complete fault-injection experiment: boot, warm up the
// workload, inject a burst of faults, run until a kernel failure manifests
// (or give up and discard), microreboot, resurrect, reattach the workload,
// run further, and verify against the remote log.
func Run(cfg Config) Result {
	var m *core.Machine
	out := runBody(cfg, &m)
	if m != nil {
		out.Duration = m.HW.Clock.Now()
		if cfg.DiskCrash {
			if dm := m.DiskModel(); dm != nil && dm.Report().Fired {
				rep := dm.Report()
				out.DiskCrash = &rep
			}
			out.DiskFingerprint = DiskFingerprint(m.FS)
		}
	}
	return out
}

// DiskFingerprint hashes a disk image: every file path, size and content in
// the file system's sorted order. Two runs with the same seed must produce
// identical fingerprints at any campaign or resurrection worker width.
func DiskFingerprint(f *fs.FlatFS) string {
	h := sha256.New()
	var n [8]byte
	for _, path := range f.List() {
		data, err := f.ReadFile(path)
		if err != nil {
			continue
		}
		h.Write([]byte(path))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
		h.Write(n[:])
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runBody is Run without the duration stamp; it publishes the experiment
// machine through mp as soon as one exists so Run can read the final
// virtual clock on every exit path.
func runBody(cfg Config, mp **core.Machine) Result {
	if cfg.FaultsPerRun <= 0 {
		cfg.FaultsPerRun = 30
	}
	if cfg.MemoryMB <= 0 {
		cfg.MemoryMB = 256
	}
	opts := core.DefaultOptions()
	opts.HW = hw.Config{
		MemoryBytes:     cfg.MemoryMB << 20,
		NumCPUs:         2,
		TLBEntries:      64,
		WatchdogEnabled: true,
	}
	opts.CrashRegionMB = 16
	opts.VerifyCRC = cfg.VerifyCRC
	opts.UserSpaceProtection = cfg.Protection
	opts.Hardening = cfg.Hardening
	opts.Seed = cfg.Seed
	opts.Resurrection.Workers = cfg.ResurrectWorkers
	opts.Resurrection.Stream = cfg.Stream
	opts.LazyInstall = cfg.LazyInstall
	opts.CandidateIndexSlots = cfg.IndexSlots
	opts.DiskCrash.Enabled = cfg.DiskCrash

	m, err := core.NewMachine(opts)
	if err != nil {
		return Result{Outcome: OutcomeResurrectFailure, ResurrectErr: err,
			Detail: newDetail(StageSetup, "", err.Error(), nil, nil)}
	}
	*mp = m
	d, err := DriverFor(cfg.App, cfg.Seed+7777)
	if err != nil {
		return Result{Outcome: OutcomeResurrectFailure, ResurrectErr: err,
			Detail: newDetail(StageSetup, "", err.Error(), nil, nil)}
	}
	if err := d.Start(m); err != nil {
		return Result{Outcome: OutcomeResurrectFailure, ResurrectErr: err,
			Detail: newDetail(StageSetup, "", err.Error(), nil, nil)}
	}

	// Warm up for a seed-dependent amount of work ("we injected faults
	// after a random amount of time").
	warm := warmupOps(cfg.Seed)
	workload.RunUntilIdle(m, d, warm, warm*40)

	inj := faultinject.New(cfg.Seed ^ 0x5EEDFA17)
	if cfg.DiskCrash {
		// With the block layer modeled, land the burst at a seeded point
		// INSIDE the application's request cycle instead of at the post-warmup
		// idle. Corruption manifests at a function's first post-injection
		// execution, so injecting into a drained machine pins the crash to the
		// first syscall after idle — and no crash could ever catch a write
		// acknowledged but not yet synced. Queuing work and advancing a seeded
		// number of quanta first lets the crash land on any write/fsync
		// boundary, which is the whole point of auditing on-disk state.
		r := sim.NewRNG(cfg.Seed ^ 0x0B10CF7A)
		d.Pump(m, 24)
		m.Run(1 + r.Intn(120))
	}
	if _, err := inj.InjectBurst(m.K, cfg.FaultsPerRun); err != nil {
		return Result{Outcome: OutcomeResurrectFailure, ResurrectErr: err,
			Detail: newDetail(StageSetup, "", err.Error(), nil, nil)}
	}
	if cfg.DiskCrash {
		// Schedule the crash's block-layer consequences alongside the
		// memory faults; they fire when the kernel actually goes down.
		inj.ArmDiskCrash(m.K, m.DiskModel())
	}

	// Run until a failure manifests; several pump rounds bound the run.
	var res kernel.RunResult
	for round := 0; round < 6; round++ {
		res = workload.RunUntilIdle(m, d, 60, 2400)
		if res.Panic != nil {
			break
		}
	}
	if res.Panic == nil {
		// Discarded run; the live ring still shows what was injected.
		var tr *trace.Parsed
		if reg := m.TraceRegion(); reg.Frames > 0 {
			tr = trace.Parse(m.HW.Mem, reg)
		}
		return Result{Outcome: OutcomeNoKernelFault, AckedOps: d.Acked(), Trace: tr,
			Detail: newDetail(StageNoFault, "", "injected faults never manifested", tr, nil)}
	}
	out := Result{Panic: res.Panic}
	if cfg.Baseline {
		return runBaseline(m, d, out)
	}

	fo, err := m.HandleFailure()
	if fo != nil {
		out.Trace = fo.Trace
	}
	if err != nil {
		out.Outcome = OutcomeBootFailure
		out.TransferReason = err.Error()
		out.Detail = newDetail(StageTransfer, "", err.Error(), out.Trace, res.Panic)
		checkData(m, d, &out)
		return out
	}
	if fo.Result != core.ResultRecovered {
		out.Outcome = OutcomeBootFailure
		out.TransferReason = fo.Transfer.Reason
		out.Detail = newDetail(StageTransfer, "", fo.Transfer.Reason, out.Trace, res.Panic)
		checkData(m, d, &out)
		return out
	}
	// Recovery happened: record the outage under both schedule models. Both
	// are worker-count-independent (the serial correction and the canonical
	// re-evaluation cancel the live pool width), keeping campaign output
	// replayable from -seed alone.
	out.Interruption = fo.SerialInterruption
	out.ParallelInterruption = fo.InterruptionAt(resurrect.CanonicalWorkers)

	// Locate our application's resurrection report.
	var found bool
	for _, pr := range fo.Report.Procs {
		if pr.Candidate.Program == d.Program() {
			found = true
			if pr.Outcome == resurrect.OutcomeContinued || pr.Outcome == resurrect.OutcomeRestarted {
				break
			}
			if pr.Outcome == resurrect.OutcomeGaveUp {
				// The crash procedure's own integrity check found the
				// application state damaged — detected data corruption.
				out.Outcome = OutcomeDataCorruption
				out.VerifyErr = fmt.Errorf("crash procedure found state corrupted and gave up")
				out.Detail = newDetail(StageVerify, failedPhase(pr), out.VerifyErr.Error(), out.Trace, res.Panic)
				checkData(m, d, &out)
				return out
			}
			out.Outcome = OutcomeResurrectFailure
			out.ResurrectErr = pr.Err
			out.StructCorruption = pr.Err != nil && layout.IsCorruption(pr.Err)
			reason := "resurrection failed"
			if pr.Err != nil {
				reason = pr.Err.Error()
			}
			out.Detail = newDetail(StageResurrect, failedPhase(pr), reason, out.Trace, res.Panic)
			checkData(m, d, &out)
			return out
		}
	}
	if !found {
		out.Outcome = OutcomeResurrectFailure
		out.ResurrectErr = fmt.Errorf("process not found in dead kernel's process list")
		out.StructCorruption = true
		out.Detail = newDetail(StageResurrect, resurrect.PhaseParse.String(),
			out.ResurrectErr.Error(), out.Trace, res.Panic)
		checkData(m, d, &out)
		return out
	}

	if err := d.Reattach(m); err != nil {
		out.Outcome = OutcomeResurrectFailure
		out.ResurrectErr = err
		out.Detail = newDetail(StageWorkload, "", err.Error(), out.Trace, res.Panic)
		checkData(m, d, &out)
		return out
	}
	post := workload.RunUntilIdle(m, d, 60, 2400)
	if post.Panic != nil {
		// A second, fresh-kernel failure right after recovery: treat as
		// a resurrection failure (should be vanishingly rare).
		out.Outcome = OutcomeResurrectFailure
		out.ResurrectErr = post.Panic
		out.Detail = newDetail(StageWorkload, "", post.Panic.Error(), out.Trace, res.Panic)
		checkData(m, d, &out)
		return out
	}
	out.AckedOps = d.Acked()
	if err := d.Verify(m); err != nil {
		out.Outcome = OutcomeDataCorruption
		out.VerifyErr = err
		out.Detail = newDetail(StageVerify, "", err.Error(), out.Trace, res.Panic)
		checkData(m, d, &out)
		captureSpanPlane(cfg, m, fo, &out)
		return out
	}
	checkData(m, d, &out)
	captureSpanPlane(cfg, m, fo, &out)
	if out.DataErr != nil {
		// The process came back and its in-memory state verified, but the
		// platter broke a recovery invariant: that is data corruption an
		// application restart would inherit.
		out.Outcome = OutcomeDataCorruption
		out.VerifyErr = out.DataErr
		out.Detail = newDetail(StageVerify, "", out.DataErr.Error(), out.Trace, res.Panic)
		return out
	}
	out.Outcome = OutcomeSuccess
	return out
}

// captureSpanPlane closes the experiment's observability loop after a
// recovery: it records the span-boundary marks (resume, data audit) on the
// new kernel's flight recorder — the only runtime trace the causal span
// plane adds, and it is post-failure — snapshots the first-touch stall
// sequence onto the result, and, when Config.BuildSpans asks for it,
// reconstructs the full causal span tree at the canonical analysis width.
func captureSpanPlane(cfg Config, m *core.Machine, fo *core.FailureOutcome, out *Result) {
	if fo == nil || fo.Report == nil {
		return
	}
	if tr := m.Tracer(); tr != nil {
		tr.Record(trace.Event{Kind: trace.KindSpanMark, A: trace.SpanMarkResume,
			B: uint64(fo.Report.Succeeded())})
		if out.DataChecked {
			var b uint64
			if out.DataErr != nil {
				b = 1
			}
			tr.Record(trace.Event{Kind: trace.KindSpanMark, A: trace.SpanMarkAudit, B: b})
		}
	}
	out.FirstTouch = append([]time.Duration(nil), fo.Report.FirstTouch...)
	if !cfg.BuildSpans {
		return
	}
	var post []trace.Event
	if reg := m.TraceRegion(); reg.Frames > 0 {
		if p := trace.Parse(m.HW.Mem, reg); p != nil {
			post = p.Events
		}
	}
	derr := ""
	if out.DataErr != nil {
		derr = out.DataErr.Error()
	}
	tree, err := spans.Build(spans.Input{
		App:          cfg.App,
		Seed:         cfg.Seed,
		Lazy:         cfg.LazyInstall,
		Workers:      resurrect.CanonicalWorkers,
		Report:       fo.Report,
		Interruption: fo.SerialInterruption,
		PostEvents:   post,
		DataChecked:  out.DataChecked,
		DataErr:      derr,
	})
	if err == nil {
		out.Spans = tree
	}
}

// checkData audits the application's on-disk state against its recovery
// invariants, when the driver supports it. It runs on every post-crash exit
// path — the platter can be checked even when the process did not survive.
func checkData(m *core.Machine, d workload.Driver, out *Result) {
	ck, ok := d.(workload.DataInvariantChecker)
	if !ok {
		return
	}
	out.DataChecked = true
	out.DataErr = ck.CheckDataInvariants(m)
}

// runBaseline is the no-Otherworld control: the kernel failure cold-reboots
// the machine (the disk taking its crash consequences with every dirty page
// orphaned), and the workload restarts the application from whatever the
// platter holds — comparing "just reboot" recovery against resurrection.
func runBaseline(m *core.Machine, d workload.Driver, out Result) Result {
	if _, err := m.CrashDiskForReboot(); err != nil {
		out.Outcome = OutcomeBootFailure
		out.TransferReason = err.Error()
		out.Detail = newDetail(StageTransfer, "", err.Error(), nil, out.Panic)
		checkData(m, d, &out)
		return out
	}
	if err := m.ColdReboot(); err != nil {
		out.Outcome = OutcomeBootFailure
		out.TransferReason = err.Error()
		out.Detail = newDetail(StageTransfer, "", err.Error(), nil, out.Panic)
		checkData(m, d, &out)
		return out
	}
	if err := d.Reattach(m); err != nil {
		out.Outcome = OutcomeResurrectFailure
		out.ResurrectErr = err
		out.Detail = newDetail(StageWorkload, "", err.Error(), nil, out.Panic)
		checkData(m, d, &out)
		return out
	}
	post := workload.RunUntilIdle(m, d, 60, 2400)
	if post.Panic != nil {
		out.Outcome = OutcomeResurrectFailure
		out.ResurrectErr = post.Panic
		out.Detail = newDetail(StageWorkload, "", post.Panic.Error(), nil, out.Panic)
		checkData(m, d, &out)
		return out
	}
	out.AckedOps = d.Acked()
	checkData(m, d, &out)
	if err := d.Verify(m); err != nil {
		out.Outcome = OutcomeDataCorruption
		out.VerifyErr = err
		out.Detail = newDetail(StageVerify, "", err.Error(), nil, out.Panic)
		return out
	}
	if out.DataErr != nil {
		out.Outcome = OutcomeDataCorruption
		out.VerifyErr = out.DataErr
		out.Detail = newDetail(StageVerify, "", out.DataErr.Error(), nil, out.Panic)
		return out
	}
	out.Outcome = OutcomeSuccess
	return out
}

// warmupOps derives the seed-dependent warm-up length. The modulus is
// clamped non-negative: Go's % keeps the dividend's sign, so a negative
// seed would otherwise shrink the warm-up below its floor (and below zero).
func warmupOps(seed int64) int {
	off := seed % 97
	if off < 0 {
		off += 97
	}
	return 40 + int(off)
}
