package experiment

import (
	"fmt"
	"strings"
	"time"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/workload"
)

// RecoveryMode is one of the worlds compared in the paper's introduction
// and related work: the status quo (full reboot), KDump (dump + reboot),
// and Otherworld.
type RecoveryMode int

// Recovery modes.
const (
	ModeReboot RecoveryMode = iota
	ModeKDump
	ModeOtherworld
)

func (m RecoveryMode) String() string {
	switch m {
	case ModeReboot:
		return "full reboot"
	case ModeKDump:
		return "KDump"
	case ModeOtherworld:
		return "Otherworld"
	}
	return fmt.Sprintf("RecoveryMode(%d)", int(m))
}

// CompareRow is one recovery mode's outcome on the same crash.
type CompareRow struct {
	Mode RecoveryMode
	// StatePreserved reports whether the application's volatile state
	// survived (verified against the remote log for Otherworld).
	StatePreserved bool
	// DumpBytes is the post-mortem image size (KDump only).
	DumpBytes int64
	// Interruption is the virtual time until the machine is back.
	Interruption time.Duration
}

// CompareRecoveryModes subjects the same application/crash to all three
// recovery modes and reports what each preserves and costs.
func CompareRecoveryModes(app string, seed int64) ([]CompareRow, error) {
	rows := make([]CompareRow, 0, 3)
	for _, mode := range []RecoveryMode{ModeReboot, ModeKDump, ModeOtherworld} {
		opts := core.DefaultOptions()
		opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
		opts.CrashRegionMB = 16
		opts.Seed = seed
		m, err := core.NewMachine(opts)
		if err != nil {
			return nil, err
		}
		d, err := DriverFor(app, seed+1)
		if err != nil {
			return nil, err
		}
		if err := d.Start(m); err != nil {
			return nil, err
		}
		workload.RunUntilIdle(m, d, 100, 5000)
		if err := m.K.InjectOops("comparison crash"); err == nil {
			return nil, fmt.Errorf("no panic")
		}
		row := CompareRow{Mode: mode}
		failedAt := m.HW.Clock.Now()
		switch mode {
		case ModeReboot:
			if err := m.ColdReboot(); err != nil {
				return nil, err
			}
			row.Interruption = m.HW.Clock.Now() - failedAt
		case ModeKDump:
			out, err := m.HandleFailureKDump("/var/crash/vmcore")
			if err != nil {
				return nil, err
			}
			row.DumpBytes = out.DumpBytes
			row.Interruption = out.Interruption
		case ModeOtherworld:
			out, err := m.HandleFailure()
			if err != nil {
				return nil, err
			}
			if out.Result == core.ResultRecovered {
				if err := d.Reattach(m); err == nil {
					workload.RunUntilIdle(m, d, 40, 2500)
					row.StatePreserved = d.Verify(m) == nil
				}
			}
			row.Interruption = out.Interruption
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComparison formats the three-world comparison.
func RenderComparison(app string, rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s after an identical kernel crash:\n", app)
	fmt.Fprintf(&b, "%-12s %16s %14s %14s\n", "Recovery", "State preserved", "Dump size", "Interruption")
	for _, r := range rows {
		dump := "-"
		if r.DumpBytes > 0 {
			dump = fmt.Sprintf("%d MB", r.DumpBytes>>20)
		}
		fmt.Fprintf(&b, "%-12s %16v %14s %13.0fs\n", r.Mode, r.StatePreserved, dump, r.Interruption.Seconds())
	}
	return b.String()
}
