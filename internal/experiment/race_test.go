package experiment

import (
	"sync"
	"testing"
)

// TestParallelExperimentsRaceFree runs experiments concurrently, as the
// campaign does; with -race this validates the shared registries.
func TestParallelExperimentsRaceFree(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cfg := DefaultConfig("vi", seed)
			_ = Run(cfg)
		}(int64(1000 + i))
	}
	wg.Wait()
}
