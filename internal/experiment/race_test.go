package experiment

import (
	"sync"
	"testing"
)

// TestParallelExperimentsRaceFree runs experiments concurrently, as the
// campaign does; with -race this validates the shared registries. Each
// experiment also runs its resurrection pipeline with a multi-worker pool,
// so the detector sees campaign-level and scan-level concurrency nested.
func TestParallelExperimentsRaceFree(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cfg := DefaultConfig("vi", seed)
			cfg.ResurrectWorkers = 4
			_ = Run(cfg)
		}(int64(1000 + i))
	}
	wg.Wait()
}

// TestResurrectWorkersDoNotChangeResults replays one experiment at pool
// widths 1 and 8: every result field, including both modeled interruption
// columns, must be identical — the campaign-determinism contract the
// ResurrectWorkers knob advertises.
func TestResurrectWorkersDoNotChangeResults(t *testing.T) {
	run := func(workers int) Result {
		cfg := DefaultConfig("vi", 1003) // a seed whose run recovers
		cfg.ResurrectWorkers = workers
		return Run(cfg)
	}
	r1, r8 := run(1), run(8)
	if r1.Outcome != OutcomeSuccess {
		t.Fatalf("seed no longer recovers (outcome %v); pick another so the comparison stays meaningful", r1.Outcome)
	}
	if r1.Interruption <= 0 {
		t.Fatal("recovered run reported zero interruption")
	}
	if r1.Outcome != r8.Outcome || r1.AckedOps != r8.AckedOps {
		t.Fatalf("outcome drifted: w1=%v/%d w8=%v/%d", r1.Outcome, r1.AckedOps, r8.Outcome, r8.AckedOps)
	}
	if r1.Interruption != r8.Interruption {
		t.Fatalf("serial interruption drifted: %v vs %v", r1.Interruption, r8.Interruption)
	}
	if r1.ParallelInterruption != r8.ParallelInterruption {
		t.Fatalf("parallel interruption drifted: %v vs %v", r1.ParallelInterruption, r8.ParallelInterruption)
	}
}
