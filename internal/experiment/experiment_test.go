package experiment

import (
	"strings"
	"testing"

	"otherworld/internal/metrics"
)

func TestSingleExperimentOutcomes(t *testing.T) {
	// A handful of seeded experiments must complete without harness
	// errors and produce only the defined outcomes.
	for i := int64(0); i < 6; i++ {
		cfg := DefaultConfig("vi", 100+i*31)
		res := Run(cfg)
		switch res.Outcome {
		case OutcomeNoKernelFault, OutcomeSuccess, OutcomeBootFailure,
			OutcomeResurrectFailure, OutcomeDataCorruption:
		default:
			t.Fatalf("seed %d: undefined outcome %v", cfg.Seed, res.Outcome)
		}
		if res.Outcome == OutcomeSuccess && res.AckedOps == 0 {
			t.Fatalf("seed %d: success with no progress", cfg.Seed)
		}
	}
}

func TestExperimentDeterministic(t *testing.T) {
	cfg := DefaultConfig("MySQL", 777)
	a := Run(cfg)
	b := Run(cfg)
	if a.Outcome != b.Outcome || a.AckedOps != b.AckedOps {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.Outcome, a.AckedOps, b.Outcome, b.AckedOps)
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := DriverFor("photoshop", 1); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestSmallCampaignAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	cfg := DefaultCampaign(6, 321)
	cfg.Apps = []string{"vi"}
	cfg.SkipProtected = true
	cfg.Metrics = metrics.NewRegistry()
	rows := RunTable5(cfg)
	if len(rows) != 1 || rows[0].N != 6 {
		t.Fatalf("rows = %+v", rows)
	}
	// The registry counters mirror the tally rows exactly.
	var counted int64
	for _, p := range cfg.Metrics.Snapshot().Points {
		if p.Name == "campaign_runs_total" {
			if p.Labels["app"] != "vi" || p.Labels["pass"] != "unprotected" {
				t.Fatalf("unexpected campaign series labels: %+v", p.Labels)
			}
			counted += p.Value
		}
	}
	if counted != 6 {
		t.Fatalf("campaign_runs_total sums to %d, want 6", counted)
	}
	r := rows[0]
	sum := r.Success + r.BootFailure + r.ResurrectFail + r.CorruptNoProt
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	out := RenderTable5(rows)
	if !strings.Contains(out, "vi") || !strings.Contains(out, "%") {
		t.Fatalf("render: %q", out)
	}
}

func TestTable6ShellMatchesCostModel(t *testing.T) {
	row, err := MeasureTable6("shell", 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.BootTime.Seconds() < 60 || row.BootTime.Seconds() > 70 {
		t.Fatalf("shell boot = %v", row.BootTime)
	}
	if row.Interruption.Seconds() < 50 || row.Interruption.Seconds() > 58 {
		t.Fatalf("shell interruption = %v", row.Interruption)
	}
	if row.Interruption >= row.BootTime {
		t.Fatal("interruption should beat a cold boot")
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 in -short mode")
	}
	rows, err := RunTable4(2)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table4Row{}
	for _, r := range rows {
		byApp[r.App] = r
		// Page tables dominate the data read (the paper's 60-83%).
		if r.PageTableFraction < 0.5 {
			t.Fatalf("%s page-table fraction = %v", r.App, r.PageTableFraction)
		}
		if r.KernelBytes <= 0 {
			t.Fatalf("%s kernel bytes = %d", r.App, r.KernelBytes)
		}
	}
	// The ordering property: bigger applications need more kernel data.
	if byApp["BLCR"].KernelBytes <= byApp["vi"].KernelBytes {
		t.Fatalf("BLCR (%d) should read more than vi (%d)",
			byApp["BLCR"].KernelBytes, byApp["vi"].KernelBytes)
	}
}

func TestRenderTable1Mentions(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"Crash procedure defined", "resurrection fails", "continues"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 render missing %q:\n%s", want, out)
		}
	}
}

// TestProtectionNeverFaster is the directional property behind Table 3:
// user-space protection can only add TLB misses and cycles, never remove
// them, for every benchmark workload.
func TestProtectionNeverFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("protection sweep in -short mode")
	}
	for _, app := range Table3Benchmarks {
		row, err := MeasureTable3(app, 80, 42)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if row.Overhead < 0 {
			t.Fatalf("%s: negative overhead %v", app, row.Overhead)
		}
		if row.TLBMissIncrease < 0 {
			t.Fatalf("%s: protection reduced TLB misses (%v)", app, row.TLBMissIncrease)
		}
	}
}
