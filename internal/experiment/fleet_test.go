package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otherworld/internal/resurrect"
	"otherworld/internal/sched"
)

// compareGolden pins got against testdata/name, rewriting under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output drifted from golden (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// TestFleetRecoverySmoke runs the small fleet end to end: recovery
// succeeds, every tier has candidates, and the rendered table carries the
// index-discovery attribution. This is the `make verify` fleet smoke.
func TestFleetRecoverySmoke(t *testing.T) {
	cfg := DefaultFleet(48, 7)
	res, err := FleetRecovery(cfg)
	if err != nil {
		t.Fatalf("FleetRecovery: %v", err)
	}
	if res.Population != 48 {
		t.Fatalf("population = %d, want 48", res.Population)
	}
	for _, st := range res.Tiers {
		if st.Procs == 0 {
			t.Errorf("tier-%d has no candidates", st.Tier)
		}
		if !st.HasPercentiles {
			t.Errorf("tier-%d has candidates but no percentiles", st.Tier)
		}
	}
	if res.IndexUsed == 0 || res.IndexFallback != "" {
		t.Errorf("index discovery not used: used=%d fallback=%q", res.IndexUsed, res.IndexFallback)
	}
	tab := res.RenderFleetTable()
	if !strings.Contains(tab, "discovery=index") {
		t.Errorf("table missing index attribution:\n%s", tab)
	}
	rep := res.Outcome.Report
	if !rep.Streamed {
		t.Fatalf("report not streamed")
	}
	if len(rep.Tiers) != len(rep.PerCandidate) {
		t.Fatalf("tiers %d != candidates %d", len(rep.Tiers), len(rep.PerCandidate))
	}
	// Admission is tier-then-PID: tiers must be non-decreasing up to
	// aging, and with this small population aging never demotes anyone.
	for i := 1; i < len(rep.Tiers); i++ {
		if rep.Tiers[i] < rep.Tiers[i-1] {
			t.Fatalf("admission order regressed: tier %d after tier %d at %d",
				rep.Tiers[i], rep.Tiers[i-1], i)
		}
	}
}

// TestFleetCorruptIndexFallsBack smashes the index header and requires the
// discovery to degrade to the full walk — attributed, skip-and-count,
// recovery still whole.
func TestFleetCorruptIndexFallsBack(t *testing.T) {
	cfg := DefaultFleet(48, 7)
	cfg.CorruptIndex = true
	res, err := FleetRecovery(cfg)
	if err != nil {
		t.Fatalf("FleetRecovery: %v", err)
	}
	if !strings.HasPrefix(res.IndexFallback, "index-salvage: ") {
		t.Fatalf("fallback attribution = %q, want index-salvage prefix", res.IndexFallback)
	}
	if res.IndexUsed != 0 {
		t.Fatalf("corrupt index still reported %d used entries", res.IndexUsed)
	}
	for _, st := range res.Tiers {
		if st.Procs == 0 {
			t.Errorf("tier-%d lost its candidates in the fallback", st.Tier)
		}
	}
	if got := res.RenderFleetTable(); !strings.Contains(got, "full-walk after") {
		t.Errorf("table missing fallback attribution:\n%s", got)
	}
}

// TestFleetIndexBeatsFullWalk pins the index-assisted discovery win: the
// prologue with a salvaged index must be shorter than the full-heap walk's
// on the same fleet, same seed.
func TestFleetIndexBeatsFullWalk(t *testing.T) {
	indexed, err := FleetRecovery(DefaultFleet(96, 11))
	if err != nil {
		t.Fatalf("indexed: %v", err)
	}
	walk := DefaultFleet(96, 11)
	walk.IndexSlots = 0
	walked, err := FleetRecovery(walk)
	if err != nil {
		t.Fatalf("full walk: %v", err)
	}
	if indexed.IndexUsed == 0 {
		t.Fatalf("indexed run did not use the index")
	}
	if walked.IndexUsed != 0 || walked.IndexFallback != "" {
		t.Fatalf("walk run touched the index: used=%d fallback=%q",
			walked.IndexUsed, walked.IndexFallback)
	}
	if indexed.Prologue >= walked.Prologue {
		t.Fatalf("index prologue %v not better than full walk %v",
			indexed.Prologue, walked.Prologue)
	}
	t.Logf("prologue: index=%v walk=%v (%.2fx)", indexed.Prologue, walked.Prologue,
		float64(walked.Prologue)/float64(indexed.Prologue))
}

// TestFleetStreamingTier0FirstResume is the headline acceptance: on a
// ≥512-process fleet the streaming pass must deliver at least 2× lower
// time-to-first-resume for the critical tier than the batch engine, at the
// canonical width.
func TestFleetStreamingTier0FirstResume(t *testing.T) {
	if testing.Short() {
		t.Skip("512-process fleet; skipped in -short")
	}
	stream, err := FleetRecovery(DefaultFleet(512, 3))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	batchCfg := DefaultFleet(512, 3)
	batchCfg.Stream = false
	batch, err := FleetRecovery(batchCfg)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	st := stream.Tiers[sched.TierCritical]
	bt := batch.Tiers[sched.TierCritical]
	if st.Procs == 0 || bt.Procs == 0 {
		t.Fatalf("tier-0 empty: stream=%d batch=%d", st.Procs, bt.Procs)
	}
	if st.Procs != bt.Procs {
		t.Fatalf("tier-0 population differs: stream=%d batch=%d", st.Procs, bt.Procs)
	}
	if 2*st.FirstResume > bt.FirstResume {
		t.Fatalf("tier-0 first-resume: stream=%v batch=%v, want ≥2x better",
			st.FirstResume, bt.FirstResume)
	}
	t.Logf("tier-0 first-resume: stream=%v batch=%v (%.1fx)",
		st.FirstResume, bt.FirstResume, float64(bt.FirstResume)/float64(st.FirstResume))
}

// TestFleetWidthDeterminism is the 1-vs-8 golden: every fingerprinted
// observable of the fleet recovery — resurrection report, per-tier table,
// span tree — must be byte-identical when only the live worker widths
// change. Eager and lazy, against committed goldens.
func TestFleetWidthDeterminism(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			var prints []string
			for _, w := range []int{1, 8} {
				cfg := DefaultFleet(48, 7)
				cfg.Workers = w
				cfg.Lazy = lazy
				res, err := FleetRecovery(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				tree, err := res.FleetSpanTree(cfg.Seed, lazy, resurrect.CanonicalWorkers)
				if err != nil {
					t.Fatalf("workers=%d span tree: %v", w, err)
				}
				print := res.Outcome.Report.Fingerprint() + res.RenderFleetTable() + tree.Fingerprint()
				prints = append(prints, print)
			}
			if prints[0] != prints[1] {
				t.Fatalf("fleet observables differ between 1 and 8 workers:\n--- w=1\n%s\n--- w=8\n%s",
					prints[0], prints[1])
			}
			compareGolden(t, "fleet_width_"+name+".golden", prints[0])
		})
	}
}
