package experiment

import (
	"strings"
	"testing"
)

// TestCompareRecoveryModes checks the introduction's three-world story: only
// Otherworld preserves volatile state; only KDump produces a dump; all
// three get the machine back.
func TestCompareRecoveryModes(t *testing.T) {
	rows, err := CompareRecoveryModes("MySQL", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[RecoveryMode]CompareRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Interruption <= 0 {
			t.Fatalf("%v: zero interruption", r.Mode)
		}
	}
	if byMode[ModeReboot].StatePreserved || byMode[ModeKDump].StatePreserved {
		t.Fatal("baselines must lose volatile state")
	}
	if !byMode[ModeOtherworld].StatePreserved {
		t.Fatal("Otherworld must preserve state")
	}
	if byMode[ModeKDump].DumpBytes == 0 {
		t.Fatal("KDump must produce a dump")
	}
	if byMode[ModeReboot].DumpBytes != 0 || byMode[ModeOtherworld].DumpBytes != 0 {
		t.Fatal("only KDump dumps")
	}
	// KDump pays the dump on top of the reboot.
	if byMode[ModeKDump].Interruption < byMode[ModeReboot].Interruption {
		t.Fatal("KDump should cost at least a full reboot")
	}
	out := RenderComparison("MySQL", rows)
	for _, want := range []string{"Otherworld", "KDump", "full reboot", "true", "false"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
