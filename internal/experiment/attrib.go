package experiment

import (
	"fmt"
	"regexp"
	"strings"

	"otherworld/internal/kernel"
	"otherworld/internal/resurrect"
	"otherworld/internal/trace"
)

// Stage names for Attribution.Stage: the coarse step of the experiment
// pipeline where a non-success outcome was decided.
const (
	// StageSetup: the experiment machine or workload failed to start.
	StageSetup = "setup"
	// StageNoFault: the injected faults never manifested (discarded runs).
	StageNoFault = "no-fault"
	// StageTransfer: control never reached the crash kernel.
	StageTransfer = "transfer"
	// StageResurrect: the crash kernel could not rebuild the process.
	StageResurrect = "resurrect"
	// StageWorkload: the application came back but failed while running.
	StageWorkload = "workload"
	// StageVerify: the application's data diverged from the remote log.
	StageVerify = "verify"
)

// Attribution is the structured, comparable key a failure aggregates under.
// It replaces the old free-text transfer-reason tallies: equal attributions
// are the same failure mode even when their raw messages differ in
// addresses or counts.
type Attribution struct {
	// Stage is the pipeline stage (Stage* constants).
	Stage string
	// Phase is the resurrection phase reached (see resurrect.Phase); ""
	// outside the resurrect stage.
	Phase string
	// PanicKind is the dead kernel's failure classification, recovered
	// from the flight-recorder ring when possible ("" if no panic).
	PanicKind string
	// Reason is the normalized failure message (addresses and large
	// numbers replaced by placeholders).
	Reason string
}

func (a Attribution) String() string {
	parts := []string{a.Stage}
	if a.Phase != "" {
		parts = append(parts, "phase="+a.Phase)
	}
	if a.PanicKind != "" {
		parts = append(parts, "panic="+a.PanicKind)
	}
	if a.Reason != "" {
		parts = append(parts, a.Reason)
	}
	return strings.Join(parts, ": ")
}

// AttributionCount is one aggregated failure mode with its tally —
// Table5Row carries a slice of these (JSON-friendly, unlike a struct-keyed
// map).
type AttributionCount struct {
	Attribution
	Count int
}

// FailureDetail is the per-experiment attribution: the aggregate key plus
// the panic context salvaged from the dead kernel's flight recorder.
type FailureDetail struct {
	Attribution
	// PanicCPU and PanicPC locate the failing thread (from the ring's
	// panic event when available).
	PanicCPU int
	PanicPC  uint64
	// InSyscall and SyscallNo say whether a system call was in flight.
	InSyscall bool
	SyscallNo uint16
	// RingEvents and RingDamaged describe the recovered ring itself.
	RingEvents  int
	RingDamaged int
	// FaultsInjected and Manifests count the ring's injection and
	// manifestation breadcrumbs.
	FaultsInjected int
	Manifests      int
}

var (
	hexAddrPat = regexp.MustCompile(`0x[0-9a-fA-F]+`)
	bigNumPat  = regexp.MustCompile(`\b\d{3,}\b`)
)

// NormalizeReason canonicalizes a failure message for aggregation:
// addresses and large numbers vary run to run without changing the failure
// mode, so they collapse to placeholders.
func NormalizeReason(s string) string {
	s = hexAddrPat.ReplaceAllString(s, "#addr")
	s = bigNumPat.ReplaceAllString(s, "#n")
	return s
}

// newDetail builds a FailureDetail from the stage/phase/reason and whatever
// the recovered flight recorder can add. Either trace or the fallback panic
// event may be nil.
func newDetail(stage, phase, reason string, tr *trace.Parsed, pe *kernel.PanicEvent) *FailureDetail {
	d := &FailureDetail{Attribution: Attribution{
		Stage:  stage,
		Phase:  phase,
		Reason: NormalizeReason(reason),
	}}
	if tr != nil {
		d.RingEvents = len(tr.Events)
		d.RingDamaged = tr.Damaged
		d.FaultsInjected = tr.CountKind(trace.KindFaultInject)
		d.Manifests = tr.CountKind(trace.KindFaultManifest)
		if pev := tr.LastPanic(); pev != nil {
			pk, _, insc, scno := trace.UnpackPanic(pev.A, pev.B)
			d.PanicKind = kernel.PanicKind(pk).String()
			d.PanicCPU = int(pev.CPU)
			d.PanicPC = pev.PC
			d.InSyscall = insc
			d.SyscallNo = scno
		}
	}
	// The live panic event backstops a ring that was too damaged (or too
	// small) to retain its panic slot.
	if d.PanicKind == "" && pe != nil {
		d.PanicKind = pe.Kind.String()
		d.PanicCPU = pe.CPU
	}
	return d
}

// failedPhase names the resurrection phase where a process report failed,
// "" when no phase carries an error.
func failedPhase(pr resurrect.ProcReport) string {
	if ph, ok := pr.Timeline.FailedPhase(); ok {
		return ph.String()
	}
	if pr.Outcome == resurrect.OutcomeFailed && len(pr.Timeline) > 0 {
		return pr.Timeline.Last().Phase.String()
	}
	return ""
}

// RenderDetail formats one failure attribution for human consumption.
func RenderDetail(d *FailureDetail) string {
	if d == nil {
		return "(no detail)"
	}
	s := d.Attribution.String()
	if d.PanicKind != "" {
		s += fmt.Sprintf(" [cpu%d pc=%d", d.PanicCPU, d.PanicPC)
		if d.InSyscall {
			s += fmt.Sprintf(" syscall=%d", d.SyscallNo)
		}
		s += "]"
	}
	if d.RingEvents > 0 || d.RingDamaged > 0 {
		s += fmt.Sprintf(" (ring: %d events, %d damaged, %d injected, %d manifested)",
			d.RingEvents, d.RingDamaged, d.FaultsInjected, d.Manifests)
	}
	return s
}
