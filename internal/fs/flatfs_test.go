package fs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCreateWriteRead(t *testing.T) {
	f := New()
	if err := f.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if !f.Exists("/a") || f.Exists("/b") {
		t.Fatal("existence wrong")
	}
	if _, err := f.WriteAt("/a", 0, []byte("hello"), false); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := f.ReadAt("/a", 0, buf)
	if err != nil || n != 5 || string(buf) != "hello" {
		t.Fatalf("read: %d %q %v", n, buf, err)
	}
}

func TestWriteAtExtendsWithZeroes(t *testing.T) {
	f := New()
	if _, err := f.WriteAt("/a", 10, []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	size, err := f.Size("/a")
	if err != nil || size != 11 {
		t.Fatalf("size = %d %v", size, err)
	}
	buf := make([]byte, 11)
	if _, err := f.ReadAt("/a", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:10], make([]byte, 10)) || buf[10] != 'x' {
		t.Fatalf("hole not zeroed: %v", buf)
	}
}

func TestReadPastEOF(t *testing.T) {
	f := New()
	_ = f.WriteFile("/a", []byte("ab"))
	buf := make([]byte, 4)
	n, err := f.ReadAt("/a", 2, buf)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF: %d %v", n, err)
	}
	n, err = f.ReadAt("/a", 1, buf)
	if err != nil || n != 1 || buf[0] != 'b' {
		t.Fatalf("partial read: %d %v", n, err)
	}
}

func TestMissingFileErrors(t *testing.T) {
	f := New()
	if _, err := f.ReadAt("/nope", 0, nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read: %v", err)
	}
	if _, err := f.WriteAt("/nope", 0, nil, false); !errors.Is(err, ErrNotExist) {
		t.Fatalf("write: %v", err)
	}
	if err := f.Remove("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove: %v", err)
	}
	if err := f.Truncate("/nope", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("truncate: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	f := New()
	_ = f.WriteFile("/a", []byte("hello world"))
	if err := f.Truncate("/a", 5); err != nil {
		t.Fatal(err)
	}
	data, _ := f.ReadFile("/a")
	if string(data) != "hello" {
		t.Fatalf("got %q", data)
	}
	if err := f.Truncate("/a", 8); err != nil {
		t.Fatal(err)
	}
	data, _ = f.ReadFile("/a")
	if !bytes.Equal(data, []byte("hello\x00\x00\x00")) {
		t.Fatalf("grow: %q", data)
	}
	if err := f.Truncate("/a", -1); err == nil {
		t.Fatal("negative truncate")
	}
}

func TestListSorted(t *testing.T) {
	f := New()
	_ = f.Create("/b")
	_ = f.Create("/a")
	_ = f.Create("/c")
	got := f.List()
	if len(got) != 3 || got[0] != "/a" || got[2] != "/c" {
		t.Fatalf("list = %v", got)
	}
}

func TestBadPaths(t *testing.T) {
	for _, p := range []string{"", "a\x00b", string(make([]byte, 5000))} {
		f := New()
		if err := f.Create(p); !errors.Is(err, ErrBadPath) {
			t.Fatalf("Create(%q): %v", p, err)
		}
	}
}

func TestWriteFileReadFileProperty(t *testing.T) {
	f := New()
	fn := func(name string, data []byte) bool {
		if !ValidPath(name) {
			return true
		}
		if err := f.WriteFile(name, data); err != nil {
			return false
		}
		got, err := f.ReadFile(name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileReturnsCopy(t *testing.T) {
	f := New()
	_ = f.WriteFile("/a", []byte("abc"))
	got, _ := f.ReadFile("/a")
	got[0] = 'z'
	again, _ := f.ReadFile("/a")
	if again[0] != 'a' {
		t.Fatal("ReadFile aliased internal storage")
	}
}

func TestBytesWritten(t *testing.T) {
	f := New()
	_ = f.WriteFile("/a", make([]byte, 100))
	_, _ = f.WriteAt("/a", 0, make([]byte, 50), false)
	if got := f.BytesWritten(); got != 150 {
		t.Fatalf("bytes written = %d", got)
	}
}
