// Package fs implements the persistent file system both kernels mount at
// the same mount point (Section 3.2: "the crash kernel and the main kernel
// ... mount the same file systems at the same mount points"). File contents
// survive kernel crashes; only in-memory state — open-file offsets and the
// page cache — dies with the main kernel and is rebuilt by resurrection.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors reported by the file system.
var (
	ErrNotExist = errors.New("fs: file does not exist")
	ErrExist    = errors.New("fs: file already exists")
	ErrBadPath  = errors.New("fs: invalid path")
)

// FlatFS is a flat-namespace file system: paths are opaque strings, files
// are byte arrays. It stands in for the ext3 file systems of the paper's
// testbed; hierarchy is irrelevant to resurrection, which only needs to
// reopen files by recorded name.
type FlatFS struct {
	mu    sync.Mutex
	files map[string]*file
	// writesBytes tracks cumulative bytes written, used by the time model
	// to charge crash-procedure saves.
	writeBytes int64
}

type file struct {
	data []byte
}

// New returns an empty file system.
func New() *FlatFS {
	return &FlatFS{files: make(map[string]*file)}
}

// ValidPath reports whether p is an acceptable file path.
func ValidPath(p string) bool {
	return p != "" && !strings.ContainsRune(p, '\x00') && len(p) < 4096
}

// Create makes an empty file, truncating any existing one.
func (f *FlatFS) Create(path string) error {
	if !ValidPath(path) {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = &file{}
	return nil
}

// Exists reports whether path names a file.
func (f *FlatFS) Exists(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[path]
	return ok
}

// Size returns the length of the file at path.
func (f *FlatFS) Size(path string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	return int64(len(fl.data)), nil
}

// ReadAt copies up to len(buf) bytes from the file starting at off,
// returning the number of bytes read. Reading at or past EOF returns 0.
func (f *FlatFS) ReadAt(path string, off int64, buf []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if off < 0 {
		return 0, fmt.Errorf("fs: negative offset %d", off)
	}
	if off >= int64(len(fl.data)) {
		return 0, nil
	}
	return copy(buf, fl.data[off:]), nil
}

// WriteAt stores buf into the file at off, extending it with zeroes if off
// is past the current end. The file is created if absent and create is true.
func (f *FlatFS) WriteAt(path string, off int64, buf []byte, create bool) (int, error) {
	if !ValidPath(path) {
		return 0, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[path]
	if !ok {
		if !create {
			return 0, fmt.Errorf("%w: %q", ErrNotExist, path)
		}
		fl = &file{}
		f.files[path] = fl
	}
	if off < 0 {
		return 0, fmt.Errorf("fs: negative offset %d", off)
	}
	end := off + int64(len(buf))
	if end > int64(len(fl.data)) {
		// Grow with append's amortized doubling: sequential appends (log
		// writers, crash dumps) must not be quadratic.
		fl.data = append(fl.data, make([]byte, end-int64(len(fl.data)))...)
	}
	copy(fl.data[off:], buf)
	f.writeBytes += int64(len(buf))
	return len(buf), nil
}

// Truncate resizes the file to n bytes.
func (f *FlatFS) Truncate(path string, n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if n < 0 {
		return fmt.Errorf("fs: negative size %d", n)
	}
	if n <= int64(len(fl.data)) {
		fl.data = fl.data[:n]
		return nil
	}
	grown := make([]byte, n)
	copy(grown, fl.data)
	fl.data = grown
	return nil
}

// Remove deletes the file at path.
func (f *FlatFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[path]; !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	delete(f.files, path)
	return nil
}

// List returns all file paths in sorted order.
func (f *FlatFS) List() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	paths := make([]string, 0, len(f.files))
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// ReadFile returns a copy of the whole file.
func (f *FlatFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	out := make([]byte, len(fl.data))
	copy(out, fl.data)
	return out, nil
}

// WriteFile replaces the whole file with data, creating it if needed.
func (f *FlatFS) WriteFile(path string, data []byte) error {
	if !ValidPath(path) {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	f.files[path] = &file{data: cp}
	f.writeBytes += int64(len(data))
	return nil
}

// BytesWritten returns the cumulative bytes written, for the time model.
func (f *FlatFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeBytes
}
