// Package sched provides the deterministic SLO-priority admission
// scheduler behind streaming resurrection: candidates carry tiers (tier-0
// critical service → tier-2 batch), a priority queue with aging decides
// the admission order that feeds the scan pool, and a pipelined-commit
// schedule model evaluates the resulting install timeline at any worker
// width as a pure function — so campaign- and resurrect-level parallelism
// compose without perturbing a single observable.
//
// Everything here is deliberately free of wall-clock time, maps iterated
// for ordering, and other nondeterminism sources: admission order and the
// modeled schedule must be bit-identical at any pool width and on any
// host (the owvet nodeterminism analyzer enforces this package).
package sched

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Admission tiers, most critical first.
const (
	// TierCritical is tier-0: critical services (the paper's "most
	// critical applications ... resurrected first", Section 5).
	TierCritical = 0
	// TierStandard is tier-1: ordinary interactive services.
	TierStandard = 1
	// TierBatch is tier-2: batch work that tolerates deferral.
	TierBatch = 2
	// NumTiers is the number of admission tiers.
	NumTiers = 3
)

// DefaultAging is the default aging interval: after this many pops, a
// waiting item's effective tier improves by one level, which bounds how
// long sustained high-tier arrivals can starve a batch item.
const DefaultAging = 8

// ClampTier forces a tier into the valid [0, NumTiers-1] range.
func ClampTier(t int) int {
	if t < 0 {
		return 0
	}
	if t >= NumTiers {
		return NumTiers - 1
	}
	return t
}

// ParseTierSpec parses a CLI tier map: comma-separated "program=tier"
// pairs, e.g. "mysqld=0,apache-php=1,sh=2". Tiers are clamped to the valid
// range; an empty spec returns an empty (non-nil) map.
func ParseTierSpec(spec string) (map[string]int, error) {
	out := make(map[string]int)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		prog, tier, ok := strings.Cut(part, "=")
		prog = strings.TrimSpace(prog)
		if !ok || prog == "" {
			return nil, fmt.Errorf("sched: bad tier spec %q (want program=tier)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(tier))
		if err != nil {
			return nil, fmt.Errorf("sched: bad tier in %q: %v", part, err)
		}
		out[prog] = ClampTier(n)
	}
	return out, nil
}

// Item is one admission candidate.
type Item struct {
	// Tier is the SLO tier (0 most critical).
	Tier int
	// Key breaks ties within an effective tier deterministically —
	// resurrection uses the dead kernel's PID, so equal-tier candidates
	// admit in creation order.
	Key uint32
	// Seq is an opaque caller payload (the candidate's slot in the
	// caller's array); the queue never inspects it.
	Seq int
}

type queued struct {
	it      Item
	arrival int // push counter, the anti-starvation tie-break
}

// Queue is a deterministic priority queue with aging. Pop returns the
// item with the lowest effective tier, where an item's effective tier
// drops by one for every aging-interval pops it has waited; ties break on
// earliest arrival, then Key. The aging term is what makes the queue
// starvation-free: under a sustained stream of tier-0 arrivals, a tier-2
// item's effective tier reaches 0 after at most NumTiers*aging pops and
// its earlier arrival then beats every fresher tier-0 item.
type Queue struct {
	aging    int
	pops     int
	arrivals int
	items    []queued
}

// NewQueue builds a queue with the given aging interval (<=0 selects
// DefaultAging).
func NewQueue(aging int) *Queue {
	if aging <= 0 {
		aging = DefaultAging
	}
	return &Queue{aging: aging}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Push enqueues an item.
func (q *Queue) Push(it Item) {
	it.Tier = ClampTier(it.Tier)
	q.items = append(q.items, queued{it: it, arrival: q.arrivals})
	q.arrivals++
}

// effective returns the aged tier of a queued item at the current pop
// count.
func (q *Queue) effective(e queued) int {
	waited := q.pops - e.arrival
	if waited < 0 {
		waited = 0
	}
	eff := e.it.Tier - waited/q.aging
	if eff < 0 {
		eff = 0
	}
	return eff
}

// Pop removes and returns the next admitted item. The linear scan is
// deliberate: admission sets are small, and a scan with a total ordering
// is trivially deterministic.
func (q *Queue) Pop() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	best := 0
	for i := 1; i < len(q.items); i++ {
		a, b := q.items[i], q.items[best]
		ea, eb := q.effective(a), q.effective(b)
		if ea != eb {
			if ea < eb {
				best = i
			}
			continue
		}
		if a.arrival != b.arrival {
			if a.arrival < b.arrival {
				best = i
			}
			continue
		}
		if a.it.Key < b.it.Key {
			best = i
		}
	}
	it := q.items[best].it
	q.items = append(q.items[:best], q.items[best+1:]...)
	q.pops++
	return it, true
}

// Slot is one candidate's position in the modeled pipelined-commit
// schedule: scans fan out over workers, commits serialize behind the
// admission-order cursor on the worker that scanned.
type Slot struct {
	Worker      int
	ScanStart   time.Duration
	ScanEnd     time.Duration
	CommitStart time.Duration
	CommitEnd   time.Duration
}

// Pipeline evaluates the pipelined-commit schedule for candidates in
// admission order: candidate i's scan is dispatched to the
// earliest-free worker (ties to the lowest worker index), and its commit
// starts once both its own scan and candidate i-1's commit have finished
// — the commit cursor. The worker stays occupied through the commit it
// performs. Returns the per-candidate slots, the makespan (last commit
// end), and each worker's summed busy time. A pure function of its
// arguments: the schedule model behind Report.ScheduleAt for streamed
// passes.
func Pipeline(scans, commits []time.Duration, workers int) ([]Slot, time.Duration, []time.Duration) {
	if workers < 1 {
		workers = 1
	}
	free := make([]time.Duration, workers)
	busy := make([]time.Duration, workers)
	slots := make([]Slot, len(scans))
	var prevCommitEnd time.Duration
	for i := range scans {
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		s := Slot{Worker: w, ScanStart: free[w]}
		s.ScanEnd = s.ScanStart + scans[i]
		s.CommitStart = s.ScanEnd
		if prevCommitEnd > s.CommitStart {
			s.CommitStart = prevCommitEnd
		}
		s.CommitEnd = s.CommitStart + commits[i]
		prevCommitEnd = s.CommitEnd
		free[w] = s.CommitEnd
		busy[w] += scans[i] + commits[i]
		slots[i] = s
	}
	var makespan time.Duration
	for i := range slots {
		if slots[i].CommitEnd > makespan {
			makespan = slots[i].CommitEnd
		}
	}
	return slots, makespan, busy
}
