package sched

import (
	"testing"
	"time"
)

func popAll(t *testing.T, q *Queue) []Item {
	t.Helper()
	var out []Item
	for {
		it, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestQueueTierThenArrivalOrder(t *testing.T) {
	q := NewQueue(DefaultAging)
	q.Push(Item{Tier: TierBatch, Key: 1, Seq: 0})
	q.Push(Item{Tier: TierCritical, Key: 2, Seq: 1})
	q.Push(Item{Tier: TierStandard, Key: 3, Seq: 2})
	q.Push(Item{Tier: TierCritical, Key: 4, Seq: 3})
	got := popAll(t, q)
	wantSeq := []int{1, 3, 2, 0} // tier-0 in arrival order, then 1, then 2
	if len(got) != len(wantSeq) {
		t.Fatalf("popped %d items, want %d", len(got), len(wantSeq))
	}
	for i, it := range got {
		if it.Seq != wantSeq[i] {
			t.Fatalf("pop %d = seq %d, want %d (order %v)", i, it.Seq, wantSeq[i], got)
		}
	}
}

func TestParseTierSpec(t *testing.T) {
	got, err := ParseTierSpec("mysqld=0, apache-php=1 ,sh=9")
	if err != nil {
		t.Fatalf("ParseTierSpec: %v", err)
	}
	want := map[string]int{"mysqld": 0, "apache-php": 1, "sh": NumTiers - 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("got[%q] = %d, want %d (full: %v)", k, got[k], v, got)
		}
	}
	empty, err := ParseTierSpec("")
	if err != nil || empty == nil || len(empty) != 0 {
		t.Fatalf("empty spec: got %v, %v; want empty non-nil map", empty, err)
	}
	for _, bad := range []string{"mysqld", "=2", "sh=two"} {
		if _, err := ParseTierSpec(bad); err == nil {
			t.Fatalf("ParseTierSpec(%q) accepted, want error", bad)
		}
	}
}

func TestQueueClampsTier(t *testing.T) {
	q := NewQueue(DefaultAging)
	q.Push(Item{Tier: -3, Key: 1})
	q.Push(Item{Tier: 99, Key: 2})
	got := popAll(t, q)
	if got[0].Tier != TierCritical || got[1].Tier != TierBatch {
		t.Fatalf("tiers not clamped: %v", got)
	}
}

// TestQueueStarvationFreedom is the admission-fairness satellite: under a
// sustained stream of fresh tier-0 arrivals, a tier-2 candidate must still
// be admitted within a bounded number of pops — aging walks its effective
// tier down one level every DefaultAging pops, and arrival order then
// favors the oldest waiter.
func TestQueueStarvationFreedom(t *testing.T) {
	q := NewQueue(DefaultAging)
	q.Push(Item{Tier: TierBatch, Key: 999, Seq: -1})
	admittedAt := -1
	for pop := 0; pop < 10*DefaultAging; pop++ {
		// Sustained tier-0 load: a fresh critical arrival before every pop.
		q.Push(Item{Tier: TierCritical, Key: uint32(pop), Seq: pop})
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty at pop %d", pop)
		}
		if it.Seq == -1 {
			admittedAt = pop
			break
		}
	}
	if admittedAt < 0 {
		t.Fatalf("tier-2 candidate starved for %d pops under tier-0 load", 10*DefaultAging)
	}
	// It must take aging into account (not jump the fresh criticals
	// immediately) but be admitted once fully aged: tier distance 2 means
	// at least 2*aging pops, and arrival-order preference admits it as
	// soon as its effective tier reaches 0.
	if admittedAt < 2*DefaultAging || admittedAt > 3*DefaultAging {
		t.Fatalf("tier-2 admitted at pop %d, want within [%d, %d]",
			admittedAt, 2*DefaultAging, 3*DefaultAging)
	}
}

func TestQueueDeterministicTieBreak(t *testing.T) {
	// Same tier, same arrival batch ordering: Push order is arrival order,
	// so pops replay pushes; Key breaks only true ties (never built by
	// Push, but the contract must hold for direct users).
	q := NewQueue(DefaultAging)
	for i := 0; i < 10; i++ {
		q.Push(Item{Tier: TierStandard, Key: uint32(100 - i), Seq: i})
	}
	got := popAll(t, q)
	for i, it := range got {
		if it.Seq != i {
			t.Fatalf("pop %d = seq %d, want arrival order", i, it.Seq)
		}
	}
}

func TestPipelineSerialEquivalence(t *testing.T) {
	scans := []time.Duration{3, 1, 2}
	commits := []time.Duration{2, 2, 2}
	slots, makespan, busy := Pipeline(scans, commits, 1)
	// One worker: strict serial scan+commit chain.
	var want time.Duration
	for i := range scans {
		want += scans[i] + commits[i]
	}
	if makespan != want {
		t.Fatalf("1-worker makespan = %v, want serial sum %v", makespan, want)
	}
	if busy[0] != want {
		t.Fatalf("1-worker busy = %v, want %v", busy[0], want)
	}
	for i := 1; i < len(slots); i++ {
		if slots[i].ScanStart < slots[i-1].CommitEnd {
			t.Fatalf("slot %d overlaps predecessor on one worker", i)
		}
	}
}

func TestPipelineCommitOrderInvariant(t *testing.T) {
	scans := []time.Duration{5, 1, 1, 1}
	commits := []time.Duration{1, 1, 1, 1}
	for workers := 1; workers <= 4; workers++ {
		slots, makespan, _ := Pipeline(scans, commits, workers)
		for i := 1; i < len(slots); i++ {
			if slots[i].CommitStart < slots[i-1].CommitEnd {
				t.Fatalf("w=%d: commit %d starts %v before predecessor ends %v",
					workers, i, slots[i].CommitStart, slots[i-1].CommitEnd)
			}
			if slots[i].CommitStart < slots[i].ScanEnd {
				t.Fatalf("w=%d: commit %d starts before its scan ends", workers, i)
			}
		}
		if last := slots[len(slots)-1].CommitEnd; makespan != last {
			t.Fatalf("w=%d: makespan %v != last commit end %v", workers, makespan, last)
		}
	}
}

func TestPipelineWidthMonotone(t *testing.T) {
	scans := []time.Duration{4, 4, 4, 4, 4, 4, 4, 4}
	commits := []time.Duration{1, 1, 1, 1, 1, 1, 1, 1}
	_, m1, _ := Pipeline(scans, commits, 1)
	_, m4, _ := Pipeline(scans, commits, 4)
	_, m8, _ := Pipeline(scans, commits, 8)
	if !(m8 <= m4 && m4 <= m1) {
		t.Fatalf("makespan not monotone in width: 1w=%v 4w=%v 8w=%v", m1, m4, m8)
	}
	if m4 >= m1 {
		t.Fatalf("no pipelining win at 4 workers: %v vs %v", m4, m1)
	}
}

func TestPipelineEmpty(t *testing.T) {
	slots, makespan, busy := Pipeline(nil, nil, 4)
	if len(slots) != 0 || makespan != 0 {
		t.Fatalf("empty pipeline: slots=%d makespan=%v", len(slots), makespan)
	}
	if len(busy) != 4 {
		t.Fatalf("busy = %d entries, want workers", len(busy))
	}
}

func TestClampTier(t *testing.T) {
	cases := [][2]int{{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {100, 2}}
	for _, c := range cases {
		if got := ClampTier(c[0]); got != c[1] {
			t.Fatalf("ClampTier(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}
