package hw

import (
	"testing"
	"testing/quick"

	"otherworld/internal/phys"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(1) {
		t.Fatal("first access should miss")
	}
	if !tlb.Access(1) {
		t.Fatal("second access should hit")
	}
	// Fill and overflow: a random victim is evicted; exactly one of the
	// five pages must now miss on re-access.
	tlb.Access(2)
	tlb.Access(3)
	tlb.Access(4)
	tlb.Access(5) // evicts one of 1-4
	misses := tlb.Misses
	for v := uint64(1); v <= 5; v++ {
		tlb.Access(v)
	}
	// At least the evicted page misses; re-installs may evict others, but
	// never more than the working-set excess allows.
	if d := tlb.Misses - misses; d < 1 || d > 4 {
		t.Fatalf("re-access misses = %d, want 1..4", d)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	for v := uint64(0); v < 8; v++ {
		tlb.Access(v)
	}
	tlb.Flush()
	if tlb.Flushes != 1 {
		t.Fatalf("flushes = %d", tlb.Flushes)
	}
	for v := uint64(0); v < 8; v++ {
		if tlb.Access(v) {
			t.Fatalf("vpn %d hit after flush", v)
		}
	}
}

// TestTLBWorkingSetProperty: a working set no larger than the TLB has zero
// steady-state misses; a larger one always misses somewhere.
func TestTLBWorkingSetProperty(t *testing.T) {
	f := func(sizeSeed, wsSeed uint8) bool {
		size := 1 + int(sizeSeed%63)
		ws := 1 + int(wsSeed%127)
		tlb := NewTLB(size)
		// Two full passes: the first warms, the second measures.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				tlb.ResetStats()
			}
			for v := 0; v < ws; v++ {
				tlb.Access(uint64(v))
			}
		}
		if ws <= size {
			return tlb.Misses == 0
		}
		return tlb.Misses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBMissRate(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Access(1)
	tlb.Access(1)
	if got := tlb.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestIDTRoundTrip(t *testing.T) {
	mem := phys.NewMem(8 * phys.PageSize)
	alloc := phys.NewFrameAllocator(mem, phys.Region{Start: 0, Frames: 8})
	if err := InstallIDT(mem, alloc, 0x4000); err != nil {
		t.Fatal(err)
	}
	h, ok := ReadIDTEntry(mem, VecKexec)
	if !ok || h != 0x4000+VecKexec {
		t.Fatalf("kexec gate = %#x ok=%v", h, ok)
	}
	// Corrupt the gate: reads must fail structurally.
	addr := IDTAddr + uint64(VecKexec)*16
	if err := mem.WriteAt(addr, []byte{0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadIDTEntry(mem, VecKexec); ok {
		t.Fatal("corrupted gate should not validate")
	}
	// Other vectors remain intact.
	if _, ok := ReadIDTEntry(mem, VecNMI); !ok {
		t.Fatal("NMI gate should still validate")
	}
}

func TestBroadcastHaltNMI(t *testing.T) {
	m := NewMachine(Config{MemoryBytes: 1 << 20, NumCPUs: 3, TLBEntries: 4})
	m.CPUs[0].CurrentPID = 1
	m.CPUs[1].CurrentPID = 2
	m.CPUs[2].CurrentPID = 3
	var saved []int
	ok := m.BroadcastHaltNMI(0, func(cpu *CPU) bool {
		saved = append(saved, cpu.ID)
		return true
	})
	if !ok {
		t.Fatal("all CPUs acked, broadcast should succeed")
	}
	if len(saved) != 2 {
		t.Fatalf("handler ran on %d CPUs, want 2", len(saved))
	}
	for _, c := range m.CPUs {
		if !c.Halted {
			t.Fatalf("CPU %d not halted", c.ID)
		}
	}
	if !m.CPUs[1].HaltAcked || !m.CPUs[2].HaltAcked {
		t.Fatal("acks missing")
	}
}

func TestBroadcastHaltNMIFailedAck(t *testing.T) {
	m := NewMachine(Config{MemoryBytes: 1 << 20, NumCPUs: 2, TLBEntries: 4})
	ok := m.BroadcastHaltNMI(0, func(cpu *CPU) bool { return false })
	if ok {
		t.Fatal("broadcast should report failed ack")
	}
	m.ResetCPUs()
	for _, c := range m.CPUs {
		if c.Halted || c.HaltAcked {
			t.Fatal("ResetCPUs should clear halt state")
		}
	}
}

func TestDefaultConfigSanity(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg)
	if m.Mem.Size() != cfg.MemoryBytes {
		t.Fatalf("memory = %d", m.Mem.Size())
	}
	if len(m.CPUs) != 2 {
		t.Fatalf("cpus = %d", len(m.CPUs))
	}
	if !m.Watchdog {
		t.Fatal("watchdog should default on")
	}
}

func TestDeviceProbeCosts(t *testing.T) {
	devs := DefaultDevices()
	if ProbeAll(devs).Seconds() != 27 {
		t.Fatalf("full probe = %v, want 27s (Table 6 calibration)", ProbeAll(devs))
	}
	fast := ProbeChangedOnly(devs)
	if fast >= ProbeAll(devs) {
		t.Fatal("reusing device info must be cheaper")
	}
	// Non-reprobeable devices still pay full price.
	var vga Device
	for _, d := range devs {
		if !d.Reprobeable {
			vga = d
		}
	}
	if vga.Name == "" {
		t.Fatal("expected a non-reprobeable device")
	}
	if fast < vga.ProbeTime {
		t.Fatal("fast probe cannot undercut the non-reprobeable device")
	}
}
