// Package hw models the hardware the kernels run on: CPUs with the
// non-maskable-interrupt halt protocol used to stop the machine at failure
// time, the interrupt descriptor table, a hardware watchdog timer, and a TLB
// whose miss accounting drives the user-space-protection overhead
// measurements (Table 3).
package hw

import (
	"fmt"

	"otherworld/internal/disk"
	"otherworld/internal/phys"
	"otherworld/internal/sim"
)

// CPU is one processor. The fields mirror the paper's Section 3.2 protocol:
// on failure, every CPU other than the failing one receives an NMI, saves
// the context of the thread it was executing onto that thread's kernel
// stack, sets a global "context saved" flag, and halts.
type CPU struct {
	// ID is the processor index.
	ID int
	// Halted is set once the CPU has stopped executing.
	Halted bool
	// HaltAcked is the global flag indicating the CPU saved its context
	// before halting.
	HaltAcked bool
	// CurrentPID is the process the CPU is executing (0 = idle).
	CurrentPID uint32
}

// Config sizes a machine.
type Config struct {
	// MemoryBytes is the installed physical memory.
	MemoryBytes int
	// NumCPUs is the processor count (the paper's test VM had two).
	NumCPUs int
	// TLBEntries sizes the translation lookaside buffer.
	TLBEntries int
	// WatchdogEnabled arms the hardware watchdog timer. The paper's
	// hardening (Section 6) uses it to convert system stalls into NMIs
	// that start the microreboot; without it a stall is fatal.
	WatchdogEnabled bool
}

// DefaultConfig matches the paper's fault-injection VM: two virtual CPUs
// and 1 GB of RAM.
func DefaultConfig() Config {
	return Config{
		MemoryBytes:     1 << 30,
		NumCPUs:         2,
		TLBEntries:      64,
		WatchdogEnabled: true,
	}
}

// Machine bundles the hardware: physical memory, the device bus, processors,
// the TLB and the virtual clock.
type Machine struct {
	Mem   *phys.Mem
	Bus   *disk.Bus
	Clock *sim.Clock
	CPUs  []*CPU
	TLB   *TLB
	// Devices is the probe-able hardware complement.
	Devices []Device
	// Watchdog reports whether the hardware watchdog timer is armed.
	Watchdog bool
}

// NewMachine powers on a machine with the given configuration.
func NewMachine(cfg Config) *Machine {
	if cfg.NumCPUs < 1 {
		cfg.NumCPUs = 1
	}
	if cfg.TLBEntries < 1 {
		cfg.TLBEntries = 64
	}
	m := &Machine{
		Mem:      phys.NewMem(cfg.MemoryBytes),
		Bus:      disk.NewBus(),
		Clock:    sim.NewClock(),
		TLB:      NewTLB(cfg.TLBEntries),
		Devices:  DefaultDevices(),
		Watchdog: cfg.WatchdogEnabled,
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		m.CPUs = append(m.CPUs, &CPU{ID: i})
	}
	return m
}

// ResetCPUs clears halt state on all processors, as happens when the crash
// kernel reinitializes the machine.
func (m *Machine) ResetCPUs() {
	for _, c := range m.CPUs {
		c.Halted = false
		c.HaltAcked = false
		c.CurrentPID = 0
	}
}

// HaltHandler is invoked on each CPU that receives the halt NMI. It must
// save the context of the thread the CPU was executing and return true on
// success; returning false models a CPU that failed to acknowledge (for
// example because its kernel stack pointer was corrupted), which stalls the
// transfer of control.
type HaltHandler func(cpu *CPU) bool

// BroadcastHaltNMI delivers non-maskable interrupts to every CPU except the
// failing one and waits for the global saved-context flags (Section 3.2).
// It returns true only if every other CPU acknowledged; the failing CPU is
// the caller and halts itself afterwards.
func (m *Machine) BroadcastHaltNMI(failingCPU int, handler HaltHandler) bool {
	all := true
	for _, c := range m.CPUs {
		if c.ID == failingCPU || c.Halted {
			continue
		}
		c.Halted = true
		if handler != nil && handler(c) {
			c.HaltAcked = true
		} else {
			all = false
		}
	}
	if failingCPU >= 0 && failingCPU < len(m.CPUs) {
		m.CPUs[failingCPU].Halted = true
		m.CPUs[failingCPU].HaltAcked = true
	}
	return all
}

// String describes the machine for logs.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{%d MiB, %d CPUs, watchdog=%v}",
		m.Mem.Size()>>20, len(m.CPUs), m.Watchdog)
}
