package hw

import "time"

// Device is one piece of probe-able hardware. Driver probing dominates both
// cold boots and crash-kernel boots (footnote 2: the crash kernel loads the
// same drivers and re-initializes devices from scratch); the Section 7
// optimization skips re-probing devices whose configuration the dead kernel
// already knew.
type Device struct {
	// Name identifies the device ("sata0", "eth0", ...).
	Name string
	// ProbeTime is the driver's probe-and-initialize cost.
	ProbeTime time.Duration
	// Reprobeable reports whether the crash kernel can safely reuse the
	// dead kernel's configuration for this device instead of re-probing
	// (most devices; not ones with volatile state like the GPU).
	Reprobeable bool
}

// DefaultDevices is the simulated machine's hardware complement. The probe
// times sum to the cost model's DriverProbe (27 s), keeping the Table 6
// calibration.
func DefaultDevices() []Device {
	return []Device{
		{Name: "sata0", ProbeTime: 9 * time.Second, Reprobeable: true},
		{Name: "eth0", ProbeTime: 6 * time.Second, Reprobeable: true},
		{Name: "usb0", ProbeTime: 5 * time.Second, Reprobeable: true},
		{Name: "vga0", ProbeTime: 4 * time.Second, Reprobeable: false},
		{Name: "wdt0", ProbeTime: 3 * time.Second, Reprobeable: true},
	}
}

// ProbeAll returns the full probe cost, paid on cold boots and stock
// crash-kernel boots.
func ProbeAll(devs []Device) time.Duration {
	var total time.Duration
	for _, d := range devs {
		total += d.ProbeTime
	}
	return total
}

// ProbeChangedOnly returns the cost when the dead kernel's device
// information is reused: only non-reprobeable devices pay full price, the
// rest a fixed sanity-check fraction.
func ProbeChangedOnly(devs []Device) time.Duration {
	var total time.Duration
	for _, d := range devs {
		if d.Reprobeable {
			total += d.ProbeTime / 10
		} else {
			total += d.ProbeTime
		}
	}
	return total
}
