package hw

// TLB is a fully associative translation lookaside buffer with (seeded)
// random replacement, the policy x86 TLBs approximate; unlike FIFO it
// degrades smoothly as the working set exceeds capacity instead of
// thrashing all-or-nothing. The simulation charges one entry per virtual
// page; the user-space-protection mode flushes the whole TLB on every
// page-table-set switch (kernel entry and exit), which is exactly the cost
// the paper measures in Table 3: "overhead mainly due to TLB flush
// operations that occur on every page table switch".
type TLB struct {
	size    int
	slots   []uint64
	present map[uint64]bool
	rng     uint64

	// Counters are cumulative since power-on or the last ResetStats.
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	if entries < 1 {
		entries = 1
	}
	return &TLB{
		size:    entries,
		slots:   make([]uint64, 0, entries),
		present: make(map[uint64]bool, entries),
		rng:     0x9E3779B97F4A7C15,
	}
}

// rand is a tiny deterministic xorshift for replacement choices.
func (t *TLB) rand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Size returns the entry capacity.
func (t *TLB) Size() int { return t.size }

// Access simulates a translation of virtual page number vpn, returning true
// on a hit. Misses install the translation, evicting a random victim when
// full.
func (t *TLB) Access(vpn uint64) bool {
	if t.present[vpn] {
		t.Hits++
		return true
	}
	t.Misses++
	if len(t.slots) < t.size {
		t.slots = append(t.slots, vpn)
	} else {
		victim := int(t.rand() % uint64(t.size))
		delete(t.present, t.slots[victim])
		t.slots[victim] = vpn
	}
	t.present[vpn] = true
	return false
}

// Flush invalidates every entry, as a page-table base register reload does.
func (t *TLB) Flush() {
	t.Flushes++
	t.slots = t.slots[:0]
	for k := range t.present {
		delete(t.present, k)
	}
}

// ResetStats clears the counters without touching the entries, so a
// benchmark can measure a steady-state window.
func (t *TLB) ResetStats() {
	t.Hits = 0
	t.Misses = 0
	t.Flushes = 0
}

// MissRate returns misses / accesses, or 0 with no accesses.
func (t *TLB) MissRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Misses) / float64(total)
}
