package hw

import (
	"encoding/binary"

	"otherworld/internal/phys"
)

// The interrupt descriptor table lives in a fixed physical frame. The
// transfer of control from the main kernel to the crash kernel depends on a
// handful of its entries being intact — the paper notes Otherworld "is
// sensitive to the corruption of certain kernel page entries and the
// interrupt descriptor table" (Section 6), and that sensitivity is the main
// source of failure-to-boot outcomes in Table 5. Storing the IDT as raw
// bytes in simulated memory exposes it to wild writes exactly like the rest
// of kernel state.

// IDTFrame is the fixed physical frame holding the IDT.
const IDTFrame = 1

// IDTAddr is the physical address of the IDT.
const IDTAddr = uint64(IDTFrame) * phys.PageSize

// Interrupt vectors the transfer path depends on.
const (
	// VecNMI is the non-maskable interrupt vector used to halt CPUs and,
	// with the watchdog hardening, to recover from stalls.
	VecNMI = 2
	// VecDoubleFault is the double-fault vector; the paper's hardening
	// fixes its handler to start the microreboot instead of stopping.
	VecDoubleFault = 8
	// VecKexec is the descriptor through which control jumps to the crash
	// kernel's entry point (the kexec path).
	VecKexec = 31
)

// NumVectors is the number of IDT slots.
const NumVectors = 32

// idtEntrySize is 16 bytes per vector: a sentinel and the handler address.
const idtEntrySize = 16

const idtEntryMagic uint32 = 0x49445445 // "IDTE"

// WriteIDTEntry installs a handler address for a vector. Like real gate
// descriptors, entries carry no checksum: corruption is only discovered
// when the vector fires.
func WriteIDTEntry(mem *phys.Mem, vector int, handler uint64) error {
	var buf [idtEntrySize]byte
	binary.LittleEndian.PutUint32(buf[0:], idtEntryMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(vector))
	binary.LittleEndian.PutUint64(buf[8:], handler)
	return mem.WriteAt(IDTAddr+uint64(vector)*idtEntrySize, buf[:])
}

// ReadIDTEntry fetches a vector's handler address. ok reports whether the
// gate descriptor is structurally intact; a corrupted descriptor makes the
// hardware jump fail, which the panic path observes as an inability to
// reach the crash kernel.
func ReadIDTEntry(mem *phys.Mem, vector int) (handler uint64, ok bool) {
	var buf [idtEntrySize]byte
	if err := mem.ReadAt(IDTAddr+uint64(vector)*idtEntrySize, buf[:]); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != idtEntryMagic {
		return 0, false
	}
	if binary.LittleEndian.Uint32(buf[4:]) != uint32(vector) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(buf[8:]), true
}

// InstallIDT claims the IDT frame from the allocator and writes the standard
// vector set, each pointing at the given handler base plus the vector index.
func InstallIDT(mem *phys.Mem, alloc *phys.FrameAllocator, handlerBase uint64) error {
	if err := alloc.Claim(IDTFrame, phys.FrameKernelText); err != nil {
		return err
	}
	for v := 0; v < NumVectors; v++ {
		if err := WriteIDTEntry(mem, v, handlerBase+uint64(v)); err != nil {
			return err
		}
	}
	return nil
}
