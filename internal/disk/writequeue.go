package disk

import (
	"errors"
	"fmt"
	"sort"
)

// Errors reported by WriteQueue.Enqueue for malformed extents.
var (
	// ErrEmptyExtent rejects zero-length writes: they carry no payload and
	// would silently vanish in the merge.
	ErrEmptyExtent = errors.New("disk: empty extent")
	// ErrExtentBounds rejects negative offsets and extents past the
	// device end.
	ErrExtentBounds = errors.New("disk: extent out of device bounds")
)

// WriteQueue is the small write-combining queue the resurrection install
// phase flushes dirty page-cache pages through: writes are buffered, then
// Flush issues them sorted by (path, offset) with adjacent same-path runs
// merged into single extents — the batched, block-sorted schedule a real
// elevator would produce. The caller charges one seek per extent
// (sim.CostModel.DiskBatchCost), so coalescing is visible in modeled time
// as well as in the extent counters.
//
// Determinism: Flush's write order is a pure function of the enqueued set
// and enqueue order. Overlapping writes (equal-offset or partial) resolve
// last-writer-wins — the same final contents as the unbatched path — and
// each final byte is issued and counted exactly once, so the
// resurrect_flush_* counters never double-charge an overlapped payload.
type WriteQueue struct {
	// Limit, when positive, is the device end in bytes: an extent must end
	// at or before it. Zero means unbounded (a growable file store with no
	// fixed geometry).
	Limit int64

	pending []queuedWrite
}

type queuedWrite struct {
	path string
	off  int64
	data []byte
}

// segment is one resolved, non-overlapping run of final file contents. Its
// data is always a private copy, never an alias of a caller's buffer.
type segment struct {
	off  int64
	data []byte
}

// Enqueue buffers one write. The data slice is referenced, not copied; the
// caller must not mutate it before Flush. Zero-length extents, negative
// offsets and extents past Limit are rejected rather than silently merged
// away: a caller handing the elevator a malformed extent has a corrupt
// page-cache record, and dropping it would hide the corruption.
func (q *WriteQueue) Enqueue(path string, off int64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("%w: %q offset %d", ErrEmptyExtent, path, off)
	}
	if off < 0 {
		return fmt.Errorf("%w: %q offset %d", ErrExtentBounds, path, off)
	}
	if q.Limit > 0 && off+int64(len(data)) > q.Limit {
		return fmt.Errorf("%w: %q [%d, %d) past device end %d",
			ErrExtentBounds, path, off, off+int64(len(data)), q.Limit)
	}
	q.pending = append(q.pending, queuedWrite{path: path, off: off, data: data})
	return nil
}

// Pending reports the number of buffered writes.
func (q *WriteQueue) Pending() int { return len(q.pending) }

// Flush resolves the buffered writes to their final contents — applying
// them in enqueue order, so overlapping ranges are last-writer-wins — and
// issues maximal contiguous same-path runs through the callback in
// (path, offset) order. It returns the number of extents issued and the
// total payload bytes; each final byte counts once no matter how many
// queued writes covered it. The queue empties even on error; the error is
// returned after the failing extent, with later extents unattempted.
func (q *WriteQueue) Flush(write func(path string, off int64, data []byte) error) (extents int, bytes int64, err error) {
	pend := q.pending
	q.pending = nil
	if len(pend) == 0 {
		return 0, 0, nil
	}

	// Resolve per-path overlays in enqueue order (last writer wins), then
	// visit paths in sorted order for the deterministic elevator schedule.
	overlay := make(map[string][]segment)
	paths := make([]string, 0, 4)
	for _, w := range pend {
		if _, ok := overlay[w.path]; !ok {
			paths = append(paths, w.path)
		}
		overlay[w.path] = splice(overlay[w.path], w.off, w.data)
	}
	sort.Strings(paths)

	for _, path := range paths {
		segs := overlay[path]
		for i := 0; i < len(segs); {
			// Merge exactly contiguous segments into one extent. Segments
			// are sorted and non-overlapping by construction; the run is a
			// fresh buffer so growing it cannot clobber a trimmed segment
			// that still aliases an earlier copy.
			run := append([]byte(nil), segs[i].data...)
			end := segs[i].off + int64(len(run))
			j := i + 1
			for ; j < len(segs); j++ {
				if segs[j].off != end {
					break
				}
				run = append(run, segs[j].data...)
				end += int64(len(segs[j].data))
			}
			extents++
			bytes += int64(len(run))
			if werr := write(path, segs[i].off, run); werr != nil {
				return extents, bytes, werr
			}
			i = j
		}
	}
	return extents, bytes, nil
}

// splice overlays one write onto a sorted, non-overlapping segment list:
// the new data replaces whatever previous writes covered in [off, off+len),
// trimming or splitting older segments as needed. Data is copied, so the
// overlay never aliases caller buffers.
func splice(segs []segment, off int64, data []byte) []segment {
	if len(data) == 0 {
		return segs
	}
	end := off + int64(len(data))
	out := segs[:0:0]
	inserted := false
	insert := func() {
		out = append(out, segment{off: off, data: append([]byte(nil), data...)})
		inserted = true
	}
	for _, s := range segs {
		sEnd := s.off + int64(len(s.data))
		switch {
		case sEnd <= off:
			out = append(out, s)
		case s.off >= end:
			if !inserted {
				insert()
			}
			out = append(out, s)
		default:
			// Overlap: keep the parts of s outside [off, end).
			if s.off < off {
				out = append(out, segment{off: s.off, data: s.data[:off-s.off]})
			}
			if !inserted {
				insert()
			}
			if sEnd > end {
				out = append(out, segment{off: end, data: s.data[end-s.off:]})
			}
		}
	}
	if !inserted {
		insert()
	}
	return out
}
