package disk

import "sort"

// WriteQueue is the small write-combining queue the resurrection install
// phase flushes dirty page-cache pages through: writes are buffered, then
// Flush issues them sorted by (path, offset) with adjacent same-path runs
// merged into single extents — the batched, block-sorted schedule a real
// elevator would produce. The caller charges one seek per extent
// (sim.CostModel.DiskBatchCost), so coalescing is visible in modeled time
// as well as in the extent counters.
//
// Determinism: Flush's write order is a pure function of the enqueued set.
// The sort is stable, so writes to the same offset land in enqueue order
// (last write wins, as with the unbatched path).
type WriteQueue struct {
	pending []queuedWrite
}

type queuedWrite struct {
	path string
	off  int64
	data []byte
}

// Enqueue buffers one write. The data slice is referenced, not copied; the
// caller must not mutate it before Flush.
func (q *WriteQueue) Enqueue(path string, off int64, data []byte) {
	q.pending = append(q.pending, queuedWrite{path: path, off: off, data: data})
}

// Pending reports the number of buffered writes.
func (q *WriteQueue) Pending() int { return len(q.pending) }

// Flush issues every buffered write through the callback in (path, offset)
// order, merging runs of exactly adjacent same-path writes into single
// extents. It returns the number of extents issued and the total payload
// bytes, then empties the queue. On a write error the queue still empties;
// the error is returned after the failing extent.
func (q *WriteQueue) Flush(write func(path string, off int64, data []byte) error) (extents int, bytes int64, err error) {
	pend := q.pending
	q.pending = nil
	if len(pend) == 0 {
		return 0, 0, nil
	}
	sort.SliceStable(pend, func(i, j int) bool {
		if pend[i].path != pend[j].path {
			return pend[i].path < pend[j].path
		}
		return pend[i].off < pend[j].off
	})
	for i := 0; i < len(pend); {
		// Grow the extent while the next write starts exactly where this
		// one ends; overlapping or gapped writes start a new extent.
		run := pend[i].data
		end := pend[i].off + int64(len(pend[i].data))
		j := i + 1
		for ; j < len(pend); j++ {
			if pend[j].path != pend[i].path || pend[j].off != end {
				break
			}
			run = append(run[:len(run):len(run)], pend[j].data...)
			end += int64(len(pend[j].data))
		}
		extents++
		bytes += int64(len(run))
		if werr := write(pend[i].path, pend[i].off, run); werr != nil {
			return extents, bytes, werr
		}
		i = j
	}
	return extents, bytes, nil
}
