package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBlockDeviceRoundTrip(t *testing.T) {
	d := NewBlockDevice("/dev/sda", 8)
	data := []byte("block payload")
	if err := d.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("got %q", got[:len(data)])
	}
	// Unwritten blocks read as zeroes.
	z, err := d.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestBlockDeviceBounds(t *testing.T) {
	d := NewBlockDevice("/dev/sda", 2)
	if _, err := d.ReadBlock(2); err == nil {
		t.Fatal("read past end")
	}
	if err := d.WriteBlock(-1, nil); err == nil {
		t.Fatal("negative block")
	}
	if err := d.WriteBlock(0, make([]byte, BlockSize+1)); err == nil {
		t.Fatal("oversized write")
	}
}

func TestBusOpenByName(t *testing.T) {
	b := NewBus()
	b.Attach(NewBlockDevice("/dev/swap1", 4))
	b.Attach(NewBlockDevice("/dev/swap0", 4))
	d, err := b.Open("/dev/swap0")
	if err != nil || d.Name() != "/dev/swap0" {
		t.Fatalf("open: %v %v", d, err)
	}
	if _, err := b.Open("/dev/nope"); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "/dev/swap0" {
		t.Fatalf("names = %v", names)
	}
}

func TestSwapAllocReadFree(t *testing.T) {
	s := NewSwapDevice(NewBlockDevice("/dev/swap0", 4))
	page := bytes.Repeat([]byte{7}, BlockSize)
	slot, err := s.Alloc(page)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(slot)
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("read back mismatch: %v", err)
	}
	if s.FreeSlots() != 3 {
		t.Fatalf("free = %d", s.FreeSlots())
	}
	s.Free(slot)
	if s.FreeSlots() != 4 {
		t.Fatalf("free after Free = %d", s.FreeSlots())
	}
	s.Free(slot) // double free is a no-op
	if s.FreeSlots() != 4 {
		t.Fatal("double free changed accounting")
	}
}

func TestSwapFull(t *testing.T) {
	s := NewSwapDevice(NewBlockDevice("/dev/swap0", 2))
	if _, err := s.Alloc(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(nil); !errors.Is(err, ErrSwapFull) {
		t.Fatalf("want ErrSwapFull, got %v", err)
	}
}

// TestSwapContentsSurviveBitmapLoss is the two-kernel property: a fresh
// SwapDevice (new bitmap, dead kernel's slots forgotten) can still read the
// old contents raw — how the crash kernel re-stages swapped pages.
func TestSwapContentsSurviveBitmapLoss(t *testing.T) {
	dev := NewBlockDevice("/dev/swap0", 4)
	old := NewSwapDevice(dev)
	page := bytes.Repeat([]byte{0xAB}, BlockSize)
	slot, err := old.Alloc(page)
	if err != nil {
		t.Fatal(err)
	}
	// "Kernel crash": the bitmap is gone, the device remains.
	got, err := ReadRaw(dev, slot)
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("raw read after crash: %v", err)
	}
}

func TestSwapSlotsIndependentProperty(t *testing.T) {
	f := func(a, b byte) bool {
		s := NewSwapDevice(NewBlockDevice("/dev/swap0", 4))
		pa := bytes.Repeat([]byte{a}, BlockSize)
		pb := bytes.Repeat([]byte{b}, BlockSize)
		sa, err1 := s.Alloc(pa)
		sb, err2 := s.Alloc(pb)
		if err1 != nil || err2 != nil || sa == sb {
			return false
		}
		ga, _ := s.Read(sa)
		gb, _ := s.Read(sb)
		return bytes.Equal(ga, pa) && bytes.Equal(gb, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceStats(t *testing.T) {
	d := NewBlockDevice("/dev/sda", 4)
	_ = d.WriteBlock(0, []byte{1})
	_, _ = d.ReadBlock(0)
	_, _ = d.ReadBlock(1)
	r, w := d.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats = %d reads %d writes", r, w)
	}
}
