package disk

import (
	"errors"
	"fmt"
)

// ErrSwapFull is returned when a swap device has no free slots.
var ErrSwapFull = errors.New("disk: swap device full")

// SwapDevice manages page-sized slots on a block device. Each kernel runs
// its own SwapDevice over its own partition; the slot allocation bitmap is
// kernel state (lost on crash), while the slot *contents* are device state
// (surviving the crash), so the crash kernel can read the main kernel's
// swapped pages back out of the dead partition.
type SwapDevice struct {
	dev  *BlockDevice
	used []bool
	free int
}

// NewSwapDevice initializes swap management over dev with a fresh (empty)
// allocation bitmap.
func NewSwapDevice(dev *BlockDevice) *SwapDevice {
	return &SwapDevice{
		dev:  dev,
		used: make([]bool, dev.Blocks()),
		free: dev.Blocks(),
	}
}

// Device returns the underlying block device.
func (s *SwapDevice) Device() *BlockDevice { return s.dev }

// Slots returns the device capacity in page slots.
func (s *SwapDevice) Slots() int { return len(s.used) }

// FreeSlots returns the number of unallocated slots.
func (s *SwapDevice) FreeSlots() int { return s.free }

// Alloc reserves a slot and writes the page into it.
func (s *SwapDevice) Alloc(page []byte) (int, error) {
	for i, u := range s.used {
		if u {
			continue
		}
		if err := s.dev.WriteBlock(i, page); err != nil {
			return 0, err
		}
		s.used[i] = true
		s.free--
		return i, nil
	}
	return 0, fmt.Errorf("%w: %s", ErrSwapFull, s.dev.Name())
}

// Read returns the page stored in slot.
func (s *SwapDevice) Read(slot int) ([]byte, error) {
	return s.dev.ReadBlock(slot)
}

// ReadRaw reads a slot without consulting the allocation bitmap. The crash
// kernel uses it to pull pages out of the *main* kernel's partition, whose
// bitmap died with the main kernel; the slot numbers come from the dead
// kernel's page tables instead.
func ReadRaw(dev *BlockDevice, slot int) ([]byte, error) {
	return dev.ReadBlock(slot)
}

// Free releases a slot. Freeing an unallocated slot is a no-op.
func (s *SwapDevice) Free(slot int) {
	if slot < 0 || slot >= len(s.used) || !s.used[slot] {
		return
	}
	s.used[slot] = false
	s.free++
}
