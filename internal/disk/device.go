// Package disk models the persistent storage layer: named block devices and
// swap devices. Disk contents survive kernel crashes and microreboots — the
// property both kernels depend on: the main kernel swaps to one partition,
// the crash kernel re-stages those pages onto a *second* partition
// (Section 3.2) and flushes dirty file buffers during resurrection
// (Section 3.3).
package disk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BlockSize is the device block size; it equals the memory page size so swap
// slots and page-cache pages map one-to-one to blocks.
const BlockSize = 4096

// ErrNoDevice is returned when opening an unknown device name.
var ErrNoDevice = errors.New("disk: no such device")

// BlockDevice is a fixed-capacity array of blocks addressed by index.
type BlockDevice struct {
	name   string
	blocks [][]byte

	mu     sync.Mutex
	reads  int64
	writes int64
}

// NewBlockDevice creates a device with the given number of blocks.
func NewBlockDevice(name string, blocks int) *BlockDevice {
	return &BlockDevice{name: name, blocks: make([][]byte, blocks)}
}

// Name returns the symbolic device name (e.g. "/dev/sdb1").
func (d *BlockDevice) Name() string { return d.name }

// Blocks returns the device capacity in blocks.
func (d *BlockDevice) Blocks() int { return len(d.blocks) }

// ReadBlock copies block i into a fresh BlockSize buffer. Unwritten blocks
// read as zeroes.
func (d *BlockDevice) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= len(d.blocks) {
		return nil, fmt.Errorf("disk %s: block %d out of range", d.name, i)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	buf := make([]byte, BlockSize)
	copy(buf, d.blocks[i])
	return buf, nil
}

// WriteBlock stores data (at most BlockSize bytes) into block i.
func (d *BlockDevice) WriteBlock(i int, data []byte) error {
	if i < 0 || i >= len(d.blocks) {
		return fmt.Errorf("disk %s: block %d out of range", d.name, i)
	}
	if len(data) > BlockSize {
		return fmt.Errorf("disk %s: write of %d bytes exceeds block size", d.name, len(data))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	buf := make([]byte, BlockSize)
	copy(buf, data)
	d.blocks[i] = buf
	return nil
}

// Stats returns the cumulative read and write block counts.
func (d *BlockDevice) Stats() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Bus is the machine's device registry: the set of block devices the kernel
// can open by symbolic name, which is exactly how the crash kernel reopens
// the swap device recorded in the main kernel's swap-area descriptor.
type Bus struct {
	mu   sync.Mutex
	devs map[string]*BlockDevice
}

// NewBus returns an empty device bus.
func NewBus() *Bus {
	return &Bus{devs: make(map[string]*BlockDevice)}
}

// Attach adds a device to the bus, replacing any existing device with the
// same name.
func (b *Bus) Attach(d *BlockDevice) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.devs[d.Name()] = d
}

// Open looks up a device by name.
func (b *Bus) Open(name string) (*BlockDevice, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.devs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDevice, name)
	}
	return d, nil
}

// Names returns the attached device names in sorted order.
func (b *Bus) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.devs))
	for n := range b.devs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
