package disk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

type recordedWrite struct {
	path string
	off  int64
	data []byte
}

func record(log *[]recordedWrite) func(string, int64, []byte) error {
	return func(path string, off int64, data []byte) error {
		cp := append([]byte(nil), data...)
		*log = append(*log, recordedWrite{path, off, cp})
		return nil
	}
}

func mustEnqueue(t *testing.T, q *WriteQueue, path string, off int64, data []byte) {
	t.Helper()
	if err := q.Enqueue(path, off, data); err != nil {
		t.Fatalf("Enqueue(%q, %d, %d bytes): %v", path, off, len(data), err)
	}
}

// TestWriteQueueRejectsEmptyExtent pins the validation added to Enqueue:
// a zero-length write used to be silently merged into neighbouring runs
// (or create a phantom empty extent); now it is an explicit error and
// leaves the queue untouched.
func TestWriteQueueRejectsEmptyExtent(t *testing.T) {
	var q WriteQueue
	if err := q.Enqueue("f", 0, nil); !errors.Is(err, ErrEmptyExtent) {
		t.Fatalf("Enqueue(nil data) = %v, want ErrEmptyExtent", err)
	}
	if err := q.Enqueue("f", 8, []byte{}); !errors.Is(err, ErrEmptyExtent) {
		t.Fatalf("Enqueue(empty data) = %v, want ErrEmptyExtent", err)
	}
	if q.Pending() != 0 {
		t.Fatalf("rejected extents were queued: %d pending", q.Pending())
	}
}

// TestWriteQueueRejectsOutOfBoundsExtent pins the bounds validation: a
// negative offset is always out of bounds, and with a device Limit set, a
// write reaching past the device end is rejected instead of merged.
func TestWriteQueueRejectsOutOfBoundsExtent(t *testing.T) {
	var q WriteQueue
	if err := q.Enqueue("f", -1, []byte("x")); !errors.Is(err, ErrExtentBounds) {
		t.Fatalf("Enqueue(off=-1) = %v, want ErrExtentBounds", err)
	}

	q = WriteQueue{Limit: 16}
	if err := q.Enqueue("f", 12, []byte("abcd")); err != nil {
		t.Fatalf("Enqueue at device end: %v", err)
	}
	if err := q.Enqueue("f", 13, []byte("abcd")); !errors.Is(err, ErrExtentBounds) {
		t.Fatalf("Enqueue past device end = %v, want ErrExtentBounds", err)
	}
	if err := q.Enqueue("f", 16, []byte("a")); !errors.Is(err, ErrExtentBounds) {
		t.Fatalf("Enqueue at Limit = %v, want ErrExtentBounds", err)
	}
	if q.Pending() != 1 {
		t.Fatalf("Pending = %d, want only the in-bounds extent", q.Pending())
	}
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil || extents != 1 || n != 4 {
		t.Fatalf("flush after rejections = %d/%d/%v, want 1/4/nil", extents, n, err)
	}
}

func TestWriteQueueMergesAdjacentRuns(t *testing.T) {
	var q WriteQueue
	// Enqueue out of order, across two files, with one gap on "a".
	mustEnqueue(t, &q, "a", 8, []byte("CD"))
	mustEnqueue(t, &q, "b", 0, []byte("xy"))
	mustEnqueue(t, &q, "a", 0, []byte("AB"))
	mustEnqueue(t, &q, "a", 2, []byte("ab"))
	mustEnqueue(t, &q, "a", 4, []byte("cd"))
	if q.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", q.Pending())
	}
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 0 {
		t.Fatalf("queue not emptied: %d pending", q.Pending())
	}
	// a:[0,6) merges three writes; a:[8,10) is gapped; b:[0,2) is its own.
	want := []recordedWrite{
		{"a", 0, []byte("ABabcd")},
		{"a", 8, []byte("CD")},
		{"b", 0, []byte("xy")},
	}
	if extents != 3 || n != 10 {
		t.Fatalf("extents=%d bytes=%d, want 3/10", extents, n)
	}
	for i, w := range want {
		if log[i].path != w.path || log[i].off != w.off || !bytes.Equal(log[i].data, w.data) {
			t.Fatalf("extent %d = %+v, want %+v", i, log[i], w)
		}
	}
}

// TestWriteQueueDoesNotClobberSources pins the aliasing hazard in extent
// merging: when queued buffers are adjacent slices of one backing array,
// growing the first buffer with a plain append would overwrite the second
// buffer in place before it is read. The merge must copy instead.
func TestWriteQueueDoesNotClobberSources(t *testing.T) {
	backing := []byte("0123456789abcdef")
	first := backing[0 : 8 : 8+8] // capacity deliberately reaches into the second half
	second := backing[8:16]
	var q WriteQueue
	mustEnqueue(t, &q, "f", 0, first)
	mustEnqueue(t, &q, "f", 8, second)
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil || extents != 1 || n != 16 {
		t.Fatalf("extents=%d bytes=%d err=%v", extents, n, err)
	}
	if got := string(log[0].data); got != "0123456789abcdef" {
		t.Fatalf("merged extent = %q, want the original bytes", got)
	}
	if string(backing) != "0123456789abcdef" {
		t.Fatalf("merge mutated a source buffer: %q", backing)
	}
}

func TestWriteQueueEnqueueOrderIrrelevant(t *testing.T) {
	pages := map[int64][]byte{}
	for i := int64(0); i < 8; i++ {
		pages[i*4] = []byte(fmt.Sprintf("pg%02d", i))
	}
	flush := func(order []int64) []recordedWrite {
		var q WriteQueue
		for _, off := range order {
			mustEnqueue(t, &q, "f", off, pages[off])
		}
		var log []recordedWrite
		if _, _, err := q.Flush(record(&log)); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a := flush([]int64{0, 4, 8, 12, 16, 20, 24, 28})
	b := flush([]int64{28, 12, 0, 20, 8, 4, 24, 16})
	if len(a) != 1 || len(b) != 1 || !bytes.Equal(a[0].data, b[0].data) {
		t.Fatalf("flush depends on enqueue order:\n%+v\nvs\n%+v", a, b)
	}
}

func TestWriteQueueSameOffsetLastWriteWins(t *testing.T) {
	var q WriteQueue
	mustEnqueue(t, &q, "f", 0, []byte("old!"))
	mustEnqueue(t, &q, "f", 0, []byte("new!"))
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil {
		t.Fatal(err)
	}
	// Equal-offset writes resolve to the later enqueue — the same final
	// contents as the unbatched path — issued once and counted once.
	if extents != 1 || n != 4 || len(log) != 1 {
		t.Fatalf("extents=%d bytes=%d writes=%d, want 1/4/1 (overlap must not double-count)",
			extents, n, len(log))
	}
	if !bytes.Equal(log[0].data, []byte("new!")) {
		t.Fatalf("flushed %q, want the later enqueue", log[0].data)
	}
}

// TestWriteQueueOverlapLastWriterWins pins the regression where a partially
// overlapping (not equal, not adjacent) write both started a new extent and
// re-paid the overlapped payload in the bytes total. Overlap resolves
// last-writer-wins, the merged run is one extent, and every final byte is
// counted exactly once.
func TestWriteQueueOverlapLastWriterWins(t *testing.T) {
	var q WriteQueue
	mustEnqueue(t, &q, "f", 0, []byte("AAAAAAAA")) // [0,8)
	mustEnqueue(t, &q, "f", 4, []byte("BBBBBBBB")) // [4,12): overlaps the tail of the first
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil {
		t.Fatal(err)
	}
	// Final contents are 12 unique bytes in one contiguous run; the old
	// code issued 2 extents totalling 16 bytes, double-charging [4,8).
	if extents != 1 || n != 12 || len(log) != 1 {
		t.Fatalf("extents=%d bytes=%d writes=%d, want 1/12/1", extents, n, len(log))
	}
	if log[0].off != 0 || !bytes.Equal(log[0].data, []byte("AAAABBBBBBBB")) {
		t.Fatalf("flushed off=%d %q, want 0 %q", log[0].off, log[0].data, "AAAABBBBBBBB")
	}

	// Enqueue order decides the winner, not offset order: a later write
	// that starts *before* an earlier one still overwrites the overlap.
	mustEnqueue(t, &q, "g", 4, []byte("XXXX"))   // [4,8)
	mustEnqueue(t, &q, "g", 0, []byte("yyyyyy")) // [0,6): later enqueue wins over [4,6)
	log = nil
	extents, n, err = q.Flush(record(&log))
	if err != nil {
		t.Fatal(err)
	}
	if extents != 1 || n != 8 || len(log) != 1 {
		t.Fatalf("extents=%d bytes=%d writes=%d, want 1/8/1", extents, n, len(log))
	}
	if log[0].off != 0 || !bytes.Equal(log[0].data, []byte("yyyyyyXX")) {
		t.Fatalf("flushed off=%d %q, want 0 %q", log[0].off, log[0].data, "yyyyyyXX")
	}
}

// TestWriteQueueOverlapGapAndEqualMix drives all three relations through
// one flush: an interior overwrite that splits a covering write, an exact
// duplicate, and a gapped write that must stay its own extent.
func TestWriteQueueOverlapGapAndEqualMix(t *testing.T) {
	var q WriteQueue
	mustEnqueue(t, &q, "f", 0, []byte("0123456789")) // [0,10)
	mustEnqueue(t, &q, "f", 2, []byte("ab"))         // interior overwrite [2,4)
	mustEnqueue(t, &q, "f", 2, []byte("cd"))         // equal-offset duplicate: last wins
	mustEnqueue(t, &q, "f", 16, []byte("ZZ"))        // gap: separate extent
	var log []recordedWrite
	extents, n, err := q.Flush(record(&log))
	if err != nil {
		t.Fatal(err)
	}
	if extents != 2 || n != 12 {
		t.Fatalf("extents=%d bytes=%d, want 2/12", extents, n)
	}
	want := []recordedWrite{
		{"f", 0, []byte("01cd456789")},
		{"f", 16, []byte("ZZ")},
	}
	if len(log) != len(want) {
		t.Fatalf("writes = %d, want %d", len(log), len(want))
	}
	for i, w := range want {
		if log[i].path != w.path || log[i].off != w.off || !bytes.Equal(log[i].data, w.data) {
			t.Fatalf("extent %d = %+v, want %+v", i, log[i], w)
		}
	}
}

func TestWriteQueueErrorStopsAfterFailingExtent(t *testing.T) {
	var q WriteQueue
	mustEnqueue(t, &q, "a", 0, []byte("aa"))
	mustEnqueue(t, &q, "b", 0, []byte("bb"))
	mustEnqueue(t, &q, "c", 0, []byte("cc"))
	boom := errors.New("disk full")
	calls := 0
	extents, n, err := q.Flush(func(string, int64, []byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	// The failing extent is counted, later extents are not attempted, and
	// the queue is empty either way.
	if extents != 2 || n != 4 || calls != 2 {
		t.Fatalf("extents=%d bytes=%d calls=%d, want 2/4/2", extents, n, calls)
	}
	if q.Pending() != 0 {
		t.Fatal("queue should empty even on error")
	}
}

func TestWriteQueueEmptyFlush(t *testing.T) {
	var q WriteQueue
	extents, n, err := q.Flush(func(string, int64, []byte) error {
		t.Fatal("writer called on empty queue")
		return nil
	})
	if extents != 0 || n != 0 || err != nil {
		t.Fatalf("empty flush = %d/%d/%v", extents, n, err)
	}
}
