package disk

import (
	"fmt"

	"otherworld/internal/fs"
	"otherworld/internal/sim"
)

// SectorSize is the atomic write unit of the modeled platter. A power cut
// mid-write leaves whole sectors before the failure point intact and the
// in-flight sector partially written — the torn write FIRST's SIGKILL-based
// harness cannot model and this simulated disk can.
const SectorSize = 512

// DefaultCacheDepth bounds the volatile write cache: this many acked block
// writes may still be in drive RAM (not on the platter) at any moment.
const DefaultCacheDepth = 32

// DirtyPage is one dirty page-cache page the block layer may flush on its
// own after a kernel crash — an "orphan" no surviving kernel owns.
type DirtyPage struct {
	Path string
	Off  int64
	Data []byte
}

// CrashReport summarizes what the crash model did at one kernel failure,
// for attributions, trace events and the disk_crash_* metrics.
type CrashReport struct {
	// Fired is true once CrashNow has run for this failure.
	Fired bool
	// RolledBack counts acked writes the volatile cache lost, and
	// RolledBackBytes their payload.
	RolledBack      int
	RolledBackBytes int64
	// Torn is true when the newest surviving write was cut mid-sector;
	// TornPath/TornOff locate the write and TearPoint is how many of its
	// bytes reached the platter.
	Torn      bool
	TornPath  string
	TornOff   int64
	TearPoint int
	// OrphanTotal counts the dirty pages handed to OrphanFlush;
	// OrphanFlushed of them reached the platter (in seeded order), for
	// OrphanBytes total. OrphanTorn marks a partially-written orphan.
	OrphanTotal   int
	OrphanFlushed int
	OrphanBytes   int64
	OrphanTorn    bool
	// Err records a substrate failure while applying crash effects (the
	// shared FS refusing a write); empty on clean firings.
	Err string
}

// Note renders a short attribution string for trace events.
func (r CrashReport) Note() string {
	return fmt.Sprintf("rollback=%d torn=%v orphans=%d/%d",
		r.RolledBack, r.Torn, r.OrphanFlushed, r.OrphanTotal)
}

// CrashModel is the deterministic block-layer crash model beneath the page
// cache. The kernel routes every page-cache flush through Write, which
// applies the bytes to the platter immediately but remembers them in a
// bounded volatile write cache (an undo log) until a Barrier — the fsync
// path — makes them durable. At kernel-crash time CrashNow can roll the
// cache back (acked writes lost in drive RAM) and tear the in-flight write
// mid-sector; OrphanFlush then pushes dirty page-cache pages that no
// surviving kernel flushed to the platter in an undefined-but-seeded order.
//
// Every decision draws from the model's own seeded RNG, so a crash's disk
// consequences are a pure function of the experiment seed — replayable,
// and bit-identical at any campaign or resurrection worker width (the
// model runs only on the serial failure-handling path).
type CrashModel struct {
	fs  *fs.FlatFS
	rng *sim.RNG

	depth int
	log   []logEntry

	armTear     bool
	armRollback bool
	armOrphan   bool

	report CrashReport
}

// logEntry is one un-barriered write: enough preimage to undo it exactly.
type logEntry struct {
	path     string
	off      int64
	length   int
	preimage []byte // prior contents of the overlapped range
	// sizeBefore is the file length before the write; -1 means the write
	// created the file.
	sizeBefore int64
}

// NewCrashModel builds a model over the shared file system. depth <= 0
// selects DefaultCacheDepth.
func NewCrashModel(filesystem *fs.FlatFS, seed int64, depth int) *CrashModel {
	if depth <= 0 {
		depth = DefaultCacheDepth
	}
	return &CrashModel{fs: filesystem, rng: sim.NewRNG(seed), depth: depth}
}

// Arm schedules which crash classes fire at the next CrashNow/OrphanFlush.
// Arming is one-shot: CrashNow consumes tear and rollback, OrphanFlush
// consumes orphan.
func (m *CrashModel) Arm(tear, rollback, orphan bool) {
	m.armTear, m.armRollback, m.armOrphan = tear, rollback, orphan
}

// Armed reports the currently scheduled classes.
func (m *CrashModel) Armed() (tear, rollback, orphan bool) {
	return m.armTear, m.armRollback, m.armOrphan
}

// Report returns the accumulated crash report for the last failure.
func (m *CrashModel) Report() CrashReport { return m.report }

// PendingWrites reports the volatile (un-barriered) write count, for tests.
func (m *CrashModel) PendingWrites() int { return len(m.log) }

// Write applies one block write. The bytes land on the platter immediately
// (readers see them), but the write stays volatile — undoable by CrashNow —
// until a Barrier retires it or it ages out of the bounded cache.
func (m *CrashModel) Write(path string, off int64, data []byte) (int, error) {
	ent := logEntry{path: path, off: off, length: len(data), sizeBefore: -1}
	if size, err := m.fs.Size(path); err == nil {
		ent.sizeBefore = size
		if off < size {
			end := off + int64(len(data))
			if end > size {
				end = size
			}
			if end > off {
				pre := make([]byte, end-off)
				if _, rerr := m.fs.ReadAt(path, off, pre); rerr != nil {
					return 0, rerr
				}
				ent.preimage = pre
			}
		}
	}
	n, err := m.fs.WriteAt(path, off, data, true)
	if err != nil {
		return n, err
	}
	m.log = append(m.log, ent)
	if len(m.log) > m.depth {
		// The oldest write ages out of drive RAM onto the platter: durable.
		m.log = append([]logEntry(nil), m.log[len(m.log)-m.depth:]...)
	}
	return n, nil
}

// Barrier drains the volatile cache: everything written so far is durable.
// This is the block-layer half of fsync.
func (m *CrashModel) Barrier() { m.log = nil }

// CrashNow applies the crash-time block-layer consequences: roll back a
// seeded number of the newest volatile writes (restoring their preimages,
// newest first, so the platter state is exactly some earlier prefix), then
// tear the newest surviving write at a seeded byte offset within one of its
// sectors. Arming is consumed; the volatile cache empties either way.
func (m *CrashModel) CrashNow() (CrashReport, error) {
	rep := CrashReport{Fired: true}
	log := m.log
	m.log = nil
	if m.armRollback && len(log) > 0 {
		k := m.rng.Intn(len(log) + 1)
		for i := len(log) - 1; i >= len(log)-k; i-- {
			if err := m.undo(log[i]); err != nil {
				m.report = rep
				return rep, err
			}
			rep.RolledBack++
			rep.RolledBackBytes += int64(log[i].length)
		}
		log = log[:len(log)-k]
	}
	if m.armTear && len(log) > 0 {
		ent := log[len(log)-1]
		if ent.length > 0 {
			nsec := (ent.length + SectorSize - 1) / SectorSize
			si := m.rng.Intn(nsec)
			secLen := ent.length - si*SectorSize
			if secLen > SectorSize {
				secLen = SectorSize
			}
			tear := si*SectorSize + m.rng.Intn(secLen)
			if err := m.tear(ent, tear); err != nil {
				m.report = rep
				return rep, err
			}
			rep.Torn = true
			rep.TornPath = ent.path
			rep.TornOff = ent.off
			rep.TearPoint = tear
		}
	}
	m.armTear, m.armRollback = false, false
	m.report = rep
	return rep, nil
}

// undo reverts one volatile write. Correct only when applied newest-first:
// each entry's preimage and size were captured against the state its undo
// restores.
func (m *CrashModel) undo(ent logEntry) error {
	if ent.sizeBefore < 0 {
		// The write created the file; losing it leaves no trace.
		return m.fs.Remove(ent.path)
	}
	if len(ent.preimage) > 0 {
		if _, err := m.fs.WriteAt(ent.path, ent.off, ent.preimage, false); err != nil {
			return err
		}
	}
	if end := ent.off + int64(ent.length); end > ent.sizeBefore {
		cur, err := m.fs.Size(ent.path)
		if err != nil {
			return err
		}
		if cur > ent.sizeBefore {
			if err := m.fs.Truncate(ent.path, ent.sizeBefore); err != nil {
				return err
			}
		}
	}
	return nil
}

// tear keeps the first tearPoint bytes of the write and reverts the rest:
// preimage where the file previously had contents, truncation (or zeroes)
// where the write extended it.
func (m *CrashModel) tear(ent logEntry, tearPoint int) error {
	sizeBefore := ent.sizeBefore
	if sizeBefore < 0 {
		sizeBefore = 0
	}
	start := ent.off + int64(tearPoint)
	end := ent.off + int64(ent.length)
	if preEnd := ent.off + int64(len(ent.preimage)); start < preEnd {
		if _, err := m.fs.WriteAt(ent.path, start, ent.preimage[start-ent.off:], false); err != nil {
			return err
		}
	}
	if end > sizeBefore {
		keep := sizeBefore
		if start > keep {
			keep = start
		}
		cur, err := m.fs.Size(ent.path)
		if err != nil {
			return err
		}
		if cur == end && keep < cur {
			// The torn write is the file tail: the unwritten extension
			// simply never existed.
			if err := m.fs.Truncate(ent.path, keep); err != nil {
				return err
			}
		} else if keep < end {
			// Extension mid-file (a later durable write grew it further):
			// the unwritten sectors read back as zeroes.
			zero := make([]byte, end-keep)
			if _, err := m.fs.WriteAt(ent.path, keep, zero, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// OrphanFlush models the drive draining dirty page-cache pages no surviving
// kernel flushed: a seeded permutation of the pages, a seeded completion
// count (power may cut the drain short), and possibly a torn in-flight
// page at the cut. Pages the caller already flushed through resurrection
// must not be passed in. The armed orphan class is consumed; unarmed, the
// pages are simply lost — the pre-model behavior.
func (m *CrashModel) OrphanFlush(pages []DirtyPage) (CrashReport, error) {
	rep := m.report
	rep.OrphanTotal += len(pages)
	if !m.armOrphan || len(pages) == 0 {
		m.armOrphan = false
		m.report = rep
		return rep, nil
	}
	m.armOrphan = false
	perm := m.rng.Perm(len(pages))
	done := m.rng.Intn(len(pages) + 1)
	for i := 0; i < done; i++ {
		pg := pages[perm[i]]
		if _, err := m.fs.WriteAt(pg.Path, pg.Off, pg.Data, true); err != nil {
			m.report = rep
			return rep, err
		}
		rep.OrphanFlushed++
		rep.OrphanBytes += int64(len(pg.Data))
	}
	if done < len(pages) {
		pg := pages[perm[done]]
		if len(pg.Data) > 0 && m.rng.Chance(0.5) {
			cut := m.rng.Intn(len(pg.Data))
			if cut > 0 {
				if _, err := m.fs.WriteAt(pg.Path, pg.Off, pg.Data[:cut], true); err != nil {
					m.report = rep
					return rep, err
				}
				rep.OrphanTorn = true
				rep.OrphanBytes += int64(cut)
			}
		}
	}
	m.report = rep
	return rep, nil
}
