package disk

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"testing"

	"otherworld/internal/fs"
)

// histState snapshots one file's contents after each model write, so tests
// can assert that a crash leaves exactly some prefix of the write history.
func histState(f *fs.FlatFS, path string) []byte {
	data, err := f.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

func TestCrashModelBarrierMakesWritesDurable(t *testing.T) {
	f := fs.New()
	m := NewCrashModel(f, 1, 8)
	if _, err := m.Write("log", 0, []byte("hello world!")); err != nil {
		t.Fatal(err)
	}
	m.Barrier()
	if m.PendingWrites() != 0 {
		t.Fatalf("PendingWrites = %d after barrier, want 0", m.PendingWrites())
	}
	m.Arm(true, true, false)
	rep, err := m.CrashNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack != 0 || rep.Torn {
		t.Fatalf("crash undid barriered writes: %+v", rep)
	}
	if got := histState(f, "log"); !bytes.Equal(got, []byte("hello world!")) {
		t.Fatalf("file = %q, want barriered contents", got)
	}
}

// TestCrashModelRollbackLeavesPrefixState checks the rollback contract: the
// platter after a crash is exactly the state after some prefix of the
// volatile write history, regardless of how many writes the seeded roll
// undoes.
func TestCrashModelRollbackLeavesPrefixState(t *testing.T) {
	sawFull, sawNone := false, false
	for seed := int64(0); seed < 40; seed++ {
		f := fs.New()
		m := NewCrashModel(f, seed, 32)
		// Record the file state after each write: states[i] is the platter
		// after i writes.
		states := [][]byte{nil}
		writes := []struct {
			off  int64
			data string
		}{
			{0, "aaaaaaaa"}, {4, "BBBB"}, {8, "cccc"}, {2, "XY"}, {12, "dddddddd"},
		}
		for _, w := range writes {
			if _, err := m.Write("f", w.off, []byte(w.data)); err != nil {
				t.Fatal(err)
			}
			states = append(states, histState(f, "f"))
		}
		m.Arm(false, true, false)
		rep, err := m.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.RolledBack == len(writes) {
			sawFull = true
		}
		if rep.RolledBack == 0 {
			sawNone = true
		}
		survived := len(writes) - rep.RolledBack
		if got, want := histState(f, "f"), states[survived]; !bytes.Equal(got, want) {
			t.Fatalf("seed %d: rolled back %d, file = %q, want prefix state %q",
				seed, rep.RolledBack, got, want)
		}
	}
	if !sawFull || !sawNone {
		t.Fatalf("seeds never exercised both extremes (full=%v none=%v)", sawFull, sawNone)
	}
}

// TestCrashModelRollbackRemovesCreatedFile: undoing the write that created a
// file removes the file entirely — a creation lost in drive RAM leaves no
// trace.
func TestCrashModelRollbackRemovesCreatedFile(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := fs.New()
		m := NewCrashModel(f, seed, 8)
		if _, err := m.Write("fresh", 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		m.Arm(false, true, false)
		rep, err := m.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		if rep.RolledBack == 0 {
			continue
		}
		if _, err := f.ReadFile("fresh"); err == nil {
			t.Fatalf("seed %d: rolled-back creation left the file behind", seed)
		}
		return
	}
	t.Fatal("no seed under 60 rolled back the creating write")
}

// TestCrashModelTearCutsMidSector: with only tear armed, the newest volatile
// write keeps a strict prefix of its payload and the rest reverts.
func TestCrashModelTearCutsMidSector(t *testing.T) {
	base := bytes.Repeat([]byte("0"), 2048)
	payload := bytes.Repeat([]byte("W"), 1536) // 3 sectors
	sawTear := false
	for seed := int64(0); seed < 40; seed++ {
		f := fs.New()
		m := NewCrashModel(f, seed, 8)
		if _, err := m.Write("f", 0, base); err != nil {
			t.Fatal(err)
		}
		m.Barrier()
		if _, err := m.Write("f", 256, payload); err != nil {
			t.Fatal(err)
		}
		m.Arm(true, false, false)
		rep, err := m.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Torn {
			t.Fatalf("seed %d: tear armed with a volatile write but Torn=false", seed)
		}
		if rep.TornPath != "f" || rep.TornOff != 256 {
			t.Fatalf("seed %d: tore %q@%d, want f@256", seed, rep.TornPath, rep.TornOff)
		}
		if rep.TearPoint < 0 || rep.TearPoint >= len(payload) {
			t.Fatalf("seed %d: tear point %d outside [0, %d)", seed, rep.TearPoint, len(payload))
		}
		if rep.TearPoint > 0 {
			sawTear = true
		}
		want := append([]byte(nil), base...)
		copy(want[256:], payload[:rep.TearPoint])
		if got := histState(f, "f"); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: torn file diverges from prefix-of-write at tear %d",
				seed, rep.TearPoint)
		}
	}
	if !sawTear {
		t.Fatal("no seed produced a non-zero tear point")
	}
}

// TestCrashModelTearTruncatesExtendingTail: a torn write that extended the
// file leaves the file ending at the tear point — the unwritten extension
// never existed.
func TestCrashModelTearTruncatesExtendingTail(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := fs.New()
		m := NewCrashModel(f, seed, 8)
		payload := bytes.Repeat([]byte("T"), 1024)
		if _, err := m.Write("f", 0, payload); err != nil {
			t.Fatal(err)
		}
		m.Arm(true, false, false)
		rep, err := m.CrashNow()
		if err != nil {
			t.Fatal(err)
		}
		got := histState(f, "f")
		if len(got) != rep.TearPoint {
			t.Fatalf("seed %d: file length %d, want tear point %d", seed, len(got), rep.TearPoint)
		}
		if !bytes.Equal(got, payload[:rep.TearPoint]) {
			t.Fatalf("seed %d: torn tail is not a prefix of the write", seed)
		}
	}
}

func TestCrashModelCacheDepthRetiresOldWrites(t *testing.T) {
	f := fs.New()
	m := NewCrashModel(f, 3, 4)
	for i := 0; i < 10; i++ {
		if _, err := m.Write("f", int64(i*8), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingWrites() != 4 {
		t.Fatalf("PendingWrites = %d, want the cache depth 4", m.PendingWrites())
	}
	// Only the newest 4 writes are undoable: bytes [0, 48) retired durable.
	m.Arm(false, true, false)
	rep, err := m.CrashNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack > 4 {
		t.Fatalf("rolled back %d writes, more than the cache held", rep.RolledBack)
	}
	data := histState(f, "f")
	if len(data) < 48 || !bytes.Equal(data[:48], bytes.Repeat([]byte("12345678"), 6)) {
		t.Fatalf("retired (durable) prefix was damaged: %q", data)
	}
}

func TestOrphanFlushSeededAndConsumed(t *testing.T) {
	pages := []DirtyPage{
		{Path: "a", Off: 0, Data: bytes.Repeat([]byte("A"), 64)},
		{Path: "a", Off: 64, Data: bytes.Repeat([]byte("B"), 64)},
		{Path: "b", Off: 0, Data: bytes.Repeat([]byte("C"), 64)},
	}
	run := func(seed int64, arm bool) (string, CrashReport) {
		f := fs.New()
		m := NewCrashModel(f, seed, 8)
		m.Arm(false, false, arm)
		rep, err := m.OrphanFlush(pages)
		if err != nil {
			t.Fatal(err)
		}
		var img bytes.Buffer
		for _, p := range f.List() {
			d, _ := f.ReadFile(p)
			fmt.Fprintf(&img, "%s=%q;", p, d)
		}
		return img.String(), rep
	}
	imgA, repA := run(7, true)
	imgB, repB := run(7, true)
	if imgA != imgB || repA != repB {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", imgA, imgB)
	}
	imgOff, repOff := run(7, false)
	if imgOff != "" {
		t.Fatalf("unarmed orphan flush wrote to the platter: %s", imgOff)
	}
	if repOff.OrphanFlushed != 0 || repOff.OrphanTotal != len(pages) {
		t.Fatalf("unarmed report = %+v, want only the total counted", repOff)
	}
}

// miniRec builds a 512-byte checksummed record, the fuzz harness's
// stand-in for a WAL slot.
func miniRec(tag byte) []byte {
	rec := make([]byte, SectorSize)
	for i := 0; i < SectorSize-4; i++ {
		rec[i] = tag
	}
	crc := crc32.ChecksumIEEE(rec[:SectorSize-4])
	rec[SectorSize-4] = byte(crc)
	rec[SectorSize-3] = byte(crc >> 8)
	rec[SectorSize-2] = byte(crc >> 16)
	rec[SectorSize-1] = byte(crc >> 24)
	return rec
}

// scanMini is the recovery scan: it must never panic on any post-crash
// image, and classifies each slot valid/invalid by checksum.
func scanMini(data []byte) (valid, invalid int) {
	for off := 0; off+SectorSize <= len(data); off += SectorSize {
		slot := data[off : off+SectorSize]
		crc := uint32(slot[SectorSize-4]) | uint32(slot[SectorSize-3])<<8 |
			uint32(slot[SectorSize-2])<<16 | uint32(slot[SectorSize-1])<<24
		if crc32.ChecksumIEEE(slot[:SectorSize-4]) == crc {
			valid++
		} else {
			invalid++
		}
	}
	if len(data)%SectorSize != 0 {
		invalid++
	}
	return valid, invalid
}

// FuzzTornWrite drives the crash model over fuzzer-chosen (write count,
// sector payloads, cache depth, seed) and checks the two properties every
// caller depends on: the post-crash recovery scan never panics, and the
// crash consequences are a pure function of the seed — two fresh models
// given identical inputs produce bit-identical platters and verdicts.
func FuzzTornWrite(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(2))
	f.Add(int64(99), uint8(1), uint8(0), uint8(7))
	f.Add(int64(-5), uint8(8), uint8(32), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nWrites, depth, orphans uint8) {
		if nWrites > 24 {
			nWrites = 24
		}
		if orphans > 8 {
			orphans = 8
		}
		run := func() (string, CrashReport, int, int) {
			fsys := fs.New()
			m := NewCrashModel(fsys, seed, int(depth))
			for i := byte(0); i < nWrites; i++ {
				if _, err := m.Write("wal", int64(i)*SectorSize, miniRec('a'+i%26)); err != nil {
					t.Fatal(err)
				}
				if i%5 == 4 {
					m.Barrier()
				}
			}
			m.Arm(true, true, true)
			if _, err := m.CrashNow(); err != nil {
				t.Fatal(err)
			}
			var pages []DirtyPage
			for i := byte(0); i < orphans; i++ {
				pages = append(pages, DirtyPage{
					Path: "wal",
					Off:  int64(nWrites+i) * SectorSize,
					Data: miniRec('A' + i),
				})
			}
			rep, err := m.OrphanFlush(pages)
			if err != nil {
				t.Fatal(err)
			}
			img := histState(fsys, "wal")
			valid, invalid := scanMini(img)
			return string(img), rep, valid, invalid
		}
		imgA, repA, validA, invalidA := run()
		imgB, repB, validB, invalidB := run()
		if imgA != imgB {
			t.Fatalf("same seed produced different platters (len %d vs %d)", len(imgA), len(imgB))
		}
		if repA != repB {
			t.Fatalf("same seed produced different reports: %+v vs %+v", repA, repB)
		}
		if validA != validB || invalidA != invalidB {
			t.Fatalf("recovery verdict unstable: %d/%d vs %d/%d", validA, invalidA, validB, invalidB)
		}
		if repA.TearPoint < 0 || (repA.Torn && repA.TearPoint >= int(nWrites)*SectorSize) {
			t.Fatalf("tear point %d out of range", repA.TearPoint)
		}
	})
}
