package spans

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// perfetto.go renders a span tree in the Chrome trace-event JSON format
// (the "traceEvents" array), which Perfetto's UI loads directly. The JSON
// is built by hand in tree order — no maps, no encoder reordering — so the
// bytes are identical for identical trees at any worker width. Timestamps
// are microseconds with fixed three-digit nanosecond fractions; pre-failure
// instants carry negative timestamps, which Perfetto accepts.

// WriteTraceEvents writes the Perfetto-loadable JSON for the tree.
func (t *Tree) WriteTraceEvents(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}

	// Process and thread name metadata: one process per experiment, thread
	// 0 for the machine track, one thread per candidate.
	emit(fmt.Sprintf("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%s}}",
		jsonString(fmt.Sprintf("otherworld %s seed=%d", t.App, t.Seed))))
	emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"machine\"}}")
	var walkNames func(s *Span)
	walkNames = func(s *Span) {
		if s.Cat == CatCandidate {
			emit(fmt.Sprintf("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}",
				s.TID, jsonString(s.Name)))
		}
		for _, c := range s.Children {
			walkNames(c)
		}
	}
	if t.Root != nil {
		walkNames(t.Root)
	}

	var walk func(s *Span)
	walk = func(s *Span) {
		if s.Dur > 0 {
			line := fmt.Sprintf("{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d",
				jsonString(s.Name), jsonString(s.Cat), usec(int64(s.Start)), usec(int64(s.Dur)), s.TID)
			if s.Note != "" {
				line += fmt.Sprintf(",\"args\":{\"note\":%s}", jsonString(s.Note))
			}
			emit(line + "}")
		} else {
			line := fmt.Sprintf("{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"g\",\"ts\":%s,\"pid\":1,\"tid\":%d",
				jsonString(s.Name), jsonString(s.Cat), usec(int64(s.Start)), s.TID)
			if s.Note != "" {
				line += fmt.Sprintf(",\"args\":{\"note\":%s}", jsonString(s.Note))
			}
			emit(line + "}")
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// usec renders nanoseconds as microseconds with a fixed three-digit
// fraction ("1234.567", "-0.500") — plain integer math, no floats.
func usec(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	if neg {
		return "-" + s
	}
	return s
}

// jsonString renders s as a JSON string literal via encoding/json, which is
// deterministic for strings.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshal of a string cannot fail; keep the exporter total anyway.
		return "\"\""
	}
	return string(b)
}
