package spans

import (
	"time"

	"otherworld/internal/resurrect"
)

// Share is one bucket of the critical-path attribution: how much of the
// modeled interruption at the analysis width one phase (or one serial
// stage) is responsible for.
type Share struct {
	// Name is "microreboot", "prologue", a resurrection phase name
	// ("parse", "page-copy", ...), or "other" for blocked time the
	// per-phase timelines did not itemize.
	Name string
	Dur  time.Duration
}

// CriticalPath attributes the modeled interruption at a given worker width
// to the chain of spans that bounds it. Under the deterministic round-robin
// schedule (candidate i → worker i mod W) the slowest worker's candidate
// chain *is* the critical path: the outage ends only when that worker's
// last blocked span does, everything else overlaps it.
type CriticalPath struct {
	// Workers is the analysis width.
	Workers int
	// Interruption is the modeled outage at that width: the serial
	// microreboot overhead, the resurrection prologue, and the critical
	// worker's summed blocked spans. It equals
	// core.FailureOutcome.InterruptionAt(Workers) by construction.
	Interruption time.Duration
	// Worker is the critical worker's index (lowest index wins ties).
	Worker int
	// Candidates are the candidate indices on the critical worker, in
	// stable candidate order.
	Candidates []int
	// Shares partitions Interruption without remainder: the sum of every
	// Share.Dur is exactly Interruption, so rendered percentages always
	// total 100%.
	Shares []Share
}

// Permille returns s's share of the interruption in tenths of a percent,
// rounded half-up — integer math, so rendering is bit-identical everywhere.
func (cp *CriticalPath) Permille(s Share) int64 {
	if cp.Interruption <= 0 {
		return 0
	}
	return (int64(s.Dur)*1000 + int64(cp.Interruption)/2) / int64(cp.Interruption)
}

// criticalPath extracts the attribution from worker-count-independent
// report fields. Every nanosecond of the modeled interruption lands in
// exactly one bucket: the serial stages in theirs, each critical-path
// candidate's blocked span split across its timeline phases in execution
// order, and any blocked remainder the timeline did not itemize in "other".
// Timeline tail beyond the blocked span is deferred (post-resume) work and
// deliberately excluded — it does not bound the outage. Negative durations
// can only come from a corrupted report; they are clamped to zero on every
// path so the shares-sum invariant survives arbitrary input (FuzzSpanBuild).
func criticalPath(rep *resurrect.Report, outside time.Duration, workers int) CriticalPath {
	pos := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return d
	}
	cp := CriticalPath{Workers: workers}
	prologue := pos(rep.Prologue)
	totals := make([]time.Duration, workers)
	for i, d := range rep.PerCandidate {
		totals[i%workers] += pos(d)
	}
	for wk := 1; wk < workers; wk++ {
		if totals[wk] > totals[cp.Worker] {
			cp.Worker = wk
		}
	}
	cp.Interruption = outside + prologue + totals[cp.Worker]

	// Phase buckets are indexed by resurrect.Phase so the output order is
	// the pipeline's execution order, never a map walk.
	const maxPhase = int(resurrect.PhasePolicy) + 1
	var phases [maxPhase]time.Duration
	var other time.Duration
	for i := cp.Worker; i < len(rep.PerCandidate); i += workers {
		cp.Candidates = append(cp.Candidates, i)
		remaining := pos(rep.PerCandidate[i])
		if i < len(rep.Procs) {
			for _, st := range rep.Procs[i].Timeline {
				if remaining <= 0 {
					break
				}
				take := pos(st.Duration)
				if take > remaining {
					take = remaining
				}
				if p := int(st.Phase); p >= 0 && p < maxPhase {
					phases[p] += take
				} else {
					other += take
				}
				remaining -= take
			}
		}
		other += remaining
	}

	cp.Shares = append(cp.Shares, Share{Name: "microreboot", Dur: outside})
	cp.Shares = append(cp.Shares, Share{Name: "prologue", Dur: prologue})
	for p := 0; p < maxPhase; p++ {
		if phases[p] > 0 {
			cp.Shares = append(cp.Shares, Share{Name: resurrect.Phase(p).String(), Dur: phases[p]})
		}
	}
	if other > 0 {
		cp.Shares = append(cp.Shares, Share{Name: "other", Dur: other})
	}
	return cp
}
