package spans

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"otherworld/internal/phys"
	"otherworld/internal/resurrect"
	"otherworld/internal/trace"
)

// parseFuzzRing lands arbitrary bytes in a one-frame ring region and parses
// it, the same corruption surface FuzzTraceParse exercises.
func parseFuzzRing(t *testing.T, data []byte) *trace.Parsed {
	t.Helper()
	mem := phys.NewMem(2 * phys.PageSize)
	if len(data) > phys.PageSize {
		data = data[:phys.PageSize]
	}
	//owvet:allow errdrop: corrupt ring images are the point of the fuzz; Parse below is total
	_ = mem.WriteAt(phys.FrameAddr(1), data)
	p := trace.Parse(mem, phys.Region{Start: 1, Frames: 1})
	if p == nil {
		t.Fatal("trace.Parse returned nil")
	}
	return p
}

// sampleReport builds a small deterministic report with two candidates and
// explicit per-phase timelines, the shape Build consumes.
func sampleReport() *resurrect.Report {
	rep := &resurrect.Report{
		Prologue:     20 * time.Microsecond,
		PerCandidate: []time.Duration{3 * time.Millisecond, 5 * time.Millisecond},
	}
	rep.Duration = rep.Prologue + 8*time.Millisecond
	rep.Procs = []resurrect.ProcReport{
		{
			Candidate: resurrect.Candidate{PID: 4, Name: "mysqld-0"},
			Outcome:   resurrect.OutcomeContinued,
			Timeline: []resurrect.PhaseStep{
				{Phase: resurrect.PhaseParse, Duration: time.Millisecond},
				{Phase: resurrect.PhasePageCopy, Duration: 2 * time.Millisecond},
			},
		},
		{
			Candidate: resurrect.Candidate{PID: 9, Name: "mysqld-1"},
			Outcome:   resurrect.OutcomeContinued,
			Timeline: []resurrect.PhaseStep{
				{Phase: resurrect.PhaseParse, Duration: time.Millisecond},
				{Phase: resurrect.PhasePageCopy, Duration: 4 * time.Millisecond},
			},
		},
	}
	return rep
}

func TestBuildSharesSumToInterruption(t *testing.T) {
	rep := sampleReport()
	for _, w := range []int{1, 2, 4, 8} {
		tree, err := Build(Input{
			App: "t", Workers: w, Report: rep,
			Interruption: rep.Duration + 50*time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum time.Duration
		for _, s := range tree.Critical.Shares {
			sum += s.Dur
		}
		if sum != tree.Critical.Interruption {
			t.Fatalf("width %d: shares sum %v != interruption %v", w, sum, tree.Critical.Interruption)
		}
		if tree.Critical.Interruption <= 0 {
			t.Fatalf("width %d: nonpositive interruption %v", w, tree.Critical.Interruption)
		}
	}
}

func TestBuildRequiresReport(t *testing.T) {
	if _, err := Build(Input{}); err == nil {
		t.Fatal("Build without a report must error")
	}
}

func TestBuildCountsGaps(t *testing.T) {
	rep := sampleReport()
	// A schedule input with no matching process report, and vice versa.
	rep.PerCandidate = append(rep.PerCandidate, time.Millisecond)
	tree, err := Build(Input{Report: rep, Interruption: rep.Duration})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Skipped == 0 {
		t.Fatal("mismatched schedule/report lengths must count as skipped")
	}

	rep2 := sampleReport()
	rep2.PerCandidate = rep2.PerCandidate[:1]
	tree2, err := Build(Input{Report: rep2, Interruption: rep2.Duration})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Skipped == 0 {
		t.Fatal("orphan process report must count as skipped")
	}
}

func TestUnknownSpanMarkSkipped(t *testing.T) {
	tree, err := Build(Input{
		Report: sampleReport(),
		PostEvents: []trace.Event{
			{Kind: trace.KindSpanMark, A: trace.SpanMarkResume, B: 2},
			{Kind: trace.KindSpanMark, A: 999},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Skipped != 1 {
		t.Fatalf("unknown span-mark code: skipped = %d, want 1", tree.Skipped)
	}
	if !strings.Contains(tree.Render(), "2 procs resumed") {
		t.Fatal("resume mark did not override the resumed count")
	}
}

func TestPerfettoExportWellFormed(t *testing.T) {
	tree, err := Build(Input{
		App: "mysql-x8", Seed: 7, Report: sampleReport(),
		Interruption: 60 * time.Millisecond, DataChecked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := tree.WriteTraceEvents(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"displayTimeUnit":"ns"`, `"traceEvents":[`,
		`"ph":"M"`, `"ph":"X"`, `"ph":"i"`,
		`"name":"microreboot"`, `"name":"data-audit"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("perfetto export missing %q:\n%s", want, out)
		}
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("perfetto export is not valid JSON:\n%s", out)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []time.Duration{5, 1, 4, 2, 3} // sorted: 1 2 3 4 5
	cases := []struct {
		p    int
		want time.Duration
	}{{0, 1}, {20, 1}, {50, 3}, {95, 5}, {99, 5}, {100, 5}, {-5, 1}, {150, 5}}
	for _, c := range cases {
		got, ok := Percentile(s, c.p)
		if !ok || got != c.want {
			t.Errorf("Percentile(p=%d) = %v, %v, want %v, true", c.p, got, ok, c.want)
		}
	}
	// Regression: a percentile over zero samples must report the absence
	// instead of a silent 0 (which rendered as a fake "0/0/0" table cell
	// for tiers and apps with no recoveries at all).
	for _, p := range []int{0, 50, 99, 100} {
		if got, ok := Percentile(nil, p); ok || got != 0 {
			t.Errorf("empty Percentile(p=%d) = %v, %v, want 0, false", p, got, ok)
		}
		if got, ok := Percentile([]time.Duration{}, p); ok || got != 0 {
			t.Errorf("empty-slice Percentile(p=%d) = %v, %v, want 0, false", p, got, ok)
		}
	}
}

// FuzzSpanBuild feeds arbitrary bytes through the flight-recorder parser
// into the span builder, alongside a synthetic report whose schedule inputs
// and timelines the fuzzer also skews. The builder's contract is total:
// skip-and-count, never a panic or an abort, and the critical-path shares
// still sum exactly to the interruption.
func FuzzSpanBuild(f *testing.F) {
	f.Add([]byte{}, uint8(2), int64(1e6), int64(5e7))
	f.Add([]byte{0x7C, 0x0D, 1, 0}, uint8(9), int64(-5), int64(0))
	f.Add(make([]byte, 300), uint8(0), int64(1e9), int64(-1))
	f.Fuzz(func(t *testing.T, ring []byte, nCand uint8, spanNS, interruptNS int64) {
		parsed := parseFuzzRing(t, ring)

		rep := &resurrect.Report{
			Prologue: 10 * time.Microsecond,
			Trace:    parsed,
		}
		// Deliberately mismatched candidate/report counts exercise the gap
		// accounting; spanNS may be negative or huge.
		for i := 0; i < int(nCand%8); i++ {
			rep.PerCandidate = append(rep.PerCandidate, time.Duration(spanNS))
		}
		for i := 0; i < int(nCand%5); i++ {
			rep.Procs = append(rep.Procs, resurrect.ProcReport{
				Candidate: resurrect.Candidate{PID: uint32(i + 1), Name: "p"},
				Outcome:   resurrect.OutcomeContinued,
				Timeline: []resurrect.PhaseStep{
					{Phase: resurrect.PhaseParse, Duration: time.Duration(spanNS) / 2},
				},
			})
		}
		rep.Duration = rep.Prologue
		for _, d := range rep.PerCandidate {
			rep.Duration += d
		}

		tree, err := Build(Input{
			App: "fuzz", Report: rep,
			Interruption: time.Duration(interruptNS),
			PostEvents:   parsed.Events,
		})
		if err != nil {
			t.Fatalf("Build must be total over corrupt input: %v", err)
		}
		if tree.Skipped < 0 {
			t.Fatalf("negative skip count %d", tree.Skipped)
		}
		var sum time.Duration
		for _, s := range tree.Critical.Shares {
			sum += s.Dur
		}
		if sum != tree.Critical.Interruption {
			t.Fatalf("shares sum %v != interruption %v", sum, tree.Critical.Interruption)
		}
		// Rendering and export must be total too.
		_ = tree.Render()
		var b bytes.Buffer
		if err := tree.WriteTraceEvents(&b); err != nil {
			t.Fatalf("export: %v", err)
		}
		if !json.Valid(b.Bytes()) {
			t.Fatalf("export is not valid JSON")
		}
	})
}
