// Package spans is Otherworld's causal span plane: a post-mortem
// reconstruction of *why* one handled kernel failure took as long as it did.
// Nothing here runs while the kernel is healthy — the only runtime footprint
// is the handful of span-boundary trace kinds (trace.KindSpanMark) the
// experiment harness records after recovery. Everything else is derived
// after the crash from state that already survives it: the dead kernel's
// flight-recorder ring, the resurrection report's per-phase timelines and
// per-candidate schedule inputs, and the experiment's attributions.
//
// Build turns those inputs into a deterministic span tree per experiment
// (inject → manifest → panic → microreboot → scan/install per candidate →
// resume → first-touch → data-audit), keyed entirely by logical time and by
// worker-count-independent report fields, so the tree — and its rendered
// text and Perfetto exports — is bit-identical at any resurrection or
// campaign worker width. On top of the tree, CriticalPath re-evaluates the
// schedule at an arbitrary width and attributes every nanosecond of the
// modeled interruption to a phase bucket; the buckets sum *exactly* to the
// interruption at that width, so shares always total 100%.
//
// The builder is total over corrupt input: a damaged ring slot, a truncated
// report or an unknown span-mark code is skipped and counted on
// Tree.Skipped, never a panic or an abort (FuzzSpanBuild pins this).
package spans

import (
	"fmt"
	"time"

	"otherworld/internal/resurrect"
	"otherworld/internal/trace"
)

// Span categories, mirroring Chrome trace-event "cat" values.
const (
	// CatExperiment is the root span.
	CatExperiment = "experiment"
	// CatMark is an instant: an injected fault, a manifestation, the panic,
	// the resume point, the data audit.
	CatMark = "mark"
	// CatRecovery is serial recovery machinery: the microreboot
	// (transfer + crash-kernel boot + morph) and the resurrection pass.
	CatRecovery = "recovery"
	// CatCandidate is one process's blocked resurrection span.
	CatCandidate = "candidate"
	// CatPhase is one resurrection phase inside a candidate's blocked span.
	CatPhase = "phase"
	// CatDeferred is resurrection work that ran after the candidate resumed
	// (lazy install only): it overlaps normal operation, off the blocked span.
	CatDeferred = "deferred"
	// CatLazy is post-resume demand paging: the first-touch stall sequence.
	CatLazy = "lazy"
)

// Input is everything Build needs; all fields except Report are optional.
type Input struct {
	// App / Seed / Lazy label the experiment the spans describe.
	App  string
	Seed int64
	Lazy bool
	// Workers is the analysis width for critical-path extraction; <1 means
	// resurrect.CanonicalWorkers. It selects which worker's candidate chain
	// bounds the interruption — the tree itself is width-independent.
	Workers int
	// Report is the resurrection pass (required). Its Trace sub-field, when
	// present, supplies the pre-failure instants (inject/manifest/panic).
	Report *resurrect.Report
	// Interruption is the experiment's serial-schedule outage
	// (core.FailureOutcome.SerialInterruption). Zero means "resurrection
	// only": the microreboot span collapses and the tree covers just the
	// report's duration.
	Interruption time.Duration
	// PostEvents are events recorded on the *new* kernel's ring after
	// recovery; Build consumes the trace.KindSpanMark entries (resume and
	// audit milestones) and counts unknown span-mark codes as skipped.
	PostEvents []trace.Event
	// DataChecked / DataErr carry the post-crash data audit verdict.
	DataChecked bool
	DataErr     string
}

// Span is one node of the tree. Start is an offset from recovery t=0 (the
// instant of failure handling); pre-failure instants sit at negative
// offsets. Dur == 0 means an instant.
type Span struct {
	Name string
	Cat  string
	// Start / Dur are virtual-time offsets from recovery t=0.
	Start time.Duration
	Dur   time.Duration
	// PID is the process the span belongs to (0 for machine-level spans).
	PID uint32
	// TID is the Perfetto row: 0 for the machine track, candidate index+1
	// for per-candidate tracks.
	TID      int
	Note     string
	Children []*Span
}

// End returns Start+Dur.
func (s *Span) End() time.Duration { return s.Start + s.Dur }

// Tree is one experiment's reconstructed span plane.
type Tree struct {
	App     string
	Seed    int64
	Lazy    bool
	Workers int
	Root    *Span
	// Skipped counts inputs the builder could not use: damaged ring slots,
	// report entries with no matching schedule input, unknown span-mark
	// codes. Corruption is counted, never fatal.
	Skipped int
	// Critical is the critical-path attribution at Tree.Workers.
	Critical CriticalPath
	// FirstTouch is the report's demand-fault stall sequence (lazy only).
	FirstTouch []time.Duration
}

// Build reconstructs the span tree for one experiment. It never panics on
// corrupt input and only errors when given nothing to build from.
func Build(in Input) (*Tree, error) {
	rep := in.Report
	if rep == nil {
		return nil, fmt.Errorf("spans: no resurrection report to build from")
	}
	w := in.Workers
	if w < 1 {
		w = resurrect.CanonicalWorkers
	}
	t := &Tree{
		App:        in.App,
		Seed:       in.Seed,
		Lazy:       in.Lazy,
		Workers:    w,
		FirstTouch: append([]time.Duration(nil), rep.FirstTouch...),
	}
	root := &Span{Name: "experiment", Cat: CatExperiment}
	t.Root = root

	// Pre-failure instants from the dead kernel's ring. The ring carries
	// logical sequence numbers, not timestamps, so the instants are placed
	// at synthetic negative offsets — one microsecond apart, in sequence
	// order — purely to make the causal order visible on a timeline.
	if rep.Trace != nil {
		t.Skipped += rep.Trace.Damaged
		var pre []trace.Event
		for _, ev := range rep.Trace.Events {
			switch ev.Kind {
			case trace.KindFaultInject, trace.KindFaultManifest, trace.KindPanic:
				pre = append(pre, ev)
			}
		}
		for j, ev := range pre {
			root.Children = append(root.Children, &Span{
				Name:  ev.Kind.String(),
				Cat:   CatMark,
				Start: -time.Duration(len(pre)-j) * time.Microsecond,
				PID:   ev.PID,
				Note:  ev.Note,
			})
		}
	}

	// The serial recovery skeleton. Everything outside the resurrection
	// pass (transfer of control, crash-kernel boot, morph) is serial and
	// coalesces into the microreboot span; the resurrection pass follows,
	// prologue first, then each candidate's blocked span laid out in the
	// serial schedule (stable candidate order — the exact input ScheduleAt
	// replays at any width).
	outside := in.Interruption - rep.Duration
	if outside < 0 {
		outside = 0
	}
	if outside > 0 {
		root.Children = append(root.Children, &Span{
			Name: "microreboot", Cat: CatRecovery, Start: 0, Dur: outside,
			Note: "transfer + crash-kernel boot + morph (serial, outside the resurrection pass)",
		})
	}
	res := &Span{Name: "resurrection", Cat: CatRecovery, Start: outside, Dur: rep.Duration}
	root.Children = append(root.Children, res)
	res.Children = append(res.Children, &Span{
		Name: "prologue", Cat: CatRecovery, Start: outside, Dur: rep.Prologue,
		Note: "trace salvage + candidate listing + swap resolution",
	})
	cum := outside + rep.Prologue
	// A streamed pass reports each candidate's SLO admission tier; the tree
	// then groups candidate rows into per-tier Perfetto lanes (TID block
	// 1000·(tier+1)) and stamps the tier on the span note. Batch reports
	// carry no tiers and keep the classic candidate-index rows, so existing
	// goldens are untouched.
	tiered := rep.Streamed && len(rep.Tiers) == len(rep.PerCandidate)
	for i, blocked := range rep.PerCandidate {
		cand := &Span{Cat: CatCandidate, Start: cum, Dur: blocked, TID: i + 1}
		if tiered {
			cand.TID = 1000*(rep.Tiers[i]+1) + i + 1
		}
		if i < len(rep.Procs) {
			pr := &rep.Procs[i]
			cand.PID = pr.Candidate.PID
			cand.Name = fmt.Sprintf("pid %d %s", pr.Candidate.PID, pr.Candidate.Name)
			cand.Note = pr.Outcome.String()
			if tiered {
				cand.Note = fmt.Sprintf("tier-%d %s", rep.Tiers[i], pr.Outcome.String())
			}
			off := cum
			for _, st := range pr.Timeline {
				cat := CatPhase
				if off-cum >= blocked {
					cat = CatDeferred
				}
				child := &Span{
					Name: st.Phase.String(), Cat: cat, Start: off, Dur: st.Duration,
					PID: cand.PID, TID: cand.TID, Note: st.Err,
				}
				cand.Children = append(cand.Children, child)
				off += st.Duration
			}
		} else {
			// Schedule input with no matching process report: corrupt or
			// truncated report. Keep the span, count the gap.
			cand.Name = fmt.Sprintf("candidate %d", i)
			t.Skipped++
		}
		res.Children = append(res.Children, cand)
		cum += blocked
	}
	// Process reports with no matching schedule input are the mirror gap.
	if len(rep.Procs) > len(rep.PerCandidate) {
		t.Skipped += len(rep.Procs) - len(rep.PerCandidate)
	}

	// Post-recovery milestones. The resume point is where the serial outage
	// ends; under the lazy install the demand-fault stalls follow it, laid
	// serially (the report records stall lengths, not absolute fault times),
	// and the data audit closes the experiment.
	end := outside + rep.Duration
	resumeNote := fmt.Sprintf("%d procs resumed", rep.Succeeded())
	auditSeen := false
	for _, ev := range in.PostEvents {
		if ev.Kind != trace.KindSpanMark {
			continue
		}
		switch ev.A {
		case trace.SpanMarkResume:
			resumeNote = fmt.Sprintf("%d procs resumed", ev.B)
		case trace.SpanMarkAudit:
			auditSeen = true
		default:
			t.Skipped++
		}
	}
	root.Children = append(root.Children, &Span{
		Name: "resume", Cat: CatMark, Start: end, Note: resumeNote,
	})
	if len(t.FirstTouch) > 0 {
		ft := &Span{Name: "first-touch", Cat: CatLazy, Start: end}
		off := end
		for i, stall := range t.FirstTouch {
			ft.Children = append(ft.Children, &Span{
				Name: fmt.Sprintf("touch %d", i), Cat: CatLazy, Start: off, Dur: stall,
			})
			off += stall
		}
		ft.Dur = off - end
		root.Children = append(root.Children, ft)
		end = off
	}
	if in.DataChecked || auditSeen {
		note := "clean"
		if in.DataErr != "" {
			note = in.DataErr
		}
		root.Children = append(root.Children, &Span{
			Name: "data-audit", Cat: CatMark, Start: end, Note: note,
		})
	}

	// The root covers everything it holds.
	start, last := root.Start, root.End()
	for _, c := range root.Children {
		if c.Start < start {
			start = c.Start
		}
		if c.End() > last {
			last = c.End()
		}
	}
	root.Start, root.Dur = start, last-start

	t.Critical = criticalPath(rep, outside, w)
	return t, nil
}
