package spans

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Render returns the text timeline: the span tree in depth-first order with
// logical-time offsets, followed by the critical-path attribution and the
// first-touch distribution. The output is a pure function of the tree, so
// the width-determinism goldens pin it byte for byte — it doubles as the
// tree's fingerprint.
func (t *Tree) Render() string {
	var b strings.Builder
	mode := "eager"
	if t.Lazy {
		mode = "lazy"
	}
	fmt.Fprintf(&b, "span plane: app=%s seed=%d mode=%s workers=%d skipped=%d\n",
		t.App, t.Seed, mode, t.Workers, t.Skipped)
	if t.Root != nil {
		renderSpan(&b, t.Root, 0)
	}

	cp := &t.Critical
	fmt.Fprintf(&b, "critical path @ %d workers: interruption=%v (worker %d, candidates %v)\n",
		cp.Workers, cp.Interruption, cp.Worker, cp.Candidates)
	var sum time.Duration
	for _, s := range cp.Shares {
		pm := cp.Permille(s)
		fmt.Fprintf(&b, "  %-14s %3d.%d%%  %v\n", s.Name, pm/10, pm%10, s.Dur)
		sum += s.Dur
	}
	fmt.Fprintf(&b, "  shares sum=%v of %v\n", sum, cp.Interruption)

	if n := len(t.FirstTouch); n > 0 {
		p50, _ := Percentile(t.FirstTouch, 50)
		p95, _ := Percentile(t.FirstTouch, 95)
		p99, _ := Percentile(t.FirstTouch, 99)
		fmt.Fprintf(&b, "first-touch stalls: n=%d p50=%v p95=%v p99=%v\n",
			n, p50, p95, p99)
	}
	return b.String()
}

// Fingerprint is the determinism anchor the 1-vs-8 width goldens compare.
func (t *Tree) Fingerprint() string { return t.Render() }

func renderSpan(b *strings.Builder, s *Span, depth int) {
	indent := strings.Repeat("  ", depth)
	if s.Dur > 0 {
		fmt.Fprintf(b, "%s%s [%v +%v] %s", indent, s.Name, s.Start, s.Dur, s.Cat)
	} else {
		fmt.Fprintf(b, "%s%s [%v] %s", indent, s.Name, s.Start, s.Cat)
	}
	if s.PID != 0 {
		fmt.Fprintf(b, " pid=%d", s.PID)
	}
	if s.Note != "" {
		fmt.Fprintf(b, " — %s", s.Note)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}

// Percentile returns the p-th percentile of samples by the nearest-rank
// method over a sorted copy — integer rank math, no interpolation, so the
// same samples give the same answer on every platform. p is clamped to
// [0, 100]. The second return is false when the sample set is empty: a
// percentile of nothing is not 0, and callers must render it as n/a (an
// empty SLO tier used to show up as a fake "0/0/0" row).
func Percentile(samples []time.Duration, p int) (time.Duration, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0], true
	}
	if p >= 100 {
		return s[len(s)-1], true
	}
	rank := (p*len(s) + 99) / 100 // ceil(p/100 * n), nearest-rank
	return s[rank-1], true
}
