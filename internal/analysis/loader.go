package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the target module.
type Package struct {
	// Path is the full import path; Rel is the slash-separated path
	// relative to the module root ("" for the root package itself).
	Path string
	Rel  string
	Dir  string
	Name string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Module is the analysis target discovered from a go.mod.
type Module struct {
	// Root is the directory holding go.mod; Path is the module path.
	Root string
	Path string
	// pkgDirs maps import path -> source directory.
	pkgDirs map[string]string
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod, mirroring how the go tool resolves "./...".
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// DiscoverModule reads go.mod at root and walks the tree recording every
// directory that holds non-test Go files. Vendor, testdata, hidden and
// underscore-prefixed directories are skipped, matching the go tool's
// interpretation of "./...".
func DiscoverModule(root string) (*Module, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, pkgDirs: make(map[string]string)}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod.Path = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if mod.Path == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is its own analysis target, never part of ours.
		if path != root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if len(goSources(path)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := mod.Path
		if rel != "." {
			ip = mod.Path + "/" + filepath.ToSlash(rel)
		}
		mod.pkgDirs[ip] = path
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mod, nil
}

// ImportPaths returns every package import path in the module, sorted.
func (m *Module) ImportPaths() []string {
	out := make([]string, 0, len(m.pkgDirs))
	for ip := range m.pkgDirs {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// Rel converts a module import path to its module-relative form.
func (m *Module) Rel(importPath string) string {
	if importPath == m.Path {
		return ""
	}
	return strings.TrimPrefix(importPath, m.Path+"/")
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out
}

// Loader parses and type-checks module packages. Module-internal imports
// are resolved from source recursively; standard-library imports go through
// the go/importer source importer, so the loader needs no compiled export
// data and no dependencies outside the standard library.
type Loader struct {
	fset    *token.FileSet
	mod     *Module
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader prepares a loader for mod.
func NewLoader(mod *Module) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		mod:     mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over both module and stdlib packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks one module package (cached).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	dir, ok := l.mod.pkgDirs[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: no package %q in module %s", importPath, l.mod.Path)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	var files []*ast.File
	for _, src := range goSources(dir) {
		f, err := parser.ParseFile(l.fset, src, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErrs[0])
	}
	p := &Package{
		Path:  importPath,
		Rel:   l.mod.Rel(importPath),
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
		Fset:  l.fset,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadAll loads every package in the module, sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var out []*Package
	for _, ip := range l.mod.ImportPaths() {
		p, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
