package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the dataflow layer under the flow analyzers (deadtaint,
// costaccount, sealedacct): a module-wide call graph over the stdlib-only
// loader, per-function summaries cached by package, and a worklist-based
// intraprocedural taint propagator.
//
// Provenance labels are a bitset: bit 0 marks a value derived from
// dead-kernel bytes (a read through the //owvet:reader counting reader or a
// direct phys.Mem accessor); bit i+1 marks a value derived from the
// enclosing function's i-th parameter (receiver first). Summaries record,
// per function, the labels of each result, the labels each reference
// parameter's referent picks up as a side effect, and which parameters
// reach an index/dereference/kernel-install sink unvalidated — so taint
// smuggled through helpers is caught at the call site, interprocedurally.
//
// The propagator is deliberately field-insensitive in one direction only:
// stores into struct fields kill the label. Dead-kernel bytes are parsed
// into plan/record structs immediately after validation in this codebase,
// so field stores are where provenance legitimately ends; tracking them
// would drown the real smuggling patterns (raw words and buffers returned
// through helpers) in noise.

// taint is a bitset of provenance labels.
type taint uint64

// taintDead marks data derived from dead-kernel bytes.
const taintDead taint = 1

// paramBit labels data derived from parameter i (receiver first). Functions
// with more than 62 parameters lose precision, never soundness of the
// labels that do fit.
func paramBit(i int) taint {
	if i < 0 || i >= 62 {
		return 0
	}
	return taint(1) << (uint(i) + 1)
}

// Directives understood by the dataflow layer, beyond owvet:reader and
// owvet:allow:
//
//	//owvet:validator  on a function: its arguments count as CRC/range
//	                   validated (hash/crc32 and names matching valid/verify
//	                   are recognised without the directive)
//	//owvet:seal       on a function: calling it seals the accounting;
//	                   later writes to sealed fields are diagnostics
//	//owvet:sealed     on a struct field: the field is part of the published,
//	                   fingerprinted ledger
//	//owvet:postseal   on a function: it runs after the seal point (lazy
//	                   resolution paths); everything reachable from it must
//	                   not write sealed fields
const (
	ValidatorDirective = "owvet:validator"
	SealDirective      = "owvet:seal"
	SealedDirective    = "owvet:sealed"
	PostSealDirective  = "owvet:postseal"
)

// FuncSummary is the cached dataflow summary of one module function.
type FuncSummary struct {
	// Results holds the label set of each result value.
	Results []taint
	// ParamOut holds, per parameter, labels its referent picks up as a side
	// effect (only reference-typed parameters: slices, pointers, maps).
	ParamOut []taint
	// Sinks has paramBit(i) set when parameter i reaches an index bound,
	// dereference or kernel-install sink inside the function (or one of its
	// callees) without passing a validation first.
	Sinks taint
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if o == nil || s.Sinks != o.Sinks ||
		len(s.Results) != len(o.Results) || len(s.ParamOut) != len(o.ParamOut) {
		return false
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	for i := range s.ParamOut {
		if s.ParamOut[i] != o.ParamOut[i] {
			return false
		}
	}
	return true
}

// sealedWrite is one syntactic write to an //owvet:sealed field.
type sealedWrite struct {
	pos   token.Pos
	field string
}

// costOp is one bytes-moving or CRC operation costaccount polices.
type costOp struct {
	pos  token.Pos
	what string
}

// flowFunc is one declared module function in the call graph.
type flowFunc struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees lists module functions this one calls, in first-encounter
	// order (deterministic: derived from the AST walk).
	callees []*types.Func

	// chargesDirect: the body references sim.CostModel or calls
	// sim.Clock.Advance. chargesTrans closes that over callees.
	chargesDirect bool
	chargesTrans  bool
	// writesSealed: the body writes an //owvet:sealed field directly;
	// writesSealedTrans closes that over callees.
	writesSealed      bool
	writesSealedTrans bool
	sealedWrites      []sealedWrite
	costOps           []costOp
}

// FlowIndex is the module-wide dataflow index built once per Run and shared
// (read-only) by every analyzer pass.
type FlowIndex struct {
	mod     *Module
	pkgs    []*Package
	byTypes map[*types.Package]*Package

	funcs    map[*types.Func]*flowFunc
	pkgFns   map[*Package][]*flowFunc
	// summaries is the function-summary cache, keyed by package: a
	// package's map is computed once (imports first, worklist to fixpoint
	// within the package) and then only read.
	summaries map[*Package]map[*types.Func]*FuncSummary

	readerTypeObjs map[*types.TypeName]bool
	validators     map[*types.Func]bool
	seals          map[*types.Func]bool
	postSeals      map[*types.Func]bool
	sealedFields   map[types.Object]bool
}

// buildFlowIndex constructs the call graph, collects directives, and
// computes every package's function summaries (dependencies first).
func buildFlowIndex(mod *Module, pkgs []*Package) *FlowIndex {
	fi := &FlowIndex{
		mod:            mod,
		pkgs:           pkgs,
		byTypes:        make(map[*types.Package]*Package, len(pkgs)),
		funcs:          make(map[*types.Func]*flowFunc),
		pkgFns:         make(map[*Package][]*flowFunc),
		summaries:      make(map[*Package]map[*types.Func]*FuncSummary, len(pkgs)),
		readerTypeObjs: make(map[*types.TypeName]bool),
		validators:     make(map[*types.Func]bool),
		seals:          make(map[*types.Func]bool),
		postSeals:      make(map[*types.Func]bool),
		sealedFields:   make(map[types.Object]bool),
	}
	for _, pkg := range pkgs {
		fi.byTypes[pkg.Types] = pkg
	}
	for _, pkg := range pkgs {
		fi.indexPackage(pkg)
	}
	for _, pkg := range pkgs {
		for _, ff := range fi.pkgFns[pkg] {
			fi.scanBody(ff)
		}
	}
	for _, pkg := range pkgs {
		fi.summarize(pkg)
	}
	fi.closeTransitive()
	return fi
}

// indexPackage records declarations and directives of one package.
func (fi *FlowIndex) indexPackage(pkg *Package) {
	deadScoped := fi.deadScoped(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				ff := &flowFunc{fn: fn, decl: d, pkg: pkg}
				fi.funcs[fn] = ff
				fi.pkgFns[pkg] = append(fi.pkgFns[pkg], ff)
				if hasDirective(d.Doc, ValidatorDirective) {
					fi.validators[fn] = true
				}
				if hasDirective(d.Doc, SealDirective) {
					fi.seals[fn] = true
				}
				if hasDirective(d.Doc, PostSealDirective) {
					fi.postSeals[fn] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if deadScoped {
						for _, doc := range []*ast.CommentGroup{ts.Doc, ts.Comment, d.Doc} {
							if hasDirective(doc, ReaderDirective) {
								if tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName); tn != nil {
									fi.readerTypeObjs[tn] = true
								}
							}
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !hasDirective(field.Doc, SealedDirective) && !hasDirective(field.Comment, SealedDirective) {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								fi.sealedFields[obj] = true
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(fi.pkgFns[pkg], func(i, j int) bool {
		return fi.pkgFns[pkg][i].decl.Pos() < fi.pkgFns[pkg][j].decl.Pos()
	})
}

// scanBody fills a function's call edges, charge sites, cost operations and
// sealed-write sites in one syntactic pass.
func (fi *FlowIndex) scanBody(ff *flowFunc) {
	if ff.decl.Body == nil {
		return
	}
	pkg := ff.pkg
	seen := make(map[*types.Func]bool)
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pkg, n)
			if fn != nil {
				if fi.funcByObj(fn) != nil && !seen[fn] {
					seen[fn] = true
					ff.callees = append(ff.callees, fn)
				}
				if fn.Pkg() != nil && pkgPathIs(fn.Pkg().Path(), "hash/crc32") {
					ff.costOps = append(ff.costOps, costOp{pos: n.Pos(), what: fn.Pkg().Name() + "." + fn.Name() + " (CRC validation)"})
				}
				if isClockAdvance(fn) {
					ff.chargesDirect = true
				}
			}
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					ff.costOps = append(ff.costOps, costOp{pos: n.Pos(), what: "builtin copy (byte movement)"})
				}
			}
			// A pointer-receiver method invoked on a sealed field mutates it
			// (the e.acct.absorb(shard) pattern).
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s := pkg.Info.Selections[sel]; s != nil {
					if m, ok := s.Obj().(*types.Func); ok && recvIsPointer(m) {
						if name := fi.sealedFieldIn(pkg, sel.X); name != "" {
							ff.writesSealed = true
							ff.sealedWrites = append(ff.sealedWrites,
								sealedWrite{pos: n.Pos(), field: name})
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if isCostModelSelector(pkg, n) {
				ff.chargesDirect = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name := fi.sealedFieldIn(pkg, lhs); name != "" {
					ff.writesSealed = true
					ff.sealedWrites = append(ff.sealedWrites,
						sealedWrite{pos: lhs.Pos(), field: name})
				}
			}
		case *ast.IncDecStmt:
			if name := fi.sealedFieldIn(pkg, n.X); name != "" {
				ff.writesSealed = true
				ff.sealedWrites = append(ff.sealedWrites,
					sealedWrite{pos: n.X.Pos(), field: name})
			}
		}
		return true
	})
}

// closeTransitive propagates chargesDirect and writesSealed over the call
// graph to a fixpoint.
func (fi *FlowIndex) closeTransitive() {
	for _, ff := range fi.funcs {
		ff.chargesTrans = ff.chargesDirect
		ff.writesSealedTrans = ff.writesSealed
	}
	for changed := true; changed; {
		changed = false
		for _, pkg := range fi.pkgs {
			for _, ff := range fi.pkgFns[pkg] {
				for _, callee := range ff.callees {
					cf := fi.funcByObj(callee)
					if cf == nil {
						continue
					}
					if cf.chargesTrans && !ff.chargesTrans {
						ff.chargesTrans = true
						changed = true
					}
					if cf.writesSealedTrans && !ff.writesSealedTrans {
						ff.writesSealedTrans = true
						changed = true
					}
				}
			}
		}
	}
}

// funcByObj resolves a callee object to its declaration, if declared in the
// module.
func (fi *FlowIndex) funcByObj(fn *types.Func) *flowFunc {
	return fi.funcs[fn]
}

// pkgFuncs lists a package's declared functions in source order.
func (fi *FlowIndex) pkgFuncs(pkg *Package) []*flowFunc {
	return fi.pkgFns[pkg]
}

// deadScoped reports whether phys.Mem/reader accesses inside pkg carry
// dead-kernel provenance — i.e. the package is in deadtaint's default
// scope. Elsewhere (the live kernel reading its own memory) the same
// accessors are ordinary reads.
func (fi *FlowIndex) deadScoped(pkg *Package) bool {
	for _, s := range deadTaintScope {
		if pkg.Rel == s || strings.HasPrefix(pkg.Rel, s+"/") {
			return true
		}
	}
	return false
}

// summarize computes (once) the summary map of pkg, dependencies first,
// with an intra-package worklist run to fixpoint for mutual recursion.
func (fi *FlowIndex) summarize(pkg *Package) map[*types.Func]*FuncSummary {
	if m, ok := fi.summaries[pkg]; ok {
		return m
	}
	m := make(map[*types.Func]*FuncSummary)
	fi.summaries[pkg] = m
	for _, imp := range pkg.Types.Imports() {
		if dep := fi.byTypes[imp]; dep != nil {
			fi.summarize(dep)
		}
	}
	funcs := fi.pkgFns[pkg]
	for _, ff := range funcs {
		m[ff.fn] = &FuncSummary{}
	}
	// Reverse intra-package edges, so a summary change re-enqueues callers.
	callers := make(map[*types.Func][]*flowFunc)
	for _, ff := range funcs {
		for _, callee := range ff.callees {
			if cf := fi.funcByObj(callee); cf != nil && cf.pkg == pkg {
				callers[callee] = append(callers[callee], ff)
			}
		}
	}
	queue := append([]*flowFunc(nil), funcs...)
	queued := make(map[*flowFunc]bool, len(funcs))
	for _, ff := range funcs {
		queued[ff] = true
	}
	for len(queue) > 0 {
		ff := queue[0]
		queue = queue[1:]
		queued[ff] = false
		sum := fi.computeSummary(ff)
		if !sum.equal(m[ff.fn]) {
			m[ff.fn] = sum
			for _, caller := range callers[ff.fn] {
				if !queued[caller] {
					queued[caller] = true
					queue = append(queue, caller)
				}
			}
		}
	}
	return m
}

// summaryOf returns the cached summary of a module function, or nil for
// functions outside the module.
func (fi *FlowIndex) summaryOf(fn *types.Func) *FuncSummary {
	ff := fi.funcByObj(fn)
	if ff == nil {
		return nil
	}
	return fi.summaries[ff.pkg][fn]
}

// computeSummary runs the propagator over one function with its parameters
// seeded and extracts the summary.
func (fi *FlowIndex) computeSummary(ff *flowFunc) *FuncSummary {
	st := fi.newState(ff)
	st.run()
	sum := &FuncSummary{
		Results:  append([]taint(nil), st.results...),
		ParamOut: make([]taint, len(st.params)),
		Sinks:    st.sinks,
	}
	for i, obj := range st.params {
		if obj == nil || !referenceParam(obj.Type()) {
			continue
		}
		sum.ParamOut[i] = st.taints[obj] &^ paramBit(i)
	}
	return sum
}

// referenceParam reports whether writes through a parameter of type t are
// visible to the caller.
func referenceParam(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// reachable returns every function reachable from roots over module call
// edges, mapped to the first root that reaches it (BFS, deterministic).
func (fi *FlowIndex) reachable(roots []*flowFunc) map[*flowFunc]*flowFunc {
	out := make(map[*flowFunc]*flowFunc)
	var queue []*flowFunc
	for _, r := range roots {
		if _, ok := out[r]; !ok {
			out[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		ff := queue[0]
		queue = queue[1:]
		for _, callee := range ff.callees {
			cf := fi.funcByObj(callee)
			if cf == nil {
				continue
			}
			if _, ok := out[cf]; !ok {
				out[cf] = out[ff]
				queue = append(queue, cf)
			}
		}
	}
	return out
}

// entryRoots lists a package's call-graph roots: exported functions and
// methods, init/main, and //owvet:postseal entry points.
func (fi *FlowIndex) entryRoots(pkg *Package) []*flowFunc {
	var out []*flowFunc
	for _, ff := range fi.pkgFns[pkg] {
		name := ff.decl.Name.Name
		if ff.decl.Name.IsExported() || name == "init" || name == "main" || fi.postSeals[ff.fn] {
			out = append(out, ff)
		}
	}
	return out
}

// hasDirective reports whether a comment group contains the exact directive
// token (so owvet:seal never matches owvet:sealed).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "/*"))
		rest, ok := strings.CutPrefix(text, directive)
		if !ok {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == ':' || rest[0] == '\t' {
			return true
		}
	}
	return false
}

// sealedFieldIn returns the name of the first //owvet:sealed field an
// expression selects, or "". Matching is by field object identity, so a
// same-named field on another struct (the reader's private ledger) never
// matches.
func (fi *FlowIndex) sealedFieldIn(pkg *Package, e ast.Expr) string {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[sel.Sel]
		if obj == nil {
			if s := pkg.Info.Selections[sel]; s != nil {
				obj = s.Obj()
			}
		}
		if obj != nil && fi.sealedFields[obj] {
			found = obj.Name()
			return false
		}
		return true
	})
	return found
}

// recvIsPointer reports whether a method has a pointer receiver.
func recvIsPointer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().(*types.Pointer)
	return ok
}

// isClockAdvance matches sim.Clock.Advance — the machine-clock charge.
func isClockAdvance(fn *types.Func) bool {
	if fn.Name() != "Advance" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSimNamed(sig.Recv().Type(), "Clock")
}

// isCostModelSelector matches any selection on a sim.CostModel value —
// reading a cost field or calling a cost method both count as consulting
// the cost model.
func isCostModelSelector(pkg *Package, sel *ast.SelectorExpr) bool {
	s := pkg.Info.Selections[sel]
	if s == nil {
		return false
	}
	return isSimNamed(s.Recv(), "CostModel")
}

// isSimNamed reports whether t is (a pointer to) internal/sim's named type.
func isSimNamed(t types.Type, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), "internal/sim")
}

// isDeadSource reports whether fn is a sanctioned dead-kernel accessor
// whose call yields tainted bytes: a method of an //owvet:reader-marked
// type, or phys.Mem.{ReadAt,ReadU64,Frame}.
func (fi *FlowIndex) isDeadSource(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if crossKernelMethods[fn.Name()] && isPhysMem(rt) {
		return true
	}
	if tn := namedTypeName(rt); tn != nil && fi.readerTypeObjs[tn] {
		return true
	}
	return false
}

// isValidatorCall reports whether calling fn counts as CRC/range validation
// of its arguments: hash/crc32 functions, //owvet:validator-marked
// functions, and functions whose name says validate/verify.
func (fi *FlowIndex) isValidatorCall(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if fi.validators[fn] {
		return true
	}
	if fn.Pkg() != nil && pkgPathIs(fn.Pkg().Path(), "hash/crc32") {
		return true
	}
	lower := strings.ToLower(fn.Name())
	return strings.Contains(lower, "valid") || strings.Contains(lower, "verify")
}

// namedTypeName unwraps (a pointer to) a named type to its TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// isErrorType reports whether t is the predeclared error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
