package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fnState is the worklist propagator's per-function state: label sets per
// local object, the validated set (CRC/range-checked objects, which win
// over taint), accumulated result labels and parameter sinks. The walker
// evaluates the body in lexical order repeatedly until the maps stop
// changing (loops carry labels backwards), then — in reporting mode — makes
// one final pass with diagnostics enabled so fixpoint iterations never
// duplicate a report.
type fnState struct {
	fi  *FlowIndex
	pkg *Package
	ff  *flowFunc

	// params holds the parameter objects, receiver first; nil for unnamed
	// or blank parameters. resultObjs mirrors named results (bare returns).
	params     []types.Object
	resultObjs []types.Object

	taints    map[types.Object]taint
	validated map[types.Object]bool
	results   []taint
	sinks     taint

	deadScope bool
	reporting bool
	pass      *Pass
	depth     int // FuncLit nesting: inner returns don't feed the summary
	changed   bool
}

// newState prepares a propagator run with every parameter seeded with its
// own label.
func (fi *FlowIndex) newState(ff *flowFunc) *fnState {
	st := &fnState{
		fi:        fi,
		pkg:       ff.pkg,
		ff:        ff,
		taints:    make(map[types.Object]taint),
		validated: make(map[types.Object]bool),
		deadScope: fi.deadScoped(ff.pkg),
	}
	if ff.decl.Recv != nil {
		for _, field := range ff.decl.Recv.List {
			st.params = append(st.params, fieldObjs(ff.pkg, field)...)
		}
	}
	if ff.decl.Type.Params != nil {
		for _, field := range ff.decl.Type.Params.List {
			st.params = append(st.params, fieldObjs(ff.pkg, field)...)
		}
	}
	nres := 0
	if ff.decl.Type.Results != nil {
		for _, field := range ff.decl.Type.Results.List {
			objs := fieldObjs(ff.pkg, field)
			st.resultObjs = append(st.resultObjs, objs...)
			nres += len(objs)
		}
	}
	st.results = make([]taint, nres)
	for i, obj := range st.params {
		if obj != nil {
			st.taints[obj] = paramBit(i)
		}
	}
	return st
}

// fieldObjs expands one field of a parameter/result list to its objects —
// one nil entry for an unnamed field, one per name otherwise.
func fieldObjs(pkg *Package, field *ast.Field) []types.Object {
	if len(field.Names) == 0 {
		return []types.Object{nil}
	}
	out := make([]types.Object, 0, len(field.Names))
	for _, name := range field.Names {
		if name.Name == "_" {
			out = append(out, nil)
			continue
		}
		out = append(out, pkg.Info.Defs[name])
	}
	return out
}

// run iterates the body to a fixpoint. Labels and the validated set only
// grow (validated wins over taint when both apply), so this terminates; the
// iteration cap is a backstop for pathological bodies.
func (st *fnState) run() {
	if st.ff.decl.Body == nil {
		return
	}
	for iter := 0; iter < 8; iter++ {
		st.changed = false
		st.stmt(st.ff.decl.Body)
		if !st.changed {
			break
		}
	}
}

// reportPass re-walks the converged body once with diagnostics enabled.
func (st *fnState) reportPass(p *Pass) {
	if st.ff.decl.Body == nil {
		return
	}
	st.reporting = true
	st.pass = p
	st.stmt(st.ff.decl.Body)
	st.reporting = false
	st.pass = nil
}

func (st *fnState) addTaint(obj types.Object, t taint) {
	if obj == nil || t == 0 || st.validated[obj] {
		return
	}
	if st.taints[obj]&t != t {
		st.taints[obj] |= t
		st.changed = true
	}
}

func (st *fnState) markValidated(obj types.Object) {
	if obj == nil || st.validated[obj] {
		return
	}
	st.validated[obj] = true
	st.changed = true
}

func (st *fnState) setResult(i int, t taint) {
	if i < 0 || i >= len(st.results) || t == 0 {
		return
	}
	if st.results[i]&t != t {
		st.results[i] |= t
		st.changed = true
	}
}

// sink records a sink hit: parameter labels feed the summary; the dead
// label becomes a diagnostic in reporting mode.
func (st *fnState) sink(pos token.Pos, t taint, format string, args ...any) {
	if p := t &^ taintDead; p != 0 && st.sinks&p != p {
		st.sinks |= p
		st.changed = true
	}
	if t&taintDead != 0 && st.reporting && st.pass != nil {
		st.pass.Reportf(pos, format, args...)
	}
}

// obj resolves an identifier to its object (definition or use).
func (st *fnState) obj(id *ast.Ident) types.Object {
	if obj := st.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return st.pkg.Info.Uses[id]
}

// rootObj finds the object a store through an expression lands on: the
// identifier under any slicing/indexing/address-taking. Selector (field)
// and dereference targets return nil — those are the propagator's label
// kill points.
func (st *fnState) rootObj(e ast.Expr) types.Object {
	for {
		switch n := unparen(e).(type) {
		case *ast.Ident:
			if n.Name == "_" {
				return nil
			}
			return st.obj(n)
		case *ast.IndexExpr:
			e = n.X
		case *ast.SliceExpr:
			e = n.X
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return nil
			}
			e = n.X
		default:
			return nil
		}
	}
}

func (st *fnState) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if n == nil {
			return
		}
		for _, x := range n.List {
			st.stmt(x)
		}
	case *ast.ExprStmt:
		st.expr(n.X)
	case *ast.AssignStmt:
		st.assign(n)
	case *ast.IncDecStmt:
		st.expr(n.X)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == 1 && len(vs.Names) > 1 {
				ts := st.tupleTaints(vs.Values[0], len(vs.Names))
				for i, name := range vs.Names {
					st.addTaint(st.obj(name), ts[i])
				}
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					st.addTaint(st.obj(name), st.expr(vs.Values[i]))
				}
			}
		}
	case *ast.ReturnStmt:
		st.ret(n)
	case *ast.IfStmt:
		st.stmt(n.Init)
		st.expr(n.Cond)
		st.stmt(n.Body)
		st.stmt(n.Else)
	case *ast.ForStmt:
		st.stmt(n.Init)
		if n.Cond != nil {
			st.expr(n.Cond)
		}
		st.stmt(n.Post)
		st.stmt(n.Body)
	case *ast.RangeStmt:
		t := st.expr(n.X)
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if v == nil {
				continue
			}
			if id, ok := unparen(v).(*ast.Ident); ok {
				st.addTaint(st.obj(id), t)
			}
		}
		st.stmt(n.Body)
	case *ast.SwitchStmt:
		st.stmt(n.Init)
		if n.Tag != nil {
			st.expr(n.Tag)
		}
		st.stmt(n.Body)
	case *ast.CaseClause:
		for _, e := range n.List {
			st.expr(e)
		}
		for _, x := range n.Body {
			st.stmt(x)
		}
	case *ast.TypeSwitchStmt:
		st.stmt(n.Init)
		var t taint
		switch a := n.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				t = st.expr(a.Rhs[0])
			}
		case *ast.ExprStmt:
			t = st.expr(a.X)
		}
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if obj := st.pkg.Info.Implicits[cc]; obj != nil {
				st.addTaint(obj, t)
			}
			for _, x := range cc.Body {
				st.stmt(x)
			}
		}
	case *ast.SelectStmt:
		st.stmt(n.Body)
	case *ast.CommClause:
		st.stmt(n.Comm)
		for _, x := range n.Body {
			st.stmt(x)
		}
	case *ast.SendStmt:
		st.expr(n.Chan)
		st.expr(n.Value)
	case *ast.DeferStmt:
		st.expr(n.Call)
	case *ast.GoStmt:
		st.expr(n.Call)
	case *ast.LabeledStmt:
		st.stmt(n.Stmt)
	}
}

func (st *fnState) assign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		ts := st.tupleTaints(n.Rhs[0], len(n.Lhs))
		for i, lhs := range n.Lhs {
			st.store(lhs, ts[i])
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		st.store(lhs, st.expr(n.Rhs[i]))
	}
}

// store joins a label into an lvalue. Plain identifiers accumulate it;
// element stores (s[i] = v, s[i:] targets of copy) label the container;
// stores through struct fields and pointer dereferences kill the label.
func (st *fnState) store(lhs ast.Expr, t taint) {
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name != "_" {
			st.addTaint(st.obj(id), t)
		}
		return
	}
	// A complex lvalue is also a read path: evaluate it so a tainted index
	// or a dereference of a tainted pointer on the write side still hits
	// the sink checks.
	st.expr(lhs)
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		st.addTaint(st.rootObj(l.X), t)
	case *ast.SliceExpr:
		st.addTaint(st.rootObj(l.X), t)
	}
}

// tupleTaints evaluates a multi-value RHS (call, v-ok form) into n labels.
func (st *fnState) tupleTaints(rhs ast.Expr, n int) []taint {
	out := make([]taint, n)
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		ts := st.call(call)
		for i := range out {
			if i < len(ts) {
				out[i] = ts[i]
			}
		}
		return out
	}
	t := st.expr(rhs)
	for i := range out {
		out[i] = t
	}
	return out
}

func (st *fnState) ret(n *ast.ReturnStmt) {
	if st.depth > 0 {
		for _, e := range n.Results {
			st.expr(e)
		}
		return
	}
	if len(n.Results) == 0 {
		for i, obj := range st.resultObjs {
			if obj != nil && !st.validated[obj] {
				st.setResult(i, st.taints[obj])
			}
		}
		return
	}
	if len(n.Results) == 1 && len(st.results) > 1 {
		for i, t := range st.tupleTaints(n.Results[0], len(st.results)) {
			st.setResult(i, t)
		}
		return
	}
	for i, e := range n.Results {
		st.setResult(i, st.expr(e))
	}
}

// expr evaluates an expression to its label set, performing sink checks and
// validation marking along the way.
func (st *fnState) expr(e ast.Expr) taint {
	if e == nil {
		return 0
	}
	e = unparen(e)
	if tv, ok := st.pkg.Info.Types[e]; ok && tv.IsType() {
		return 0
	}
	switch n := e.(type) {
	case *ast.Ident:
		obj := st.obj(n)
		if obj == nil || st.validated[obj] {
			return 0
		}
		return st.taints[obj]
	case *ast.BasicLit:
		return 0
	case *ast.FuncLit:
		st.depth++
		st.stmt(n.Body)
		st.depth--
		return 0
	case *ast.CompositeLit:
		// Field/element stores are label kill points: evaluate the elements
		// (their own sinks still count) but the literal comes out clean.
		for _, el := range n.Elts {
			st.expr(el)
		}
		return 0
	case *ast.KeyValueExpr:
		return st.expr(n.Value)
	case *ast.SelectorExpr:
		// Reading a field or method of a wholly-labeled value propagates
		// the label; package-qualified selectors evaluate to 0.
		return st.expr(n.X)
	case *ast.IndexExpr:
		tb := st.expr(n.X)
		ti := st.expr(n.Index)
		st.sinkIndex(n, ti)
		return tb | ti
	case *ast.IndexListExpr:
		return st.expr(n.X)
	case *ast.SliceExpr:
		t := st.expr(n.X)
		for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
			if b == nil {
				continue
			}
			tb := st.expr(b)
			if tb != 0 {
				st.sink(b.Pos(), tb,
					"value derived from dead-kernel bytes used as a slice bound without "+
						"CRC/range validation; check it first (resurrection-critical data check)")
			}
			t |= tb
		}
		return t
	case *ast.StarExpr:
		tp := st.expr(n.X)
		if tp != 0 {
			st.sink(n.Pos(), tp,
				"dereference of a dead-kernel-derived pointer without CRC/range validation; "+
					"validate before following pointers parsed from dead memory")
		}
		return tp
	case *ast.UnaryExpr:
		return st.expr(n.X)
	case *ast.BinaryExpr:
		tx := st.expr(n.X)
		ty := st.expr(n.Y)
		switch n.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			// Comparing a labeled value against anything is the range-check
			// idiom (frame >= numFrames, crc != want): the compared object
			// counts as validated from here on.
			st.validateOperand(n.X)
			st.validateOperand(n.Y)
			return 0
		case token.LAND, token.LOR:
			return 0
		}
		return tx | ty
	case *ast.CallExpr:
		var t taint
		for _, r := range st.call(n) {
			t |= r
		}
		return t
	case *ast.TypeAssertExpr:
		return st.expr(n.X)
	}
	return 0
}

// validateOperand marks the object under a comparison operand (identifier,
// possibly converted or parenthesised) as validated.
func (st *fnState) validateOperand(e ast.Expr) {
	for {
		e = unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := st.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0] // uint64(x) > max validates x
				continue
			}
		}
		break
	}
	if id, ok := e.(*ast.Ident); ok {
		st.markValidated(st.obj(id))
	}
}

// sinkIndex flags indexing a bounds-sensitive container (slice, array,
// string — not a map) by a labeled value.
func (st *fnState) sinkIndex(n *ast.IndexExpr, ti taint) {
	if ti == 0 {
		return
	}
	tv, ok := st.pkg.Info.Types[n.X]
	if !ok {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); !ok {
			return
		}
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}
	st.sink(n.Index.Pos(), ti,
		"value derived from dead-kernel bytes used as a slice/array index without "+
			"CRC/range validation; check it first (resurrection-critical data check)")
}

// call evaluates a call expression to its per-result labels.
func (st *fnState) call(n *ast.CallExpr) []taint {
	// Type conversion: the label passes through.
	if tv, ok := st.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
		var t taint
		for _, a := range n.Args {
			t |= st.expr(a)
		}
		return []taint{t}
	}
	// Builtins.
	if id, ok := unparen(n.Fun).(*ast.Ident); ok {
		if b, ok := st.pkg.Info.Uses[id].(*types.Builtin); ok {
			return st.builtin(b.Name(), n)
		}
	}
	fn := calleeFunc(st.pkg, n)
	nres := st.callResults(n)

	// Receiver label for method calls; function-value label for indirect
	// calls (a smuggled method value carries its provenance).
	var argT []taint
	hasRecv := false
	if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
		if st.pkg.Info.Selections[sel] != nil {
			hasRecv = true
			argT = append(argT, st.expr(sel.X))
		}
	} else if fn == nil {
		// Indirect call: the function value's own label joins the union as
		// a pseudo-argument (only the unknown-callee fallback reads argT
		// positionally-blind, so this never skews parameter mapping).
		if t := st.expr(n.Fun); t != 0 {
			argT = append(argT, t)
		}
	}
	for _, a := range n.Args {
		argT = append(argT, st.expr(a))
	}

	// Validation sinks cleanse their (identifier) arguments.
	if st.fi.isValidatorCall(fn) {
		for _, a := range n.Args {
			st.validateOperand(a)
		}
		return make([]taint, maxInt(nres, 1))
	}

	// Dead-kernel sources: the counting reader and phys.Mem accessors,
	// inside the crash-kernel packages.
	if st.deadScope && st.fi.isDeadSource(fn) {
		return st.sourceCall(fn, n, nres)
	}

	// Installing into main-kernel state is a sink regardless of what the
	// callee does afterwards.
	if fn != nil && fn.Pkg() != nil && pkgPathIs(fn.Pkg().Path(), "internal/kernel") {
		var t taint
		for _, x := range argT {
			t |= x
		}
		if t != 0 {
			st.sink(n.Pos(), t,
				"unvalidated dead-kernel bytes flow into main-kernel state via %s; "+
					"CRC/range-validate before installing (resurrection-critical data check)",
				fn.Name())
		}
	}

	// Module callee with a cached summary: substitute argument labels for
	// parameter labels, apply out-effects and parameter sinks.
	if fn != nil {
		if sum := st.fi.summaryOf(fn); sum != nil {
			return st.summaryCall(fn, sum, n, argT, hasRecv, nres)
		}
	}

	// Unknown callee (stdlib, interface, indirect): every result inherits
	// the union of operand labels.
	var t taint
	for _, x := range argT {
		t |= x
	}
	out := make([]taint, maxInt(nres, 1))
	for i := range out {
		out[i] = t
	}
	return out
}

// sourceCall applies the dead-kernel source rule: byte-slice arguments are
// out-buffers filled with dead bytes; non-error results (except the
// reader's own chaining type) are dead-derived.
func (st *fnState) sourceCall(fn *types.Func, n *ast.CallExpr, nres int) []taint {
	for _, a := range n.Args {
		if !st.isByteSlice(a) {
			continue
		}
		if obj := st.rootObj(a); obj != nil && !st.validated[obj] {
			st.addTaint(obj, taintDead)
		}
	}
	sig := fn.Type().(*types.Signature)
	out := make([]taint, maxInt(nres, 1))
	for i := 0; i < sig.Results().Len() && i < len(out); i++ {
		rt := sig.Results().At(i).Type()
		if isErrorType(rt) {
			continue
		}
		// A method returning the reader itself (at(cat) chaining) hands
		// back the accessor, not dead bytes.
		if rn, recvN := namedTypeName(rt), namedTypeName(sig.Recv().Type()); rn != nil && rn == recvN {
			continue
		}
		out[i] = taintDead
	}
	return out
}

// summaryCall applies a module callee's summary at a call site.
func (st *fnState) summaryCall(fn *types.Func, sum *FuncSummary, n *ast.CallExpr, argT []taint, hasRecv bool, nres int) []taint {
	sig := fn.Type().(*types.Signature)
	np := sig.Params().Len()
	if sig.Recv() != nil {
		np++
	}
	argLabel := func(i int) taint {
		if i < len(argT) {
			t := argT[i]
			// Variadic final parameter absorbs all remaining arguments.
			if sig.Variadic() && i == np-1 {
				for j := i + 1; j < len(argT); j++ {
					t |= argT[j]
				}
			}
			return t
		}
		return 0
	}
	subst := func(t taint) taint {
		out := t & taintDead
		for i := 0; i < np; i++ {
			if t&paramBit(i) != 0 {
				out |= argLabel(i)
			}
		}
		return out
	}
	argExpr := func(i int) ast.Expr {
		if hasRecv {
			if i == 0 {
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
					return sel.X
				}
				return nil
			}
			i--
		}
		if i < len(n.Args) {
			return n.Args[i]
		}
		return nil
	}
	for i := 0; i < np && i < len(sum.ParamOut); i++ {
		if sum.ParamOut[i] == 0 {
			continue
		}
		if ae := argExpr(i); ae != nil {
			if obj := st.rootObj(ae); obj != nil {
				st.addTaint(obj, subst(sum.ParamOut[i]))
			}
		}
	}
	for i := 0; i < np; i++ {
		if sum.Sinks&paramBit(i) == 0 {
			continue
		}
		t := argLabel(i)
		if t == 0 {
			continue
		}
		pos := n.Pos()
		if ae := argExpr(i); ae != nil {
			pos = ae.Pos()
		}
		st.sink(pos, t,
			"dead-kernel-derived value passed to %s, which indexes or dereferences "+
				"by it without validation; CRC/range-validate before the call", fn.Name())
	}
	out := make([]taint, maxInt(nres, 1))
	for i := range out {
		if i < len(sum.Results) {
			out[i] = subst(sum.Results[i])
		}
	}
	return out
}

// builtin models the builtins that move labels: copy and append transfer
// the source label into the destination container.
func (st *fnState) builtin(name string, n *ast.CallExpr) []taint {
	switch name {
	case "copy":
		if len(n.Args) == 2 {
			td := st.expr(n.Args[0])
			ts := st.expr(n.Args[1])
			if obj := st.rootObj(n.Args[0]); obj != nil {
				st.addTaint(obj, ts)
			}
			return []taint{td | ts}
		}
	case "append":
		var t taint
		for _, a := range n.Args {
			t |= st.expr(a)
		}
		if len(n.Args) > 0 {
			if obj := st.rootObj(n.Args[0]); obj != nil {
				st.addTaint(obj, t)
			}
		}
		return []taint{t}
	default:
		// len/cap of a labeled container are lengths of live Go values, not
		// dead-kernel data; make/new produce fresh values. Evaluate the
		// arguments for their side effects and return clean.
		for _, a := range n.Args {
			st.expr(a)
		}
	}
	return []taint{0}
}

// callResults counts a call's results from its type.
func (st *fnState) callResults(n *ast.CallExpr) int {
	tv, ok := st.pkg.Info.Types[n]
	if !ok || tv.Type == nil {
		return 1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	return 1
}

// isByteSlice reports whether an expression has type []byte.
func (st *fnState) isByteSlice(e ast.Expr) bool {
	tv, ok := st.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
