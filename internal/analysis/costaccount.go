package analysis

// CostAccount enforces the Table 4/6 accounting discipline on the
// resurrection paths: any bytes-moving (builtin copy) or CRC operation in a
// function reachable from internal/resurrect's entry points must be
// accompanied by a charge to the machine clock — consulting sim.CostModel
// (CopyCost, SpecValidateCost, ZeroFillCost, ...) or calling
// sim.Clock.Advance, directly or in a transitive callee. Work that moves or
// validates bytes without charging is exactly the pre-fix saved-bytes bug
// class: the modeled interruption silently under-reports what resurrection
// actually did.
var CostAccount = &Analyzer{
	Name: "costaccount",
	Doc: "copy/CRC work on resurrection paths must charge the machine clock " +
		"(sim.CostModel / sim.Clock.Advance); unaccounted work skews the modeled interruption",
	Scope: []string{"internal/resurrect"},
	Run:   runCostAccount,
}

func runCostAccount(p *Pass) {
	fi := p.Flow
	if fi == nil {
		return
	}
	reach := fi.reachable(fi.entryRoots(p.Pkg))
	for _, ff := range fi.pkgFuncs(p.Pkg) {
		if _, ok := reach[ff]; !ok {
			continue // not on any resurrection path from this package's API
		}
		if ff.chargesTrans {
			continue // the function (or a callee) charges the clock
		}
		for _, op := range ff.costOps {
			p.Reportf(op.pos,
				"%s on a resurrection path without a machine-clock charge; account the work "+
					"via sim.CostModel (CopyCost/SpecValidateCost/ZeroFillCost) or sim.Clock.Advance "+
					"so the modeled interruption stays honest", op.what)
		}
	}
}
