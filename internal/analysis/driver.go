package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Config selects which analyzers run and (for tests) where.
type Config struct {
	// Enable restricts the run to the named analyzers (nil/empty = all).
	Enable []string
	// Disable removes analyzers after Enable is applied.
	Disable []string
	// Scopes overrides an analyzer's default package scope with explicit
	// module-relative path prefixes. Used by tests; nil keeps defaults.
	Scopes map[string][]string
}

// selected resolves the configured analyzer set, in suite order.
func (c Config) selected() ([]*Analyzer, error) {
	on := make(map[string]bool, len(All))
	if len(c.Enable) == 0 {
		for _, a := range All {
			on[a.Name] = true
		}
	}
	for _, n := range c.Enable {
		if Lookup(n) == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		on[n] = true
	}
	for _, n := range c.Disable {
		if Lookup(n) == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		on[n] = false
	}
	var out []*Analyzer
	for _, a := range All {
		if on[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Run loads every package under the module rooted at root and applies the
// configured analyzers, returning diagnostics sorted by file, line, column
// and analyzer name.
func Run(root string, cfg Config) ([]Diagnostic, error) {
	analyzers, err := cfg.selected()
	if err != nil {
		return nil, err
	}
	mod, err := DiscoverModule(root)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(mod)
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Rel, cfg.Scopes[a.Name]) {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Pkg:      pkg,
				modRoot:  mod.Root,
				allows:   allows,
				diags:    &diags,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// JSONVersion identifies the machine-readable output schema. Bump only on
// incompatible changes; tooling keys off it.
const JSONVersion = 1

// jsonReport is the owvet -json document.
type jsonReport struct {
	Version     int          `json:"version"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics in the stable machine-readable schema.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	rep := jsonReport{Version: JSONVersion, Count: len(diags), Diagnostics: diags}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
