package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config selects which analyzers run and (for tests) where.
type Config struct {
	// Enable restricts the run to the named analyzers (nil/empty = all).
	Enable []string
	// Disable removes analyzers after Enable is applied.
	Disable []string
	// Scopes overrides an analyzer's default package scope with explicit
	// module-relative path prefixes. Used by tests; nil keeps defaults.
	Scopes map[string][]string
	// Workers caps how many packages are analyzed concurrently; 0 means
	// GOMAXPROCS. Loading and the dataflow-index build stay serial (the
	// loader shares a FileSet and caches); only analyzer passes fan out.
	// Diagnostics are collected per package and merged in package order
	// before the final sort, so output is identical at any width.
	Workers int
}

// AnalyzerTiming is one analyzer's accumulated wall time across packages.
type AnalyzerTiming struct {
	Name     string
	Wall     time.Duration
	Packages int
}

// RunStats reports where a run spent its time (the -timing flag).
type RunStats struct {
	Load      time.Duration // module discovery, parsing, type-checking
	Flow      time.Duration // call graph + function summaries (flow analyzers)
	Total     time.Duration
	Workers   int
	Packages  int
	Analyzers []AnalyzerTiming // suite order, selected analyzers only
}

// flowAnalyzers need the shared dataflow index.
var flowAnalyzers = map[string]bool{"deadtaint": true, "costaccount": true, "sealedacct": true}

// selected resolves the configured analyzer set, in suite order.
func (c Config) selected() ([]*Analyzer, error) {
	on := make(map[string]bool, len(All))
	if len(c.Enable) == 0 {
		for _, a := range All {
			on[a.Name] = true
		}
	}
	for _, n := range c.Enable {
		if Lookup(n) == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		on[n] = true
	}
	for _, n := range c.Disable {
		if Lookup(n) == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		on[n] = false
	}
	var out []*Analyzer
	for _, a := range All {
		if on[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Run loads every package under the module rooted at root and applies the
// configured analyzers, returning diagnostics sorted by file, line, column
// and analyzer name.
func Run(root string, cfg Config) ([]Diagnostic, error) {
	diags, _, err := RunWithStats(root, cfg)
	return diags, err
}

// RunWithStats is Run plus per-phase and per-analyzer wall-time stats.
func RunWithStats(root string, cfg Config) ([]Diagnostic, *RunStats, error) {
	start := time.Now()
	analyzers, err := cfg.selected()
	if err != nil {
		return nil, nil, err
	}
	mod, err := DiscoverModule(root)
	if err != nil {
		return nil, nil, err
	}
	loader := NewLoader(mod)
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, nil, err
	}
	stats := &RunStats{Load: time.Since(start), Packages: len(pkgs)}

	var flow *FlowIndex
	for _, a := range analyzers {
		if flowAnalyzers[a.Name] {
			flowStart := time.Now()
			flow = buildFlowIndex(mod, pkgs)
			stats.Flow = time.Since(flowStart)
			break
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers

	timing := make(map[string]*AnalyzerTiming, len(analyzers))
	for _, a := range analyzers {
		timing[a.Name] = &AnalyzerTiming{Name: a.Name}
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pkg := pkgs[i]
				allows := collectAllows(pkg)
				for _, a := range analyzers {
					if !a.AppliesTo(pkg.Rel, cfg.Scopes[a.Name]) {
						continue
					}
					passStart := time.Now()
					a.Run(&Pass{
						Analyzer: a,
						Pkg:      pkg,
						Flow:     flow,
						modRoot:  mod.Root,
						allows:   allows,
						diags:    &perPkg[i],
					})
					elapsed := time.Since(passStart)
					mu.Lock()
					at := timing[a.Name]
					at.Wall += elapsed
					at.Packages++
					mu.Unlock()
				}
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	for _, a := range analyzers {
		stats.Analyzers = append(stats.Analyzers, *timing[a.Name])
	}
	stats.Total = time.Since(start)
	return diags, stats, nil
}

// WriteTimings renders RunStats as the -timing report.
func (s *RunStats) WriteTimings(w io.Writer) {
	fmt.Fprintf(w, "owvet timing: %d package(s), %d worker(s)\n", s.Packages, s.Workers)
	fmt.Fprintf(w, "  %-16s %12v\n", "load+typecheck", s.Load.Round(time.Microsecond))
	if s.Flow > 0 {
		fmt.Fprintf(w, "  %-16s %12v\n", "dataflow index", s.Flow.Round(time.Microsecond))
	}
	for _, at := range s.Analyzers {
		fmt.Fprintf(w, "  %-16s %12v  (%d package(s))\n",
			at.Name, at.Wall.Round(time.Microsecond), at.Packages)
	}
	fmt.Fprintf(w, "  %-16s %12v\n", "total", s.Total.Round(time.Microsecond))
}

// JSONVersion identifies the machine-readable output schema. Bump only on
// incompatible changes; tooling keys off it.
const JSONVersion = 1

// jsonReport is the owvet -json document (also the baseline-file schema).
type jsonReport struct {
	Version     int          `json:"version"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics in the stable machine-readable schema.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	rep := jsonReport{Version: JSONVersion, Count: len(diags), Diagnostics: diags}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
