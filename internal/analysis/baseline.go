package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baselines grandfather known findings so owvet can gate CI on *new*
// violations only: a committed baseline file (the -json schema) records the
// accepted findings; -baseline subtracts them from a run and fails only on
// what is left. Matching is by (analyzer, file, message) with per-key
// multiplicity — line and column are deliberately excluded so unrelated
// edits that shift a grandfathered finding up or down the file do not
// resurrect it.

// BaselineKey identifies a finding across line-number drift.
type BaselineKey struct {
	Analyzer string
	File     string
	Message  string
}

// Baseline is a multiset of grandfathered findings.
type Baseline map[BaselineKey]int

// keyOf projects a diagnostic onto its drift-stable identity.
func keyOf(d Diagnostic) BaselineKey {
	return BaselineKey{Analyzer: d.Analyzer, File: d.File, Message: d.Message}
}

// NewBaseline builds the multiset of a diagnostic list.
func NewBaseline(diags []Diagnostic) Baseline {
	b := make(Baseline, len(diags))
	for _, d := range diags {
		b[keyOf(d)]++
	}
	return b
}

// LoadBaseline reads a baseline file written by WriteJSON (or owvet
// -write-baseline). The version field is checked so a schema bump cannot be
// silently misread as an empty baseline.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if rep.Version != JSONVersion {
		return nil, fmt.Errorf("baseline %s: schema version %d, owvet expects %d",
			path, rep.Version, JSONVersion)
	}
	return NewBaseline(rep.Diagnostics), nil
}

// DiffBaseline returns the diagnostics not covered by the baseline. For a
// key with n grandfathered occurrences, the first n diagnostics (in the
// driver's deterministic sort order) are absorbed and any beyond that are
// new findings.
func DiffBaseline(diags []Diagnostic, base Baseline) []Diagnostic {
	if len(base) == 0 {
		return diags
	}
	remaining := make(Baseline, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	var fresh []Diagnostic
	for _, d := range diags {
		k := keyOf(d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}
