package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestDeadTaintInterprocedural is the tentpole acceptance case: a raw
// dead-kernel word returned through a helper (headWord) and used as an
// index in the caller. No phys.Mem selector appears at the use site, so the
// syntactic crosskernel rule is provably blind to it; the dataflow layer
// catches it through the helper's function summary.
func TestDeadTaintInterprocedural(t *testing.T) {
	const file = "internal/resurrect/deadtaint.go"
	data, err := os.ReadFile(filepath.Join(fixtureRoot, file))
	if err != nil {
		t.Fatal(err)
	}
	line := 0
	for i, l := range strings.Split(string(data), "\n") {
		if strings.Contains(l, "table[idx] // want") {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatalf("smuggledIndex want line not found in %s", file)
	}

	syntactic, err := Run(fixtureRoot, Config{Enable: []string{"crosskernel"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range syntactic {
		if d.File == file {
			t.Errorf("crosskernel unexpectedly sees the interprocedural smuggle: %s", d)
		}
	}

	flow, err := Run(fixtureRoot, Config{Enable: []string{"deadtaint"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range flow {
		if d.File == file && d.Line == line {
			found = true
		}
	}
	if !found {
		t.Errorf("deadtaint missed the interprocedural smuggle at %s:%d; got: %v",
			file, line, flow)
	}
}

// TestWorkersDeterministic pins the parallel driver's output: the
// diagnostic list must be identical at any worker-pool width.
func TestWorkersDeterministic(t *testing.T) {
	serial, _, err := RunWithStats(fixtureRoot, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, stats, err := RunWithStats(fixtureRoot, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("diagnostics differ across worker widths:\nw1: %v\nw8: %v", serial, wide)
	}
	if stats.Workers < 1 {
		t.Errorf("stats.Workers = %d, want >= 1", stats.Workers)
	}
}

// TestRunStats checks the -timing plumbing: phases and per-analyzer rows
// are populated and the timing report renders.
func TestRunStats(t *testing.T) {
	_, stats, err := RunWithStats(fixtureRoot, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packages == 0 {
		t.Error("stats.Packages = 0")
	}
	if stats.Load <= 0 || stats.Total <= 0 {
		t.Errorf("load/total timings not recorded: %+v", stats)
	}
	if stats.Flow <= 0 {
		t.Error("flow-index build time not recorded with flow analyzers selected")
	}
	if len(stats.Analyzers) != len(All) {
		t.Errorf("got %d analyzer timings, want %d", len(stats.Analyzers), len(All))
	}
	for i, at := range stats.Analyzers {
		if at.Name != All[i].Name {
			t.Errorf("timing row %d is %s, want suite order %s", i, at.Name, All[i].Name)
		}
	}
	var buf bytes.Buffer
	stats.WriteTimings(&buf)
	if !strings.Contains(buf.String(), "deadtaint") || !strings.Contains(buf.String(), "total") {
		t.Errorf("timing report incomplete:\n%s", buf.String())
	}

	// Without flow analyzers, the index must not be built.
	_, lean, err := RunWithStats(fixtureRoot, Config{Enable: []string{"gopanic"}})
	if err != nil {
		t.Fatal(err)
	}
	if lean.Flow != 0 {
		t.Errorf("flow index built for a non-flow run (%v)", lean.Flow)
	}
}

// TestSARIFSchemaStable pins the SARIF envelope: tooling uploads this
// format, so structure changes are deliberate.
func TestSARIFSchemaStable(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "deadtaint",
		File:     "internal/resurrect/lazy.go",
		Line:     42,
		Col:      7,
		Message:  "dead word used as index",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != SARIFVersion {
		t.Errorf("version = %q, want %q", log.Version, SARIFVersion)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "owvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All) {
		t.Errorf("got %d rules, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All))
	}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID != All[i].Name {
			t.Errorf("rule %d is %q, want %q", i, r.ID, All[i].Name)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "deadtaint" || res.Level != "error" ||
		res.Message.Text != "dead word used as index" ||
		loc.ArtifactLocation.URI != "internal/resurrect/lazy.go" ||
		loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("result drifted: %+v", res)
	}

	// Byte stability: two renders of the same input are identical.
	var again bytes.Buffer
	if err := WriteSARIF(&again, diags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("SARIF output is not byte-stable")
	}
}

// TestBaselineDiff covers the grandfathering semantics: per-key
// multiplicity, line-drift insensitivity, and new findings surfacing.
func TestBaselineDiff(t *testing.T) {
	d := func(an, file string, line int, msg string) Diagnostic {
		return Diagnostic{Analyzer: an, File: file, Line: line, Col: 1, Message: msg}
	}
	old := []Diagnostic{
		d("deadtaint", "a.go", 10, "dead word used as index"),
		d("deadtaint", "a.go", 20, "dead word used as index"),
		d("costaccount", "b.go", 5, "uncharged copy"),
	}
	base := NewBaseline(old)

	// Same findings at shifted lines: fully absorbed.
	shifted := []Diagnostic{
		d("deadtaint", "a.go", 13, "dead word used as index"),
		d("deadtaint", "a.go", 23, "dead word used as index"),
		d("costaccount", "b.go", 8, "uncharged copy"),
	}
	if fresh := DiffBaseline(shifted, base); len(fresh) != 0 {
		t.Errorf("line drift resurrected grandfathered findings: %v", fresh)
	}

	// A third occurrence of a twice-grandfathered key is new.
	three := append(append([]Diagnostic(nil), shifted...),
		d("deadtaint", "a.go", 30, "dead word used as index"))
	fresh := DiffBaseline(three, base)
	if len(fresh) != 1 || fresh[0].Line != 30 {
		t.Errorf("multiplicity overflow not detected: %v", fresh)
	}

	// A different message is always new.
	other := []Diagnostic{d("deadtaint", "a.go", 10, "dead pointer dereferenced")}
	if fresh := DiffBaseline(other, base); len(fresh) != 1 {
		t.Errorf("new finding absorbed by unrelated baseline entry: %v", fresh)
	}

	// Empty baseline passes everything through.
	if fresh := DiffBaseline(old, nil); !reflect.DeepEqual(fresh, old) {
		t.Errorf("nil baseline altered diagnostics: %v", fresh)
	}
}

// TestBaselineFile covers the on-disk round trip and the version guard.
func TestBaselineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "owvet.baseline.json")
	diags := []Diagnostic{{
		Analyzer: "sealedacct", File: "x.go", Line: 3, Col: 2, Message: "late write",
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := DiffBaseline(diags, base); len(got) != 0 {
		t.Errorf("round-tripped baseline did not absorb its own findings: %v", got)
	}

	// A version bump must be an explicit error, not an empty baseline.
	bumped := strings.Replace(buf.String(), `"version": 1`, `"version": 999`, 1)
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("mismatched baseline schema version accepted")
	}

	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
}
