package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDiscipline polices the concurrent packages (the campaign worker
// pool in experiment, the machine core it drives, the trace ring, and the
// admission scheduler the streaming resurrection pass shares between
// workers) beyond what go vet's copylocks catches:
//
//   - sync.Mutex/RWMutex (or structs containing one) passed or returned by
//     value, which silently forks the lock;
//   - assignments and range variables that copy a lock-containing value;
//   - returning from a function while a mutex locked in that function may
//     still be held (no defer Unlock and no Unlock on the path), which
//     deadlocks the campaign's other workers.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flag lock-by-value copies and return-while-locked patterns in " +
		"the concurrent packages",
	Scope: []string{"internal/experiment", "internal/trace", "internal/core", "internal/sched"},
	Run:   runLockDiscipline,
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value. Pointers, slices, maps and channels stop the recursion: sharing a
// lock through them is fine.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// funcUnit is one independently-analyzed function body: a FuncDecl or a
// FuncLit. Nested FuncLits are excluded from the parent's scan (a worker
// goroutine does its own locking) and analyzed as their own units.
type funcUnit struct {
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func collectUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				units = append(units, funcUnit{typ: n.Type, body: n.Body})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{typ: n.Type, body: n.Body})
		}
		return true
	})
	return units
}

// inspectUnit walks a unit's body without descending into nested FuncLits.
func inspectUnit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func runLockDiscipline(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, u := range collectUnits(f) {
			checkLockByValueSig(p, u.typ)
			checkLockCopies(p, u)
			checkReturnWhileLocked(p, u)
		}
	}
}

// checkLockByValueSig flags lock-containing parameter and result types
// passed by value.
func checkLockByValueSig(p *Pass, ft *ast.FuncType) {
	fields := []*ast.FieldList{ft.Params, ft.Results}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			tv, ok := p.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(tv.Type, nil) {
				p.Reportf(field.Pos(),
					"%s passes a sync.Mutex by value; each call site gets its own lock "+
						"and mutual exclusion silently disappears — pass a pointer",
					types.ExprString(field.Type))
			}
		}
	}
}

// checkLockCopies flags assignments and range variables that copy a
// lock-containing value.
func checkLockCopies(p *Pass, u funcUnit) {
	inspectUnit(u.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for _, rhs := range n.Rhs {
				rhs = unparen(rhs)
				// Composite literals construct a fresh value; everything
				// else of a lock-containing type is a copy.
				if _, isLit := rhs.(*ast.CompositeLit); isLit {
					continue
				}
				tv, ok := p.Pkg.Info.Types[rhs]
				if !ok || !containsLock(tv.Type, nil) {
					continue
				}
				p.Reportf(n.Pos(),
					"assignment copies a lock-containing value (%s); the copy's mutex "+
						"no longer guards the original — use a pointer",
					tv.Type.String())
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return
			}
			t := exprOrDefType(p, n.Value)
			if t == nil || !containsLock(t, nil) {
				return
			}
			p.Reportf(n.Value.Pos(),
				"range variable copies a lock-containing value (%s); iterate by index "+
					"or store pointers", t.String())
		}
	})
}

// lockEvent is one Lock/Unlock/return observation inside a unit, ordered by
// source position (a linear over-approximation of control flow; branches
// that unlock before returning keep the running depth at zero).
type lockEvent struct {
	pos   token.Pos
	delta int // +1 Lock, -1 Unlock, 0 return
}

// checkReturnWhileLocked flags return statements at a point where a mutex
// locked earlier in the unit has not been unlocked and no defer covers it.
func checkReturnWhileLocked(p *Pass, u funcUnit) {
	events := make(map[string][]lockEvent) // mutex expr -> events
	deferred := make(map[string]bool)
	var returns []token.Pos

	inspectUnit(u.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.DeferStmt:
			if key, _, ok := mutexCall(p, n.Call); ok {
				deferred[key] = true
			}
		case *ast.CallExpr:
			if key, delta, ok := mutexCall(p, n); ok && delta != 0 {
				events[key] = append(events[key], lockEvent{pos: n.Pos(), delta: delta})
			}
		}
	})
	if len(returns) == 0 {
		return
	}
	for key, evs := range events {
		if deferred[key] {
			continue
		}
		all := append([]lockEvent(nil), evs...)
		for _, r := range returns {
			all = append(all, lockEvent{pos: r})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
		depth := 0
		for _, ev := range all {
			switch {
			case ev.delta > 0:
				depth++
			case ev.delta < 0:
				if depth > 0 {
					depth--
				}
			case depth > 0:
				p.Reportf(ev.pos,
					"return while %s may still be locked (no defer %s.Unlock on this path); "+
						"a leaked lock wedges the campaign worker pool", key, key)
			}
		}
	}
}

// exprOrDefType resolves an expression's type, falling back to the defined
// object for `:=`-declared identifiers (range variables live in Defs, not
// the Types map).
func exprOrDefType(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// mutexCall classifies a call as Lock/RLock (+1) or Unlock/RUnlock (-1) on
// a sync.Mutex/RWMutex-typed receiver, returning the receiver expression
// rendered as the grouping key.
func mutexCall(p *Pass, call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0, false
	}
	tv, found := p.Pkg.Info.Types[sel.X]
	if !found {
		return "", 0, false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", 0, false
	}
	return types.ExprString(sel.X), delta, true
}
