// Package analysis implements owvet, the repository's static-analysis
// suite. It enforces, at `make verify` time, the invariants the paper's
// correctness argument rests on but the compiler cannot see:
//
//   - crosskernel: every byte the crash kernel reads from the dead main
//     kernel flows through the CRC-verifying, Table-4-accounted reader
//     (Sections 3.3–3.4);
//   - nodeterminism: fault-injection campaigns replay bit-for-bit from a
//     seed (Section 6), so wall clocks, the global math/rand source,
//     multi-way selects and ordered map iteration are banned from the
//     campaign-affecting packages;
//   - gopanic: the simulator models kernel panics as values; a literal Go
//     panic, log.Fatal or os.Exit would tear the whole process down instead
//     of exercising the microreboot;
//   - errdrop: errors from the memory/layout/disk substrate are never
//     silently discarded — modeled corruption must surface as a detected
//     failure, not a wrong result;
//   - lockdiscipline: lock-by-value copies and return-while-locked
//     patterns in the concurrent packages, beyond what go vet catches;
//   - deadtaint: flow-sensitive provenance tracking — values derived from
//     dead-kernel reads stay tainted through helpers and returns until a
//     CRC/range validation, and must not reach kernel installs, indexing
//     or dereferences unvalidated;
//   - costaccount: copy/CRC work reachable from the resurrection entry
//     points must charge the machine clock (sim.CostModel);
//   - sealedacct: no writes to the published, fingerprinted Table 4
//     ledger after the seal point or on post-seal (lazy resolve) paths.
//
// A diagnostic is suppressed by an `//owvet:allow <analyzer>: <reason>`
// comment on the flagged line or the line directly above it. The driver is
// stdlib-only: packages are loaded with a custom go/parser + go/types
// loader (no go/packages, matching the module's empty dependency set).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Diagnostic is one reported violation. File is module-root-relative and
// slash-separated so output is stable across checkouts.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one owvet check.
type Analyzer struct {
	Name string
	Doc  string
	// Scope lists module-relative path prefixes the analyzer applies to;
	// empty means the whole module.
	Scope []string
	Run   func(*Pass)
}

// AppliesTo reports whether the analyzer covers a package at rel, given an
// optional scope override (nil keeps the analyzer's default).
func (a *Analyzer) AppliesTo(rel string, override []string) bool {
	scope := a.Scope
	if override != nil {
		scope = override
	}
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if s == "" || rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// All lists every analyzer in the suite, in reporting order. The last
// three are flow analyzers: they run on the shared dataflow index
// (Pass.Flow) the driver builds once per run.
var All = []*Analyzer{
	CrossKernel, NoDeterminism, GoPanic, ErrDrop, LockDiscipline,
	DeadTaint, CostAccount, SealedAcct,
}

// Lookup resolves an analyzer by name.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowSet records //owvet:allow directives per file and line.
type allowSet map[string]map[int][]string

// AllowDirective is the comment prefix that suppresses a diagnostic.
const AllowDirective = "owvet:allow"

// collectAllows scans a package's comments for allow directives. The
// directive form is `//owvet:allow <analyzer>[,<analyzer>...]: <reason>`;
// the analyzer list may be `all`.
func collectAllows(pkg *Package) allowSet {
	out := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSpace(text), "/*")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, AllowDirective)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(rest, ":")
				var list []string
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						list = append(list, n)
					}
				}
				if len(list) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := filepath.ToSlash(pos.Filename)
				if out[file] == nil {
					out[file] = make(map[int][]string)
				}
				out[file][pos.Line] = append(out[file][pos.Line], list...)
			}
		}
	}
	return out
}

// allowed reports whether analyzer an is suppressed at file:line — a
// directive on the line itself or the line directly above.
func (a allowSet) allowed(an, file string, line int) bool {
	lines := a[file]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == an || name == "all" {
				return true
			}
		}
	}
	return false
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Flow is the module-wide dataflow index (call graph + function
	// summaries), built once per run when any flow analyzer is selected;
	// nil otherwise. Read-only: passes may run concurrently.
	Flow *FlowIndex

	modRoot string
	allows  allowSet
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := filepath.ToSlash(position.Filename)
	if p.allows.allowed(p.Analyzer.Name, file, position.Line) {
		return
	}
	rel := file
	if r, err := filepath.Rel(p.modRoot, position.Filename); err == nil {
		rel = filepath.ToSlash(r)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     rel,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// unparen strips parenthesised expressions.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// pkgPathIs reports whether an import path is, or ends with, the
// module-relative path rel. Matching by suffix keeps the analyzers
// repo-invariant: they recognise "internal/phys" whether the module is
// called otherworld or anything else (fixtures included).
func pkgPathIs(path, rel string) bool {
	return path == rel || strings.HasSuffix(path, "/"+rel)
}

// calleeFunc resolves a call expression to the function or method object it
// invokes, or nil for builtins, conversions and indirect calls through
// variables.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}
