package analysis

import (
	"encoding/json"
	"io"
)

// SARIF output: the minimal, stable subset of SARIF 2.1.0 that code-scanning
// UIs consume — one run, one tool driver with a rule per analyzer, one
// result per diagnostic with a physical location. Field order is fixed by
// the struct definitions so the document is byte-stable for golden tests.

// SARIFVersion is the SARIF spec version owvet emits.
const SARIFVersion = "2.1.0"

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Every analyzer in
// the suite appears as a rule (so suppressed-to-zero runs still describe the
// checks that ran); diagnostics keep their driver sort order.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(All))
	for _, a := range All {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Version: SARIFVersion,
		Schema:  sarifSchemaURI,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "owvet", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
