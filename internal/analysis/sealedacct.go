package analysis

import (
	"go/ast"
)

// SealedAcct guards the publish/seal point of the Table 4 ledger: once
// Engine.publish (marked //owvet:seal) has run, the //owvet:sealed
// accounting fields (Engine.acct, Report.Acct) are part of the published,
// width-invariant fingerprint — a later write would silently break
// bit-identical results at any worker width. Two rules:
//
//   - within a function, no statement on a path after a call to a
//     seal-marked function may write a sealed field (directly, via a
//     pointer-receiver method on it, or by calling a function that
//     transitively does). The walk is path-aware: a seal call inside a
//     branch that ends in return (the early-exit publish) does not seal
//     the code after the branch;
//   - nothing reachable from an //owvet:postseal entry point (the lazy
//     resolve/sweep paths that run after publish) may write a sealed field
//     — post-resume work must use a private shard.
//
// Matching is by field-object identity, so same-named ledgers elsewhere
// (the counting reader's private Accounting, lazyState's shard) are
// untouched.
var SealedAcct = &Analyzer{
	Name: "sealedacct",
	Doc: "no writes to //owvet:sealed accounting fields after the //owvet:seal " +
		"publish point or on //owvet:postseal paths; the published ledger is fingerprinted",
	Scope: []string{"internal/resurrect"},
	Run:   runSealedAcct,
}

func runSealedAcct(p *Pass) {
	fi := p.Flow
	if fi == nil {
		return
	}
	// Rule 1: same-function writes on a path after the seal call.
	for _, ff := range fi.pkgFuncs(p.Pkg) {
		if ff.decl.Body == nil {
			continue
		}
		w := &sealWalker{fi: fi, p: p, ff: ff}
		w.list(ff.decl.Body.List, false)
	}
	// Rule 2: writes anywhere on a post-seal path.
	var roots []*flowFunc
	for _, ff := range fi.pkgFuncs(p.Pkg) {
		if fi.postSeals[ff.fn] {
			roots = append(roots, ff)
		}
	}
	if len(roots) == 0 {
		return
	}
	reach := fi.reachable(roots)
	for _, ff := range fi.pkgFuncs(p.Pkg) {
		root, ok := reach[ff]
		if !ok {
			continue
		}
		for _, w := range ff.sealedWrites {
			p.Reportf(w.pos,
				"sealed accounting field %s written on a post-seal path (reachable from %s); "+
					"post-resume work must account into a private shard, not the published ledger",
				w.field, root.decl.Name.Name)
		}
	}
}

// sealWalker tracks, along each statement list, whether a seal call may have
// already executed, and flags sealed writes downstream of one.
type sealWalker struct {
	fi *FlowIndex
	p  *Pass
	ff *flowFunc
}

// list walks a statement list with the incoming sealed state and returns the
// outgoing one.
func (w *sealWalker) list(stmts []ast.Stmt, sealed bool) bool {
	for _, s := range stmts {
		sealed = w.stmt(s, sealed)
	}
	return sealed
}

// terminates reports whether a statement list cannot fall through to the
// statement after its enclosing branch (it ends in a return).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	_, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	return ok
}

// stmt processes one statement: if a seal may already have run, everything
// inside is flagged; otherwise branches are walked separately and a seal
// escapes a branch only if that branch can fall through.
func (w *sealWalker) stmt(s ast.Stmt, sealed bool) bool {
	if s == nil {
		return sealed
	}
	if sealed {
		w.flag(s)
		return true
	}
	switch n := s.(type) {
	case *ast.BlockStmt:
		return w.list(n.List, false)
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, false)
	case *ast.IfStmt:
		pre := w.stmt(n.Init, false)
		if n.Cond != nil && w.callsSeal(n.Cond) {
			pre = true
		}
		if pre {
			w.flag(n.Body)
			if n.Else != nil {
				w.flag(n.Else)
			}
			return true
		}
		out := false
		if w.list(n.Body.List, false) && !terminates(n.Body.List) {
			out = true
		}
		if n.Else != nil {
			elseSealed := w.stmt(n.Else, false)
			elseTerm := false
			if blk, ok := n.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(blk.List)
			}
			if elseSealed && !elseTerm {
				out = true
			}
		}
		return out
	case *ast.ForStmt:
		pre := w.stmt(n.Init, false)
		if n.Cond != nil && w.callsSeal(n.Cond) {
			pre = true
		}
		pre = w.stmt(n.Post, pre)
		if pre {
			w.flag(n.Body)
			return true
		}
		return w.list(n.Body.List, false) && !terminates(n.Body.List)
	case *ast.RangeStmt:
		if w.callsSeal(n.X) {
			w.flag(n.Body)
			return true
		}
		return w.list(n.Body.List, false) && !terminates(n.Body.List)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		out := false
		body := switchBody(s)
		for _, c := range body.List {
			var cb []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				cb = cc.Body
			case *ast.CommClause:
				cb = cc.Body
			}
			if w.list(cb, false) && !terminates(cb) {
				out = true
			}
		}
		return out
	case *ast.DeferStmt, *ast.GoStmt:
		// A deferred/asynchronous seal does not order the rest of the body.
		return false
	default:
		// Simple statement: it seals the continuation if it calls a
		// seal-marked function anywhere inside.
		return w.callsSeal(s)
	}
}

// switchBody extracts the clause list of a switch/select statement.
func switchBody(s ast.Stmt) *ast.BlockStmt {
	switch n := s.(type) {
	case *ast.SwitchStmt:
		return n.Body
	case *ast.TypeSwitchStmt:
		return n.Body
	case *ast.SelectStmt:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// callsSeal reports whether the subtree contains a call to a seal-marked
// function.
func (w *sealWalker) callsSeal(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(w.ff.pkg, call); fn != nil && w.fi.seals[fn] {
			found = true
			return false
		}
		return true
	})
	return found
}

// flag reports every sealed write inside a subtree known to run after the
// seal: the direct/method writes scanBody recorded, plus calls to functions
// that transitively write a sealed field.
func (w *sealWalker) flag(n ast.Node) {
	for _, sw := range w.ff.sealedWrites {
		if sw.pos >= n.Pos() && sw.pos < n.End() {
			w.p.Reportf(sw.pos,
				"sealed accounting field %s written after the seal point; the published "+
					"Table 4 ledger is fingerprinted and must stay bit-identical", sw.field)
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(w.ff.pkg, call)
		cf := w.fi.funcByObj(fn)
		if cf != nil && cf.writesSealedTrans {
			w.p.Reportf(call.Pos(),
				"%s writes sealed accounting and is called after the seal point; the "+
					"published Table 4 ledger is fingerprinted and must stay bit-identical",
				fn.Name())
		}
		return true
	})
}
