package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoPanic guards the simulator's failure model: kernel crashes are modeled
// as kernel.PanicEvent values flowing through oopsf/raise so the harness
// can exercise the microreboot and resurrection paths. A literal Go
// panic(...), log.Fatal* or os.Exit in the kernel-side packages would
// instead tear down the whole simulator process — turning a modeled crash
// into a real one and taking the campaign with it. Genuinely-unreachable
// programmer-error panics (e.g. duplicate init-time registration) are
// annotated with //owvet:allow gopanic.
var GoPanic = &Analyzer{
	Name: "gopanic",
	Doc: "forbid literal Go panic(), log.Fatal* and os.Exit in kernel-side packages; " +
		"kernel failures are modeled as PanicEvent values, not process teardown",
	Scope: []string{"internal/kernel", "internal/core", "internal/resurrect"},
	Run:   runGoPanic,
}

func runGoPanic(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					p.Reportf(call.Pos(),
						"literal panic() tears down the simulator process instead of exercising "+
							"the microreboot; model the failure as a kernel.PanicEvent (oopsf/raise) "+
							"or return an error")
				}
				return true
			}
			// log.Fatal*/os.Exit are process teardown by another name. The
			// kernel's own Exit (a method) models process exit and is fine.
			fn := calleeFunc(p.Pkg, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
				p.Reportf(call.Pos(),
					"os.Exit tears down the simulator process instead of exercising the "+
						"microreboot; model the failure as a kernel.PanicEvent or return an error")
			case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
				p.Reportf(call.Pos(),
					"log.%s tears down the simulator process instead of exercising the "+
						"microreboot; model the failure as a kernel.PanicEvent or return an error",
					fn.Name())
			}
			return true
		})
	}
}
