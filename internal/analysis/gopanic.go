package analysis

import (
	"go/ast"
	"go/types"
)

// GoPanic guards the simulator's failure model: kernel crashes are modeled
// as kernel.PanicEvent values flowing through oopsf/raise so the harness
// can exercise the microreboot and resurrection paths. A literal Go
// panic(...) in the kernel-side packages would instead tear down the whole
// simulator process — turning a modeled crash into a real one and taking
// the campaign with it. Genuinely-unreachable programmer-error panics
// (e.g. duplicate init-time registration) are annotated with
// //owvet:allow gopanic.
var GoPanic = &Analyzer{
	Name: "gopanic",
	Doc: "forbid literal Go panic() in kernel-side packages; kernel failures " +
		"are modeled as PanicEvent values, not process teardown",
	Scope: []string{"internal/kernel", "internal/core", "internal/resurrect"},
	Run:   runGoPanic,
}

func runGoPanic(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			p.Reportf(call.Pos(),
				"literal panic() tears down the simulator process instead of exercising "+
					"the microreboot; model the failure as a kernel.PanicEvent (oopsf/raise) "+
					"or return an error")
			return true
		})
	}
}
