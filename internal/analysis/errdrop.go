package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop forbids silently discarding errors returned by the simulation
// substrate — the physical-memory, record-layout and disk packages — and by
// the causal span plane (package spans, including its Perfetto exporter).
// Substrate errors are how modeled corruption announces itself
// (ErrOutOfRange, ProtectionFault, CorruptionError, bad-sector reads);
// dropping one converts an injected fault into a silently wrong result
// instead of a detected failure, which would invalidate every campaign
// table built on top. Span-plane errors are how a post-mortem
// reconstruction reports that it could not produce the artifact it was
// asked for; dropping one ships a timeline that silently is not there.
// Flagged forms: a bare call statement, `_ =` assignments, blank
// identifiers in the error slots of multi-value assignments, and go/defer
// statements whose error can never be observed.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding errors from the phys, layout, disk and spans " +
		"APIs; modeled corruption must surface as a detected failure",
	Scope: nil, // whole module
	Run:   runErrDrop,
}

// errDropPkgs are the packages whose errors must be handled.
var errDropPkgs = []string{"internal/phys", "internal/layout", "internal/disk", "internal/spans"}

var errorType = types.Universe.Lookup("error").Type()

// substrateCallErrs resolves a call to a phys/layout/disk function and
// returns the indices of its error results (nil if not a substrate call or
// it returns no error).
func substrateCallErrs(pkg *Package, call *ast.CallExpr) []int {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	match := false
	for _, rel := range errDropPkgs {
		if pkgPathIs(fn.Pkg().Path(), rel) {
			match = true
			break
		}
	}
	if !match {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var errIdx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			errIdx = append(errIdx, i)
		}
	}
	return errIdx
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					if errIdx := substrateCallErrs(p.Pkg, call); len(errIdx) > 0 {
						p.Reportf(n.Pos(),
							"%s discards its error result; modeled corruption must surface "+
								"as a detected failure, not a wrong result", callName(call))
					}
				}
			case *ast.DeferStmt:
				reportDroppedCall(p, n.Call, "defer")
			case *ast.GoStmt:
				reportDroppedCall(p, n.Call, "go")
			case *ast.AssignStmt:
				checkAssignDrop(p, n)
			}
			return true
		})
	}
}

// reportDroppedCall flags `defer f(...)` / `go f(...)` on substrate calls,
// whose error results are structurally unobservable.
func reportDroppedCall(p *Pass, call *ast.CallExpr, kw string) {
	if errIdx := substrateCallErrs(p.Pkg, call); len(errIdx) > 0 {
		p.Reportf(call.Pos(),
			"%s %s discards its error result; modeled corruption must surface "+
				"as a detected failure, not a wrong result", kw, callName(call))
	}
}

// checkAssignDrop flags blank-identifier error slots in assignments whose
// right-hand side is a single substrate call.
func checkAssignDrop(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	errIdx := substrateCallErrs(p.Pkg, call)
	if len(errIdx) == 0 {
		return
	}
	for _, i := range errIdx {
		// Single-result call assigned to one LHS, or tuple assignment with
		// the error slot blanked.
		if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			p.Reportf(as.Pos(),
				"error from %s assigned to the blank identifier; modeled corruption "+
					"must surface as a detected failure, not a wrong result", callName(call))
			return
		}
	}
}

// callName renders a call target for diagnostics ("m.ReadU64", "layout.ReadProc").
func callName(call *ast.CallExpr) string {
	return types.ExprString(unparen(call.Fun))
}
