package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CrossKernel enforces the paper's Section 3.3–3.4 memory discipline: inside
// the crash-kernel-side packages (internal/resurrect, internal/dump), raw
// physical memory may only be read through the designated counting reader —
// the wrapper that validates CRCs and feeds the Table 4 byte accounting.
// Direct calls to phys.Mem.ReadAt / ReadU64 / Frame bypass both, so every
// such call outside a type marked `//owvet:reader` is a violation — and so
// is capturing one of those methods as a method value (`f := mem.ReadAt`),
// which smuggles the unaccounted accessor past the call-site check.
var CrossKernel = &Analyzer{
	Name: "crosskernel",
	Doc: "forbid direct phys.Mem reads in crash-kernel packages; " +
		"all dead-kernel bytes must flow through the accounted reader wrapper",
	Scope: []string{"internal/resurrect", "internal/dump"},
	Run:   runCrossKernel,
}

// ReaderDirective marks the one type per package whose methods are the
// sanctioned raw-memory accessors.
const ReaderDirective = "owvet:reader"

// crossKernelMethods are the phys.Mem accessors that read main-kernel bytes.
var crossKernelMethods = map[string]bool{
	"ReadAt":  true,
	"ReadU64": true,
	"Frame":   true,
}

// readerTypes collects the names of types marked with //owvet:reader.
func readerTypes(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// Scan raw comment lines: CommentGroup.Text() strips
				// `//tool:directive` comments, which is exactly the form
				// the marker takes.
				for _, doc := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if strings.Contains(c.Text, ReaderDirective) {
							out[ts.Name.Name] = true
						}
					}
				}
			}
		}
	}
	return out
}

// recvTypeName extracts the base type name of a method receiver.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// isPhysMem reports whether t is (a pointer to) the Mem type of the
// physical-memory package.
func isPhysMem(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Mem" && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), "internal/phys")
}

func runCrossKernel(p *Pass) {
	readers := readerTypes(p.Pkg)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Methods of the designated reader wrapper are the sanctioned
			// accessors; everything they do with phys.Mem is exempt.
			if name := recvTypeName(fd); name != "" && readers[name] {
				continue
			}
			// A selector in call position reports as a direct call; any
			// other reference to the same method is a method value that
			// escapes the call-site check — a parent CallExpr is always
			// visited before its Fun child, so the set is populated in time.
			called := make(map[*ast.SelectorExpr]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
						called[sel] = true
					}
					return true
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !crossKernelMethods[sel.Sel.Name] {
					return true
				}
				selection := p.Pkg.Info.Selections[sel]
				if selection == nil {
					return true // package-qualified reference, not a method
				}
				if !isPhysMem(selection.Recv()) {
					return true
				}
				if called[sel] {
					p.Reportf(sel.Pos(),
						"direct phys.Mem.%s bypasses the CRC-verifying, Table-4-accounted reader; "+
							"read dead-kernel memory through the %s-marked wrapper",
						sel.Sel.Name, ReaderDirective)
				} else {
					p.Reportf(sel.Pos(),
						"method value phys.Mem.%s smuggles the unaccounted accessor past the call-site check; "+
							"read dead-kernel memory through the %s-marked wrapper",
						sel.Sel.Name, ReaderDirective)
				}
				return true
			})
		}
	}
}
