// Package metrics proves the nodeterminism scope covers the metrics
// registry: snapshots must be bit-identical across resurrection-worker
// widths, so a collector can never stamp them from the host clock.
package metrics

import "time"

type registry struct {
	logicalNow int64
	points     map[string]int64
}

// collectWallClock is the banned pattern: a collector reading the wall
// clock would make every snapshot differ run to run.
func (r *registry) collectWallClock() {
	r.logicalNow = time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// collectLogical is the compliant collector: the stamp comes in from the
// simulation's virtual clock.
func (r *registry) collectLogical(nowNS int64) {
	r.logicalNow = nowNS
}

// sumPoints is an order-independent map reduction; it must not fire.
func (r *registry) sumPoints() int64 {
	var total int64
	for _, v := range r.points {
		total += v
	}
	return total
}

// profileScratch shows the escape hatch for tooling-only timing that never
// reaches a snapshot.
func profileScratch() int64 {
	//owvet:allow nodeterminism: profiling scratch value, never stored in a snapshot
	return time.Since(time.Unix(0, 0)).Nanoseconds()
}
