// Package sched exercises nodeterminism and lockdiscipline over the
// admission scheduler's scope: admission order must be a pure function of
// the queue's inputs, and the queue shared by the streaming pass's workers
// must never have its lock forked by a copy.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

type item struct {
	tier int
	key  uint32
}

// admitByMapOrder is the bug the real queue exists to prevent: feeding the
// admission order straight out of a map range.
func admitByMapOrder(pending map[uint32]int) []item {
	var order []item
	for pid, tier := range pending { // want `never sorted`
		order = append(order, item{tier: tier, key: pid})
	}
	return order
}

// admitSorted is the compliant shape: a total ordering over the same map.
func admitSorted(pending map[uint32]int) []item {
	order := make([]item, 0, len(pending))
	for pid, tier := range pending {
		order = append(order, item{tier: tier, key: pid})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
	return order
}

// wallClockAging would make aging depend on host scheduling instead of pop
// counts.
func wallClockAging(arrival time.Time) time.Duration {
	return time.Since(arrival) // want `time\.Since reads the wall clock`
}

func popCountAging(pops, arrival int) int {
	return pops - arrival
}

func printQueue(byTier map[int]int) {
	for tier, n := range byTier { // want `map iteration order feeds fmt output`
		fmt.Println(tier, n)
	}
}

// lockedQueue mimics the shared admission queue guarded for the worker pool.
type lockedQueue struct {
	mu    sync.Mutex
	items []item
}

func popByValue(q lockedQueue) int { // want `passes a sync\.Mutex by value`
	return len(q.items)
}

func popShared(q *lockedQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func returnWhileLocked(q *lockedQueue, drain bool) int {
	q.mu.Lock()
	if drain {
		return len(q.items) // want `return while q\.mu may still be locked`
	}
	n := len(q.items)
	q.mu.Unlock()
	return n
}

func allowedWallClock() int64 {
	//owvet:allow nodeterminism: fixture demonstrates the suppression in the scheduler scope
	return time.Now().UnixNano()
}

func allowedQueueCopy(q *lockedQueue) int {
	//owvet:allow lockdiscipline: snapshot taken before the pool starts, single-threaded
	snapshot := *q
	return len(snapshot.items)
}
