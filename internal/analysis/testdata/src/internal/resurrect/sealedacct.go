// Sealedacct fixtures: once the //owvet:seal publish call has run, the
// //owvet:sealed ledger is part of the published fingerprint — later writes
// (direct, via a mutating method on the field, or by calling a function
// that transitively writes it) and any write on an //owvet:postseal path
// are diagnostics. Private shards with the same shape stay writable.
package resurrect

// Ledger is the accounting block shape shared by the published ledger and
// the private post-seal shards.
type Ledger struct {
	Bytes int64
	Pages int64
}

// bump mutates a ledger through a pointer receiver.
func (l *Ledger) bump(n int64) {
	l.Bytes += n
	l.Pages++
}

// engineX owns the published ledger and a private shard.
type engineX struct {
	//owvet:sealed
	acct  Ledger
	shard Ledger // private post-resume shard, deliberately not sealed
}

// publish seals the ledger into the report fingerprint.
//
//owvet:seal
func (e *engineX) publish() Ledger {
	return e.acct
}

// runPass accounts, publishes, then — wrongly — keeps writing.
func (e *engineX) runPass(n int64) Ledger {
	e.acct.Bytes += n // before the seal: fine
	rep := e.publish()
	e.acct.Pages++ // want `sealed accounting field acct written after the seal point`
	e.lateBump(n)  // want `lateBump writes sealed accounting and is called after the seal point`
	return rep
}

// lateBump writes the sealed field; harmless by itself, flagged at
// post-seal call sites through the transitive closure.
func (e *engineX) lateBump(n int64) {
	e.acct.Bytes += n
}

// absorbLate mutates the sealed field through the ledger's own pointer
// method after publishing — still a write.
func (e *engineX) absorbLate(n int64) Ledger {
	rep := e.publish()
	e.acct.bump(n) // want `sealed accounting field acct written after the seal point`
	return rep
}

// ResolveLate models the lazy resolve path that runs after publish.
//
//owvet:postseal
func ResolveLate(e *engineX, n int64) {
	e.acct.Bytes += n // want `sealed accounting field acct written on a post-seal path \(reachable from ResolveLate\)`
	touchLate(e, n)
}

func touchLate(e *engineX, n int64) {
	e.acct.Pages++ // want `sealed accounting field acct written on a post-seal path \(reachable from ResolveLate\)`
}

// ResolvePrivate accounts post-resume work into the private shard: clean.
//
//owvet:postseal
func ResolvePrivate(e *engineX, n int64) {
	e.shard.Bytes += n
}

// ResolveAllowed documents a deliberate exception.
//
//owvet:postseal
func ResolveAllowed(e *engineX) {
	//owvet:allow sealedacct: corrected-ledger republish path; fingerprint is recomputed afterwards
	e.acct.Pages++
}
