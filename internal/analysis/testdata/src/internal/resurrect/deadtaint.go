// Deadtaint fixtures: provenance labels survive helper returns, so the
// smuggling patterns the syntactic crosskernel rule cannot see — a raw
// dead-kernel word returned through a function and then used as an index, a
// bound, a pointer, or installed into main-kernel state — are caught at the
// point of use. Validation (a crc32 call or the range-check comparison
// idiom) cleanses the label.
package resurrect

import (
	"errors"
	"hash/crc32"

	"fixture/internal/kernel"
	"fixture/internal/phys"
)

// headWord returns the first word of a dead-kernel region through the
// counting reader. No phys.Mem selector appears at any call site below, so
// crosskernel is structurally blind to everything in this file.
func headWord(r *reader, base uint64) uint64 {
	w, _ := r.word(base)
	return w
}

// smuggledIndex uses the helper-returned raw word as an index with no
// validation — the interprocedural smuggle.
func smuggledIndex(r *reader, table []uint64) uint64 {
	idx := headWord(r, 0)
	return table[idx] // want `used as a slice/array index without CRC/range validation`
}

// validatedIndex range-checks the word first: the comparison validates it.
func validatedIndex(r *reader, table []uint64) uint64 {
	idx := headWord(r, 0)
	if idx >= uint64(len(table)) {
		return 0
	}
	return table[idx]
}

// sliceWindow uses a dead word as a slice bound without checking it.
func sliceWindow(r *reader, buf []byte) []byte {
	n, _ := r.word(0)
	return buf[:n] // want `used as a slice bound without CRC/range validation`
}

// derefHelper dereferences its argument without validating; the summary
// records parameter 0 as a sink, so blame lands on unvalidated callers.
func derefHelper(p *uint64) uint64 {
	return *p
}

// smuggledDeref hands a pointer to a dead word to the dereferencing helper.
func smuggledDeref(r *reader, base uint64) uint64 {
	w, _ := r.word(base)
	p := &w
	return derefHelper(p) // want `dead-kernel-derived value passed to derefHelper`
}

// installRaw pushes dead bytes straight into main-kernel state.
func installRaw(r *reader, frame int) error {
	buf := make([]byte, phys.PageSize)
	if err := r.ReadAt(uint64(frame)*phys.PageSize, buf); err != nil {
		return err
	}
	return kernel.InstallPage(frame, buf) // want `flow into main-kernel state via InstallPage`
}

// installValidated CRC-checks the page before installing: clean.
func installValidated(r *reader, frame int, sum uint32) error {
	buf := make([]byte, phys.PageSize)
	if err := r.ReadAt(uint64(frame)*phys.PageSize, buf); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return errors.New("resurrect: page checksum mismatch")
	}
	return kernel.InstallPage(frame, buf)
}

// allowedUse documents a deliberate exception to the index rule.
func allowedUse(r *reader, table []uint64) uint64 {
	idx := headWord(r, 0)
	//owvet:allow deadtaint: index is a power-of-two tag masked on write, cannot exceed len(table)
	return table[idx]
}
