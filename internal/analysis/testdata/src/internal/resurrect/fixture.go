// Package resurrect exercises the crosskernel analyzer: direct phys.Mem
// reads are forbidden except from the owvet:reader-marked wrapper.
package resurrect

import "fixture/internal/phys"

// reader is the designated accounted accessor.
//
//owvet:reader
type reader struct {
	mem   *phys.Mem
	bytes int64
}

// ReadAt is the sanctioned wrapper: direct phys access here is exempt.
func (r *reader) ReadAt(addr uint64, buf []byte) error {
	r.bytes += int64(len(buf))
	return r.mem.ReadAt(addr, buf)
}

// word shows that every method of the marked type is exempt.
func (r *reader) word(addr uint64) (uint64, error) {
	r.bytes += 8
	return r.mem.ReadU64(addr)
}

// pte mimics layout.PTE: a Frame method on a non-phys type must not trip
// the analyzer.
type pte uint64

// Frame extracts the frame number.
func (p pte) Frame() int { return int(p >> 12) }

func frameOfPTE(p pte) int {
	return p.Frame()
}

func parseDirect(m *phys.Mem) error {
	var b [8]byte
	return m.ReadAt(0, b[:]) // want `direct phys\.Mem\.ReadAt`
}

func wordDirect(m *phys.Mem) (uint64, error) {
	return m.ReadU64(8) // want `direct phys\.Mem\.ReadU64`
}

func frameDirect(m *phys.Mem) ([]byte, error) {
	return m.Frame(1) // want `direct phys\.Mem\.Frame`
}

func throughReader(r *reader, addr uint64) (uint64, error) {
	return r.word(addr)
}

// valueSmuggle captures the accessor as a method value: no CallExpr with a
// phys.Mem receiver ever appears, but the unaccounted read still happens.
func valueSmuggle(m *phys.Mem) error {
	f := m.ReadAt // want `method value phys\.Mem\.ReadAt`
	var b [8]byte
	return f(0, b[:])
}

// valueSmuggleU64 passes the method value onward instead of calling it.
func valueSmuggleU64(m *phys.Mem) func(uint64) (uint64, error) {
	return m.ReadU64 // want `method value phys\.Mem\.ReadU64`
}

// readerValue shows a method value of the sanctioned wrapper is fine.
func readerValue(r *reader) func(uint64, []byte) error {
	return r.ReadAt
}

// pteFrameValue shows a Frame method value on a non-phys type is fine.
func pteFrameValue(p pte) func() int {
	return p.Frame
}

// indexSalvageDirect mimics discovery salvaging the candidate index by
// reading the reservation bytes directly — bypassing the Table 4 byte
// accounting the counting reader exists for.
func indexSalvageDirect(m *phys.Mem, base uint64) (uint64, error) {
	return m.ReadU64(base) // want `direct phys\.Mem\.ReadU64`
}

// indexSalvageAccounted is the compliant shape: the index region's bytes
// flow through the counting reader like every other dead-kernel read.
func indexSalvageAccounted(r *reader, base uint64) (uint64, error) {
	return r.word(base)
}

func allowedValue(m *phys.Mem) func(uint64) (uint64, error) {
	//owvet:allow crosskernel: boot-time self-test probe, not dead-kernel parsing
	return m.ReadU64
}

func allowedProbe(m *phys.Mem) error {
	var b [4]byte
	//owvet:allow crosskernel: boot-time self-test probe, not dead-kernel parsing
	return m.ReadAt(4, b[:])
}
