// Costaccount fixtures: bytes-moving and CRC work reachable from the
// package's entry points must charge the machine clock, directly or through
// a callee; unreachable helpers and charged paths stay quiet.
package resurrect

import (
	"hash/crc32"

	"fixture/internal/sim"
)

// machine couples the virtual clock and cost model as the real engine does.
type machine struct {
	clock *sim.Clock
	cost  sim.CostModel
}

// InstallAll is the exported resurrection entry point reachability roots at.
func InstallAll(m *machine, dst, src []byte, sum uint32) {
	chargedCopy(m, dst, src)
	viaHelper(m, dst, src)
	unchargedCopy(dst, src)
	checksumUncharged(src, sum)
	scratchCopy(dst, src)
}

// chargedCopy moves bytes and charges the clock for them: clean.
func chargedCopy(m *machine, dst, src []byte) {
	n := copy(dst, src)
	m.clock.Advance(m.cost.CopyCost(int64(n)))
}

// viaHelper moves bytes and delegates the charge to a callee: clean.
func viaHelper(m *machine, dst, src []byte) {
	copy(dst, src)
	charge(m, len(src))
}

func charge(m *machine, n int) {
	m.clock.Advance(m.cost.CopyCost(int64(n)))
}

// unchargedCopy moves bytes with no charge anywhere on the path — exactly
// the saved-bytes under-reporting bug class.
func unchargedCopy(dst, src []byte) {
	copy(dst, src) // want `builtin copy \(byte movement\) on a resurrection path without a machine-clock charge`
}

// checksumUncharged validates a page without pricing the CRC.
func checksumUncharged(src []byte, sum uint32) bool {
	return crc32.ChecksumIEEE(src) == sum // want `crc32\.ChecksumIEEE \(CRC validation\) on a resurrection path without a machine-clock charge`
}

// scratchCopy is priced at zero on purpose — setup work outside the modeled
// interruption window.
func scratchCopy(dst, src []byte) {
	//owvet:allow costaccount: scratch staging before the outage clock starts, not modeled work
	copy(dst, src)
}

// orphanCopy is unreachable from any entry point: reachability gating keeps
// it quiet even though nothing charges.
func orphanCopy(dst, src []byte) {
	copy(dst, src)
}
