// Package trace exercises the lockdiscipline analyzer over the concurrent
// ring-buffer package's scope.
package trace

import "sync"

type ring struct {
	mu    sync.Mutex
	items []int
}

func lockByValue(mu sync.Mutex) { // want `passes a sync\.Mutex by value`
	mu.Lock()
	defer mu.Unlock()
}

func copyRing(r *ring) int {
	snapshot := *r // want `copies a lock-containing value`
	return len(snapshot.items)
}

func rangeCopies(rings []ring) int {
	n := 0
	for _, r := range rings { // want `range variable copies a lock-containing value`
		n += len(r.items)
	}
	return n
}

func returnLocked(r *ring, drain bool) int {
	r.mu.Lock()
	if drain {
		return len(r.items) // want `return while r\.mu may still be locked`
	}
	n := len(r.items)
	r.mu.Unlock()
	return n
}

func deferUnlock(r *ring) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

func balancedEarlyReturn(r *ring, quick bool) int {
	r.mu.Lock()
	if quick {
		r.mu.Unlock()
		return 0
	}
	n := len(r.items)
	r.mu.Unlock()
	return n
}

func allowedHandoff(r *ring) *ring {
	r.mu.Lock()
	//owvet:allow lockdiscipline: lock intentionally handed to the caller
	return r
}
