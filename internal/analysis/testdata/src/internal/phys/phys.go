// Package phys is a stub of the real physical-memory package, providing
// the method surface the analyzers recognise by type.
package phys

import "errors"

// ErrOutOfRange reports an access beyond installed memory.
var ErrOutOfRange = errors.New("phys: address out of range")

// PageSize mirrors the real frame size.
const PageSize = 4096

// Mem mimics the real phys.Mem.
type Mem struct {
	data []byte
}

// NewMem installs n bytes of memory.
func NewMem(n int) *Mem { return &Mem{data: make([]byte, n)} }

// ReadAt copies len(buf) bytes at addr into buf.
func (m *Mem) ReadAt(addr uint64, buf []byte) error {
	if int(addr)+len(buf) > len(m.data) {
		return ErrOutOfRange
	}
	copy(buf, m.data[addr:])
	return nil
}

// ReadU64 reads a little-endian word.
func (m *Mem) ReadU64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.ReadAt(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteAt copies buf into memory at addr.
func (m *Mem) WriteAt(addr uint64, buf []byte) error {
	if int(addr)+len(buf) > len(m.data) {
		return ErrOutOfRange
	}
	copy(m.data[addr:], buf)
	return nil
}

// Frame returns frame f's bytes.
func (m *Mem) Frame(f int) ([]byte, error) {
	base := f * PageSize
	if base < 0 || base+PageSize > len(m.data) {
		return nil, ErrOutOfRange
	}
	return m.data[base : base+PageSize], nil
}

// SetKind tags frame f.
func (m *Mem) SetKind(f int, kind uint8) error {
	if f < 0 || (f+1)*PageSize > len(m.data) {
		return ErrOutOfRange
	}
	return nil
}

// Protect toggles write protection on frame f.
func (m *Mem) Protect(f int, readOnly bool) error {
	if f < 0 || (f+1)*PageSize > len(m.data) {
		return ErrOutOfRange
	}
	return nil
}
