// Package errs exercises the errdrop analyzer, which applies to every
// package: errors from the phys/layout/disk substrate must be handled.
package errs

import (
	"fixture/internal/disk"
	"fixture/internal/layout"
	"fixture/internal/phys"
)

func dropStatement(m *phys.Mem) {
	m.Protect(1, true) // want `m\.Protect discards its error`
}

func dropBlank(m *phys.Mem) {
	_ = m.SetKind(1, 2) // want `error from m\.SetKind assigned to the blank identifier`
}

func dropTupleSlot(m *phys.Mem) uint64 {
	v, _ := m.ReadU64(0) // want `error from m\.ReadU64 assigned to the blank identifier`
	return v
}

func dropLayoutTriple(m *phys.Mem) bool {
	_, ok, _ := layout.ReadContext(m, 0) // want `error from layout\.ReadContext assigned to the blank identifier`
	return ok
}

func dropDeferred(m *phys.Mem) {
	defer m.Protect(1, false) // want `defer m\.Protect discards its error`
}

func dropDisk() []byte {
	b, _ := disk.ReadRaw(3) // want `error from disk\.ReadRaw assigned to the blank identifier`
	return b
}

func handledPropagate(m *phys.Mem) (uint64, error) {
	return m.ReadU64(0)
}

func handledCheck(m *phys.Mem) uint64 {
	v, err := m.ReadU64(0)
	if err != nil {
		return 0
	}
	return v
}

func handledValueOnly(m *phys.Mem) (uint64, bool) {
	v, ok, err := layout.ReadContext(m, 0)
	if err != nil {
		return 0, false
	}
	return v, ok
}

func allowedBestEffort(m *phys.Mem) {
	//owvet:allow errdrop: best-effort cleanup of a frame validated above
	_ = m.Protect(1, false)
}
