// Package sim is a deterministic-clock stub for the costaccount fixtures:
// just enough of Clock and CostModel for the analyzer's charge detection.
package sim

import "time"

// Clock is the virtual machine clock (no wall time anywhere).
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the virtual clock forward — the machine-clock charge.
func (c *Clock) Advance(d time.Duration) { c.now += d }

// CostModel prices the work resurrection performs.
type CostModel struct {
	ZeroFillCost     time.Duration
	SpecValidateCost time.Duration
}

// CopyCost returns the virtual time to copy n bytes.
func (m CostModel) CopyCost(n int64) time.Duration {
	return time.Duration(n) * time.Nanosecond
}
