// Package disk is a stub of the real block-device package for analyzer
// fixtures.
package disk

import "errors"

// ErrBadSector models a failed raw read.
var ErrBadSector = errors.New("disk: bad sector")

// ReadRaw reads a raw slot image.
func ReadRaw(slot int) ([]byte, error) {
	if slot < 0 {
		return nil, ErrBadSector
	}
	return make([]byte, 512), nil
}
