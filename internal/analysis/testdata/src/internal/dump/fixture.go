// Package dump proves the crosskernel scope also covers the post-mortem
// dump parser.
package dump

import "fixture/internal/phys"

func inspectAnchor(m *phys.Mem) (uint64, error) {
	return m.ReadU64(0) // want `direct phys\.Mem\.ReadU64`
}
