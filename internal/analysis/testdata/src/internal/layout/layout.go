// Package layout is a stub of the real record-layout package for analyzer
// fixtures: its functions return errors that callers must handle.
package layout

import "fixture/internal/phys"

// ReadContext mimics the real (context, ok, error) triple.
func ReadContext(m *phys.Mem, addr uint64) (uint64, bool, error) {
	v, err := m.ReadU64(addr)
	if err != nil {
		return 0, false, err
	}
	return v, v != 0, nil
}

// ReadProc mimics a record parse returning the next-record address.
func ReadProc(m *phys.Mem, addr uint64) (uint64, error) {
	return m.ReadU64(addr)
}
