// Package layout is a stub of the real record-layout package for analyzer
// fixtures: its functions return errors that callers must handle.
package layout

import (
	"sort"

	"fixture/internal/phys"
)

// ReadContext mimics the real (context, ok, error) triple.
func ReadContext(m *phys.Mem, addr uint64) (uint64, bool, error) {
	v, err := m.ReadU64(addr)
	if err != nil {
		return 0, false, err
	}
	return v, v != 0, nil
}

// ReadProc mimics a record parse returning the next-record address.
func ReadProc(m *phys.Mem, addr uint64) (uint64, error) {
	return m.ReadU64(addr)
}

// renderIndexUnsorted mimics flattening the index writer's slot-occupancy
// map straight into a result: map order varies run to run, so salvaged
// entry order would too (nodeterminism scope now covers this package).
func renderIndexUnsorted(byPID map[uint32]int) []int {
	var slots []int
	for _, slot := range byPID { // want `never sorted`
		slots = append(slots, slot)
	}
	return slots
}

// renderIndexSorted is the compliant shape: a total ordering before use.
func renderIndexSorted(byPID map[uint32]int) []int {
	slots := make([]int, 0, len(byPID))
	for _, slot := range byPID {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots
}
