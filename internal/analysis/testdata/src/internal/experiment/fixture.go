// Package experiment exercises the nodeterminism analyzer: campaign tables
// must replay bit-for-bit from a seed.
package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func globalRand() int {
	return rand.Intn(6) // want `global rand source`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func racySelect(a, b chan int) int {
	select { // want `select over 2 channel cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func politeSelect(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

func printMap(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds fmt output`
		fmt.Println(k, v)
	}
}

func unsortedFlatten(m map[string]int) []string {
	var out []string
	for k := range m { // want `never sorted`
		out = append(out, k)
	}
	return out
}

func sortedFlatten(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sumMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// campaignMergeUnsorted mimics the campaign pool's commit step folding
// per-slot attribution tallies into rows: ranging the map straight into the
// output reintroduces exactly the run-to-run ordering jitter the pool's
// seed-order commit exists to prevent.
type mergeRow struct {
	reason string
	count  int
}

func campaignMergeUnsorted(attribs map[string]int) []mergeRow {
	var rows []mergeRow
	for reason, n := range attribs { // want `never sorted`
		rows = append(rows, mergeRow{reason, n})
	}
	return rows
}

func campaignMergeSorted(attribs map[string]int) []mergeRow {
	rows := make([]mergeRow, 0, len(attribs))
	for reason, n := range attribs {
		rows = append(rows, mergeRow{reason, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].reason < rows[j].reason })
	return rows
}

func allowedClock() time.Duration {
	//owvet:allow nodeterminism: fixture demonstrates the escape hatch
	return time.Since(time.Unix(0, 0))
}
