// Package kernel exercises the gopanic analyzer: kernel failures are
// modeled values, never literal Go panics.
package kernel

import "fmt"

var registry = map[string]bool{}

// register mimics init-time program registration, where a duplicate is a
// programmer error worth a real panic — annotated as such.
func register(name string) {
	if registry[name] {
		//owvet:allow gopanic: init-time registration bug, not a modeled kernel failure
		panic(fmt.Sprintf("kernel: %q registered twice", name))
	}
	registry[name] = true
}

func badBoundsCheck(frame, max int) {
	if frame > max {
		panic("frame out of range") // want `literal panic`
	}
}

func modeledFailure(frame, max int) error {
	if frame > max {
		return fmt.Errorf("kernel: frame %d beyond %d", frame, max)
	}
	return nil
}
