// Package kernel exercises the gopanic analyzer — kernel failures are
// modeled values, never literal Go panics, log.Fatal* or os.Exit — and
// provides InstallPage as the main-kernel-state sink the deadtaint fixtures
// target.
package kernel

import (
	"fmt"
	"log"
	"os"
)

// InstallPage maps a resurrected page into main-kernel state. Deadtaint
// treats any call into this package as an install sink.
func InstallPage(frame int, data []byte) error {
	if frame < 0 || len(data) == 0 {
		return fmt.Errorf("kernel: bad page install (frame %d, %d bytes)", frame, len(data))
	}
	return nil
}

var registry = map[string]bool{}

// register mimics init-time program registration, where a duplicate is a
// programmer error worth a real panic — annotated as such.
func register(name string) {
	if registry[name] {
		//owvet:allow gopanic: init-time registration bug, not a modeled kernel failure
		panic(fmt.Sprintf("kernel: %q registered twice", name))
	}
	registry[name] = true
}

func badBoundsCheck(frame, max int) {
	if frame > max {
		panic("frame out of range") // want `literal panic`
	}
}

func modeledFailure(frame, max int) error {
	if frame > max {
		return fmt.Errorf("kernel: frame %d beyond %d", frame, max)
	}
	return nil
}

// fatalTeardown kills the whole simulator process on a modeled failure.
func fatalTeardown(err error) {
	if err != nil {
		log.Fatalf("kernel: %v", err) // want `log\.Fatalf tears down the simulator process`
	}
}

// exitTeardown does the same through os.Exit.
func exitTeardown(code int) {
	os.Exit(code) // want `os\.Exit tears down the simulator process`
}

// allowedExit is the harness's sanctioned way out, after the campaign.
func allowedExit() {
	//owvet:allow gopanic: harness shutdown helper, runs only after the campaign has completed
	os.Exit(0)
}
