// Package spans is a stub of the causal span plane, exercising both
// analyzers that police it: nodeterminism (the span tree is keyed by
// logical time and its fingerprint is golden-pinned across worker widths,
// so wall clocks and unsorted map output are banned) and errdrop (a
// dropped Build or exporter error ships a timeline that silently is not
// there).
package spans

import (
	"fmt"
	"io"
	"time"
)

// Tree mimics the real span tree.
type Tree struct {
	Names map[string]int
}

// Build mimics the real post-mortem reconstruction entry point.
func Build(app string) (*Tree, error) {
	if app == "" {
		return nil, fmt.Errorf("spans: no application")
	}
	return &Tree{}, nil
}

// WriteTraceEvents mimics the Perfetto exporter.
func (t *Tree) WriteTraceEvents(w io.Writer) error {
	_, err := io.WriteString(w, "{}")
	return err
}

func wallClockSpanStart() int64 {
	// A span stamped from the host clock can never replay bit-for-bit.
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func renderUnsorted(t *Tree) {
	for name, tid := range t.Names { // want `map iteration order feeds fmt output`
		fmt.Println(name, tid)
	}
}

func allowedStopwatch() time.Duration {
	//owvet:allow nodeterminism: exporter progress stopwatch is display-only, never serialized
	return time.Since(time.Unix(0, 0))
}

func dropBuildError(app string) *Tree {
	t, _ := Build(app) // want `error from Build assigned to the blank identifier`
	return t
}

func dropExportStatement(t *Tree, w io.Writer) {
	t.WriteTraceEvents(w) // want `t\.WriteTraceEvents discards its error`
}

func handledExport(t *Tree, w io.Writer) error {
	return t.WriteTraceEvents(w)
}

func allowedBestEffortExport(t *Tree, w io.Writer) {
	//owvet:allow errdrop: preview rendering onto a throwaway buffer; the real export path checks
	_ = t.WriteTraceEvents(w)
}
