// Command tick proves the nodeterminism scope covers cmd/ and that the
// intended wall-clock ticker survives behind an allow directive.
package main

import (
	"fmt"
	"time"
)

func main() {
	//owvet:allow nodeterminism: wall-clock elapsed-time report only, never campaign data
	start := time.Now()
	fmt.Println(stamp(), start)
}

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
