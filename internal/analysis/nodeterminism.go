package analysis

import (
	"go/ast"
	"go/types"
)

// NoDeterminism polices the Section 6 replayability requirement: a campaign
// table must be reproducible bit-for-bit from its seed. In the packages
// that feed campaign results (experiment, sim, faultinject, trace, core
// with its campaign pool schedule model, spans with the width-pinned
// span-tree fingerprints and Perfetto exporter, sched with the admission
// queue and pipelined-commit schedule model, and layout with the candidate
// index the discovery prologue salvages) and the command-line front-ends,
// it bans:
//
//   - wall-clock reads (time.Now and friends) — virtual time comes from
//     sim.Clock;
//   - the global math/rand source — randomness comes from seeded sim.RNG;
//   - select statements with two or more channel cases, whose ready-choice
//     is scheduler-dependent;
//   - ranging over a map where the body feeds an fmt call or builds a
//     result slice that is never sorted, since map order varies run to run.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "ban wall clocks, global math/rand, multi-way selects and " +
		"order-dependent map iteration in campaign-affecting packages",
	Scope: []string{
		"internal/experiment", "internal/sim", "internal/faultinject",
		"internal/trace", "internal/metrics", "internal/core",
		"internal/spans", "internal/sched", "internal/layout", "cmd",
	},
	Run: runNoDeterminism,
}

// wallClockFuncs are the time-package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

// seededRandFuncs are the math/rand constructors that are fine: they build
// explicit, seedable sources.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runNoDeterminismFunc(p, fd)
		}
	}
}

func runNoDeterminismFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(p, n)
		case *ast.SelectStmt:
			checkSelect(p, n)
		case *ast.RangeStmt:
			checkMapRange(p, fd, n)
		}
		return true
	})
}

func checkNondetCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && wallClockFuncs[fn.Name()] {
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock; campaign results must replay from the seed "+
					"— charge virtual time to sim.Clock instead", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !isMethod && !seededRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(),
				"%s.%s draws from the global rand source; use a seeded sim.RNG so "+
					"experiments replay bit-for-bit", fn.Pkg().Path(), fn.Name())
		}
	}
}

func checkSelect(p *Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		p.Reportf(sel.Pos(),
			"select over %d channel cases picks among ready channels nondeterministically; "+
				"campaign replay requires a single deterministic event source", comms)
	}
}

// checkMapRange flags ranging over a map when the loop body's output is
// order-sensitive: it prints through fmt, or appends into a slice that the
// enclosing function never sorts afterwards. Pure reductions (sums, counts,
// building another map) are order-independent and pass.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := p.Pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fmtCall := false
	var appendTargets []string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p.Pkg, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				fmtCall = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if i < len(n.Lhs) {
					appendTargets = append(appendTargets, types.ExprString(n.Lhs[i]))
				}
			}
		}
		return true
	})
	switch {
	case fmtCall:
		p.Reportf(rs.Pos(),
			"map iteration order feeds fmt output; iterate a sorted key slice so "+
				"campaign tables render identically on every run")
	case len(appendTargets) > 0 && !sortedAfter(p, fd, appendTargets):
		p.Reportf(rs.Pos(),
			"map iteration order feeds an accumulated result (%s) that is never sorted; "+
				"sort it or iterate sorted keys", appendTargets[0])
	}
}

// sortedAfter reports whether any append target is passed to a sort or
// slices ordering function somewhere in the enclosing function.
func sortedAfter(p *Pass, fd *ast.FuncDecl, targets []string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(p.Pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			s := types.ExprString(unparen(arg))
			for _, t := range targets {
				if s == t || s == "&"+t {
					found = true
				}
			}
		}
		return true
	})
	return found
}
