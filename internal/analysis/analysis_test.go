package analysis

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureRoot is a miniature module mirroring the repository's layout, so
// the analyzers run with their real package scopes.
const fixtureRoot = "testdata/src"

// wantRe matches `// want `+ backquoted regexp in fixture sources.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file string // module-relative
	line int
	re   *regexp.Regexp
}

// collectWants scans every fixture source for want comments.
func collectWants(t *testing.T, root string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regexp: %v", rel, i+1, err)
			}
			wants = append(wants, want{file: filepath.ToSlash(rel), line: i + 1, re: re})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestFixtureDiagnostics runs the whole suite over the fixture module and
// requires an exact match between reported diagnostics and want comments:
// each analyzer both fires where expected and stays quiet where an
// //owvet:allow directive (or compliant code) appears.
func TestFixtureDiagnostics(t *testing.T) {
	diags, err := Run(fixtureRoot, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, fixtureRoot)
	if len(wants) == 0 {
		t.Fatal("no want comments found in fixtures")
	}
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

// TestEveryAnalyzerFiresAndSuppresses asserts per analyzer that the
// fixtures contain at least one firing diagnostic and at least one
// //owvet:allow directive naming it — the acceptance criteria for the
// suite.
func TestEveryAnalyzerFiresAndSuppresses(t *testing.T) {
	diags, err := Run(fixtureRoot, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(map[string]bool)
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	allowed := make(map[string]bool)
	allowRe := regexp.MustCompile(`//owvet:allow ([a-z]+):`)
	err = filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range allowRe.FindAllStringSubmatch(string(data), -1) {
			allowed[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All {
		if !fired[a.Name] {
			t.Errorf("analyzer %s never fired on the fixtures", a.Name)
		}
		if !allowed[a.Name] {
			t.Errorf("analyzer %s has no //owvet:allow suppression fixture", a.Name)
		}
	}
}

// TestEnableDisable checks analyzer selection.
func TestEnableDisable(t *testing.T) {
	only, err := Run(fixtureRoot, Config{Enable: []string{"gopanic"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(only) == 0 {
		t.Fatal("gopanic-only run reported nothing")
	}
	for _, d := range only {
		if d.Analyzer != "gopanic" {
			t.Errorf("enable=gopanic leaked %s diagnostic: %s", d.Analyzer, d)
		}
	}
	without, err := Run(fixtureRoot, Config{Disable: []string{"gopanic"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range without {
		if d.Analyzer == "gopanic" {
			t.Errorf("disable=gopanic still reported: %s", d)
		}
	}
	if _, err := Run(fixtureRoot, Config{Enable: []string{"nosuch"}}); err == nil {
		t.Error("unknown analyzer name not rejected")
	}
}

// TestScopeOverride confirms tests can restrict an analyzer to explicit
// paths, and that scope restriction actually excludes packages.
func TestScopeOverride(t *testing.T) {
	diags, err := Run(fixtureRoot, Config{
		Enable: []string{"crosskernel"},
		Scopes: map[string][]string{"crosskernel": {"internal/dump"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("scoped crosskernel run reported nothing")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "internal/dump/") {
			t.Errorf("scope override leaked diagnostic outside internal/dump: %s", d)
		}
	}
}

// TestJSONSchemaStable pins the machine-readable output schema: tooling
// parses this format, so any change here is a deliberate version bump.
func TestJSONSchemaStable(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "crosskernel",
			File:     "internal/resurrect/engine.go",
			Line:     97,
			Col:      9,
			Message:  "direct phys.Mem.ReadAt bypasses the accounted reader",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "version": 1,
  "count": 1,
  "diagnostics": [
    {
      "analyzer": "crosskernel",
      "file": "internal/resurrect/engine.go",
      "line": 97,
      "col": 9,
      "message": "direct phys.Mem.ReadAt bypasses the accounted reader"
    }
  ]
}
`
	if got := buf.String(); got != golden {
		t.Errorf("JSON schema drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	goldenEmpty := `{
  "version": 1,
  "count": 0,
  "diagnostics": []
}
`
	if got := buf.String(); got != goldenEmpty {
		t.Errorf("empty JSON schema drifted:\ngot:\n%s\nwant:\n%s", got, goldenEmpty)
	}
}

// TestRepoClean runs the full suite over this repository itself: the merged
// tree must be diagnostic-clean, so the determinism and memory-discipline
// invariants hold on every `go test ./...`, not just under `make lint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository violates its own invariants: %s", d)
	}
}
