package analysis

// DeadTaint is the flow-sensitive upgrade of crosskernel: every value
// derived from dead-kernel bytes — reads through the //owvet:reader
// counting reader, direct phys.Mem accessors, speculated frames — carries a
// provenance label until it passes a CRC/validation sink (a hash/crc32
// call, an //owvet:validator function, or the range-check comparison
// idiom). A labeled value reaching main-kernel state (internal/kernel
// calls, PTE installs), a slice/array index or bound, or a pointer
// dereference without validation is a diagnostic. Because labels flow
// through function summaries, a raw word returned through a helper and
// dereferenced in the caller — invisible to the syntactic call-site check —
// is caught at the call site (paper §4's resurrection-critical data
// checks).
var DeadTaint = &Analyzer{
	Name: "deadtaint",
	Doc: "track dead-kernel-byte provenance through assignments and calls; " +
		"unvalidated tainted values must not reach kernel installs, indexing or dereferences",
	Scope: deadTaintScope,
	Run:   runDeadTaint,
}

// deadTaintScope is shared with the dataflow index (deadScoped) as a plain
// variable to avoid an initialization cycle through the Analyzer value.
var deadTaintScope = []string{"internal/resurrect", "internal/dump"}

func runDeadTaint(p *Pass) {
	fi := p.Flow
	if fi == nil {
		return
	}
	for _, ff := range fi.pkgFuncs(p.Pkg) {
		st := fi.newState(ff)
		st.run()
		st.reportPass(p)
	}
}
