package kernel

import (
	"testing"

	"otherworld/internal/hw"
	"otherworld/internal/phys"
)

func TestOopsFirstPanicWins(t *testing.T) {
	k := bootTestKernel(t, nil)
	err1 := k.InjectOops("first")
	err2 := k.InjectOops("second")
	if err1 != err2 {
		t.Fatal("second panic should return the first event")
	}
	if k.Panicked().Reason != "first" {
		t.Fatalf("reason = %q", k.Panicked().Reason)
	}
	if !IsPanic(err1) {
		t.Fatal("IsPanic false")
	}
}

func TestTransferCleanPanicSucceeds(t *testing.T) {
	k := bootTestKernel(t, nil)
	if err := k.LoadCrashImage(); err != nil {
		t.Fatal(err)
	}
	p, _ := k.CreateProcess("a", "test-prog")
	k.M.CPUs[0].CurrentPID = p.PID
	_ = k.InjectOops("clean")
	out := k.AttemptTransfer()
	if !out.OK {
		t.Fatalf("transfer failed: %s", out.Reason)
	}
	// The context must have been saved by the halt protocol.
	if !p.Ctx.Saved {
		t.Fatal("context not saved")
	}
}

func TestTransferWithoutCrashImageFails(t *testing.T) {
	k := bootTestKernel(t, nil)
	_ = k.InjectOops("no image loaded")
	out := k.AttemptTransfer()
	if out.OK {
		t.Fatal("transfer without a crash image must fail")
	}
}

func TestTransferRequiresPanic(t *testing.T) {
	k := bootTestKernel(t, nil)
	if out := k.AttemptTransfer(); out.OK {
		t.Fatal("transfer without a panic must fail")
	}
}

func TestHangNeedsWatchdog(t *testing.T) {
	for _, watchdog := range []bool{true, false} {
		k := bootTestKernel(t, func(p *Params) {
			p.Hardening.WatchdogNMI = watchdog
		})
		if err := k.LoadCrashImage(); err != nil {
			t.Fatal(err)
		}
		_ = k.raise(PanicHang, "wedged")
		out := k.AttemptTransfer()
		if out.OK != watchdog {
			t.Fatalf("watchdog=%v: transfer ok=%v (%s)", watchdog, out.OK, out.Reason)
		}
	}
}

func TestDoubleFaultNeedsHandlerFix(t *testing.T) {
	for _, fixed := range []bool{true, false} {
		k := bootTestKernel(t, func(p *Params) {
			p.Hardening.DoubleFaultMicroreboot = fixed
		})
		if err := k.LoadCrashImage(); err != nil {
			t.Fatal(err)
		}
		_ = k.raise(PanicDoubleFault, "df")
		out := k.AttemptTransfer()
		if out.OK != fixed {
			t.Fatalf("fix=%v: transfer ok=%v (%s)", fixed, out.OK, out.Reason)
		}
	}
}

func TestTransferFailsOnCorruptKexecGate(t *testing.T) {
	k := bootTestKernel(t, nil)
	if err := k.LoadCrashImage(); err != nil {
		t.Fatal(err)
	}
	// Smash the kexec IDT gate.
	addr := hw.IDTAddr + uint64(hw.VecKexec)*16
	if err := k.M.Mem.WriteAt(addr, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = k.InjectOops("x")
	out := k.AttemptTransfer()
	if out.OK {
		t.Fatal("transfer should fail on a corrupt kexec gate")
	}
}

func TestTransferFailsOnCorruptTransferStub(t *testing.T) {
	k := bootTestKernel(t, nil)
	if err := k.LoadCrashImage(); err != nil {
		t.Fatal(err)
	}
	// Corrupt many stub bytes so the non-benign roll is certain.
	f := k.Text.Func(FuncTransferStub)
	for i := 0; i < f.Len; i++ {
		if _, err := k.Text.CorruptByte(f.Start+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	_ = k.InjectOops("x")
	out := k.AttemptTransfer()
	if out.OK {
		t.Fatal("transfer should fail with a fully corrupted stub")
	}
}

func TestPreHardeningStackPrintRecursion(t *testing.T) {
	// Pre-hardening, a corrupted stack recurses the panic path with a few
	// percent probability per crash; over many seeds it must fire at
	// least once. With the fix it must never fire.
	recursed := 0
	for seed := int64(0); seed < 200; seed++ {
		k := bootTestKernel(t, func(p *Params) {
			p.Hardening.NoStackPrintRecursion = false
			p.Seed = seed
		})
		if err := k.LoadCrashImage(); err != nil {
			t.Fatal(err)
		}
		p, _ := k.CreateProcess("a", "test-prog")
		k.M.CPUs[0].CurrentPID = p.PID
		// Corrupt deep scratch: harmless with hardening, sometimes fatal
		// without.
		if err := k.M.Mem.WriteAt(p.D.KStack+3000, []byte{0xFF}); err != nil {
			t.Fatal(err)
		}
		_ = k.InjectOops("x")
		if out := k.AttemptTransfer(); !out.OK {
			recursed++
		}
	}
	if recursed == 0 {
		t.Fatal("pre-hardening panic path never recursed in 200 crashes")
	}
	if recursed > 40 {
		t.Fatalf("recursion rate implausibly high: %d/200", recursed)
	}

	// The same situation always succeeds with the fix.
	k2 := bootTestKernel(t, nil)
	_ = k2.LoadCrashImage()
	p2, _ := k2.CreateProcess("a", "test-prog")
	k2.M.CPUs[0].CurrentPID = p2.PID
	if err := k2.M.Mem.WriteAt(p2.D.KStack+3000, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = k2.InjectOops("x")
	if out := k2.AttemptTransfer(); !out.OK {
		t.Fatalf("hardened transfer failed: %s", out.Reason)
	}
}

func TestCrashImageProtectedFromWildWrites(t *testing.T) {
	k := bootTestKernel(t, nil)
	if err := k.LoadCrashImage(); err != nil {
		t.Fatal(err)
	}
	img := k.P.CrashRegion
	// Direct stores into the image trap (ProtectionFault).
	err := k.M.Mem.WriteAt(phys.FrameAddr(img.Start)+100, []byte{1})
	if err == nil {
		t.Fatal("store into protected image should trap")
	}
	if !k.crashImageIntact() {
		t.Fatal("image must remain intact")
	}
}

func TestWildWriteTrappedByUserProtection(t *testing.T) {
	trapped, landed := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		k := bootTestKernel(t, func(p *Params) {
			p.UserSpaceProtection = true
			p.Seed = seed
		})
		p, _ := k.CreateProcess("a", "test-prog")
		env := &Env{K: k, P: p}
		_ = env.MapAnon(0x100000, 1<<20, 3)
		for i := 0; i < 64; i++ {
			_ = env.Write(0x100000+uint64(i)*4096, []byte{1})
		}
		k.wildWrite()
		trapped += int(k.Perf.WildWritesTrapped)
		landed += int(k.Perf.WildWritesLanded)
	}
	if trapped == 0 {
		t.Fatal("protection never trapped a biased wild write")
	}
}

func TestSettleStopsRepeatedSilentWrites(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	// Force a decided silent-wild-write byte in the scheduler.
	f := k.Text.Func(FuncSched)
	addr, err := k.Text.CorruptByte(f.Start+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.Text.decided[addr] = BehaveWildWriteSilent
	before := k.Perf.WildWrites
	if got := k.executeKernelFunc(FuncSched, p); got != BehaveBenign {
		t.Fatalf("silent write should continue, got %v", got)
	}
	if k.Perf.WildWrites != before+1 {
		t.Fatal("wild write not performed")
	}
	// Re-execution must not generate new wild writes.
	_ = k.executeKernelFunc(FuncSched, p)
	_ = k.executeKernelFunc(FuncSched, p)
	if k.Perf.WildWrites != before+1 {
		t.Fatalf("settled byte kept writing: %d", k.Perf.WildWrites-before)
	}
}
