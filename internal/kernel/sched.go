package kernel

import (
	"errors"

	"otherworld/internal/trace"
)

// schedTraceInterval is the scheduler-decision sampling period: every Nth
// quantum lands one KindSched event in the flight recorder. Sampling keeps
// the ring from being pure scheduler noise while still preserving the last
// few hundred quanta of context at panic time.
const schedTraceInterval = 8

// specSweepPerRound is how many outstanding speculated pages the background
// sweeper resolves after each round-robin round: enough to drain a large
// resurrected image within a normal run, small enough that the per-round
// stall stays bounded. The sweep order is deterministic (sorted PID, then
// VA), so scheduling is replayable.
const specSweepPerRound = 8

// StepProcess runs one quantum of a process on CPU 0, with the next
// runnable process notionally executing on CPU 1 (the paper's test machine
// had two processors; which threads are current matters for the halt-NMI
// protocol at failure time).
func (k *Kernel) StepProcess(p *Process) error {
	if k.panicState != nil {
		return k.panicState
	}
	if p.Exited {
		return nil
	}
	k.M.CPUs[0].CurrentPID = p.PID
	if len(k.M.CPUs) > 1 {
		k.M.CPUs[1].CurrentPID = k.nextRunnable(p.PID)
	}
	if behave := k.executeKernelFunc(FuncSched, p); behave != BehaveBenign {
		return k.manifest(behave, "scheduler")
	}
	k.Perf.Steps++
	// Sample scheduler decisions into the flight recorder; the ring keeps
	// the most recent ones, which is what panic diagnosis wants.
	if k.Tracer != nil && k.Perf.Steps%schedTraceInterval == 0 {
		k.Tracer.Record(trace.Event{Kind: trace.KindSched, PID: p.PID, PC: p.Ctx.PC, A: k.Perf.Steps})
	}
	env := &Env{K: k, P: p}
	err := p.Prog.Step(env)
	if err == nil && !p.Exited {
		p.Ctx.PC++
	}
	return err
}

// nextRunnable returns another runnable PID, or 0 if none.
func (k *Kernel) nextRunnable(not uint32) uint32 {
	for _, pid := range k.procOrder {
		if pid == not {
			continue
		}
		if p, ok := k.procs[pid]; ok && !p.Exited {
			return pid
		}
	}
	return 0
}

// RunResult summarizes a scheduler run.
type RunResult struct {
	// Steps is the number of program quanta executed.
	Steps int
	// Idle reports that every process yielded with nothing to do.
	Idle bool
	// Panic is the kernel failure that stopped the run, if any.
	Panic *PanicEvent
}

// Run drives the round-robin scheduler for at most maxSteps quanta,
// stopping early on a kernel panic or when every live process is idle.
// Program-level errors other than yields kill the offending process, like a
// fatal signal.
func (k *Kernel) Run(maxSteps int) RunResult {
	res := RunResult{}
	idleStreak := 0
	for res.Steps < maxSteps {
		procs := k.Procs()
		if len(procs) == 0 {
			res.Idle = true
			return res
		}
		progressed := false
		for _, p := range procs {
			if res.Steps >= maxSteps {
				break
			}
			err := k.StepProcess(p)
			res.Steps++
			switch {
			case err == nil:
				progressed = true
			case errors.Is(err, ErrYield):
				// Voluntary sleep.
			case IsPanic(err):
				res.Panic = k.panicState
				return res
			default:
				// Fatal program error: kill the process.
				k.logf("pid %d killed: %v", p.PID, err)
				if xerr := k.Exit(p, 128); xerr != nil && IsPanic(xerr) {
					res.Panic = k.panicState
					return res
				}
			}
		}
		// Background sweep: complete a few of the lazy install's pending
		// page copies each round so speculation drains even for pages the
		// programs never touch. Sweep progress counts as progress — the
		// machine is not idle while resurrection copies are outstanding.
		if k.Spec != nil {
			swept, serr := k.Spec.SweepSpeculated(specSweepPerRound)
			if serr != nil || k.panicState != nil {
				res.Panic = k.panicState
				return res
			}
			if swept > 0 {
				progressed = true
			}
		}
		if k.panicState != nil {
			res.Panic = k.panicState
			return res
		}
		if progressed {
			idleStreak = 0
		} else {
			idleStreak++
			if idleStreak >= 2 {
				res.Idle = true
				return res
			}
		}
	}
	return res
}
