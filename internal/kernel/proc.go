package kernel

import (
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// Record slot sizes. Process and file records contain strings fixed at
// creation, but some string fields are set later (a crash-procedure name is
// registered after creation), so their records live in fixed-size slots with
// headroom and are re-sealed in place on every update.
const (
	procSlotSize = 512
	fileSlotSize = 512
	// maxNameLen bounds process, program and crash-procedure names so a
	// descriptor always fits its slot (TestRecordSlotsFitWorstCase).
	maxNameLen = 64
)

// Kernel-stack layout within the single KStackSize frame:
//
//	[0, ContextSize)          saved hardware context (Section 3.2)
//	[ContextSize, +8)         NMI-critical word: the interrupt-frame slot the
//	                          halt NMI handler needs; corruption here breaks
//	                          the CPU-coordination step of the transfer.
//	[512, 4096)               scratch: live locals and spill slots. The
//	                          syscall gate consumes the live window at
//	                          [512, 640) — a corrupted int there is "read"
//	                          by kernel code and manifests a failure.
const (
	kstackNMIStart     = layout.ContextSize
	kstackNMIEnd       = layout.ContextSize + 8
	kstackScratchStart = 512
	kstackLiveEnd      = 640
)

// Process is the kernel's runtime view of one process. The authoritative
// state is the record set in simulated physical memory that p.Addr anchors;
// the Go fields are a write-through cache the main kernel uses for speed.
type Process struct {
	PID uint32
	// Addr is the physical address of the layout.Proc record.
	Addr uint64
	// D caches the descriptor; every mutation is written through.
	D layout.Proc
	// Ctx is the live register state; it is pushed to the kernel stack on
	// syscall entry and when the halt NMI arrives.
	Ctx layout.Context
	// Prog is the running program.
	Prog Program
	// SyscallAborted is set by resurrection when the process was inside a
	// system call at failure time: the call was aborted with a retryable
	// error (Section 3.5) and the program sees it on its next step.
	SyscallAborted bool
	// Resurrected counts how many microreboots the process has survived.
	Resurrected int
	// Exited reports the process has terminated.
	Exited   bool
	ExitCode int

	// fdNext is the next file descriptor number to hand out.
	fdNext uint32
}

// Procs returns the live processes in creation order.
func (k *Kernel) Procs() []*Process {
	out := make([]*Process, 0, len(k.procOrder))
	for _, pid := range k.procOrder {
		if p, ok := k.procs[pid]; ok && !p.Exited {
			out = append(out, p)
		}
	}
	return out
}

// Lookup returns the process with the given PID, or nil.
func (k *Kernel) Lookup(pid uint32) *Process { return k.procs[pid] }

// patternByte is the pristine filler for kernel stacks, distinct from the
// text pattern so the two corruption classes stay distinguishable in dumps.
func (k *Kernel) patternByte(addr uint64) byte {
	x := addr*0xD1342543DE82EF95 + uint64(k.P.Seed) + 0x5bf03635
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return byte(x)
}

// fillStackPattern writes the pristine pattern over a kernel-stack range.
func (k *Kernel) fillStackPattern(kstack uint64, from, to int) error {
	buf := make([]byte, to-from)
	for i := range buf {
		buf[i] = k.patternByte(kstack + uint64(from+i))
	}
	return k.M.Mem.WriteAt(kstack+uint64(from), buf)
}

// stackRangeIntact compares a kernel-stack range against the pristine
// pattern, reporting the first corrupted offset.
func (k *Kernel) stackRangeIntact(kstack uint64, from, to int) (int, bool) {
	buf := make([]byte, to-from)
	if err := k.M.Mem.ReadAt(kstack+uint64(from), buf); err != nil {
		return from, false
	}
	for i, b := range buf {
		if b != k.patternByte(kstack+uint64(from+i)) {
			return from + i, false
		}
	}
	return 0, true
}

// CreateProcess builds a new process running the named registered program.
// It is the simulation's fork+exec: a kernel stack and page directory are
// allocated, the descriptor record is written and linked into the process
// list, and the program's Boot hook lays out the address space.
func (k *Kernel) CreateProcess(name, program string) (*Process, error) {
	if k.panicState != nil {
		return nil, fmt.Errorf("kernel: panicked: %s", k.panicState.Reason)
	}
	if len(name) > maxNameLen || len(program) > maxNameLen {
		return nil, fmt.Errorf("kernel: process/program name too long")
	}
	factory := LookupProgram(program)
	if factory == nil {
		return nil, fmt.Errorf("kernel: no program registered as %q", program)
	}

	kstackFrame, err := k.Alloc.Alloc(phys.FrameKernelStack)
	if err != nil {
		return nil, err
	}
	kstack := phys.FrameAddr(kstackFrame)
	if err := k.fillStackPattern(kstack, kstackNMIStart, phys.PageSize); err != nil {
		return nil, err
	}

	dirFrame, err := k.Alloc.Alloc(phys.FramePageTable)
	if err != nil {
		return nil, err
	}

	addr, err := k.Heap.Alloc(procSlotSize)
	if err != nil {
		return nil, err
	}

	pid := k.Globals.NextPID
	k.Globals.NextPID++

	p := &Process{
		PID:  pid,
		Addr: addr,
		D: layout.Proc{
			PID:     pid,
			State:   layout.ProcRunnable,
			Name:    name,
			Program: program,
			PageDir: phys.FrameAddr(dirFrame),
			KStack:  kstack,
			Next:    k.Globals.ProcListHead,
		},
		fdNext: 3, // 0-2 notionally reserved for std streams
	}
	// fork() leaves an initial return frame on the new kernel stack, so a
	// process is resurrectable from birth even before its first quantum.
	p.Ctx.Saved = true
	if err := layout.WriteContext(k.M.Mem, kstack, &p.Ctx); err != nil {
		return nil, err
	}
	if err := k.writeProc(p); err != nil {
		return nil, err
	}

	// Link at the head of the kernel process list.
	k.Globals.ProcListHead = addr
	if err := k.syncGlobals(); err != nil {
		return nil, err
	}
	k.indexPut(p)

	k.procs[pid] = p
	k.procOrder = append(k.procOrder, pid)

	p.Prog = factory()
	env := &Env{K: k, P: p}
	if err := p.Prog.Boot(env); err != nil {
		return nil, fmt.Errorf("kernel: boot program %q: %w", program, err)
	}
	k.M.Clock.Advance(StartupCost(program))
	k.logf("created pid %d (%s)", pid, name)
	return p, nil
}

// writeProc re-seals the descriptor record in its slot.
func (k *Kernel) writeProc(p *Process) error {
	return k.writeSlot(p.Addr, procSlotSize, layout.TypeProc, p.D.EncodePayload())
}

// writeSlot seals a record into a fixed-size slot, enforcing the headroom.
func (k *Kernel) writeSlot(addr uint64, slot int, t layout.Type, payload []byte) error {
	if layout.RecordSize(len(payload)) > slot {
		return fmt.Errorf("kernel: %s record (%d bytes) exceeds %d-byte slot", t, layout.RecordSize(len(payload)), slot)
	}
	return k.M.Mem.WriteAt(addr, layout.Seal(t, 0, payload))
}

// readProcRecord fetches the descriptor back out of memory, validating it.
// The main kernel re-reads records on critical paths so injected corruption
// affects it the way it would affect Linux.
func (k *Kernel) readProcRecord(addr uint64) (*layout.Proc, error) {
	return layout.ReadProc(k.M.Mem, addr, k.P.VerifyCRC)
}

// RegisterCrashProcedure records the named crash procedure in the process
// descriptor (Section 3.1: "the address of this procedure is stored in the
// process descriptor"). The name must be registered in the crash-procedure
// registry before resurrection occurs.
func (k *Kernel) RegisterCrashProcedure(p *Process, crashProc string) error {
	if len(crashProc) > maxNameLen {
		return fmt.Errorf("kernel: crash procedure name too long")
	}
	p.D.CrashProc = crashProc
	if err := k.writeProc(p); err != nil {
		return err
	}
	k.indexPut(p)
	return nil
}

// indexPut writes the process through to the candidate index (no-op when
// the index is off or full — the full-walk fallback still finds it).
func (k *Kernel) indexPut(p *Process) {
	if k.CandIndex == nil {
		return
	}
	//owvet:allow errdrop: a full or unwritable index only loses the accelerator entry, never the candidate
	_ = k.CandIndex.Put(p.PID, p.Addr, p.D.Name, p.D.Program, p.D.CrashProc)
}

// Exit terminates the process and unlinks its descriptor from the kernel
// process list.
func (k *Kernel) Exit(p *Process, code int) error {
	p.Exited = true
	p.ExitCode = code
	p.D.State = layout.ProcZombie
	if err := k.writeProc(p); err != nil {
		return err
	}
	if k.CandIndex != nil {
		//owvet:allow errdrop: a failed tombstone leaves a zombie entry the salvage-time descriptor check drops anyway
		_ = k.CandIndex.Delete(p.PID)
	}
	// Unlink from the list so resurrection does not see a zombie.
	if k.Globals.ProcListHead == p.Addr {
		k.Globals.ProcListHead = p.D.Next
		if err := k.syncGlobals(); err != nil {
			return err
		}
	} else {
		cur := k.Globals.ProcListHead
		for cur != 0 {
			d, err := k.readProcRecord(cur)
			if err != nil {
				return err
			}
			if d.Next == p.Addr {
				d.Next = p.D.Next
				if cp, ok := k.procs[d.PID]; ok && cp.Addr == cur {
					cp.D.Next = d.Next
				}
				if err := k.writeSlot(cur, procSlotSize, layout.TypeProc, d.EncodePayload()); err != nil {
					return err
				}
				break
			}
			cur = d.Next
		}
	}
	k.logf("pid %d exited (code %d)", p.PID, code)
	return nil
}

// SaveContextToStack pushes the live register state onto the kernel stack,
// as the syscall entry and the halt NMI handler do.
func (k *Kernel) SaveContextToStack(p *Process) error {
	p.Ctx.Saved = true
	return layout.WriteContext(k.M.Mem, p.D.KStack, &p.Ctx)
}

// KernelStackFrames lists the kernel-stack frames of live processes, a
// fault-injection target set.
func (k *Kernel) KernelStackFrames() []int {
	var out []int
	for _, p := range k.Procs() {
		out = append(out, phys.FrameOf(p.D.KStack))
	}
	return out
}
