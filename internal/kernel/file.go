package kernel

import (
	"errors"
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// ErrBadFD reports an operation on an unknown file descriptor.
var ErrBadFD = errors.New("kernel: bad file descriptor")

// maxOpenPath bounds paths so a FileRec always fits its slot.
const maxOpenPath = 256

// lookupFile walks the process's open-file list for fd, returning the
// record and its address. The walk re-reads records from memory, so
// injected corruption of the fd table surfaces here.
func (k *Kernel) lookupFile(p *Process, fd uint32) (*layout.FileRec, uint64, error) {
	cur := p.D.Files
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d fd table loop", p.PID)
		}
		rec, err := layout.ReadFileRec(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d file record: %v", p.PID, err)
		}
		if rec.FD == fd {
			return rec, cur, nil
		}
		cur = rec.Next
	}
	return nil, 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
}

// writeFileRec re-seals a file record in its slot.
func (k *Kernel) writeFileRec(addr uint64, rec *layout.FileRec) error {
	return k.writeSlot(addr, fileSlotSize, layout.TypeFile, rec.EncodePayload())
}

// openFile implements the open path: it validates flags, optionally creates
// the file, and links a new FileRec into the process's fd table.
func (k *Kernel) openFile(p *Process, path string, flags uint32) (uint32, error) {
	if len(path) > maxOpenPath {
		return 0, fmt.Errorf("kernel: path too long (%d bytes)", len(path))
	}
	exists := k.FS.Exists(path)
	if !exists {
		if flags&layout.FlagCreate == 0 {
			return 0, fmt.Errorf("kernel: open %q: no such file", path)
		}
		if err := k.FS.Create(path); err != nil {
			return 0, err
		}
	} else if flags&layout.FlagTrunc != 0 {
		if err := k.FS.Truncate(path, 0); err != nil {
			return 0, err
		}
	}
	offset := uint64(0)
	if flags&layout.FlagAppend != 0 {
		size, err := k.FS.Size(path)
		if err != nil {
			return 0, err
		}
		offset = uint64(size)
	}
	fd := p.fdNext
	p.fdNext++
	rec := layout.FileRec{
		FD:     fd,
		Path:   path,
		Flags:  flags,
		Offset: offset,
		Next:   p.D.Files,
	}
	addr, err := k.Heap.Alloc(fileSlotSize)
	if err != nil {
		return 0, err
	}
	if err := k.writeFileRec(addr, &rec); err != nil {
		return 0, err
	}
	p.D.Files = addr
	if err := k.writeProc(p); err != nil {
		return 0, err
	}
	return fd, nil
}

// closeFile flushes the file's dirty cache pages and unlinks the record.
func (k *Kernel) closeFile(p *Process, fd uint32) error {
	rec, addr, err := k.lookupFile(p, fd)
	if err != nil {
		return err
	}
	if err := k.flushFile(rec, addr); err != nil {
		return err
	}
	if err := k.freeCachePages(rec, addr); err != nil {
		return err
	}
	// Unlink from the fd list.
	if p.D.Files == addr {
		p.D.Files = rec.Next
		if err := k.writeProc(p); err != nil {
			return err
		}
	} else {
		cur := p.D.Files
		for cur != 0 {
			r, err := layout.ReadFileRec(k.M.Mem, cur, k.P.VerifyCRC)
			if err != nil {
				return k.oopsf(OopsBadStructure, "pid %d file record: %v", p.PID, err)
			}
			if r.Next == addr {
				r.Next = rec.Next
				if err := k.writeFileRec(cur, r); err != nil {
					return err
				}
				break
			}
			cur = r.Next
		}
	}
	k.Heap.Free(addr, fileSlotSize)
	return nil
}

// readFile serves a read at the current offset, preferring cached pages so
// buffered writes are visible before they hit the disk.
func (k *Kernel) readFile(p *Process, fd uint32, buf []byte) (int, error) {
	rec, addr, err := k.lookupFile(p, fd)
	if err != nil {
		return 0, err
	}
	n, err := k.readFileAt(rec, int64(rec.Offset), buf)
	if err != nil {
		return 0, err
	}
	rec.Offset += uint64(n)
	if err := k.writeFileRec(addr, rec); err != nil {
		return 0, err
	}
	return n, nil
}

// readFileAt reads through the page cache at an explicit offset.
func (k *Kernel) readFileAt(rec *layout.FileRec, off int64, buf []byte) (int, error) {
	n, err := k.FS.ReadAt(rec.Path, off, buf)
	if err != nil {
		return 0, err
	}
	// Overlay any cached pages (they may be dirtier than the disk). Also
	// extend n if cached pages lie beyond the on-disk size.
	cur := rec.CachePages
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return 0, k.oopsf(OopsBadStructure, "page cache list loop for %q", rec.Path)
		}
		cp, cerr := layout.ReadCachePage(k.M.Mem, cur, k.P.VerifyCRC)
		if cerr != nil {
			return 0, k.oopsf(OopsBadStructure, "page cache record: %v", cerr)
		}
		pageStart := int64(cp.FileOff)
		pageEnd := pageStart + int64(cp.Bytes)
		readEnd := off + int64(len(buf))
		if pageEnd > off && pageStart < readEnd {
			from := pageStart
			if from < off {
				from = off
			}
			to := pageEnd
			if to > readEnd {
				to = readEnd
			}
			frameData := make([]byte, to-from)
			src := cp.Frame*phys.PageSize + uint64(from-pageStart)
			if err := k.M.Mem.ReadAt(src, frameData); err != nil {
				return 0, k.oopsf(OopsBadPageTable, "page cache frame read: %v", err)
			}
			copy(buf[from-off:], frameData)
			if int(to-off) > n {
				n = int(to - off)
			}
		}
		cur = cp.Next
	}
	return n, nil
}

// writeFile buffers a write in the page cache at the current offset,
// marking pages dirty. Data does not reach the disk until fsync, close or
// the crash kernel's dirty-buffer flush during resurrection.
func (k *Kernel) writeFile(p *Process, fd uint32, data []byte) (int, error) {
	rec, addr, err := k.lookupFile(p, fd)
	if err != nil {
		return 0, err
	}
	if rec.Flags&layout.FlagWrite == 0 {
		return 0, fmt.Errorf("kernel: fd %d not open for writing", fd)
	}
	off := int64(rec.Offset)
	written := 0
	for written < len(data) {
		pageOff := (off + int64(written)) &^ int64(phys.PageSize-1)
		inPage := int(off) + written - int(pageOff)
		n := phys.PageSize - inPage
		if n > len(data)-written {
			n = len(data) - written
		}
		cpAddr, cp, cerr := k.cachePageFor(rec, addr, uint64(pageOff))
		if cerr != nil {
			return written, cerr
		}
		dst := cp.Frame*phys.PageSize + uint64(inPage)
		if werr := k.M.Mem.WriteAt(dst, data[written:written+n]); werr != nil {
			return written, k.oopsf(OopsBadPageTable, "page cache write: %v", werr)
		}
		cp.Dirty = true
		if uint32(inPage+n) > cp.Bytes {
			cp.Bytes = uint32(inPage + n)
		}
		if werr := layout.WriteCachePage(k.M.Mem, cpAddr, cp); werr != nil {
			return written, werr
		}
		written += n
	}
	rec.Offset += uint64(written)
	// Re-read the record in case cachePageFor updated its head.
	fresh, ferr := layout.ReadFileRec(k.M.Mem, addr, k.P.VerifyCRC)
	if ferr != nil {
		return written, k.oopsf(OopsBadStructure, "file record reread: %v", ferr)
	}
	fresh.Offset = rec.Offset
	if err := k.writeFileRec(addr, fresh); err != nil {
		return written, err
	}
	return written, nil
}

// cachePageFor finds or creates the cache page covering fileOff (which must
// be page aligned), filling new pages from disk.
func (k *Kernel) cachePageFor(rec *layout.FileRec, recAddr uint64, fileOff uint64) (uint64, *layout.CachePage, error) {
	cur := rec.CachePages
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return 0, nil, k.oopsf(OopsBadStructure, "page cache list loop for %q", rec.Path)
		}
		cp, err := layout.ReadCachePage(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return 0, nil, k.oopsf(OopsBadStructure, "page cache record: %v", err)
		}
		if cp.FileOff == fileOff {
			return cur, cp, nil
		}
		cur = cp.Next
	}
	frame, err := k.allocFrame(phys.FramePageCache)
	if err != nil {
		return 0, nil, err
	}
	// Fill from disk so partial-page writes preserve surrounding bytes.
	fill := make([]byte, phys.PageSize)
	valid, _ := k.FS.ReadAt(rec.Path, int64(fileOff), fill)
	if err := k.M.Mem.WriteAt(phys.FrameAddr(frame), fill); err != nil {
		return 0, nil, k.oopsf(OopsBadPageTable, "page cache fill: %v", err)
	}
	cp := &layout.CachePage{
		FileOff: fileOff,
		Frame:   uint64(frame),
		Bytes:   uint32(valid),
		Next:    rec.CachePages,
	}
	cpAddr, _, err := k.Heap.WriteNewRecord(layout.TypeCachePage, cp.EncodePayload())
	if err != nil {
		return 0, nil, err
	}
	rec.CachePages = cpAddr
	if err := k.writeFileRec(recAddr, rec); err != nil {
		return 0, nil, err
	}
	return cpAddr, cp, nil
}

// flushFile writes the file's dirty cache pages to disk and clears their
// dirty flags — the fsync path, and the operation the crash kernel repeats
// during resurrection.
func (k *Kernel) flushFile(rec *layout.FileRec, recAddr uint64) error {
	cur := rec.CachePages
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return k.oopsf(OopsBadStructure, "page cache list loop for %q", rec.Path)
		}
		cp, err := layout.ReadCachePage(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return k.oopsf(OopsBadStructure, "page cache record: %v", err)
		}
		if cp.Dirty && cp.Bytes > 0 {
			buf := make([]byte, cp.Bytes)
			if rerr := k.M.Mem.ReadAt(cp.Frame*phys.PageSize, buf); rerr != nil {
				return k.oopsf(OopsBadPageTable, "page cache frame read: %v", rerr)
			}
			if _, werr := k.diskWrite(rec.Path, int64(cp.FileOff), buf); werr != nil {
				return werr
			}
			k.M.Clock.Advance(k.cost.DiskWriteCost(int64(cp.Bytes)))
			cp.Dirty = false
			if werr := layout.WriteCachePage(k.M.Mem, cur, cp); werr != nil {
				return werr
			}
		}
		cur = cp.Next
	}
	return nil
}

// diskWrite issues one page-cache flush to the block layer: through the
// crash model when one is attached — where it stays volatile until a
// barrier — or directly to the platter otherwise.
func (k *Kernel) diskWrite(path string, off int64, buf []byte) (int, error) {
	if k.Disk != nil {
		return k.Disk.Write(path, off, buf)
	}
	return k.FS.WriteAt(path, off, buf, true)
}

// freeCachePages releases a closed file's cache frames and records.
func (k *Kernel) freeCachePages(rec *layout.FileRec, recAddr uint64) error {
	cur := rec.CachePages
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return k.oopsf(OopsBadStructure, "page cache list loop for %q", rec.Path)
		}
		cp, err := layout.ReadCachePage(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return k.oopsf(OopsBadStructure, "page cache record: %v", err)
		}
		k.Alloc.Free(int(cp.Frame))
		k.Heap.Free(cur, layout.RecordSize(len(cp.EncodePayload())))
		cur = cp.Next
	}
	rec.CachePages = 0
	return k.writeFileRec(recAddr, rec)
}

// seekFile sets the file offset.
func (k *Kernel) seekFile(p *Process, fd uint32, off uint64) error {
	rec, addr, err := k.lookupFile(p, fd)
	if err != nil {
		return err
	}
	rec.Offset = off
	return k.writeFileRec(addr, rec)
}
