// Package kernel implements the simulated monolithic operating system
// kernel that Otherworld microreboots. It is the reproduction's stand-in
// for the paper's modified Linux 2.6.18: processes, two-level page tables,
// demand paging with swap, a VFS with a dirty-tracked page cache, terminals,
// signals, System-V shared memory, pipes and sockets, a system-call layer
// with the optional user-space-protection page-table switch, and the panic
// and transfer-of-control paths.
//
// All resurrection-critical kernel state is stored as layout records in the
// machine's simulated physical memory, anchored at a fixed physical address,
// so the crash kernel (package resurrect) can rebuild processes by parsing
// raw memory — and so injected faults corrupt exactly the bytes resurrection
// later depends on.
package kernel

import (
	"fmt"

	"otherworld/internal/disk"
	"otherworld/internal/fs"
	"otherworld/internal/hw"
	"otherworld/internal/layout"
	"otherworld/internal/metrics"
	"otherworld/internal/phys"
	"otherworld/internal/sim"
	"otherworld/internal/trace"
)

// GlobalsFrame is the fixed physical frame of the kernel globals anchor.
// Like the paper's kernel, the address is a compile-time constant, which is
// how the crash kernel locates the main kernel's process list (Section 3.3).
const GlobalsFrame = 2

// GlobalsAddr is the physical address of the globals record.
const GlobalsAddr = uint64(GlobalsFrame) * phys.PageSize

// TextFrames is the size of the kernel text region in frames (256 KiB of
// modelled code; the fault injector targets this region).
const TextFrames = 64

// KStackSize is the per-thread kernel stack size (one frame).
const KStackSize = phys.PageSize

// Hardening collects the robustness fixes the paper added to lift the
// successful-resurrection rate from 89% to 97% (Section 6). Each is
// independently togglable for the ablation campaign.
type Hardening struct {
	// WatchdogNMI converts detected system stalls into an NMI that starts
	// the microreboot (software lock detection + hardware watchdog).
	WatchdogNMI bool
	// DoubleFaultMicroreboot fixes the double-fault handler to invoke the
	// crash kernel instead of stopping the system (the KDump behaviour
	// the paper corrected).
	DoubleFaultMicroreboot bool
	// NoStackPrintRecursion prevents infinite recursion while printing a
	// corrupted stack during panic.
	NoStackPrintRecursion bool
	// NoTrustCurrent stops the panic path from relying on the validity of
	// the currently executing process's descriptor.
	NoTrustCurrent bool
}

// FullHardening enables every fix.
func FullHardening() Hardening {
	return Hardening{
		WatchdogNMI:            true,
		DoubleFaultMicroreboot: true,
		NoStackPrintRecursion:  true,
		NoTrustCurrent:         true,
	}
}

// NoHardening disables every fix, reproducing the paper's initial 89%
// configuration.
func NoHardening() Hardening { return Hardening{} }

// Params configures a kernel instance.
type Params struct {
	// VerifyCRC enables checksum validation when the kernel (and later
	// the crash kernel) reads its own records — the Section 4 integrity
	// hardening.
	VerifyCRC bool
	// UserSpaceProtection enables the Section 4 protected mode: on every
	// system call the kernel switches to a page-table set that does not
	// map user memory, flushing the TLB, and any direct kernel write to a
	// user frame faults instead of corrupting application data.
	UserSpaceProtection bool
	// Hardening selects the Section 6 robustness fixes.
	Hardening Hardening
	// SwapDevice is the symbolic name of this kernel's swap partition.
	// The main and crash kernels use different partitions (Section 3.2).
	SwapDevice string
	// CrashRegion is the reservation holding the crash-kernel image and
	// working memory.
	CrashRegion phys.Region
	// Seed drives the kernel's internal nondeterminism (fault
	// manifestation, eviction choice).
	Seed int64
	// Net is the external network wire, shared across kernel generations.
	Net *Network
	// Consoles is the external console hub, shared across generations.
	Consoles *ConsoleHub
	// FastBoot models the Section 7 initialization optimizations: the
	// crash kernel ran part of its initialization when it was installed
	// and reuses the dead kernel's device information instead of a full
	// probe, cutting boot time.
	FastBoot bool
}

// SpeculationResolver turns a speculated (copy-on-access) page into a
// resident one. The resurrection engine's lazy install registers one on the
// crash kernel: the page-fault path calls ResolveSpeculated on first touch,
// and the scheduler drives SweepSpeculated between quanta so every
// speculation is eventually resolved even if never touched.
type SpeculationResolver interface {
	// ResolveSpeculated validates and privately copies the speculated page
	// at page-aligned va, replacing the PTE with a resident mapping. It must
	// leave the page resident even when validation fails (the fallback path
	// copies the scan-time snapshot instead).
	ResolveSpeculated(p *Process, va uint64) error
	// SweepSpeculated resolves up to limit pending speculations in a
	// deterministic order, returning how many pages it resolved or released.
	SweepSpeculated(limit int) (int, error)
}

// Kernel is a running operating system kernel instance.
type Kernel struct {
	M  *hw.Machine
	FS *fs.FlatFS
	P  Params

	// Alloc hands out this kernel's physical frames.
	Alloc *phys.FrameAllocator
	// Heap allocates kernel records inside heap frames.
	Heap *Heap
	// Text describes the kernel text region and its corruption state.
	Text *Text

	// Globals mirrors the globals record; every mutation is written
	// through to GlobalsAddr (or the crash kernel's private anchor).
	Globals layout.Globals
	// globalsAddr is where this kernel keeps its globals record. The
	// main kernel uses the fixed GlobalsAddr; a crash kernel keeps a
	// private anchor inside its reserved region until it morphs.
	globalsAddr uint64

	// procs caches runtime process state keyed by PID; authoritative
	// state lives in the records the cache points at.
	procs map[uint32]*Process
	// procOrder preserves creation order for deterministic scheduling.
	procOrder []uint32

	swap      *disk.SwapDevice
	terminals map[uint32]*ttyRuntime

	// Disk is the block-layer crash model beneath the page cache. When
	// set, every page-cache flush routes through it (volatile until a
	// barrier) and fsync issues the barrier; nil means writes reach the
	// platter directly and durably, the pre-model behavior. It is machine
	// state — core attaches the same model to every kernel generation.
	Disk *disk.CrashModel

	rng  *sim.RNG
	cost sim.CostModel

	// Perf accumulates the cycle accounting behind Table 3.
	Perf PerfCounters

	// panicState is non-nil once the kernel has failed.
	panicState *PanicEvent

	// inCopyWindow is set while a copyin/copyout helper is legitimately
	// accessing user memory under user-space protection.
	inCopyWindow bool

	// isCrashKernel is true from crash-kernel boot until the morph.
	isCrashKernel bool

	// Tracer is the crash-surviving flight recorder: a ring of binary
	// events in an unprotected sub-region of the crash reservation that
	// the crash kernel parses after a failure (package trace). It is
	// attached by core after boot; nil (tracing off) is always safe.
	Tracer *trace.Ring

	// Metrics is the machine-lifetime metrics registry, attached by core
	// alongside the tracer so kernel-resident workloads (the WAL app's
	// commit-to-durable histogram, for one) can publish instruments; nil
	// (metrics plane off) is always safe — Registry methods are nil-tolerant.
	Metrics *metrics.Registry

	// Spec resolves speculated (copy-on-access) pages left behind by the
	// lazy resurrection install; nil means no speculations are outstanding
	// and a speculated PTE is a page-table corruption.
	Spec SpeculationResolver

	// CandIndex is the crash-surviving candidate index writer, attached by
	// core alongside the tracer: every process create/exit and
	// crash-procedure registration is written through so the crash kernel
	// can seed resurrection scanners without walking the whole process
	// list. nil (index off) is always safe.
	CandIndex *layout.IndexWriter

	// resurrectionLog collects one-line events for the narrated demo.
	Log []string
}

// IsCrashKernel reports whether this kernel is (still) the crash kernel:
// booted after a failure and not yet morphed into the main kernel. The
// paper's init scripts use exactly this query to select the second swap
// partition.
func (k *Kernel) IsCrashKernel() bool { return k.isCrashKernel }

// BootOptions selects where a kernel boots from.
type BootOptions struct {
	// Region is the physical memory the kernel may use. A cold-booted
	// main kernel gets everything except the crash reservation; a crash
	// kernel gets only the reservation.
	Region phys.Region
	// GlobalsAt overrides the globals anchor address (crash kernels keep
	// a private anchor until morphing). Zero means the fixed GlobalsAddr.
	GlobalsAt uint64
	// BootCount is carried across morphs.
	BootCount uint32
	// IsCrashKernel marks a kernel booting inside the reservation after a
	// failure. Initialization scripts query it to pick the right swap
	// partition, and drivers may use it to re-initialize differently
	// (Section 3.2 and footnote 2).
	IsCrashKernel bool
}

// Boot initializes a kernel over the machine. It claims the null, IDT and
// globals frames, installs the IDT, lays out kernel text, creates the heap,
// opens the swap partition and writes the globals anchor.
func Boot(m *hw.Machine, filesystem *fs.FlatFS, p Params, opt BootOptions) (*Kernel, error) {
	k := &Kernel{
		M:           m,
		FS:          filesystem,
		P:           p,
		procs:       make(map[uint32]*Process),
		terminals:   make(map[uint32]*ttyRuntime),
		rng:         sim.NewRNG(p.Seed),
		cost:        sim.DefaultCostModel(),
		globalsAddr: opt.GlobalsAt,
	}
	k.isCrashKernel = opt.IsCrashKernel
	if k.globalsAddr == 0 {
		k.globalsAddr = GlobalsAddr
	}

	k.Alloc = phys.NewFrameAllocator(m.Mem, opt.Region)

	// Claim the fixed anchor frames when they are inside our region.
	if opt.Region.Contains(0) {
		if err := k.Alloc.Claim(0, phys.FrameKernelText); err != nil {
			return nil, fmt.Errorf("kernel: claim null frame: %w", err)
		}
	}
	if opt.Region.Contains(GlobalsFrame) && k.globalsAddr == GlobalsAddr {
		if err := k.Alloc.Claim(GlobalsFrame, phys.FrameKernelHeap); err != nil {
			return nil, fmt.Errorf("kernel: claim globals frame: %w", err)
		}
	}

	text, err := NewText(m.Mem, k.Alloc, opt.Region, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("kernel: lay out text: %w", err)
	}
	k.Text = text

	// Point the interrupt descriptor table at this kernel's handlers.
	if opt.Region.Contains(hw.IDTFrame) {
		if err := hw.InstallIDT(m.Mem, k.Alloc, k.handlerBase()); err != nil {
			return nil, fmt.Errorf("kernel: install IDT: %w", err)
		}
	} else {
		// A crash kernel booting inside its reservation still owns the
		// machine IDT; rewrite the entries without claiming the frame.
		for v := 0; v < hw.NumVectors; v++ {
			if err := hw.WriteIDTEntry(m.Mem, v, k.handlerBase()+uint64(v)); err != nil {
				return nil, fmt.Errorf("kernel: rewrite IDT: %w", err)
			}
		}
	}

	k.Heap = NewHeap(m.Mem, k.Alloc)

	// A crash kernel booting inside its reservation must not clobber the
	// dead main kernel's globals at the fixed anchor before resurrection
	// parses them; it keeps a private anchor until it morphs.
	if k.globalsAddr == GlobalsAddr && !opt.Region.Contains(GlobalsFrame) {
		f, err := k.Alloc.Alloc(phys.FrameKernelHeap)
		if err != nil {
			return nil, fmt.Errorf("kernel: private globals frame: %w", err)
		}
		k.globalsAddr = phys.FrameAddr(f)
	}

	if p.SwapDevice != "" {
		dev, err := m.Bus.Open(p.SwapDevice)
		if err != nil {
			return nil, fmt.Errorf("kernel: open swap: %w", err)
		}
		k.swap = disk.NewSwapDevice(dev)
	}

	k.Globals = layout.Globals{
		Version:           1,
		BootCount:         opt.BootCount,
		NextPID:           1,
		CrashRegionStart:  uint64(p.CrashRegion.Start),
		CrashRegionFrames: uint64(p.CrashRegion.Frames),
		HeapStart:         uint64(opt.Region.Start),
		HeapFrames:        uint64(opt.Region.Frames),
	}
	swapAddr, err := k.writeSwapTable()
	if err != nil {
		return nil, err
	}
	k.Globals.SwapTable = swapAddr
	if err := k.syncGlobals(); err != nil {
		return nil, err
	}

	// Driver probing walks the machine's device complement; the fast-boot
	// path (Section 7) reuses the dead kernel's device information and
	// pays only sanity checks for re-probeable devices.
	probe := k.cost.DriverProbe
	if len(m.Devices) > 0 {
		probe = hw.ProbeAll(m.Devices)
	}
	if p.FastBoot {
		if len(m.Devices) > 0 {
			probe = hw.ProbeChangedOnly(m.Devices)
		} else {
			probe = k.cost.DriverProbe / 5
		}
		m.Clock.Advance(k.cost.KernelInit/3 + probe + k.cost.FSMount)
	} else {
		m.Clock.Advance(k.cost.KernelInit + probe + k.cost.FSMount)
	}
	return k, nil
}

// handlerBase is the text address interrupt handlers notionally live at.
func (k *Kernel) handlerBase() uint64 {
	return k.Text.Base() + uint64(k.Text.Func(FuncInterrupt).Start)
}

// writeSwapTable builds and stores the swap-area descriptor array.
func (k *Kernel) writeSwapTable() (uint64, error) {
	var t layout.SwapTable
	if k.swap != nil {
		t.Areas[0] = layout.SwapArea{
			Device: k.P.SwapDevice,
			Active: true,
			Slots:  uint32(k.swap.Slots()),
		}
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeSwapTable, t.EncodePayload())
	return addr, err
}

// syncGlobals writes the cached globals through to memory.
func (k *Kernel) syncGlobals() error {
	return layout.WriteGlobals(k.M.Mem, k.globalsAddr, &k.Globals)
}

// GlobalsAnchor returns the physical address of this kernel's globals
// record.
func (k *Kernel) GlobalsAnchor() uint64 { return k.globalsAddr }

// Swap returns the kernel's swap device (nil if none configured).
func (k *Kernel) Swap() *disk.SwapDevice { return k.swap }

// RNG exposes the kernel's deterministic random source, used by the fault
// injector so one seed replays a whole experiment.
func (k *Kernel) RNG() *sim.RNG { return k.rng }

// Cost returns the virtual-time cost model.
func (k *Kernel) Cost() sim.CostModel { return k.cost }

// Panicked returns the pending panic event, or nil while healthy.
func (k *Kernel) Panicked() *PanicEvent { return k.panicState }

// logf appends a narrated event line.
func (k *Kernel) logf(format string, args ...any) {
	k.Log = append(k.Log, fmt.Sprintf(format, args...))
}

// traceCounters snapshots the syscall/pagefault counters into the flight
// recorder; the ring's newest snapshot tells the crash kernel how much work
// the dead kernel had done.
func (k *Kernel) traceCounters() {
	k.Tracer.Record(trace.Event{
		Kind: trace.KindCounters,
		A:    k.Perf.Syscalls,
		B:    trace.PackCounters(k.Perf.PageFaults, k.Perf.SwapIns),
	})
}

// tracePanic writes the failure context into the flight recorder: panic
// kind and reason, the failing CPU, and the PID/PC/syscall of the thread it
// was executing. This is the last event the main kernel ever records — the
// crash kernel reads it back out of raw memory after the microreboot.
func (k *Kernel) tracePanic() {
	if k.Tracer == nil || k.panicState == nil {
		return
	}
	ev := trace.Event{
		Kind: trace.KindPanic,
		CPU:  uint8(k.panicState.CPU),
		Note: k.panicState.Reason,
	}
	if p := k.currentProcess(); p != nil {
		ev.PID = p.PID
		ev.PC = p.Ctx.PC
		ev.A, ev.B = trace.PackPanic(uint8(k.panicState.Kind), uint8(k.panicState.Oops),
			p.Ctx.InSyscall, p.Ctx.SyscallNo)
	} else {
		ev.A, ev.B = trace.PackPanic(uint8(k.panicState.Kind), uint8(k.panicState.Oops), false, 0)
	}
	k.traceCounters()
	k.Tracer.Record(ev)
}
