package kernel

// Cycle cost constants for the performance model behind Table 3. The
// absolute values are calibrated for a mid-2000s x86 core; only ratios
// matter for the reproduced overhead percentages.
const (
	// CyclesPerAccess is the cost of a TLB-hit memory access.
	CyclesPerAccess = 1
	// TLBMissPenalty is the extra cost of a hardware page-table walk.
	TLBMissPenalty = 30
	// SyscallBaseCycles is the fixed kernel entry/exit cost.
	SyscallBaseCycles = 300
	// PTSwitchCycles is the cost of reloading the page-table base
	// register once; protected mode pays it twice per system call (switch
	// to the kernel-only set on entry, back on exit), each reload also
	// flushing the TLB (Section 4).
	PTSwitchCycles = 350
)

// PerfCounters accumulates the kernel's performance and fault accounting.
type PerfCounters struct {
	// Cycles is total virtual CPU work: compute, memory and syscalls.
	Cycles uint64
	// MemAccesses counts TLB-filtered memory accesses.
	MemAccesses uint64
	// Syscalls counts completed system calls.
	Syscalls uint64
	// PTSwitches counts protected-mode page-table set switches.
	PTSwitches uint64
	// Steps counts program steps executed.
	Steps uint64
	// PageFaults counts non-resident page touches (demand fills and
	// swap-ins both start as faults).
	PageFaults uint64
	// SwapIns and SwapOuts count demand-paging traffic.
	SwapIns  uint64
	SwapOuts uint64
	// WildWrites counts stray kernel stores attempted; Trapped were
	// detected by protection, Landed silently corrupted memory, and
	// PageTable counts landed writes that hit page-table frames (the
	// corruption class that can defeat user-space protection, as in the
	// paper's one residual MySQL corruption).
	WildWrites          uint64
	WildWritesTrapped   uint64
	WildWritesLanded    uint64
	WildWritesPageTable uint64
}

// chargeAccess runs one memory access through the TLB and charges cycles.
func (k *Kernel) chargeAccess(vpn uint64) {
	k.Perf.MemAccesses++
	if k.M.TLB.Access(vpn) {
		k.Perf.Cycles += CyclesPerAccess
	} else {
		k.Perf.Cycles += CyclesPerAccess + TLBMissPenalty
	}
}

// ChargeCompute charges pure computation cycles (no memory traffic), used
// by workload profiles to model an application's non-memory work.
func (k *Kernel) ChargeCompute(cycles uint64) {
	k.Perf.Cycles += cycles
}
