package kernel

import (
	"otherworld/internal/layout"
)

// counterTraceInterval is the syscall-counter snapshot period for the
// flight recorder.
const counterTraceInterval = 64

// System call numbers, recorded in the saved context so resurrection can
// report which call was aborted.
const (
	SysNoOpen uint16 = iota + 1
	SysNoClose
	SysNoRead
	SysNoWrite
	SysNoFsync
	SysNoSeek
	SysNoMmap
	SysNoCrashProc
	SysNoTermOpen
	SysNoTermWrite
	SysNoTermRead
	SysNoSigAction
	SysNoShmGet
	SysNoPipe
	SysNoPipeWrite
	SysNoPipeRead
	SysNoSockOpen
	SysNoSockSend
	SysNoSockRecv
	SysNoExit
)

// syscall is the system-call gate. It saves the caller's context on the
// kernel stack (so a crash mid-call is recoverable by aborting the call,
// Section 3.5), performs the protected-mode page-table switch with its TLB
// flushes (Section 4), models the gate and handler code executing — where
// injected text corruption manifests — and models the kernel reading its
// stack locals, where injected stack corruption manifests.
func (k *Kernel) syscall(p *Process, no uint16, fn FuncID, body func() error) error {
	if k.panicState != nil {
		return k.panicState
	}
	p.Ctx.InSyscall = true
	p.Ctx.SyscallNo = no
	if err := k.SaveContextToStack(p); err != nil {
		return k.oopsf(OopsBadStructure, "context save on syscall entry: %v", err)
	}

	k.Perf.Syscalls++
	k.Perf.Cycles += SyscallBaseCycles
	// Periodic counter snapshots give the post-mortem ring a progress
	// baseline even when the panic path itself could not run.
	if k.Tracer != nil && k.Perf.Syscalls%counterTraceInterval == 0 {
		k.traceCounters()
	}
	if k.P.UserSpaceProtection {
		// Switch to the kernel-only page-table set: the TLB entries for
		// user pages are gone until the switch back.
		k.M.TLB.Flush()
		k.Perf.PTSwitches++
		k.Perf.Cycles += PTSwitchCycles
	}

	err := k.runGateAndBody(p, fn, body)

	if k.P.UserSpaceProtection {
		k.M.TLB.Flush()
		k.Perf.PTSwitches++
		k.Perf.Cycles += PTSwitchCycles
	}
	if k.panicState == nil {
		p.Ctx.InSyscall = false
		if serr := k.SaveContextToStack(p); serr != nil {
			return k.oopsf(OopsBadStructure, "context save on syscall exit: %v", serr)
		}
	}
	return err
}

// runGateAndBody executes the gate code, consumes the live stack window and
// runs the handler.
func (k *Kernel) runGateAndBody(p *Process, fn FuncID, body func() error) error {
	if behave := k.executeKernelFunc(FuncSyscallEntry, p); behave != BehaveBenign {
		return k.manifest(behave, "syscall-entry")
	}
	// The gate spills and reloads locals in the live stack window; a
	// corrupted int there is consumed by kernel code now.
	if _, ok := k.stackRangeIntact(p.D.KStack, kstackScratchStart, kstackLiveEnd); !ok {
		// Repair the window (the routine overwrites its locals as it
		// proceeds), then let the consumed garbage take effect.
		_ = k.fillStackPattern(p.D.KStack, kstackScratchStart, kstackLiveEnd)
		behave := k.Text.decideBehavior(k.rng.Float64())
		if behave == BehaveWildWriteSilent {
			k.wildWrite()
			behave = BehaveBenign
		}
		if behave != BehaveBenign {
			return k.manifest(behave, "stack-local")
		}
	}
	if fn != FuncSyscallEntry {
		if behave := k.executeKernelFunc(fn, p); behave != BehaveBenign {
			return k.manifest(behave, funcNames[fn])
		}
	}
	return body()
}

// Env is the user-mode execution environment handed to programs: their
// window onto the address space and the system-call interface.
type Env struct {
	K *Kernel
	P *Process
}

// PID returns the process ID.
func (e *Env) PID() uint32 { return e.P.PID }

// PC returns the program counter (step count).
func (e *Env) PC() uint64 { return e.P.Ctx.PC }

// SyscallAborted reports whether the last microreboot aborted an in-flight
// system call; the program should retry the call (Section 3.5). Reading
// clears the flag.
func (e *Env) SyscallAborted() bool {
	was := e.P.SyscallAborted
	e.P.SyscallAborted = false
	return was
}

// Resurrected reports how many microreboots this process has survived.
func (e *Env) Resurrected() int { return e.P.Resurrected }

// Read copies user memory into buf (a user-mode load).
func (e *Env) Read(va uint64, buf []byte) error { return e.K.ReadVM(e.P, va, buf) }

// Write copies buf into user memory (a user-mode store).
func (e *Env) Write(va uint64, buf []byte) error { return e.K.WriteVM(e.P, va, buf) }

// ReadU64 loads a little-endian word from user memory.
func (e *Env) ReadU64(va uint64) (uint64, error) {
	var b [8]byte
	if err := e.Read(va, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteU64 stores a little-endian word to user memory.
func (e *Env) WriteU64(va uint64, v uint64) error {
	b := []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
	return e.Write(va, b)
}

// Access models n user-mode accesses over a page span, for TLB traffic.
func (e *Env) Access(va uint64, pages, n int) error {
	return e.K.AccessPattern(e.P, va, pages, n)
}

// Compute charges pure computation cycles.
func (e *Env) Compute(cycles uint64) { e.K.ChargeCompute(cycles) }

// MapAnon maps an anonymous region.
func (e *Env) MapAnon(va, length uint64, prot uint8) error {
	return e.K.syscall(e.P, SysNoMmap, FuncMmap, func() error {
		return e.K.MapRegion(e.P, va, length, prot, layout.RegionAnon, 0, 0)
	})
}

// Open opens a file, returning its descriptor.
func (e *Env) Open(path string, flags uint32) (fd uint32, err error) {
	err = e.K.syscall(e.P, SysNoOpen, FuncOpen, func() error {
		fd, err = e.K.openFile(e.P, path, flags)
		return err
	})
	return fd, err
}

// Close closes a descriptor, flushing its dirty pages.
func (e *Env) Close(fd uint32) error {
	return e.K.syscall(e.P, SysNoClose, FuncOpen, func() error {
		return e.K.closeFile(e.P, fd)
	})
}

// ReadFile reads from the descriptor at its current offset.
func (e *Env) ReadFile(fd uint32, buf []byte) (n int, err error) {
	err = e.K.syscall(e.P, SysNoRead, FuncReadWrite, func() error {
		n, err = e.K.readFile(e.P, fd, buf)
		return err
	})
	return n, err
}

// WriteFile buffers a write at the descriptor's current offset.
func (e *Env) WriteFile(fd uint32, data []byte) (n int, err error) {
	err = e.K.syscall(e.P, SysNoWrite, FuncReadWrite, func() error {
		n, err = e.K.writeFile(e.P, fd, data)
		return err
	})
	return n, err
}

// Fsync flushes the descriptor's dirty cache pages to disk and issues the
// block-layer barrier: only after it returns are the bytes durable against
// the crash model's write-cache rollback. (Close flushes without a barrier,
// exactly the volatile window real drives leave open.)
func (e *Env) Fsync(fd uint32) error {
	return e.K.syscall(e.P, SysNoFsync, FuncReadWrite, func() error {
		rec, addr, err := e.K.lookupFile(e.P, fd)
		if err != nil {
			return err
		}
		if err := e.K.flushFile(rec, addr); err != nil {
			return err
		}
		if e.K.Disk != nil {
			e.K.Disk.Barrier()
		}
		return nil
	})
}

// Seek sets the descriptor offset.
func (e *Env) Seek(fd uint32, off uint64) error {
	return e.K.syscall(e.P, SysNoSeek, FuncReadWrite, func() error {
		return e.K.seekFile(e.P, fd, off)
	})
}

// MmapFile maps a file region at va.
func (e *Env) MmapFile(fd uint32, va, length, fileOff uint64, prot uint8) error {
	return e.K.syscall(e.P, SysNoMmap, FuncMmap, func() error {
		rec, addr, err := e.K.lookupFile(e.P, fd)
		if err != nil {
			return err
		}
		rec.Mapped = true
		if err := e.K.writeFileRec(addr, rec); err != nil {
			return err
		}
		return e.K.MapRegion(e.P, va, length, prot, layout.RegionFileMap, addr, fileOff)
	})
}

// RegisterCrashProcedure registers the process's crash procedure by name.
func (e *Env) RegisterCrashProcedure(name string) error {
	return e.K.syscall(e.P, SysNoCrashProc, FuncSyscallEntry, func() error {
		return e.K.RegisterCrashProcedure(e.P, name)
	})
}

// TermOpen attaches terminal index to the process.
func (e *Env) TermOpen(index uint32) error {
	return e.K.syscall(e.P, SysNoTermOpen, FuncTTY, func() error {
		return e.K.OpenTerminal(e.P, index)
	})
}

// TermWrite renders bytes on the process's terminal.
func (e *Env) TermWrite(data []byte) error {
	return e.K.syscall(e.P, SysNoTermWrite, FuncTTY, func() error {
		return e.K.termWrite(e.P, data)
	})
}

// TermRead pulls one keystroke; ok is false when nothing is queued.
func (e *Env) TermRead() (b byte, ok bool, err error) {
	err = e.K.syscall(e.P, SysNoTermRead, FuncTTY, func() error {
		var terr error
		b, ok, terr = e.K.termRead(e.P)
		return terr
	})
	return b, ok, err
}

// SigAction installs a signal handler.
func (e *Env) SigAction(sig int, handler uint32) error {
	return e.K.syscall(e.P, SysNoSigAction, FuncSyscallEntry, func() error {
		return e.K.SigAction(e.P, sig, handler)
	})
}

// ShmGet allocates and attaches a shared-memory segment at va.
func (e *Env) ShmGet(key, size, va uint64) error {
	return e.K.syscall(e.P, SysNoShmGet, FuncIPC, func() error {
		return e.K.ShmGet(e.P, key, size, va)
	})
}

// PipeOpen creates a pipe endpoint.
func (e *Env) PipeOpen(id, peer uint32) error {
	return e.K.syscall(e.P, SysNoPipe, FuncIPC, func() error {
		return e.K.PipeOpen(e.P, id, peer)
	})
}

// PipeWrite appends to a pipe.
func (e *Env) PipeWrite(id uint32, data []byte) (n int, err error) {
	err = e.K.syscall(e.P, SysNoPipeWrite, FuncIPC, func() error {
		n, err = e.K.PipeWrite(e.P, id, data)
		return err
	})
	return n, err
}

// PipeRead drains a pipe.
func (e *Env) PipeRead(id uint32, buf []byte) (n int, err error) {
	err = e.K.syscall(e.P, SysNoPipeRead, FuncIPC, func() error {
		n, err = e.K.PipeRead(e.P, id, buf)
		return err
	})
	return n, err
}

// SockOpen binds a socket on a local port.
func (e *Env) SockOpen(id uint32, proto layout.SocketProto, port uint16) error {
	return e.K.syscall(e.P, SysNoSockOpen, FuncIPC, func() error {
		return e.K.SockOpen(e.P, id, proto, port)
	})
}

// SockSend pushes a payload to the socket's remote peer.
func (e *Env) SockSend(id uint32, payload []byte) error {
	return e.K.syscall(e.P, SysNoSockSend, FuncIPC, func() error {
		return e.K.SockSend(e.P, id, payload)
	})
}

// SockRecv pulls the next inbound message (ErrWouldBlock when idle).
func (e *Env) SockRecv(id uint32) (payload []byte, err error) {
	err = e.K.syscall(e.P, SysNoSockRecv, FuncIPC, func() error {
		payload, err = e.K.SockRecv(e.P, id)
		return err
	})
	return payload, err
}

// Exit terminates the process.
func (e *Env) Exit(code int) error {
	return e.K.syscall(e.P, SysNoExit, FuncClone, func() error {
		return e.K.Exit(e.P, code)
	})
}
