package kernel

// The external world: remote network peers and the user at the physical
// console. These objects live *outside* the kernel — they are shared across
// kernel generations by the machine harness, exactly like the remote client
// and logging computer in the paper's experiments (Section 6) — but any
// in-flight state a kernel held about them (socket payloads, keyboard
// queues) dies with the kernel.

// Network is the wire between the machine and remote peers. Inbound bytes
// queue per local port until a socket reads them; outbound sends invoke the
// remote peer's handler synchronously (the "remote computer" logging
// workload progress).
type Network struct {
	inbound map[uint16][][]byte
	remote  map[uint16]func(payload []byte)
	// Dropped counts inbound messages discarded because no socket was
	// listening (e.g. queued while the kernel was down).
	Dropped int
}

// NewNetwork returns an empty wire.
func NewNetwork() *Network {
	return &Network{
		inbound: make(map[uint16][][]byte),
		remote:  make(map[uint16]func([]byte)),
	}
}

// Deliver queues an inbound message for a local port (a remote client
// sending a request).
func (n *Network) Deliver(port uint16, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	n.inbound[port] = append(n.inbound[port], cp)
}

// Pending returns how many inbound messages are queued for a port.
func (n *Network) Pending(port uint16) int { return len(n.inbound[port]) }

// take removes the next inbound message for a port.
func (n *Network) take(port uint16) ([]byte, bool) {
	q := n.inbound[port]
	if len(q) == 0 {
		return nil, false
	}
	n.inbound[port] = q[1:]
	return q[0], true
}

// OnRemote registers the remote peer reached by sends from the given local
// port. It models the established connection's other end.
func (n *Network) OnRemote(port uint16, handler func(payload []byte)) {
	n.remote[port] = handler
}

// send pushes a payload to the remote peer of a port.
func (n *Network) send(port uint16, payload []byte) {
	if h := n.remote[port]; h != nil {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		h(cp)
	}
}

// FlushInbound discards queued inbound data for every port, modelling
// connection loss across a microreboot: sockets are not resurrected, so
// unread payloads are gone and clients must reconnect and retransmit.
func (n *Network) FlushInbound() {
	for port, q := range n.inbound {
		n.Dropped += len(q)
		n.inbound[port] = nil
	}
}

// ConsoleHub connects physical terminals to the interactive user. The hub
// survives microreboots — it is the keyboard and the eyes of the user — and
// resurrected terminals re-attach by index.
type ConsoleHub struct {
	sources map[uint32]func() (byte, bool)
}

// NewConsoleHub returns a hub with no attached input sources.
func NewConsoleHub() *ConsoleHub {
	return &ConsoleHub{sources: make(map[uint32]func() (byte, bool))}
}

// AttachInput connects a keystroke source to terminal index. The source
// returns false when the user has nothing more to type right now.
func (h *ConsoleHub) AttachInput(index uint32, source func() (byte, bool)) {
	h.sources[index] = source
}

// readKey pulls the next keystroke for a terminal.
func (h *ConsoleHub) readKey(index uint32) (byte, bool) {
	if s := h.sources[index]; s != nil {
		return s()
	}
	return 0, false
}
