package kernel

import (
	"errors"
	"testing"

	"otherworld/internal/layout"
)

// stepCounter counts its own steps via memory, and can be told to fail.
type stepCounter struct{ failAt uint64 }

const scVA = 0x100000

func (s stepCounter) Boot(env *Env) error {
	if err := env.MapAnon(scVA, 4096, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	return nil
}

func (s stepCounter) Step(env *Env) error {
	v, err := env.ReadU64(scVA)
	if err != nil {
		return err
	}
	if s.failAt != 0 && v+1 >= s.failAt {
		return errors.New("fatal application error")
	}
	return env.WriteU64(scVA, v+1)
}

func (s stepCounter) Rehydrate(env *Env) error { return nil }

func init() {
	RegisterProgram("step-counter", func() Program { return stepCounter{} })
	RegisterProgram("step-counter-fail", func() Program { return stepCounter{failAt: 5} })
}

func TestRunRoundRobinFairness(t *testing.T) {
	k := bootTestKernel(t, nil)
	p1, _ := k.CreateProcess("a", "step-counter")
	p2, _ := k.CreateProcess("b", "step-counter")
	res := k.Run(100)
	if res.Panic != nil {
		t.Fatalf("panic: %v", res.Panic)
	}
	env1 := &Env{K: k, P: p1}
	env2 := &Env{K: k, P: p2}
	v1, _ := env1.ReadU64(scVA)
	v2, _ := env2.ReadU64(scVA)
	if v1 != 50 || v2 != 50 {
		t.Fatalf("steps split %d/%d, want 50/50", v1, v2)
	}
	if p1.Ctx.PC != 50 || p2.Ctx.PC != 50 {
		t.Fatalf("PCs %d/%d", p1.Ctx.PC, p2.Ctx.PC)
	}
}

func TestRunKillsFaultingProcess(t *testing.T) {
	k := bootTestKernel(t, nil)
	_, _ = k.CreateProcess("bad", "step-counter-fail")
	good, _ := k.CreateProcess("good", "step-counter")
	res := k.Run(60)
	if res.Panic != nil {
		t.Fatalf("panic: %v", res.Panic)
	}
	if len(k.Procs()) != 1 || k.Procs()[0] != good {
		t.Fatal("faulting process should have been killed, good one kept")
	}
}

func TestRunGoesIdleWhenAllYield(t *testing.T) {
	k := bootTestKernel(t, nil)
	_, _ = k.CreateProcess("idle", "test-prog") // always yields
	res := k.Run(1000)
	if !res.Idle {
		t.Fatal("scheduler should report idle")
	}
	if res.Steps >= 1000 {
		t.Fatal("idle detection should stop early")
	}
}

func TestRunStopsOnPanic(t *testing.T) {
	k := bootTestKernel(t, nil)
	_, _ = k.CreateProcess("a", "step-counter")
	// Fully corrupt the scheduler text so the first step manifests.
	f := k.Text.Func(FuncSched)
	for i := 0; i < 256; i++ {
		_, _ = k.Text.CorruptByte(f.Start+i, 3)
	}
	res := k.Run(100)
	if res.Panic == nil {
		t.Fatal("expected a panic from corrupted scheduler text")
	}
	if k.Panicked() == nil {
		t.Fatal("panic state not latched")
	}
	// Further stepping refuses to run.
	if err := k.StepProcess(k.Procs()[0]); !IsPanic(err) {
		t.Fatalf("step after panic: %v", err)
	}
}

func TestSyscallGateChargesProtectionCosts(t *testing.T) {
	run := func(protect bool) (flushes, switches uint64) {
		k := bootTestKernel(t, func(p *Params) { p.UserSpaceProtection = protect })
		env := envFor(t, k)
		base := k.M.TLB.Flushes
		for i := 0; i < 10; i++ {
			fd, err := env.Open("/f", layout.FlagWrite|layout.FlagCreate)
			if err != nil {
				t.Fatal(err)
			}
			if err := env.Close(fd); err != nil {
				t.Fatal(err)
			}
		}
		return k.M.TLB.Flushes - base, k.Perf.PTSwitches
	}
	f0, s0 := run(false)
	f1, s1 := run(true)
	if f0 != 0 || s0 != 0 {
		t.Fatalf("unprotected mode flushed: %d/%d", f0, s0)
	}
	// 20 syscalls × 2 switches each.
	if f1 != 40 || s1 != 40 {
		t.Fatalf("protected mode flushes/switches = %d/%d, want 40/40", f1, s1)
	}
}

func TestSyscallSavesContextWithNumber(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	fd, err := env.Open("/f", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	_ = fd
	// The last syscall's context is on the kernel stack with InSyscall
	// cleared (it completed).
	ctx, ok, err := layout.ReadContext(k.M.Mem, env.P.D.KStack)
	if err != nil || !ok {
		t.Fatalf("context: ok=%v err=%v", ok, err)
	}
	if ctx.InSyscall {
		t.Fatal("completed syscall left InSyscall set")
	}
	if ctx.SyscallNo != SysNoOpen {
		t.Fatalf("syscall number = %d, want %d", ctx.SyscallNo, SysNoOpen)
	}
}

func TestStackLiveWindowConsumption(t *testing.T) {
	// A corrupted int in the live window manifests on the next syscall
	// with some probability; with enough trials it must fire at least
	// once, and the window is repaired afterwards.
	fired := false
	for seed := int64(0); seed < 20 && !fired; seed++ {
		k := bootTestKernel(t, func(p *Params) { p.Seed = seed })
		env := envFor(t, k)
		if err := k.M.Mem.WriteAt(env.P.D.KStack+uint64(kstackScratchStart)+16, []byte{0xEE, 0xEE, 0xEE, 0xEE}); err != nil {
			t.Fatal(err)
		}
		_, err := env.Open("/f", layout.FlagWrite|layout.FlagCreate)
		if IsPanic(err) {
			fired = true
		}
		// Whether or not it fired, the window must be pristine again.
		if _, ok := k.stackRangeIntact(env.P.D.KStack, kstackScratchStart, kstackLiveEnd); !ok {
			t.Fatal("live window not repaired after consumption")
		}
	}
	if !fired {
		t.Fatal("corrupted stack local never manifested in 20 seeds")
	}
}

func TestPerfCountersAdvance(t *testing.T) {
	k := bootTestKernel(t, nil)
	_, _ = k.CreateProcess("a", "step-counter")
	k.Run(50)
	if k.Perf.Steps != 50 || k.Perf.Cycles == 0 || k.Perf.MemAccesses == 0 {
		t.Fatalf("perf = %+v", k.Perf)
	}
}
