package kernel

import (
	"sort"
	"testing"
	"time"
)

func TestProgramRegistryDuplicatePanics(t *testing.T) {
	RegisterProgram("registry-dup-test", func() Program { return testProg{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	RegisterProgram("registry-dup-test", func() Program { return testProg{} })
}

func TestProgramsListedSorted(t *testing.T) {
	names := Programs()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "test-prog" {
			found = true
		}
	}
	if !found {
		t.Fatal("test-prog missing from listing")
	}
}

func TestCrashProcRegistryReplaces(t *testing.T) {
	called := 0
	RegisterCrashProc("registry-cp-test", func(env *Env, m ResourceMask) (CrashAction, error) {
		called = 1
		return ActionContinue, nil
	})
	RegisterCrashProc("registry-cp-test", func(env *Env, m ResourceMask) (CrashAction, error) {
		called = 2
		return ActionContinue, nil
	})
	proc := LookupCrashProc("registry-cp-test")
	if proc == nil {
		t.Fatal("lookup failed")
	}
	if _, err := proc(nil, 0); err != nil {
		t.Fatal(err)
	}
	if called != 2 {
		t.Fatal("replacement not effective")
	}
	if LookupCrashProc("never-registered") != nil {
		t.Fatal("unknown name should be nil")
	}
}

func TestStartupCostRegistry(t *testing.T) {
	RegisterStartupCost("registry-cost-test", 3*time.Second)
	if StartupCost("registry-cost-test") != 3*time.Second {
		t.Fatal("cost lookup wrong")
	}
	if StartupCost("no-such") != 0 {
		t.Fatal("unknown cost should be zero")
	}
}

func TestResourceMaskString(t *testing.T) {
	if ResourceMask(0).String() != "none" {
		t.Fatal("empty mask")
	}
	m := ResSockets | ResPipes
	s := m.String()
	if s != "sockets+pipes" {
		t.Fatalf("mask string = %q", s)
	}
}

func TestCrashActionStrings(t *testing.T) {
	if ActionContinue.String() != "continue" || ActionRestart.String() != "restart" || ActionGiveUp.String() != "give-up" {
		t.Fatal("action strings wrong")
	}
}
