package kernel

import (
	"bytes"
	"errors"
	"testing"

	"otherworld/internal/layout"
)

func envFor(t *testing.T, k *Kernel) *Env {
	t.Helper()
	p, err := k.CreateProcess("t", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	return &Env{K: k, P: p}
}

func TestOpenWriteReadSeekClose(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	fd, err := env.Open("/data/log", layout.FlagRead|layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := env.WriteFile(fd, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write: %d %v", n, err)
	}
	if err := env.Seek(fd, 6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if n, err := env.ReadFile(fd, buf); err != nil || n != 5 {
		t.Fatalf("read: %d %v", n, err)
	}
	if string(buf) != "world" {
		t.Fatalf("got %q", buf)
	}
	if err := env.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := env.ReadFile(fd, buf); !errors.Is(err, ErrBadFD) {
		t.Fatalf("closed fd: %v", err)
	}
}

// TestWritesAreBufferedUntilFsync is the page-cache property that makes the
// crash kernel's dirty-buffer flush matter: written data is invisible on
// disk until fsync (or close).
func TestWritesAreBufferedUntilFsync(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	fd, err := env.Open("/data/f", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.WriteFile(fd, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	onDisk, err := k.FS.ReadFile("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 0 {
		t.Fatalf("data reached disk before fsync: %q", onDisk)
	}
	if err := env.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	onDisk, _ = k.FS.ReadFile("/data/f")
	if string(onDisk) != "buffered" {
		t.Fatalf("after fsync: %q", onDisk)
	}
}

// TestBufferedWritesVisibleToReads: reads must see cached dirty data even
// before it reaches the disk.
func TestBufferedWritesVisibleToReads(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	fd, _ := env.Open("/data/f", layout.FlagRead|layout.FlagWrite|layout.FlagCreate)
	if _, err := env.WriteFile(fd, []byte("cached!")); err != nil {
		t.Fatal(err)
	}
	if err := env.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if n, err := env.ReadFile(fd, buf); err != nil || n != 7 || string(buf) != "cached!" {
		t.Fatalf("read-through-cache: %d %q %v", n, buf, err)
	}
}

func TestCloseFlushesDirtyPages(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	fd, _ := env.Open("/data/f", layout.FlagWrite|layout.FlagCreate)
	_, _ = env.WriteFile(fd, []byte("persisted on close"))
	if err := env.Close(fd); err != nil {
		t.Fatal(err)
	}
	onDisk, _ := k.FS.ReadFile("/data/f")
	if string(onDisk) != "persisted on close" {
		t.Fatalf("close did not flush: %q", onDisk)
	}
}

func TestOpenFlagsSemantics(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if _, err := env.Open("/nope", layout.FlagRead); err == nil {
		t.Fatal("open of missing file without create must fail")
	}
	// Append positions at EOF.
	_ = k.FS.WriteFile("/a", []byte("12345"))
	fd, err := env.Open("/a", layout.FlagWrite|layout.FlagAppend)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = env.WriteFile(fd, []byte("67"))
	_ = env.Fsync(fd)
	onDisk, _ := k.FS.ReadFile("/a")
	if string(onDisk) != "1234567" {
		t.Fatalf("append: %q", onDisk)
	}
	// Truncate empties the file.
	fd2, err := env.Open("/a", layout.FlagWrite|layout.FlagTrunc)
	if err != nil {
		t.Fatal(err)
	}
	_ = env.Close(fd2)
	if size, _ := k.FS.Size("/a"); size != 0 {
		t.Fatalf("trunc left %d bytes", size)
	}
	// Writing through a read-only fd fails.
	_ = k.FS.WriteFile("/ro", []byte("x"))
	fd3, _ := env.Open("/ro", layout.FlagRead)
	if _, err := env.WriteFile(fd3, []byte("y")); err == nil {
		t.Fatal("write to read-only fd should fail")
	}
}

func TestPartialPageWritePreservesSurroundings(t *testing.T) {
	k := bootTestKernel(t, nil)
	_ = k.FS.WriteFile("/f", bytes.Repeat([]byte{'A'}, 8192))
	env := envFor(t, k)
	fd, _ := env.Open("/f", layout.FlagRead|layout.FlagWrite)
	if err := env.Seek(fd, 4000); err != nil {
		t.Fatal(err)
	}
	if _, err := env.WriteFile(fd, bytes.Repeat([]byte{'B'}, 200)); err != nil {
		t.Fatal(err)
	}
	_ = env.Fsync(fd)
	onDisk, _ := k.FS.ReadFile("/f")
	for i, b := range onDisk {
		want := byte('A')
		if i >= 4000 && i < 4200 {
			want = 'B'
		}
		if b != want {
			t.Fatalf("byte %d = %c, want %c", i, b, want)
		}
	}
}

func TestFileOffsetsPerDescriptor(t *testing.T) {
	k := bootTestKernel(t, nil)
	_ = k.FS.WriteFile("/f", []byte("abcdef"))
	env := envFor(t, k)
	fd1, _ := env.Open("/f", layout.FlagRead)
	fd2, _ := env.Open("/f", layout.FlagRead)
	b1 := make([]byte, 2)
	b2 := make([]byte, 3)
	_, _ = env.ReadFile(fd1, b1)
	_, _ = env.ReadFile(fd2, b2)
	if string(b1) != "ab" || string(b2) != "abc" {
		t.Fatalf("independent offsets broken: %q %q", b1, b2)
	}
	_, _ = env.ReadFile(fd1, b1)
	if string(b1) != "cd" {
		t.Fatalf("fd1 offset: %q", b1)
	}
}

func TestManyOpenFilesWalk(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	var fds []uint32
	for i := 0; i < 40; i++ {
		fd, err := env.Open("/many", layout.FlagRead|layout.FlagWrite|layout.FlagCreate)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	// Each descriptor resolvable; close half and re-verify.
	for i, fd := range fds {
		if i%2 == 0 {
			if err := env.Close(fd); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, fd := range fds {
		_, _, err := k.lookupFile(env.P, fd)
		if i%2 == 0 && err == nil {
			t.Fatalf("closed fd %d still resolves", fd)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("open fd %d lost: %v", fd, err)
		}
	}
}
