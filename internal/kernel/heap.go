package kernel

import (
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// Heap is the kernel record allocator. Records are placed inside dedicated
// heap frames and never span a frame boundary, so a record's bytes are
// physically contiguous and the crash kernel can read them with plain
// physical addressing. Freed space is recycled by exact size, which is all
// the kernel needs: record payloads are fixed once created (string fields
// are set at creation time and only fixed-width fields are rewritten).
type Heap struct {
	mem   *phys.Mem
	alloc *phys.FrameAllocator

	curFrame int
	curOff   int
	haveCur  bool

	freeBySize map[int][]uint64

	// frames lists every heap frame for accounting.
	frames []int
	// AllocatedBytes tracks live record bytes (Table 4 context).
	AllocatedBytes int64
}

// NewHeap creates an empty heap drawing frames from alloc.
func NewHeap(mem *phys.Mem, alloc *phys.FrameAllocator) *Heap {
	return &Heap{
		mem:        mem,
		alloc:      alloc,
		freeBySize: make(map[int][]uint64),
	}
}

// maxAlloc is the largest single allocation: one frame.
const maxAlloc = phys.PageSize

// Alloc reserves n contiguous bytes of kernel heap and returns their
// physical address.
func (h *Heap) Alloc(n int) (uint64, error) {
	if n <= 0 || n > maxAlloc {
		return 0, fmt.Errorf("kernel: heap allocation of %d bytes unsupported", n)
	}
	if free := h.freeBySize[n]; len(free) > 0 {
		addr := free[len(free)-1]
		h.freeBySize[n] = free[:len(free)-1]
		h.AllocatedBytes += int64(n)
		return addr, nil
	}
	if !h.haveCur || h.curOff+n > phys.PageSize {
		f, err := h.alloc.Alloc(phys.FrameKernelHeap)
		if err != nil {
			return 0, err
		}
		h.curFrame = f
		h.curOff = 0
		h.haveCur = true
		h.frames = append(h.frames, f)
	}
	addr := phys.FrameAddr(h.curFrame) + uint64(h.curOff)
	h.curOff += n
	h.AllocatedBytes += int64(n)
	return addr, nil
}

// Free returns an allocation of n bytes at addr to the size-class free list.
func (h *Heap) Free(addr uint64, n int) {
	if n <= 0 || n > maxAlloc {
		return
	}
	h.freeBySize[n] = append(h.freeBySize[n], addr)
	h.AllocatedBytes -= int64(n)
}

// Frames returns the heap frame numbers, for fault-injection targeting.
func (h *Heap) Frames() []int { return h.frames }

// WriteNewRecord seals payload as a record of type t, allocates space for it
// and writes it, returning the record's physical address and framed size.
func (h *Heap) WriteNewRecord(t layout.Type, payload []byte) (addr uint64, size int, err error) {
	size = layout.RecordSize(len(payload))
	addr, err = h.Alloc(size)
	if err != nil {
		return 0, 0, err
	}
	if err := h.mem.WriteAt(addr, layout.Seal(t, 0, payload)); err != nil {
		return 0, 0, err
	}
	return addr, size, nil
}
