package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"otherworld/internal/layout"
)

func TestTerminalEchoAndScreen(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.TermOpen(1); err != nil {
		t.Fatal(err)
	}
	if err := env.TermWrite([]byte("hello\nworld")); err != nil {
		t.Fatal(err)
	}
	rows, err := k.ScreenContents(env.P)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(rows[0]), "hello") {
		t.Fatalf("row 0 = %q", rows[0][:10])
	}
	if !strings.HasPrefix(string(rows[1]), "world") {
		t.Fatalf("row 1 = %q", rows[1][:10])
	}
	// Cursor persisted in the record.
	rec, _, err := k.readTerminalRec(env.P)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CursorRow != 1 || rec.CursorCol != 5 {
		t.Fatalf("cursor = %d,%d", rec.CursorRow, rec.CursorCol)
	}
}

func TestTerminalScrolls(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	_ = env.TermOpen(1)
	for i := 0; i < defaultTTYRows+3; i++ {
		if err := env.TermWrite([]byte{byte('a' + i%26), '\n'}); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := k.ScreenContents(env.P)
	// After scrolling, the first visible line is no longer 'a'.
	if rows[0][0] == 'a' {
		t.Fatal("screen did not scroll")
	}
}

func TestTerminalLineWrap(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	_ = env.TermOpen(1)
	long := bytes.Repeat([]byte{'x'}, defaultTTYCols+5)
	if err := env.TermWrite(long); err != nil {
		t.Fatal(err)
	}
	rows, _ := k.ScreenContents(env.P)
	if rows[1][4] != 'x' || rows[1][5] == 'x' {
		t.Fatalf("wrap wrong: %q", rows[1][:8])
	}
}

func TestTermReadFromHub(t *testing.T) {
	hub := NewConsoleHub()
	k := bootTestKernel(t, func(p *Params) { p.Consoles = hub })
	env := envFor(t, k)
	_ = env.TermOpen(7)
	keys := []byte("hi")
	i := 0
	hub.AttachInput(7, func() (byte, bool) {
		if i >= len(keys) {
			return 0, false
		}
		b := keys[i]
		i++
		return b, true
	})
	b, ok, err := env.TermRead()
	if err != nil || !ok || b != 'h' {
		t.Fatalf("read: %c %v %v", b, ok, err)
	}
	b, ok, _ = env.TermRead()
	if !ok || b != 'i' {
		t.Fatalf("read 2: %c %v", b, ok)
	}
	if _, ok, _ := env.TermRead(); ok {
		t.Fatal("exhausted source should report no key")
	}
}

func TestDoubleTerminalOpenFails(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.TermOpen(1); err != nil {
		t.Fatal(err)
	}
	if err := env.TermOpen(2); err == nil {
		t.Fatal("second terminal should fail")
	}
}

func TestShmReadWriteThroughVM(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.ShmGet(0xA11C, 3*4096, 0x500000); err != nil {
		t.Fatal(err)
	}
	data := []byte("shared segment contents")
	if err := env.Write(0x500000+100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := env.Read(0x500000+100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("got %q", buf)
	}
	// The descriptor lists exactly the backing frames.
	rec, err := layout.ReadShm(k.M.Mem, env.P.D.Shm, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frames) != 3 || rec.AttachedAt != 0x500000 {
		t.Fatalf("shm record: %+v", rec)
	}
}

func TestPipeWriteRead(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.PipeOpen(1, 0); err != nil {
		t.Fatal(err)
	}
	n, err := env.PipeWrite(1, []byte("through the pipe"))
	if err != nil || n != 16 {
		t.Fatalf("write: %d %v", n, err)
	}
	buf := make([]byte, 16)
	n, err = env.PipeRead(1, buf)
	if err != nil || n != 16 || string(buf) != "through the pipe" {
		t.Fatalf("read: %d %q %v", n, buf, err)
	}
	if _, err := env.PipeRead(1, buf); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty pipe: %v", err)
	}
	// The lock flag is clear between operations (consistent state).
	rec, _, err := k.lookupPipe(env.P, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Locked {
		t.Fatal("pipe left locked")
	}
}

func TestPipeFillsUp(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	_ = env.PipeOpen(1, 0)
	big := make([]byte, pipeBufCapacity+100)
	n, err := env.PipeWrite(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if n != pipeBufCapacity-1 { // circular buffer holds cap-1
		t.Fatalf("wrote %d, want %d", n, pipeBufCapacity-1)
	}
}

func TestSocketsThroughWire(t *testing.T) {
	net := NewNetwork()
	k := bootTestKernel(t, func(p *Params) { p.Net = net })
	env := envFor(t, k)
	if err := env.SockOpen(1, layout.ProtoTCP, 8080); err != nil {
		t.Fatal(err)
	}
	if _, err := env.SockRecv(1); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty recv: %v", err)
	}
	net.Deliver(8080, []byte("request"))
	got, err := env.SockRecv(1)
	if err != nil || string(got) != "request" {
		t.Fatalf("recv: %q %v", got, err)
	}
	var replies []string
	net.OnRemote(8080, func(p []byte) { replies = append(replies, string(p)) })
	if err := env.SockSend(1, []byte("response")); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0] != "response" {
		t.Fatalf("replies = %v", replies)
	}
}

func TestNetworkFlushInbound(t *testing.T) {
	net := NewNetwork()
	net.Deliver(80, []byte("a"))
	net.Deliver(80, []byte("b"))
	net.FlushInbound()
	if net.Pending(80) != 0 || net.Dropped != 2 {
		t.Fatalf("flush: pending=%d dropped=%d", net.Pending(80), net.Dropped)
	}
}

func TestSigAction(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.SigAction(2, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if err := env.SigAction(40, 1); err == nil {
		t.Fatal("out-of-range signal should fail")
	}
	tbl, err := layout.ReadSignals(k.M.Mem, env.P.D.Signals, true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Handlers[2] != 0xCAFE {
		t.Fatalf("handler = %#x", tbl.Handlers[2])
	}
	// Update in place.
	if err := env.SigAction(2, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	tbl, _ = layout.ReadSignals(k.M.Mem, env.P.D.Signals, true)
	if tbl.Handlers[2] != 0xBEEF {
		t.Fatalf("handler after update = %#x", tbl.Handlers[2])
	}
}
