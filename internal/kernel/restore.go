package kernel

import (
	"fmt"

	"otherworld/internal/hw"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// Restoration API: the entry points the crash kernel (package resurrect)
// uses to install reconstructed state into fresh processes. These mirror
// the paper's reuse of existing kernel paths — "we modified the existing
// clone() call to handle both operations" (Section 3.7) — so resurrection
// creates processes through the same code as normal process creation.

// CreateProcessForResurrection is the clone()-derived entry: it builds a
// process shell (descriptor, kernel stack, page directory, registry-bound
// program) without running the program's Boot, because the address space
// will be installed from the dead kernel's image instead.
func (k *Kernel) CreateProcessForResurrection(name, program string) (*Process, error) {
	if len(name) > maxNameLen || len(program) > maxNameLen {
		return nil, fmt.Errorf("kernel: process/program name too long")
	}
	factory := LookupProgram(program)
	if factory == nil {
		return nil, fmt.Errorf("kernel: no program registered as %q", program)
	}
	kstackFrame, err := k.Alloc.Alloc(phys.FrameKernelStack)
	if err != nil {
		return nil, err
	}
	kstack := phys.FrameAddr(kstackFrame)
	if err := k.fillStackPattern(kstack, kstackNMIStart, phys.PageSize); err != nil {
		return nil, err
	}
	dirFrame, err := k.Alloc.Alloc(phys.FramePageTable)
	if err != nil {
		return nil, err
	}
	addr, err := k.Heap.Alloc(procSlotSize)
	if err != nil {
		return nil, err
	}
	pid := k.Globals.NextPID
	k.Globals.NextPID++
	p := &Process{
		PID:  pid,
		Addr: addr,
		D: layout.Proc{
			PID:     pid,
			State:   layout.ProcRunnable,
			Name:    name,
			Program: program,
			PageDir: phys.FrameAddr(dirFrame),
			KStack:  kstack,
			Next:    k.Globals.ProcListHead,
		},
		fdNext: 3,
	}
	p.Ctx.Saved = true
	if err := layout.WriteContext(k.M.Mem, kstack, &p.Ctx); err != nil {
		return nil, err
	}
	if err := k.writeProc(p); err != nil {
		return nil, err
	}
	k.Globals.ProcListHead = addr
	if err := k.syncGlobals(); err != nil {
		return nil, err
	}
	k.procs[pid] = p
	k.procOrder = append(k.procOrder, pid)
	p.Prog = factory()
	return p, nil
}

// InstallRegion recreates a memory-region descriptor in a resurrected
// process; fileRec must already be the *new* kernel's file record address.
func (k *Kernel) InstallRegion(p *Process, r *layout.MemRegion, fileRec uint64) error {
	length := r.End - r.Start
	return k.MapRegion(p, r.Start, length, r.Prot, r.Kind, fileRec, r.FileOffset)
}

// InstallResidentPage allocates a frame for va and fills it with data from
// the dead kernel's page.
func (k *Kernel) InstallResidentPage(p *Process, va uint64, data []byte, writable, dirty bool) error {
	pteAddr, _, err := k.walk(p, va, true)
	if err != nil {
		return err
	}
	frame, err := k.allocFrame(phys.FrameUser)
	if err != nil {
		return err
	}
	if err := k.M.Mem.WriteAt(phys.FrameAddr(frame), data); err != nil {
		return err
	}
	pte := layout.MakePresentPTE(frame, writable)
	if dirty {
		pte = pte.WithDirty()
	}
	return k.setPTE(pteAddr, pte)
}

// InstallZeroPage is the fast path's elision case: the dead kernel's page
// was entirely zero, so instead of copying 4 KB the crash kernel maps a
// freshly zero-filled frame. The PTE is identical to the one
// InstallResidentPage would have produced for the same page.
func (k *Kernel) InstallZeroPage(p *Process, va uint64, writable, dirty bool) error {
	pteAddr, _, err := k.walk(p, va, true)
	if err != nil {
		return err
	}
	frame, err := k.allocFrame(phys.FrameUser)
	if err != nil {
		return err
	}
	if err := k.M.Mem.Zero(frame); err != nil {
		return err
	}
	pte := layout.MakePresentPTE(frame, writable)
	if dirty {
		pte = pte.WithDirty()
	}
	return k.setPTE(pteAddr, pte)
}

// InstallResidentPageMapped is the paper's footnote-3 optimization: instead
// of copying the dead kernel's page, the crash kernel maps the physical
// frame itself into the resurrected process, adopting it from the dead
// kernel. Resurrection of large processes becomes proportional to page
// count, not bytes.
func (k *Kernel) InstallResidentPageMapped(p *Process, va uint64, frame int, writable, dirty bool) error {
	pteAddr, _, err := k.walk(p, va, true)
	if err != nil {
		return err
	}
	if err := k.Alloc.AdoptFrame(frame, phys.FrameUser); err != nil {
		return err
	}
	pte := layout.MakePresentPTE(frame, writable)
	if dirty {
		pte = pte.WithDirty()
	}
	return k.setPTE(pteAddr, pte)
}

// InstallSpeculatedPage is the lazy install's copy-on-access case: instead
// of copying the dead kernel's page (or adopting it permanently, as the
// footnote-3 map mode does), the crash kernel writes a speculated PTE whose
// frame bits name the dead frame, and adopts that frame as FrameSpeculated
// so the morph cannot recycle it while the speculation is outstanding. The
// first touch — or the background sweeper — validates the contents and
// replaces the entry with the resident private copy an eager install would
// have produced.
func (k *Kernel) InstallSpeculatedPage(p *Process, va uint64, deadFrame int, writable, dirty bool) error {
	pteAddr, _, err := k.walk(p, va, true)
	if err != nil {
		return err
	}
	if err := k.Alloc.AdoptFrame(deadFrame, phys.FrameSpeculated); err != nil {
		return err
	}
	return k.setPTE(pteAddr, layout.MakeSpeculatedPTE(deadFrame, writable, dirty))
}

// InstallSwappedPage re-stages a page that the dead kernel had swapped out:
// the contents (read from the dead kernel's partition) are written to a
// fresh slot on *this* kernel's partition (Section 3.2's two-partition
// design) and the PTE marked swapped.
func (k *Kernel) InstallSwappedPage(p *Process, va uint64, data []byte, writable bool) error {
	if k.swap == nil {
		return fmt.Errorf("kernel: no swap partition to re-stage onto")
	}
	pteAddr, _, err := k.walk(p, va, true)
	if err != nil {
		return err
	}
	slot, err := k.swap.Alloc(data)
	if err != nil {
		return err
	}
	return k.setPTE(pteAddr, layout.MakeSwappedPTE(slot, writable))
}

// InstallOpenFile recreates an open-file record at the same fd-table
// position with the recorded path, flags and offset (Section 3.3). It
// returns the new record's address for region back-references.
func (k *Kernel) InstallOpenFile(p *Process, old *layout.FileRec) (uint64, error) {
	if !k.FS.Exists(old.Path) {
		return 0, fmt.Errorf("kernel: reopen %q: no such file", old.Path)
	}
	rec := layout.FileRec{
		FD:     old.FD,
		Path:   old.Path,
		Flags:  old.Flags,
		Offset: old.Offset,
		Mapped: old.Mapped,
		Next:   p.D.Files,
	}
	addr, err := k.Heap.Alloc(fileSlotSize)
	if err != nil {
		return 0, err
	}
	if err := k.writeFileRec(addr, &rec); err != nil {
		return 0, err
	}
	p.D.Files = addr
	if rec.FD >= p.fdNext {
		p.fdNext = rec.FD + 1
	}
	return addr, k.writeProc(p)
}

// InstallTerminal recreates a physical terminal with the dead kernel's
// geometry, settings, cursor and screen contents (Section 3.3).
func (k *Kernel) InstallTerminal(p *Process, old *layout.Terminal, screen []byte) error {
	if err := k.OpenTerminal(p, old.Index); err != nil {
		return err
	}
	rec, addr, err := k.readTerminalRec(p)
	if err != nil {
		return err
	}
	rec.Rows = old.Rows
	rec.Cols = old.Cols
	rec.CursorRow = old.CursorRow
	rec.CursorCol = old.CursorCol
	rec.Settings = old.Settings
	n := int(old.Rows) * int(old.Cols)
	if n > len(screen) {
		n = len(screen)
	}
	if err := k.M.Mem.WriteAt(rec.Screen, screen[:n]); err != nil {
		return err
	}
	return layout.WriteTerminal(k.M.Mem, addr, rec)
}

// InstallSignals recreates the signal-handler table.
func (k *Kernel) InstallSignals(p *Process, tbl *layout.Signals) error {
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeSignals, tbl.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Signals = addr
	return k.writeProc(p)
}

// InstallShm recreates a shared-memory segment with the given contents,
// attached at the original address.
func (k *Kernel) InstallShm(p *Process, old *layout.Shm, contents []byte) error {
	if err := k.ShmGet(p, old.Key, old.Size, old.AttachedAt); err != nil {
		return err
	}
	return k.WriteVM(p, old.AttachedAt, contents)
}

// InstallPipe recreates a pipe endpoint with its buffered bytes — the
// Section 7 future-work extension, implemented per the paper's Section 3.3
// analysis: a pipe whose semaphore was held at failure time is in an
// unknown intermediate state and must not be restored.
func (k *Kernel) InstallPipe(p *Process, old *layout.Pipe, buf []byte) error {
	if old.Locked {
		return fmt.Errorf("kernel: pipe %d was locked at failure time; state inconsistent", old.ID)
	}
	if err := k.PipeOpen(p, old.ID, old.PeerPID); err != nil {
		return err
	}
	rec, addr, err := k.lookupPipe(p, old.ID)
	if err != nil {
		return err
	}
	n := len(buf)
	if n > pipeBufCapacity {
		n = pipeBufCapacity
	}
	if err := k.M.Mem.WriteAt(rec.Buf, buf[:n]); err != nil {
		return err
	}
	rec.ReadPos = old.ReadPos % pipeBufCapacity
	rec.WritePos = old.WritePos % pipeBufCapacity
	return layout.WritePipe(k.M.Mem, addr, rec)
}

// InstallSocket rebinds a socket with its recorded connection parameters —
// the Section 7 future-work extension. UDP needs only the binding; for TCP
// the sequence number and window are restored so the (simulated) remote
// peer sees a transparent continuation. In-flight payloads died with the
// main kernel, exactly as Section 3.3 argues is safe for IP.
func (k *Kernel) InstallSocket(p *Process, old *layout.Socket) error {
	if err := k.SockOpen(p, old.ID, old.Proto, old.LocalPort); err != nil {
		return err
	}
	rec, addr, err := k.lookupSocket(p, old.ID)
	if err != nil {
		return err
	}
	rec.RemotePort = old.RemotePort
	rec.Seq = old.Seq
	rec.Window = old.Window
	return layout.WriteSocket(k.M.Mem, addr, rec)
}

// InstallContext restores the saved hardware context of a resurrected
// process. If the thread was inside a system call, the call is aborted and
// the retry flag raised (Section 3.5).
func (k *Kernel) InstallContext(p *Process, ctx layout.Context) error {
	p.Ctx = ctx
	if ctx.InSyscall {
		p.SyscallAborted = true
		p.Ctx.InSyscall = false
	}
	p.Resurrected++
	return k.SaveContextToStack(p)
}

// AdoptAllMemory is the morph step (Section 3.6): the crash kernel reclaims
// every physical frame it does not already manage, resets its tag and
// protection, and takes over the fixed anchor frames, becoming the main
// kernel. The caller must re-reserve a region and load a fresh crash image
// afterwards.
func (k *Kernel) AdoptAllMemory() error {
	total := k.M.Mem.NumFrames()
	adopted := k.Alloc.AdoptUnmanaged(k.M.Mem, phys.Region{Start: 0, Frames: total})
	// Take the anchor frames.
	if err := k.Alloc.Claim(0, phys.FrameKernelText); err != nil {
		return err
	}
	if err := k.Alloc.Claim(hw.IDTFrame, phys.FrameKernelText); err != nil {
		return err
	}
	if err := k.Alloc.Claim(GlobalsFrame, phys.FrameKernelHeap); err != nil {
		return err
	}
	// Move the globals anchor to the fixed address: this kernel is now
	// the main kernel other tools will find there.
	k.globalsAddr = GlobalsAddr
	k.Globals.BootCount++
	k.isCrashKernel = false // it is the main kernel now
	if err := k.syncGlobals(); err != nil {
		return err
	}
	k.logf("morphed into main kernel: adopted %d frames", adopted)
	return nil
}
