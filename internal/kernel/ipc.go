package kernel

import (
	"errors"
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// ErrWouldBlock reports an IPC read with nothing available.
var ErrWouldBlock = errors.New("kernel: would block")

// --- Shared memory -----------------------------------------------------

// ShmGet allocates a shared-memory segment of size bytes, maps it into the
// process at va, and links its descriptor. Segment pages live in dedicated
// frames listed in the descriptor so resurrection can copy them.
func (k *Kernel) ShmGet(p *Process, key uint64, size uint64, va uint64) error {
	if size == 0 {
		return fmt.Errorf("kernel: zero-size shm segment")
	}
	nframes := int((size + phys.PageSize - 1) / phys.PageSize)
	if nframes > layout.MaxShmFrames {
		return fmt.Errorf("kernel: shm segment of %d frames exceeds limit %d", nframes, layout.MaxShmFrames)
	}
	if va%phys.PageSize != 0 {
		return fmt.Errorf("kernel: shm attach address %#x not page aligned", va)
	}
	frames := make([]uint64, 0, nframes)
	for i := 0; i < nframes; i++ {
		f, err := k.allocFrame(phys.FrameUser)
		if err != nil {
			return err
		}
		frames = append(frames, uint64(f))
	}
	rec := layout.Shm{
		Key:        key,
		Size:       size,
		AttachedAt: va,
		Frames:     frames,
		Next:       p.D.Shm,
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeShm, rec.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Shm = addr
	if err := k.writeProc(p); err != nil {
		return err
	}
	// Map the segment pages into the address space so normal loads and
	// stores reach them. The region record marks the range.
	if err := k.MapRegion(p, va, uint64(nframes)*phys.PageSize, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		return err
	}
	for i, f := range frames {
		pteAddr, _, werr := k.walk(p, va+uint64(i)*phys.PageSize, true)
		if werr != nil {
			return werr
		}
		if err := k.setPTE(pteAddr, layout.MakePresentPTE(int(f), true)); err != nil {
			return err
		}
	}
	return nil
}

// --- Pipes ---------------------------------------------------------------

// pipeBufCapacity is the circular buffer size (one page).
const pipeBufCapacity = phys.PageSize

// PipeOpen creates a pipe endpoint for the process.
func (k *Kernel) PipeOpen(p *Process, id uint32, peer uint32) error {
	frame, err := k.Alloc.Alloc(phys.FrameKernelHeap)
	if err != nil {
		return err
	}
	rec := layout.Pipe{
		ID:      id,
		Buf:     phys.FrameAddr(frame),
		PeerPID: peer,
		Next:    p.D.Pipes,
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypePipe, rec.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Pipes = addr
	return k.writeProc(p)
}

// lookupPipe walks the process's pipe list.
func (k *Kernel) lookupPipe(p *Process, id uint32) (*layout.Pipe, uint64, error) {
	cur := p.D.Pipes
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d pipe list loop", p.PID)
		}
		rec, err := layout.ReadPipe(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d pipe record: %v", p.PID, err)
		}
		if rec.ID == id {
			return rec, cur, nil
		}
		cur = rec.Next
	}
	return nil, 0, fmt.Errorf("kernel: pid %d has no pipe %d", p.PID, id)
}

// PipeWrite appends data to the pipe's circular buffer. The record's lock
// flag is held across the update — a kernel failure in this window leaves
// the pipe inconsistent, which is why the prototype refuses to resurrect
// pipes (Section 3.3).
func (k *Kernel) PipeWrite(p *Process, id uint32, data []byte) (int, error) {
	rec, addr, err := k.lookupPipe(p, id)
	if err != nil {
		return 0, err
	}
	rec.Locked = true
	if err := layout.WritePipe(k.M.Mem, addr, rec); err != nil {
		return 0, err
	}
	written := 0
	for _, b := range data {
		next := (rec.WritePos + 1) % pipeBufCapacity
		if next == rec.ReadPos {
			break // full
		}
		if err := k.M.Mem.WriteAt(rec.Buf+uint64(rec.WritePos), []byte{b}); err != nil {
			return written, k.oopsf(OopsBadStructure, "pipe buffer write: %v", err)
		}
		rec.WritePos = next
		written++
	}
	rec.Locked = false
	if err := layout.WritePipe(k.M.Mem, addr, rec); err != nil {
		return written, err
	}
	return written, nil
}

// PipeRead removes up to len(buf) bytes from the pipe.
func (k *Kernel) PipeRead(p *Process, id uint32, buf []byte) (int, error) {
	rec, addr, err := k.lookupPipe(p, id)
	if err != nil {
		return 0, err
	}
	rec.Locked = true
	if err := layout.WritePipe(k.M.Mem, addr, rec); err != nil {
		return 0, err
	}
	read := 0
	for read < len(buf) && rec.ReadPos != rec.WritePos {
		var b [1]byte
		if err := k.M.Mem.ReadAt(rec.Buf+uint64(rec.ReadPos), b[:]); err != nil {
			return read, k.oopsf(OopsBadStructure, "pipe buffer read: %v", err)
		}
		buf[read] = b[0]
		rec.ReadPos = (rec.ReadPos + 1) % pipeBufCapacity
		read++
	}
	rec.Locked = false
	if err := layout.WritePipe(k.M.Mem, addr, rec); err != nil {
		return read, err
	}
	if read == 0 {
		return 0, ErrWouldBlock
	}
	return read, nil
}

// --- Sockets ---------------------------------------------------------------

// SockOpen binds a socket on the local port and links its descriptor. The
// descriptor exists so resurrection can *report* the lost socket; payload
// state lives on the external wire.
func (k *Kernel) SockOpen(p *Process, id uint32, proto layout.SocketProto, localPort uint16) error {
	rec := layout.Socket{
		ID:        id,
		Proto:     proto,
		LocalPort: localPort,
		Next:      p.D.Sockets,
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeSocket, rec.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Sockets = addr
	return k.writeProc(p)
}

// lookupSocket walks the process's socket list.
func (k *Kernel) lookupSocket(p *Process, id uint32) (*layout.Socket, uint64, error) {
	cur := p.D.Sockets
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d socket list loop", p.PID)
		}
		rec, err := layout.ReadSocket(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return nil, 0, k.oopsf(OopsBadStructure, "pid %d socket record: %v", p.PID, err)
		}
		if rec.ID == id {
			return rec, cur, nil
		}
		cur = rec.Next
	}
	return nil, 0, fmt.Errorf("kernel: pid %d has no socket %d", p.PID, id)
}

// SockRecv pulls the next inbound message for the socket's port.
func (k *Kernel) SockRecv(p *Process, id uint32) ([]byte, error) {
	rec, _, err := k.lookupSocket(p, id)
	if err != nil {
		return nil, err
	}
	if k.P.Net == nil {
		return nil, ErrWouldBlock
	}
	payload, ok := k.P.Net.take(rec.LocalPort)
	if !ok {
		return nil, ErrWouldBlock
	}
	rec.Seq++
	return payload, nil
}

// SockSend pushes a payload to the remote peer.
func (k *Kernel) SockSend(p *Process, id uint32, payload []byte) error {
	rec, _, err := k.lookupSocket(p, id)
	if err != nil {
		return err
	}
	if k.P.Net != nil {
		k.P.Net.send(rec.LocalPort, payload)
	}
	return nil
}

// --- Signals ---------------------------------------------------------------

// SigAction installs a signal handler, creating the signal table on first
// use.
func (k *Kernel) SigAction(p *Process, sig int, handler uint32) error {
	if sig < 0 || sig >= layout.NumSignals {
		return fmt.Errorf("kernel: bad signal %d", sig)
	}
	var tbl layout.Signals
	if p.D.Signals != 0 {
		t, err := layout.ReadSignals(k.M.Mem, p.D.Signals, k.P.VerifyCRC)
		if err != nil {
			return k.oopsf(OopsBadStructure, "pid %d signal table: %v", p.PID, err)
		}
		tbl = *t
		tbl.Handlers[sig] = handler
		return layout.WriteSignals(k.M.Mem, p.D.Signals, &tbl)
	}
	tbl.Handlers[sig] = handler
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeSignals, tbl.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Signals = addr
	return k.writeProc(p)
}
