package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrYield is returned by a program step that has nothing to do right now
// (no keystrokes queued, no requests pending). The scheduler treats it as a
// voluntary sleep, not an error.
var ErrYield = errors.New("kernel: yield")

// Program is an application executable. Implementations must keep ALL
// persistent state inside the process's simulated address space (via Env
// reads/writes) or in files: after a microreboot the crash kernel rebuilds
// the process purely from its memory image plus saved context, constructs a
// fresh Program value from the registry and calls Rehydrate — any state an
// implementation kept in Go fields is gone, exactly like CPU-register and
// cache state in a real resurrection.
type Program interface {
	// Boot lays out the address space and initial state of a freshly
	// started process.
	Boot(env *Env) error
	// Step executes one quantum of the program.
	Step(env *Env) error
	// Rehydrate is called instead of Boot when a resurrected process
	// continues execution: the implementation may rebuild Go-side caches
	// from the (restored) address space. Most programs need nothing.
	Rehydrate(env *Env) error
}

// ResourceMask reports resource types the crash kernel could not resurrect,
// passed to crash procedures as a bitmask (Section 3.4).
type ResourceMask uint32

// Resource bits.
const (
	ResSockets ResourceMask = 1 << iota
	ResPipes
	ResTerminal
	ResShm
	ResFiles
	ResMemory
)

// String lists the set bits.
func (m ResourceMask) String() string {
	if m == 0 {
		return "none"
	}
	names := []struct {
		bit  ResourceMask
		name string
	}{
		{ResSockets, "sockets"}, {ResPipes, "pipes"}, {ResTerminal, "terminal"},
		{ResShm, "shm"}, {ResFiles, "files"}, {ResMemory, "memory"},
	}
	out := ""
	for _, n := range names {
		if m&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	return out
}

// CrashAction is a crash procedure's verdict (Table 1).
type CrashAction int

// Crash procedure verdicts.
const (
	// ActionContinue resumes the process from the interruption point.
	ActionContinue CrashAction = iota
	// ActionRestart means the procedure saved state to persistent storage
	// and wants the application started fresh.
	ActionRestart
	// ActionGiveUp abandons the process.
	ActionGiveUp
)

func (a CrashAction) String() string {
	switch a {
	case ActionContinue:
		return "continue"
	case ActionRestart:
		return "restart"
	case ActionGiveUp:
		return "give-up"
	}
	return fmt.Sprintf("CrashAction(%d)", int(a))
}

// CrashProcedure is the user-level recovery function the crash kernel calls
// after resurrecting a process (Section 3.4). It runs with the process's
// restored memory available through env and learns which resource types
// could not be restored from missing.
type CrashProcedure func(env *Env, missing ResourceMask) (CrashAction, error)

var (
	registryMu   sync.RWMutex
	programs     = make(map[string]func() Program)
	crashProcs   = make(map[string]CrashProcedure)
	startupCosts = make(map[string]time.Duration)
)

// RegisterStartupCost records how long a program takes to start (service
// init, data load), charged to the virtual clock on every fresh start —
// including crash-procedure-driven restarts, which is why Apache and MySQL
// interruption times in Table 6 approach a full service restart.
func RegisterStartupCost(name string, d time.Duration) {
	registryMu.Lock()
	defer registryMu.Unlock()
	startupCosts[name] = d
}

// StartupCost returns the registered start time for a program (0 if none).
func StartupCost(name string) time.Duration {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return startupCosts[name]
}

// RegisterProgram adds an executable to the program registry (the
// simulation's file-system-visible binaries). Registering a duplicate name
// panics, as with database/sql drivers.
func RegisterProgram(name string, factory func() Program) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := programs[name]; dup {
		//owvet:allow gopanic: init-time registration bug in the simulator itself, not a modeled kernel failure
		panic(fmt.Sprintf("kernel: program %q registered twice", name))
	}
	programs[name] = factory
}

// LookupProgram returns the factory for a registered program, or nil.
func LookupProgram(name string) func() Program {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return programs[name]
}

// Programs lists registered program names, sorted.
func Programs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(programs))
	for n := range programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterCrashProc adds a named crash procedure to the registry; processes
// reference it by name through their descriptor. Duplicate registration
// replaces, so tests can install variants.
func RegisterCrashProc(name string, proc CrashProcedure) {
	registryMu.Lock()
	defer registryMu.Unlock()
	crashProcs[name] = proc
}

// LookupCrashProc resolves a registered crash procedure, or nil.
func LookupCrashProc(name string) CrashProcedure {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return crashProcs[name]
}
