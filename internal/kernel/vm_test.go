package kernel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

func TestVMReadWriteRoundTrip(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x100000, 1<<20, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if err := k.WriteVM(p, 0x100100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := k.ReadVM(p, 0x100100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("got %q", buf)
	}
}

func TestVMCrossPageWrite(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x100000, 1<<20, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Write spanning three pages.
	data := bytes.Repeat([]byte{0x5A}, 3*phys.PageSize)
	va := uint64(0x100000 + phys.PageSize - 100)
	if err := k.WriteVM(p, va, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := k.ReadVM(p, va, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page data mismatch")
	}
}

func TestVMSegfaultOutsideRegions(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	err := k.WriteVM(p, 0x100000, []byte{1})
	if !errors.Is(err, ErrSegfault) {
		t.Fatalf("want segfault, got %v", err)
	}
}

func TestVMDemandZero(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x200000, 64*phys.PageSize, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Untouched mapped pages read as zeroes and allocate on demand.
	present0, _, err := k.ResidentPages(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := k.ReadVM(p, 0x200000+5*phys.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatal("demand-zero page not zero")
	}
	present1, _, err := k.ResidentPages(p)
	if err != nil {
		t.Fatal(err)
	}
	if present1 != present0+1 {
		t.Fatalf("resident %d -> %d, want +1", present0, present1)
	}
}

func TestVMFileBackedMapping(t *testing.T) {
	k := bootTestKernel(t, nil)
	if err := k.FS.WriteFile("/bin/app", bytes.Repeat([]byte("EXEC"), 2048)); err != nil {
		t.Fatal(err)
	}
	p, _ := k.CreateProcess("a", "test-prog")
	env := &Env{K: k, P: p}
	fd, err := env.Open("/bin/app", layout.FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.MmapFile(fd, 0x300000, 2*phys.PageSize, phys.PageSize, layout.ProtRead); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := k.ReadVM(p, 0x300000, buf); err != nil {
		t.Fatal(err)
	}
	// Mapped from file offset PageSize; content is the repeating pattern.
	if !bytes.Equal(buf, []byte("EXEC")) {
		t.Fatalf("mmap content = %q", buf)
	}
}

func TestSwapOutAndBackIn(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x100000, 1<<20, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Touch 32 pages with distinct content.
	for i := 0; i < 32; i++ {
		if err := k.WriteVM(p, 0x100000+uint64(i)*phys.PageSize, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := k.SwapOutPages(p, 16)
	if err != nil || n != 16 {
		t.Fatalf("swapped %d, %v", n, err)
	}
	present, swapped, err := k.ResidentPages(p)
	if err != nil || swapped != 16 {
		t.Fatalf("present=%d swapped=%d %v", present, swapped, err)
	}
	// Reading a swapped page swaps it back in with content intact.
	for i := 0; i < 32; i++ {
		var b [1]byte
		if err := k.ReadVM(p, 0x100000+uint64(i)*phys.PageSize, b[:]); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i+1) {
			t.Fatalf("page %d content %d after swap cycle", i, b[0])
		}
	}
	_, swapped, _ = k.ResidentPages(p)
	if swapped != 0 {
		t.Fatalf("%d pages still swapped after touching all", swapped)
	}
	if k.Perf.SwapIns == 0 || k.Perf.SwapOuts == 0 {
		t.Fatal("swap counters not updated")
	}
}

func TestVMContentRoundTripProperty(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x100000, 4<<20, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 16384 {
			data = data[:16384]
		}
		va := 0x100000 + uint64(off)%(4<<20-uint64(len(data)))
		if err := k.WriteVM(p, va, data); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		if err := k.ReadVM(p, va, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTablePagesAllocatedSparsely(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0, layout.MaxUserVA, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	before := k.M.Mem.CountKind(phys.FramePageTable)
	// Touch two pages in the same 2 MiB span: one PT page suffices.
	_ = k.WriteVM(p, 0, []byte{1})
	_ = k.WriteVM(p, phys.PageSize, []byte{1})
	mid := k.M.Mem.CountKind(phys.FramePageTable)
	if mid != before+1 {
		t.Fatalf("PT pages %d -> %d, want +1", before, mid)
	}
	// Touch a page far away: a second PT page appears.
	_ = k.WriteVM(p, 64<<20, []byte{1})
	after := k.M.Mem.CountKind(phys.FramePageTable)
	if after != mid+1 {
		t.Fatalf("PT pages %d -> %d, want +1", mid, after)
	}
}

func TestReclaimUnderMemoryPressure(t *testing.T) {
	// A tiny machine: the kernel must swap to satisfy allocations.
	k := bootTestKernelSized(t, 8<<20, 256)
	p, _ := k.CreateProcess("a", "test-prog")
	if err := k.MapRegion(p, 0x100000, 16<<20, layout.ProtRead|layout.ProtWrite, layout.RegionAnon, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Touch more pages than the machine has free frames.
	for i := 0; i < 3000; i++ {
		if err := k.WriteVM(p, 0x100000+uint64(i)*phys.PageSize, []byte{byte(i)}); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if k.Perf.SwapOuts == 0 {
		t.Fatal("expected reclaim to swap pages out")
	}
	// Spot-check early pages survived the trip through swap.
	for _, i := range []int{0, 100, 1500, 2999} {
		var b [1]byte
		if err := k.ReadVM(p, 0x100000+uint64(i)*phys.PageSize, b[:]); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i) {
			t.Fatalf("page %d content %d", i, b[0])
		}
	}
}

// bootTestKernelSized boots a kernel on a machine with the given memory and
// swap slots.
func bootTestKernelSized(t *testing.T, memBytes, swapSlots int) *Kernel {
	t.Helper()
	m := newTestMachineSized(memBytes)
	m.Bus.Attach(newSwapDev("/dev/swap0", swapSlots*16))
	crash := phys.Region{Start: m.Mem.NumFrames() - 256, Frames: 256}
	p := Params{
		VerifyCRC:   true,
		Hardening:   FullHardening(),
		SwapDevice:  "/dev/swap0",
		CrashRegion: crash,
		Seed:        5,
	}
	k, err := Boot(m, newFS(), p, BootOptions{Region: phys.Region{Start: 0, Frames: crash.Start}})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}
