package kernel

import (
	"errors"
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// ErrSegfault reports a user access outside any mapped region. It kills the
// offending process rather than the kernel.
var ErrSegfault = errors.New("kernel: segmentation fault")

// MapRegion adds a virtual memory region to the process. File-backed
// regions record the backing FileRec's address and offset so both demand
// paging and resurrection can find the file.
func (k *Kernel) MapRegion(p *Process, start, length uint64, prot uint8, kind layout.RegionKind, fileRec uint64, fileOff uint64) error {
	if start%phys.PageSize != 0 || length == 0 {
		return fmt.Errorf("kernel: bad region [%#x,+%#x)", start, length)
	}
	end := start + length
	if end > layout.MaxUserVA {
		return fmt.Errorf("kernel: region end %#x beyond user space", end)
	}
	rec := layout.MemRegion{
		Start:      start,
		End:        end,
		Prot:       prot,
		Kind:       kind,
		File:       fileRec,
		FileOffset: fileOff,
		Next:       p.D.MemRegions,
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeMemRegion, rec.EncodePayload())
	if err != nil {
		return err
	}
	p.D.MemRegions = addr
	return k.writeProc(p)
}

// findRegion walks the process's region list in memory looking for the
// region containing va. Corrupted region records panic the kernel when CRC
// checking is on, or propagate garbage when it is off — both faithful.
func (k *Kernel) findRegion(p *Process, va uint64) (*layout.MemRegion, error) {
	cur := p.D.MemRegions
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return nil, k.oopsf(OopsBadStructure, "region list loop for pid %d", p.PID)
		}
		r, err := layout.ReadMemRegion(k.M.Mem, cur, k.P.VerifyCRC)
		if err != nil {
			return nil, k.oopsf(OopsBadStructure, "pid %d region record: %v", p.PID, err)
		}
		if va >= r.Start && va < r.End {
			return r, nil
		}
		cur = r.Next
	}
	return nil, ErrSegfault
}

// walk resolves va through the two-level page table, optionally allocating
// the page-table page. It returns the physical address of the PTE slot and
// its current value. Page-directory and page-table entries are raw words —
// real hardware state carries no checksums — so corruption here is followed
// wherever it points, and only impossible addresses are caught as oopses.
func (k *Kernel) walk(p *Process, va uint64, allocate bool) (pteAddr uint64, pte layout.PTE, err error) {
	dir, table, _, ok := layout.VirtSplit(va)
	if !ok {
		return 0, 0, ErrSegfault
	}
	dirSlot := p.D.PageDir + uint64(dir)*layout.PTESize
	dirEnt, err := k.M.Mem.ReadU64(dirSlot)
	if err != nil {
		return 0, 0, k.oopsf(OopsBadPageTable, "pid %d page directory unreadable: %v", p.PID, err)
	}
	if dirEnt == 0 {
		if !allocate {
			return 0, 0, nil
		}
		f, aerr := k.allocFrame(phys.FramePageTable)
		if aerr != nil {
			return 0, 0, aerr
		}
		dirEnt = phys.FrameAddr(f)
		if werr := k.M.Mem.WriteU64(dirSlot, dirEnt); werr != nil {
			return 0, 0, k.oopsf(OopsBadPageTable, "pid %d page directory write: %v", p.PID, werr)
		}
	}
	if dirEnt%phys.PageSize != 0 || dirEnt >= uint64(k.M.Mem.Size()) {
		return 0, 0, k.oopsf(OopsBadPageTable, "pid %d page directory entry %#x invalid", p.PID, dirEnt)
	}
	pteAddr = dirEnt + uint64(table)*layout.PTESize
	raw, err := k.M.Mem.ReadU64(pteAddr)
	if err != nil {
		return 0, 0, k.oopsf(OopsBadPageTable, "pid %d PTE unreadable: %v", p.PID, err)
	}
	return pteAddr, layout.PTE(raw), nil
}

// setPTE stores a PTE value.
func (k *Kernel) setPTE(pteAddr uint64, pte layout.PTE) error {
	if err := k.M.Mem.WriteU64(pteAddr, uint64(pte)); err != nil {
		return k.oopsf(OopsBadPageTable, "PTE write: %v", err)
	}
	return nil
}

// allocFrame allocates a frame, swapping out pages under memory pressure
// like the Linux page reclaim path.
func (k *Kernel) allocFrame(kind phys.FrameKind) (int, error) {
	f, err := k.Alloc.Alloc(kind)
	if err == nil {
		return f, nil
	}
	if !errors.Is(err, phys.ErrNoFrames) {
		return 0, err
	}
	// Reclaim: evict user pages round-robin across processes.
	for _, victim := range k.Procs() {
		n, serr := k.SwapOutPages(victim, 32)
		if serr != nil {
			return 0, serr
		}
		if n > 0 {
			if f, err = k.Alloc.Alloc(kind); err == nil {
				return f, nil
			}
		}
	}
	return 0, k.oopsf(OopsOOM, "out of memory: no frames and nothing to evict")
}

// AllocUserFrame allocates a user frame through the reclaim-capable path,
// for the speculation resolver's private copies (it lives outside this
// package and cannot reach allocFrame directly).
func (k *Kernel) AllocUserFrame() (int, error) {
	return k.allocFrame(phys.FrameUser)
}

// touchPage makes the page at va resident, performing demand-zero fill,
// file-backed fill or swap-in as needed, and returns its frame.
func (k *Kernel) touchPage(p *Process, va uint64, write bool) (int, error) {
	pteAddr, pte, err := k.walk(p, va, true)
	if err != nil {
		return 0, err
	}
	switch {
	case pte.Present():
		frame := pte.Frame()
		if frame >= k.M.Mem.NumFrames() {
			return 0, k.oopsf(OopsBadPageTable, "pid %d PTE frame %d beyond memory", p.PID, frame)
		}
		if write {
			if err := k.setPTE(pteAddr, pte.WithDirty()); err != nil {
				return 0, err
			}
		}
		return frame, nil

	case pte.Speculated():
		// Lazy-install page: the PTE references the dead kernel's frame
		// copy-on-access. The resolver validates the contents and replaces
		// the entry with a resident private copy (or the eager-fallback
		// copy), charging the consuming process's timeline.
		k.Perf.PageFaults++
		if k.Spec == nil {
			return 0, k.oopsf(OopsBadPageTable, "pid %d speculated PTE for %#x with no resolver", p.PID, va)
		}
		if rerr := k.Spec.ResolveSpeculated(p, va&^uint64(phys.PageSize-1)); rerr != nil {
			return 0, rerr
		}
		_, npte, werr := k.walk(p, va, false)
		if werr != nil {
			return 0, werr
		}
		if !npte.Present() {
			return 0, k.oopsf(OopsBadPageTable, "pid %d speculation resolver left %#x non-resident", p.PID, va)
		}
		frame := npte.Frame()
		if write {
			if err := k.setPTE(pteAddr, npte.WithDirty()); err != nil {
				return 0, err
			}
		}
		return frame, nil

	case pte.Swapped():
		k.Perf.PageFaults++
		if behave := k.executeKernelFunc(FuncSwap, p); behave != BehaveBenign {
			return 0, k.manifest(behave, "swap-in")
		}
		if k.swap == nil {
			return 0, k.oopsf(OopsBadPageTable, "swapped PTE with no swap device")
		}
		data, rerr := k.swap.Read(pte.SwapSlot())
		if rerr != nil {
			return 0, k.oopsf(OopsBadPageTable, "pid %d swap-in slot %d: %v", p.PID, pte.SwapSlot(), rerr)
		}
		frame, aerr := k.allocFrame(phys.FrameUser)
		if aerr != nil {
			return 0, aerr
		}
		if werr := k.M.Mem.WriteAt(phys.FrameAddr(frame), data); werr != nil {
			return 0, k.oopsf(OopsBadPageTable, "swap-in copy: %v", werr)
		}
		k.swap.Free(pte.SwapSlot())
		npte := layout.MakePresentPTE(frame, pte.Writable())
		if write {
			npte = npte.WithDirty()
		}
		if err := k.setPTE(pteAddr, npte); err != nil {
			return 0, err
		}
		k.Perf.SwapIns++
		return frame, nil

	default:
		// Never-touched page: demand fill.
		k.Perf.PageFaults++
		if behave := k.executeKernelFunc(FuncPageFault, p); behave != BehaveBenign {
			return 0, k.manifest(behave, "page-fault")
		}
		region, rerr := k.findRegion(p, va)
		if rerr != nil {
			return 0, rerr
		}
		frame, aerr := k.allocFrame(phys.FrameUser)
		if aerr != nil {
			return 0, aerr
		}
		if region.Kind == layout.RegionFileMap && region.File != 0 {
			frec, ferr := layout.ReadFileRec(k.M.Mem, region.File, k.P.VerifyCRC)
			if ferr != nil {
				return 0, k.oopsf(OopsBadStructure, "pid %d mmap file record: %v", p.PID, ferr)
			}
			pageBase := va &^ uint64(phys.PageSize-1)
			fileOff := int64(region.FileOffset + (pageBase - region.Start))
			buf := make([]byte, phys.PageSize)
			if _, err := k.FS.ReadAt(frec.Path, fileOff, buf); err == nil {
				if werr := k.M.Mem.WriteAt(phys.FrameAddr(frame), buf); werr != nil {
					return 0, k.oopsf(OopsBadPageTable, "mmap fill: %v", werr)
				}
			}
		}
		writable := region.Prot&layout.ProtWrite != 0
		npte := layout.MakePresentPTE(frame, writable)
		if write {
			npte = npte.WithDirty()
		}
		if err := k.setPTE(pteAddr, npte); err != nil {
			return 0, err
		}
		return frame, nil
	}
}

// ReadVM copies user memory at va into buf, page by page, charging TLB and
// cycle costs.
func (k *Kernel) ReadVM(p *Process, va uint64, buf []byte) error {
	return k.accessVM(p, va, buf, false)
}

// WriteVM copies buf into user memory at va.
func (k *Kernel) WriteVM(p *Process, va uint64, buf []byte) error {
	return k.accessVM(p, va, buf, true)
}

func (k *Kernel) accessVM(p *Process, va uint64, buf []byte, write bool) error {
	wasCopy := k.inCopyWindow
	k.inCopyWindow = true
	defer func() { k.inCopyWindow = wasCopy }()

	// Data movement costs virtual time at memcpy bandwidth, so bulk
	// operations (checkpoints, crash-procedure scans) show up on the
	// clock that Table 6 and the Section 5.4 comparison read.
	k.M.Clock.Advance(k.cost.CopyCost(int64(len(buf))))

	off := 0
	for off < len(buf) {
		pageVA := (va + uint64(off)) &^ uint64(phys.PageSize-1)
		inPage := int(va) + off - int(pageVA)
		n := phys.PageSize - inPage
		if n > len(buf)-off {
			n = len(buf) - off
		}
		frame, err := k.touchPage(p, va+uint64(off), write)
		if err != nil {
			return err
		}
		k.chargeAccess(pageVA >> 12)
		pa := phys.FrameAddr(frame) + uint64(inPage)
		if write {
			if err := k.M.Mem.WriteAt(pa, buf[off:off+n]); err != nil {
				var pf *phys.ProtectionFault
				if errors.As(err, &pf) {
					return k.oopsf(OopsProtection, "pid %d write hit protected frame %d", p.PID, pf.Frame)
				}
				return k.oopsf(OopsBadPageTable, "user write: %v", err)
			}
		} else {
			if err := k.M.Mem.ReadAt(pa, buf[off:off+n]); err != nil {
				return k.oopsf(OopsBadPageTable, "user read: %v", err)
			}
		}
		off += n
	}
	return nil
}

// AccessPattern simulates n read accesses spread over the page span starting
// at va, without moving data: the workload generator's way of modelling an
// application's working-set traffic for the TLB (Table 3).
func (k *Kernel) AccessPattern(p *Process, va uint64, pages int, accesses int) error {
	if pages < 1 {
		pages = 1
	}
	for i := 0; i < accesses; i++ {
		page := va + uint64(k.rng.Pick(pages))*phys.PageSize
		if _, err := k.touchPage(p, page, false); err != nil {
			return err
		}
		k.chargeAccess(page >> 12)
	}
	return nil
}

// SwapOutPages evicts up to n resident pages of p to the swap partition,
// returning how many were evicted.
func (k *Kernel) SwapOutPages(p *Process, n int) (int, error) {
	if k.swap == nil || n <= 0 {
		return 0, nil
	}
	evicted := 0
	err := k.forEachPTE(p, func(pteAddr uint64, pte layout.PTE, va uint64) (bool, error) {
		if evicted >= n || !pte.Present() {
			return true, nil
		}
		frame := pte.Frame()
		if frame >= k.M.Mem.NumFrames() {
			return false, k.oopsf(OopsBadPageTable, "swap-out: PTE frame %d invalid", frame)
		}
		data, ferr := k.M.Mem.Frame(frame)
		if ferr != nil {
			return false, ferr
		}
		slot, serr := k.swap.Alloc(data)
		if serr != nil {
			return true, nil // swap full: stop evicting, not fatal
		}
		if werr := k.setPTE(pteAddr, layout.MakeSwappedPTE(slot, pte.Writable())); werr != nil {
			return false, werr
		}
		k.Alloc.Free(frame)
		evicted++
		k.Perf.SwapOuts++
		return true, nil
	})
	return evicted, err
}

// forEachPTE visits every allocated PTE slot of the process. The visitor
// returns false to abort the walk.
func (k *Kernel) forEachPTE(p *Process, visit func(pteAddr uint64, pte layout.PTE, va uint64) (bool, error)) error {
	for dir := 0; dir < layout.DirEntries; dir++ {
		dirSlot := p.D.PageDir + uint64(dir)*layout.PTESize
		dirEnt, err := k.M.Mem.ReadU64(dirSlot)
		if err != nil {
			return k.oopsf(OopsBadPageTable, "page directory read: %v", err)
		}
		if dirEnt == 0 {
			continue
		}
		if dirEnt%phys.PageSize != 0 || dirEnt >= uint64(k.M.Mem.Size()) {
			return k.oopsf(OopsBadPageTable, "page directory entry %#x invalid", dirEnt)
		}
		for t := 0; t < layout.PTEsPerPage; t++ {
			pteAddr := dirEnt + uint64(t)*layout.PTESize
			raw, err := k.M.Mem.ReadU64(pteAddr)
			if err != nil {
				return k.oopsf(OopsBadPageTable, "PTE read: %v", err)
			}
			pte := layout.PTE(raw)
			if pte == 0 {
				continue
			}
			cont, err := visit(pteAddr, pte, layout.VirtJoin(dir, t, 0))
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
	return nil
}

// ResidentPages counts present pages in the process's page tables.
func (k *Kernel) ResidentPages(p *Process) (present, swapped int, err error) {
	err = k.forEachPTE(p, func(_ uint64, pte layout.PTE, _ uint64) (bool, error) {
		if pte.Present() {
			present++
		} else if pte.Swapped() {
			swapped++
		}
		return true, nil
	})
	return present, swapped, err
}
