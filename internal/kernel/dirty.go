package kernel

import (
	"otherworld/internal/disk"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// DirtyPages enumerates every dirty page-cache page of every live
// process's open files, in deterministic order (process creation order,
// then fd-list order, then page-list order), deduplicated by (path,
// offset) keeping the first occurrence. The failure-handling path calls it
// on the dead kernel to learn what the block layer may flush on its own
// after the crash (the crash model's orphan set), so unlike flushFile it
// must not oops: corrupt records end their list's walk silently — a page
// behind a corrupt record is simply lost, which is what a real drive sees.
func (k *Kernel) DirtyPages() []disk.DirtyPage {
	var out []disk.DirtyPage
	type pageKey struct {
		path string
		off  uint64
	}
	seen := make(map[pageKey]struct{})
	for _, p := range k.Procs() {
		cur := p.D.Files
		for hops := 0; cur != 0; hops++ {
			if hops > 4096 {
				break
			}
			rec, err := layout.ReadFileRec(k.M.Mem, cur, k.P.VerifyCRC)
			if err != nil {
				break
			}
			cp := rec.CachePages
			for chops := 0; cp != 0; chops++ {
				if chops > 65536 {
					break
				}
				page, perr := layout.ReadCachePage(k.M.Mem, cp, k.P.VerifyCRC)
				if perr != nil {
					break
				}
				if page.Dirty && page.Bytes > 0 && page.Bytes <= phys.PageSize {
					key := pageKey{path: rec.Path, off: page.FileOff}
					if _, dup := seen[key]; !dup {
						seen[key] = struct{}{}
						buf := make([]byte, page.Bytes)
						if rerr := k.M.Mem.ReadAt(page.Frame*phys.PageSize, buf); rerr == nil {
							out = append(out, disk.DirtyPage{
								Path: rec.Path,
								Off:  int64(page.FileOff),
								Data: buf,
							})
						}
					}
				}
				cp = page.Next
			}
			cur = rec.Next
		}
	}
	return out
}
