package kernel

import (
	"otherworld/internal/disk"
	"otherworld/internal/fs"
	"otherworld/internal/hw"
)

// Small constructors shared by the kernel tests.

func newTestMachineSized(memBytes int) *hw.Machine {
	return hw.NewMachine(hw.Config{
		MemoryBytes:     memBytes,
		NumCPUs:         2,
		TLBEntries:      64,
		WatchdogEnabled: true,
	})
}

func newSwapDev(name string, slots int) *disk.BlockDevice {
	return disk.NewBlockDevice(name, slots)
}

func newFS() *fs.FlatFS { return fs.New() }
