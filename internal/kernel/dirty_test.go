package kernel

import (
	"bytes"
	"reflect"
	"testing"

	"otherworld/internal/layout"
)

// dirtySetup boots a kernel with two processes holding dirty page-cache
// pages: proc A has two files (one spanning two pages), proc B has one.
func dirtySetup(t *testing.T) (*Kernel, *Env, *Env) {
	t.Helper()
	k := bootTestKernel(t, nil)
	pa, err := k.CreateProcess("a", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := k.CreateProcess("b", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	ea := &Env{K: k, P: pa}
	eb := &Env{K: k, P: pb}
	fd1, err := ea.Open("/a/one", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.WriteFile(fd1, bytes.Repeat([]byte{'x'}, 5000)); err != nil {
		t.Fatal(err)
	}
	fd2, err := ea.Open("/a/two", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.WriteFile(fd2, []byte("second file")); err != nil {
		t.Fatal(err)
	}
	fd3, err := eb.Open("/b/one", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eb.WriteFile(fd3, []byte("other proc")); err != nil {
		t.Fatal(err)
	}
	return k, ea, eb
}

// TestDirtyPagesEnumeratesAndOrdersDeterministically: the crash model's
// orphan set must be complete (every unflushed page present with its data)
// and in a stable order — OrphanFlush permutes it with the machine seed, so
// a wobbly enumeration order would make crash consequences unreplayable.
func TestDirtyPagesEnumeratesAndOrdersDeterministically(t *testing.T) {
	k, _, _ := dirtySetup(t)
	pages := k.DirtyPages()
	if len(pages) != 4 {
		t.Fatalf("want 4 dirty pages (2+1+1), got %d: %+v", len(pages), pages)
	}
	byKey := map[string]int{}
	for _, pg := range pages {
		byKey[pg.Path]++
	}
	if byKey["/a/one"] != 2 || byKey["/a/two"] != 1 || byKey["/b/one"] != 1 {
		t.Fatalf("wrong page multiset: %v", byKey)
	}
	for _, pg := range pages {
		if pg.Path == "/a/one" && pg.Off == 0 && !bytes.Equal(pg.Data, bytes.Repeat([]byte{'x'}, 4096)) {
			t.Fatalf("first page of /a/one holds wrong bytes")
		}
		if pg.Path == "/b/one" && string(pg.Data) != "other proc" {
			t.Fatalf("/b/one data = %q", pg.Data)
		}
	}
	// Same kernel, repeated calls: identical slice.
	if again := k.DirtyPages(); !reflect.DeepEqual(pages, again) {
		t.Fatalf("repeated enumeration differs:\n%+v\nvs\n%+v", pages, again)
	}
	// A freshly built identical kernel: identical slice.
	k2, _, _ := dirtySetup(t)
	if other := k2.DirtyPages(); !reflect.DeepEqual(pages, other) {
		t.Fatalf("rebuilt kernel enumerates differently:\n%+v\nvs\n%+v", pages, other)
	}
}

// TestDirtyPagesDedupKeepsFirstOccurrence: two processes caching the same
// (path, offset) contribute one orphan — the first in walk order (process
// creation order) — never two conflicting flushes of the same page.
func TestDirtyPagesDedupKeepsFirstOccurrence(t *testing.T) {
	k := bootTestKernel(t, nil)
	pa, _ := k.CreateProcess("a", "test-prog")
	pb, _ := k.CreateProcess("b", "test-prog")
	ea := &Env{K: k, P: pa}
	eb := &Env{K: k, P: pb}
	fda, err := ea.Open("/shared", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.WriteFile(fda, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	fdb, err := eb.Open("/shared", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eb.WriteFile(fdb, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	var shared []string
	for _, pg := range k.DirtyPages() {
		if pg.Path == "/shared" && pg.Off == 0 {
			shared = append(shared, string(pg.Data))
		}
	}
	if len(shared) != 1 {
		t.Fatalf("(path, off) deduplication failed: %v", shared)
	}
	if shared[0] != "AAAA" {
		t.Fatalf("dedup kept %q, want the first process's page \"AAAA\"", shared[0])
	}
}

// TestDirtyPagesSkipsCleanPages: fsync cleans a descriptor's pages; only
// still-dirty pages are orphan candidates.
func TestDirtyPagesSkipsCleanPages(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, err := k.CreateProcess("a", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{K: k, P: p}
	fdDirty, err := env.Open("/dirty", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.WriteFile(fdDirty, []byte("unflushed")); err != nil {
		t.Fatal(err)
	}
	fdClean, err := env.Open("/clean", layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.WriteFile(fdClean, []byte("flushed")); err != nil {
		t.Fatal(err)
	}
	if err := env.Fsync(fdClean); err != nil {
		t.Fatal(err)
	}
	pages := k.DirtyPages()
	if len(pages) != 1 || pages[0].Path != "/dirty" {
		t.Fatalf("want only /dirty enumerated, got %+v", pages)
	}
}

// TestDirtyPagesCorruptRecordEndsWalkSilently: DirtyPages runs against the
// DEAD kernel's records, so a corrupt record must not oops — the pages
// behind it are silently lost (a real drive never sees them) while every
// other process's pages survive enumeration.
func TestDirtyPagesCorruptRecordEndsWalkSilently(t *testing.T) {
	k, _, _ := dirtySetup(t)
	// Scribble over process a's first file record header.
	pa := k.Procs()[0]
	rec, err := layout.ReadFileRec(k.M.Mem, pa.D.Files, k.P.VerifyCRC)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.M.Mem.WriteAt(rec.CachePages, bytes.Repeat([]byte{0xFF}, 32)); err != nil {
		t.Fatal(err)
	}
	pages := k.DirtyPages()
	// The clobbered file's pages are gone; process b's page must survive.
	var sawB bool
	for _, pg := range pages {
		if pg.Path == rec.Path {
			t.Fatalf("pages behind a corrupt record still enumerated: %+v", pg)
		}
		if pg.Path == "/b/one" {
			sawB = true
		}
	}
	if !sawB {
		t.Fatal("corruption in one process wiped out another process's pages")
	}
}
