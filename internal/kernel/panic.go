package kernel

import (
	"errors"
	"fmt"

	"otherworld/internal/hw"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/trace"
)

// PanicKind classifies a kernel failure.
type PanicKind int

// Panic kinds.
const (
	// PanicOops is a detected fatal error (bad dereference, corrupted
	// structure, protection fault, OOM with nothing to evict).
	PanicOops PanicKind = iota
	// PanicHang is a wedged kernel. With the watchdog hardening, stall
	// detection raises an NMI and the microreboot proceeds; without it
	// the system stalls forever.
	PanicHang
	// PanicDoubleFault is a double fault. The stock KDump path stopped
	// the system on double faults; the paper's hardening fixed the
	// handler to start the microreboot.
	PanicDoubleFault
)

func (p PanicKind) String() string {
	switch p {
	case PanicOops:
		return "oops"
	case PanicHang:
		return "hang"
	case PanicDoubleFault:
		return "double-fault"
	}
	return fmt.Sprintf("PanicKind(%d)", int(p))
}

// OopsKind is the detected-error subcategory, kept for diagnostics.
type OopsKind int

// Oops subcategories.
const (
	OopsBadStructure OopsKind = iota
	OopsBadPageTable
	OopsProtection
	OopsOOM
	OopsWildWrite
	OopsExplicit
)

// PanicEvent is the recorded kernel failure.
type PanicEvent struct {
	Kind   PanicKind
	Oops   OopsKind
	Reason string
	// CPU is the processor that executed the failing code.
	CPU int
}

func (e *PanicEvent) Error() string {
	return fmt.Sprintf("kernel panic (%s): %s", e.Kind, e.Reason)
}

// IsPanic reports whether err is (or wraps) a kernel panic.
func IsPanic(err error) bool {
	var pe *PanicEvent
	return errors.As(err, &pe)
}

// oopsf records a detected fatal kernel error. The first panic wins;
// subsequent errors while already down return the original event.
func (k *Kernel) oopsf(kind OopsKind, format string, args ...any) error {
	if k.panicState == nil {
		k.panicState = &PanicEvent{
			Kind:   PanicOops,
			Oops:   kind,
			Reason: fmt.Sprintf(format, args...),
			CPU:    0,
		}
		k.logf("PANIC: %s", k.panicState.Reason)
		k.tracePanic()
	}
	return k.panicState
}

// raise records a non-oops failure (hang, double fault).
func (k *Kernel) raise(kind PanicKind, reason string) error {
	if k.panicState == nil {
		k.panicState = &PanicEvent{Kind: kind, Reason: reason, CPU: 0}
		k.logf("PANIC (%s): %s", kind, reason)
		k.tracePanic()
	}
	return k.panicState
}

// executeKernelFunc models running a kernel function: if the injector
// clobbered bytes in its text range, the corrupted instruction misbehaves.
// Silent wild writes are performed here and execution continues — the
// error-propagation case; everything else is returned for the caller to
// manifest as a failure. A silent-wild-write instruction stores through the
// same bad pointer every time, so after the first store the byte is treated
// as benign: re-executing it re-corrupts the same location, not new ones.
func (k *Kernel) executeKernelFunc(fn FuncID, p *Process) Misbehavior {
	if k.panicState != nil {
		return BehaveFailStop
	}
	behave := k.Text.CheckExecute(fn, k.rng.Float64)
	if behave == BehaveWildWriteSilent {
		k.wildWrite()
		k.Text.Settle(fn, BehaveWildWriteSilent)
		return BehaveBenign
	}
	return behave
}

// manifest converts a misbehaviour into the corresponding kernel failure.
func (k *Kernel) manifest(behave Misbehavior, where string) error {
	if behave != BehaveBenign {
		k.Tracer.Record(trace.Event{
			Kind: trace.KindFaultManifest,
			A:    uint64(behave),
			Note: where,
		})
	}
	switch behave {
	case BehaveFailStop:
		return k.oopsf(OopsExplicit, "invalid opcode in %s path", where)
	case BehaveWildWriteStop:
		detected := k.wildWrite()
		if detected {
			return k.oopsf(OopsProtection, "stray store trapped in %s path", where)
		}
		return k.oopsf(OopsWildWrite, "stray store then fault in %s path", where)
	case BehaveHang:
		return k.raise(PanicHang, "kernel wedged in "+where+" path")
	case BehaveDoubleFault:
		return k.raise(PanicDoubleFault, "double fault in "+where+" path")
	default:
		return nil
	}
}

// wildWrite performs a stray store — the error-propagation hazard
// Section 4 analyses. Half of the stray stores go through pointers derived
// from live kernel state (a stale or mangled pointer still points near what
// the kernel was touching), so they land in recently-used memory: user
// frames, page-table pages and kernel heap records; the rest scatter
// uniformly over physical memory. It reports whether the store was
// *detected* (trapped) rather than silently applied:
//
//   - stores into write-protected frames (the crash-kernel image) trap via
//     memory hardware;
//   - with user-space protection enabled, stores into user frames outside a
//     legitimate copyin/copyout window trap, because the kernel page-table
//     set does not map user memory (Section 4).
func (k *Kernel) wildWrite() (detected bool) {
	var addr uint64
	if t, ok := k.biasedWildTarget(); ok && k.rng.Chance(0.5) {
		addr = t
	} else {
		addr = uint64(k.rng.Int63n(int64(k.M.Mem.Size() - 8)))
	}
	frame := phys.FrameOf(addr)
	kind := k.M.Mem.Kind(frame)

	k.Perf.WildWrites++
	if k.P.UserSpaceProtection && kind == phys.FrameUser && !k.inCopyWindow {
		k.Perf.WildWritesTrapped++
		return true
	}
	// A stray store is rarely a single word: the clobbered instruction
	// usually sits in a copy or initialization loop, so a short run of
	// bytes is overwritten before anything faults.
	junk := make([]byte, 16+k.rng.Intn(113))
	if int(addr)+len(junk) > k.M.Mem.Size() {
		junk = junk[:k.M.Mem.Size()-int(addr)]
	}
	k.rng.Read(junk)
	if err := k.M.Mem.WriteAt(addr, junk); err != nil {
		// Protected frame (crash image): the hardware trapped the store.
		k.Perf.WildWritesTrapped++
		return true
	}
	k.Perf.WildWritesLanded++
	if kind == phys.FramePageTable {
		k.Perf.WildWritesPageTable++
	}
	return false
}

// biasedWildTarget picks a physical address in recently-used memory: a
// resident user page, a page-table page or a kernel heap frame of a random
// live process. ok is false if nothing suitable was found.
func (k *Kernel) biasedWildTarget() (uint64, bool) {
	roll := k.rng.Float64()
	// A pointer derived from live kernel state overwhelmingly points at
	// data buffers (user pages); the compact metadata — heap records and
	// page-table pages — is a thin slice of the kernel's working set, so
	// only a small share of stray stores land there (the paper observed
	// kernel-structure corruption blocking resurrection in just 3 of
	// 2000 runs).
	// 1.5%: kernel heap records.
	if roll < 0.015 {
		if frames := k.Heap.Frames(); len(frames) > 0 {
			f := frames[k.rng.Pick(len(frames))]
			return phys.FrameAddr(f) + uint64(k.rng.Intn(phys.PageSize-8)), true
		}
		return 0, false
	}
	procs := k.Procs()
	if len(procs) == 0 {
		return 0, false
	}
	p := procs[k.rng.Pick(len(procs))]
	// Collect the populated page-directory slots (the process's live
	// address-space spans), then aim within one of them.
	var tables []uint64
	for dir := 0; dir < layout.DirEntries; dir++ {
		ent, err := k.M.Mem.ReadU64(p.D.PageDir + uint64(dir)*layout.PTESize)
		if err != nil || ent == 0 || ent%phys.PageSize != 0 || ent >= uint64(k.M.Mem.Size()) {
			continue
		}
		tables = append(tables, ent)
	}
	if len(tables) == 0 {
		return 0, false
	}
	ent := tables[k.rng.Pick(len(tables))]
	// 1.5%: hit the page-table page itself (the rare corruption class
	// that can defeat user-space protection, as in the paper's single
	// residual MySQL case).
	if roll < 0.015+0.015 {
		return ent + uint64(k.rng.Intn(phys.PageSize-8)), true
	}
	// 97%: a resident user page under it.
	for ptry := 0; ptry < 64; ptry++ {
		slot := k.rng.Intn(layout.PTEsPerPage)
		raw, err := k.M.Mem.ReadU64(ent + uint64(slot)*layout.PTESize)
		if err != nil {
			continue
		}
		pte := layout.PTE(raw)
		if pte.Present() && pte.Frame() < k.M.Mem.NumFrames() {
			return phys.FrameAddr(pte.Frame()) + uint64(k.rng.Intn(phys.PageSize-8)), true
		}
	}
	return 0, false
}

// TransferOutcome reports how the main→crash control transfer went.
type TransferOutcome struct {
	OK bool
	// Reason explains a failed transfer.
	Reason string
	// HaltAcked reports whether all CPUs acknowledged the halt NMI.
	HaltAcked bool
}

// crashImageMagicOffset is where LoadCrashImage writes its sentinel within
// the crash region.
const crashImageMagic uint64 = 0x4F5448455257524C // "OTHERWRL"

// LoadCrashImage installs the crash-kernel image into the reserved region
// and write-protects it (Section 3.1: the image "is left there untouched
// and uninitialized, protected by memory hardware").
func (k *Kernel) LoadCrashImage() error {
	r := k.P.CrashRegion
	if r.Frames == 0 {
		return fmt.Errorf("kernel: no crash region configured")
	}
	base := phys.FrameAddr(r.Start)
	if err := k.M.Mem.WriteU64(base, crashImageMagic); err != nil {
		return fmt.Errorf("kernel: write crash image: %w", err)
	}
	for f := r.Start; f < r.End(); f++ {
		if err := k.M.Mem.SetKind(f, phys.FrameCrashImage); err != nil {
			return err
		}
		if err := k.M.Mem.Protect(f, true); err != nil {
			return err
		}
	}
	k.logf("crash kernel image loaded at %v (protected)", r)
	return nil
}

// crashImageIntact verifies the crash-region sentinel.
func (k *Kernel) crashImageIntact() bool {
	v, err := k.M.Mem.ReadU64(phys.FrameAddr(k.P.CrashRegion.Start))
	return err == nil && v == crashImageMagic
}

// AttemptTransfer models the ~100 lines of code that pass control from the
// failed main kernel to the crash kernel (Section 3.2), including the
// Section 6 hardening fixes. It must be called after the kernel panicked.
//
// The transfer can fail — these are Table 5's "failure to boot the crash
// kernel" cases — if: the system stalled with no watchdog; a double fault
// hit the unfixed KDump handler; the panic/transfer code itself was
// clobbered; the interrupt descriptor table's kexec gate was corrupted;
// CPUs fail to acknowledge the halt NMI because the interrupt-frame words
// on a running thread's kernel stack were corrupted; or the pre-hardening
// panic path trips over a corrupted stack or process descriptor.
func (k *Kernel) AttemptTransfer() TransferOutcome {
	if k.panicState == nil {
		return TransferOutcome{OK: false, Reason: "no panic pending"}
	}
	h := k.P.Hardening

	switch k.panicState.Kind {
	case PanicHang:
		if !k.M.Watchdog || !h.WatchdogNMI {
			return TransferOutcome{Reason: "system stalled: no watchdog NMI to recover"}
		}
	case PanicDoubleFault:
		if !h.DoubleFaultMicroreboot {
			return TransferOutcome{Reason: "double fault: stock KDump handler stopped the system"}
		}
	}

	// The panic-reporting path runs kernel code; if its text was
	// clobbered the transfer never starts.
	if k.Text.CheckExecute(FuncPanic, k.rng.Float64) != BehaveBenign {
		return TransferOutcome{Reason: "panic path itself corrupted"}
	}

	cur := k.currentProcess()

	if !h.NoStackPrintRecursion && cur != nil {
		// The stock KDump path walks the failing thread's stack to print
		// it; a corrupted frame chain recurses only when the damage sits
		// on the words the walker follows (a few percent of scratch
		// corruptions).
		if _, ok := k.stackRangeIntact(cur.D.KStack, kstackScratchStart, phys.PageSize); !ok && k.rng.Chance(0.04) {
			return TransferOutcome{Reason: "infinite recursion printing corrupted stack (pre-hardening KDump)"}
		}
	}
	if !h.NoTrustCurrent && cur != nil {
		if _, err := k.readProcRecord(cur.Addr); err != nil {
			return TransferOutcome{Reason: "panic path dereferenced corrupted current process descriptor"}
		}
	}

	// Halt every other CPU; each must save its thread's context onto the
	// thread's kernel stack and set the global saved flag (Section 3.2).
	// nmiFrameBroken reports whether a corrupted interrupt-frame slot on
	// the thread's stack actually breaks the NMI handler: about half of
	// the possible corrupt values still let the handler complete.
	nmiFrameBroken := func(p *Process) bool {
		if _, ok := k.stackRangeIntact(p.D.KStack, kstackNMIStart, kstackNMIEnd); ok {
			return false
		}
		return k.rng.Chance(0.5)
	}

	acked := k.M.BroadcastHaltNMI(k.panicState.CPU, func(cpu *hw.CPU) bool {
		p := k.procs[cpu.CurrentPID]
		if p == nil {
			return true // idle CPU has nothing to save
		}
		// The NMI handler builds its interrupt frame on the thread's
		// kernel stack; if those words were corrupted the handler
		// faults and never acknowledges.
		if nmiFrameBroken(p) {
			return false
		}
		return k.SaveContextToStack(p) == nil
	})
	if !acked {
		return TransferOutcome{Reason: "CPU failed to acknowledge halt NMI (corrupted interrupt frame)", HaltAcked: false}
	}
	// The failing CPU saves the context of its own thread too.
	if cur != nil {
		if nmiFrameBroken(cur) {
			return TransferOutcome{Reason: "failing CPU could not save context (corrupted interrupt frame)", HaltAcked: false}
		}
		if err := k.SaveContextToStack(cur); err != nil {
			return TransferOutcome{Reason: "failing CPU context save failed", HaltAcked: false}
		}
	}

	// Execute the transfer stub and jump through the kexec gate.
	if k.Text.CheckExecute(FuncTransferStub, k.rng.Float64) != BehaveBenign {
		return TransferOutcome{Reason: "transfer stub corrupted"}
	}
	if _, ok := hw.ReadIDTEntry(k.M.Mem, hw.VecKexec); !ok {
		return TransferOutcome{Reason: "kexec IDT gate corrupted"}
	}
	if !k.crashImageIntact() {
		return TransferOutcome{Reason: "no intact crash kernel image in reserved region"}
	}

	k.logf("control transferred to crash kernel (%s)", k.panicState.Kind)
	return TransferOutcome{OK: true, HaltAcked: true}
}

// currentProcess returns the process the failing CPU was executing.
func (k *Kernel) currentProcess() *Process {
	if len(k.M.CPUs) == 0 {
		return nil
	}
	return k.procs[k.M.CPUs[k.panicCPU()].CurrentPID]
}

func (k *Kernel) panicCPU() int {
	if k.panicState != nil && k.panicState.CPU < len(k.M.CPUs) {
		return k.panicState.CPU
	}
	return 0
}

// InjectOops lets tests and the demo force a clean panic without fault
// injection, modelling an explicit BUG() in the kernel.
func (k *Kernel) InjectOops(reason string) error {
	return k.oopsf(OopsExplicit, "%s", reason)
}

// WildWriteForTest exposes the stray-store model to tests and calibration
// harnesses.
func (k *Kernel) WildWriteForTest() bool { return k.wildWrite() }

// RaiseHangForTest wedges the kernel, as a livelock would; exposed for
// harnesses exercising the watchdog-less stall path.
func (k *Kernel) RaiseHangForTest() { _ = k.raise(PanicHang, "test-induced stall") }
