package kernel

import (
	"errors"
	"testing"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

func TestAccessPatternBeyondRegionSegfaults(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.MapAnon(0x100000, 4*phys.PageSize, layout.ProtRead|layout.ProtWrite); err != nil {
		t.Fatal(err)
	}
	// Spanning 16 pages over a 4-page region must eventually fault.
	err := env.Access(0x100000, 16, 200)
	if !errors.Is(err, ErrSegfault) {
		t.Fatalf("want segfault, got %v", err)
	}
	// Within bounds it is fine.
	if err := env.Access(0x100000, 4, 200); err != nil {
		t.Fatal(err)
	}
}

func TestWriteU64AcrossPageBoundary(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if err := env.MapAnon(0x100000, 2*phys.PageSize, layout.ProtRead|layout.ProtWrite); err != nil {
		t.Fatal(err)
	}
	va := uint64(0x100000 + phys.PageSize - 4) // straddles two pages
	if err := env.WriteU64(va, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := env.ReadU64(va)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("straddling word = %#x %v", v, err)
	}
}

func TestExitRemovesFromScheduling(t *testing.T) {
	k := bootTestKernel(t, nil)
	p1, _ := k.CreateProcess("a", "step-counter")
	p2, _ := k.CreateProcess("b", "step-counter")
	env := &Env{K: k, P: p1}
	if err := env.Exit(0); err != nil {
		t.Fatal(err)
	}
	res := k.Run(20)
	if res.Panic != nil {
		t.Fatalf("panic: %v", res.Panic)
	}
	// Only p2 advanced.
	e2 := &Env{K: k, P: p2}
	v, _ := e2.ReadU64(scVA)
	if v != 20 {
		t.Fatalf("p2 steps = %d", v)
	}
	if p1.Ctx.PC != 0 {
		t.Fatal("exited process kept running")
	}
}

func TestEnvPIDAndResurrectedAccessors(t *testing.T) {
	k := bootTestKernel(t, nil)
	env := envFor(t, k)
	if env.PID() == 0 {
		t.Fatal("zero pid")
	}
	if env.Resurrected() != 0 {
		t.Fatal("fresh process claims resurrection")
	}
	if env.PC() != 0 {
		t.Fatal("fresh PC nonzero")
	}
}

func TestMapRegionValidation(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	// Unaligned start.
	if err := k.MapRegion(p, 0x100001, 4096, layout.ProtRead, layout.RegionAnon, 0, 0); err == nil {
		t.Fatal("unaligned region accepted")
	}
	// Zero length.
	if err := k.MapRegion(p, 0x100000, 0, layout.ProtRead, layout.RegionAnon, 0, 0); err == nil {
		t.Fatal("zero-length region accepted")
	}
	// Beyond user space.
	if err := k.MapRegion(p, layout.MaxUserVA-phys.PageSize, 2*phys.PageSize, layout.ProtRead, layout.RegionAnon, 0, 0); err == nil {
		t.Fatal("region past user space accepted")
	}
}

func TestLongNamesRejected(t *testing.T) {
	k := bootTestKernel(t, nil)
	long := string(make([]byte, 100))
	if _, err := k.CreateProcess(long, "test-prog"); err == nil {
		t.Fatal("oversized name accepted")
	}
	p, _ := k.CreateProcess("ok", "test-prog")
	if err := k.RegisterCrashProcedure(p, long); err == nil {
		t.Fatal("oversized crash-proc name accepted")
	}
}
