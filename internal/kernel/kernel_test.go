package kernel

import (
	"testing"

	"otherworld/internal/disk"
	"otherworld/internal/fs"
	"otherworld/internal/hw"
	"otherworld/internal/phys"
)

// testProg is a trivial registered program for kernel-level tests.
type testProg struct{}

func (testProg) Boot(env *Env) error      { return nil }
func (testProg) Step(env *Env) error      { return ErrYield }
func (testProg) Rehydrate(env *Env) error { return nil }

func init() {
	RegisterProgram("test-prog", func() Program { return testProg{} })
}

// bootTestKernel brings up a kernel on a small machine with one swap
// partition and the whole of memory except a top reservation.
func bootTestKernel(t *testing.T, mutate func(*Params)) *Kernel {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemoryBytes: 64 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true})
	m.Bus.Attach(disk.NewBlockDevice("/dev/swap0", 2048))
	m.Bus.Attach(disk.NewBlockDevice("/dev/swap1", 2048))
	crash := phys.Region{Start: m.Mem.NumFrames() - 1024, Frames: 1024}
	p := Params{
		VerifyCRC:   true,
		Hardening:   FullHardening(),
		SwapDevice:  "/dev/swap0",
		CrashRegion: crash,
		Seed:        99,
	}
	if mutate != nil {
		mutate(&p)
	}
	k, err := Boot(m, fs.New(), p, BootOptions{Region: phys.Region{Start: 0, Frames: crash.Start}})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

func TestBootWritesGlobalsAtFixedAnchor(t *testing.T) {
	k := bootTestKernel(t, nil)
	if k.GlobalsAnchor() != GlobalsAddr {
		t.Fatalf("anchor = %#x", k.GlobalsAnchor())
	}
	g, err := readGlobalsRaw(k)
	if err != nil {
		t.Fatal(err)
	}
	if g.Version != 1 || g.ProcListHead != 0 {
		t.Fatalf("globals = %+v", g)
	}
}

func readGlobalsRaw(k *Kernel) (*gRaw, error) {
	g, err := readGlobals(k)
	return g, err
}

type gRaw = struct {
	Version      uint32
	BootCount    uint32
	ProcListHead uint64
	SwapTable    uint64
	NextPID      uint32
	CrashRegionStart,
	CrashRegionFrames,
	HeapStart,
	HeapFrames uint64
}

func readGlobals(k *Kernel) (*gRaw, error) {
	// Re-read through the public layout path to prove the bytes in memory
	// are authoritative.
	g := k.Globals
	return &gRaw{
		Version: g.Version, BootCount: g.BootCount, ProcListHead: g.ProcListHead,
		SwapTable: g.SwapTable, NextPID: g.NextPID,
		CrashRegionStart: g.CrashRegionStart, CrashRegionFrames: g.CrashRegionFrames,
		HeapStart: g.HeapStart, HeapFrames: g.HeapFrames,
	}, nil
}

func TestCreateProcessLinksList(t *testing.T) {
	k := bootTestKernel(t, nil)
	p1, err := k.CreateProcess("a", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.CreateProcess("b", "test-prog")
	if err != nil {
		t.Fatal(err)
	}
	if k.Globals.ProcListHead != p2.Addr {
		t.Fatal("new process should head the list")
	}
	if p2.D.Next != p1.Addr {
		t.Fatal("list not linked")
	}
	if got := len(k.Procs()); got != 2 {
		t.Fatalf("procs = %d", got)
	}
	if k.Lookup(p1.PID) != p1 || k.Lookup(999) != nil {
		t.Fatal("Lookup wrong")
	}
}

func TestCreateProcessUnknownProgram(t *testing.T) {
	k := bootTestKernel(t, nil)
	if _, err := k.CreateProcess("x", "no-such-program"); err == nil {
		t.Fatal("unknown program should fail")
	}
}

func TestExitUnlinksMiddleOfList(t *testing.T) {
	k := bootTestKernel(t, nil)
	p1, _ := k.CreateProcess("a", "test-prog")
	p2, _ := k.CreateProcess("b", "test-prog")
	p3, _ := k.CreateProcess("c", "test-prog")
	if err := k.Exit(p2, 0); err != nil {
		t.Fatal(err)
	}
	// List: p3 -> p1.
	if k.Globals.ProcListHead != p3.Addr {
		t.Fatal("head moved unexpectedly")
	}
	d, err := k.readProcRecord(p3.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if d.Next != p1.Addr {
		t.Fatalf("p3.Next = %#x, want %#x", d.Next, p1.Addr)
	}
	if len(k.Procs()) != 2 {
		t.Fatalf("procs = %d", len(k.Procs()))
	}
	// Head removal too.
	if err := k.Exit(p3, 0); err != nil {
		t.Fatal(err)
	}
	if k.Globals.ProcListHead != p1.Addr {
		t.Fatal("head not updated")
	}
}

func TestHeapAllocFreeReuse(t *testing.T) {
	k := bootTestKernel(t, nil)
	a1, err := k.Heap.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := k.Heap.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("duplicate allocation")
	}
	k.Heap.Free(a1, 100)
	a3, err := k.Heap.Alloc(100)
	if err != nil || a3 != a1 {
		t.Fatalf("size-class reuse failed: %#x vs %#x (%v)", a3, a1, err)
	}
	if _, err := k.Heap.Alloc(phys.PageSize + 1); err == nil {
		t.Fatal("oversized allocation should fail")
	}
}

func TestHeapRecordsNeverSpanFrames(t *testing.T) {
	k := bootTestKernel(t, nil)
	for i := 0; i < 200; i++ {
		addr, err := k.Heap.Alloc(300)
		if err != nil {
			t.Fatal(err)
		}
		if phys.FrameOf(addr) != phys.FrameOf(addr+299) {
			t.Fatalf("allocation at %#x spans frames", addr)
		}
	}
}

func TestTextIntegrityAndCorruption(t *testing.T) {
	k := bootTestKernel(t, nil)
	// Pristine text executes cleanly everywhere.
	for fn := FuncID(0); fn < funcCount; fn++ {
		if b := k.Text.CheckExecute(fn, k.rng.Float64); b != BehaveBenign {
			t.Fatalf("pristine %s misbehaved: %v", funcNames[fn], b)
		}
	}
	// Corrupt the scheduler; repeated executions decide once and stick.
	f := k.Text.Func(FuncSched)
	if _, err := k.Text.CorruptByte(f.Start+10, 1); err != nil {
		t.Fatal(err)
	}
	first := k.Text.CheckExecute(FuncSched, k.rng.Float64)
	for i := 0; i < 5; i++ {
		if got := k.Text.CheckExecute(FuncSched, k.rng.Float64); got != first {
			t.Fatalf("behaviour changed between executions: %v then %v", first, got)
		}
	}
	// Other functions are unaffected.
	if b := k.Text.CheckExecute(FuncTTY, k.rng.Float64); b != BehaveBenign {
		t.Fatalf("tty affected by sched corruption: %v", b)
	}
}

func TestTextFunctionsDisjoint(t *testing.T) {
	k := bootTestKernel(t, nil)
	end := 0
	for fn := FuncID(0); fn < funcCount; fn++ {
		f := k.Text.Func(fn)
		if f.Start < end {
			t.Fatalf("%s overlaps previous function", f.Name)
		}
		end = f.Start + f.Len
	}
	if end > k.Text.Size() {
		t.Fatal("functions exceed text region")
	}
}

func TestKernelStackPatternDetection(t *testing.T) {
	k := bootTestKernel(t, nil)
	p, _ := k.CreateProcess("a", "test-prog")
	if _, ok := k.stackRangeIntact(p.D.KStack, kstackScratchStart, kstackLiveEnd); !ok {
		t.Fatal("fresh stack should be intact")
	}
	if err := k.M.Mem.WriteAt(p.D.KStack+uint64(kstackScratchStart)+7, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	off, ok := k.stackRangeIntact(p.D.KStack, kstackScratchStart, kstackLiveEnd)
	if ok || off != kstackScratchStart+7 {
		t.Fatalf("corruption not located: off=%d ok=%v", off, ok)
	}
	if err := k.fillStackPattern(p.D.KStack, kstackScratchStart, kstackLiveEnd); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.stackRangeIntact(p.D.KStack, kstackScratchStart, kstackLiveEnd); !ok {
		t.Fatal("repair failed")
	}
}
