package kernel

import (
	"fmt"

	"otherworld/internal/phys"
)

// Text models the kernel's code region. The fault injector flips bytes here
// ("a single instruction, or instruction operand in the kernel code" — the
// Rio/Nooks injector the paper uses); corruption is *latent* until the
// kernel actually executes the affected function, at which point it
// manifests as one of the classic failure modes. Bytes in cold paths never
// execute, producing the ~20% of injection experiments that end with no
// kernel failure (Section 6).
//
// The text bytes are a deterministic pattern derived from the kernel seed,
// so corruption is detectable by comparison — the simulator's stand-in for
// "the CPU decoded a clobbered instruction", not a kernel integrity check.
type Text struct {
	mem   *phys.Mem
	base  uint64
	size  int
	seed  int64
	funcs [funcCount]TextFunc
	// decided remembers the behaviour assigned to each corrupted byte the
	// first time it executes: a real clobbered instruction misbehaves the
	// same way every time it runs.
	decided map[uint64]Misbehavior
}

// TextFunc is one kernel function's byte range within the text region.
type TextFunc struct {
	Name  string
	Start int // offset into the text region
	Len   int
}

// FuncID identifies a kernel function for execution accounting.
type FuncID int

// Kernel functions, in text-layout order.
const (
	FuncInterrupt    FuncID = iota // NMI/interrupt entry
	FuncTransferStub               // the ~100-line main→crash control transfer
	FuncPanic                      // panic/oops reporting path
	FuncSched                      // scheduler
	FuncSyscallEntry               // syscall gate
	FuncOpen                       // open/close path
	FuncReadWrite                  // read/write path
	FuncClone                      // process creation
	FuncMmap                       // memory mapping
	FuncPageFault                  // page-fault and demand-paging path
	FuncSwap                       // swap-out/swap-in path
	FuncTTY                        // terminal driver
	FuncIPC                        // pipes, sockets, shared memory
	funcCount
)

// Function footprint sizes in bytes, calibrated against the paper's
// observed rates: the workload-hot functions cover about a fifth of the
// text region, so roughly 20% of 30-fault experiments never manifest a
// kernel failure; the panic path and the ~100-line transfer stub are tiny,
// so "failure to boot the crash kernel" stays in Table 5's 2-3% band.
var funcSizes = [funcCount]int{
	FuncInterrupt:    4 << 10,
	FuncTransferStub: 256, // ~100 lines of hand-written transfer code
	FuncPanic:        256,
	FuncSched:        24 << 10,
	FuncSyscallEntry: 20 << 10,
	FuncOpen:         8 << 10,
	FuncReadWrite:    20 << 10,
	FuncClone:        4 << 10,
	FuncMmap:         6 << 10,
	FuncPageFault:    16 << 10,
	FuncSwap:         10 << 10,
	FuncTTY:          12 << 10,
	FuncIPC:          16 << 10,
}

var funcNames = [funcCount]string{
	"interrupt", "transfer_stub", "panic", "sched", "syscall_entry",
	"open", "read_write", "clone", "mmap", "page_fault", "swap",
	"tty", "ipc",
}

// Misbehavior is how a clobbered instruction acts when executed. The mix
// follows the fault-characterization studies the paper cites ([3, 15, 22,
// 28]): most kernel faults are fail-stop.
type Misbehavior int

// Misbehavior kinds.
const (
	// BehaveBenign means the clobbered byte happens not to change
	// behaviour (e.g. an equivalent encoding).
	BehaveBenign Misbehavior = iota
	// BehaveFailStop is an immediate detected panic.
	BehaveFailStop
	// BehaveWildWriteStop performs a stray store and then panics.
	BehaveWildWriteStop
	// BehaveWildWriteSilent performs a stray store and keeps running —
	// the error-propagation case protection mode exists for.
	BehaveWildWriteSilent
	// BehaveHang wedges the kernel (recovered only by the watchdog NMI).
	BehaveHang
	// BehaveDoubleFault raises a double fault.
	BehaveDoubleFault
)

func (b Misbehavior) String() string {
	switch b {
	case BehaveBenign:
		return "benign"
	case BehaveFailStop:
		return "fail-stop"
	case BehaveWildWriteStop:
		return "wild-write+stop"
	case BehaveWildWriteSilent:
		return "wild-write-silent"
	case BehaveHang:
		return "hang"
	case BehaveDoubleFault:
		return "double-fault"
	}
	return fmt.Sprintf("Misbehavior(%d)", int(b))
}

// NewText claims TextFrames frames inside region (skipping the fixed anchor
// frames) and fills them with the deterministic pattern.
func NewText(mem *phys.Mem, alloc *phys.FrameAllocator, region phys.Region, seed int64) (*Text, error) {
	start := region.Start
	if start < 3 {
		start = 3 // skip null, IDT and globals frames
	}
	if start+TextFrames > region.End() {
		return nil, fmt.Errorf("kernel: region %v too small for text", region)
	}
	t := &Text{
		mem:     mem,
		base:    phys.FrameAddr(start),
		size:    TextFrames * phys.PageSize,
		seed:    seed,
		decided: make(map[uint64]Misbehavior),
	}
	off := 0
	for id := FuncID(0); id < funcCount; id++ {
		t.funcs[id] = TextFunc{Name: funcNames[id], Start: off, Len: funcSizes[id]}
		off += funcSizes[id]
	}
	if off > t.size {
		return nil, fmt.Errorf("kernel: text functions exceed region")
	}
	buf := make([]byte, phys.PageSize)
	for f := start; f < start+TextFrames; f++ {
		if err := alloc.Claim(f, phys.FrameKernelText); err != nil {
			return nil, err
		}
		base := phys.FrameAddr(f)
		for i := range buf {
			buf[i] = t.expected(base + uint64(i))
		}
		if err := mem.WriteAt(base, buf); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Base returns the physical address of the text region.
func (t *Text) Base() uint64 { return t.base }

// Size returns the text region size in bytes.
func (t *Text) Size() int { return t.size }

// Func returns the byte range of a kernel function.
func (t *Text) Func(id FuncID) TextFunc { return t.funcs[id] }

// expected is the pristine byte value at a text address.
func (t *Text) expected(addr uint64) byte {
	x := addr*0x9E3779B97F4A7C15 + uint64(t.seed)
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return byte(x)
}

// benignChance is the probability a clobbered, executed byte happens not to
// change behaviour. Together with the behaviour mix below it calibrates the
// per-fault manifestation rate.
const benignChance = 0.5

// decideBehavior rolls the manifestation for a newly executed corrupted
// byte. The mix reflects the fail-stop dominance the paper relies on
// ([3, 15, 22, 28]); the hang and double-fault shares are calibrated so the
// pre-hardening configuration loses about the 11% the paper reports (8%
// stalls/recursion + the double-fault handler problem).
func (t *Text) decideBehavior(roll float64) Misbehavior {
	switch {
	case roll < benignChance:
		return BehaveBenign
	case roll < benignChance+0.375:
		return BehaveFailStop
	case roll < benignChance+0.435:
		return BehaveWildWriteStop
	case roll < benignChance+0.465:
		return BehaveWildWriteSilent
	case roll < benignChance+0.4825:
		return BehaveHang
	default:
		return BehaveDoubleFault
	}
}

// CheckExecute scans fn's text for corrupted bytes and returns the resulting
// misbehaviour for this execution. rollFn supplies randomness so the caller
// (the kernel) keeps everything on one seeded stream.
func (t *Text) CheckExecute(fn FuncID, rollFn func() float64) Misbehavior {
	f := t.funcs[fn]
	buf := make([]byte, f.Len)
	if err := t.mem.ReadAt(t.base+uint64(f.Start), buf); err != nil {
		return BehaveFailStop
	}
	for i, b := range buf {
		addr := t.base + uint64(f.Start) + uint64(i)
		if b == t.expected(addr) {
			delete(t.decided, addr) // repaired or rolled back
			continue
		}
		behave, ok := t.decided[addr]
		if !ok {
			behave = t.decideBehavior(rollFn())
			t.decided[addr] = behave
		}
		if behave != BehaveBenign {
			return behave
		}
	}
	return BehaveBenign
}

// Settle downgrades every corrupted byte in fn currently decided as the
// given behaviour to benign: the instruction's one-time side effect (its
// stray store) has happened and re-executions change nothing new.
func (t *Text) Settle(fn FuncID, was Misbehavior) {
	f := t.funcs[fn]
	for addr, b := range t.decided {
		if b == was && addr >= t.base+uint64(f.Start) && addr < t.base+uint64(f.Start+f.Len) {
			t.decided[addr] = BehaveBenign
		}
	}
}

// Contains reports whether a physical address lies in the text region.
func (t *Text) Contains(addr uint64) bool {
	return addr >= t.base && addr < t.base+uint64(t.size)
}

// CorruptByte flips a text byte (the injector's instruction-corruption
// class). It returns the address written.
func (t *Text) CorruptByte(off int, delta byte) (uint64, error) {
	if off < 0 || off >= t.size {
		return 0, fmt.Errorf("kernel: text offset %d out of range", off)
	}
	addr := t.base + uint64(off)
	var b [1]byte
	if err := t.mem.ReadAt(addr, b[:]); err != nil {
		return 0, err
	}
	if delta == 0 {
		delta = 1
	}
	b[0] += delta
	if err := t.mem.WriteAt(addr, b[:]); err != nil {
		return 0, err
	}
	return addr, nil
}
