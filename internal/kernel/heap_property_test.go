package kernel

import (
	"testing"
	"testing/quick"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// TestHeapAllocationsNeverOverlap drives random alloc/free sequences and
// checks that live allocations never share bytes — the invariant that keeps
// kernel records from silently clobbering each other.
func TestHeapAllocationsNeverOverlap(t *testing.T) {
	k := bootTestKernel(t, nil)
	type alloc struct {
		addr uint64
		size int
	}
	live := make(map[uint64]alloc)

	overlaps := func(a alloc) bool {
		for _, b := range live {
			if a.addr < b.addr+uint64(b.size) && b.addr < a.addr+uint64(a.size) {
				return true
			}
		}
		return false
	}

	f := func(ops []uint16) bool {
		for _, op := range ops {
			size := 1 + int(op%1000)
			if op%5 == 0 && len(live) > 0 {
				// Free an arbitrary live allocation.
				for addr, a := range live {
					k.Heap.Free(addr, a.size)
					delete(live, addr)
					break
				}
				continue
			}
			addr, err := k.Heap.Alloc(size)
			if err != nil {
				return false
			}
			a := alloc{addr: addr, size: size}
			if overlaps(a) {
				t.Logf("overlap at %#x+%d", addr, size)
				return false
			}
			if phys.FrameOf(addr) != phys.FrameOf(addr+uint64(size)-1) {
				t.Logf("allocation spans frames at %#x+%d", addr, size)
				return false
			}
			live[a.addr] = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRecordSlotsFitWorstCase: the fixed slot sizes must hold the largest
// records the kernel ever writes into them (longest paths, every pointer
// field set), or re-sealing would fail at runtime.
func TestRecordSlotsFitWorstCase(t *testing.T) {
	worstProc := layout.Proc{
		PID: ^uint32(0), State: layout.ProcSleeping,
		Name:      string(make([]byte, 64)),
		Program:   string(make([]byte, 64)),
		CrashProc: string(make([]byte, 64)),
		PageDir:   ^uint64(0), MemRegions: ^uint64(0), Files: ^uint64(0),
		KStack: ^uint64(0), Terminal: ^uint64(0), Signals: ^uint64(0),
		Shm: ^uint64(0), Pipes: ^uint64(0), Sockets: ^uint64(0), Next: ^uint64(0),
	}
	if got := layout.RecordSize(len(worstProc.EncodePayload())); got > procSlotSize {
		t.Fatalf("worst-case proc record %d > slot %d", got, procSlotSize)
	}
	worstFile := layout.FileRec{
		FD:    ^uint32(0),
		Path:  string(make([]byte, maxOpenPath)),
		Flags: ^uint32(0), Offset: ^uint64(0), Mapped: true,
		CachePages: ^uint64(0), Next: ^uint64(0),
	}
	if got := layout.RecordSize(len(worstFile.EncodePayload())); got > fileSlotSize {
		t.Fatalf("worst-case file record %d > slot %d", got, fileSlotSize)
	}
	// The largest shm record must fit a heap allocation (one frame).
	worstShm := layout.Shm{
		Key: ^uint64(0), Size: ^uint64(0), AttachedAt: ^uint64(0),
		Frames: make([]uint64, layout.MaxShmFrames), Next: ^uint64(0),
	}
	if got := layout.RecordSize(len(worstShm.EncodePayload())); got > phys.PageSize {
		t.Fatalf("worst-case shm record %d > frame", got)
	}
}
