package kernel

import (
	"fmt"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// ttyRuntime is the kernel's live handle on a terminal: the record address
// plus nothing else — screen contents and geometry live in the record and
// the screen buffer frame so resurrection can rebuild them.
type ttyRuntime struct {
	recAddr uint64
}

// defaultTTYRows/Cols match a VGA text console.
const (
	defaultTTYRows = 25
	defaultTTYCols = 80
)

// TermPseudo marks a pseudo terminal in the settings word. The prototype
// "can only restore the state of physical terminals" (Section 3.3):
// resurrection skips pseudo terminals and reports them through the
// missing-resource bitmask instead.
const TermPseudo uint32 = 1 << 8

// OpenTerminal attaches a physical terminal to the process, allocating the
// kernel screen buffer and the terminal record (Section 3.3: screen
// contents live in a kernel buffer reachable from the process descriptor).
func (k *Kernel) OpenTerminal(p *Process, index uint32) error {
	return k.openTerminal(p, index, 0)
}

// OpenPseudoTerminal attaches a pty (as an sshd or terminal emulator
// would). Pseudo terminals are not resurrectable in the prototype.
func (k *Kernel) OpenPseudoTerminal(p *Process, index uint32) error {
	return k.openTerminal(p, index, TermPseudo)
}

func (k *Kernel) openTerminal(p *Process, index uint32, settings uint32) error {
	if p.D.Terminal != 0 {
		return fmt.Errorf("kernel: pid %d already has a terminal", p.PID)
	}
	screenFrame, err := k.Alloc.Alloc(phys.FrameKernelHeap)
	if err != nil {
		return err
	}
	// Blank the screen with spaces.
	blank := make([]byte, defaultTTYRows*defaultTTYCols)
	for i := range blank {
		blank[i] = ' '
	}
	if err := k.M.Mem.WriteAt(phys.FrameAddr(screenFrame), blank); err != nil {
		return err
	}
	rec := layout.Terminal{
		Index:    index,
		Rows:     defaultTTYRows,
		Cols:     defaultTTYCols,
		Settings: settings,
		Screen:   phys.FrameAddr(screenFrame),
	}
	addr, _, err := k.Heap.WriteNewRecord(layout.TypeTerminal, rec.EncodePayload())
	if err != nil {
		return err
	}
	p.D.Terminal = addr
	if err := k.writeProc(p); err != nil {
		return err
	}
	k.terminals[index] = &ttyRuntime{recAddr: addr}
	return nil
}

// readTerminalRec loads the process's terminal record.
func (k *Kernel) readTerminalRec(p *Process) (*layout.Terminal, uint64, error) {
	if p.D.Terminal == 0 {
		return nil, 0, fmt.Errorf("kernel: pid %d has no terminal", p.PID)
	}
	rec, err := layout.ReadTerminal(k.M.Mem, p.D.Terminal, k.P.VerifyCRC)
	if err != nil {
		return nil, 0, k.oopsf(OopsBadStructure, "pid %d terminal record: %v", p.PID, err)
	}
	return rec, p.D.Terminal, nil
}

// termWrite renders bytes at the cursor, wrapping lines and scrolling, then
// persists cursor state. '\n' moves to the next line's start.
func (k *Kernel) termWrite(p *Process, data []byte) error {
	rec, addr, err := k.readTerminalRec(p)
	if err != nil {
		return err
	}
	rows, cols := int(rec.Rows), int(rec.Cols)
	screen := make([]byte, rows*cols)
	if err := k.M.Mem.ReadAt(rec.Screen, screen); err != nil {
		return k.oopsf(OopsBadStructure, "pid %d screen buffer: %v", p.PID, err)
	}
	r, c := int(rec.CursorRow), int(rec.CursorCol)
	for _, b := range data {
		if b == '\n' {
			r, c = r+1, 0
		} else {
			if r < rows && c < cols {
				screen[r*cols+c] = b
			}
			c++
			if c >= cols {
				r, c = r+1, 0
			}
		}
		if r >= rows {
			// Scroll up one line.
			copy(screen, screen[cols:])
			for i := (rows - 1) * cols; i < rows*cols; i++ {
				screen[i] = ' '
			}
			r = rows - 1
		}
	}
	if err := k.M.Mem.WriteAt(rec.Screen, screen); err != nil {
		return k.oopsf(OopsBadStructure, "pid %d screen write: %v", p.PID, err)
	}
	rec.CursorRow, rec.CursorCol = uint16(r), uint16(c)
	return layout.WriteTerminal(k.M.Mem, addr, rec)
}

// termRead pulls one keystroke from the console hub for the process's
// terminal. ok is false when the user has nothing queued.
func (k *Kernel) termRead(p *Process) (byte, bool, error) {
	rec, _, err := k.readTerminalRec(p)
	if err != nil {
		return 0, false, err
	}
	if k.P.Consoles == nil {
		return 0, false, nil
	}
	b, ok := k.P.Consoles.readKey(rec.Index)
	return b, ok, nil
}

// ScreenContents returns the terminal screen of a process as rows of bytes,
// for verification and the narrated demo.
func (k *Kernel) ScreenContents(p *Process) ([][]byte, error) {
	rec, _, err := k.readTerminalRec(p)
	if err != nil {
		return nil, err
	}
	rows, cols := int(rec.Rows), int(rec.Cols)
	screen := make([]byte, rows*cols)
	if err := k.M.Mem.ReadAt(rec.Screen, screen); err != nil {
		return nil, err
	}
	out := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		out[r] = screen[r*cols : (r+1)*cols]
	}
	return out, nil
}
