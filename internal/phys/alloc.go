package phys

import (
	"errors"
	"fmt"
)

// ErrNoFrames is returned when an allocation cannot be satisfied.
var ErrNoFrames = errors.New("phys: out of physical frames")

// Region describes a contiguous range of physical frames.
type Region struct {
	// Start is the first frame of the region.
	Start int
	// Frames is the region length in frames.
	Frames int
}

// Bytes returns the region size in bytes.
func (r Region) Bytes() int { return r.Frames * PageSize }

// End returns the first frame past the region.
func (r Region) End() int { return r.Start + r.Frames }

// Contains reports whether frame f lies inside the region.
func (r Region) Contains(f int) bool { return f >= r.Start && f < r.End() }

// ContainsAddr reports whether physical address a lies inside the region.
func (r Region) ContainsAddr(a uint64) bool { return r.Contains(FrameOf(a)) }

func (r Region) String() string {
	return fmt.Sprintf("frames [%d,%d) (%d KiB)", r.Start, r.End(), r.Bytes()/1024)
}

// FrameAllocator hands out physical frames from a set of regions. Both
// kernels use one: the main kernel over all memory minus the crash-kernel
// reservation, and the crash kernel first over only its reserved region and
// then — after resurrection completes and it morphs into the main kernel —
// over everything (Section 3.6). AddRegion implements that late widening,
// mirroring the paper's startup-code change that pre-allocates extra page
// descriptors for memory the crash kernel will only own later.
type FrameAllocator struct {
	mem     *Mem
	free    []int // stack of free frame numbers
	inSet   map[int]bool
	claimed map[int]bool
}

// NewFrameAllocator creates an allocator over mem managing the given region.
func NewFrameAllocator(mem *Mem, r Region) *FrameAllocator {
	a := &FrameAllocator{
		mem:     mem,
		inSet:   make(map[int]bool),
		claimed: make(map[int]bool),
	}
	a.AddRegion(r)
	return a
}

// AddRegion makes the frames of r available for allocation. Frames already
// managed are ignored.
func (a *FrameAllocator) AddRegion(r Region) {
	for f := r.End() - 1; f >= r.Start; f-- {
		if f < 0 || f >= a.mem.NumFrames() || a.inSet[f] {
			continue
		}
		a.inSet[f] = true
		a.free = append(a.free, f)
	}
}

// Alloc returns a zeroed frame tagged with kind k.
func (a *FrameAllocator) Alloc(k FrameKind) (int, error) {
	for len(a.free) > 0 {
		f := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		if a.claimed[f] {
			continue
		}
		a.claimed[f] = true
		if err := a.mem.Zero(f); err != nil {
			return 0, err
		}
		if err := a.mem.SetKind(f, k); err != nil {
			return 0, err
		}
		return f, nil
	}
	return 0, ErrNoFrames
}

// AllocN allocates n frames, returning them in order. On failure any frames
// already obtained are released.
func (a *FrameAllocator) AllocN(n int, k FrameKind) ([]int, error) {
	frames := make([]int, 0, n)
	for i := 0; i < n; i++ {
		f, err := a.Alloc(k)
		if err != nil {
			for _, g := range frames {
				a.Free(g)
			}
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// Free returns frame f to the allocator. Freeing an unclaimed or unmanaged
// frame is a no-op, which keeps teardown code simple.
func (a *FrameAllocator) Free(f int) {
	if !a.claimed[f] {
		return
	}
	delete(a.claimed, f)
	//owvet:allow errdrop: f was in claimed, so it is inside the managed frame set
	_ = a.mem.SetKind(f, FrameFree)
	a.free = append(a.free, f)
}

// Claim marks a specific frame as allocated with kind k, used when a kernel
// takes ownership of frames at fixed addresses (the globals anchor page,
// kernel text). It fails if the frame is outside the managed set or already
// claimed.
func (a *FrameAllocator) Claim(f int, k FrameKind) error {
	if !a.inSet[f] {
		return fmt.Errorf("phys: frame %d not managed by allocator", f)
	}
	if a.claimed[f] {
		return fmt.Errorf("phys: frame %d already claimed", f)
	}
	a.claimed[f] = true
	return a.mem.SetKind(f, k)
}

// AddFreeFrames makes only the currently-free-tagged frames of r available,
// leaving frames another owner still uses untouched. The crash kernel uses
// it to obtain working memory for resurrection copies without clobbering
// the dead kernel's state (the paper's pre-allocated "extra page
// descriptors", Section 3.2).
func (a *FrameAllocator) AddFreeFrames(mem *Mem, r Region) int {
	added := 0
	for f := r.End() - 1; f >= r.Start; f-- {
		if f < 0 || f >= mem.NumFrames() || a.inSet[f] {
			continue
		}
		if mem.Kind(f) != FrameFree {
			continue
		}
		a.inSet[f] = true
		a.free = append(a.free, f)
		added++
	}
	return added
}

// AdoptUnmanaged takes ownership of every frame in r the allocator does not
// already manage, resetting its tag and write protection — the morph step
// where the crash kernel reclaims the dead main kernel's memory
// (Section 3.6). It returns the number of frames adopted.
func (a *FrameAllocator) AdoptUnmanaged(mem *Mem, r Region) int {
	adopted := 0
	for f := r.End() - 1; f >= r.Start; f-- {
		if f < 0 || f >= mem.NumFrames() || a.inSet[f] {
			continue
		}
		_ = mem.Protect(f, false)     //owvet:allow errdrop: f is bounds-checked against mem.NumFrames above
		_ = mem.SetKind(f, FrameFree) //owvet:allow errdrop: same bounds-checked frame as the line above
		a.inSet[f] = true
		a.free = append(a.free, f)
		adopted++
	}
	return adopted
}

// AdoptFrame takes ownership of a specific unmanaged frame as an already-
// claimed allocation tagged k. The crash kernel's map-pages resurrection
// fast path (the paper's footnote 3) uses it to keep a dead kernel's user
// page in place instead of copying it.
func (a *FrameAllocator) AdoptFrame(f int, k FrameKind) error {
	if f < 0 || f >= a.mem.NumFrames() {
		return ErrOutOfRange
	}
	if a.inSet[f] {
		return fmt.Errorf("phys: frame %d already managed", f)
	}
	a.inSet[f] = true
	a.claimed[f] = true
	return a.mem.SetKind(f, k)
}

// CanAdopt reports whether AdoptFrame(f, …) would succeed: f is an installed
// frame the allocator does not already manage. The lazy resurrection install
// validates every speculation candidate with it before committing to a
// copy-on-access mapping.
func (a *FrameAllocator) CanAdopt(f int) bool {
	return f >= 0 && f < a.mem.NumFrames() && !a.inSet[f]
}

// Manages reports whether frame f is part of the allocator's frame set.
func (a *FrameAllocator) Manages(f int) bool { return a.inSet[f] }

// FreeFrames returns how many frames are currently allocatable.
func (a *FrameAllocator) FreeFrames() int {
	n := 0
	for _, f := range a.free {
		if !a.claimed[f] {
			n++
		}
	}
	return n
}

// ClaimedFrames returns how many frames are currently allocated.
func (a *FrameAllocator) ClaimedFrames() int { return len(a.claimed) }
