package phys

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemReadWriteRoundTrip(t *testing.T) {
	m := NewMem(16 * PageSize)
	data := []byte("otherworld")
	if err := m.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.ReadAt(100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(data) {
		t.Fatalf("got %q", buf)
	}
}

func TestMemBounds(t *testing.T) {
	m := NewMem(2 * PageSize)
	buf := make([]byte, 16)
	if err := m.ReadAt(uint64(m.Size())-8, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := m.WriteAt(uint64(m.Size()), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
	if err := m.ReadAt(0, make([]byte, m.Size())); err != nil {
		t.Fatalf("full read: %v", err)
	}
}

func TestProtectionFault(t *testing.T) {
	m := NewMem(4 * PageSize)
	if err := m.Protect(1, true); err != nil {
		t.Fatal(err)
	}
	err := m.WriteAt(PageSize+10, []byte{1})
	var pf *ProtectionFault
	if !errors.As(err, &pf) {
		t.Fatalf("want ProtectionFault, got %v", err)
	}
	if pf.Frame != 1 {
		t.Fatalf("fault frame = %d", pf.Frame)
	}
	// The write must not have landed.
	var b [1]byte
	if err := m.ReadAt(PageSize+10, b[:]); err != nil || b[0] != 0 {
		t.Fatalf("protected byte changed: %v %v", b[0], err)
	}
	// Spanning writes that touch a protected frame are rejected whole.
	if err := m.WriteAt(PageSize-4, make([]byte, 8)); !errors.As(err, &pf) {
		t.Fatalf("spanning write: %v", err)
	}
	// Unprotect and retry.
	if err := m.Protect(1, false); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(PageSize+10, []byte{7}); err != nil {
		t.Fatal(err)
	}
}

func TestU64RoundTripProperty(t *testing.T) {
	m := NewMem(8 * PageSize)
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr) % uint64(m.Size()-8)
		if err := m.WriteU64(a, v); err != nil {
			return false
		}
		got, err := m.ReadU64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameKinds(t *testing.T) {
	m := NewMem(4 * PageSize)
	if err := m.SetKind(2, FrameUser); err != nil {
		t.Fatal(err)
	}
	if m.Kind(2) != FrameUser {
		t.Fatalf("kind = %v", m.Kind(2))
	}
	if m.CountKind(FrameUser) != 1 {
		t.Fatalf("count = %d", m.CountKind(FrameUser))
	}
	if m.Kind(99) != FrameFree {
		t.Fatal("out-of-range kind should be free")
	}
}

func TestZeroRespectsProtection(t *testing.T) {
	m := NewMem(2 * PageSize)
	if err := m.WriteAt(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(0); err == nil {
		t.Fatal("Zero on protected frame should fail")
	}
	if err := m.Protect(0, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(0); err != nil {
		t.Fatal(err)
	}
	var b [3]byte
	if err := m.ReadAt(0, b[:]); err != nil || b != [3]byte{} {
		t.Fatalf("frame not zeroed: %v %v", b, err)
	}
}

func TestAllocatorBasics(t *testing.T) {
	m := NewMem(8 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 2, Frames: 4})
	if a.FreeFrames() != 4 {
		t.Fatalf("free = %d", a.FreeFrames())
	}
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		f, err := a.Alloc(FrameUser)
		if err != nil {
			t.Fatal(err)
		}
		if f < 2 || f >= 6 {
			t.Fatalf("frame %d outside region", f)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if _, err := a.Alloc(FrameUser); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
	a.Free(3)
	f, err := a.Alloc(FrameKernelHeap)
	if err != nil || f != 3 {
		t.Fatalf("reuse failed: %d %v", f, err)
	}
	if m.Kind(3) != FrameKernelHeap {
		t.Fatalf("kind = %v", m.Kind(3))
	}
}

func TestAllocatorZeroesFrames(t *testing.T) {
	m := NewMem(4 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 0, Frames: 4})
	f, err := a.Alloc(FrameUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(FrameAddr(f), []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	a.Free(f)
	g, err := a.Alloc(FrameUser)
	if err != nil || g != f {
		t.Fatalf("realloc: %d %v", g, err)
	}
	var b [3]byte
	if err := m.ReadAt(FrameAddr(g), b[:]); err != nil || b != [3]byte{} {
		t.Fatalf("frame not zeroed on realloc: %v", b)
	}
}

func TestAllocatorClaim(t *testing.T) {
	m := NewMem(8 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 0, Frames: 8})
	if err := a.Claim(5, FrameKernelText); err != nil {
		t.Fatal(err)
	}
	if err := a.Claim(5, FrameKernelText); err == nil {
		t.Fatal("double claim should fail")
	}
	if err := a.Claim(100, FrameKernelText); err == nil {
		t.Fatal("claim outside set should fail")
	}
	// Frame 5 must never be handed out.
	for i := 0; i < 7; i++ {
		f, err := a.Alloc(FrameUser)
		if err != nil {
			t.Fatal(err)
		}
		if f == 5 {
			t.Fatal("claimed frame was allocated")
		}
	}
}

func TestAllocatorAddFreeFrames(t *testing.T) {
	m := NewMem(8 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 0, Frames: 2})
	// Mark frames 4,5 as used by "another kernel".
	_ = m.SetKind(4, FrameKernelHeap)
	_ = m.SetKind(5, FrameUser)
	added := a.AddFreeFrames(m, Region{Start: 2, Frames: 6})
	if added != 4 { // frames 2,3,6,7 are free-tagged
		t.Fatalf("added = %d, want 4", added)
	}
	for i := 0; i < 6; i++ {
		f, err := a.Alloc(FrameUser)
		if err != nil {
			t.Fatal(err)
		}
		if f == 4 || f == 5 {
			t.Fatal("allocated a frame another kernel owns")
		}
	}
}

func TestAllocatorAdoptUnmanaged(t *testing.T) {
	m := NewMem(8 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 0, Frames: 2})
	_ = m.SetKind(4, FrameKernelHeap)
	_ = m.Protect(4, true)
	adopted := a.AdoptUnmanaged(m, Region{Start: 0, Frames: 8})
	if adopted != 6 {
		t.Fatalf("adopted = %d, want 6", adopted)
	}
	if m.Kind(4) != FrameFree || m.Protected(4) {
		t.Fatal("adoption must reset kind and protection")
	}
	if !a.Manages(4) {
		t.Fatal("adopted frame not managed")
	}
}

func TestAllocNReleasesOnFailure(t *testing.T) {
	m := NewMem(4 * PageSize)
	a := NewFrameAllocator(m, Region{Start: 0, Frames: 3})
	if _, err := a.AllocN(5, FrameUser); err == nil {
		t.Fatal("AllocN beyond capacity should fail")
	}
	if a.FreeFrames() != 3 {
		t.Fatalf("frames leaked: free = %d", a.FreeFrames())
	}
	got, err := a.AllocN(3, FrameUser)
	if err != nil || len(got) != 3 {
		t.Fatalf("AllocN: %v %v", got, err)
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Start: 10, Frames: 5}
	if r.End() != 15 || r.Bytes() != 5*PageSize {
		t.Fatalf("end=%d bytes=%d", r.End(), r.Bytes())
	}
	if !r.Contains(10) || !r.Contains(14) || r.Contains(15) || r.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if !r.ContainsAddr(FrameAddr(12)+5) || r.ContainsAddr(FrameAddr(15)) {
		t.Fatal("ContainsAddr wrong")
	}
}

func TestMemStats(t *testing.T) {
	m := NewMem(4 * PageSize)
	buf := make([]byte, 100)
	if err := m.WriteAt(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAt(0, buf[:40]); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(2, true); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(FrameAddr(2), buf); err == nil {
		t.Fatal("expected protection fault")
	}
	// Out-of-range accesses are not bus traffic and must not count.
	_ = m.ReadAt(1<<40, buf)
	s := m.Stats()
	want := Stats{ReadOps: 1, ReadBytes: 40, WriteOps: 2, WriteBytes: 100 + PageSize, ProtFaults: 1}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}
