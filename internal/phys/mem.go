// Package phys models the machine's physical memory: a flat byte array
// divided into fixed-size frames with per-frame write protection and
// ownership tags.
//
// Everything that matters for Otherworld lives here as raw bytes — the main
// kernel's heap records, page tables, kernel stacks, user pages, the page
// cache, and the protected crash-kernel image. Fault injection mutates these
// bytes directly, and the crash kernel later re-parses them during
// resurrection, so corruption propagates between the two exactly as it does
// between a crashing Linux kernel and KDump's capture kernel in the paper.
package phys

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// PageSize is the frame size in bytes, matching the x86 4 KiB page the
// paper's implementation uses.
const PageSize = 4096

// FrameKind tags what a physical frame is currently used for. The tags are
// bookkeeping for accounting and fault-injection targeting; the memory
// itself is untyped bytes.
type FrameKind uint8

// Frame ownership tags.
const (
	// FrameFree is unallocated memory.
	FrameFree FrameKind = iota
	// FrameKernelText holds (simulated) kernel code.
	FrameKernelText
	// FrameKernelHeap holds kernel records: process descriptors, memory
	// region descriptors, file records and so on.
	FrameKernelHeap
	// FrameKernelStack holds a thread's kernel stack, including the saved
	// hardware context pushed on syscall entry and NMI halt.
	FrameKernelStack
	// FramePageTable holds page-directory or page-table pages.
	FramePageTable
	// FrameUser holds user process data.
	FrameUser
	// FramePageCache holds cached file pages.
	FramePageCache
	// FrameCrashImage holds the passive crash-kernel image; it is kept
	// write-protected while the main kernel runs (Section 3.1).
	FrameCrashImage
	// FrameReserved is reserved for the crash kernel's own working memory.
	FrameReserved
	// FrameSpeculated is a dead kernel's user frame kept alive by the lazy
	// resurrection install: a resurrected process's page table references it
	// copy-on-access until first-touch validation copies it out (or the
	// background sweeper does). Adopted by the crash kernel's allocator so
	// the morph never recycles it while a speculation still points at it.
	FrameSpeculated
)

var frameKindNames = [...]string{
	"free", "kernel-text", "kernel-heap", "kernel-stack",
	"page-table", "user", "page-cache", "crash-image", "reserved",
	"speculated",
}

func (k FrameKind) String() string {
	if int(k) < len(frameKindNames) {
		return frameKindNames[k]
	}
	return fmt.Sprintf("FrameKind(%d)", uint8(k))
}

// ErrOutOfRange reports an access beyond the installed physical memory.
var ErrOutOfRange = errors.New("phys: address out of range")

// ProtectionFault is returned when a write touches a write-protected frame.
// The machine turns it into a page-fault-style kernel panic: this is how
// wild writes into the crash-kernel image are *detected* rather than
// silently corrupting the image (Section 3.1).
type ProtectionFault struct {
	Addr  uint64
	Frame int
}

func (f *ProtectionFault) Error() string {
	return fmt.Sprintf("phys: write to protected frame %d (addr %#x)", f.Frame, f.Addr)
}

// Stats is a point-in-time copy of a Mem's access counters.
type Stats struct {
	// ReadOps/ReadBytes count ReadAt (and ReadU64) traffic; WriteOps/
	// WriteBytes count successful WriteAt/WriteU64/Zero traffic.
	ReadOps    int64
	ReadBytes  int64
	WriteOps   int64
	WriteBytes int64
	// ProtFaults counts writes refused by frame protection — the
	// hardware-trap analogue that catches wild writes into the
	// crash-kernel image.
	ProtFaults int64
}

// Mem is the machine's physical memory.
type Mem struct {
	data []byte
	prot []bool
	kind []FrameKind

	// Access counters are atomics so the resurrection scan pool's
	// concurrent readers can count without a lock. Frame() aliasing
	// deliberately bypasses them: it is a kernel-internal fast path, and
	// the counters model the explicit memory bus traffic only.
	readOps    atomic.Int64
	readBytes  atomic.Int64
	writeOps   atomic.Int64
	writeBytes atomic.Int64
	protFaults atomic.Int64
}

// NewMem installs size bytes of physical memory. Size is rounded down to a
// whole number of frames; at least one frame is installed.
func NewMem(size int) *Mem {
	frames := size / PageSize
	if frames < 1 {
		frames = 1
	}
	return &Mem{
		data: make([]byte, frames*PageSize),
		prot: make([]bool, frames),
		kind: make([]FrameKind, frames),
	}
}

// Size returns the installed physical memory in bytes.
func (m *Mem) Size() int { return len(m.data) }

// NumFrames returns the number of installed frames.
func (m *Mem) NumFrames() int { return len(m.prot) }

// FrameOf returns the frame number containing addr.
func FrameOf(addr uint64) int { return int(addr / PageSize) }

// FrameAddr returns the physical address of the first byte of frame f.
func FrameAddr(f int) uint64 { return uint64(f) * PageSize }

// ReadAt copies len(buf) bytes starting at addr into buf.
func (m *Mem) ReadAt(addr uint64, buf []byte) error {
	if err := m.check(addr, len(buf)); err != nil {
		return err
	}
	m.readOps.Add(1)
	m.readBytes.Add(int64(len(buf)))
	copy(buf, m.data[addr:])
	return nil
}

// WriteAt copies buf into memory at addr, honoring write protection: if any
// touched frame is protected the write is not performed and a
// *ProtectionFault is returned.
func (m *Mem) WriteAt(addr uint64, buf []byte) error {
	if err := m.check(addr, len(buf)); err != nil {
		return err
	}
	first, last := FrameOf(addr), FrameOf(addr+uint64(len(buf))-1)
	if len(buf) == 0 {
		last = first
	}
	for f := first; f <= last; f++ {
		if m.prot[f] {
			m.protFaults.Add(1)
			return &ProtectionFault{Addr: addr, Frame: f}
		}
	}
	m.writeOps.Add(1)
	m.writeBytes.Add(int64(len(buf)))
	copy(m.data[addr:], buf)
	return nil
}

// ReadU64 reads a little-endian 64-bit word.
func (m *Mem) ReadU64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.ReadAt(addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word, honoring protection.
func (m *Mem) WriteU64(addr uint64, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return m.WriteAt(addr, b[:])
}

// Frame returns the memory of frame f as a slice aliasing the underlying
// storage. Mutating the slice bypasses protection; it is intended for
// kernel-internal fast paths that have already checked ownership.
func (m *Mem) Frame(f int) ([]byte, error) {
	if f < 0 || f >= m.NumFrames() {
		return nil, ErrOutOfRange
	}
	base := FrameAddr(f)
	return m.data[base : base+PageSize : base+PageSize], nil
}

// Protect sets or clears write protection on frame f.
func (m *Mem) Protect(f int, readOnly bool) error {
	if f < 0 || f >= m.NumFrames() {
		return ErrOutOfRange
	}
	m.prot[f] = readOnly
	return nil
}

// Protected reports whether frame f is write-protected.
func (m *Mem) Protected(f int) bool {
	if f < 0 || f >= m.NumFrames() {
		return false
	}
	return m.prot[f]
}

// SetKind records the ownership tag of frame f.
func (m *Mem) SetKind(f int, k FrameKind) error {
	if f < 0 || f >= m.NumFrames() {
		return ErrOutOfRange
	}
	m.kind[f] = k
	return nil
}

// Kind returns the ownership tag of frame f (FrameFree if out of range).
func (m *Mem) Kind(f int) FrameKind {
	if f < 0 || f >= m.NumFrames() {
		return FrameFree
	}
	return m.kind[f]
}

// CountKind returns the number of frames currently tagged k.
func (m *Mem) CountKind(k FrameKind) int {
	n := 0
	for _, fk := range m.kind {
		if fk == k {
			n++
		}
	}
	return n
}

// Zero clears frame f, honoring protection.
func (m *Mem) Zero(f int) error {
	if f < 0 || f >= m.NumFrames() {
		return ErrOutOfRange
	}
	if m.prot[f] {
		m.protFaults.Add(1)
		return &ProtectionFault{Addr: FrameAddr(f), Frame: f}
	}
	m.writeOps.Add(1)
	m.writeBytes.Add(int64(PageSize))
	base := FrameAddr(f)
	for i := base; i < base+PageSize; i++ {
		m.data[i] = 0
	}
	return nil
}

// PageIsZero reports whether every byte of b is zero — the resurrection
// fast path's elision test. It compares in word-sized chunks the way a real
// kernel's zero-detect loop would; a partially-zero page (any nonzero byte,
// even the last one) is not elidable.
func PageIsZero(b []byte) bool {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if b[i]|b[i+1]|b[i+2]|b[i+3]|b[i+4]|b[i+5]|b[i+6]|b[i+7] != 0 {
			return false
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// Stats returns a point-in-time copy of the access counters. Because the
// scan pool issues an identical read set at any worker count, every field
// is itself deterministic across pool widths.
func (m *Mem) Stats() Stats {
	return Stats{
		ReadOps:    m.readOps.Load(),
		ReadBytes:  m.readBytes.Load(),
		WriteOps:   m.writeOps.Load(),
		WriteBytes: m.writeBytes.Load(),
		ProtFaults: m.protFaults.Load(),
	}
}

func (m *Mem) check(addr uint64, n int) error {
	if n < 0 || addr > uint64(len(m.data)) || addr+uint64(n) > uint64(len(m.data)) {
		return ErrOutOfRange
	}
	return nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
