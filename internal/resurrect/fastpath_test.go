package resurrect_test

import (
	"bytes"
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/resurrect"
)

// fpProg lays out one page of each fast-path class:
//
//	page 0: a pattern shared byte-for-byte across every fpProg process —
//	        the cross-process dedup candidate;
//	page 1: written all-zero — the zero-elision candidate;
//	page 2: zero except its very last byte (tagged with the PID so it is
//	        unique per process) — the boundary page that must NOT be
//	        elided or deduplicated.
type fpProg struct{}

const fpVA = 0x80000

func fpSharedPattern() []byte {
	shared := make([]byte, phys.PageSize)
	for i := range shared {
		shared[i] = byte(i%251) + 1
	}
	return shared
}

func (fpProg) Boot(env *kernel.Env) error {
	if err := env.MapAnon(fpVA, 3*phys.PageSize, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	if err := env.Write(fpVA, fpSharedPattern()); err != nil {
		return err
	}
	if err := env.Write(fpVA+phys.PageSize, make([]byte, phys.PageSize)); err != nil {
		return err
	}
	return env.Write(fpVA+3*phys.PageSize-1, []byte{0x80 | byte(env.PID())})
}

func (fpProg) Step(env *kernel.Env) error {
	env.Compute(10)
	return nil
}

func (fpProg) Rehydrate(env *kernel.Env) error { return nil }

func init() {
	kernel.RegisterProgram("fp-prog", func() kernel.Program { return fpProg{} })
}

func fpMachine(t *testing.T) (*core.Machine, *core.FailureOutcome) {
	t.Helper()
	m := newMachine(t)
	if _, err := m.Start("fp-a", "fp-prog"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("fp-b", "fp-prog"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	if err := m.K.InjectOops("fastpath"); err == nil {
		t.Fatal("InjectOops returned nil")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("transfer failed: %s", out.Transfer.Reason)
	}
	if len(out.Report.Procs) != 2 {
		t.Fatalf("resurrected %d procs, want 2", len(out.Report.Procs))
	}
	return m, out
}

// TestFastPathCounters pins exactly which pages the classifier touches: the
// zero page elides in both processes, the shared page dedups only in the
// second (the first holds the canonical copy), and the boundary page — all
// zero but for one byte — is neither elided nor deduplicated.
func TestFastPathCounters(t *testing.T) {
	_, out := fpMachine(t)
	a, b := out.Report.Procs[0], out.Report.Procs[1]
	if a.Outcome != resurrect.OutcomeContinued || b.Outcome != resurrect.OutcomeContinued {
		t.Fatalf("outcomes = %v/%v (errs %v/%v)", a.Outcome, b.Outcome, a.Err, b.Err)
	}
	if a.PagesCopied != 3 || b.PagesCopied != 3 {
		t.Fatalf("copied = %d/%d, want 3/3", a.PagesCopied, b.PagesCopied)
	}
	if a.PagesElided != 1 || b.PagesElided != 1 {
		t.Fatalf("elided = %d/%d, want 1/1 (only the all-zero page)", a.PagesElided, b.PagesElided)
	}
	if a.PagesDeduped != 0 || b.PagesDeduped != 1 {
		t.Fatalf("deduped = %d/%d, want 0/1 (first copy is canonical)", a.PagesDeduped, b.PagesDeduped)
	}
}

// TestFastPathDedupIsolation is the safety property behind the dedup cache:
// dedup hits must fill private frames, so mutating a deduplicated page in
// one resurrected process can never leak into the other candidate.
func TestFastPathDedupIsolation(t *testing.T) {
	m, out := fpMachine(t)
	pa := m.K.Lookup(out.Report.Procs[0].NewPID)
	pb := m.K.Lookup(out.Report.Procs[1].NewPID)
	if pa == nil || pb == nil {
		t.Fatal("resurrected processes not found in the new kernel")
	}
	want := fpSharedPattern()
	got := make([]byte, phys.PageSize)
	for _, p := range []*kernel.Process{pa, pb} {
		if err := m.K.ReadVM(p, fpVA, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pid %d: shared page corrupted after resurrection", p.PID)
		}
	}
	// Mutate the deduplicated page in the first process...
	if err := m.K.WriteVM(pa, fpVA, []byte("divergence")); err != nil {
		t.Fatal(err)
	}
	// ...and the second process must still see the original bytes.
	if err := m.K.ReadVM(pb, fpVA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mutation in one candidate leaked into another's dedup'd page")
	}
}

// TestFastPathZeroAndBoundaryPages checks the installed contents page by
// page: the elided page reads back as zeros, and the boundary page keeps its
// single non-zero tail byte — a false elision would zero it.
func TestFastPathZeroAndBoundaryPages(t *testing.T) {
	m, out := fpMachine(t)
	zeros := make([]byte, phys.PageSize)
	got := make([]byte, phys.PageSize)
	for _, pr := range out.Report.Procs {
		np := m.K.Lookup(pr.NewPID)
		if np == nil {
			t.Fatalf("pid %d not found", pr.NewPID)
		}
		if err := m.K.ReadVM(np, fpVA+phys.PageSize, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, zeros) {
			t.Fatalf("pid %d: elided page not zero-filled", np.PID)
		}
		if err := m.K.ReadVM(np, fpVA+2*phys.PageSize, got); err != nil {
			t.Fatal(err)
		}
		wantTail := byte(0x80 | byte(pr.Candidate.PID))
		if got[phys.PageSize-1] != wantTail {
			t.Fatalf("pid %d: boundary page tail = %#x, want %#x (elision must not fire on a partially-zero page)",
				np.PID, got[phys.PageSize-1], wantTail)
		}
		if !bytes.Equal(got[:phys.PageSize-1], zeros[:phys.PageSize-1]) {
			t.Fatalf("pid %d: boundary page body not zero", np.PID)
		}
	}
}

// TestPageIsZeroBoundary unit-tests the classifier's zero check on the
// chunked scan's edge cases.
func TestPageIsZeroBoundary(t *testing.T) {
	page := make([]byte, phys.PageSize)
	if !phys.PageIsZero(page) {
		t.Fatal("all-zero page reported non-zero")
	}
	for _, idx := range []int{0, 7, 8, 4093, int(phys.PageSize) - 1} {
		page[idx] = 1
		if phys.PageIsZero(page) {
			t.Fatalf("byte %d set but page reported zero", idx)
		}
		page[idx] = 0
	}
	// Short odd-length buffers exercise the non-8-aligned tail.
	if !phys.PageIsZero(make([]byte, 13)) {
		t.Fatal("zero 13-byte buffer reported non-zero")
	}
	odd := make([]byte, 13)
	odd[12] = 0xFF
	if phys.PageIsZero(odd) {
		t.Fatal("tail byte set but buffer reported zero")
	}
}
