package resurrect

import (
	"fmt"
	"hash/crc32"
	"sort"

	"otherworld/internal/kernel"
	"otherworld/internal/metrics"
	"otherworld/internal/phys"
)

// lazy.go is the demand-paged half of the lazy resurrection install
// (Engine.LazyInstall). The classification pass (fastpath.go) marks safe
// resident pages speculated; the install maps them copy-on-access straight
// from the dead kernel's frames (kernel.InstallSpeculatedPage) and registers
// them here. The process then resumes as soon as its resurrection-critical
// records parse, and each page is materialized later:
//
//   - on first touch, via the kernel's page-fault path
//     (kernel.SpeculationResolver.ResolveSpeculated): the dead frame is
//     re-read, CRC-validated against the scan-time stamp, copied into a
//     fresh private frame, and the dead frame is freed;
//   - or by the background sweeper (SweepSpeculated), which the scheduler
//     calls each round so speculation drains even for pages the program
//     never touches. Sweep order is sorted (PID, VA) — deterministic and
//     replayable.
//
// A page that fails first-touch validation aborts speculation for its whole
// candidate: every outstanding page of that process is installed from its
// shadow (the scan-time copy the eager path would have used), so a corrupt
// speculation degrades to exactly the eager result, with the reason kept as
// structured attribution (ProcReport.SpecFallback mid-resume, the fallbacks
// table and resurrect_spec_fallbacks_total afterwards).

// firstTouchBounds buckets the demand-paging stall a resumed process pays on
// first touch of a speculated page: validation plus copy, virtual
// nanoseconds in decade buckets (100ns .. 1ms).
var firstTouchBounds = []int64{1e2, 1e3, 1e4, 1e5, 1e6}

// specEntry is one outstanding copy-on-access page.
type specEntry struct {
	va        uint64
	deadFrame int
	// crc is the scan-time CRC32 of the page; the first touch recomputes it
	// over the live frame to detect corruption between scan and touch.
	crc uint32
	// shadow is the scan-time snapshot of the page — what the eager path
	// would have installed. The fallback path installs it when validation
	// fails, so a corrupt speculation degrades to the eager result.
	shadow   []byte
	writable bool
	dirty    bool
}

// lazyState is the engine's speculation table plus the counting reader the
// first-touch validation reads dead frames through. It implements
// kernel.SpeculationResolver; Run registers it on the crash kernel before
// the install phase, so touches during the crash procedures already resolve
// through it.
type lazyState struct {
	e *Engine
	// rd is the sanctioned dead-memory accessor for speculative re-reads.
	// Its accounting is private to the lazy path: the Report's Table 4
	// ledger is sealed when Run publishes, so post-resume reads surface
	// through resurrect_spec_read_bytes_total instead.
	rd   reader
	acct Accounting
	// pages is pid → va → entry. Iteration is always over sorted keys.
	pages map[uint32]map[uint64]*specEntry
	// fallbacks is the structured attribution of abandoned speculations,
	// pid → reason. Mid-resume entries are consumed into the ProcReport by
	// installOne (takeFallback); post-resume entries stay for inspection.
	fallbacks map[uint32]string
	// installing is true while Run's serial install phase (including its
	// crash procedures) executes; it keeps the fallback counter from double
	// counting procs the publish pass already attributes.
	installing bool
	// report is the pass's published report; first-touch stalls append to
	// its FirstTouch slice at resolve time so post-mortem consumers (the
	// span plane, Table 6 percentiles) see every demand fault the resumed
	// processes paid, not just the ones inside Run.
	report *Report
}

func newLazyState(e *Engine) *lazyState {
	ls := &lazyState{
		e:         e,
		acct:      Accounting{ByCategory: make(map[string]int64)},
		pages:     make(map[uint32]map[uint64]*specEntry),
		fallbacks: make(map[uint32]string),
	}
	ls.rd = reader{mem: e.K.M.Mem, acct: &ls.acct}
	return ls
}

// register records one installed speculated page for later resolution.
func (ls *lazyState) register(pid uint32, pg *pagePlan) {
	byVA := ls.pages[pid]
	if byVA == nil {
		byVA = make(map[uint64]*specEntry)
		ls.pages[pid] = byVA
	}
	byVA[pg.va] = &specEntry{
		va:        pg.va,
		deadFrame: pg.frame,
		crc:       pg.crc,
		shadow:    pg.data,
		writable:  pg.writable,
		dirty:     pg.dirty,
	}
}

// outstanding returns how many speculated pages are still unresolved.
func (ls *lazyState) outstanding() int {
	n := 0
	for _, byVA := range ls.pages {
		n += len(byVA)
	}
	return n
}

// takeFallback consumes the recorded fallback reason for pid, if any.
func (ls *lazyState) takeFallback(pid uint32) (string, bool) {
	reason, ok := ls.fallbacks[pid]
	if ok {
		delete(ls.fallbacks, pid)
	}
	return reason, ok
}

// drop removes one resolved entry.
func (ls *lazyState) drop(pid uint32, va uint64) {
	byVA := ls.pages[pid]
	delete(byVA, va)
	if len(byVA) == 0 {
		delete(ls.pages, pid)
	}
}

// sortedPIDs / sortedVAs fix the iteration order everywhere the table is
// walked — map range order must never reach the simulation.
func (ls *lazyState) sortedPIDs() []uint32 {
	pids := make([]uint32, 0, len(ls.pages))
	for pid := range ls.pages {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

func sortedVAs(byVA map[uint64]*specEntry) []uint64 {
	vas := make([]uint64, 0, len(byVA))
	for va := range byVA {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}

// ResolveSpeculated materializes the speculated page at va on first touch
// (kernel.SpeculationResolver). The stall — validation plus copy — is
// charged to the machine clock, i.e. the consuming process's timeline. It
// runs after the pass published its ledger, so nothing reachable from here
// may write the sealed accounting (owvet sealedacct).
//
//owvet:postseal
func (ls *lazyState) ResolveSpeculated(p *kernel.Process, va uint64) error {
	ent := ls.pages[p.PID][va]
	if ent == nil {
		return fmt.Errorf("resurrect: no speculation recorded for pid %d page %#x", p.PID, va)
	}
	return ls.resolveEntry(p, ent, "touch")
}

// resolveEntry validates and copies one entry. trigger labels the metrics:
// "touch" for demand faults, "sweep" for the background sweeper.
func (ls *lazyState) resolveEntry(p *kernel.Process, ent *specEntry, trigger string) error {
	e := ls.e
	cost := e.K.Cost()
	start := e.K.M.Clock.Now()
	buf := make([]byte, phys.PageSize)
	rerr := ls.rd.at(CatUserData).ReadAt(phys.FrameAddr(ent.deadFrame), buf)
	e.specCounter("resurrect_spec_read_bytes_total",
		"dead-kernel bytes re-read to validate speculated pages", nil).Add(pageBytes)
	e.K.M.Clock.Advance(cost.SpecValidateCost)
	if rerr != nil || crc32.ChecksumIEEE(buf) != ent.crc {
		reason := fmt.Sprintf("crc: page %#x of pid %d failed first-touch validation", ent.va, p.PID)
		if rerr != nil {
			reason = fmt.Sprintf("crc: speculated frame %d for page %#x unreadable: %v", ent.deadFrame, ent.va, rerr)
		}
		return ls.fallbackCandidate(p, reason)
	}
	e.K.M.Clock.Advance(cost.CopyCost(pageBytes))
	if err := e.K.InstallResidentPage(p, ent.va, buf, ent.writable, ent.dirty); err != nil {
		return err
	}
	e.K.Alloc.Free(ent.deadFrame)
	ls.drop(p.PID, ent.va)
	e.specCounter("resurrect_spec_resolved_total",
		"speculated pages materialized, by trigger",
		metrics.Labels{"trigger": trigger}).Inc()
	if trigger == "touch" {
		stall := e.K.M.Clock.Since(start)
		e.specHistogram("resurrect_first_touch_ns",
			"demand-paging stall on first touch of a speculated page",
			firstTouchBounds, nil).Observe(int64(stall))
		if ls.report != nil {
			ls.report.FirstTouch = append(ls.report.FirstTouch, stall)
		}
	}
	return nil
}

// fallbackCandidate abandons speculation for p: every outstanding page of
// the process is installed from its shadow — the scan-time copy, identical
// to what the eager install would have written — and the dead frames are
// released. The whole candidate falls back, not just the failed page: one
// frame that changed under the scan means the dead image can no longer be
// trusted page-by-page.
func (ls *lazyState) fallbackCandidate(p *kernel.Process, reason string) error {
	e := ls.e
	cost := e.K.Cost()
	byVA := ls.pages[p.PID]
	n := 0
	for _, va := range sortedVAs(byVA) {
		ent := byVA[va]
		e.K.M.Clock.Advance(cost.CopyCost(int64(len(ent.shadow))))
		if err := e.K.InstallResidentPage(p, ent.va, ent.shadow, ent.writable, ent.dirty); err != nil {
			return err
		}
		e.K.Alloc.Free(ent.deadFrame)
		n++
	}
	delete(ls.pages, p.PID)
	ls.fallbacks[p.PID] = reason
	e.specCounter("resurrect_spec_resolved_total",
		"speculated pages materialized, by trigger",
		metrics.Labels{"trigger": "fallback"}).Add(int64(n))
	if !ls.installing {
		// Mid-resume fallbacks are counted by publish from the ProcReport
		// attribution; post-resume ones count here, at event time.
		e.specCounter("resurrect_spec_fallbacks_total",
			"candidates whose speculation was abandoned for the eager copy",
			metrics.Labels{"stage": "runtime"}).Inc()
	}
	return nil
}

// SweepSpeculated resolves up to limit outstanding pages in sorted
// (PID, VA) order (kernel.SpeculationResolver); the scheduler calls it each
// round so speculation drains deterministically even for untouched pages.
// Entries of exited processes are released instead — their dead frames go
// back to the allocator without a copy. Like ResolveSpeculated, this runs
// after the ledger sealed (owvet sealedacct).
//
//owvet:postseal
func (ls *lazyState) SweepSpeculated(limit int) (int, error) {
	if limit <= 0 || len(ls.pages) == 0 {
		return 0, nil
	}
	done := 0
	for _, pid := range ls.sortedPIDs() {
		if done >= limit {
			break
		}
		p := ls.e.K.Lookup(pid)
		if p == nil || p.Exited {
			done += ls.releasePID(pid)
			continue
		}
		byVA := ls.pages[pid]
		for _, va := range sortedVAs(byVA) {
			if done >= limit {
				break
			}
			ent := byVA[va]
			if ent == nil {
				continue
			}
			if err := ls.resolveEntry(p, ent, "sweep"); err != nil {
				return done, err
			}
			done++
			if _, live := ls.pages[pid]; !live {
				// A sweep-time CRC failure fell the whole candidate back;
				// its remaining VAs are already installed.
				break
			}
		}
	}
	return done, nil
}

// releasePID frees the speculated frames of a process that exited before
// resolving them; nobody will ever fault them in.
func (ls *lazyState) releasePID(pid uint32) int {
	byVA := ls.pages[pid]
	n := 0
	for _, va := range sortedVAs(byVA) {
		ls.e.K.Alloc.Free(byVA[va].deadFrame)
		n++
	}
	delete(ls.pages, pid)
	ls.e.specCounter("resurrect_spec_resolved_total",
		"speculated pages materialized, by trigger",
		metrics.Labels{"trigger": "release"}).Add(int64(n))
	return n
}

// specCounter / specHistogram are the lazy path's registry accessors; a nil
// registry degrades to no-ops like everywhere else.
func (e *Engine) specCounter(name, help string, l metrics.Labels) metrics.Counter {
	return e.Metrics.Counter(name, help, l)
}

func (e *Engine) specHistogram(name, help string, bounds []int64, l metrics.Labels) metrics.Histogram {
	return e.Metrics.Histogram(name, help, bounds, l)
}
