package resurrect

// Streaming resurrection: index-assisted candidate discovery, SLO-tier
// admission and the pipelined install commit.
//
// The classic pass (engine.go Run) is a batch: a serial full-heap walk
// lists candidates, every candidate scans behind a barrier, then installs
// serialize in list order. Time-to-first-resume therefore grows with the
// whole population — fine at 8×MySQL, hopeless at fleet scale. The
// streaming pass keeps every observable deterministic while removing both
// population bottlenecks:
//
//   - Discovery seeds scanners from the dead kernel's candidate index
//     (internal/layout): a compact CRC-framed array the main kernel
//     maintained next to the trace ring, parsed here in whole-frame
//     batches instead of per-record list hops. A missing or corrupt index
//     degrades to the full walk with "index-salvage: …" attribution.
//   - Admission orders candidates by SLO tier (tier-0 critical first)
//     through the deterministic priority queue in internal/sched.
//   - The install commit is per-candidate and pipelined behind a
//     tier-then-PID-order cursor: a worker scans its candidate, waits for
//     the cursor, then classifies + installs while other workers keep
//     scanning. Commits execute in strict admission order with shared
//     classification state, so the report is bit-identical at any width
//     — only the modeled schedule (sched.Pipeline) changes.

import (
	"sort"
	"sync"
	"time"

	"otherworld/internal/disk"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/sched"
	"otherworld/internal/sim"
	"otherworld/internal/trace"
)

// discoverCandidates lists the dead kernel's resurrection candidates:
// from the salvaged candidate index when one is present and intact, else
// by the full process-list walk. Index accounting and skip counts land on
// the report; the fallback attribution records why an existing index was
// rejected.
func (e *Engine) discoverCandidates(rep *Report) ([]Candidate, error) {
	if e.IndexRegion.Frames == 0 {
		return e.ListCandidates()
	}
	cands, used, skipped, reason := e.listViaIndex()
	if reason != "" {
		rep.IndexFallback = "index-salvage: " + reason
		return e.ListCandidates()
	}
	rep.IndexUsed = used
	rep.IndexSkipped = skipped
	return cands, nil
}

// listViaIndex salvages the candidate index out of the dead kernel's
// reservation. All bytes flow through the counting reader under CatIndex,
// and parse overhead is charged per index frame — the whole point: the
// index is read in O(population/16) frame-sized batches where the full
// walk pays a record-parse round trip per process. A non-empty reason
// means the index was unusable and the caller must walk.
func (e *Engine) listViaIndex() (cands []Candidate, used, skipped int, reason string) {
	base := phys.FrameAddr(e.IndexRegion.Start)
	size := e.IndexRegion.Frames * phys.PageSize
	sal, err := layout.ParseIndex(e.rd.at(CatIndex), base, size, e.VerifyCRC)
	if err != nil {
		return nil, 0, 0, err.Error()
	}
	for i := 0; i < e.IndexRegion.Frames; i++ {
		e.parseTime()
	}
	entries := append([]layout.IndexEntry(nil), sal.Entries...)
	// Newest first, exactly like the head-linked process list the full
	// walk traverses, so selection and reporting order match the walk's.
	sort.Slice(entries, func(i, j int) bool { return entries[i].PID > entries[j].PID })
	for _, en := range entries {
		cands = append(cands, Candidate{
			PID:       en.PID,
			Name:      en.Name,
			Program:   en.Program,
			Addr:      en.Addr,
			CrashProc: en.CrashProc,
		})
	}
	return cands, len(entries), sal.Skipped, ""
}

// admissionOrder runs the selected candidates through the priority queue
// and returns them in admitted order with their tiers. Within a tier,
// candidates are pushed in PID (creation) order, so admission is
// tier-then-PID — the commit cursor's ordering contract.
func admissionOrder(cfg Config, selected []Candidate) ([]Candidate, []int) {
	byPID := make([]int, len(selected))
	for i := range selected {
		byPID[i] = i
	}
	sort.Slice(byPID, func(a, b int) bool {
		return selected[byPID[a]].PID < selected[byPID[b]].PID
	})
	q := sched.NewQueue(sched.DefaultAging)
	for _, idx := range byPID {
		c := selected[idx]
		q.Push(sched.Item{Tier: cfg.TierOf(c.Program), Key: c.PID, Seq: idx})
	}
	adm := make([]Candidate, 0, len(selected))
	tiers := make([]int, 0, len(selected))
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		adm = append(adm, selected[it.Seq])
		tiers = append(tiers, it.Tier)
	}
	return adm, tiers
}

// runStream is the streaming pass body: admission ordering, the scan pool
// with the pipelined per-candidate commit, and the stream schedule model.
// It fills rep in place (Run already completed discovery and selection).
func (e *Engine) runStream(cfg Config, rep *Report, selected []Candidate, mainSwap *disk.BlockDevice, start time.Duration) {
	adm, tiers := admissionOrder(cfg, selected)
	n := len(adm)
	workers := cfg.effectiveWorkers(n)
	rep.Prologue = e.K.M.Clock.Since(start)

	// The lazy install registers its speculation table before any commit:
	// crash procedures run inside pipelined commits and may touch
	// speculated pages.
	if e.LazyInstall {
		e.lazy = newLazyState(e)
		e.lazy.installing = true
		e.lazy.report = rep
		e.K.Spec = e.lazy
	}
	liveClock := e.K.M.Clock
	scratch := sim.NewClock()
	e.K.M.Clock = scratch

	// Workers claim admission slots in order through the cursor, scan
	// concurrently (read-only, per-candidate accounting shard and event
	// ledger), then commit — classify + install — in strict admission
	// order under the commit cursor. Scans overlap earlier commits; the
	// commit itself is the only serialized section, and it is serialized
	// *in a fixed order*, so every mutation of the new kernel and every
	// shared classification decision is a pure function of the admission
	// sequence.
	plans := make([]*plan, n)
	accts := make([]*Accounting, n)
	evs := make([][]trace.Event, n)
	procs := make([]ProcReport, n)
	perScan := make([]time.Duration, n)
	perInstall := make([]time.Duration, n)
	perCand := make([]time.Duration, n)
	ctx := e.newClassifyCtx()
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		cursor int
		commit int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := cursor
				if i >= n {
					mu.Unlock()
					return
				}
				cursor++
				mu.Unlock()

				sh := &Accounting{ByCategory: make(map[string]int64)}
				sc := e.newScanner(sh, mainSwap)
				pl := sc.scanOne(adm[i])

				mu.Lock()
				for commit != i {
					cond.Wait()
				}
				plans[i] = pl
				accts[i] = sh
				ev := e.classifyPlan(pl, ctx)
				m0 := scratch.Now()
				pl.resumeClock = -1
				procs[i] = e.installOne(pl)
				inst := scratch.Since(m0)
				perScan[i] = pl.scanDur
				perInstall[i] = inst
				perCand[i] = pl.scanDur + inst
				if pl.resumeClock >= 0 {
					// Lazy candidate: blocked only until context install.
					perCand[i] = pl.scanDur + (pl.resumeClock - m0)
				}
				events := sc.events
				if ev != nil {
					events = append(events, *ev)
				}
				evs[i] = events
				commit++
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	e.K.M.Clock = liveClock
	if e.lazy != nil {
		e.lazy.installing = false
	}

	// Deterministic reduction in admission order: per-candidate shards
	// fold with saturating adds, per-candidate event ledgers merge by
	// candidate-local logical time.
	for _, sh := range accts {
		e.acct.absorb(sh)
	}
	rep.ScanTrace = trace.Merge(evs...)
	rep.Procs = append(rep.Procs, procs...)
	rep.Acct = e.acct
	rep.PerCandidate = perCand
	rep.PerScan = perScan
	rep.PerInstall = perInstall
	rep.Streamed = true
	rep.Tiers = tiers
	rep.Duration = rep.Prologue + sumSpans(perCand)
	// The machine clock advances by the pipelined schedule's makespan over
	// the *full* installs — lazy or not, the install work all happened —
	// while Duration keeps the serial blocked sum, same as the batch pass.
	_, makespan, busy := sched.Pipeline(perScan, perInstall, workers)
	e.K.M.Clock.Advance(makespan)
	rep.Parallel = ParallelStats{
		Workers:      workers,
		PerWorker:    busy,
		CriticalPath: makespan,
		Duration:     e.K.M.Clock.Since(start),
	}
	e.publish(rep)
}

// blockedSpans is each candidate's install time until its process was
// runnable (the full install for eager candidates, the pre-resume slice
// for lazy ones): PerCandidate minus the scan.
func (r *Report) blockedSpans() []time.Duration {
	out := make([]time.Duration, len(r.PerCandidate))
	for i := range r.PerCandidate {
		out[i] = r.PerCandidate[i]
		if i < len(r.PerScan) {
			out[i] -= r.PerScan[i]
		}
	}
	return out
}

// hasSplit reports whether the report carries the scan/install split the
// stream schedule model needs (older or degenerate reports may not).
func (r *Report) hasSplit() bool {
	return len(r.PerScan) == len(r.PerCandidate) &&
		len(r.PerInstall) == len(r.PerCandidate) && len(r.PerCandidate) > 0
}

// ResumeTimesAt models, at the given worker width, each candidate's
// time from pass start to its process resuming, in Procs order. For a
// streamed pass this is the pipelined-commit schedule; for a batch pass
// it is the scan barrier plus the serial install prefix. A pure function
// of width-independent report fields.
func (r *Report) ResumeTimesAt(workers int) []time.Duration {
	if !r.hasSplit() {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	blocked := r.blockedSpans()
	out := make([]time.Duration, len(r.PerCandidate))
	if r.Streamed {
		slots, _, _ := sched.Pipeline(r.PerScan, r.PerInstall, workers)
		for i := range out {
			out[i] = r.Prologue + slots[i].CommitStart + blocked[i]
		}
		return out
	}
	// Batch: every scan completes behind the barrier, installs serialize
	// in stored candidate order.
	t := maxSpan(shardSpans(r.PerScan, workers))
	for i := range out {
		out[i] = r.Prologue + t + blocked[i]
		t += r.PerInstall[i]
	}
	return out
}

// FirstResumeAt returns the earliest modeled resume time among candidates
// selected by want (an index predicate over Procs order), at the given
// width.
func (r *Report) FirstResumeAt(workers int, want func(i int) bool) (time.Duration, bool) {
	times := r.ResumeTimesAt(workers)
	var best time.Duration
	found := false
	for i, t := range times {
		if want != nil && !want(i) {
			continue
		}
		if !found || t < best {
			best = t
			found = true
		}
	}
	return best, found
}

// TierFirstResumeAt is FirstResumeAt restricted to one admission tier of
// a streamed pass (false when the pass was not streamed or the tier is
// empty) — the per-tier time-to-first-resume the fleet tables report.
func (r *Report) TierFirstResumeAt(workers, tier int) (time.Duration, bool) {
	if !r.Streamed || len(r.Tiers) != len(r.PerCandidate) {
		return 0, false
	}
	return r.FirstResumeAt(workers, func(i int) bool { return r.Tiers[i] == tier })
}
