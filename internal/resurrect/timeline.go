package resurrect

import (
	"fmt"
	"time"
)

// Phase names one stage of a single process's resurrection, in the order
// resurrectOne performs them. The timeline built from these phases is the
// per-process half of the failure attribution the experiment harness
// reports: when resurrection fails, the phase reached says *where* in the
// Section 3.3 pipeline the dead kernel's structures were too corrupt to use.
type Phase int

// Resurrection phases, in execution order.
const (
	// PhaseParse reads the process descriptor and saved context out of
	// the dead kernel and creates the empty target process.
	PhaseParse Phase = iota
	// PhaseFileReopen reopens the process's files by name and path.
	PhaseFileReopen
	// PhaseFlush writes the dead kernel's dirty page-cache pages to disk.
	PhaseFlush
	// PhaseRegions rebuilds the memory-region list.
	PhaseRegions
	// PhasePageCopy copies (or maps) resident pages from the dead
	// kernel's frames.
	PhasePageCopy
	// PhaseSwapRestage re-stages pages from the dead kernel's swap
	// partition into the new kernel's.
	PhaseSwapRestage
	// PhaseShm reattaches shared-memory segments.
	PhaseShm
	// PhaseTerminal reconnects the controlling terminal.
	PhaseTerminal
	// PhaseSignals restores the signal table.
	PhaseSignals
	// PhaseIPC restores (or reports missing) pipes and sockets.
	PhaseIPC
	// PhaseContext installs the saved hardware context.
	PhaseContext
	// PhasePolicy runs the crash procedure and the Table 1 decision.
	PhasePolicy
)

var phaseNames = [...]string{
	"parse", "file-reopen", "flush", "regions", "page-copy",
	"swap-restage", "shm", "terminal", "signals", "ipc", "context",
	"policy",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// PhaseStep is one completed (or failed) phase of a process's resurrection
// timeline, with the byte/page counters that feed Table 4 accounting.
type PhaseStep struct {
	Phase Phase
	// Err is the phase's failure, "" on success. A non-fatal error (a
	// peripheral resource degraded to a missing bit) still appears here.
	Err string
	// Pages counts pages the phase handled (copied, re-staged, flushed).
	Pages int
	// Bytes counts bytes read from the dead kernel's memory during the
	// phase (the same counting that feeds Table 4).
	Bytes int64
	// Duration is the virtual time the phase consumed.
	Duration time.Duration
}

// Timeline is a process's resurrection history, one step per phase reached.
// Phases after a fatal failure are absent: the timeline's length says how
// far the pipeline got.
type Timeline []PhaseStep

// Last returns the final step reached, or nil for an empty timeline.
func (t Timeline) Last() *PhaseStep {
	if len(t) == 0 {
		return nil
	}
	return &t[len(t)-1]
}

// FailedPhase returns the phase of the last step that carried an error. ok
// is false when every recorded step succeeded.
func (t Timeline) FailedPhase() (Phase, bool) {
	for i := len(t) - 1; i >= 0; i-- {
		if t[i].Err != "" {
			return t[i].Phase, true
		}
	}
	return 0, false
}

// String renders the timeline compactly: "parse → file-reopen → ...".
func (t Timeline) String() string {
	s := ""
	for i, st := range t {
		if i > 0 {
			s += " → "
		}
		s += st.Phase.String()
		if st.Err != "" {
			s += "(!)"
		}
	}
	return s
}
