package resurrect

import (
	"fmt"
	"time"

	"otherworld/internal/disk"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/metrics"
	"otherworld/internal/phys"
	"otherworld/internal/sim"
	"otherworld/internal/trace"
)

// The resurrection pipeline is split into a read side and a write side so
// candidates can be processed in parallel without giving up determinism:
//
//   - scan (this file): per-candidate, read-only decoding of the dead
//     kernel's structures into a plan. Scans never touch the crash kernel's
//     state, so a pool of workers can run them concurrently — each worker
//     owns its own counting reader, Accounting shard and virtual-time
//     ledger.
//   - install (install.go): serial, in stable candidate order, consuming
//     the plans. All crash-kernel mutation (PID allocation, frame installs,
//     FS writes, crash procedures) happens here, so the new kernel's state
//     is byte-identical no matter how many workers scanned.

// phaseScan is the scan-side metric bundle for one timeline phase: bytes
// read from the dead kernel, pages handled, and ledger time spent.
type phaseScan struct {
	pages int
	bytes int64
	dur   time.Duration
}

// dirtyPage is one dirty page-cache page to be flushed at install time.
type dirtyPage struct {
	off  uint64
	data []byte
}

// filePlan is one decoded open-file record plus its pending flushes.
type filePlan struct {
	addr  uint64
	rec   *layout.FileRec
	dirty []dirtyPage
}

// pagePlan is one user page to install: a resident copy, an in-place
// mapping (footnote-3 mode), or a swapped page read raw off the dead
// kernel's partition. The fast-path classification pass (fastpath.go) may
// mark a resident copy zero-elided (data dropped, install zero-fills) or
// deduplicated (data re-pointed at the canonical cached copy); the lazy
// install's classification may instead mark it speculated (mapped
// copy-on-access from the dead frame, validated by crc on first touch,
// with data kept as the scan-time snapshot the fallback installs).
type pagePlan struct {
	va         uint64
	swapped    bool
	mapped     bool
	zero       bool // all-zero page: install a zero-filled frame instead
	deduped    bool // data aliases the dedup cache's canonical copy
	speculated bool // lazy install: map copy-on-access from the dead frame
	frame      int  // the dead kernel's frame holding the page contents
	crc        uint32
	saved      int64 // actual copy bytes avoided (elided/deduped pages)
	data       []byte
	writable   bool
	dirty      bool
}

// shmPlan is one decoded shared-memory segment with its page contents.
type shmPlan struct {
	seg      *layout.Shm
	contents []byte
}

// pipePlan is one decoded pipe with its buffer page.
type pipePlan struct {
	rec *layout.Pipe
	buf []byte
}

// plan is everything one candidate's install needs, produced by a single
// scan and never touched by another worker. Scan-side errors are recorded
// per structure; the install replays the serial engine's exact
// fatal/degraded branching from them.
type plan struct {
	cand Candidate

	old      *layout.Proc
	ctx      layout.Context
	parseErr error

	files    []filePlan
	filesErr error

	regions    []*layout.MemRegion
	regionsErr error

	pages     []pagePlan
	swapBytes int64
	pagesErr  error

	shm    []shmPlan
	shmErr error

	terminal *layout.Terminal
	screen   []byte
	termErr  error

	signals *layout.Signals
	sigErr  error

	pipes      []pipePlan
	pipesErr   error
	sockets    []*layout.Socket
	socketsErr error
	hasPipes   bool
	hasSockets bool

	// phase carries scan-side metrics into the install's timeline.
	phase map[Phase]phaseScan
	// scanDur is the candidate's total scan-side virtual time.
	scanDur time.Duration

	// lazy marks the candidate for the demand-paged install: non-zero
	// resident pages are speculated (mapped copy-on-access from the dead
	// frame) and the process resumes as soon as its context installs.
	lazy bool
	// fallbackReason is the structured attribution recorded when the lazy
	// install's validation refused to speculate this candidate; it then
	// installs eagerly, through the ordinary full-copy classification.
	fallbackReason string
	// resumeClock is the scratch-clock instant the process became runnable
	// (context installed). Run seeds it with -1; eager installs leave it
	// there, meaning the candidate blocked until its install finished.
	resumeClock time.Duration
}

// scanner is one worker's read-only view of the dead kernel. It charges
// virtual time to a private ledger instead of the shared machine clock, so
// concurrent scans cannot race on it; the engine folds the ledgers into the
// parallel schedule afterwards.
type scanner struct {
	rd           reader
	acct         *Accounting
	cost         sim.CostModel
	memSize      uint64
	numFrames    int
	verifyCRC    bool
	mapPages     bool
	resurrectIPC bool
	mainSwap     *disk.BlockDevice
	// metrics is the shared registry; scan-side writes are counter adds
	// whose values are pure functions of the candidate, so any worker
	// interleaving folds to the same totals (commutative int adds under
	// the registry lock).
	metrics *metrics.Registry

	// led is the worker's virtual-time ledger.
	led time.Duration
	// events is the worker's trace sequence; logical event time is
	// candidate-local so the merged order cannot depend on worker count.
	events []trace.Event
}

// newScanner builds a worker-local scanner with its own counting reader
// and Accounting shard.
func (e *Engine) newScanner(shard *Accounting, mainSwap *disk.BlockDevice) *scanner {
	return &scanner{
		rd:           reader{mem: e.K.M.Mem, acct: shard},
		acct:         shard,
		cost:         e.K.Cost(),
		memSize:      uint64(e.K.M.Mem.Size()),
		numFrames:    e.K.M.Mem.NumFrames(),
		verifyCRC:    e.VerifyCRC,
		mapPages:     e.MapPages,
		resurrectIPC: e.ResurrectIPC,
		mainSwap:     mainSwap,
		metrics:      e.Metrics,
	}
}

// charge adds d to the worker's ledger (saturating at zero: the cost model
// never yields negative durations, but the ledger mirrors sim.Clock).
func (s *scanner) charge(d time.Duration) {
	if d > 0 {
		s.led += d
	}
}

// parseTime charges the fixed record-parse overhead, the scan-side
// equivalent of Engine.parseTime.
func (s *scanner) parseTime() { s.charge(s.cost.RecordParseOverhead) }

// scanOne decodes one candidate into a plan, stopping at the first fatal
// structure (exactly where the serial engine stopped reading) and recording
// per-phase metrics plus one trace event per phase.
func (s *scanner) scanOne(cand Candidate) *plan {
	pl := &plan{cand: cand, phase: make(map[Phase]phaseScan)}
	start := s.led
	bytesAtStart := s.acct.total()
	bytesMark := bytesAtStart
	ledMark := s.led
	rec := func(ph Phase, pages int) {
		ps := phaseScan{
			pages: pages,
			bytes: s.acct.total() - bytesMark,
			dur:   s.led - ledMark,
		}
		pl.phase[ph] = ps
		bytesMark += ps.bytes
		ledMark = s.led
		// Logical event time is the offset inside this candidate's own
		// scan: a pure function of the candidate, not of which worker ran
		// it or what ran before it on the same worker.
		s.events = append(s.events, trace.Event{
			Seq:  uint64(s.led - start),
			Kind: trace.KindResurrect,
			PID:  cand.PID,
			PC:   uint64(s.led - start),
			A:    uint64(ph),
			B:    uint64(ps.bytes),
			Note: ph.String(),
		})
	}
	done := func() *plan {
		pl.scanDur = s.led - start
		// Pool-side instrumentation: concurrent counter adds from
		// whichever worker scanned this candidate.
		s.metrics.Counter("resurrect_scans_total",
			"candidates decoded by the scan pool", nil).Inc()
		s.metrics.Counter("resurrect_scan_bytes_total",
			"dead-kernel bytes read by the scan pool", nil).Add(s.acct.total() - bytesAtStart)
		return pl
	}

	// Phase 1: process descriptor, program presence, saved context.
	old, err := layout.ReadProc(s.rd.at(CatProc), cand.Addr, s.verifyCRC)
	if err != nil {
		pl.parseErr = fmt.Errorf("process descriptor: %w", err)
		rec(PhaseParse, 0)
		return done()
	}
	s.parseTime()
	pl.old = old
	if kernel.LookupProgram(old.Program) == nil {
		pl.parseErr = fmt.Errorf("program %q not on disk", old.Program)
		rec(PhaseParse, 0)
		return done()
	}
	ctx, ok, err := layout.ReadContext(s.rd.at(CatContext), old.KStack)
	if err != nil || !ok || !ctx.Saved {
		pl.parseErr = fmt.Errorf("saved context missing or unreadable on kernel stack %#x", old.KStack)
		rec(PhaseParse, 0)
		return done()
	}
	s.parseTime()
	pl.ctx = ctx
	rec(PhaseParse, 0)

	// Phase 2: open files and their dirty page-cache pages. The flush
	// itself (an FS write) belongs to the install; the scan reads the
	// records and page contents. A corrupted list degrades (missing-files
	// bit) so later phases are still scanned, matching the serial engine.
	pl.files, pl.filesErr = s.scanFiles(old)
	rec(PhaseFileReopen, 0)
	rec(PhaseFlush, 0)
	if pl.filesErr != nil && !layout.IsCorruption(pl.filesErr) {
		return done()
	}

	// Phase 3: memory regions (fatal on corruption).
	pl.regions, pl.regionsErr = s.scanRegions(old)
	rec(PhaseRegions, 0)
	if pl.regionsErr != nil {
		return done()
	}

	// Phases 4+5: page tables and page contents. The accounting split
	// between page-copy and swap-restage mirrors the serial engine: the
	// copy step carries all bytes except raw swap reads.
	copied, restaged := 0, 0
	swapMark := s.acct.ByCategory[CatSwapData]
	pl.pages, pl.pagesErr = s.scanPages(old, &copied, &restaged)
	pl.swapBytes = s.acct.ByCategory[CatSwapData] - swapMark
	pagesDelta := s.acct.total() - bytesMark
	pagesDur := s.led - ledMark
	pl.phase[PhasePageCopy] = phaseScan{pages: copied, bytes: pagesDelta - pl.swapBytes, dur: pagesDur}
	pl.phase[PhaseSwapRestage] = phaseScan{pages: restaged, bytes: pl.swapBytes}
	bytesMark += pagesDelta
	ledMark = s.led
	s.events = append(s.events, trace.Event{
		Seq:  uint64(s.led - start),
		Kind: trace.KindResurrect,
		PID:  cand.PID,
		PC:   uint64(s.led - start),
		A:    uint64(PhasePageCopy),
		B:    uint64(pagesDelta),
		Note: PhasePageCopy.String(),
	})
	if pl.pagesErr != nil {
		return done()
	}

	// Phase 6: shared memory (fatal: it is memory).
	pl.shm, pl.shmErr = s.scanShm(old)
	rec(PhaseShm, 0)
	if pl.shmErr != nil {
		return done()
	}

	// Phases 7+8: terminal and signals — peripheral, degrade on error.
	if old.Terminal != 0 {
		pl.terminal, pl.screen, pl.termErr = s.scanTerminal(old)
		rec(PhaseTerminal, 0)
	}
	if old.Signals != 0 {
		pl.signals, pl.sigErr = s.scanSignals(old)
		rec(PhaseSignals, 0)
	}

	// Phase 9: IPC — restored under the Section 7 extension, otherwise
	// only probed for the missing-resource bitmask.
	if s.resurrectIPC {
		pl.pipes, pl.pipesErr = s.scanPipes(old)
		pl.sockets, pl.socketsErr = s.scanSockets(old)
	} else {
		pl.hasPipes, _ = s.hasIPC(old.Pipes, layout.TypePipe)
		pl.hasSockets, _ = s.hasIPC(old.Sockets, layout.TypeSocket)
	}
	rec(PhaseIPC, 0)

	return done()
}

// scanFiles walks the fd list, decoding each record and collecting the
// dirty page-cache pages that the install must write back to disk.
func (s *scanner) scanFiles(old *layout.Proc) ([]filePlan, error) {
	var out []filePlan
	cur := old.Files
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return out, &layout.CorruptionError{Addr: cur, Want: layout.TypeFile, Reason: "fd list loop"}
		}
		rec, err := layout.ReadFileRec(s.rd.at(CatFile), cur, s.verifyCRC)
		if err != nil {
			return out, err
		}
		s.parseTime()
		fp := filePlan{addr: cur, rec: rec}
		cp := rec.CachePages
		for cacheHops := 0; cp != 0; cacheHops++ {
			if cacheHops > 65536 {
				return out, &layout.CorruptionError{Addr: cp, Want: layout.TypeCachePage, Reason: "page cache loop"}
			}
			page, err := layout.ReadCachePage(s.rd.at(CatCache), cp, s.verifyCRC)
			if err != nil {
				return out, err
			}
			s.parseTime()
			if page.Dirty && page.Bytes > 0 && page.Bytes <= phys.PageSize {
				buf := make([]byte, page.Bytes)
				if err := s.rd.at(CatUserData).ReadAt(page.Frame*phys.PageSize, buf); err != nil {
					return out, &layout.CorruptionError{Addr: cp, Want: layout.TypeCachePage, Reason: "cache frame unreadable"}
				}
				fp.dirty = append(fp.dirty, dirtyPage{off: page.FileOff, data: buf})
			}
			cp = page.Next
		}
		out = append(out, fp)
		cur = rec.Next
	}
	return out, nil
}

// scanRegions decodes the memory-region list.
func (s *scanner) scanRegions(old *layout.Proc) ([]*layout.MemRegion, error) {
	var out []*layout.MemRegion
	cur := old.MemRegions
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return out, &layout.CorruptionError{Addr: cur, Want: layout.TypeMemRegion, Reason: "region list loop"}
		}
		r, err := layout.ReadMemRegion(s.rd.at(CatRegion), cur, s.verifyCRC)
		if err != nil {
			return out, err
		}
		s.parseTime()
		out = append(out, r)
		cur = r.Next
	}
	return out, nil
}

// scanPages walks the dead process's hardware page tables and captures
// every touched page: resident pages are copied out of the dead frame (or
// noted for in-place mapping), swapped pages are read raw off the dead
// kernel's swap partition. Swap re-stage bandwidth is charged to the
// worker's ledger here; resident-copy bandwidth is deferred to the serial
// fast-path classification (fastpath.go), which knows whether each page
// elides, dedups or pays the full copy.
func (s *scanner) scanPages(old *layout.Proc, copied, restaged *int) ([]pagePlan, error) {
	if old.PageDir%phys.PageSize != 0 || old.PageDir >= s.memSize {
		return nil, fmt.Errorf("page directory address %#x implausible", old.PageDir)
	}
	dirPage := make([]byte, phys.PageSize)
	if err := s.rd.at(CatPageTable).ReadAt(old.PageDir, dirPage); err != nil {
		return nil, fmt.Errorf("page directory unreadable: %v", err)
	}

	var out []pagePlan
	ptPage := make([]byte, phys.PageSize)
	for dir := 0; dir < layout.DirEntries; dir++ {
		dirEnt := leU64(dirPage[dir*8:])
		if dirEnt == 0 {
			continue
		}
		if dirEnt%phys.PageSize != 0 || dirEnt >= s.memSize {
			return out, fmt.Errorf("page directory entry %d (%#x) corrupt", dir, dirEnt)
		}
		if err := s.rd.at(CatPageTable).ReadAt(dirEnt, ptPage); err != nil {
			return out, fmt.Errorf("page table unreadable: %v", err)
		}
		for t := 0; t < layout.PTEsPerPage; t++ {
			pte := layout.PTE(leU64(ptPage[t*8:]))
			if pte == 0 {
				continue
			}
			va := layout.VirtJoin(dir, t, 0)
			switch {
			// A speculated PTE in a *dead* kernel means it crashed before
			// its own lazy install finished resolving; the referenced frame
			// still holds the page's authoritative contents (writes resolve
			// before landing), so it scans exactly like a present page.
			case pte.Present(), pte.Speculated():
				frame := pte.Frame()
				if frame >= s.numFrames {
					return out, fmt.Errorf("PTE for %#x references frame %d beyond memory", va, frame)
				}
				pp := pagePlan{va: va, frame: frame, writable: pte.Writable(), dirty: pte.Dirty()}
				if s.mapPages {
					// Footnote-3 fast path: adopt the frame in place.
					pp.mapped = true
					s.charge(s.cost.RecordParseOverhead)
				} else {
					buf := make([]byte, phys.PageSize)
					if err := s.rd.at(CatUserData).ReadAt(phys.FrameAddr(frame), buf); err != nil {
						return out, err
					}
					pp.data = buf
					// The copy bandwidth is NOT charged here: the serial
					// fast-path classification (fastpath.go) charges
					// CopyCost, DedupHitCost or ZeroFillCost per page once
					// it knows which of the three the page needs. Byte
					// accounting stays here with the read.
				}
				out = append(out, pp)
				*copied++
			case pte.Swapped():
				if s.mainSwap == nil {
					return out, fmt.Errorf("swapped PTE for %#x but main swap partition unavailable", va)
				}
				data, derr := disk.ReadRaw(s.mainSwap, pte.SwapSlot())
				if derr != nil {
					return out, fmt.Errorf("swap slot %d: %v", pte.SwapSlot(), derr)
				}
				s.acct.ByCategory[CatSwapData] += int64(len(data))
				out = append(out, pagePlan{va: va, swapped: true, data: data, writable: pte.Writable()})
				s.charge(s.cost.SwapRestageCost(phys.PageSize))
				*restaged++
			}
		}
	}
	return out, nil
}

// scanShm decodes each shared-memory segment and copies its page contents.
func (s *scanner) scanShm(old *layout.Proc) ([]shmPlan, error) {
	var out []shmPlan
	cur := old.Shm
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return out, &layout.CorruptionError{Addr: cur, Want: layout.TypeShm, Reason: "shm list loop"}
		}
		seg, err := layout.ReadShm(s.rd.at(CatShm), cur, s.verifyCRC)
		if err != nil {
			return out, err
		}
		s.parseTime()
		contents := make([]byte, seg.Size)
		for i, f := range seg.Frames {
			if f >= uint64(s.numFrames) {
				return out, fmt.Errorf("shm frame %d beyond memory", f)
			}
			off := i * phys.PageSize
			n := phys.PageSize
			if off+n > len(contents) {
				n = len(contents) - off
			}
			if n <= 0 {
				break
			}
			buf := make([]byte, n)
			if err := s.rd.at(CatUserData).ReadAt(f*phys.PageSize, buf); err != nil {
				return out, err
			}
			copy(contents[off:], buf)
		}
		out = append(out, shmPlan{seg: seg, contents: contents})
		s.charge(s.cost.CopyCost(int64(len(contents))))
		cur = seg.Next
	}
	return out, nil
}

// scanTerminal decodes the terminal record and screen buffer. Pseudo
// terminals are refused — the prototype "can only restore the state of
// physical terminals".
func (s *scanner) scanTerminal(old *layout.Proc) (*layout.Terminal, []byte, error) {
	rec, err := layout.ReadTerminal(s.rd.at(CatTerminal), old.Terminal, s.verifyCRC)
	if err != nil {
		return nil, nil, err
	}
	s.parseTime()
	if rec.Settings&kernel.TermPseudo != 0 {
		return nil, nil, fmt.Errorf("pseudo terminal %d is not resurrectable", rec.Index)
	}
	screen := make([]byte, int(rec.Rows)*int(rec.Cols))
	if err := s.rd.at(CatTerminal).ReadAt(rec.Screen, screen); err != nil {
		return nil, nil, err
	}
	return rec, screen, nil
}

// scanSignals decodes the signal-handler table.
func (s *scanner) scanSignals(old *layout.Proc) (*layout.Signals, error) {
	tbl, err := layout.ReadSignals(s.rd.at(CatSignals), old.Signals, s.verifyCRC)
	if err != nil {
		return nil, err
	}
	s.parseTime()
	return tbl, nil
}

// scanPipes decodes the pipe list with each pipe's buffer page.
func (s *scanner) scanPipes(old *layout.Proc) ([]pipePlan, error) {
	var out []pipePlan
	cur := old.Pipes
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return out, &layout.CorruptionError{Addr: cur, Want: layout.TypePipe, Reason: "pipe list loop"}
		}
		rec, err := layout.ReadPipe(s.rd.at(CatIPC), cur, s.verifyCRC)
		if err != nil {
			return out, err
		}
		s.parseTime()
		buf := make([]byte, phys.PageSize)
		if rec.Buf+phys.PageSize <= s.memSize {
			if err := s.rd.at(CatUserData).ReadAt(rec.Buf, buf); err != nil {
				return out, err
			}
		}
		out = append(out, pipePlan{rec: rec, buf: buf})
		cur = rec.Next
	}
	return out, nil
}

// scanSockets decodes the socket list.
func (s *scanner) scanSockets(old *layout.Proc) ([]*layout.Socket, error) {
	var out []*layout.Socket
	cur := old.Sockets
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return out, &layout.CorruptionError{Addr: cur, Want: layout.TypeSocket, Reason: "socket list loop"}
		}
		rec, err := layout.ReadSocket(s.rd.at(CatIPC), cur, s.verifyCRC)
		if err != nil {
			return out, err
		}
		s.parseTime()
		out = append(out, rec)
		cur = rec.Next
	}
	return out, nil
}

// hasIPC reports whether a pipe/socket list is non-empty. A corrupted list
// head is conservatively treated as present.
func (s *scanner) hasIPC(head uint64, t layout.Type) (bool, error) {
	if head == 0 {
		return false, nil
	}
	var err error
	switch t {
	case layout.TypePipe:
		_, err = layout.ReadPipe(s.rd.at(CatIPC), head, s.verifyCRC)
	case layout.TypeSocket:
		_, err = layout.ReadSocket(s.rd.at(CatIPC), head, s.verifyCRC)
	}
	s.parseTime()
	return true, err
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
