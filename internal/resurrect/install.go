package resurrect

import (
	"fmt"

	"otherworld/internal/disk"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// installOne rebuilds a single process from its scanned plan. It runs
// serially, in stable candidate order, and is the only place the crash
// kernel is mutated — so PIDs, frame allocation, FS contents and crash
// procedure effects are identical no matter how many workers scanned.
//
// Failures of memory-critical structures abort resurrection (Table 5's
// "failure to resurrect application"); failures of peripheral resources set
// bits in the missing mask and defer to the crash procedure (Table 1).
// Scan-side errors recorded in the plan reproduce exactly the serial
// engine's branching.
func (e *Engine) installOne(pl *plan) ProcReport {
	pr := ProcReport{Candidate: pl.cand}
	// The timeline recorder: each step combines the scan-side metrics for
	// the phase (bytes read from the dead kernel, read/copy time from the
	// worker's ledger) with the install-side virtual time since the
	// previous step.
	markTime := e.K.M.Clock.Now()
	step := func(ph Phase, pages int, err error) {
		sc := pl.phase[ph]
		st := PhaseStep{
			Phase:    ph,
			Pages:    pages,
			Bytes:    sc.bytes,
			Duration: sc.dur + e.K.M.Clock.Since(markTime),
		}
		if err != nil {
			st.Err = err.Error()
		}
		pr.Timeline = append(pr.Timeline, st)
		markTime = e.K.M.Clock.Now()
	}
	fail := func(ph Phase, err error) ProcReport {
		step(ph, 0, err)
		pr.Outcome = OutcomeFailed
		pr.Err = err
		return pr
	}

	if pl.parseErr != nil {
		return fail(PhaseParse, pl.parseErr)
	}
	np, err := e.K.CreateProcessForResurrection(pl.old.Name, pl.old.Program)
	if err != nil {
		return fail(PhaseParse, fmt.Errorf("create process: %w", err))
	}
	pr.NewPID = np.PID
	step(PhaseParse, 0, nil)

	// Open files first so file-backed regions can reference the new
	// records; also flush the dead kernel's dirty page-cache pages. The
	// flush goes through the disk model's write-combining queue: every
	// dirty page across every file is enqueued, then issued block-sorted
	// with adjacent pages merged into extents, one modeled seek per extent
	// (DiskBatchCost) instead of scattered per-page writes.
	fileMap := make(map[uint64]uint64)
	flushed, flushExtents := 0, 0
	fileErr := func() error {
		var wq disk.WriteQueue
		for _, fp := range pl.files {
			for _, dp := range fp.dirty {
				if qerr := wq.Enqueue(fp.rec.Path, int64(dp.off), dp.data); qerr != nil {
					// A malformed extent means the dead kernel's cache-page
					// record lied about its geometry: degrade the candidate
					// the way any corrupt file record does.
					return &layout.CorruptionError{Want: layout.TypeCachePage,
						Reason: qerr.Error()}
				}
				pr.FlushedPages = append(pr.FlushedPages,
					FlushedPage{Path: fp.rec.Path, Off: int64(dp.off)})
				flushed++
			}
		}
		extents, bytes, werr := wq.Flush(func(path string, off int64, data []byte) error {
			_, ferr := e.K.FS.WriteAt(path, off, data, true)
			return ferr
		})
		flushExtents = extents
		e.K.M.Clock.Advance(e.K.Cost().DiskBatchCost(extents, bytes))
		if werr != nil {
			return werr
		}
		for _, fp := range pl.files {
			newAddr, ierr := e.K.InstallOpenFile(np, fp.rec)
			if ierr != nil {
				return ierr
			}
			fileMap[fp.addr] = newAddr
		}
		return pl.filesErr
	}()
	if fileErr != nil {
		if layout.IsCorruption(fileErr) {
			pr.Missing |= kernel.ResFiles
			step(PhaseFileReopen, 0, fileErr) // degraded, not fatal
		} else {
			return fail(PhaseFileReopen, fmt.Errorf("restore files: %w", fileErr))
		}
	} else {
		step(PhaseFileReopen, 0, nil)
	}
	pr.DirtyFlushed = flushed
	pr.FlushExtents = flushExtents
	step(PhaseFlush, flushed, nil)

	// Memory regions and page contents — corruption here is fatal: a
	// process without its memory cannot run a crash procedure either.
	if pl.regionsErr != nil {
		return fail(PhaseRegions, fmt.Errorf("restore regions: %w", pl.regionsErr))
	}
	for _, r := range pl.regions {
		newFile := uint64(0)
		if r.Kind == layout.RegionFileMap {
			newFile = fileMap[r.File] // 0 if the file failed to reopen
		}
		if err := e.K.InstallRegion(np, r, newFile); err != nil {
			return fail(PhaseRegions, fmt.Errorf("restore regions: %w", err))
		}
	}
	step(PhaseRegions, 0, nil)

	// Install the pages the scan captured. An error is attributed to the
	// re-stage phase once swap reading had begun, matching the serial
	// engine's split of the single page walk into two timeline entries.
	copied, restaged, elided, deduped, speculated := 0, 0, 0, 0, 0
	var saved int64
	swapSeen := false
	pageErr := pl.pagesErr
	for i := range pl.pages {
		pg := &pl.pages[i]
		var ierr error
		switch {
		case pg.swapped:
			swapSeen = true
			ierr = e.K.InstallSwappedPage(np, pg.va, pg.data, pg.writable)
		case pg.mapped:
			ierr = e.K.InstallResidentPageMapped(np, pg.va, pg.frame, pg.writable, pg.dirty)
		case pg.zero:
			ierr = e.K.InstallZeroPage(np, pg.va, pg.writable, pg.dirty)
		case pg.speculated:
			// Lazy install: adopt the dead frame and map it copy-on-access;
			// the page materializes on first touch or by the background
			// sweeper (lazy.go). Classification vetted the adoption, so a
			// failure here is a real install error.
			ierr = e.K.InstallSpeculatedPage(np, pg.va, pg.frame, pg.writable, pg.dirty)
			if ierr == nil {
				e.lazy.register(np.PID, pg)
			}
		default:
			// Dedup hits pass the cache's canonical buffer here; the
			// install still fills a private frame from it, so candidates
			// never share writable memory.
			ierr = e.K.InstallResidentPage(np, pg.va, pg.data, pg.writable, pg.dirty)
		}
		if ierr != nil {
			pageErr = ierr
			break
		}
		if pg.swapped {
			restaged++
			continue
		}
		copied++
		switch {
		case pg.zero:
			elided++
			saved += pg.saved
		case pg.deduped:
			deduped++
			saved += pg.saved
		case pg.speculated:
			speculated++
		}
	}
	pr.PagesCopied, pr.PagesRestaged = copied, restaged
	pr.PagesElided, pr.PagesDeduped = elided, deduped
	pr.PagesSpeculated, pr.SavedBytes = speculated, saved
	pr.SpecFallback = pl.fallbackReason
	scPC, scSR := pl.phase[PhasePageCopy], pl.phase[PhaseSwapRestage]
	dur := scPC.dur + e.K.M.Clock.Since(markTime)
	markTime = e.K.M.Clock.Now()
	pc := PhaseStep{Phase: PhasePageCopy, Pages: copied, Bytes: scPC.bytes, Duration: dur}
	sr := PhaseStep{Phase: PhaseSwapRestage, Pages: restaged, Bytes: scSR.bytes}
	if pageErr != nil {
		werr := fmt.Errorf("restore pages: %w", pageErr)
		if pl.swapBytes > 0 || swapSeen {
			sr.Err = werr.Error()
			pr.Timeline = append(pr.Timeline, pc, sr)
		} else {
			pc.Err = werr.Error()
			pr.Timeline = append(pr.Timeline, pc)
		}
		pr.Outcome = OutcomeFailed
		pr.Err = werr
		return pr
	}
	pr.Timeline = append(pr.Timeline, pc, sr)

	// Shared memory (fatal on corruption: it is memory).
	if pl.shmErr != nil {
		return fail(PhaseShm, fmt.Errorf("restore shm: %w", pl.shmErr))
	}
	for _, sp := range pl.shm {
		if err := e.K.InstallShm(np, sp.seg, sp.contents); err != nil {
			return fail(PhaseShm, fmt.Errorf("restore shm: %w", err))
		}
	}
	step(PhaseShm, 0, nil)

	// Terminal, signals: peripheral; corruption sets missing bits. Only
	// physical terminals are restorable (Section 3.3); pseudo terminals
	// are reported through the bitmask.
	if pl.old.Terminal != 0 {
		termErr := pl.termErr
		if termErr == nil {
			termErr = e.K.InstallTerminal(np, pl.terminal, pl.screen)
		}
		if termErr != nil {
			pr.Missing |= kernel.ResTerminal
		}
		step(PhaseTerminal, 0, termErr)
	}
	if pl.old.Signals != 0 {
		// A corrupted signal table degrades to default handlers; it is
		// not worth failing the resurrection over.
		sigErr := pl.sigErr
		if sigErr == nil {
			sigErr = e.K.InstallSignals(np, pl.signals)
		}
		step(PhaseSignals, 0, sigErr)
	}

	// Pipes and sockets: the prototype reports them as missing
	// (Section 3.3); with the Section 7 extension enabled they are
	// restored — except pipes caught mid-operation, whose locked
	// semaphore marks them inconsistent.
	var ipcErr error
	if e.ResurrectIPC {
		perr := pl.pipesErr
		for _, pp := range pl.pipes {
			if perr != nil {
				break
			}
			perr = e.K.InstallPipe(np, pp.rec, pp.buf)
		}
		if perr != nil {
			pr.Missing |= kernel.ResPipes
			ipcErr = perr
		}
		serr := pl.socketsErr
		for _, sk := range pl.sockets {
			if serr != nil {
				break
			}
			serr = e.K.InstallSocket(np, sk)
		}
		if serr != nil {
			pr.Missing |= kernel.ResSockets
			if ipcErr == nil {
				ipcErr = serr
			}
		}
	} else {
		if pl.hasPipes {
			pr.Missing |= kernel.ResPipes
		}
		if pl.hasSockets {
			pr.Missing |= kernel.ResSockets
		}
	}
	step(PhaseIPC, 0, ipcErr)

	if err := e.K.InstallContext(np, pl.ctx); err != nil {
		return fail(PhaseContext, fmt.Errorf("install context: %w", err))
	}
	step(PhaseContext, 0, nil)
	if pl.lazy {
		// The process is runnable from here: its context is installed and
		// every resurrection-critical record parsed. The crash procedure
		// and policy decision below still run — and still cost virtual
		// time — but they overlap normal operation, so Run charges them to
		// the machine's schedule, not to this candidate's blocked span.
		pl.resumeClock = e.K.M.Clock.Now()
	}

	// Table 1 policy.
	pr = e.applyPolicy(np, pl.cand, pr)
	if e.lazy != nil {
		// A crash-procedure touch may have failed CRC validation and fallen
		// the candidate back mid-resume; surface the attribution here.
		if reason, ok := e.lazy.takeFallback(np.PID); ok && pr.SpecFallback == "" {
			pr.SpecFallback = reason
		}
	}
	step(PhasePolicy, 0, pr.Err)
	return pr
}
