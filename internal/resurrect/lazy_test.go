package resurrect_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/metrics"
	"otherworld/internal/phys"
	"otherworld/internal/resurrect"
)

// counterVal reads a (possibly labeled) counter out of a snapshot, treating
// an absent series as zero.
func counterVal(snap *metrics.Snapshot, name string, ls metrics.Labels) int64 {
	if p := snap.Get(name, ls); p != nil {
		return p.Value
	}
	return 0
}

// --- Satellite: saved-bytes accounting on partial tail pages ---------------

// sbProg maps a deliberately non-page-multiple region — two pages plus a
// 100-byte tail — and faults in three pages:
//
//	page 0: a dense non-zero pattern (ordinary copy);
//	page 1: all zero, fully covered by the region (elides, saves 4096);
//	page 2: all zero, but the region covers only its first 100 bytes
//	        (elides, saves 100 — the regression: the old accounting charged
//	        a frame-sized 4096 for it).
type sbProg struct{}

const (
	sbVA   = 0xA0000
	sbTail = 100
)

func (sbProg) Boot(env *kernel.Env) error {
	if err := env.MapAnon(sbVA, 2*phys.PageSize+sbTail, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	pattern := make([]byte, phys.PageSize)
	for i := range pattern {
		pattern[i] = byte(i%253) + 1
	}
	if err := env.Write(sbVA, pattern); err != nil {
		return err
	}
	// Zero writes fault the pages in without making them non-zero.
	if err := env.Write(sbVA+phys.PageSize, make([]byte, phys.PageSize)); err != nil {
		return err
	}
	return env.Write(sbVA+2*phys.PageSize, make([]byte, sbTail))
}

func (sbProg) Step(env *kernel.Env) error {
	env.Compute(10)
	return nil
}

func (sbProg) Rehydrate(env *kernel.Env) error { return nil }

func init() {
	kernel.RegisterProgram("sb-prog", func() kernel.Program { return sbProg{} })
}

// TestSavedBytesPartialTailPage is the saved-bytes regression test: elision
// of the 100-byte tail page of a non-page-multiple region must be accounted
// as 100 bytes avoided, not a frame-sized 4096. The counter, the per-process
// report and the fast-path trace event must all agree on the actual figure.
func TestSavedBytesPartialTailPage(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Start("sb", "sb-prog"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	out := recoverOutcome(t, m)
	if len(out.Report.Procs) != 1 {
		t.Fatalf("procs = %d, want 1", len(out.Report.Procs))
	}
	pr := out.Report.Procs[0]
	if pr.Outcome != resurrect.OutcomeContinued {
		t.Fatalf("outcome = %v (err %v)", pr.Outcome, pr.Err)
	}
	if pr.PagesElided != 2 {
		t.Fatalf("elided = %d, want 2 (full zero page + zero tail page)", pr.PagesElided)
	}
	const wantSaved = phys.PageSize + sbTail
	if pr.SavedBytes != wantSaved {
		t.Fatalf("SavedBytes = %d, want %d (the old page-granular accounting said %d)",
			pr.SavedBytes, wantSaved, 2*phys.PageSize)
	}
	if got := counterVal(m.MetricsSnapshot(), "resurrect_fastpath_saved_bytes_total", nil); got != wantSaved {
		t.Fatalf("resurrect_fastpath_saved_bytes_total = %d, want %d", got, wantSaved)
	}
	found := false
	for _, ev := range out.Report.ScanTrace {
		if ev.Note == "fastpath" && ev.PID == pr.Candidate.PID {
			found = true
			if ev.B != wantSaved {
				t.Fatalf("fastpath event B = %d, want %d", ev.B, wantSaved)
			}
		}
	}
	if !found {
		t.Fatal("no fastpath event in the scan trace")
	}
}

// --- Lazy install: resolution by touch and sweep ---------------------------

// lazyFPMachine is fpMachine with the demand-paged install enabled: two
// fp-prog processes, each with one zero page (elided even under lazy), one
// shared-pattern page and one boundary page (both speculated).
func lazyFPMachine(t *testing.T) (*core.Machine, *core.FailureOutcome) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 31
	opts.LazyInstall = true
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, err := m.Start("fp-a", "fp-prog"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("fp-b", "fp-prog"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	out := recoverOutcome(t, m)
	if len(out.Report.Procs) != 2 {
		t.Fatalf("resurrected %d procs, want 2", len(out.Report.Procs))
	}
	return m, out
}

// TestLazyInstallResolvesOnTouchAndSweep drives one speculated page through
// the demand-fault path and lets the background sweeper drain the rest: the
// contents must be exactly what the eager install would have produced, every
// dead frame must be released, and the trigger-labeled counters must account
// for every speculated page.
func TestLazyInstallResolvesOnTouchAndSweep(t *testing.T) {
	m, out := lazyFPMachine(t)
	total := 0
	for _, pr := range out.Report.Procs {
		if pr.Outcome != resurrect.OutcomeContinued {
			t.Fatalf("pid %d outcome = %v (err %v)", pr.Candidate.PID, pr.Outcome, pr.Err)
		}
		if pr.SpecFallback != "" {
			t.Fatalf("pid %d unexpectedly fell back: %s", pr.Candidate.PID, pr.SpecFallback)
		}
		if pr.PagesSpeculated != 2 {
			t.Fatalf("pid %d speculated %d pages, want 2 (pattern + boundary; zero page elides)",
				pr.Candidate.PID, pr.PagesSpeculated)
		}
		if pr.PagesElided != 1 {
			t.Fatalf("pid %d elided %d pages, want 1", pr.Candidate.PID, pr.PagesElided)
		}
		total += pr.PagesSpeculated
	}

	// First touch: read the shared page of the first process through the VM
	// path — this demand-faults the speculated PTE and resolves it now.
	pa := m.K.Lookup(out.Report.Procs[0].NewPID)
	if pa == nil {
		t.Fatal("first resurrected process not found")
	}
	got := make([]byte, phys.PageSize)
	if err := m.K.ReadVM(pa, fpVA, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fpSharedPattern()) {
		t.Fatal("first-touch resolution produced wrong page contents")
	}
	snap := m.MetricsSnapshot()
	if v := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "touch"}); v != 1 {
		t.Fatalf("resolved{touch} = %d, want 1", v)
	}
	if p := snap.Get("resurrect_first_touch_ns", nil); p == nil || p.Count != 1 {
		t.Fatalf("first-touch histogram = %+v, want one observation", p)
	}

	// The background sweeper drains the remainder while the programs run.
	m.Run(50)
	snap = m.MetricsSnapshot()
	touch := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "touch"})
	sweep := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "sweep"})
	if touch+sweep != int64(total) || sweep == 0 {
		t.Fatalf("resolved touch=%d sweep=%d, want touch+sweep=%d with sweep>0", touch, sweep, total)
	}
	if v := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "fallback"}); v != 0 {
		t.Fatalf("resolved{fallback} = %d, want 0", v)
	}
	if n := m.HW.Mem.CountKind(phys.FrameSpeculated); n != 0 {
		t.Fatalf("%d frames still tagged speculated after the sweep", n)
	}

	// Page-by-page: identical to what the eager install guarantees.
	zeros := make([]byte, phys.PageSize)
	for _, pr := range out.Report.Procs {
		np := m.K.Lookup(pr.NewPID)
		if np == nil {
			t.Fatalf("pid %d not found", pr.NewPID)
		}
		if err := m.K.ReadVM(np, fpVA, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fpSharedPattern()) {
			t.Fatalf("pid %d: pattern page corrupted by lazy resolution", np.PID)
		}
		if err := m.K.ReadVM(np, fpVA+phys.PageSize, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, zeros) {
			t.Fatalf("pid %d: elided page not zero-filled", np.PID)
		}
		if err := m.K.ReadVM(np, fpVA+2*phys.PageSize, got); err != nil {
			t.Fatal(err)
		}
		if want := byte(0x80 | byte(pr.Candidate.PID)); got[phys.PageSize-1] != want {
			t.Fatalf("pid %d: boundary tail = %#x, want %#x", np.PID, got[phys.PageSize-1], want)
		}
	}
}

// --- Lazy determinism and the interruption collapse ------------------------

// lazyMySQLMachine is multiMySQLMachine with the demand-paged install on.
func lazyMySQLMachine(t *testing.T, workers int) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 4242
	opts.Resurrection.Workers = workers
	opts.LazyInstall = true
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for j := 0; j < 8; j++ {
		if _, err := m.Start(fmt.Sprintf("mysqld-%d", j), apps.ProgMySQL); err != nil {
			t.Fatalf("start mysqld-%d: %v", j, err)
		}
	}
	m.Run(200)
	return m
}

// TestLazyDeterminismAcrossWorkers extends the tentpole invariant to the
// demand-paged install: the Report fingerprint, the Table 4 accounting, the
// merged scan trace and the full metrics snapshot must be bit-identical at
// Workers=1 and Workers=8 with -lazy-install. The Workers=1 fingerprint is
// golden-pinned separately from the eager one.
func TestLazyDeterminismAcrossWorkers(t *testing.T) {
	m1 := lazyMySQLMachine(t, 1)
	m8 := lazyMySQLMachine(t, 8)
	out1 := recoverOutcome(t, m1)
	out8 := recoverOutcome(t, m8)
	rep1, rep8 := out1.Report, out8.Report

	spec := 0
	for _, pr := range rep1.Procs {
		spec += pr.PagesSpeculated
	}
	if spec == 0 {
		t.Fatal("lazy install speculated nothing on the 8xMySQL scenario")
	}

	fp1, fp8 := rep1.Fingerprint(), rep8.Fingerprint()
	if fp1 != fp8 {
		t.Fatalf("lazy fingerprint differs between Workers=1 and Workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", fp1, fp8)
	}
	if !reflect.DeepEqual(rep1.Acct.ByCategory, rep8.Acct.ByCategory) {
		t.Fatalf("accounting differs:\nw1: %v\nw8: %v", rep1.Acct.ByCategory, rep8.Acct.ByCategory)
	}
	if !reflect.DeepEqual(rep1.ScanTrace, rep8.ScanTrace) {
		t.Fatalf("merged scan trace differs (%d vs %d events)", len(rep1.ScanTrace), len(rep8.ScanTrace))
	}
	if mfp1, mfp8 := m1.MetricsSnapshot().Fingerprint(), m8.MetricsSnapshot().Fingerprint(); mfp1 != mfp8 {
		t.Fatalf("metrics fingerprint differs between Workers=1 and Workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", mfp1, mfp8)
	}

	golden := filepath.Join("testdata", "fingerprint_mysql_x8_lazy.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(fp1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if fp1 != string(want) {
		t.Errorf("lazy fingerprint drifted from golden (re-run with -update if intentional):\ngot:\n%s", fp1)
	}
}

// TestLazyInterruptionCollapse is the acceptance criterion: on the warmed
// 8xMySQL scenario, resuming each process at context install collapses the
// modeled per-process interruption (Report.Duration, the sum of blocked
// spans) by at least 5x against the eager full-copy install.
func TestLazyInterruptionCollapse(t *testing.T) {
	eager := recoverOutcome(t, multiMySQLMachine(t, 1)).Report
	lazy := recoverOutcome(t, lazyMySQLMachine(t, 1)).Report
	if lazy.Duration <= 0 {
		t.Fatalf("lazy duration = %v", lazy.Duration)
	}
	if ratio := float64(eager.Duration) / float64(lazy.Duration); ratio < 5 {
		t.Fatalf("interruption collapse = %.2fx, want >= 5x (eager %v, lazy %v)",
			ratio, eager.Duration, lazy.Duration)
	}
	// Per-candidate: no lazy blocked span may exceed its eager counterpart.
	if len(eager.PerCandidate) != len(lazy.PerCandidate) {
		t.Fatalf("candidate counts differ: %d vs %d", len(eager.PerCandidate), len(lazy.PerCandidate))
	}
	for i := range eager.PerCandidate {
		if lazy.PerCandidate[i] > eager.PerCandidate[i] {
			t.Fatalf("candidate %d: lazy blocked span %v exceeds eager %v",
				i, lazy.PerCandidate[i], eager.PerCandidate[i])
		}
	}
}

// --- Corruption-fallback battery -------------------------------------------

// TestLazyValidationFallbackMatchesEager re-tags every dead user frame as
// reserved before the microreboot, so the lazy install's frame validation
// refuses every candidate. The run must degrade to exactly the eager result:
// a byte-identical Report fingerprint, zero speculated pages, and the
// refusal kept as structured attribution with install-stage accounting.
func TestLazyValidationFallbackMatchesEager(t *testing.T) {
	build := func(lazyInstall bool) *core.Machine {
		opts := core.DefaultOptions()
		opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
		opts.CrashRegionMB = 16
		opts.Seed = 31
		opts.LazyInstall = lazyInstall
		m, err := core.NewMachine(opts)
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		for _, name := range []string{"fp-a", "fp-b"} {
			if _, err := m.Start(name, "fp-prog"); err != nil {
				t.Fatal(err)
			}
		}
		m.Run(20)
		if err := m.K.InjectOops("validation fallback"); err == nil {
			t.Fatal("InjectOops returned nil")
		}
		// The trigger, applied identically to both machines: every dead user
		// frame loses its FrameUser tag, so vetSpeculation refuses to adopt.
		for f := 0; f < m.HW.Mem.NumFrames(); f++ {
			if m.HW.Mem.Kind(f) == phys.FrameUser {
				if err := m.HW.Mem.SetKind(f, phys.FrameReserved); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m
	}
	recover := func(m *core.Machine) *core.FailureOutcome {
		t.Helper()
		out, err := m.HandleFailure()
		if err != nil {
			t.Fatalf("HandleFailure: %v", err)
		}
		if out.Result != core.ResultRecovered {
			t.Fatalf("transfer failed: %s", out.Transfer.Reason)
		}
		return out
	}
	eagerOut := recover(build(false))
	mLazy := build(true)
	lazyOut := recover(mLazy)

	for _, pr := range lazyOut.Report.Procs {
		if pr.PagesSpeculated != 0 {
			t.Fatalf("pid %d speculated %d pages despite the refused validation", pr.Candidate.PID, pr.PagesSpeculated)
		}
		if !strings.HasPrefix(pr.SpecFallback, "frame-validation:") {
			t.Fatalf("pid %d SpecFallback = %q, want a frame-validation attribution", pr.Candidate.PID, pr.SpecFallback)
		}
	}
	if got, want := lazyOut.Report.Fingerprint(), eagerOut.Report.Fingerprint(); got != want {
		t.Fatalf("all-fallback lazy run does not fingerprint like the eager run:\n--- eager ---\n%s\n--- lazy ---\n%s", want, got)
	}
	snap := mLazy.MetricsSnapshot()
	if v := counterVal(snap, "resurrect_spec_fallbacks_total", metrics.Labels{"stage": "install"}); v != 2 {
		t.Fatalf("spec_fallbacks{install} = %d, want 2", v)
	}
	if v := counterVal(snap, "resurrect_pages_speculated_total", nil); v != 0 {
		t.Fatalf("pages_speculated_total = %d, want 0", v)
	}
}

// specCorrupt wires the mid-resume corruption crash procedure to the test:
// the procedure runs inside the install phase, smashes every speculated
// frame through raw physical memory, then touches its own page — the CRC
// check must catch the corruption on that first touch and fall the whole
// candidate back to the shadow copies.
var specCorrupt struct {
	m    *core.Machine
	fill byte // frame contents after corruption (0xAB, or 0 for the all-zero case)
	read uint64
}

// scProg keeps one recognizable non-zero page that the lazy install will
// speculate and the crash procedure will read back mid-resume.
type scProg struct{}

const (
	scVA    = 0xB0000
	scValue = 0xDEADBEEFCAFE
)

func (scProg) Boot(env *kernel.Env) error {
	if err := env.MapAnon(scVA, phys.PageSize, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	return env.WriteU64(scVA, scValue)
}

func (scProg) Step(env *kernel.Env) error {
	env.Compute(10)
	return nil
}

func (scProg) Rehydrate(env *kernel.Env) error { return nil }

func corruptingCrashProc(env *kernel.Env, missing kernel.ResourceMask) (kernel.CrashAction, error) {
	mem := specCorrupt.m.HW.Mem
	junk := bytes.Repeat([]byte{specCorrupt.fill}, phys.PageSize)
	for f := 0; f < mem.NumFrames(); f++ {
		if mem.Kind(f) == phys.FrameSpeculated {
			if err := mem.WriteAt(phys.FrameAddr(f), junk); err != nil {
				return 0, err
			}
		}
	}
	v, err := env.ReadU64(scVA)
	if err != nil {
		return 0, err
	}
	specCorrupt.read = v
	return kernel.ActionContinue, nil
}

func init() {
	kernel.RegisterProgram("sc-prog", func() kernel.Program { return scProg{} })
	kernel.RegisterCrashProc("sc-corruptor", corruptingCrashProc)
}

// TestLazyMidResumeCRCFallback corrupts a speculated frame while the install
// phase is still running (from inside the crash procedure) and touches it:
// validation must fail deterministically, the candidate must fall back to
// its shadow copy — so the crash procedure still reads the pre-crash value —
// and the attribution must land in ProcReport.SpecFallback with
// install-stage metrics. The all-zero variant pins the case where the frame
// is wiped rather than scribbled on.
func TestLazyMidResumeCRCFallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		fill byte
	}{
		{"scribbled", 0xAB},
		{"zeroed", 0x00},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
			opts.CrashRegionMB = 16
			opts.Seed = 31
			opts.LazyInstall = true
			m, err := core.NewMachine(opts)
			if err != nil {
				t.Fatalf("NewMachine: %v", err)
			}
			p, err := m.Start("sc", "sc-prog")
			if err != nil {
				t.Fatal(err)
			}
			if err := m.K.RegisterCrashProcedure(p, "sc-corruptor"); err != nil {
				t.Fatal(err)
			}
			m.Run(20)
			specCorrupt.m, specCorrupt.fill, specCorrupt.read = m, tc.fill, 0
			out := recoverOutcome(t, m)
			if len(out.Report.Procs) != 1 {
				t.Fatalf("procs = %d", len(out.Report.Procs))
			}
			pr := out.Report.Procs[0]
			if pr.Outcome != resurrect.OutcomeContinued || !pr.CrashProcCalled {
				t.Fatalf("outcome %v called=%v err=%v", pr.Outcome, pr.CrashProcCalled, pr.Err)
			}
			if pr.PagesSpeculated != 1 {
				t.Fatalf("speculated = %d, want 1", pr.PagesSpeculated)
			}
			if !strings.HasPrefix(pr.SpecFallback, "crc:") {
				t.Fatalf("SpecFallback = %q, want a crc attribution", pr.SpecFallback)
			}
			// The shadow copy saved the touch: the crash procedure read the
			// pre-crash value even though the frame under it was destroyed.
			if specCorrupt.read != scValue {
				t.Fatalf("crash procedure read %#x, want %#x", specCorrupt.read, uint64(scValue))
			}
			snap := m.MetricsSnapshot()
			if v := counterVal(snap, "resurrect_spec_fallbacks_total", metrics.Labels{"stage": "install"}); v != 1 {
				t.Fatalf("spec_fallbacks{install} = %d, want 1", v)
			}
			if v := counterVal(snap, "resurrect_spec_fallbacks_total", metrics.Labels{"stage": "runtime"}); v != 0 {
				t.Fatalf("spec_fallbacks{runtime} = %d, want 0", v)
			}
			if v := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "fallback"}); v != 1 {
				t.Fatalf("resolved{fallback} = %d, want 1", v)
			}
			if v := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "touch"}); v != 0 {
				t.Fatalf("resolved{touch} = %d, want 0 (the touch fell back, it did not resolve)", v)
			}
		})
	}
}

// TestLazyPostResumeCRCFallback corrupts the speculated frames after the
// processes have already resumed: the background sweeper's validation must
// catch it, install the shadow copies, and attribute the fallback at runtime
// — and the programs must never observe the corrupted bytes.
func TestLazyPostResumeCRCFallback(t *testing.T) {
	m, out := lazyFPMachine(t)
	junk := bytes.Repeat([]byte{0xEE}, phys.PageSize)
	corrupted := 0
	for f := 0; f < m.HW.Mem.NumFrames(); f++ {
		if m.HW.Mem.Kind(f) == phys.FrameSpeculated {
			if err := m.HW.Mem.WriteAt(phys.FrameAddr(f), junk); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted != 4 {
		t.Fatalf("corrupted %d speculated frames, want 4 (2 per process)", corrupted)
	}
	m.Run(50)
	snap := m.MetricsSnapshot()
	if v := counterVal(snap, "resurrect_spec_fallbacks_total", metrics.Labels{"stage": "runtime"}); v != 2 {
		t.Fatalf("spec_fallbacks{runtime} = %d, want 2 (one per process)", v)
	}
	if v := counterVal(snap, "resurrect_spec_resolved_total", metrics.Labels{"trigger": "fallback"}); v != 4 {
		t.Fatalf("resolved{fallback} = %d, want 4", v)
	}
	if n := m.HW.Mem.CountKind(phys.FrameSpeculated); n != 0 {
		t.Fatalf("%d frames still speculated after the fallback", n)
	}
	// The shadow copies carried the day: contents identical to the eager
	// install's guarantees, corruption never surfaced.
	got := make([]byte, phys.PageSize)
	for _, pr := range out.Report.Procs {
		np := m.K.Lookup(pr.NewPID)
		if np == nil {
			t.Fatalf("pid %d not found", pr.NewPID)
		}
		if err := m.K.ReadVM(np, fpVA, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fpSharedPattern()) {
			t.Fatalf("pid %d: corruption leaked into the pattern page", np.PID)
		}
		if err := m.K.ReadVM(np, fpVA+2*phys.PageSize, got); err != nil {
			t.Fatal(err)
		}
		if want := byte(0x80 | byte(pr.Candidate.PID)); got[phys.PageSize-1] != want {
			t.Fatalf("pid %d: boundary tail = %#x, want %#x", np.PID, got[phys.PageSize-1], want)
		}
	}
}
