package resurrect_test

import (
	"strings"
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/resurrect"
)

// Test programs covering the Table 1 quadrants.

// plainProg uses only resurrectable resources (anonymous memory).
type plainProg struct{}

const plainVA = 0x40000

func (plainProg) Boot(env *kernel.Env) error {
	if err := env.MapAnon(plainVA, 4096, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	return env.WriteU64(plainVA, 0)
}

func (plainProg) Step(env *kernel.Env) error {
	v, err := env.ReadU64(plainVA)
	if err != nil {
		return err
	}
	return env.WriteU64(plainVA, v+1)
}

func (plainProg) Rehydrate(env *kernel.Env) error { return nil }

// sockProg additionally holds a socket — an unresurrectable resource.
type sockProg struct{ plainProg }

func (s sockProg) Boot(env *kernel.Env) error {
	if err := s.plainProg.Boot(env); err != nil {
		return err
	}
	return env.SockOpen(1, layout.ProtoTCP, 9999)
}

// crashProcState records what the registered crash procedures observed.
var crashProcState struct {
	called  int
	missing kernel.ResourceMask
	action  kernel.CrashAction
}

func trackingCrashProc(env *kernel.Env, missing kernel.ResourceMask) (kernel.CrashAction, error) {
	crashProcState.called++
	crashProcState.missing = missing
	return crashProcState.action, nil
}

func init() {
	kernel.RegisterProgram("t1-plain", func() kernel.Program { return plainProg{} })
	kernel.RegisterProgram("t1-plain-cp", func() kernel.Program { return plainProg{} })
	kernel.RegisterProgram("t1-sock", func() kernel.Program { return sockProg{} })
	kernel.RegisterProgram("t1-sock-cp", func() kernel.Program { return sockProg{} })
	kernel.RegisterCrashProc("t1-tracker", trackingCrashProc)
}

func newMachine(t *testing.T) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 31
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

// crashAndRecover panics the kernel and runs the microreboot, returning the
// single process's report.
func crashAndRecover(t *testing.T, m *core.Machine) resurrect.ProcReport {
	t.Helper()
	if err := m.K.InjectOops("test"); err == nil {
		t.Fatal("InjectOops returned nil")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("transfer failed: %s", out.Transfer.Reason)
	}
	if len(out.Report.Procs) != 1 {
		t.Fatalf("reports = %d", len(out.Report.Procs))
	}
	return out.Report.Procs[0]
}

// --- Table 1, quadrant by quadrant ----------------------------------------

func TestTable1_AllResources_NoCrashProc_Continues(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Start("p", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeContinued || pr.CrashProcCalled {
		t.Fatalf("outcome %v called=%v", pr.Outcome, pr.CrashProcCalled)
	}
	if pr.Missing != 0 {
		t.Fatalf("missing = %v", pr.Missing)
	}
}

func TestTable1_AllResources_CrashProc_MayContinue(t *testing.T) {
	m := newMachine(t)
	p, err := m.Start("p", "t1-plain-cp")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.RegisterCrashProcedure(p, "t1-tracker"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	crashProcState = struct {
		called  int
		missing kernel.ResourceMask
		action  kernel.CrashAction
	}{action: kernel.ActionContinue}
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeContinued || !pr.CrashProcCalled {
		t.Fatalf("outcome %v called=%v err=%v", pr.Outcome, pr.CrashProcCalled, pr.Err)
	}
	if crashProcState.called != 1 || crashProcState.missing != 0 {
		t.Fatalf("crash proc saw called=%d missing=%v", crashProcState.called, crashProcState.missing)
	}
}

func TestTable1_AllResources_CrashProc_MayRestart(t *testing.T) {
	m := newMachine(t)
	p, _ := m.Start("p", "t1-plain-cp")
	_ = m.K.RegisterCrashProcedure(p, "t1-tracker")
	m.Run(20)
	crashProcState.action = kernel.ActionRestart
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeRestarted {
		t.Fatalf("outcome %v err=%v", pr.Outcome, pr.Err)
	}
	np := m.K.Lookup(pr.NewPID)
	if np == nil || np.Resurrected != 0 {
		t.Fatal("restart should yield a fresh process")
	}
}

func TestTable1_MissingResources_NoCrashProc_Fails(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Start("p", "t1-sock"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeFailed {
		t.Fatalf("outcome %v", pr.Outcome)
	}
	if pr.Missing&kernel.ResSockets == 0 {
		t.Fatalf("missing = %v", pr.Missing)
	}
	if pr.Err == nil || !strings.Contains(pr.Err.Error(), "no crash procedure") {
		t.Fatalf("err = %v", pr.Err)
	}
}

func TestTable1_MissingResources_CrashProc_SeesBitmask(t *testing.T) {
	m := newMachine(t)
	p, _ := m.Start("p", "t1-sock-cp")
	_ = m.K.RegisterCrashProcedure(p, "t1-tracker")
	m.Run(20)
	crashProcState = struct {
		called  int
		missing kernel.ResourceMask
		action  kernel.CrashAction
	}{action: kernel.ActionRestart}
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeRestarted {
		t.Fatalf("outcome %v err=%v", pr.Outcome, pr.Err)
	}
	if crashProcState.missing&kernel.ResSockets == 0 {
		t.Fatalf("crash proc saw missing=%v, want sockets bit", crashProcState.missing)
	}
}

func TestTable1_CrashProcGivesUp(t *testing.T) {
	m := newMachine(t)
	p, _ := m.Start("p", "t1-plain-cp")
	_ = m.K.RegisterCrashProcedure(p, "t1-tracker")
	m.Run(20)
	crashProcState.action = kernel.ActionGiveUp
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeGaveUp {
		t.Fatalf("outcome %v", pr.Outcome)
	}
	if len(m.K.Procs()) != 0 {
		t.Fatal("abandoned process should not be running")
	}
}

// --- Corruption and selection ----------------------------------------------

func TestResurrectionFailsOnCorruptDescriptor(t *testing.T) {
	m := newMachine(t)
	p, _ := m.Start("p", "t1-plain")
	m.Run(20)
	// Smash the descriptor record's payload in main-kernel memory.
	if err := m.HW.Mem.WriteAt(p.Addr+10, []byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := m.K.InjectOops("x"); err == nil {
		t.Fatal("no panic")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("transfer failed: %s", out.Transfer.Reason)
	}
	// The corrupted descriptor heads the process list, so the walk finds
	// nothing resurrectable.
	if out.Report.Succeeded() != 0 {
		t.Fatal("corrupt descriptor should not resurrect")
	}
}

func TestResurrectionFailsOnCorruptPageDirectory(t *testing.T) {
	m := newMachine(t)
	p, _ := m.Start("p", "t1-plain")
	m.Run(20)
	// Point a directory entry at a non-aligned garbage address.
	if err := m.HW.Mem.WriteU64(p.D.PageDir, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("transfer failed: %s", out.Transfer.Reason)
	}
	pr := out.Report.Procs[0]
	if pr.Outcome != resurrect.OutcomeFailed {
		t.Fatalf("outcome %v", pr.Outcome)
	}
}

func TestResurrectionConfigSelectsByName(t *testing.T) {
	m := newMachine(t)
	_ = m // the default machine resurrects everything; build one with names
	m2opts := core.DefaultOptions()
	m2opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	m2opts.CrashRegionMB = 16
	m2opts.Seed = 32
	m2opts.Resurrection = resurrect.Config{Names: []string{"keep"}}
	m2, err := core.NewMachine(m2opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Start("keep", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Start("drop", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	m2.Run(20)
	_ = m2.K.InjectOops("x")
	out, err := m2.HandleFailure()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Report.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(out.Report.Candidates))
	}
	if len(out.Report.Procs) != 1 || out.Report.Procs[0].Candidate.Name != "keep" {
		t.Fatalf("resurrected %v", out.Report.Procs)
	}
	// Only "keep" runs under the new kernel; "drop" was not resurrected.
	if got := len(m2.K.Procs()); got != 1 {
		t.Fatalf("live procs = %d", got)
	}
}

func TestAccountingCountsKernelData(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Start("p", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	m.Run(40)
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatal(err)
	}
	acct := out.Report.Acct
	if acct.KernelDataBytes() <= 0 {
		t.Fatal("no kernel data counted")
	}
	frac := acct.PageTableFraction()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("page-table fraction = %v", frac)
	}
	if acct.ByCategory[resurrect.CatProc] == 0 || acct.ByCategory[resurrect.CatContext] == 0 {
		t.Fatalf("categories missing: %+v", acct.ByCategory)
	}
}

func TestZombiesNotListedAsCandidates(t *testing.T) {
	m := newMachine(t)
	p1, _ := m.Start("alive", "t1-plain")
	p2, _ := m.Start("dead", "t1-plain")
	_ = p1
	m.Run(10)
	if err := m.K.Exit(p2, 0); err != nil {
		t.Fatal(err)
	}
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Report.Candidates) != 1 || out.Report.Candidates[0].Name != "alive" {
		t.Fatalf("candidates = %v", out.Report.Candidates)
	}
}
