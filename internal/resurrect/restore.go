package resurrect

import (
	"fmt"

	"otherworld/internal/disk"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// restoreFiles walks the dead process's open-file list, flushes its dirty
// page-cache pages to disk (Section 3.3's last resurrection step for files)
// and reopens each file at the recorded offset into the same fd slot. It
// returns a map from old FileRec addresses to new ones for region
// back-references.
func (e *Engine) restoreFiles(np *kernel.Process, old *layout.Proc) (map[uint64]uint64, int, error) {
	fileMap := make(map[uint64]uint64)
	flushed := 0
	cur := old.Files
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return fileMap, flushed, &layout.CorruptionError{Addr: cur, Want: layout.TypeFile, Reason: "fd list loop"}
		}
		rec, err := layout.ReadFileRec(e.rd.at(CatFile), cur, e.VerifyCRC)
		if err != nil {
			return fileMap, flushed, err
		}
		e.parseTime()

		n, err := e.flushDeadDirtyPages(rec)
		if err != nil {
			return fileMap, flushed, err
		}
		flushed += n

		newAddr, err := e.K.InstallOpenFile(np, rec)
		if err != nil {
			return fileMap, flushed, err
		}
		fileMap[cur] = newAddr
		cur = rec.Next
	}
	return fileMap, flushed, nil
}

// flushDeadDirtyPages writes the dead kernel's dirty page-cache pages for
// one file out to disk, preserving buffered writes that had not reached the
// disk when the kernel failed.
func (e *Engine) flushDeadDirtyPages(rec *layout.FileRec) (int, error) {
	flushed := 0
	cur := rec.CachePages
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return flushed, &layout.CorruptionError{Addr: cur, Want: layout.TypeCachePage, Reason: "page cache loop"}
		}
		cp, err := layout.ReadCachePage(e.rd.at(CatCache), cur, e.VerifyCRC)
		if err != nil {
			return flushed, err
		}
		e.parseTime()
		if cp.Dirty && cp.Bytes > 0 && cp.Bytes <= phys.PageSize {
			buf := make([]byte, cp.Bytes)
			if err := e.rd.at(CatUserData).ReadAt(cp.Frame*phys.PageSize, buf); err != nil {
				return flushed, &layout.CorruptionError{Addr: cur, Want: layout.TypeCachePage, Reason: "cache frame unreadable"}
			}
			if _, err := e.K.FS.WriteAt(rec.Path, int64(cp.FileOff), buf, true); err != nil {
				return flushed, err
			}
			e.K.M.Clock.Advance(e.K.Cost().DiskWriteCost(int64(cp.Bytes)))
			flushed++
		}
		cur = cp.Next
	}
	return flushed, nil
}

// restoreRegions recreates the dead process's memory-region descriptors,
// rewriting file back-references to the new kernel's records.
func (e *Engine) restoreRegions(np *kernel.Process, old *layout.Proc, fileMap map[uint64]uint64) error {
	cur := old.MemRegions
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return &layout.CorruptionError{Addr: cur, Want: layout.TypeMemRegion, Reason: "region list loop"}
		}
		r, err := layout.ReadMemRegion(e.rd.at(CatRegion), cur, e.VerifyCRC)
		if err != nil {
			return err
		}
		e.parseTime()
		newFile := uint64(0)
		if r.Kind == layout.RegionFileMap {
			newFile = fileMap[r.File] // 0 if the file failed to reopen
		}
		if err := e.K.InstallRegion(np, r, newFile); err != nil {
			return err
		}
		cur = r.Next
	}
	return nil
}

// restorePages walks the dead process's hardware page tables and transfers
// every touched page: resident pages are copied into fresh frames; swapped
// pages are read raw from the dead kernel's swap partition and re-staged
// onto the crash kernel's own partition (Section 3.2). Page-directory and
// page-table pages are read whole, which is why they dominate Table 4.
func (e *Engine) restorePages(np *kernel.Process, old *layout.Proc, mainSwapName string) (copied, restaged int, err error) {
	var mainSwap *disk.BlockDevice
	if mainSwapName != "" {
		if dev, derr := e.K.M.Bus.Open(mainSwapName); derr == nil {
			mainSwap = dev
		}
	}

	if old.PageDir%phys.PageSize != 0 || old.PageDir >= uint64(e.K.M.Mem.Size()) {
		return 0, 0, fmt.Errorf("page directory address %#x implausible", old.PageDir)
	}
	dirPage := make([]byte, phys.PageSize)
	if err := e.rd.at(CatPageTable).ReadAt(old.PageDir, dirPage); err != nil {
		return 0, 0, fmt.Errorf("page directory unreadable: %v", err)
	}

	ptPage := make([]byte, phys.PageSize)
	pageBuf := make([]byte, phys.PageSize)
	for dir := 0; dir < layout.DirEntries; dir++ {
		dirEnt := leU64(dirPage[dir*8:])
		if dirEnt == 0 {
			continue
		}
		if dirEnt%phys.PageSize != 0 || dirEnt >= uint64(e.K.M.Mem.Size()) {
			return copied, restaged, fmt.Errorf("page directory entry %d (%#x) corrupt", dir, dirEnt)
		}
		if err := e.rd.at(CatPageTable).ReadAt(dirEnt, ptPage); err != nil {
			return copied, restaged, fmt.Errorf("page table unreadable: %v", err)
		}
		for t := 0; t < layout.PTEsPerPage; t++ {
			pte := layout.PTE(leU64(ptPage[t*8:]))
			if pte == 0 {
				continue
			}
			va := layout.VirtJoin(dir, t, 0)
			switch {
			case pte.Present():
				frame := pte.Frame()
				if frame >= e.K.M.Mem.NumFrames() {
					return copied, restaged, fmt.Errorf("PTE for %#x references frame %d beyond memory", va, frame)
				}
				if e.MapPages {
					// Footnote-3 fast path: adopt the frame in place.
					if err := e.K.InstallResidentPageMapped(np, va, frame, pte.Writable(), pte.Dirty()); err != nil {
						return copied, restaged, err
					}
					e.K.M.Clock.Advance(e.K.Cost().RecordParseOverhead)
				} else {
					if err := e.rd.at(CatUserData).ReadAt(phys.FrameAddr(frame), pageBuf); err != nil {
						return copied, restaged, err
					}
					if err := e.K.InstallResidentPage(np, va, pageBuf, pte.Writable(), pte.Dirty()); err != nil {
						return copied, restaged, err
					}
					e.K.M.Clock.Advance(e.K.Cost().CopyCost(phys.PageSize))
				}
				copied++
			case pte.Swapped():
				if mainSwap == nil {
					return copied, restaged, fmt.Errorf("swapped PTE for %#x but main swap partition unavailable", va)
				}
				data, derr := disk.ReadRaw(mainSwap, pte.SwapSlot())
				if derr != nil {
					return copied, restaged, fmt.Errorf("swap slot %d: %v", pte.SwapSlot(), derr)
				}
				e.acct.ByCategory[CatSwapData] += int64(len(data))
				if err := e.K.InstallSwappedPage(np, va, data, pte.Writable()); err != nil {
					return copied, restaged, err
				}
				e.K.M.Clock.Advance(e.K.Cost().SwapRestageCost(phys.PageSize))
				restaged++
			}
		}
	}
	return copied, restaged, nil
}

// restoreShm copies each shared-memory segment's pages into a new segment
// attached at the original address.
func (e *Engine) restoreShm(np *kernel.Process, old *layout.Proc) error {
	cur := old.Shm
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return &layout.CorruptionError{Addr: cur, Want: layout.TypeShm, Reason: "shm list loop"}
		}
		seg, err := layout.ReadShm(e.rd.at(CatShm), cur, e.VerifyCRC)
		if err != nil {
			return err
		}
		e.parseTime()
		contents := make([]byte, seg.Size)
		for i, f := range seg.Frames {
			if f >= uint64(e.K.M.Mem.NumFrames()) {
				return fmt.Errorf("shm frame %d beyond memory", f)
			}
			off := i * phys.PageSize
			n := phys.PageSize
			if off+n > len(contents) {
				n = len(contents) - off
			}
			if n <= 0 {
				break
			}
			buf := make([]byte, n)
			if err := e.rd.at(CatUserData).ReadAt(f*phys.PageSize, buf); err != nil {
				return err
			}
			copy(contents[off:], buf)
		}
		if err := e.K.InstallShm(np, seg, contents); err != nil {
			return err
		}
		e.K.M.Clock.Advance(e.K.Cost().CopyCost(int64(len(contents))))
		cur = seg.Next
	}
	return nil
}

// restoreTerminal rebuilds the process's physical terminal from the dead
// kernel's record and screen buffer. Pseudo terminals are refused — the
// prototype "can only restore the state of physical terminals".
func (e *Engine) restoreTerminal(np *kernel.Process, old *layout.Proc) error {
	rec, err := layout.ReadTerminal(e.rd.at(CatTerminal), old.Terminal, e.VerifyCRC)
	if err != nil {
		return err
	}
	e.parseTime()
	if rec.Settings&kernel.TermPseudo != 0 {
		return fmt.Errorf("pseudo terminal %d is not resurrectable", rec.Index)
	}
	screen := make([]byte, int(rec.Rows)*int(rec.Cols))
	if err := e.rd.at(CatTerminal).ReadAt(rec.Screen, screen); err != nil {
		return err
	}
	return e.K.InstallTerminal(np, rec, screen)
}

// restoreSignals rebuilds the signal-handler table.
func (e *Engine) restoreSignals(np *kernel.Process, old *layout.Proc) error {
	tbl, err := layout.ReadSignals(e.rd.at(CatSignals), old.Signals, e.VerifyCRC)
	if err != nil {
		return err
	}
	e.parseTime()
	return e.K.InstallSignals(np, tbl)
}

// restorePipes rebuilds the process's pipes (Section 7 extension). A
// locked pipe aborts the pass: its state is inconsistent by the paper's
// Section 3.3 argument.
func (e *Engine) restorePipes(np *kernel.Process, old *layout.Proc) error {
	cur := old.Pipes
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return &layout.CorruptionError{Addr: cur, Want: layout.TypePipe, Reason: "pipe list loop"}
		}
		rec, err := layout.ReadPipe(e.rd.at(CatIPC), cur, e.VerifyCRC)
		if err != nil {
			return err
		}
		e.parseTime()
		buf := make([]byte, phys.PageSize)
		if rec.Buf+phys.PageSize <= uint64(e.K.M.Mem.Size()) {
			if err := e.rd.at(CatUserData).ReadAt(rec.Buf, buf); err != nil {
				return err
			}
		}
		if err := e.K.InstallPipe(np, rec, buf); err != nil {
			return err
		}
		cur = rec.Next
	}
	return nil
}

// restoreSockets rebinds the process's sockets with their recorded
// connection parameters (Section 7 extension).
func (e *Engine) restoreSockets(np *kernel.Process, old *layout.Proc) error {
	cur := old.Sockets
	for hops := 0; cur != 0; hops++ {
		if hops > 4096 {
			return &layout.CorruptionError{Addr: cur, Want: layout.TypeSocket, Reason: "socket list loop"}
		}
		rec, err := layout.ReadSocket(e.rd.at(CatIPC), cur, e.VerifyCRC)
		if err != nil {
			return err
		}
		e.parseTime()
		if err := e.K.InstallSocket(np, rec); err != nil {
			return err
		}
		cur = rec.Next
	}
	return nil
}

// hasIPC reports whether a pipe/socket list is non-empty. A corrupted list
// head is conservatively treated as present.
func (e *Engine) hasIPC(head uint64, t layout.Type) (bool, error) {
	if head == 0 {
		return false, nil
	}
	var err error
	switch t {
	case layout.TypePipe:
		_, err = layout.ReadPipe(e.rd.at(CatIPC), head, e.VerifyCRC)
	case layout.TypeSocket:
		_, err = layout.ReadSocket(e.rd.at(CatIPC), head, e.VerifyCRC)
	}
	e.parseTime()
	return true, err
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
