package resurrect

import (
	"bytes"
	"time"

	"otherworld/internal/phys"
	"otherworld/internal/trace"
)

// The install-phase memory fast path, run as a serial classification pass
// between the parallel scan and the serial install:
//
//   - all-zero pages are elided: instead of copying 4 KB out of the dead
//     kernel, the install maps a freshly zero-filled frame
//     (kernel.InstallZeroPage) and pays ZeroFillCost;
//   - identical page contents shared across candidates (shared libraries,
//     COW children — the 8×MySQL workload is dominated by these) are
//     deduplicated through a content-hash cache: the first occurrence pays
//     the full CopyCost and becomes the canonical copy, every later hit
//     pays only DedupHitCost. Installs still fill *private* frames from
//     the canonical copy, so a page mutated by one resurrected process can
//     never leak into another candidate's address space.
//
// Classification is serial and in stable candidate order, so which page is
// canonical — and therefore every charged duration, counter and trace
// event — is a pure function of the candidate set, never of the scan
// pool's width or timing. The scan defers the resident-copy bandwidth
// charge to this pass (see scanPages); byte *accounting* is unchanged,
// since the scan still reads every frame to classify it.

// pageHash is FNV-1a over the page contents: fast, deterministic and good
// enough to make collisions (which are then caught by bytes.Equal and
// treated as ordinary copies) a non-event.
func pageHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// classifyPlans mutates each plan's resident pages in place — marking
// zero-elided and deduplicated pages, re-pointing dedup hits at the
// canonical buffer — and charges the deferred page-copy time to the plan's
// PhasePageCopy duration and scanDur. It returns one fast-path trace event
// per classified candidate (Seq is candidate-local logical time, so the
// merged trace is identical at any scan-pool width).
func (e *Engine) classifyPlans(plans []*plan) []trace.Event {
	cost := e.K.Cost()
	cache := make(map[uint64][]byte)
	var events []trace.Event
	for _, pl := range plans {
		examined, elided, deduped := 0, 0, 0
		var dur time.Duration
		for idx := range pl.pages {
			pg := &pl.pages[idx]
			if pg.swapped || pg.mapped || pg.data == nil {
				continue
			}
			examined++
			if phys.PageIsZero(pg.data) {
				pg.zero = true
				pg.data = nil
				elided++
				dur += cost.ZeroFillCost
				continue
			}
			h := pageHash(pg.data)
			if canon, ok := cache[h]; ok {
				if bytes.Equal(canon, pg.data) {
					pg.data = canon
					pg.deduped = true
					deduped++
					dur += cost.DedupHitCost
					continue
				}
				// Hash collision: treat as an ordinary copy; the first
				// occupant keeps the cache slot.
				dur += cost.CopyCost(int64(len(pg.data)))
				continue
			}
			cache[h] = pg.data
			dur += cost.CopyCost(int64(len(pg.data)))
		}
		if examined == 0 {
			continue
		}
		ps := pl.phase[PhasePageCopy]
		ps.dur += dur
		pl.phase[PhasePageCopy] = ps
		pl.scanDur += dur
		events = append(events, trace.Event{
			Seq:  uint64(pl.scanDur),
			Kind: trace.KindResurrect,
			PID:  pl.cand.PID,
			PC:   uint64(pl.scanDur),
			A:    uint64(PhasePageCopy),
			B:    uint64(elided+deduped) * phys.PageSize,
			Note: "fastpath",
		})
	}
	return events
}
