package resurrect

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"time"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/sim"
	"otherworld/internal/trace"
)

// The install-phase memory fast path, run as a serial classification pass
// between the parallel scan and the serial install:
//
//   - all-zero pages are elided: instead of copying 4 KB out of the dead
//     kernel, the install maps a freshly zero-filled frame
//     (kernel.InstallZeroPage) and pays ZeroFillCost;
//   - identical page contents shared across candidates (shared libraries,
//     COW children — the 8×MySQL workload is dominated by these) are
//     deduplicated through a content-hash cache: the first occurrence pays
//     the full CopyCost and becomes the canonical copy, every later hit
//     pays only DedupHitCost. Installs still fill *private* frames from
//     the canonical copy, so a page mutated by one resurrected process can
//     never leak into another candidate's address space.
//
// With the lazy install enabled (Engine.LazyInstall) the pass additionally
// decides, per candidate, whether the demand-paged path is safe: a read-only
// validation checks that every frame the candidate would speculate is an
// adoptable dead user frame no other speculation has claimed. Candidates
// that pass keep their non-zero resident pages speculated — mapped
// copy-on-access, CRC-stamped here so the first touch can validate the
// frame — while candidates that fail fall back to the eager classification
// above, with the refusal recorded as structured attribution
// (plan.fallbackReason → ProcReport.SpecFallback).
//
// Classification is serial and in stable candidate order, so which page is
// canonical, which frame is speculated — and therefore every charged
// duration, counter and trace event — is a pure function of the candidate
// set, never of the scan pool's width or timing. The scan defers the
// resident-copy bandwidth charge to this pass (see scanPages); byte
// *accounting* is unchanged, since the scan still reads every frame to
// classify it.

// pageHash is FNV-1a over the page contents: fast, deterministic and good
// enough to make collisions (which are then caught by bytes.Equal and
// treated as ordinary copies) a non-event.
func pageHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// pageLiveBytes returns how many bytes of the page at va the candidate's
// regions actually cover — the real copy volume a zero elision or dedup hit
// avoids. An elided tail page of a non-page-multiple region saves only the
// region's live tail, not a frame-sized 4 KB. A page outside every region
// conservatively counts the full page: its copy really moves 4 KB.
func pageLiveBytes(regions []*layout.MemRegion, va uint64) int64 {
	end := va
	for _, r := range regions {
		if va >= r.Start && va < r.End && r.End > end {
			end = r.End
		}
	}
	if end == va {
		return pageBytes
	}
	if limit := va + phys.PageSize; end > limit {
		end = limit
	}
	return int64(end - va)
}

// classifyPlans mutates each plan's resident pages in place — marking
// zero-elided, deduplicated or (lazy install) speculated pages — and charges
// the deferred page-copy time to the plan's PhasePageCopy duration and
// scanDur. It returns one trace event per classified candidate (Seq is
// candidate-local logical time, so the merged trace is identical at any
// scan-pool width): "fastpath" for eager candidates, "speculate" for lazy
// ones.
func (e *Engine) classifyPlans(plans []*plan) []trace.Event {
	ctx := e.newClassifyCtx()
	var events []trace.Event
	for _, pl := range plans {
		if ev := e.classifyPlan(pl, ctx); ev != nil {
			events = append(events, *ev)
		}
	}
	return events
}

// classifyCtx is the cross-candidate classification state: the dedup
// cache's canonical copies and the dead frames already promised to an
// earlier candidate's speculation (two page tables referencing one frame
// — COW sharing — cannot both adopt it, so the later candidate falls
// back). The streaming pass shares one ctx across its pipelined commits,
// which run in strict admission order, so which copy is canonical stays a
// pure function of the admission sequence at any worker width.
type classifyCtx struct {
	cost     sim.CostModel
	cache    map[uint64][]byte
	proposed map[int]bool
}

func (e *Engine) newClassifyCtx() *classifyCtx {
	return &classifyCtx{
		cost:     e.K.Cost(),
		cache:    make(map[uint64][]byte),
		proposed: make(map[int]bool),
	}
}

// classifyPlan classifies one plan against the shared context; see
// classifyPlans for the batch loop and the streaming commit for the
// per-candidate pipelined call site.
func (e *Engine) classifyPlan(pl *plan, ctx *classifyCtx) *trace.Event {
	if e.LazyInstall {
		if reason := e.vetSpeculation(pl, ctx.proposed); reason == "" {
			pl.lazy = true
		} else {
			pl.fallbackReason = reason
		}
	}
	if pl.lazy {
		return e.classifyLazy(pl, ctx.cost)
	}
	return e.classifyEager(pl, ctx.cost, ctx.cache)
}

// vetSpeculation is the lazy install's read-only safety check: it returns ""
// when every frame the candidate would speculate is inside physical memory,
// still tagged as a dead user frame, adoptable by the crash kernel's
// allocator and not yet promised to an earlier speculation — and records the
// passing frames in proposed. Any scan-side error also refuses speculation,
// so a failing candidate replays the eager engine's exact branching.
func (e *Engine) vetSpeculation(pl *plan, proposed map[int]bool) string {
	if pl.parseErr != nil || pl.regionsErr != nil || pl.pagesErr != nil ||
		pl.shmErr != nil || (pl.filesErr != nil && !layout.IsCorruption(pl.filesErr)) {
		return "frame-validation: scan recorded a fatal error; installing eagerly"
	}
	var mine []int
	for idx := range pl.pages {
		pg := &pl.pages[idx]
		if pg.swapped || pg.mapped || pg.data == nil || phys.PageIsZero(pg.data) {
			continue
		}
		switch {
		case pg.frame < 0 || pg.frame >= e.K.M.Mem.NumFrames():
			return fmt.Sprintf("frame-validation: page %#x references frame %d beyond memory", pg.va, pg.frame)
		case e.K.M.Mem.Kind(pg.frame) != phys.FrameUser:
			return fmt.Sprintf("frame-validation: page %#x frame %d is %v, not a dead user frame",
				pg.va, pg.frame, e.K.M.Mem.Kind(pg.frame))
		case !e.K.Alloc.CanAdopt(pg.frame):
			return fmt.Sprintf("frame-validation: page %#x frame %d already managed by the crash kernel", pg.va, pg.frame)
		case proposed[pg.frame]:
			return fmt.Sprintf("frame-validation: page %#x frame %d already speculated by an earlier candidate", pg.va, pg.frame)
		}
		mine = append(mine, pg.frame)
	}
	for _, f := range mine {
		proposed[f] = true
	}
	return ""
}

// classifyEager is the full-copy classification: zero elision plus
// cross-candidate dedup, charging CopyCost / DedupHitCost / ZeroFillCost per
// page. The event's B field carries the actual copy bytes avoided.
func (e *Engine) classifyEager(pl *plan, cost sim.CostModel, cache map[uint64][]byte) *trace.Event {
	examined, elided, deduped := 0, 0, 0
	var saved int64
	var dur time.Duration
	for idx := range pl.pages {
		pg := &pl.pages[idx]
		if pg.swapped || pg.mapped || pg.data == nil {
			continue
		}
		examined++
		if phys.PageIsZero(pg.data) {
			pg.zero = true
			pg.data = nil
			pg.saved = pageLiveBytes(pl.regions, pg.va)
			saved += pg.saved
			elided++
			dur += cost.ZeroFillCost
			continue
		}
		h := pageHash(pg.data)
		if canon, ok := cache[h]; ok {
			if bytes.Equal(canon, pg.data) {
				pg.data = canon
				pg.deduped = true
				pg.saved = pageLiveBytes(pl.regions, pg.va)
				saved += pg.saved
				deduped++
				dur += cost.DedupHitCost
				continue
			}
			// Hash collision: treat as an ordinary copy; the first
			// occupant keeps the cache slot.
			dur += cost.CopyCost(int64(len(pg.data)))
			continue
		}
		cache[h] = pg.data
		dur += cost.CopyCost(int64(len(pg.data)))
	}
	if examined == 0 {
		return nil
	}
	pl.chargePageCopy(dur)
	return &trace.Event{
		Seq:  uint64(pl.scanDur),
		Kind: trace.KindResurrect,
		PID:  pl.cand.PID,
		PC:   uint64(pl.scanDur),
		A:    uint64(PhasePageCopy),
		B:    uint64(saved),
		Note: "fastpath",
	}
}

// classifyLazy is the demand-paged classification: all-zero pages still
// elide (a zero-filled frame is cheaper than any mapping), every other
// resident page is speculated — the install maps the dead frame
// copy-on-access and pays only SpecMapCost now, while the CRC stamped here
// lets the first touch detect a frame that changed after the scan. The
// scan-time copy is kept as the shadow the fallback installs, so a corrupt
// speculation degrades to exactly the eager result. Lazy candidates never
// enter the dedup cache: their frames stay shared-by-mapping until
// resolution copies them out.
func (e *Engine) classifyLazy(pl *plan, cost sim.CostModel) *trace.Event {
	examined, speculated := 0, 0
	var deferred int64
	var dur time.Duration
	for idx := range pl.pages {
		pg := &pl.pages[idx]
		if pg.swapped || pg.mapped || pg.data == nil {
			continue
		}
		examined++
		if phys.PageIsZero(pg.data) {
			pg.zero = true
			pg.data = nil
			pg.saved = pageLiveBytes(pl.regions, pg.va)
			dur += cost.ZeroFillCost
			continue
		}
		pg.speculated = true
		pg.crc = crc32.ChecksumIEEE(pg.data)
		speculated++
		deferred += int64(len(pg.data))
		dur += cost.SpecMapCost
	}
	if examined == 0 {
		return nil
	}
	pl.chargePageCopy(dur)
	return &trace.Event{
		Seq:  uint64(pl.scanDur),
		Kind: trace.KindResurrect,
		PID:  pl.cand.PID,
		PC:   uint64(pl.scanDur),
		A:    uint64(PhasePageCopy),
		B:    uint64(deferred),
		Note: "speculate",
	}
}

// chargePageCopy adds the classification's deferred page-install time to the
// plan's PhasePageCopy duration and total scan time.
func (pl *plan) chargePageCopy(dur time.Duration) {
	ps := pl.phase[PhasePageCopy]
	ps.dur += dur
	pl.phase[PhasePageCopy] = ps
	pl.scanDur += dur
}
