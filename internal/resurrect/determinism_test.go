package resurrect_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/resurrect"
)

var update = flag.Bool("update", false, "rewrite golden files")

// multiMySQLMachine builds the ISSUE 3 acceptance scenario: eight MySQL
// servers on one machine, warmed up, with the resurrection pipeline pinned
// to the given worker count.
func multiMySQLMachine(t *testing.T, workers int) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 256 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 4242
	opts.Resurrection.Workers = workers
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for j := 0; j < 8; j++ {
		if _, err := m.Start(fmt.Sprintf("mysqld-%d", j), apps.ProgMySQL); err != nil {
			t.Fatalf("start mysqld-%d: %v", j, err)
		}
	}
	m.Run(200)
	return m
}

func recoverOutcome(t *testing.T, m *core.Machine) *core.FailureOutcome {
	t.Helper()
	if err := m.K.InjectOops("determinism"); err == nil {
		t.Fatal("InjectOops returned nil")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("transfer failed: %s", out.Transfer.Reason)
	}
	return out
}

// TestDeterminismAcrossWorkers is the tentpole invariant: the entire Report
// — candidates, per-process timelines, Table 4 accounting, per-candidate
// durations, the merged scan trace — must be byte-identical whether the
// scan ran on one worker or eight. Only Parallel (the live schedule) may
// differ. The Workers=1 fingerprint is additionally golden-compared so an
// accidental change to the serial semantics cannot hide behind the
// 1-vs-8 equality.
func TestDeterminismAcrossWorkers(t *testing.T) {
	out1 := recoverOutcome(t, multiMySQLMachine(t, 1))
	out8 := recoverOutcome(t, multiMySQLMachine(t, 8))
	rep1, rep8 := out1.Report, out8.Report

	fp1, fp8 := rep1.Fingerprint(), rep8.Fingerprint()
	if fp1 != fp8 {
		t.Fatalf("fingerprint differs between Workers=1 and Workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", fp1, fp8)
	}
	if !reflect.DeepEqual(rep1.Acct.ByCategory, rep8.Acct.ByCategory) {
		t.Fatalf("accounting differs:\nw1: %v\nw8: %v", rep1.Acct.ByCategory, rep8.Acct.ByCategory)
	}
	if !reflect.DeepEqual(rep1.ScanTrace, rep8.ScanTrace) {
		t.Fatalf("merged scan trace differs (%d vs %d events)", len(rep1.ScanTrace), len(rep8.ScanTrace))
	}

	// Live-schedule invariants: one worker means serial == parallel; eight
	// workers must report the width it ran at and a shorter critical path.
	if rep1.Parallel.Workers != 1 || rep8.Parallel.Workers != 8 {
		t.Fatalf("pool widths = %d, %d", rep1.Parallel.Workers, rep8.Parallel.Workers)
	}
	if rep1.Parallel.Duration != rep1.Duration {
		t.Fatalf("Workers=1: live schedule %v != serial model %v", rep1.Parallel.Duration, rep1.Duration)
	}
	if rep8.Parallel.Duration >= rep1.Parallel.Duration {
		t.Fatalf("Workers=8 schedule %v not faster than Workers=1 %v", rep8.Parallel.Duration, rep1.Parallel.Duration)
	}

	// The corrected interruptions are worker-count-independent.
	if out1.SerialInterruption != out8.SerialInterruption {
		t.Fatalf("serial interruption differs: %v vs %v", out1.SerialInterruption, out8.SerialInterruption)
	}
	c := resurrect.CanonicalWorkers
	if out1.InterruptionAt(c) != out8.InterruptionAt(c) {
		t.Fatalf("canonical interruption differs: %v vs %v", out1.InterruptionAt(c), out8.InterruptionAt(c))
	}

	golden := filepath.Join("testdata", "fingerprint_mysql_x8.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(fp1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if fp1 != string(want) {
		t.Errorf("fingerprint drifted from golden (re-run with -update if intentional):\ngot:\n%s", fp1)
	}
}

// TestResurrectParallelSpeedup asserts the ISSUE 3 acceptance criterion
// directly: on the eight-MySQL scenario the modeled interruption speedup at
// four workers is at least 2x.
func TestResurrectParallelSpeedup(t *testing.T) {
	out := recoverOutcome(t, multiMySQLMachine(t, 0))
	rep := out.Report
	if got := rep.SpeedupAt(4); got < 2 {
		t.Fatalf("speedup at 4 workers = %.2fx, want >= 2x (serial %v, sched@4 %v)",
			got, rep.Duration, rep.ScheduleAt(4))
	}
	if got := rep.SpeedupAt(1); got != 1 {
		t.Fatalf("speedup at 1 worker = %v, want exactly 1", got)
	}
	// More workers never slow the modeled schedule down.
	prev := rep.ScheduleAt(1)
	for w := 2; w <= 16; w++ {
		cur := rep.ScheduleAt(w)
		if cur > prev {
			t.Fatalf("schedule at %d workers (%v) slower than at %d (%v)", w, cur, w-1, prev)
		}
		prev = cur
	}
}
