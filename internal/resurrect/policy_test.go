package resurrect_test

import (
	"strings"
	"testing"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/resurrect"
)

// Edge cases for the selection and policy layers: conflicting configs,
// crash-procedure names that resolve to nothing, crash procedures that
// return actions the policy table does not know, and descriptors that name
// programs the crash kernel has no image for (the shape a kernel thread's
// descriptor would take — there is no executable to re-map).

// TestConfigWantsPolicyConflicts pins the precedence rules Wants applies
// when the configuration is contradictory or the names are degenerate.
func TestConfigWantsPolicyConflicts(t *testing.T) {
	cases := []struct {
		name string
		cfg  resurrect.Config
		cand string
		want bool
	}{
		// All and Names both set: All wins, even for names not listed.
		{"all-overrides-names", resurrect.Config{All: true, Names: []string{"keep"}}, "other", true},
		{"all-overrides-empty-name", resurrect.Config{All: true, Names: []string{"keep"}}, "", true},
		// An empty entry in Names matches only the empty candidate name.
		{"empty-entry-matches-empty", resurrect.Config{Names: []string{""}}, "", true},
		{"empty-entry-not-wildcard", resurrect.Config{Names: []string{""}}, "keep", false},
		{"named-skips-empty-cand", resurrect.Config{Names: []string{"keep"}}, "", false},
		// Duplicates are harmless; a match is a match.
		{"duplicate-names", resurrect.Config{Names: []string{"keep", "keep"}}, "keep", true},
		// Workers is a schedule knob, never a selector.
		{"workers-alone-selects-nothing", resurrect.Config{Workers: 8}, "keep", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cfg.Wants(resurrect.Candidate{Name: tc.cand}); got != tc.want {
				t.Fatalf("Wants(%q) = %v, want %v", tc.cand, got, tc.want)
			}
		})
	}
}

// TestUnregisteredCrashProcMissingResources: the descriptor names a crash
// procedure that is not in the crash kernel's registry. With unresurrected
// resources that is fatal — nil procedure is treated exactly like no
// procedure (Table 1, bottom-left quadrant).
func TestUnregisteredCrashProcMissingResources(t *testing.T) {
	m := newMachine(t)
	p, err := m.Start("p", "t1-sock")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.RegisterCrashProcedure(p, "t1-no-such-proc"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	before := crashProcState.called
	pr := crashAndRecover(t, m)
	if pr.Candidate.CrashProc != "t1-no-such-proc" {
		t.Fatalf("candidate crash proc = %q", pr.Candidate.CrashProc)
	}
	if pr.Outcome != resurrect.OutcomeFailed || pr.CrashProcCalled {
		t.Fatalf("outcome %v called=%v", pr.Outcome, pr.CrashProcCalled)
	}
	if pr.Err == nil || !strings.Contains(pr.Err.Error(), "no crash procedure") {
		t.Fatalf("err = %v", pr.Err)
	}
	if crashProcState.called != before {
		t.Fatal("some registered crash procedure ran for an unregistered name")
	}
}

// TestUnregisteredCrashProcAllResources: the same dangling name is harmless
// when everything was resurrected — the process simply continues, as if it
// had never registered a procedure.
func TestUnregisteredCrashProcAllResources(t *testing.T) {
	m := newMachine(t)
	p, err := m.Start("p", "t1-plain")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.RegisterCrashProcedure(p, "t1-no-such-proc"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeContinued || pr.CrashProcCalled {
		t.Fatalf("outcome %v called=%v err=%v", pr.Outcome, pr.CrashProcCalled, pr.Err)
	}
}

// TestUnknownCrashActionGivesUp: a crash procedure returning an action
// outside the defined set must land in the conservative default — abandon
// the process — rather than continue with undefined state.
func TestUnknownCrashActionGivesUp(t *testing.T) {
	m := newMachine(t)
	p, err := m.Start("p", "t1-plain-cp")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.RegisterCrashProcedure(p, "t1-tracker"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	crashProcState = struct {
		called  int
		missing kernel.ResourceMask
		action  kernel.CrashAction
	}{action: kernel.CrashAction(99)}
	pr := crashAndRecover(t, m)
	if pr.Outcome != resurrect.OutcomeGaveUp || !pr.CrashProcCalled {
		t.Fatalf("outcome %v called=%v", pr.Outcome, pr.CrashProcCalled)
	}
	if len(m.K.Procs()) != 0 {
		t.Fatal("abandoned process should not be running under the crash kernel")
	}
}

// TestKernelThreadLikeCandidateFailsParse: a descriptor whose program the
// crash kernel cannot find on disk — the shape a kernel thread presents,
// since it has no user executable — must fail cleanly at the parse phase
// and not disturb its neighbours.
func TestKernelThreadLikeCandidateFailsParse(t *testing.T) {
	m := newMachine(t)
	kt, err := m.Start("kworker", "t1-plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("app", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	// Rewrite the descriptor in place so it names a program with no image
	// on disk; the record stays well-formed (sealed, CRC-valid).
	d := kt.D
	d.Program = "kthread"
	if err := m.HW.Mem.WriteAt(kt.Addr, layout.Seal(layout.TypeProc, 0, d.EncodePayload())); err != nil {
		t.Fatal(err)
	}
	if err := m.K.InjectOops("x"); err == nil {
		t.Fatal("no panic")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if len(out.Report.Procs) != 2 {
		t.Fatalf("reports = %d", len(out.Report.Procs))
	}
	var ktPr, appPr *resurrect.ProcReport
	for i := range out.Report.Procs {
		switch out.Report.Procs[i].Candidate.Name {
		case "kworker":
			ktPr = &out.Report.Procs[i]
		case "app":
			appPr = &out.Report.Procs[i]
		}
	}
	if ktPr == nil || appPr == nil {
		t.Fatalf("candidates missing from report: %+v", out.Report.Candidates)
	}
	if ktPr.Outcome != resurrect.OutcomeFailed {
		t.Fatalf("kthread-like outcome %v", ktPr.Outcome)
	}
	if ktPr.Err == nil || !strings.Contains(ktPr.Err.Error(), "not on disk") {
		t.Fatalf("err = %v", ktPr.Err)
	}
	if appPr.Outcome != resurrect.OutcomeContinued {
		t.Fatalf("neighbour outcome %v err=%v", appPr.Outcome, appPr.Err)
	}
}

// TestZombiesSkippedAtAnyPoolWidth extends the zombie exclusion to a mixed
// population under a multi-worker scan: exited processes never become
// candidates, and the survivors all resurrect.
func TestZombiesSkippedAtAnyPoolWidth(t *testing.T) {
	m := newMachine(t)
	var zombies []*kernel.Process
	for _, n := range []string{"a", "z1", "b", "z2", "c"} {
		p, err := m.Start(n, "t1-plain")
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(n, "z") {
			zombies = append(zombies, p)
		}
	}
	m.Run(10)
	for _, z := range zombies {
		if err := m.K.Exit(z, 0); err != nil {
			t.Fatal(err)
		}
	}
	out := recoverOutcome(t, m)
	if len(out.Report.Candidates) != 3 {
		t.Fatalf("candidates = %v", out.Report.Candidates)
	}
	for _, c := range out.Report.Candidates {
		if strings.HasPrefix(c.Name, "z") {
			t.Fatalf("zombie %q listed as candidate", c.Name)
		}
	}
	if got := out.Report.Succeeded(); got != 3 {
		t.Fatalf("succeeded = %d, want 3", got)
	}
}
