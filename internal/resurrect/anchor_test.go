package resurrect_test

import (
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/kernel"
	"otherworld/internal/resurrect"
)

// TestCorruptGlobalsAnchorFailsEveryResurrection: if the wild writes hit
// the globals anchor itself, the crash kernel has nothing to walk — every
// selected process fails, but the machine still comes back (empty).
func TestCorruptGlobalsAnchorFailsEveryResurrection(t *testing.T) {
	m := newMachine(t)
	if _, err := m.Start("p", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	// Clobber the anchor's payload.
	if err := m.HW.Mem.WriteAt(kernel.GlobalsAddr+10, []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("machine should still recover (empty): %s", out.Transfer.Reason)
	}
	if len(out.Report.Candidates) != 0 || out.Report.Succeeded() != 0 {
		t.Fatalf("report = %+v", out.Report)
	}
	// The morphed kernel is healthy: new processes start fine.
	if _, err := m.Start("fresh", "t1-plain"); err != nil {
		t.Fatal(err)
	}
	if res := m.Run(10); res.Panic != nil {
		t.Fatalf("panic after empty resurrection: %v", res.Panic)
	}
}

// TestConfigWants covers the resurrection-configuration selection logic.
func TestConfigWants(t *testing.T) {
	all := resurrect.Config{All: true}
	if !all.Wants(resurrect.Candidate{Name: "anything"}) {
		t.Fatal("All must select everything")
	}
	named := resurrect.Config{Names: []string{"a", "b"}}
	if !named.Wants(resurrect.Candidate{Name: "b"}) || named.Wants(resurrect.Candidate{Name: "c"}) {
		t.Fatal("name selection wrong")
	}
	none := resurrect.Config{}
	if none.Wants(resurrect.Candidate{Name: "a"}) {
		t.Fatal("empty config selects nothing")
	}
}

// TestReportSucceededCounts covers the report summary.
func TestReportSucceededCounts(t *testing.T) {
	r := &resurrect.Report{Procs: []resurrect.ProcReport{
		{Outcome: resurrect.OutcomeContinued},
		{Outcome: resurrect.OutcomeRestarted},
		{Outcome: resurrect.OutcomeGaveUp},
		{Outcome: resurrect.OutcomeFailed},
	}}
	if r.Succeeded() != 2 {
		t.Fatalf("succeeded = %d", r.Succeeded())
	}
}

// TestOutcomeStrings pins the display names used across reports and logs.
func TestOutcomeStrings(t *testing.T) {
	want := map[resurrect.Outcome]string{
		resurrect.OutcomeContinued: "continued",
		resurrect.OutcomeRestarted: "restarted",
		resurrect.OutcomeGaveUp:    "gave-up",
		resurrect.OutcomeFailed:    "failed",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("%d -> %q, want %q", int(o), o.String(), s)
		}
	}
}
