package resurrect_test

import (
	"fmt"
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/resurrect"
)

// These tests exist for the -race pass (make race / make verify): the scan
// phase fans candidates out to concurrent workers that all read the dead
// kernel's memory and the shared swap device, so the detector sees the real
// worker pool, not a mock.

// raceMachine builds a machine with n cheap processes and the resurrection
// pool pinned to the given width.
func raceMachine(t *testing.T, n, workers int) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 128 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 77
	opts.Resurrection.Workers = workers
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.Start(fmt.Sprintf("p%d", i), "t1-plain"); err != nil {
			t.Fatalf("start p%d: %v", i, err)
		}
	}
	m.Run(30)
	return m
}

// TestWorkerPoolOverlappingCandidates runs more candidates than workers so
// every worker scans several in sequence while its peers are mid-candidate
// — the overlap that would expose an unsharded counter or reader.
func TestWorkerPoolOverlappingCandidates(t *testing.T) {
	m := raceMachine(t, 8, 3)
	out := recoverOutcome(t, m)
	if out.Report.Parallel.Workers != 3 {
		t.Fatalf("pool width = %d, want 3", out.Report.Parallel.Workers)
	}
	if got := out.Report.Succeeded(); got != 8 {
		t.Fatalf("succeeded = %d, want 8", got)
	}
}

// TestWorkerPoolCorruptedPageTable corrupts one candidate's page directory
// before the crash: under -race this exercises the scan error paths while
// other workers are still copying pages, and the damage must stay contained
// to the corrupted process at any pool width.
func TestWorkerPoolCorruptedPageTable(t *testing.T) {
	run := func(workers int) *resurrect.Report {
		m := raceMachine(t, 6, workers)
		victim := m.K.Procs()[2]
		if err := m.HW.Mem.WriteU64(victim.D.PageDir, 0xDEADBEEF); err != nil {
			t.Fatal(err)
		}
		return recoverOutcome(t, m).Report
	}
	rep4 := run(4)
	failed := 0
	for _, pr := range rep4.Procs {
		if pr.Outcome == resurrect.OutcomeFailed {
			failed++
		}
	}
	if failed != 1 || rep4.Succeeded() != 5 {
		t.Fatalf("failed=%d succeeded=%d, want 1/5", failed, rep4.Succeeded())
	}
	// The failure handling itself must stay deterministic across widths.
	if fp1, fp4 := run(1).Fingerprint(), rep4.Fingerprint(); fp1 != fp4 {
		t.Fatalf("corrupted-candidate fingerprint differs between Workers=1 and Workers=4")
	}
}

// TestConcurrentRecoveries runs whole machines' recoveries in parallel,
// each with its own multi-worker resurrection pool — pool-inside-pool, as a
// campaign with ResurrectWorkers set produces. Machines are built serially
// (the helper uses t.Fatal); only the recovery runs concurrently.
func TestConcurrentRecoveries(t *testing.T) {
	machines := make([]*core.Machine, 4)
	for i := range machines {
		machines[i] = raceMachine(t, 5, 4)
	}
	done := make(chan error, len(machines))
	for _, m := range machines {
		go func(m *core.Machine) {
			if err := m.K.InjectOops("race"); err == nil {
				done <- fmt.Errorf("InjectOops returned nil")
				return
			}
			out, err := m.HandleFailure()
			if err != nil {
				done <- err
				return
			}
			if out.Result != core.ResultRecovered {
				done <- fmt.Errorf("transfer failed: %s", out.Transfer.Reason)
				return
			}
			done <- nil
		}(m)
	}
	for range machines {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
