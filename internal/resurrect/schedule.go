package resurrect

import (
	"runtime"
	"time"

	"otherworld/internal/sched"
)

// CanonicalWorkers is the worker count every *rendered* parallel number is
// derived at (Table 6's parallel column, the campaign's mean-interruption
// column, owbench snapshots). The live engine may fan out over any number
// of goroutines — NumCPU by default — but reported schedules are always
// re-evaluated at this fixed width through Report.ScheduleAt, so output is
// identical on a 2-core CI runner and a 64-core workstation.
const CanonicalWorkers = 4

// effectiveWorkers resolves the configured worker count: 0 (or negative)
// means NumCPU, and the pool is never wider than the candidate set (extra
// workers would only sit idle and inflate bookkeeping).
func (c Config) effectiveWorkers(candidates int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if candidates > 0 && w > candidates {
		w = candidates
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelStats describes the live parallel schedule one Run executed: how
// wide the pool was and what the modeled wall-clock of that schedule is.
// Everything here depends on Config.Workers, which is why the determinism
// fingerprint (Report.Fingerprint) excludes this block — the rest of the
// Report must be byte-identical at Workers=1 and Workers=N.
type ParallelStats struct {
	// Workers is the resolved pool width this pass ran with.
	Workers int
	// PerWorker is each worker's summed per-candidate virtual time under
	// the deterministic round-robin sharding.
	PerWorker []time.Duration
	// CriticalPath is the slowest worker's total — the parallel phase's
	// modeled duration.
	CriticalPath time.Duration
	// Duration is the virtual time the whole pass consumed at this width:
	// serial prologue + critical path. This is what the machine clock
	// advanced during Run.
	Duration time.Duration
}

// shardSpans distributes per-candidate durations over workers with the
// deterministic round-robin rule (candidate i goes to worker i mod w, in
// stable candidate order) and returns each worker's total.
func shardSpans(perCandidate []time.Duration, workers int) []time.Duration {
	if workers < 1 {
		workers = 1
	}
	spans := make([]time.Duration, workers)
	for i, d := range perCandidate {
		spans[i%workers] += d
	}
	return spans
}

func maxSpan(spans []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range spans {
		if d > m {
			m = d
		}
	}
	return m
}

func sumSpans(spans []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range spans {
		s += d
	}
	return s
}

// ScheduleAt evaluates the parallel schedule model at an arbitrary worker
// count without re-running anything: serial prologue plus the critical-path
// maximum over round-robin shards of the stored per-candidate durations.
// It is a pure function of worker-count-independent inputs, so tables can
// render a parallel column at CanonicalWorkers no matter how wide the live
// pool was.
func (r *Report) ScheduleAt(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	if r.Streamed && r.hasSplit() {
		// Streamed pass: the pipelined-commit schedule over the blocked
		// spans (scan fan-out, commits behind the admission-order cursor).
		_, makespan, _ := sched.Pipeline(r.PerScan, r.blockedSpans(), workers)
		return r.Prologue + makespan
	}
	return r.Prologue + maxSpan(shardSpans(r.PerCandidate, workers))
}

// SpeedupAt returns the modeled interruption speedup of the resurrection
// pass at the given width versus the serial schedule (Report.Duration).
func (r *Report) SpeedupAt(workers int) float64 {
	par := r.ScheduleAt(workers)
	if par <= 0 {
		return 1
	}
	return float64(r.Duration) / float64(par)
}
