package resurrect_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/metrics"
)

// TestMetricsSnapshotDeterministicAcrossWorkers is the metrics-plane
// counterpart of TestDeterminismAcrossWorkers: the full machine snapshot —
// phys bus traffic, kernel perf, trace tallies and every resurrect series
// the pool wrote concurrently — must be bit-identical at Workers 1/2/4/8.
// Only LogicalNowNS may differ (the post-recovery clock reflects the live
// parallel schedule), which is exactly why Fingerprint excludes it. The
// Workers=1 fingerprint is golden-pinned next to fingerprint_mysql_x8.
func TestMetricsSnapshotDeterministicAcrossWorkers(t *testing.T) {
	fps := make(map[int]string)
	for _, w := range []int{1, 2, 4, 8} {
		m := multiMySQLMachine(t, w)
		recoverOutcome(t, m)
		snap := m.MetricsSnapshot()
		if len(snap.Points) == 0 {
			t.Fatalf("Workers=%d: empty snapshot", w)
		}
		fps[w] = snap.Fingerprint()
	}
	for _, w := range []int{2, 4, 8} {
		if fps[w] != fps[1] {
			t.Fatalf("metrics fingerprint differs between Workers=1 and Workers=%d:\n--- w1 ---\n%s\n--- w%d ---\n%s",
				w, fps[1], w, fps[w])
		}
	}

	golden := filepath.Join("testdata", "metrics_mysql_x8.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(fps[1]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if fps[1] != string(want) {
		t.Errorf("metrics fingerprint drifted from golden (re-run with -update if intentional):\ngot:\n%s", fps[1])
	}
}

// TestDeadMetricsSurviveCrash asserts the pstore property end to end: the
// metrics segment the main kernel flushed before its panic is recoverable
// by HandleFailure, carries the dead generation's counters, and its
// logical stamp predates the failure handling.
func TestDeadMetricsSurviveCrash(t *testing.T) {
	m := multiMySQLMachine(t, 4)
	pre := m.MetricsSnapshot()
	out := recoverOutcome(t, m)
	dm := out.DeadMetrics
	if dm == nil || dm.Valid == 0 {
		t.Fatalf("DeadMetrics = %+v, want at least one valid page", dm)
	}
	if dm.Corrupted != 0 {
		t.Fatalf("clean crash produced %d corrupted metrics pages", dm.Corrupted)
	}
	steps := dm.Snapshot.Get("kernel_steps_total", nil)
	if steps == nil || steps.Value == 0 {
		t.Fatalf("dead kernel's step counter missing: %+v", steps)
	}
	// The segment records the last pre-failure flush, so its stamp cannot
	// exceed the live pre-crash snapshot's.
	if dm.Snapshot.LogicalNowNS == 0 || dm.Snapshot.LogicalNowNS > pre.LogicalNowNS {
		t.Fatalf("dead stamp %d vs pre-crash %d", dm.Snapshot.LogicalNowNS, pre.LogicalNowNS)
	}
	// The post-morph registry keeps accumulating: the salvage counters for
	// the dead ring are on the machine registry now.
	post := m.MetricsSnapshot()
	if p := post.Get("trace_salvages_total", nil); p == nil || p.Value == 0 {
		t.Fatalf("salvage pass not recorded: %+v", p)
	}
	if p := post.Get("machine_reboots_total", nil); p == nil || p.Value != 1 {
		t.Fatalf("machine_reboots_total = %+v, want 1", p)
	}
}

// TestScanPoolWritesRegistryConcurrently is the pool-race companion to the
// in-package registry race test: whole recoveries run in parallel, each
// with a wide scan pool writing its machine's registry, while this test
// concurrently snapshots those registries. Meaningful under -race.
func TestScanPoolWritesRegistryConcurrently(t *testing.T) {
	machines := make([]*core.Machine, 4)
	for i := range machines {
		machines[i] = raceMachine(t, 6, 4)
	}
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *core.Machine) {
			defer wg.Done()
			if err := m.K.InjectOops("metrics race"); err == nil {
				t.Error("InjectOops returned nil")
				return
			}
			if _, err := m.HandleFailure(); err != nil {
				t.Error(err)
			}
		}(m)
		wg.Add(1)
		go func(m *core.Machine) {
			defer wg.Done()
			// Reader racing the pool: snapshots must always be coherent.
			for i := 0; i < 20; i++ {
				_ = m.Metrics().Snapshot()
			}
		}(m)
	}
	wg.Wait()
	for i, m := range machines {
		p := m.MetricsSnapshot().Get("resurrect_scans_total", nil)
		if p == nil || p.Value != 6 {
			t.Fatalf("machine %d: resurrect_scans_total = %+v, want 6", i, p)
		}
	}
}

// TestMetricsDisabled pins the off switch: MetricsPages=0 must yield a nil
// registry, no DeadMetrics, and a recovery that still works.
func TestMetricsDisabled(t *testing.T) {
	opts := core.DefaultOptions()
	opts.HW.MemoryBytes = 128 << 20
	opts.CrashRegionMB = 16
	opts.Seed = 7
	opts.MetricsPages = 0
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics() != nil {
		t.Fatal("MetricsPages=0 should disable the registry")
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Start(fmt.Sprintf("p%d", i), "t1-plain"); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(30)
	out := recoverOutcome(t, m)
	if out.DeadMetrics != nil {
		t.Fatal("disabled plane recovered a DeadMetrics segment")
	}
	snap := m.MetricsSnapshot()
	if snap == nil || len(snap.Points) != 0 {
		t.Fatalf("disabled snapshot = %+v", snap)
	}
	var _ = metrics.SchemaVersion // keep the import honest
}
