// Package resurrect implements the crash kernel's application-resurrection
// engine (Section 3.3): after a microreboot it parses the dead main
// kernel's data structures out of raw physical memory — process
// descriptors, memory regions, hardware page tables, open-file records,
// page-cache entries, terminals, signal tables, shared memory — and
// rebuilds the selected processes inside the freshly booted crash kernel,
// finishing with the crash-procedure call and the Table 1 policy decision.
//
// Every byte the engine reads from main-kernel memory is counted by
// category, which is how Table 4 ("size of the data read by the crash
// kernel during the resurrection process") is measured.
package resurrect

import (
	"errors"
	"fmt"
	"time"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/phys"
	"otherworld/internal/trace"
)

// Category labels for byte accounting.
const (
	CatGlobals   = "globals"
	CatProc      = "proc"
	CatRegion    = "memregion"
	CatPageTable = "pagetable"
	CatFile      = "file"
	CatCache     = "pagecache"
	CatTerminal  = "terminal"
	CatSignals   = "signals"
	CatShm       = "shm"
	CatIPC       = "ipc"
	CatContext   = "context"
	CatUserData  = "userdata"
	CatSwapData  = "swapdata"
	// CatTrace counts the dead kernel's flight-recorder ring. It is
	// deliberately not a kernelDataCats member: Table 4 measures the data
	// needed to rebuild processes, and the ring is diagnostic only.
	CatTrace = "trace"
)

// kernelDataCats are the categories Table 4 counts as main-kernel data (it
// excludes the application page contents themselves).
var kernelDataCats = []string{
	CatGlobals, CatProc, CatRegion, CatPageTable, CatFile, CatCache,
	CatTerminal, CatSignals, CatShm, CatIPC, CatContext,
}

// Accounting tallies bytes read from the dead kernel's memory.
type Accounting struct {
	ByCategory map[string]int64
}

// total sums bytes read across every category.
func (a *Accounting) total() int64 {
	var n int64
	for _, v := range a.ByCategory {
		n += v
	}
	return n
}

// KernelDataBytes returns the Table 4 numerator: main-kernel data read.
func (a *Accounting) KernelDataBytes() int64 {
	var n int64
	for _, c := range kernelDataCats {
		n += a.ByCategory[c]
	}
	return n
}

// PageTableBytes returns the page-table portion.
func (a *Accounting) PageTableBytes() int64 { return a.ByCategory[CatPageTable] }

// PageTableFraction returns page-table bytes over kernel-data bytes.
func (a *Accounting) PageTableFraction() float64 {
	total := a.KernelDataBytes()
	if total == 0 {
		return 0
	}
	return float64(a.ByCategory[CatPageTable]) / float64(total)
}

// reader is the counting accessor the engine parses main memory through.
// It is the one sanctioned path to raw dead-kernel bytes: every read is
// charged to a Table 4 accounting category before it reaches phys.Mem.
//
//owvet:reader
type reader struct {
	mem  *phys.Mem
	acct *Accounting
	cat  string
}

func (r *reader) ReadAt(addr uint64, buf []byte) error {
	r.acct.ByCategory[r.cat] += int64(len(buf))
	return r.mem.ReadAt(addr, buf)
}

// WriteAt is required by layout.MemoryAccessor but the engine never writes
// into the dead kernel's memory.
func (r *reader) WriteAt(addr uint64, buf []byte) error {
	return errors.New("resurrect: main kernel memory is read-only during resurrection")
}

func (r *reader) at(cat string) *reader {
	r.cat = cat
	return r
}

// Candidate is one process found in the dead kernel's process list — the
// list shown to the interactive user, or matched against the resurrection
// configuration file (Section 3.3).
type Candidate struct {
	PID     uint32
	Name    string
	Program string
	// Addr is the descriptor's physical address in the dead kernel.
	Addr uint64
	// CrashProc is the registered crash-procedure name ("" if none).
	CrashProc string
}

// Config is the resurrection configuration: which processes to revive.
type Config struct {
	// All resurrects every candidate.
	All bool
	// Names lists process names to resurrect when All is false.
	Names []string
}

// Wants reports whether the configuration selects the candidate.
func (c Config) Wants(cand Candidate) bool {
	if c.All {
		return true
	}
	for _, n := range c.Names {
		if n == cand.Name {
			return true
		}
	}
	return false
}

// Outcome is the per-process resurrection result.
type Outcome int

// Outcomes.
const (
	// OutcomeContinued: execution resumes from the interruption point.
	OutcomeContinued Outcome = iota
	// OutcomeRestarted: the crash procedure saved state and the
	// application was started fresh.
	OutcomeRestarted
	// OutcomeGaveUp: the crash procedure abandoned recovery.
	OutcomeGaveUp
	// OutcomeFailed: corruption of main-kernel structures (or a missing
	// resource with no crash procedure) prevented resurrection.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeContinued:
		return "continued"
	case OutcomeRestarted:
		return "restarted"
	case OutcomeGaveUp:
		return "gave-up"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ProcReport describes one process's resurrection.
type ProcReport struct {
	Candidate Candidate
	Outcome   Outcome
	// NewPID is the process's PID under the crash kernel.
	NewPID uint32
	// Missing is the unresurrected-resource bitmask passed to the crash
	// procedure.
	Missing kernel.ResourceMask
	// CrashProcCalled reports whether a crash procedure ran.
	CrashProcCalled bool
	// Err explains a failure.
	Err error
	// PagesCopied / PagesRestaged count resident and swapped pages.
	PagesCopied   int
	PagesRestaged int
	// DirtyFlushed counts dirty page-cache pages written to disk.
	DirtyFlushed int
	// Timeline records the phases this resurrection went through, with
	// per-phase byte/page counters and the failure (if any) in place.
	Timeline Timeline
}

// Report is the whole resurrection pass.
type Report struct {
	Candidates []Candidate
	Procs      []ProcReport
	Acct       Accounting
	// Duration is the virtual time the resurrection pass consumed.
	Duration time.Duration
	// Trace is the dead kernel's flight recorder, parsed out of the crash
	// area's ring sub-region (nil when the engine was given no ring).
	Trace *trace.Parsed
}

// Succeeded counts processes that continued or restarted.
func (r *Report) Succeeded() int {
	n := 0
	for _, p := range r.Procs {
		if p.Outcome == OutcomeContinued || p.Outcome == OutcomeRestarted {
			n++
		}
	}
	return n
}

// Engine drives resurrection inside a freshly booted crash kernel.
type Engine struct {
	// K is the crash kernel performing the resurrection.
	K *kernel.Kernel
	// MainGlobals is the dead kernel's globals anchor (the fixed
	// compile-time physical address).
	MainGlobals uint64
	// VerifyCRC enables checksum validation while parsing the dead
	// kernel's records (Section 4's integrity hardening).
	VerifyCRC bool
	// MapPages enables the footnote-3 optimization: resident pages are
	// mapped in place instead of copied, "which would significantly
	// increase the speed of resurrection of large processes".
	MapPages bool
	// ResurrectIPC enables the Section 7 future-work extension: pipes
	// (when their semaphore was free at failure time) and sockets are
	// restored instead of reported as missing. The paper's prototype did
	// not do this; it is off by default.
	ResurrectIPC bool
	// TraceRegion is the dead kernel's flight-recorder ring (zero region
	// when tracing is off); Run parses it into Report.Trace through the
	// counting reader.
	TraceRegion phys.Region

	rd   reader
	acct Accounting
}

// NewEngine prepares an engine over the crash kernel k.
func NewEngine(k *kernel.Kernel, mainGlobals uint64, verifyCRC bool) *Engine {
	e := &Engine{
		K:           k,
		MainGlobals: mainGlobals,
		VerifyCRC:   verifyCRC,
		acct:        Accounting{ByCategory: make(map[string]int64)},
	}
	e.rd = reader{mem: k.M.Mem, acct: &e.acct}
	return e
}

// parseTime charges the fixed record-parse overhead to the virtual clock.
func (e *Engine) parseTime() {
	e.K.M.Clock.Advance(e.K.Cost().RecordParseOverhead)
}

// ListCandidates walks the dead kernel's process list. A corrupted globals
// anchor or list produces an error: with nothing to anchor on, no process
// can be resurrected.
func (e *Engine) ListCandidates() ([]Candidate, error) {
	g, err := layout.ReadGlobals(e.rd.at(CatGlobals), e.MainGlobals, e.VerifyCRC)
	if err != nil {
		return nil, fmt.Errorf("resurrect: main kernel globals: %w", err)
	}
	e.parseTime()
	var out []Candidate
	cur := g.ProcListHead
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return out, errors.New("resurrect: process list loop")
		}
		p, err := layout.ReadProc(e.rd.at(CatProc), cur, e.VerifyCRC)
		if err != nil {
			// The rest of the list is unreachable; report what we have.
			return out, fmt.Errorf("resurrect: process record at %#x: %w", cur, err)
		}
		e.parseTime()
		if p.State != layout.ProcZombie {
			out = append(out, Candidate{
				PID:       p.PID,
				Name:      p.Name,
				Program:   p.Program,
				Addr:      cur,
				CrashProc: p.CrashProc,
			})
		}
		cur = p.Next
	}
	return out, nil
}

// MainSwapDevice resolves the dead kernel's swap partition by reading its
// swap-area table and reopening the device by symbolic name (Section 3.3).
func (e *Engine) MainSwapDevice() (devName string, err error) {
	g, err := layout.ReadGlobals(e.rd.at(CatGlobals), e.MainGlobals, e.VerifyCRC)
	if err != nil {
		return "", err
	}
	if g.SwapTable == 0 {
		return "", nil
	}
	t, err := layout.ReadSwapTable(e.rd.at(CatGlobals), g.SwapTable, e.VerifyCRC)
	if err != nil {
		return "", fmt.Errorf("resurrect: swap table: %w", err)
	}
	e.parseTime()
	for _, a := range t.Areas {
		if a.Active {
			return a.Device, nil
		}
	}
	return "", nil
}

// Run performs the full resurrection pass for the configured processes and
// returns the report. The crash kernel must already be booted with working
// memory available (AddFreeFrames).
func (e *Engine) Run(cfg Config) *Report {
	start := e.K.M.Clock.Now()
	rep := &Report{Acct: Accounting{ByCategory: e.acct.ByCategory}}
	if e.TraceRegion.Frames > 0 {
		// Salvage the dead kernel's flight recorder before touching
		// anything else: it tells the crash kernel what the main kernel
		// was doing when it died.
		rep.Trace = trace.Parse(e.rd.at(CatTrace), e.TraceRegion)
	}
	cands, err := e.ListCandidates()
	rep.Candidates = cands
	if err != nil && len(cands) == 0 {
		// Anchor corrupt: every selected process fails.
		rep.Duration = e.K.M.Clock.Since(start)
		return rep
	}
	mainSwapName, _ := e.MainSwapDevice()
	for _, cand := range cands {
		if !cfg.Wants(cand) {
			continue
		}
		pr := e.resurrectOne(cand, mainSwapName)
		rep.Procs = append(rep.Procs, pr)
	}
	rep.Acct = e.acct
	rep.Duration = e.K.M.Clock.Since(start)
	return rep
}

// resurrectOne rebuilds a single process. Failures of memory-critical
// structures abort resurrection (Table 5's "failure to resurrect
// application"); failures of peripheral resources set bits in the missing
// mask and defer to the crash procedure (Table 1).
func (e *Engine) resurrectOne(cand Candidate, mainSwapName string) ProcReport {
	pr := ProcReport{Candidate: cand}
	// The timeline recorder: each step carries the bytes read from the
	// dead kernel and the virtual time spent since the previous step.
	markBytes := e.acct.total()
	markTime := e.K.M.Clock.Now()
	step := func(ph Phase, pages int, err error) {
		st := PhaseStep{
			Phase:    ph,
			Pages:    pages,
			Bytes:    e.acct.total() - markBytes,
			Duration: e.K.M.Clock.Since(markTime),
		}
		if err != nil {
			st.Err = err.Error()
		}
		pr.Timeline = append(pr.Timeline, st)
		markBytes += st.Bytes
		markTime += st.Duration
	}
	fail := func(ph Phase, err error) ProcReport {
		step(ph, 0, err)
		pr.Outcome = OutcomeFailed
		pr.Err = err
		return pr
	}

	old, err := layout.ReadProc(e.rd.at(CatProc), cand.Addr, e.VerifyCRC)
	if err != nil {
		return fail(PhaseParse, fmt.Errorf("process descriptor: %w", err))
	}
	e.parseTime()

	if kernel.LookupProgram(old.Program) == nil {
		return fail(PhaseParse, fmt.Errorf("program %q not on disk", old.Program))
	}

	np, err := e.K.CreateProcessForResurrection(old.Name, old.Program)
	if err != nil {
		return fail(PhaseParse, fmt.Errorf("create process: %w", err))
	}
	pr.NewPID = np.PID

	// Saved hardware context from the dead kernel stack (Section 3.2).
	ctx, ok, err := layout.ReadContext(e.rd.at(CatContext), old.KStack)
	if err != nil || !ok || !ctx.Saved {
		return fail(PhaseParse, fmt.Errorf("saved context missing or unreadable on kernel stack %#x", old.KStack))
	}
	e.parseTime()
	step(PhaseParse, 0, nil)

	// Open files first so file-backed regions can reference the new
	// records; also flush the dead kernel's dirty page-cache pages.
	fileMap, flushed, err := e.restoreFiles(np, old)
	if err != nil {
		if layout.IsCorruption(err) {
			pr.Missing |= kernel.ResFiles
			step(PhaseFileReopen, 0, err) // degraded, not fatal
		} else {
			return fail(PhaseFileReopen, fmt.Errorf("restore files: %w", err))
		}
	} else {
		step(PhaseFileReopen, 0, nil)
	}
	pr.DirtyFlushed = flushed
	step(PhaseFlush, flushed, nil)

	// Memory regions and page contents — corruption here is fatal: a
	// process without its memory cannot run a crash procedure either.
	if err := e.restoreRegions(np, old, fileMap); err != nil {
		return fail(PhaseRegions, fmt.Errorf("restore regions: %w", err))
	}
	step(PhaseRegions, 0, nil)

	swapMark := e.acct.ByCategory[CatSwapData]
	copied, restaged, err := e.restorePages(np, old, mainSwapName)
	pr.PagesCopied, pr.PagesRestaged = copied, restaged
	swapBytes := e.acct.ByCategory[CatSwapData] - swapMark
	// restorePages is one pass over both resident and swapped pages;
	// split its accounting so Table 4 sees page copy and swap re-stage
	// as separate timeline entries. An error is attributed to the
	// re-stage phase once swap reading had begun.
	totalDelta := e.acct.total() - markBytes
	dur := e.K.M.Clock.Since(markTime)
	pc := PhaseStep{Phase: PhasePageCopy, Pages: copied, Bytes: totalDelta - swapBytes, Duration: dur}
	sr := PhaseStep{Phase: PhaseSwapRestage, Pages: restaged, Bytes: swapBytes}
	markBytes += totalDelta
	markTime += dur
	if err != nil {
		werr := fmt.Errorf("restore pages: %w", err)
		if swapBytes > 0 {
			sr.Err = werr.Error()
			pr.Timeline = append(pr.Timeline, pc, sr)
		} else {
			pc.Err = werr.Error()
			pr.Timeline = append(pr.Timeline, pc)
		}
		pr.Outcome = OutcomeFailed
		pr.Err = werr
		return pr
	}
	pr.Timeline = append(pr.Timeline, pc, sr)

	// Shared memory (fatal on corruption: it is memory).
	if err := e.restoreShm(np, old); err != nil {
		return fail(PhaseShm, fmt.Errorf("restore shm: %w", err))
	}
	step(PhaseShm, 0, nil)

	// Terminal, signals: peripheral; corruption sets missing bits. Only
	// physical terminals are restorable (Section 3.3); pseudo terminals
	// are reported through the bitmask.
	if old.Terminal != 0 {
		if err := e.restoreTerminal(np, old); err != nil {
			pr.Missing |= kernel.ResTerminal
			step(PhaseTerminal, 0, err)
		} else {
			step(PhaseTerminal, 0, nil)
		}
	}
	if old.Signals != 0 {
		// A corrupted signal table degrades to default handlers; it is
		// not worth failing the resurrection over.
		step(PhaseSignals, 0, e.restoreSignals(np, old))
	}

	// Pipes and sockets: the prototype reports them as missing
	// (Section 3.3); with the Section 7 extension enabled they are
	// restored — except pipes caught mid-operation, whose locked
	// semaphore marks them inconsistent.
	var ipcErr error
	if e.ResurrectIPC {
		if err := e.restorePipes(np, old); err != nil {
			pr.Missing |= kernel.ResPipes
			ipcErr = err
		}
		if err := e.restoreSockets(np, old); err != nil {
			pr.Missing |= kernel.ResSockets
			if ipcErr == nil {
				ipcErr = err
			}
		}
	} else {
		if has, _ := e.hasIPC(old.Pipes, layout.TypePipe); has {
			pr.Missing |= kernel.ResPipes
		}
		if has, _ := e.hasIPC(old.Sockets, layout.TypeSocket); has {
			pr.Missing |= kernel.ResSockets
		}
	}
	step(PhaseIPC, 0, ipcErr)

	if err := e.K.InstallContext(np, ctx); err != nil {
		return fail(PhaseContext, fmt.Errorf("install context: %w", err))
	}
	step(PhaseContext, 0, nil)

	// Table 1 policy.
	pr = e.applyPolicy(np, cand, pr)
	step(PhasePolicy, 0, pr.Err)
	return pr
}

// applyPolicy runs the crash procedure (if registered) and decides the
// final outcome per Table 1.
func (e *Engine) applyPolicy(np *kernel.Process, cand Candidate, pr ProcReport) ProcReport {
	env := &kernel.Env{K: e.K, P: np}
	proc := kernel.LookupCrashProc(cand.CrashProc)
	if cand.CrashProc == "" || proc == nil {
		if pr.Missing != 0 {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("resources not resurrected (%s) and no crash procedure", pr.Missing)
			_ = e.K.Exit(np, 1)
			return pr
		}
		if err := np.Prog.Rehydrate(env); err != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("rehydrate: %w", err)
			_ = e.K.Exit(np, 1)
			return pr
		}
		pr.Outcome = OutcomeContinued
		return pr
	}

	pr.CrashProcCalled = true
	before := e.K.FS.BytesWritten()
	action, err := proc(env, pr.Missing)
	// Charge the crash procedure's disk writes to the virtual clock.
	e.K.M.Clock.Advance(e.K.Cost().DiskWriteCost(e.K.FS.BytesWritten() - before))
	if err != nil {
		pr.Outcome = OutcomeFailed
		pr.Err = fmt.Errorf("crash procedure: %w", err)
		_ = e.K.Exit(np, 1)
		return pr
	}
	switch action {
	case kernel.ActionContinue:
		if rerr := np.Prog.Rehydrate(env); rerr != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("rehydrate: %w", rerr)
			_ = e.K.Exit(np, 1)
			return pr
		}
		pr.Outcome = OutcomeContinued
	case kernel.ActionRestart:
		_ = e.K.Exit(np, 0)
		fresh, rerr := e.K.CreateProcess(cand.Name, cand.Program)
		if rerr != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("restart: %w", rerr)
			return pr
		}
		pr.NewPID = fresh.PID
		pr.Outcome = OutcomeRestarted
	default:
		_ = e.K.Exit(np, 1)
		pr.Outcome = OutcomeGaveUp
	}
	return pr
}
