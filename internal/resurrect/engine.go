// Package resurrect implements the crash kernel's application-resurrection
// engine (Section 3.3): after a microreboot it parses the dead main
// kernel's data structures out of raw physical memory — process
// descriptors, memory regions, hardware page tables, open-file records,
// page-cache entries, terminals, signal tables, shared memory — and
// rebuilds the selected processes inside the freshly booted crash kernel,
// finishing with the crash-procedure call and the Table 1 policy decision.
//
// Every byte the engine reads from main-kernel memory is counted by
// category, which is how Table 4 ("size of the data read by the crash
// kernel during the resurrection process") is measured.
package resurrect

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"otherworld/internal/disk"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
	"otherworld/internal/metrics"
	"otherworld/internal/phys"
	"otherworld/internal/sched"
	"otherworld/internal/sim"
	"otherworld/internal/trace"
)

// Category labels for byte accounting.
const (
	CatGlobals   = "globals"
	CatProc      = "proc"
	CatRegion    = "memregion"
	CatPageTable = "pagetable"
	CatFile      = "file"
	CatCache     = "pagecache"
	CatTerminal  = "terminal"
	CatSignals   = "signals"
	CatShm       = "shm"
	CatIPC       = "ipc"
	CatContext   = "context"
	CatUserData  = "userdata"
	CatSwapData  = "swapdata"
	// CatTrace counts the dead kernel's flight-recorder ring. It is
	// deliberately not a kernelDataCats member: Table 4 measures the data
	// needed to rebuild processes, and the ring is diagnostic only.
	CatTrace = "trace"
	// CatIndex counts the dead kernel's candidate index — the compact
	// per-process record extents the index-assisted walker salvages
	// instead of walking the whole process list. Zero when the index is
	// off, so legacy ledgers are unchanged.
	CatIndex = "index"
)

// kernelDataCats are the categories Table 4 counts as main-kernel data (it
// excludes the application page contents themselves).
var kernelDataCats = []string{
	CatGlobals, CatProc, CatRegion, CatPageTable, CatFile, CatCache,
	CatTerminal, CatSignals, CatShm, CatIPC, CatContext, CatIndex,
}

// Accounting tallies bytes read from the dead kernel's memory.
type Accounting struct {
	ByCategory map[string]int64
}

// total sums bytes read across every category.
func (a *Accounting) total() int64 {
	var n int64
	for _, v := range a.ByCategory {
		n += v
	}
	return n
}

// KernelDataBytes returns the Table 4 numerator: main-kernel data read.
func (a *Accounting) KernelDataBytes() int64 {
	var n int64
	for _, c := range kernelDataCats {
		n += a.ByCategory[c]
	}
	return n
}

// PageTableBytes returns the page-table portion.
func (a *Accounting) PageTableBytes() int64 { return a.ByCategory[CatPageTable] }

// PageTableFraction returns page-table bytes over kernel-data bytes.
func (a *Accounting) PageTableFraction() float64 {
	total := a.KernelDataBytes()
	if total == 0 {
		return 0
	}
	return float64(a.ByCategory[CatPageTable]) / float64(total)
}

// reader is the counting accessor the engine parses main memory through.
// It is the one sanctioned path to raw dead-kernel bytes: every read is
// charged to a Table 4 accounting category before it reaches phys.Mem.
//
//owvet:reader
type reader struct {
	mem  *phys.Mem
	acct *Accounting
	cat  string
}

func (r *reader) ReadAt(addr uint64, buf []byte) error {
	r.acct.ByCategory[r.cat] += int64(len(buf))
	return r.mem.ReadAt(addr, buf)
}

// WriteAt is required by layout.MemoryAccessor but the engine never writes
// into the dead kernel's memory.
func (r *reader) WriteAt(addr uint64, buf []byte) error {
	return errors.New("resurrect: main kernel memory is read-only during resurrection")
}

func (r *reader) at(cat string) *reader {
	r.cat = cat
	return r
}

// Candidate is one process found in the dead kernel's process list — the
// list shown to the interactive user, or matched against the resurrection
// configuration file (Section 3.3).
type Candidate struct {
	PID     uint32
	Name    string
	Program string
	// Addr is the descriptor's physical address in the dead kernel.
	Addr uint64
	// CrashProc is the registered crash-procedure name ("" if none).
	CrashProc string
}

// Config is the resurrection configuration: which processes to revive and
// how wide the scan pool fans out.
type Config struct {
	// All resurrects every candidate.
	All bool
	// Names lists process names to resurrect when All is false.
	Names []string
	// Workers is the scan-pool width (0 = NumCPU). Parallelism never
	// changes the Report, the Accounting, the new kernel's state or any
	// rendered table — only the live schedule the machine clock models;
	// see Report.Fingerprint and ScheduleAt.
	Workers int
	// Stream enables streaming resurrection: candidates are admitted in
	// SLO-tier order through a deterministic priority queue (internal/
	// sched) and the install commit is pipelined per candidate behind a
	// tier-then-PID-order cursor, so the first tier-0 process resumes as
	// soon as its own scan and commit are done instead of waiting for the
	// whole batch's scan barrier. Off (the default) preserves the classic
	// scan-then-install batch pass byte for byte.
	Stream bool
	// Tiers maps a program name to its admission tier (0 critical … 2
	// batch) when streaming; programs not listed get DefaultTier. Lookup
	// only — never iterated — so map order cannot leak into the schedule.
	Tiers map[string]int
}

// DefaultTier is the admission tier for programs Config.Tiers does not
// name.
const DefaultTier = sched.TierStandard

// TierOf resolves a program's admission tier.
func (c Config) TierOf(program string) int {
	if t, ok := c.Tiers[program]; ok {
		return sched.ClampTier(t)
	}
	return DefaultTier
}

// Wants reports whether the configuration selects the candidate.
func (c Config) Wants(cand Candidate) bool {
	if c.All {
		return true
	}
	for _, n := range c.Names {
		if n == cand.Name {
			return true
		}
	}
	return false
}

// Outcome is the per-process resurrection result.
type Outcome int

// Outcomes.
const (
	// OutcomeContinued: execution resumes from the interruption point.
	OutcomeContinued Outcome = iota
	// OutcomeRestarted: the crash procedure saved state and the
	// application was started fresh.
	OutcomeRestarted
	// OutcomeGaveUp: the crash procedure abandoned recovery.
	OutcomeGaveUp
	// OutcomeFailed: corruption of main-kernel structures (or a missing
	// resource with no crash procedure) prevented resurrection.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeContinued:
		return "continued"
	case OutcomeRestarted:
		return "restarted"
	case OutcomeGaveUp:
		return "gave-up"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ProcReport describes one process's resurrection.
type ProcReport struct {
	Candidate Candidate
	Outcome   Outcome
	// NewPID is the process's PID under the crash kernel.
	NewPID uint32
	// Missing is the unresurrected-resource bitmask passed to the crash
	// procedure.
	Missing kernel.ResourceMask
	// CrashProcCalled reports whether a crash procedure ran.
	CrashProcCalled bool
	// Err explains a failure.
	Err error
	// PagesCopied / PagesRestaged count resident and swapped pages.
	PagesCopied   int
	PagesRestaged int
	// PagesElided counts resident pages installed by zero-fill instead of
	// copy (the fast path's all-zero elision); PagesDeduped counts pages
	// whose contents were filled from the dedup cache's canonical copy.
	// Both are subsets of PagesCopied.
	PagesElided  int
	PagesDeduped int
	// PagesSpeculated counts resident pages the lazy install mapped
	// copy-on-access from the dead kernel instead of copying (also a
	// subset of PagesCopied); zero for eager installs.
	PagesSpeculated int
	// SavedBytes is the actual copy volume zero elision and dedup avoided:
	// the sum over elided/deduped pages of the bytes their regions cover in
	// the page, not a frame-sized 4 KB per page (a tail page of a
	// non-page-multiple region saves only its live tail).
	SavedBytes int64
	// SpecFallback is the structured attribution when the lazy install
	// abandoned speculation for this process — validation refusal at
	// classify time, or a CRC mismatch on a touch during the crash
	// procedure. Empty for eager installs and clean speculations. It is
	// deliberately excluded from Fingerprint: an all-fallback lazy pass
	// must fingerprint identically to the eager pass it degraded to.
	SpecFallback string
	// DirtyFlushed counts dirty page-cache pages written to disk;
	// FlushExtents counts the block-sorted extents the write-combining
	// queue merged them into (one modeled seek each).
	DirtyFlushed int
	FlushExtents int
	// FlushedPages identifies the dirty page-cache pages this candidate's
	// install wrote back, for the block-layer crash model's orphan
	// accounting: a dead-kernel dirty page resurrection flushed is no
	// orphan. Excluded from Fingerprint — DirtyFlushed/FlushExtents
	// already pin the flush — so the handoff cannot perturb goldens.
	FlushedPages []FlushedPage
	// Timeline records the phases this resurrection went through, with
	// per-phase byte/page counters and the failure (if any) in place.
	Timeline Timeline
}

// FlushedPage names one dirty page-cache page the install flushed.
type FlushedPage struct {
	Path string
	Off  int64
}

// Report is the whole resurrection pass.
type Report struct {
	Candidates []Candidate
	Procs      []ProcReport
	// Acct is the published Table 4 ledger: part of the fingerprint, frozen
	// once Engine.publish has sealed the pass.
	//
	//owvet:sealed
	Acct Accounting
	// Duration is the virtual time of the *serial* schedule: prologue
	// plus the sum of every candidate's scan+install time. It does not
	// depend on Config.Workers (the live parallel schedule is in
	// Parallel), so campaigns stay replayable at any pool width.
	Duration time.Duration
	// Prologue is the serial lead-in before candidates fan out: trace
	// salvage, candidate listing, swap-table resolution.
	Prologue time.Duration
	// PerCandidate is each selected candidate's scan+install virtual
	// time, in stable candidate order — the input ScheduleAt replays.
	PerCandidate []time.Duration
	// PerScan / PerInstall split each candidate's virtual time into its
	// read-only scan and its full install (crash procedure included), in
	// the same order as Procs/PerCandidate. They feed the pipelined-commit
	// schedule model (ScheduleAt for streamed passes, FirstResumeAt for
	// both). Width-independent like PerCandidate.
	PerScan    []time.Duration
	PerInstall []time.Duration
	// Streamed records that this pass ran the streaming (admission-
	// scheduled, pipelined-commit) path; Tiers is then each candidate's
	// admission tier, aligned with Procs. Both are fingerprinted only for
	// streamed passes, so classic-path goldens are untouched.
	Streamed bool
	Tiers    []int
	// IndexUsed / IndexSkipped report index-assisted discovery: entries
	// salvaged from the dead kernel's candidate index, and slots skipped
	// as corrupt or stale (skip-and-count). IndexFallback carries the
	// "index-salvage: …" attribution when the index was present but
	// unusable and discovery fell back to the full process-list walk.
	IndexUsed     int
	IndexSkipped  int
	IndexFallback string
	// Parallel is the live schedule this pass actually executed. It is
	// the only worker-count-dependent block in the report and is
	// excluded from Fingerprint.
	Parallel ParallelStats
	// ScanTrace is the merged per-worker scan event sequence (one event
	// per candidate phase), ordered by candidate-local logical time with
	// ties broken on candidate PID — identical at any worker count.
	ScanTrace []trace.Event
	// FirstTouch collects each demand-fault stall a resumed process paid on
	// first touch of a speculated page (lazy install only), in touch order.
	// Touches happen on the serial post-resume execution path, so the slice
	// is worker-count-independent; it keeps filling after Run returns, as
	// the workload faults pages in. Excluded from Fingerprint — the span
	// plane and Table 6 percentiles pin it through their own goldens.
	FirstTouch []time.Duration
	// Trace is the dead kernel's flight recorder, parsed out of the crash
	// area's ring sub-region (nil when the engine was given no ring).
	Trace *trace.Parsed
}

// Succeeded counts processes that continued or restarted.
func (r *Report) Succeeded() int {
	n := 0
	for _, p := range r.Procs {
		if p.Outcome == OutcomeContinued || p.Outcome == OutcomeRestarted {
			n++
		}
	}
	return n
}

// Engine drives resurrection inside a freshly booted crash kernel.
type Engine struct {
	// K is the crash kernel performing the resurrection.
	K *kernel.Kernel
	// MainGlobals is the dead kernel's globals anchor (the fixed
	// compile-time physical address).
	MainGlobals uint64
	// VerifyCRC enables checksum validation while parsing the dead
	// kernel's records (Section 4's integrity hardening).
	VerifyCRC bool
	// MapPages enables the footnote-3 optimization: resident pages are
	// mapped in place instead of copied, "which would significantly
	// increase the speed of resurrection of large processes".
	MapPages bool
	// ResurrectIPC enables the Section 7 future-work extension: pipes
	// (when their semaphore was free at failure time) and sockets are
	// restored instead of reported as missing. The paper's prototype did
	// not do this; it is off by default.
	ResurrectIPC bool
	// LazyInstall enables the demand-paged install (fastpath.go, lazy.go):
	// validated candidates speculate their non-zero resident pages —
	// mapped copy-on-access from the dead kernel's frames, CRC-validated
	// on first touch, completed by the scheduler's background sweeper —
	// and resume as soon as their resurrection-critical records parse.
	// PerCandidate and Duration then measure time-to-resume (the blocked
	// span) instead of time-to-full-copy; a speculated page that fails
	// validation falls its whole candidate back to the eager full copy.
	LazyInstall bool
	// TraceRegion is the dead kernel's flight-recorder ring (zero region
	// when tracing is off); Run parses it into Report.Trace through the
	// counting reader.
	TraceRegion phys.Region
	// IndexRegion is the dead kernel's candidate index (zero region when
	// the index is off); discovery salvages it through the counting
	// reader and falls back to the full process-list walk when it is
	// missing or corrupt.
	IndexRegion phys.Region
	// Metrics receives the pass's instrumentation (nil disables). Scan
	// workers write concurrently — counter adds only, with per-candidate
	// values that are pure functions of the candidate — and the rest is
	// published serially from the Report, so the registry snapshot is
	// bit-identical at any Workers setting.
	Metrics *metrics.Registry

	rd reader
	// acct is the working copy of the Table 4 ledger. Sealed at
	// Engine.publish: post-seal paths (the lazy resolver/sweeper) account
	// into lazyState's private shard instead.
	//
	//owvet:sealed
	acct Accounting
	// lazy is the speculation table when LazyInstall is on; it outlives Run
	// (registered as K.Spec) so post-resume touches and the scheduler's
	// sweeper can keep resolving pages.
	lazy *lazyState
}

// NewEngine prepares an engine over the crash kernel k.
func NewEngine(k *kernel.Kernel, mainGlobals uint64, verifyCRC bool) *Engine {
	e := &Engine{
		K:           k,
		MainGlobals: mainGlobals,
		VerifyCRC:   verifyCRC,
		acct:        Accounting{ByCategory: make(map[string]int64)},
	}
	e.rd = reader{mem: k.M.Mem, acct: &e.acct}
	return e
}

// parseTime charges the fixed record-parse overhead to the virtual clock.
func (e *Engine) parseTime() {
	e.K.M.Clock.Advance(e.K.Cost().RecordParseOverhead)
}

// ListCandidates walks the dead kernel's process list. A corrupted globals
// anchor or list produces an error: with nothing to anchor on, no process
// can be resurrected.
func (e *Engine) ListCandidates() ([]Candidate, error) {
	g, err := layout.ReadGlobals(e.rd.at(CatGlobals), e.MainGlobals, e.VerifyCRC)
	if err != nil {
		return nil, fmt.Errorf("resurrect: main kernel globals: %w", err)
	}
	e.parseTime()
	var out []Candidate
	cur := g.ProcListHead
	for hops := 0; cur != 0; hops++ {
		if hops > 65536 {
			return out, errors.New("resurrect: process list loop")
		}
		p, err := layout.ReadProc(e.rd.at(CatProc), cur, e.VerifyCRC)
		if err != nil {
			// The rest of the list is unreachable; report what we have.
			return out, fmt.Errorf("resurrect: process record at %#x: %w", cur, err)
		}
		e.parseTime()
		if p.State != layout.ProcZombie {
			out = append(out, Candidate{
				PID:       p.PID,
				Name:      p.Name,
				Program:   p.Program,
				Addr:      cur,
				CrashProc: p.CrashProc,
			})
		}
		cur = p.Next
	}
	return out, nil
}

// MainSwapDevice resolves the dead kernel's swap partition by reading its
// swap-area table and reopening the device by symbolic name (Section 3.3).
func (e *Engine) MainSwapDevice() (devName string, err error) {
	g, err := layout.ReadGlobals(e.rd.at(CatGlobals), e.MainGlobals, e.VerifyCRC)
	if err != nil {
		return "", err
	}
	if g.SwapTable == 0 {
		return "", nil
	}
	t, err := layout.ReadSwapTable(e.rd.at(CatGlobals), g.SwapTable, e.VerifyCRC)
	if err != nil {
		return "", fmt.Errorf("resurrect: swap table: %w", err)
	}
	e.parseTime()
	for _, a := range t.Areas {
		if a.Active {
			return a.Device, nil
		}
	}
	return "", nil
}

// Run performs the full resurrection pass for the configured processes and
// returns the report. The crash kernel must already be booted with working
// memory available (AddFreeFrames).
//
// The pass is pipelined (see scan.go): after a serial prologue, the
// selected candidates fan out over cfg.Workers scan goroutines, each with
// its own counting reader, Accounting shard and virtual-time ledger; the
// shards are then merged with a deterministic reduction (stable candidate
// order, saturating adds) and the plans installed serially. The machine
// clock advances by the parallel schedule — prologue plus the critical-path
// maximum over workers — while Report.Duration keeps the serial sum, so
// every recorded number is identical at any worker count.
func (e *Engine) Run(cfg Config) *Report {
	start := e.K.M.Clock.Now()
	rep := &Report{Acct: Accounting{ByCategory: e.acct.ByCategory}}
	if e.TraceRegion.Frames > 0 {
		// Salvage the dead kernel's flight recorder before touching
		// anything else: it tells the crash kernel what the main kernel
		// was doing when it died.
		rep.Trace = trace.Parse(e.rd.at(CatTrace), e.TraceRegion)
	}
	cands, err := e.discoverCandidates(rep)
	rep.Candidates = cands
	if err != nil && len(cands) == 0 {
		// Anchor corrupt: every selected process fails.
		rep.Duration = e.K.M.Clock.Since(start)
		rep.Prologue = rep.Duration
		rep.Parallel = ParallelStats{Workers: 1, Duration: rep.Duration}
		e.publish(rep)
		return rep
	}
	mainSwapName, _ := e.MainSwapDevice()
	var mainSwap *disk.BlockDevice
	if mainSwapName != "" {
		// One shared handle for all workers; BlockDevice serializes
		// access internally.
		if dev, derr := e.K.M.Bus.Open(mainSwapName); derr == nil {
			mainSwap = dev
		}
	}
	var selected []Candidate
	for _, cand := range cands {
		if cfg.Wants(cand) {
			selected = append(selected, cand)
		}
	}
	if cfg.Stream {
		e.runStream(cfg, rep, selected, mainSwap, start)
		return rep
	}
	workers := cfg.effectiveWorkers(len(selected))
	rep.Prologue = e.K.M.Clock.Since(start)

	// Phase A — parallel scan. The dead kernel's memory is quiescent and
	// the scan is strictly read-only, so candidate i goes to worker
	// i mod workers and each worker decodes its shard concurrently.
	plans := make([]*plan, len(selected))
	shards := make([]*Accounting, workers)
	events := make([][]trace.Event, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = &Accounting{ByCategory: make(map[string]int64)}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := e.newScanner(shards[w], mainSwap)
			for i := w; i < len(selected); i += workers {
				plans[i] = sc.scanOne(selected[i])
			}
			events[w] = sc.events
		}(w)
	}
	wg.Wait()

	// Deterministic reduction: shard accounting folds in with saturating
	// adds (order is irrelevant — addition over disjoint reads), and the
	// per-worker event sequences merge by candidate-local logical time.
	for _, sh := range shards {
		e.acct.absorb(sh)
	}

	// Phase A½ — the install-phase memory fast path (fastpath.go): serial
	// zero/dedup classification in stable candidate order, charging the
	// deferred page-copy time and emitting one fast-path event per
	// candidate. Serial on purpose: which copy becomes canonical must be a
	// pure function of the candidate set, not of scan timing.
	fpEvents := e.classifyPlans(plans)
	rep.ScanTrace = trace.Merge(append(append([][]trace.Event{}, events...), fpEvents)...)

	// Phase B — serial install in stable candidate order. Installs run
	// against a detached clock so their serially-executed virtual time is
	// re-attributed to each candidate's span in the parallel schedule
	// instead of accumulating on the machine clock.
	//
	// The lazy install registers its speculation table as the kernel's
	// resolver first: crash procedures run inside installOne and may touch
	// speculated pages, so resolution must already work mid-install.
	if e.LazyInstall {
		e.lazy = newLazyState(e)
		e.lazy.installing = true
		e.lazy.report = rep
		e.K.Spec = e.lazy
	}
	liveClock := e.K.M.Clock
	scratch := sim.NewClock()
	e.K.M.Clock = scratch
	// perCand is each candidate's *blocked* span — scan plus install time
	// until the process was runnable; totals is scan plus the full install
	// including the crash procedure. Eager installs block to the end, so
	// the two are identical there and all eager observables are unchanged.
	perCand := make([]time.Duration, len(selected))
	totals := make([]time.Duration, len(selected))
	for i, pl := range plans {
		m0 := scratch.Now()
		pl.resumeClock = -1
		rep.Procs = append(rep.Procs, e.installOne(pl))
		totals[i] = pl.scanDur + scratch.Since(m0)
		perCand[i] = totals[i]
		if pl.resumeClock >= 0 {
			// Lazy candidate: it resumed at context install; everything
			// after that (the crash procedure, the policy decision, the
			// deferred page copies) overlaps normal operation.
			perCand[i] = pl.scanDur + (pl.resumeClock - m0)
		}
	}
	e.K.M.Clock = liveClock
	if e.lazy != nil {
		e.lazy.installing = false
	}

	rep.Acct = e.acct
	rep.PerCandidate = perCand
	rep.PerScan = make([]time.Duration, len(plans))
	rep.PerInstall = make([]time.Duration, len(plans))
	for i, pl := range plans {
		rep.PerScan[i] = pl.scanDur
		rep.PerInstall[i] = totals[i] - pl.scanDur
	}
	spans := shardSpans(perCand, workers)
	totalSpans := shardSpans(totals, workers)
	critical := maxSpan(totalSpans)
	// The interruption clock models the parallel schedule: prologue (already
	// on the clock) plus the slowest worker. The machine advances by the
	// *total* critical path — lazy or not, the install work all happened —
	// while Duration sums only the blocked spans, the per-process
	// interruption the paper's tables measure. The serial morph epilogue is
	// charged by core after Run returns.
	e.K.M.Clock.Advance(critical)
	rep.Duration = rep.Prologue + sumSpans(spans)
	rep.Parallel = ParallelStats{
		Workers:      workers,
		PerWorker:    totalSpans,
		CriticalPath: critical,
		Duration:     e.K.M.Clock.Since(start),
	}
	e.publish(rep)
	return rep
}

// satAdd is saturating int64 addition, used when folding accounting shards
// so a (hypothetical) overflow clamps instead of wrapping negative.
func satAdd(a, b int64) int64 {
	if b > 0 && a > math.MaxInt64-b {
		return math.MaxInt64
	}
	if b < 0 && a < math.MinInt64-b {
		return math.MinInt64
	}
	return a + b
}

// absorb folds one worker's accounting shard into a.
func (a *Accounting) absorb(s *Accounting) {
	for cat, v := range s.ByCategory {
		a.ByCategory[cat] = satAdd(a.ByCategory[cat], v)
	}
}

// Fingerprint renders every worker-count-independent part of the report as
// a deterministic string: the determinism tests assert it is byte-identical
// at Workers=1 and Workers=N. Parallel (the live schedule) and Trace (the
// dead ring, compared separately) are deliberately excluded.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "candidates=%d\n", len(r.Candidates))
	for _, c := range r.Candidates {
		fmt.Fprintf(&b, "cand pid=%d name=%s prog=%s addr=%#x crashproc=%s\n",
			c.PID, c.Name, c.Program, c.Addr, c.CrashProc)
	}
	for _, p := range r.Procs {
		fmt.Fprintf(&b, "proc pid=%d outcome=%s newpid=%d missing=%v cpcalled=%v copied=%d elided=%d deduped=%d spec=%d saved=%d restaged=%d flushed=%d extents=%d err=%v\n",
			p.Candidate.PID, p.Outcome, p.NewPID, p.Missing, p.CrashProcCalled,
			p.PagesCopied, p.PagesElided, p.PagesDeduped,
			p.PagesSpeculated, p.SavedBytes,
			p.PagesRestaged, p.DirtyFlushed, p.FlushExtents, p.Err)
		for _, st := range p.Timeline {
			fmt.Fprintf(&b, "  phase=%s pages=%d bytes=%d dur=%v err=%q\n",
				st.Phase, st.Pages, st.Bytes, st.Duration, st.Err)
		}
	}
	cats := make([]string, 0, len(r.Acct.ByCategory))
	for cat := range r.Acct.ByCategory {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		fmt.Fprintf(&b, "acct %s=%d\n", cat, r.Acct.ByCategory[cat])
	}
	fmt.Fprintf(&b, "prologue=%v duration=%v\n", r.Prologue, r.Duration)
	for i, d := range r.PerCandidate {
		fmt.Fprintf(&b, "percand[%d]=%v\n", i, d)
	}
	// Stream/index lines are printed only when those features ran, so every
	// classic-path golden stays byte-identical.
	if r.IndexUsed > 0 || r.IndexSkipped > 0 || r.IndexFallback != "" {
		fmt.Fprintf(&b, "index used=%d skipped=%d fallback=%q\n",
			r.IndexUsed, r.IndexSkipped, r.IndexFallback)
	}
	if r.Streamed {
		for i := range r.PerScan {
			tier := 0
			if i < len(r.Tiers) {
				tier = r.Tiers[i]
			}
			fmt.Fprintf(&b, "admit[%d] tier=%d scan=%v install=%v\n",
				i, tier, r.PerScan[i], r.PerInstall[i])
		}
	}
	for _, ev := range r.ScanTrace {
		fmt.Fprintf(&b, "ev %v\n", ev)
	}
	return b.String()
}

// applyPolicy runs the crash procedure (if registered) and decides the
// final outcome per Table 1.
func (e *Engine) applyPolicy(np *kernel.Process, cand Candidate, pr ProcReport) ProcReport {
	env := &kernel.Env{K: e.K, P: np}
	proc := kernel.LookupCrashProc(cand.CrashProc)
	if cand.CrashProc == "" || proc == nil {
		if pr.Missing != 0 {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("resources not resurrected (%s) and no crash procedure", pr.Missing)
			_ = e.K.Exit(np, 1)
			return pr
		}
		if err := np.Prog.Rehydrate(env); err != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("rehydrate: %w", err)
			_ = e.K.Exit(np, 1)
			return pr
		}
		pr.Outcome = OutcomeContinued
		return pr
	}

	pr.CrashProcCalled = true
	before := e.K.FS.BytesWritten()
	action, err := proc(env, pr.Missing)
	// Charge the crash procedure's disk writes to the virtual clock.
	e.K.M.Clock.Advance(e.K.Cost().DiskWriteCost(e.K.FS.BytesWritten() - before))
	if err != nil {
		pr.Outcome = OutcomeFailed
		pr.Err = fmt.Errorf("crash procedure: %w", err)
		_ = e.K.Exit(np, 1)
		return pr
	}
	switch action {
	case kernel.ActionContinue:
		if rerr := np.Prog.Rehydrate(env); rerr != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("rehydrate: %w", rerr)
			_ = e.K.Exit(np, 1)
			return pr
		}
		pr.Outcome = OutcomeContinued
	case kernel.ActionRestart:
		_ = e.K.Exit(np, 0)
		fresh, rerr := e.K.CreateProcess(cand.Name, cand.Program)
		if rerr != nil {
			pr.Outcome = OutcomeFailed
			pr.Err = fmt.Errorf("restart: %w", rerr)
			return pr
		}
		pr.NewPID = fresh.PID
		pr.Outcome = OutcomeRestarted
	default:
		_ = e.K.Exit(np, 1)
		pr.Outcome = OutcomeGaveUp
	}
	return pr
}
