package resurrect

import (
	"sort"

	"otherworld/internal/metrics"
)

// Histogram bounds for the resurrection metrics. Durations are virtual
// nanoseconds in decade buckets (1µs .. 10s); byte sizes follow the data
// shapes the scan actually moves (a page, a small heap, big app images).
var (
	phaseDurBounds  = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	phaseByteBounds = []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20}
)

// publish records a finished pass into the engine's registry. Everything
// observed here is worker-count-independent by construction — it is all
// derived from the Report's fingerprinted fields (Procs, Timeline,
// PerCandidate, Acct), never from the live parallel schedule — so the
// snapshot stays bit-identical at any pool width.
func (e *Engine) publish(rep *Report) {
	reg := e.Metrics
	if reg == nil {
		return
	}
	reg.Counter("resurrect_runs_total", "resurrection passes executed", nil).Inc()
	for _, p := range rep.Procs {
		reg.Counter("resurrect_candidates_total", "candidates by final outcome",
			metrics.Labels{"outcome": p.Outcome.String()}).Inc()
		for _, st := range p.Timeline {
			l := metrics.Labels{"phase": st.Phase.String()}
			reg.Histogram("resurrect_phase_ns", "virtual time per resurrection phase",
				phaseDurBounds, l).Observe(int64(st.Duration))
			reg.Histogram("resurrect_phase_bytes", "dead-kernel bytes read per resurrection phase",
				phaseByteBounds, l).Observe(st.Bytes)
			if st.Err != "" {
				reg.Counter("resurrect_phase_errors_total", "phases that recorded an error",
					l).Inc()
			}
		}
	}
	for _, d := range rep.PerCandidate {
		reg.Histogram("resurrect_candidate_ns", "per-candidate scan+install virtual time",
			phaseDurBounds, nil).Observe(int64(d))
	}
	cats := make([]string, 0, len(rep.Acct.ByCategory))
	for cat := range rep.Acct.ByCategory {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		reg.Counter("resurrect_read_bytes_total", "dead-kernel bytes read, by Table 4 category",
			metrics.Labels{"category": cat}).Add(rep.Acct.ByCategory[cat])
	}
	reg.Gauge("resurrect_pagetable_fraction",
		"page-table share of main-kernel data read (Table 4)", nil).Set(rep.Acct.PageTableFraction())
	rep.Trace.CollectInto(reg)
}
