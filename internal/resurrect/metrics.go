package resurrect

import (
	"sort"
	"strconv"

	"otherworld/internal/metrics"
	"otherworld/internal/phys"
	"otherworld/internal/sched"
)

// pageBytes is the page size as an int64 for counter arithmetic.
const pageBytes = int64(phys.PageSize)

// Histogram bounds for the resurrection metrics. Durations are virtual
// nanoseconds in decade buckets (1µs .. 10s); byte sizes follow the data
// shapes the scan actually moves (a page, a small heap, big app images).
var (
	phaseDurBounds  = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	phaseByteBounds = []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20}
)

// publish records a finished pass into the engine's registry. Everything
// observed here is worker-count-independent by construction — it is all
// derived from the Report's fingerprinted fields (Procs, Timeline,
// PerCandidate, Acct), never from the live parallel schedule — so the
// snapshot stays bit-identical at any pool width.
//
// This is the ledger's seal point: after it runs, the sealed accounting
// (Engine.acct, Report.Acct) is part of the published fingerprint and must
// not be written again (owvet sealedacct).
//
//owvet:seal
func (e *Engine) publish(rep *Report) {
	reg := e.Metrics
	if reg == nil {
		return
	}
	reg.Counter("resurrect_runs_total", "resurrection passes executed", nil).Inc()
	var elided, deduped, speculated, saved, extents, flushedPages int64
	for _, p := range rep.Procs {
		elided += int64(p.PagesElided)
		deduped += int64(p.PagesDeduped)
		speculated += int64(p.PagesSpeculated)
		saved += p.SavedBytes
		extents += int64(p.FlushExtents)
		flushedPages += int64(p.DirtyFlushed)
		if p.SpecFallback != "" {
			reg.Counter("resurrect_spec_fallbacks_total",
				"candidates whose speculation was abandoned for the eager copy",
				metrics.Labels{"stage": "install"}).Inc()
		}
		reg.Counter("resurrect_candidates_total", "candidates by final outcome",
			metrics.Labels{"outcome": p.Outcome.String()}).Inc()
		for _, st := range p.Timeline {
			l := metrics.Labels{"phase": st.Phase.String()}
			reg.Histogram("resurrect_phase_ns", "virtual time per resurrection phase",
				phaseDurBounds, l).Observe(int64(st.Duration))
			reg.Histogram("resurrect_phase_bytes", "dead-kernel bytes read per resurrection phase",
				phaseByteBounds, l).Observe(st.Bytes)
			if st.Err != "" {
				reg.Counter("resurrect_phase_errors_total", "phases that recorded an error",
					l).Inc()
			}
		}
	}
	for _, d := range rep.PerCandidate {
		reg.Histogram("resurrect_candidate_ns", "per-candidate scan+install virtual time",
			phaseDurBounds, nil).Observe(int64(d))
	}
	cats := make([]string, 0, len(rep.Acct.ByCategory))
	for cat := range rep.Acct.ByCategory {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		reg.Counter("resurrect_read_bytes_total", "dead-kernel bytes read, by Table 4 category",
			metrics.Labels{"category": cat}).Add(rep.Acct.ByCategory[cat])
	}
	reg.Counter("resurrect_pages_elided_total",
		"all-zero pages installed by zero-fill instead of copy", nil).Add(elided)
	reg.Counter("resurrect_pages_deduped_total",
		"pages filled from the dedup cache's canonical copy", nil).Add(deduped)
	reg.Counter("resurrect_pages_speculated_total",
		"pages the lazy install mapped copy-on-access instead of copying", nil).Add(speculated)
	// The saved-bytes counter adds the *actual* copy volume avoided, summed
	// from the per-page region coverage the classification computed — not
	// (elided+deduped)*PageSize, which overcounted the partial tail page of
	// every non-page-multiple region.
	reg.Counter("resurrect_fastpath_saved_bytes_total",
		"install-phase copy bytes avoided by zero elision and dedup", nil).
		Add(saved)
	reg.Counter("resurrect_flush_pages_total",
		"dirty page-cache pages flushed through the write-combining queue", nil).Add(flushedPages)
	reg.Counter("resurrect_flush_extents_total",
		"block-sorted extents the write-combining queue issued (one seek each)", nil).Add(extents)
	reg.Gauge("resurrect_pagetable_fraction",
		"page-table share of main-kernel data read (Table 4)", nil).Set(rep.Acct.PageTableFraction())
	// Index-assisted discovery and streaming admission, both derived only
	// from fingerprinted report fields so the snapshot stays width-stable.
	if rep.IndexUsed > 0 || rep.IndexSkipped > 0 || rep.IndexFallback != "" {
		reg.Counter("resurrect_index_entries_total",
			"candidates discovered from the salvaged index", nil).Add(int64(rep.IndexUsed))
		reg.Counter("resurrect_index_skipped_total",
			"index slots skipped as corrupt or stale (skip-and-count)", nil).Add(int64(rep.IndexSkipped))
		if rep.IndexFallback != "" {
			reg.Counter("resurrect_index_fallbacks_total",
				"discovery passes that fell back to the full process-list walk", nil).Inc()
		}
	}
	if rep.Streamed {
		var admitted [sched.NumTiers]int64
		for _, t := range rep.Tiers {
			admitted[sched.ClampTier(t)]++
		}
		for t := 0; t < sched.NumTiers; t++ {
			if admitted[t] == 0 {
				continue
			}
			l := metrics.Labels{"tier": strconv.Itoa(t)}
			reg.Counter("resurrect_admit_total",
				"candidates admitted to the streaming pass, by SLO tier", l).Add(admitted[t])
			if d, ok := rep.TierFirstResumeAt(CanonicalWorkers, t); ok {
				reg.Gauge("resurrect_admit_first_resume_ns",
					"modeled time-to-first-resume per tier at the canonical width", l).Set(float64(d))
			}
		}
	}
	rep.Trace.CollectInto(reg)
}
