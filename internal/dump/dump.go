// Package dump implements post-mortem analysis of KDump-style crash dumps:
// the sparse physical-memory images written by core.HandleFailureKDump.
// Because all kernel state lives as self-describing records at known
// anchors, a dump can be parsed offline into the same process inventory the
// crash kernel sees during resurrection — the debugging workflow that
// motivated KDump, reproduced on top of this repository's formats.
package dump

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"otherworld/internal/layout"
	"otherworld/internal/phys"
)

// Image is a parsed sparse dump: a read-only view of the dead machine's
// physical memory. Missing (free) frames read as zeroes, exactly as the
// capture kernel skipped them.
type Image struct {
	frames map[uint64][]byte
	// MaxFrame is the highest frame present.
	MaxFrame uint64
}

// recordHeader is the sparse-dump framing: frame number + payload length.
const recordHeader = 12

// Parse decodes a sparse dump image.
func Parse(data []byte) (*Image, error) {
	img := &Image{frames: make(map[uint64][]byte)}
	off := 0
	for off < len(data) {
		if off+recordHeader > len(data) {
			return nil, fmt.Errorf("dump: truncated record header at %d", off)
		}
		frame := binary.LittleEndian.Uint64(data[off:])
		n := binary.LittleEndian.Uint32(data[off+8:])
		off += recordHeader
		if n > phys.PageSize {
			return nil, fmt.Errorf("dump: frame %d payload %d exceeds page size", frame, n)
		}
		if off+int(n) > len(data) {
			return nil, fmt.Errorf("dump: truncated frame %d payload", frame)
		}
		page := make([]byte, n)
		copy(page, data[off:off+int(n)])
		img.frames[frame] = page
		if frame > img.MaxFrame {
			img.MaxFrame = frame
		}
		off += int(n)
	}
	return img, nil
}

// Frames returns the number of captured frames.
func (img *Image) Frames() int { return len(img.frames) }

// ReadAt implements layout.MemoryAccessor over the sparse image.
func (img *Image) ReadAt(addr uint64, buf []byte) error {
	for i := range buf {
		a := addr + uint64(i)
		frame := a / phys.PageSize
		off := a % phys.PageSize
		page, ok := img.frames[frame]
		if !ok || int(off) >= len(page) {
			buf[i] = 0
			continue
		}
		buf[i] = page[off]
	}
	return nil
}

// WriteAt rejects writes: dumps are immutable evidence.
func (img *Image) WriteAt(addr uint64, buf []byte) error {
	return fmt.Errorf("dump: image is read-only")
}

// ProcInfo summarizes one process found in the dump.
type ProcInfo struct {
	PID       uint32
	Name      string
	Program   string
	CrashProc string
	// ResidentPages / SwappedPages from walking the page tables.
	ResidentPages int
	SwappedPages  int
	// OpenFiles lists path:offset pairs.
	OpenFiles []string
	// HasTerminal, Sockets, Pipes, ShmSegments summarize resources.
	HasTerminal bool
	Sockets     int
	Pipes       int
	ShmSegments int
	// InSyscall reports the thread died inside a system call.
	InSyscall bool
	SyscallNo uint16
}

// Report is the post-mortem inventory.
type Report struct {
	BootCount uint32
	Procs     []ProcInfo
	// Warnings lists structures that failed validation (corruption the
	// fault injection caused before death).
	Warnings []string
}

// Inspect walks the dump from the fixed globals anchor, exactly as the
// crash kernel does, and inventories every process.
func Inspect(img *Image, globalsAddr uint64) (*Report, error) {
	rep := &Report{}
	g, err := layout.ReadGlobals(img, globalsAddr, true)
	if err != nil {
		return nil, fmt.Errorf("dump: globals anchor: %w", err)
	}
	rep.BootCount = g.BootCount
	cur := g.ProcListHead
	for hops := 0; cur != 0 && hops < 65536; hops++ {
		p, err := layout.ReadProc(img, cur, true)
		if err != nil {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("process record at %#x: %v", cur, err))
			break
		}
		info := ProcInfo{PID: p.PID, Name: p.Name, Program: p.Program, CrashProc: p.CrashProc}
		info.HasTerminal = p.Terminal != 0

		//owvet:allow errdrop: the inventory is best-effort; a corrupt context record just leaves the syscall fields blank
		if ctx, ok, _ := layout.ReadContext(img, p.KStack); ok {
			info.InSyscall = ctx.InSyscall
			info.SyscallNo = ctx.SyscallNo
		}

		// Page tables.
		if p.PageDir != 0 {
			resident, swapped := countPages(img, p.PageDir)
			info.ResidentPages, info.SwappedPages = resident, swapped
		}

		// Open files.
		fcur := p.Files
		for fh := 0; fcur != 0 && fh < 4096; fh++ {
			rec, err := layout.ReadFileRec(img, fcur, true)
			if err != nil {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("pid %d file record: %v", p.PID, err))
				break
			}
			info.OpenFiles = append(info.OpenFiles, fmt.Sprintf("%s@%d", rec.Path, rec.Offset))
			fcur = rec.Next
		}
		sort.Strings(info.OpenFiles)

		info.Sockets = countList(img, p.Sockets, func(a uint64) (uint64, error) {
			s, err := layout.ReadSocket(img, a, true)
			if err != nil {
				return 0, err
			}
			return s.Next, nil
		})
		info.Pipes = countList(img, p.Pipes, func(a uint64) (uint64, error) {
			s, err := layout.ReadPipe(img, a, true)
			if err != nil {
				return 0, err
			}
			return s.Next, nil
		})
		info.ShmSegments = countList(img, p.Shm, func(a uint64) (uint64, error) {
			s, err := layout.ReadShm(img, a, true)
			if err != nil {
				return 0, err
			}
			return s.Next, nil
		})

		rep.Procs = append(rep.Procs, info)
		cur = p.Next
	}
	return rep, nil
}

// countPages walks a two-level page table in the dump.
func countPages(img *Image, pageDir uint64) (resident, swapped int) {
	for dir := 0; dir < layout.DirEntries; dir++ {
		var entBuf [8]byte
		if img.ReadAt(pageDir+uint64(dir)*layout.PTESize, entBuf[:]) != nil {
			return resident, swapped
		}
		ent := binary.LittleEndian.Uint64(entBuf[:])
		if ent == 0 || ent%phys.PageSize != 0 {
			continue
		}
		ptPage := make([]byte, phys.PageSize)
		if img.ReadAt(ent, ptPage) != nil {
			continue
		}
		for t := 0; t < layout.PTEsPerPage; t++ {
			pte := layout.PTE(binary.LittleEndian.Uint64(ptPage[t*8:]))
			switch {
			case pte.Present():
				resident++
			case pte.Swapped():
				swapped++
			}
		}
	}
	return resident, swapped
}

// countList walks a record chain, stopping on corruption.
func countList(img *Image, head uint64, next func(uint64) (uint64, error)) int {
	n := 0
	cur := head
	for hops := 0; cur != 0 && hops < 4096; hops++ {
		nx, err := next(cur)
		if err != nil {
			return n
		}
		n++
		cur = nx
	}
	return n
}

// Render formats the inventory like a crash(8)-style summary.
func Render(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash dump: kernel generation %d, %d processes\n", rep.BootCount, len(rep.Procs))
	for _, p := range rep.Procs {
		fmt.Fprintf(&b, "  pid %-4d %-12s program=%-12s pages=%d(+%d swapped)",
			p.PID, p.Name, p.Program, p.ResidentPages, p.SwappedPages)
		if p.InSyscall {
			fmt.Fprintf(&b, " in-syscall=%d", p.SyscallNo)
		}
		if p.CrashProc != "" {
			fmt.Fprintf(&b, " crashproc=%s", p.CrashProc)
		}
		fmt.Fprintln(&b)
		if len(p.OpenFiles) > 0 {
			fmt.Fprintf(&b, "           files: %s\n", strings.Join(p.OpenFiles, ", "))
		}
		if p.Sockets+p.Pipes+p.ShmSegments > 0 || p.HasTerminal {
			fmt.Fprintf(&b, "           resources: sockets=%d pipes=%d shm=%d terminal=%v\n",
				p.Sockets, p.Pipes, p.ShmSegments, p.HasTerminal)
		}
	}
	for _, w := range rep.Warnings {
		fmt.Fprintf(&b, "  WARNING: %s\n", w)
	}
	return b.String()
}
