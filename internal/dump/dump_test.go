package dump_test

import (
	"strings"
	"testing"

	_ "otherworld/internal/apps" // register the paper's applications

	"otherworld/internal/core"
	"otherworld/internal/dump"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
	"otherworld/internal/workload"
)

func crashAndDump(t *testing.T) (*core.Machine, *dump.Image) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 192 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = 17
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	d := workload.NewMySQLDriver(3)
	if err := d.Start(m); err != nil {
		t.Fatal(err)
	}
	workload.RunUntilIdle(m, d, 60, 3000)
	if err := m.K.InjectOops("x"); err == nil {
		t.Fatal("no panic")
	}
	out, err := m.HandleFailureKDump("/var/crash/vmcore")
	if err != nil || out.Transfer != core.ResultRecovered {
		t.Fatalf("kdump: %v %v", out, err)
	}
	data, err := m.FS.ReadFile("/var/crash/vmcore")
	if err != nil {
		t.Fatal(err)
	}
	img, err := dump.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return m, img
}

func TestInspectFindsProcesses(t *testing.T) {
	_, img := crashAndDump(t)
	if img.Frames() == 0 {
		t.Fatal("empty image")
	}
	rep, err := dump.Inspect(img, kernel.GlobalsAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Procs) != 1 {
		t.Fatalf("procs = %d", len(rep.Procs))
	}
	p := rep.Procs[0]
	if p.Name != "mysqld" || p.Program != "mysqld" {
		t.Fatalf("proc = %+v", p)
	}
	if p.CrashProc == "" {
		t.Fatal("crash procedure registration missing from dump")
	}
	if p.ResidentPages == 0 {
		t.Fatal("no resident pages counted")
	}
	if p.Sockets != 1 {
		t.Fatalf("sockets = %d", p.Sockets)
	}
	out := dump.Render(rep)
	if !strings.Contains(out, "mysqld") || !strings.Contains(out, "sockets=1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	m, _ := crashAndDump(t)
	data, err := m.FS.ReadFile("/var/crash/vmcore")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dump.Parse(data[:len(data)-100]); err == nil {
		t.Fatal("truncated image should fail to parse")
	}
	if _, err := dump.Parse(data[:5]); err == nil {
		t.Fatal("truncated header should fail to parse")
	}
}

func TestImageIsReadOnly(t *testing.T) {
	_, img := crashAndDump(t)
	if err := img.WriteAt(0, []byte{1}); err == nil {
		t.Fatal("dumps must be immutable")
	}
}

func TestMissingFramesReadZero(t *testing.T) {
	img, err := dump.Parse(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0xFF, 0xFF}
	if err := img.ReadAt(12345, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatal("missing frames should read as zeroes")
	}
}
