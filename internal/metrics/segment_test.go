package metrics

import (
	"strings"
	"testing"

	"otherworld/internal/phys"
)

// segMem builds a small memory with a metrics region at its tail.
func segMem(frames int) (*phys.Mem, phys.Region) {
	m := phys.NewMem((frames + 8) * phys.PageSize)
	return m, phys.Region{Start: 8, Frames: frames}
}

func TestSegmentRoundtrip(t *testing.T) {
	m, reg := segMem(4)
	s := sampleRegistry().Snapshot()
	pages, dropped, err := WriteSegment(m, reg, s)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 1 || dropped != 0 {
		t.Fatalf("pages=%d dropped=%d", pages, dropped)
	}
	ps := ParseSegment(m, reg)
	if ps.Valid != 1 || ps.Corrupted != 0 || ps.Empty != 3 {
		t.Fatalf("valid=%d corrupted=%d empty=%d", ps.Valid, ps.Corrupted, ps.Empty)
	}
	if ps.Snapshot.LogicalNowNS != s.LogicalNowNS {
		t.Fatalf("logical now = %d, want %d", ps.Snapshot.LogicalNowNS, s.LogicalNowNS)
	}
	// Help strings are not persisted; compare fingerprints (help-free).
	if ps.Snapshot.Fingerprint() != s.Fingerprint() {
		t.Fatalf("roundtrip changed points:\n%s\nvs\n%s", ps.Snapshot.Fingerprint(), s.Fingerprint())
	}
}

// bigRegistry overflows one page so the segment spans several.
func bigRegistry() *Registry {
	r := NewRegistry()
	r.SetNow(77)
	for i := 0; i < 300; i++ {
		r.Counter("series_total", "", Labels{"idx": strings.Repeat("x", 20) + string(rune('a'+i%26)) + itoa(i)}).Add(int64(i + 1))
	}
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSegmentMultiPage(t *testing.T) {
	m, reg := segMem(8)
	s := bigRegistry().Snapshot()
	pages, dropped, err := WriteSegment(m, reg, s)
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 || dropped != 0 {
		t.Fatalf("expected a multi-page segment, got pages=%d dropped=%d", pages, dropped)
	}
	ps := ParseSegment(m, reg)
	if ps.Valid != pages || ps.Corrupted != 0 {
		t.Fatalf("valid=%d corrupted=%d want valid=%d", ps.Valid, ps.Corrupted, pages)
	}
	if ps.Snapshot.Fingerprint() != s.Fingerprint() {
		t.Fatal("multi-page roundtrip changed points")
	}
}

func TestSegmentCorruptionCountedNotFatal(t *testing.T) {
	m, reg := segMem(8)
	s := bigRegistry().Snapshot()
	pages, _, err := WriteSegment(m, reg, s)
	if err != nil {
		t.Fatal(err)
	}
	if pages < 3 {
		t.Fatalf("need >=3 pages for this test, got %d", pages)
	}
	// A wild write lands mid-payload on the second page.
	if err := m.WriteAt(phys.FrameAddr(reg.Start+1)+200, []byte("!!!!")); err != nil {
		t.Fatal(err)
	}
	// Another destroys the third page's magic entirely.
	if err := m.WriteAt(phys.FrameAddr(reg.Start+2), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	ps := ParseSegment(m, reg)
	if ps.Corrupted != 2 {
		t.Fatalf("corrupted = %d, want 2", ps.Corrupted)
	}
	if ps.Valid != pages-2 {
		t.Fatalf("valid = %d, want %d", ps.Valid, pages-2)
	}
	if len(ps.Snapshot.Points) == 0 {
		t.Fatal("surviving pages should still yield points")
	}
	// Damage costs exactly the points on the damaged pages.
	if len(ps.Snapshot.Points) >= 300 {
		t.Fatalf("corruption lost nothing? %d points", len(ps.Snapshot.Points))
	}
}

func TestSegmentStaleGenerationFiltered(t *testing.T) {
	m, reg := segMem(4)
	old := NewRegistry()
	old.SetNow(100)
	old.Counter("old_total", "", nil).Add(5)
	if _, _, err := WriteSegment(m, reg, old.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Simulate a partial overwrite: the new flush writes only page 0 and
	// the old page 1 survives. Craft that by writing the old segment into
	// pages shifted by one, then the new one at page 0 only.
	oldPage := make([]byte, phys.PageSize)
	if err := m.ReadAt(phys.FrameAddr(reg.Start), oldPage); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(phys.FrameAddr(reg.Start+1), oldPage); err != nil {
		t.Fatal(err)
	}
	fresh := NewRegistry()
	fresh.SetNow(200)
	fresh.Counter("new_total", "", nil).Add(9)
	one := phys.Region{Start: reg.Start, Frames: 1}
	if _, _, err := WriteSegment(m, one, fresh.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ps := ParseSegment(m, reg)
	if ps.Valid != 2 {
		t.Fatalf("valid = %d, want 2", ps.Valid)
	}
	if ps.Snapshot.LogicalNowNS != 200 {
		t.Fatalf("logical now = %d, want newest generation", ps.Snapshot.LogicalNowNS)
	}
	if ps.Snapshot.Get("old_total", nil) != nil {
		t.Fatal("stale-generation points leaked into the snapshot")
	}
	if p := ps.Snapshot.Get("new_total", nil); p == nil || p.Value != 9 {
		t.Fatalf("fresh generation missing: %+v", p)
	}
}

func TestSegmentRegionExhaustionDrops(t *testing.T) {
	m, _ := segMem(8)
	tiny := phys.Region{Start: 8, Frames: 1}
	s := bigRegistry().Snapshot()
	pages, dropped, err := WriteSegment(m, tiny, s)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 1 || dropped == 0 {
		t.Fatalf("pages=%d dropped=%d, want 1 page and drops", pages, dropped)
	}
	ps := ParseSegment(m, tiny)
	if ps.Valid != 1 {
		t.Fatalf("valid=%d", ps.Valid)
	}
	if got := len(ps.Snapshot.Points) + dropped; got != len(s.Points) {
		t.Fatalf("kept %d + dropped %d != total %d", len(ps.Snapshot.Points), dropped, len(s.Points))
	}
}

func TestSegmentZeroFrames(t *testing.T) {
	m, _ := segMem(1)
	s := sampleRegistry().Snapshot()
	pages, dropped, err := WriteSegment(m, phys.Region{Start: 8, Frames: 0}, s)
	if err != nil || pages != 0 || dropped != len(s.Points) {
		t.Fatalf("pages=%d dropped=%d err=%v", pages, dropped, err)
	}
}

func TestSegmentProtectedWriteErrors(t *testing.T) {
	m, reg := segMem(2)
	if err := m.Protect(reg.Start, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := WriteSegment(m, reg, sampleRegistry().Snapshot()); err == nil {
		t.Fatal("write into a protected frame must surface the fault")
	}
}

// TestSegmentOverwriteShrinks proves the zero-fill: a second, smaller flush
// must not leave pages of the first one parseable.
func TestSegmentOverwriteShrinks(t *testing.T) {
	m, reg := segMem(8)
	if _, _, err := WriteSegment(m, reg, bigRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	small := NewRegistry()
	small.SetNow(1)
	small.Counter("only_total", "", nil).Inc()
	if _, _, err := WriteSegment(m, reg, small.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ps := ParseSegment(m, reg)
	if ps.Valid != 1 || ps.Corrupted != 0 {
		t.Fatalf("valid=%d corrupted=%d after shrink", ps.Valid, ps.Corrupted)
	}
	// 2 points: only_total plus the always-present conflicts self-metric.
	if len(ps.Snapshot.Points) != 2 || ps.Snapshot.Get("only_total", nil) == nil {
		t.Fatalf("stale points resurrected: %+v", ps.Snapshot.Points)
	}
}

func TestScanSegmentFindsPagesAnywhere(t *testing.T) {
	m, reg := segMem(4)
	s := sampleRegistry().Snapshot()
	if _, _, err := WriteSegment(m, reg, s); err != nil {
		t.Fatal(err)
	}
	ps := ScanSegment(m, m.NumFrames())
	if ps.Valid != 1 || ps.Pages != 1 {
		t.Fatalf("scan: valid=%d pages=%d", ps.Valid, ps.Pages)
	}
	if ps.Snapshot.Fingerprint() != s.Fingerprint() {
		t.Fatal("scan recovered different points")
	}
	// Non-segment noise elsewhere in memory must not confuse the scan.
	if err := m.WriteAt(phys.FrameAddr(2), []byte("unrelated data")); err != nil {
		t.Fatal(err)
	}
	if got := ScanSegment(m, m.NumFrames()); got.Valid != 1 || got.Pages != 1 {
		t.Fatalf("noise counted: valid=%d pages=%d", got.Valid, got.Pages)
	}
}

func TestSegmentOversizeRecordDropped(t *testing.T) {
	m, reg := segMem(2)
	r := NewRegistry()
	r.Counter(strings.Repeat("n", SegPayloadCap), "", nil).Inc() // cannot fit any page
	r.Counter("fits_total", "", nil).Inc()
	pages, dropped, err := WriteSegment(m, reg, r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	ps := ParseSegment(m, reg)
	if ps.Snapshot.Get("fits_total", nil) == nil {
		t.Fatal("fitting point lost alongside the oversize one")
	}
	_ = pages
}
