// Package metrics is Otherworld's deterministic observability plane: a
// logical-clock-driven registry of counters, gauges and fixed-bucket
// histograms whose snapshots are a pure function of the simulation — no
// wall clock, no map-iteration-order leaks, no float accumulation in any
// concurrently-written instrument.
//
// The registry is built for the resurrection scan pool: integer adds under
// one mutex are commutative, so concurrent workers produce bit-identical
// snapshots at any pool width, the same stable-order/saturating-add
// discipline as the engine's Accounting shards. Whole registries can also
// be merged shard-style with Absorb.
//
// Snapshots persist across the microreboot boundary: segment.go packs them
// into CRC-framed pages beside the flight-recorder ring in the crash
// reservation's unprotected tail, so the post-microreboot kernel (or an
// offline dump reader) can report what the dead kernel measured — the same
// pstore-style trick as internal/trace, applied to measurements instead of
// events. ReHype-style recovery work lives or dies on measuring the
// recovery path itself; this package is that instrument.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Labels attaches dimensions to a metric (e.g. {"phase": "page-copy"}).
// Label sets are canonicalized by sorted key, so two maps with the same
// contents always address the same series.
type Labels map[string]string

// Kind discriminates instrument types.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically accumulated int64. Counters are the
	// only instrument the scan pool writes concurrently; integer addition
	// commutes, so worker interleaving cannot change a snapshot.
	KindCounter Kind = iota + 1
	// KindGauge is a float64 level, set serially (collectors, cost-model
	// constants). Gauges are never written from the scan pool: float
	// addition does not commute, so a concurrently-accumulated float
	// would break the bit-identical-at-any-width invariant.
	KindGauge
	// KindHistogram is a fixed-bound int64 distribution. Bounds are
	// fixed at registration so shard merges are positionwise adds.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// labelPair is one canonicalized label.
type labelPair struct{ k, v string }

// canonLabels flattens a label map into a key-sorted pair list — the one
// place a map is ranged, immediately followed by the sort that makes the
// result order-independent.
func canonLabels(ls Labels) []labelPair {
	if len(ls) == 0 {
		return nil
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]labelPair, 0, len(keys))
	for _, k := range keys {
		out = append(out, labelPair{k, ls[k]})
	}
	return out
}

// labelSuffix renders sorted pairs as `{k=v,...}` ("" for none).
func labelSuffix(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// metric is one registered series. All fields are guarded by the owning
// registry's mutex.
type metric struct {
	name  string
	help  string
	pairs []labelPair
	id    string // name + labelSuffix: the registry key and sort key
	kind  Kind

	value int64   // counter
	gauge float64 // gauge

	bounds   []int64 // histogram upper bounds, sorted, deduplicated
	buckets  []int64 // non-cumulative per-bound counts
	overflow int64   // observations above the last bound
	sum      int64
	count    int64
}

func (m *metric) clone() *metric {
	c := *m
	c.bounds = append([]int64(nil), m.bounds...)
	c.buckets = append([]int64(nil), m.buckets...)
	c.pairs = append([]labelPair(nil), m.pairs...)
	return &c
}

// Registry holds a set of metrics under one mutex. A nil *Registry is a
// valid no-op sink (like a nil *trace.Ring), so instrumented code never
// checks whether metrics are enabled.
type Registry struct {
	mu         sync.Mutex
	by         map[string]*metric
	logicalNow int64
	conflicts  int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*metric)}
}

// SetNow stamps the registry with the simulation's logical clock (virtual
// nanoseconds since power-on). It feeds Snapshot.LogicalNowNS; it is never
// read from the host clock.
func (r *Registry) SetNow(ns int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.logicalNow = ns
	r.mu.Unlock()
}

// get registers or fetches a series under the lock. A kind or bucket-bound
// conflict with an existing registration returns a detached series (writes
// vanish) and bumps the conflict counter — mismatched instruments must not
// corrupt each other, and a registry write path must never panic.
func (r *Registry) get(name, help string, kind Kind, bounds []int64, ls Labels) *metric {
	pairs := canonLabels(ls)
	id := name + labelSuffix(pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.by[id]
	if m == nil {
		m = &metric{name: name, help: help, pairs: pairs, id: id, kind: kind, bounds: bounds}
		if kind == KindHistogram {
			m.buckets = make([]int64, len(bounds))
		}
		r.by[id] = m
		return m
	}
	if m.kind != kind || (kind == KindHistogram && !equalBounds(m.bounds, bounds)) {
		r.conflicts++
		d := &metric{name: name, pairs: pairs, id: id, kind: kind, bounds: bounds}
		if kind == KindHistogram {
			d.buckets = make([]int64, len(bounds))
		}
		return d
	}
	if m.help == "" {
		m.help = help
	}
	return m
}

// Counter is a handle to a counter series. The zero value is a no-op.
type Counter struct {
	r *Registry
	m *metric
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, ls Labels) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r, r.get(name, help, KindCounter, nil, ls)}
}

// Add accumulates n (saturating). Non-positive deltas are ignored:
// counters are monotone within a kernel generation.
func (c Counter) Add(n int64) {
	if c.m == nil || n <= 0 {
		return
	}
	c.r.mu.Lock()
	c.m.value = satAdd(c.m.value, n)
	c.r.mu.Unlock()
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// SetTotal overwrites the counter with an absolute total, for
// collector-style sources that already maintain their own tally
// (phys.Mem.Stats, disk device counters, kernel perf counters). Totals may
// go down across kernel generations — that is an ordinary counter reset.
func (c Counter) SetTotal(v int64) {
	if c.m == nil {
		return
	}
	c.r.mu.Lock()
	c.m.value = v
	c.r.mu.Unlock()
}

// Gauge is a handle to a gauge series. The zero value is a no-op.
type Gauge struct {
	r *Registry
	m *metric
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, ls Labels) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r, r.get(name, help, KindGauge, nil, ls)}
}

// Set overwrites the gauge level. Gauges must only be set from serial
// sections (see KindGauge).
func (g Gauge) Set(v float64) {
	if g.m == nil {
		return
	}
	g.r.mu.Lock()
	g.m.gauge = v
	g.r.mu.Unlock()
}

// Histogram is a handle to a histogram series. The zero value is a no-op.
type Histogram struct {
	r *Registry
	m *metric
}

// Histogram registers (or fetches) a histogram with the given inclusive
// upper bounds ("le" semantics). Bounds are sorted and deduplicated;
// re-registering the same series with different bounds detaches (see get).
func (r *Registry) Histogram(name, help string, bounds []int64, ls Labels) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{r, r.get(name, help, KindHistogram, sanitizeBounds(bounds), ls)}
}

// Observe records one int64 sample.
func (h Histogram) Observe(v int64) {
	if h.m == nil {
		return
	}
	h.r.mu.Lock()
	m := h.m
	m.count++
	m.sum = satAdd(m.sum, v)
	i := sort.Search(len(m.bounds), func(i int) bool { return m.bounds[i] >= v })
	if i < len(m.bounds) {
		m.buckets[i]++
	} else {
		m.overflow++
	}
	h.r.mu.Unlock()
}

// sanitizeBounds returns a sorted, deduplicated copy of bounds.
func sanitizeBounds(bounds []int64) []int64 {
	if len(bounds) == 0 {
		return nil
	}
	out := append([]int64(nil), bounds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// satAdd is saturating int64 addition — the same clamp the resurrection
// engine uses when folding Accounting shards, so a hypothetical overflow
// cannot wrap negative and break monotonicity.
func satAdd(a, b int64) int64 {
	if b > 0 && a > math.MaxInt64-b {
		return math.MaxInt64
	}
	if b < 0 && a < math.MinInt64-b {
		return math.MinInt64
	}
	return a + b
}

// Absorb folds a donor registry into r shard-style: counters and histogram
// cells add (saturating), gauges keep the maximum, the logical clock keeps
// the later stamp. The donor is read under its own lock first (never
// nested with r's), and the fold visits donors in sorted-id order; since
// every combining operator is commutative and associative, any absorb
// order over disjoint shards produces the same registry. Kind or bound
// conflicts count on r.conflicts and skip the series.
func (r *Registry) Absorb(o *Registry) {
	if r == nil || o == nil || r == o {
		return
	}
	o.mu.Lock()
	donors := make([]*metric, 0, len(o.by))
	for _, m := range o.by {
		donors = append(donors, m.clone())
	}
	donorConflicts := o.conflicts
	donorNow := o.logicalNow
	o.mu.Unlock()
	sort.Slice(donors, func(i, j int) bool { return donors[i].id < donors[j].id })

	r.mu.Lock()
	defer r.mu.Unlock()
	r.conflicts = satAdd(r.conflicts, donorConflicts)
	if donorNow > r.logicalNow {
		r.logicalNow = donorNow
	}
	for _, d := range donors {
		m := r.by[d.id]
		if m == nil {
			r.by[d.id] = d
			continue
		}
		if m.kind != d.kind || (d.kind == KindHistogram && !equalBounds(m.bounds, d.bounds)) {
			r.conflicts++
			continue
		}
		switch d.kind {
		case KindCounter:
			m.value = satAdd(m.value, d.value)
		case KindGauge:
			if d.gauge > m.gauge {
				m.gauge = d.gauge
			}
		case KindHistogram:
			for i := range m.buckets {
				m.buckets[i] = satAdd(m.buckets[i], d.buckets[i])
			}
			m.overflow = satAdd(m.overflow, d.overflow)
			m.sum = satAdd(m.sum, d.sum)
			m.count = satAdd(m.count, d.count)
		}
		if m.help == "" {
			m.help = d.help
		}
	}
}

// Conflicts returns how many mismatched registrations or merges were
// refused so far.
func (r *Registry) Conflicts() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conflicts
}
