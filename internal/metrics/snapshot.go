package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the versioned snapshot schema identifier. Bump the
// suffix on any incompatible change to the JSON shape.
const SchemaVersion = "otherworld-metrics/1"

// Bucket is one histogram cell: observations with value <= Le that fell in
// no earlier bucket (non-cumulative; the Prometheus exposition cumulates).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Point is one serialized series.
type Point struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter total.
	Value int64 `json:"value,omitempty"`
	// Gauge is the gauge level.
	Gauge float64 `json:"gauge,omitempty"`
	// Sum/Count/Overflow/Buckets are the histogram cells.
	Sum      int64    `json:"sum,omitempty"`
	Count    int64    `json:"count,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// ID returns the canonical series identity: name plus sorted labels.
func (p Point) ID() string {
	return p.Name + labelSuffix(canonLabels(p.Labels))
}

// Snapshot is a deep, sorted copy of a registry at one logical instant.
type Snapshot struct {
	Schema string `json:"schema"`
	// LogicalNowNS is the virtual clock at snapshot time. It is part of
	// the snapshot but excluded from Fingerprint: after a recovery the
	// machine clock reflects the live parallel schedule, which is the one
	// legitimately worker-count-dependent quantity (exactly like
	// resurrect.Report excluding ParallelStats from its fingerprint).
	LogicalNowNS int64   `json:"logical_now_ns"`
	Points       []Point `json:"metrics"`
}

// Snapshot captures every registered series, sorted by series identity,
// plus the registry's own conflict counter. Safe to call concurrently with
// writers; a nil registry yields an empty (but well-formed) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Schema: SchemaVersion}
	if r == nil {
		return s
	}
	r.mu.Lock()
	s.LogicalNowNS = r.logicalNow
	ids := make([]string, 0, len(r.by))
	for id := range r.by {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	pts := make([]Point, 0, len(ids)+1)
	for _, id := range ids {
		pts = append(pts, r.by[id].point())
	}
	pts = append(pts, Point{
		Name:  "owmetrics_conflicts_total",
		Kind:  KindCounter.String(),
		Help:  "registrations or merges refused over kind/bucket mismatch",
		Value: r.conflicts,
	})
	r.mu.Unlock()
	sortPoints(pts)
	s.Points = pts
	return s
}

// sortPoints orders by name, then canonical label string — so every series
// of one name is contiguous (the Prometheus writer relies on this).
func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return labelSuffix(canonLabels(pts[i].Labels)) < labelSuffix(canonLabels(pts[j].Labels))
	})
}

func (m *metric) point() Point {
	p := Point{Name: m.name, Kind: m.kind.String(), Help: m.help}
	if len(m.pairs) > 0 {
		p.Labels = make(map[string]string, len(m.pairs))
		for _, lp := range m.pairs {
			p.Labels[lp.k] = lp.v
		}
	}
	switch m.kind {
	case KindCounter:
		p.Value = m.value
	case KindGauge:
		p.Gauge = m.gauge
	case KindHistogram:
		p.Sum, p.Count, p.Overflow = m.sum, m.count, m.overflow
		p.Buckets = make([]Bucket, len(m.bounds))
		for i, le := range m.bounds {
			p.Buckets[i] = Bucket{Le: le, Count: m.buckets[i]}
		}
	}
	return p
}

// Get returns the point with the given name and labels, or nil.
func (s *Snapshot) Get(name string, ls Labels) *Point {
	if s == nil {
		return nil
	}
	id := name + labelSuffix(canonLabels(ls))
	for i := range s.Points {
		if s.Points[i].ID() == id {
			return &s.Points[i]
		}
	}
	return nil
}

// formatGauge renders a float without precision loss or locale surprises.
func formatGauge(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Fingerprint renders the snapshot as a stable text form for golden
// pinning: one line per series in sorted order. LogicalNowNS is excluded —
// see the field's comment — so the fingerprint is bit-identical at any
// resurrection pool width.
func (s *Snapshot) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema=%s\n", s.Schema)
	for _, p := range s.Points {
		switch p.Kind {
		case "counter":
			fmt.Fprintf(&b, "counter %s = %d\n", p.ID(), p.Value)
		case "gauge":
			fmt.Fprintf(&b, "gauge %s = %s\n", p.ID(), formatGauge(p.Gauge))
		case "histogram":
			fmt.Fprintf(&b, "histogram %s count=%d sum=%d overflow=%d buckets=", p.ID(), p.Count, p.Sum, p.Overflow)
			for i, bk := range p.Buckets {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d:%d", bk.Le, bk.Count)
			}
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "%s %s\n", p.Kind, p.ID())
		}
	}
	return b.String()
}

// EncodeJSON renders the versioned JSON form (golden-tested byte for byte:
// encoding/json sorts map keys, so the output is deterministic).
func (s *Snapshot) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeJSON parses and schema-checks a snapshot.
func DecodeJSON(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("metrics: snapshot schema %q, want %q", s.Schema, SchemaVersion)
	}
	return &s, nil
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promLabels renders `{k="v",...}` with an optional extra le pair.
func promLabels(pairs []labelPair, le string) string {
	if len(pairs) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabel(p.v))
	}
	if le != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the Prometheus text exposition format. Histogram
// buckets are cumulated and close with le="+Inf" per convention.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, p := range s.Points {
		pairs := canonLabels(p.Labels)
		if p.Name != lastName {
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, p.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			lastName = p.Name
		}
		var err error
		switch p.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s%s %d\n", p.Name, promLabels(pairs, ""), p.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(pairs, ""), formatGauge(p.Gauge))
		case "histogram":
			cum := int64(0)
			for _, bk := range p.Buckets {
				cum = satAdd(cum, bk.Count)
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					p.Name, promLabels(pairs, strconv.FormatInt(bk.Le, 10)), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(pairs, "+Inf"), p.Count); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %d\n", p.Name, promLabels(pairs, ""), p.Sum); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(pairs, ""), p.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderTable renders a human-readable table, one series per line.
// Histograms get a p50/p90/p99 summary next to the raw totals; a ">N"
// value marks a rank landing past the last bucket bound, where the
// histogram has no upper edge to interpolate against.
func (s *Snapshot) RenderTable(w io.Writer) error {
	for _, p := range s.Points {
		var val string
		switch p.Kind {
		case "counter":
			val = strconv.FormatInt(p.Value, 10)
		case "gauge":
			val = formatGauge(p.Gauge)
		case "histogram":
			val = fmt.Sprintf("count=%d sum=%d overflow=%d", p.Count, p.Sum, p.Overflow)
			if p.Count > 0 {
				val += fmt.Sprintf(" p50=%s p90=%s p99=%s",
					p.quantileString(50), p.quantileString(90), p.quantileString(99))
			}
		}
		if _, err := fmt.Fprintf(w, "%-10s %-58s %s\n", p.Kind, p.ID(), val); err != nil {
			return err
		}
	}
	return nil
}

// Quantile estimates the q-th percentile from the histogram's buckets:
// nearest-rank over the counts, linear interpolation inside the winning
// bucket, integer math only — so identical snapshots render identical
// summaries on every platform. A rank landing in the overflow region (past
// the last bound) reports the last bound with exact=false, since the
// histogram has no upper edge there. Zero-count histograms report 0.
func (p Point) Quantile(q int) (v int64, exact bool) {
	if p.Kind != "histogram" || p.Count <= 0 {
		return 0, true
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	rank := (int64(q)*p.Count + 99) / 100 // ceil(q/100 * count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	var lo int64
	for _, bk := range p.Buckets {
		if rank <= cum+bk.Count {
			// Interpolate within [lo, bk.Le] by position in the bucket.
			return lo + (bk.Le-lo)*(rank-cum)/bk.Count, true
		}
		cum += bk.Count
		lo = bk.Le
	}
	return lo, false
}

func (p Point) quantileString(q int) string {
	v, exact := p.Quantile(q)
	if !exact {
		return fmt.Sprintf(">%d", v)
	}
	return strconv.FormatInt(v, 10)
}

// Delta is one changed field between two snapshots.
type Delta struct {
	// ID is the series identity, Field the changed cell: "value", "sum",
	// "count", "overflow", "le=N", or "present" for an added/removed
	// series (0 -> 1 means added in the newer snapshot).
	ID    string  `json:"id"`
	Field string  `json:"field"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
}

// DiffResult is a per-metric comparison of two snapshots.
type DiffResult struct {
	// Metrics counts the distinct series compared (union of both sides).
	Metrics int     `json:"metrics"`
	Deltas  []Delta `json:"deltas"`
}

// cell is one named numeric value of a flattened point.
type cell struct {
	name string
	val  float64
}

// fields flattens a point to named numeric cells.
func (p Point) fields() []cell {
	switch p.Kind {
	case "gauge":
		return []cell{{"value", p.Gauge}}
	case "histogram":
		out := []cell{{"sum", float64(p.Sum)}, {"count", float64(p.Count)}, {"overflow", float64(p.Overflow)}}
		for _, bk := range p.Buckets {
			out = append(out, cell{"le=" + strconv.FormatInt(bk.Le, 10), float64(bk.Count)})
		}
		return out
	default:
		return []cell{{"value", float64(p.Value)}}
	}
}

// Diff compares two snapshots series by series, in sorted-id order. Series
// present on only one side yield a single "present" delta.
func Diff(a, b *Snapshot) DiffResult {
	am := make(map[string]Point)
	bm := make(map[string]Point)
	ids := make([]string, 0, len(a.Points)+len(b.Points))
	for _, p := range a.Points {
		am[p.ID()] = p
		ids = append(ids, p.ID())
	}
	for _, p := range b.Points {
		id := p.ID()
		bm[id] = p
		if _, dup := am[id]; !dup {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	res := DiffResult{Metrics: len(ids)}
	for _, id := range ids {
		pa, inA := am[id]
		pb, inB := bm[id]
		switch {
		case !inA:
			res.Deltas = append(res.Deltas, Delta{ID: id, Field: "present", Old: 0, New: 1})
		case !inB:
			res.Deltas = append(res.Deltas, Delta{ID: id, Field: "present", Old: 1, New: 0})
		default:
			fa, fb := pa.fields(), pb.fields()
			if len(fa) != len(fb) {
				res.Deltas = append(res.Deltas, Delta{ID: id, Field: "shape", Old: float64(len(fa)), New: float64(len(fb))})
				continue
			}
			for i := range fa {
				if fa[i].name != fb[i].name {
					res.Deltas = append(res.Deltas, Delta{ID: id, Field: "shape", Old: 0, New: 1})
					break
				}
				if fa[i].val != fb[i].val {
					res.Deltas = append(res.Deltas, Delta{ID: id, Field: fa[i].name, Old: fa[i].val, New: fb[i].val})
				}
			}
		}
	}
	return res
}

// Render prints the diff; identical snapshots produce a single
// "snapshots identical" line (the owstat self-diff smoke greps for it).
func (d DiffResult) Render(w io.Writer) error {
	if len(d.Deltas) == 0 {
		_, err := fmt.Fprintf(w, "snapshots identical (%d metrics; 0 deltas)\n", d.Metrics)
		return err
	}
	for _, dl := range d.Deltas {
		if _, err := fmt.Fprintf(w, "%s %s: %s -> %s (%+g)\n",
			dl.ID, dl.Field, formatGauge(dl.Old), formatGauge(dl.New), dl.New-dl.Old); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d deltas across %d metrics\n", len(d.Deltas), d.Metrics)
	return err
}
