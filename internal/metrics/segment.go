package metrics

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"otherworld/internal/phys"
)

// The metrics segment is the crash-surviving on-memory form of a snapshot:
// page-granular, CRC-framed records packed into the unprotected tail of
// the crash reservation, right after the flight-recorder ring. Each page
// is self-contained — its own magic, header, payload and trailing CRC — so
// a wild write that lands on one page costs exactly that page's points,
// never the whole segment (the same per-slot discipline as trace rings).
//
// Page layout (phys.PageSize bytes, little-endian):
//
//	magic(4) | version(1) | flags(1) | pageIdx(2) | logicalNow(8) |
//	payloadLen(2) | payload | zero padding | crc32(4, Castagnoli,
//	over everything before it)
//
// Point record (inside the payload):
//
//	kind(1) | nameLen(2) name | labelCount(1) (kLen(2) k vLen(2) v)* |
//	counter: value(8)
//	gauge:   float64 bits(8)
//	histogram: sum(8) count(8) overflow(8) nBuckets(2) (le(8) count(8))*
//
// Help strings are not persisted: recovered points re-render with empty
// help, which costs nothing the post-mortem reader needs.

// SegMagic marks a metrics page ("OWMT"); deliberately distinct from both
// layout.Magic and trace.Magic so a metrics page can never be confused
// with a kernel record or a trace slot.
const SegMagic uint32 = 0x4F574D54

// SegVersion is the segment format version.
const SegVersion = 1

const (
	segHeaderSize = 18 // magic..payloadLen
	segCRCSize    = 4
	// SegPayloadCap is the usable bytes per page.
	SegPayloadCap = phys.PageSize - segHeaderSize - segCRCSize
)

var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// MemoryReader is the read-only memory surface segment parsing needs;
// *phys.Mem satisfies it and so does *dump.Image, which is how owstat
// recovers a dead kernel's metrics from a raw dump file.
type MemoryReader interface {
	ReadAt(addr uint64, buf []byte) error
}

// MemoryWriter is the write surface WriteSegment needs; *phys.Mem
// satisfies it.
type MemoryWriter interface {
	WriteAt(addr uint64, buf []byte) error
}

// encodePoint serializes one point, or nil if it cannot fit a page.
func encodePoint(p Point) []byte {
	pairs := canonLabels(p.Labels)
	if len(p.Name) > math.MaxUint16 || len(pairs) > math.MaxUint8 {
		return nil
	}
	var kind Kind
	switch p.Kind {
	case "counter":
		kind = KindCounter
	case "gauge":
		kind = KindGauge
	case "histogram":
		kind = KindHistogram
	default:
		return nil
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = append(buf, byte(len(pairs)))
	for _, lp := range pairs {
		if len(lp.k) > math.MaxUint16 || len(lp.v) > math.MaxUint16 {
			return nil
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lp.k)))
		buf = append(buf, lp.k...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lp.v)))
		buf = append(buf, lp.v...)
	}
	switch kind {
	case KindCounter:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Value))
	case KindGauge:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Gauge))
	case KindHistogram:
		if len(p.Buckets) > math.MaxUint16 {
			return nil
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Sum))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Overflow))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Buckets)))
		for _, bk := range p.Buckets {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(bk.Le))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(bk.Count))
		}
	}
	if len(buf) > SegPayloadCap {
		return nil
	}
	return buf
}

// decodePoints parses every record in a payload; any malformed byte fails
// the whole payload (the page CRC already vouched for the bytes, so a
// decode error means a version/format problem, treated as corruption).
func decodePoints(payload []byte) ([]Point, error) {
	var out []Point
	off := 0
	need := func(n int) error {
		if off+n > len(payload) {
			return fmt.Errorf("metrics: truncated record at %d", off)
		}
		return nil
	}
	u16 := func() uint16 { v := binary.LittleEndian.Uint16(payload[off:]); off += 2; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(payload[off:]); off += 8; return v }
	for off < len(payload) {
		if err := need(3); err != nil {
			return nil, err
		}
		kind := Kind(payload[off])
		off++
		nameLen := int(u16())
		if err := need(nameLen + 1); err != nil {
			return nil, err
		}
		p := Point{Name: string(payload[off : off+nameLen])}
		off += nameLen
		nLabels := int(payload[off])
		off++
		if nLabels > 0 {
			p.Labels = make(map[string]string, nLabels)
		}
		for i := 0; i < nLabels; i++ {
			if err := need(2); err != nil {
				return nil, err
			}
			kl := int(u16())
			if err := need(kl + 2); err != nil {
				return nil, err
			}
			k := string(payload[off : off+kl])
			off += kl
			vl := int(u16())
			if err := need(vl); err != nil {
				return nil, err
			}
			p.Labels[k] = string(payload[off : off+vl])
			off += vl
		}
		switch kind {
		case KindCounter:
			if err := need(8); err != nil {
				return nil, err
			}
			p.Kind = "counter"
			p.Value = int64(u64())
		case KindGauge:
			if err := need(8); err != nil {
				return nil, err
			}
			p.Kind = "gauge"
			p.Gauge = math.Float64frombits(u64())
		case KindHistogram:
			if err := need(26); err != nil {
				return nil, err
			}
			p.Kind = "histogram"
			p.Sum = int64(u64())
			p.Count = int64(u64())
			p.Overflow = int64(u64())
			nb := int(u16())
			if err := need(nb * 16); err != nil {
				return nil, err
			}
			p.Buckets = make([]Bucket, nb)
			for i := 0; i < nb; i++ {
				p.Buckets[i] = Bucket{Le: int64(u64()), Count: int64(u64())}
			}
		default:
			return nil, fmt.Errorf("metrics: record kind %d unknown", kind)
		}
		out = append(out, p)
	}
	return out, nil
}

// sealPage frames a payload into a full page image.
func sealPage(pageIdx int, logicalNow int64, payload []byte) []byte {
	page := make([]byte, phys.PageSize)
	binary.LittleEndian.PutUint32(page[0:], SegMagic)
	page[4] = SegVersion
	page[5] = 0 // flags, reserved
	binary.LittleEndian.PutUint16(page[6:], uint16(pageIdx))
	binary.LittleEndian.PutUint64(page[8:], uint64(logicalNow))
	binary.LittleEndian.PutUint16(page[16:], uint16(len(payload)))
	copy(page[segHeaderSize:], payload)
	crc := crc32.Checksum(page[:phys.PageSize-segCRCSize], segCRCTable)
	binary.LittleEndian.PutUint32(page[phys.PageSize-segCRCSize:], crc)
	return page
}

// WriteSegment packs a snapshot into region, one CRC-framed page at a
// time, zero-filling every trailing page so stale points from an earlier,
// longer flush can never resurrect. It returns the data pages written and
// how many points were dropped for lack of room. The first write error
// aborts (the region is supposed to be unprotected; a protection fault
// here is a real bug the caller must see).
func WriteSegment(mem MemoryWriter, region phys.Region, s *Snapshot) (pages, dropped int, err error) {
	if region.Frames <= 0 {
		if s != nil {
			dropped = len(s.Points)
		}
		return 0, dropped, nil
	}
	var payload []byte
	flush := func() error {
		if pages >= region.Frames {
			return nil
		}
		img := sealPage(pages, s.LogicalNowNS, payload)
		if werr := mem.WriteAt(phys.FrameAddr(region.Start+pages), img); werr != nil {
			return werr
		}
		pages++
		payload = payload[:0]
		return nil
	}
	for _, p := range s.Points {
		rec := encodePoint(p)
		if rec == nil {
			dropped++
			continue
		}
		if len(payload)+len(rec) > SegPayloadCap {
			if pages == region.Frames-1 {
				// No room for another page; everything else drops.
				dropped++
				continue
			}
			if err = flush(); err != nil {
				return pages, dropped, err
			}
		}
		payload = append(payload, rec...)
	}
	if len(payload) > 0 || pages == 0 {
		if err = flush(); err != nil {
			return pages, dropped, err
		}
	}
	zero := make([]byte, phys.PageSize)
	for f := region.Start + pages; f < region.End(); f++ {
		if werr := mem.WriteAt(phys.FrameAddr(f), zero); werr != nil {
			return pages, dropped, werr
		}
	}
	return pages, dropped, nil
}

// ParsedSegment is a metrics segment recovered from raw memory.
type ParsedSegment struct {
	// Snapshot holds the recovered points (never nil; empty when nothing
	// validated). LogicalNowNS is the newest valid page's stamp.
	Snapshot *Snapshot
	// Pages counts the frames examined that bore the segment magic;
	// Valid of them decoded, Corrupted failed the CRC or record decode,
	// and Empty counts all-zero frames in the region (ParseSegment only).
	Pages     int
	Valid     int
	Corrupted int
	Empty     int
}

// segPage is one validated page before generation filtering.
type segPage struct {
	now    int64
	points []Point
}

// parseOne classifies a single page image: (nil, false) = no magic,
// (nil, true) = corrupted, (page, true) = valid.
func parseOne(buf []byte) (*segPage, bool) {
	if binary.LittleEndian.Uint32(buf[0:]) != SegMagic {
		return nil, false
	}
	if buf[4] != SegVersion {
		return nil, true
	}
	payLen := int(binary.LittleEndian.Uint16(buf[16:]))
	if payLen > SegPayloadCap {
		return nil, true
	}
	stored := binary.LittleEndian.Uint32(buf[phys.PageSize-segCRCSize:])
	if crc32.Checksum(buf[:phys.PageSize-segCRCSize], segCRCTable) != stored {
		return nil, true
	}
	pts, err := decodePoints(buf[segHeaderSize : segHeaderSize+payLen])
	if err != nil {
		return nil, true
	}
	return &segPage{now: int64(binary.LittleEndian.Uint64(buf[8:])), points: pts}, true
}

// finish folds validated pages into a ParsedSegment, keeping only the
// newest generation: every page of one flush carries the same logical
// stamp, so pages with an older stamp are stale leftovers (possible when
// scanning a whole dump that still holds a previous slot's segment) and
// would duplicate series if merged.
func finish(ps *ParsedSegment, pages []*segPage) *ParsedSegment {
	snap := &Snapshot{Schema: SchemaVersion}
	var maxNow int64
	for _, pg := range pages {
		if pg.now > maxNow {
			maxNow = pg.now
		}
	}
	snap.LogicalNowNS = maxNow
	for _, pg := range pages {
		if pg.now == maxNow {
			snap.Points = append(snap.Points, pg.points...)
		}
	}
	sortPoints(snap.Points)
	ps.Snapshot = snap
	return ps
}

// ParseSegment recovers a segment from a known region of raw memory —
// the crash kernel reading what the dead kernel measured. Corruption is
// counted and skipped, never fatal; an unreadable frame counts corrupted.
func ParseSegment(mem MemoryReader, region phys.Region) *ParsedSegment {
	ps := &ParsedSegment{}
	var pages []*segPage
	buf := make([]byte, phys.PageSize)
	for f := region.Start; f < region.End(); f++ {
		if err := mem.ReadAt(phys.FrameAddr(f), buf); err != nil {
			ps.Pages++
			ps.Corrupted++
			continue
		}
		pg, bore := parseOne(buf)
		switch {
		case pg != nil:
			ps.Pages++
			ps.Valid++
			pages = append(pages, pg)
		case bore:
			ps.Pages++
			ps.Corrupted++
		case allZeroPage(buf):
			ps.Empty++
		default:
			// Non-zero bytes without the magic: the page was overwritten
			// (or its magic clobbered) — count it as corruption.
			ps.Pages++
			ps.Corrupted++
		}
	}
	return finish(ps, pages)
}

// ScanSegment sweeps the first `frames` frames of an arbitrary memory
// image for metrics pages — the owstat path over a raw dump, where the
// segment's exact region is not known. Only frames bearing the magic
// count; a frame whose magic itself was destroyed is invisible here (its
// loss still shows as a gap against the writer's page count).
func ScanSegment(mem MemoryReader, frames int) *ParsedSegment {
	ps := &ParsedSegment{}
	var pages []*segPage
	buf := make([]byte, phys.PageSize)
	for f := 0; f < frames; f++ {
		if err := mem.ReadAt(phys.FrameAddr(f), buf); err != nil {
			continue
		}
		pg, bore := parseOne(buf)
		if !bore {
			continue
		}
		ps.Pages++
		if pg != nil {
			ps.Valid++
			pages = append(pages, pg)
		} else {
			ps.Corrupted++
		}
	}
	return finish(ps, pages)
}

func allZeroPage(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
