package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", "reads", nil)
	c.Add(3)
	c.Inc()
	c.Add(0)
	c.Add(-5) // ignored: counters are monotone within a generation
	if got := r.Snapshot().Get("reads_total", nil).Value; got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	c.SetTotal(2) // collector-style reset is allowed
	if got := r.Snapshot().Get("reads_total", nil).Value; got != 2 {
		t.Fatalf("after SetTotal: %d, want 2", got)
	}
	// Same name+labels from a second handle hits the same series.
	r.Counter("reads_total", "", nil).Inc()
	if got := r.Snapshot().Get("reads_total", nil).Value; got != 3 {
		t.Fatalf("shared series = %d, want 3", got)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", Labels{"b": "2", "a": "1"}).Inc()
	r.Counter("x", "", Labels{"a": "1", "b": "2"}).Inc()
	p := r.Snapshot().Get("x", Labels{"b": "2", "a": "1"})
	if p == nil || p.Value != 2 {
		t.Fatalf("label-order-insensitive series: %+v", p)
	}
	if id := p.ID(); id != "x{a=1,b=2}" {
		t.Fatalf("ID = %q", id)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{10, 100, 1000}, nil)
	for _, v := range []int64{1, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	p := r.Snapshot().Get("lat_ns", nil)
	want := []Bucket{{10, 2}, {100, 2}, {1000, 1}}
	if len(p.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", p.Buckets)
	}
	for i, b := range want {
		if p.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, p.Buckets[i], b)
		}
	}
	if p.Overflow != 1 || p.Count != 6 || p.Sum != 5622 {
		t.Fatalf("overflow=%d count=%d sum=%d", p.Overflow, p.Count, p.Sum)
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{100, 10, 100, 1}, nil)
	h.Observe(50)
	p := r.Snapshot().Get("h", nil)
	if len(p.Buckets) != 3 || p.Buckets[0].Le != 1 || p.Buckets[2].Le != 100 {
		t.Fatalf("bounds not sanitized: %+v", p.Buckets)
	}
	if p.Buckets[2].Count != 1 {
		t.Fatalf("observe landed wrong: %+v", p.Buckets)
	}
}

func TestKindConflictDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil).Add(7)
	// Same id re-registered as a gauge: writes must vanish, not corrupt.
	r.Gauge("m", "", nil).Set(99)
	// Histogram with different bounds than an existing histogram: same.
	r.Histogram("h", "", []int64{1, 2}, nil).Observe(1)
	r.Histogram("h", "", []int64{5}, nil).Observe(1)
	s := r.Snapshot()
	if got := s.Get("m", nil); got.Kind != "counter" || got.Value != 7 {
		t.Fatalf("counter corrupted by gauge re-registration: %+v", got)
	}
	if got := s.Get("h", nil); got.Count != 1 {
		t.Fatalf("histogram corrupted by bound mismatch: %+v", got)
	}
	if got := r.Conflicts(); got != 2 {
		t.Fatalf("conflicts = %d, want 2", got)
	}
	if got := s.Get("owmetrics_conflicts_total", nil); got.Value != 2 {
		t.Fatalf("self-metric = %+v", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := satAdd(math.MaxInt64-1, 5); got != math.MaxInt64 {
		t.Fatalf("positive clamp: %d", got)
	}
	if got := satAdd(math.MinInt64+1, -5); got != math.MinInt64 {
		t.Fatalf("negative clamp: %d", got)
	}
	if got := satAdd(2, 3); got != 5 {
		t.Fatalf("plain add: %d", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c", "", nil).Inc()
	r.Gauge("g", "", nil).Set(1)
	r.Histogram("h", "", []int64{1}, nil).Observe(1)
	r.SetNow(5)
	r.Absorb(NewRegistry())
	if got := r.Conflicts(); got != 0 {
		t.Fatalf("nil conflicts = %d", got)
	}
	s := r.Snapshot()
	if s == nil || s.Schema != SchemaVersion || len(s.Points) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// shardFill writes a deterministic per-shard slice of work, mimicking the
// per-worker registries of the resurrection scan pool.
func shardFill(r *Registry, shard int) {
	r.SetNow(int64(1000 * (shard + 1)))
	r.Counter("pages_total", "", Labels{"shard": "all"}).Add(int64(10 * (shard + 1)))
	r.Gauge("high_water", "", nil).Set(float64(shard))
	h := r.Histogram("size", "", []int64{10, 100}, nil)
	h.Observe(int64(shard))
	h.Observe(int64(shard * 50))
}

func TestAbsorbOrderIndependent(t *testing.T) {
	mk := func(order []int) *Snapshot {
		root := NewRegistry()
		shards := make([]*Registry, 4)
		for i := range shards {
			shards[i] = NewRegistry()
			shardFill(shards[i], i)
		}
		for _, i := range order {
			root.Absorb(shards[i])
		}
		return root.Snapshot()
	}
	a := mk([]int{0, 1, 2, 3})
	b := mk([]int{3, 1, 0, 2})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("absorb order changed the snapshot:\n%s\nvs\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if a.LogicalNowNS != 4000 {
		t.Fatalf("logical now should keep the max: %d", a.LogicalNowNS)
	}
	if g := a.Get("high_water", nil); g.Gauge != 3 {
		t.Fatalf("gauge should keep the max: %v", g.Gauge)
	}
	if c := a.Get("pages_total", Labels{"shard": "all"}); c.Value != 100 {
		t.Fatalf("counter fold = %d, want 100", c.Value)
	}
}

func TestAbsorbConflictSkips(t *testing.T) {
	root := NewRegistry()
	root.Counter("m", "", nil).Add(1)
	donor := NewRegistry()
	donor.Gauge("m", "", nil).Set(9)
	root.Absorb(donor)
	if got := root.Snapshot().Get("m", nil); got.Kind != "counter" || got.Value != 1 {
		t.Fatalf("conflicting absorb corrupted series: %+v", got)
	}
	if got := root.Conflicts(); got != 1 {
		t.Fatalf("conflicts = %d", got)
	}
}

// TestConcurrentWrites is the scan-pool race test: many goroutines hammer
// the same registry; run under -race this proves the locking, and the final
// totals prove no increment was lost.
func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", "", Labels{"kind": "write"})
			h := r.Histogram("ns", "", []int64{10, 100, 1000}, nil)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 2000))
				if i%100 == 0 {
					_ = r.Snapshot() // readers race writers too
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Get("ops_total", Labels{"kind": "write"}).Value; got != workers*per {
		t.Fatalf("lost increments: %d, want %d", got, workers*per)
	}
	if got := s.Get("ns", nil).Count; got != workers*per {
		t.Fatalf("lost observations: %d, want %d", got, workers*per)
	}
}

// sampleRegistry builds the fixed registry used by the format goldens.
func sampleRegistry() *Registry {
	r := NewRegistry()
	r.SetNow(1500000000)
	r.Counter("phys_read_ops_total", "physical frame reads", nil).Add(42)
	r.Counter("resurrect_candidates_total", "candidates by outcome",
		Labels{"outcome": "resurrected"}).Add(7)
	r.Counter("resurrect_candidates_total", "candidates by outcome",
		Labels{"outcome": "skipped"}).Add(2)
	r.Gauge("resurrect_pagetable_fraction", "fraction of bytes from page tables", nil).Set(0.125)
	h := r.Histogram("resurrect_candidate_ns", "per-candidate wall of phases",
		[]int64{1000, 1000000, 1000000000}, nil)
	h.Observe(500)
	h.Observe(2500)
	h.Observe(2000000000)
	return r
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	s := sampleRegistry().Snapshot()
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "snapshot.json.golden", data)
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Fatal("JSON roundtrip changed the snapshot")
	}
	if _, err := DecodeJSON([]byte(`{"schema":"otherworld-metrics/999"}`)); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}

func TestRenderTableGolden(t *testing.T) {
	var b bytes.Buffer
	if err := sampleRegistry().Snapshot().RenderTable(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "snapshot.table.golden", b.Bytes())
	// The histogram line carries the percentile summary; 2000000000 lies
	// past the last bound, so p99 must render as an overflow value.
	out := b.String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=>1000000000") {
		t.Fatalf("histogram percentile summary missing or wrong:\n%s", out)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []int64{100, 200}, nil)
	for i := 0; i < 10; i++ {
		h.Observe(50) // all in the first bucket
	}
	p := r.Snapshot().Get("lat", nil)
	// rank(50) = 5 of 10 within [0,100] -> 100*5/10 = 50.
	if v, exact := p.Quantile(50); !exact || v != 50 {
		t.Fatalf("p50 = %d (exact=%v), want 50 exact", v, exact)
	}
	if v, exact := p.Quantile(100); !exact || v != 100 {
		t.Fatalf("p100 = %d (exact=%v), want 100 exact", v, exact)
	}
	if v, _ := p.Quantile(0); v != 10 {
		t.Fatalf("p0 = %d, want rank-1 interpolation 10", v)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := sampleRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	golden(t, "snapshot.prom.golden", b.Bytes())
	// Spot-check convention: cumulative buckets and a closing +Inf.
	for _, want := range []string{
		`resurrect_candidate_ns_bucket{le="+Inf"} 3`,
		`resurrect_candidate_ns_count 3`,
		`resurrect_candidates_total{outcome="resurrected"} 7`,
		"# TYPE resurrect_candidate_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per name even with two labeled series.
	if strings.Count(out, "# TYPE resurrect_candidates_total") != 1 {
		t.Fatalf("TYPE repeated per series:\n%s", out)
	}
}

func TestDiff(t *testing.T) {
	a := sampleRegistry().Snapshot()
	b := sampleRegistry().Snapshot()

	var buf bytes.Buffer
	d := Diff(a, b)
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "snapshots identical") {
		t.Fatalf("self-diff not identical: %s", buf.String())
	}

	r2 := sampleRegistry()
	r2.Counter("phys_read_ops_total", "", nil).Add(8)
	r2.Counter("brand_new_total", "", nil).Inc()
	d = Diff(a, r2.Snapshot())
	var valueDelta, present bool
	for _, dl := range d.Deltas {
		if dl.ID == "phys_read_ops_total" && dl.Field == "value" && dl.Old == 42 && dl.New == 50 {
			valueDelta = true
		}
		if dl.ID == "brand_new_total" && dl.Field == "present" && dl.New == 1 {
			present = true
		}
	}
	if !valueDelta || !present {
		t.Fatalf("diff missed deltas: %+v", d.Deltas)
	}
}

func TestFingerprintExcludesLogicalNow(t *testing.T) {
	a := sampleRegistry()
	b := sampleRegistry()
	b.SetNow(999999) // worker-count-dependent clock must not enter the pin
	if a.Snapshot().Fingerprint() != b.Snapshot().Fingerprint() {
		t.Fatal("fingerprint leaked the logical clock")
	}
}
