package apps

import (
	"fmt"
	"strconv"
	"strings"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// MySQL models the paper's Section 5.2 case study: a database server whose
// MEMORY pluggable storage engine keeps table data entirely in RAM, in a
// linked list of tables reachable from a global variable. Because the
// server talks to clients over sockets — which the prototype cannot
// resurrect — it registers a crash procedure that walks the tables with the
// engine's own row-scan functions, saves every row to disk as an opaque
// byte array, and restarts; the modified startup path reloads the saved
// rows into the in-memory tables.

// MySQLCrashProc is the registered crash-procedure name.
const MySQLCrashProc = "mysql-crashproc"

// MySQLPort is the server's listen port.
const MySQLPort uint16 = 3306

// mysqlRecoveryPath is where the crash procedure saves table contents; the
// paper passes the file name on the restart command line, we use a
// well-known path.
const mysqlRecoveryPath = "/var/lib/mysql/recovery.dat"

// Memory layout of the MEMORY storage engine.
const (
	myHdrVA = 0x200000
	// myTableVA is the first table block (the global table-list head
	// points here).
	myTableVA = 0x201000
	// myArenaVA is the row arena.
	myArenaVA  = 0x210000
	myArenaCap = 24 << 20
)

// Header word offsets.
const (
	myMagicOff = 8 * iota
	myTableHeadOff
	myArenaNextOff
	myNextRowIDOff
	myOpsOff
	mySock1Off // socket id slot (fixed, but kept as state for realism)
)

const myMagic = 0x4D59000000000001

// Row slot layout within the arena.
const (
	myRowIDOff   = 0
	myRowNextOff = 8
	myRowLenOff  = 16
	myRowDataOff = 24
	// MySQLRowDataCap is the fixed row payload capacity.
	MySQLRowDataCap = 256
	myRowSlot       = myRowDataOff + MySQLRowDataCap
)

// Table block layout.
const (
	myTblRowsHeadOff = 0
	myTblRowCountOff = 8
	myTblNextOff     = 16
	myTblNameOff     = 24
)

// mysqlSockID is the fd-like identifier of the listen socket.
const mysqlSockID = 1

// MySQL workload profile constants (Table 3 calibration): per request the
// server touches a moderate working set and does substantial non-memory
// work (parsing, locking, plan execution).
const (
	mysqlAccessPages   = 70
	mysqlAccessesPerOp = 1500
	mysqlComputePerOp  = 72000
)

// MySQL is the server program. It is stateless in Go; everything lives in
// the process image.
type MySQL struct{}

// Boot lays out the engine, loads any crash-procedure recovery file, binds
// the client socket and registers the crash procedure.
func (s *MySQL) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(myHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(myTableVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(myArenaVA, myArenaCap, rw); err != nil {
		return err
	}
	if err := env.WriteU64(myHdrVA+myMagicOff, myMagic); err != nil {
		return err
	}
	if err := env.WriteU64(myHdrVA+myTableHeadOff, myTableVA); err != nil {
		return err
	}
	if err := env.WriteU64(myHdrVA+myArenaNextOff, myArenaVA); err != nil {
		return err
	}
	if err := env.WriteU64(myHdrVA+myNextRowIDOff, 1); err != nil {
		return err
	}
	// One MEMORY table, "t0".
	if err := env.Write(myTableVA+myTblNameOff, []byte("t0\x00")); err != nil {
		return err
	}
	if err := s.loadRecovery(env); err != nil {
		return err
	}
	if err := env.SockOpen(mysqlSockID, layout.ProtoTCP, MySQLPort); err != nil {
		return err
	}
	return env.RegisterCrashProcedure(MySQLCrashProc)
}

func (s *MySQL) Rehydrate(env *kernel.Env) error { return nil }

// Step serves one client request, if any.
func (s *MySQL) Step(env *kernel.Env) error {
	env.SyscallAborted() // the server loop simply reissues its recv

	req, err := env.SockRecv(mysqlSockID)
	if err != nil {
		if err == kernel.ErrWouldBlock {
			return kernel.ErrYield
		}
		return err
	}
	if err := env.Access(myArenaVA, mysqlAccessPages, mysqlAccessesPerOp); err != nil {
		return err
	}
	env.Compute(mysqlComputePerOp)

	resp, err := s.execute(env, string(req))
	if err != nil {
		return err
	}
	ops, err := env.ReadU64(myHdrVA + myOpsOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(myHdrVA+myOpsOff, ops+1); err != nil {
		return err
	}
	return env.SockSend(mysqlSockID, []byte(resp))
}

// execute parses and applies one statement:
//
//	I <seq> <payload>          insert, replies "OK I <seq> <rowid>"
//	U <seq> <rowid> <payload>  update, replies "OK U <seq>"
//	D <seq> <rowid>            delete, replies "OK D <seq>"
func (s *MySQL) execute(env *kernel.Env, req string) (string, error) {
	fields := strings.SplitN(req, " ", 4)
	if len(fields) < 2 {
		return "ERR parse", nil
	}
	op, seq := fields[0], fields[1]
	switch op {
	case "I":
		if len(fields) < 3 {
			return "ERR parse", nil
		}
		id, err := s.insert(env, []byte(fields[2]))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("OK I %s %d", seq, id), nil
	case "U":
		if len(fields) < 4 {
			return "ERR parse", nil
		}
		rowid, perr := strconv.ParseUint(fields[2], 10, 64)
		if perr != nil {
			return "ERR parse", nil
		}
		found, err := s.update(env, rowid, []byte(fields[3]))
		if err != nil {
			return "", err
		}
		if !found {
			return fmt.Sprintf("ERR U %s norow", seq), nil
		}
		return fmt.Sprintf("OK U %s", seq), nil
	case "D":
		if len(fields) < 3 {
			return "ERR parse", nil
		}
		rowid, perr := strconv.ParseUint(fields[2], 10, 64)
		if perr != nil {
			return "ERR parse", nil
		}
		found, err := s.delete(env, rowid)
		if err != nil {
			return "", err
		}
		if !found {
			return fmt.Sprintf("ERR D %s norow", seq), nil
		}
		return fmt.Sprintf("OK D %s", seq), nil
	}
	return "ERR op", nil
}

// insert appends a row to t0, returning its rowid.
func (s *MySQL) insert(env *kernel.Env, data []byte) (uint64, error) {
	if len(data) > MySQLRowDataCap {
		data = data[:MySQLRowDataCap]
	}
	arenaNext, err := env.ReadU64(myHdrVA + myArenaNextOff)
	if err != nil {
		return 0, err
	}
	if arenaNext+myRowSlot > myArenaVA+myArenaCap {
		return 0, fmt.Errorf("mysql: table full")
	}
	rowid, err := env.ReadU64(myHdrVA + myNextRowIDOff)
	if err != nil {
		return 0, err
	}
	head, err := env.ReadU64(myTableVA + myTblRowsHeadOff)
	if err != nil {
		return 0, err
	}
	// Crash-safe ordering: fill the unlinked row, retire the arena slot
	// and rowid, and only then link the row into the table (the commit
	// point). A kernel crash at any intermediate point leaves the table
	// consistent — at worst an unacknowledged row is absent and the
	// client retries, which is ordinary at-least-once semantics.
	if err := env.WriteU64(arenaNext+myRowIDOff, rowid); err != nil {
		return 0, err
	}
	if err := env.WriteU64(arenaNext+myRowNextOff, head); err != nil {
		return 0, err
	}
	if err := env.WriteU64(arenaNext+myRowLenOff, uint64(len(data))); err != nil {
		return 0, err
	}
	if err := env.Write(arenaNext+myRowDataOff, data); err != nil {
		return 0, err
	}
	if err := env.WriteU64(myHdrVA+myArenaNextOff, arenaNext+myRowSlot); err != nil {
		return 0, err
	}
	if err := env.WriteU64(myHdrVA+myNextRowIDOff, rowid+1); err != nil {
		return 0, err
	}
	if err := env.WriteU64(myTableVA+myTblRowsHeadOff, arenaNext); err != nil {
		return 0, err
	}
	count, err := env.ReadU64(myTableVA + myTblRowCountOff)
	if err != nil {
		return 0, err
	}
	return rowid, env.WriteU64(myTableVA+myTblRowCountOff, count+1)
}

// findRow walks t0's row list for rowid, returning the row VA and its
// predecessor's next-pointer VA.
func (s *MySQL) findRow(env *kernel.Env, rowid uint64) (rowVA, prevNextVA uint64, err error) {
	prevNextVA = myTableVA + myTblRowsHeadOff
	cur, err := env.ReadU64(prevNextVA)
	if err != nil {
		return 0, 0, err
	}
	for hops := 0; cur != 0; hops++ {
		if hops > myArenaCap/myRowSlot {
			return 0, 0, fmt.Errorf("mysql: row list loop")
		}
		id, err := env.ReadU64(cur + myRowIDOff)
		if err != nil {
			return 0, 0, err
		}
		if id == rowid {
			return cur, prevNextVA, nil
		}
		prevNextVA = cur + myRowNextOff
		if cur, err = env.ReadU64(prevNextVA); err != nil {
			return 0, 0, err
		}
	}
	return 0, 0, nil
}

// update overwrites a row's payload in place.
func (s *MySQL) update(env *kernel.Env, rowid uint64, data []byte) (bool, error) {
	if len(data) > MySQLRowDataCap {
		data = data[:MySQLRowDataCap]
	}
	row, _, err := s.findRow(env, rowid)
	if err != nil || row == 0 {
		return false, err
	}
	if err := env.WriteU64(row+myRowLenOff, uint64(len(data))); err != nil {
		return false, err
	}
	return true, env.Write(row+myRowDataOff, data)
}

// delete unlinks a row.
func (s *MySQL) delete(env *kernel.Env, rowid uint64) (bool, error) {
	row, prevNextVA, err := s.findRow(env, rowid)
	if err != nil || row == 0 {
		return false, err
	}
	next, err := env.ReadU64(row + myRowNextOff)
	if err != nil {
		return false, err
	}
	if err := env.WriteU64(prevNextVA, next); err != nil {
		return false, err
	}
	count, err := env.ReadU64(myTableVA + myTblRowCountOff)
	if err != nil {
		return false, err
	}
	if count > 0 {
		count--
	}
	return true, env.WriteU64(myTableVA+myTblRowCountOff, count)
}

// MySQLSnapshot reads every live row out of the process image, exactly as
// the crash procedure's row scan does.
func MySQLSnapshot(env *kernel.Env) (map[uint64][]byte, error) {
	magic, err := env.ReadU64(myHdrVA + myMagicOff)
	if err != nil {
		return nil, err
	}
	if magic != myMagic {
		return nil, fmt.Errorf("mysql state corrupted: magic %#x", magic)
	}
	rows := make(map[uint64][]byte)
	cur, err := env.ReadU64(myTableVA + myTblRowsHeadOff)
	if err != nil {
		return nil, err
	}
	for hops := 0; cur != 0; hops++ {
		if hops > myArenaCap/myRowSlot {
			return nil, fmt.Errorf("mysql state corrupted: row list loop")
		}
		id, err := env.ReadU64(cur + myRowIDOff)
		if err != nil {
			return nil, err
		}
		n, err := env.ReadU64(cur + myRowLenOff)
		if err != nil {
			return nil, err
		}
		if n > MySQLRowDataCap {
			return nil, fmt.Errorf("mysql state corrupted: row %d length %d", id, n)
		}
		data := make([]byte, n)
		if err := env.Read(cur+myRowDataOff, data); err != nil {
			return nil, err
		}
		if _, dup := rows[id]; dup {
			return nil, fmt.Errorf("mysql state corrupted: duplicate rowid %d", id)
		}
		rows[id] = data
		if cur, err = env.ReadU64(cur + myRowNextOff); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// mysqlCrashProcedure is the Section 5.2 crash procedure: iterate the table
// list, retrieve each row with the engine's scan functions (treating row
// contents as opaque bytes), save everything to disk and restart the
// server. ~70 new lines in the real MySQL; the same shape here.
func mysqlCrashProcedure(env *kernel.Env, missing kernel.ResourceMask) (kernel.CrashAction, error) {
	rows, err := MySQLSnapshot(env)
	if err != nil {
		// The in-memory tables are damaged; restarting empty would
		// silently lose data, so give up and let the operator restore
		// from a dump.
		return kernel.ActionGiveUp, nil
	}
	fd, err := env.Open(mysqlRecoveryPath, layout.FlagWrite|layout.FlagCreate|layout.FlagTrunc)
	if err != nil {
		return kernel.ActionGiveUp, err
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, "%d\n", len(rows))
	// Deterministic order for the on-disk image.
	ids := make([]uint64, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sortU64(ids)
	for _, id := range ids {
		fmt.Fprintf(&buf, "%d %d %s\n", id, len(rows[id]), string(rows[id]))
	}
	if _, err := env.WriteFile(fd, []byte(buf.String())); err != nil {
		return kernel.ActionGiveUp, err
	}
	if err := env.Fsync(fd); err != nil {
		return kernel.ActionGiveUp, err
	}
	if err := env.Close(fd); err != nil {
		return kernel.ActionGiveUp, err
	}
	return kernel.ActionRestart, nil
}

// loadRecovery is the modified startup path: read rows saved by the crash
// procedure and repopulate the in-memory table, then consume the file.
func (s *MySQL) loadRecovery(env *kernel.Env) error {
	fd, err := env.Open(mysqlRecoveryPath, layout.FlagRead)
	if err != nil {
		return nil // no recovery image: fresh start
	}
	data := make([]byte, 0, 1<<20)
	chunk := make([]byte, 4096)
	for {
		n, rerr := env.ReadFile(fd, chunk)
		if rerr != nil {
			return rerr
		}
		if n == 0 {
			break
		}
		data = append(data, chunk[:n]...)
	}
	if err := env.Close(fd); err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 {
		return nil
	}
	maxID := uint64(0)
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) < 3 {
			continue
		}
		id, perr := strconv.ParseUint(parts[0], 10, 64)
		if perr != nil {
			continue
		}
		if _, err := s.insertWithID(env, id, []byte(parts[2])); err != nil {
			return err
		}
		if id > maxID {
			maxID = id
		}
	}
	if maxID > 0 {
		if err := env.WriteU64(myHdrVA+myNextRowIDOff, maxID+1); err != nil {
			return err
		}
	}
	// Consume the recovery image so a later clean restart starts fresh.
	fd, err = env.Open(mysqlRecoveryPath, layout.FlagWrite|layout.FlagTrunc)
	if err != nil {
		return err
	}
	return env.Close(fd)
}

// insertWithID reinserts a recovered row preserving its original rowid.
func (s *MySQL) insertWithID(env *kernel.Env, rowid uint64, data []byte) (uint64, error) {
	if err := env.WriteU64(myHdrVA+myNextRowIDOff, rowid); err != nil {
		return 0, err
	}
	return s.insert(env, data)
}

// sortU64 sorts ids ascending (insertion sort: recovery images are small).
func sortU64(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// CorruptRowByte flips one byte of the newest committed row's payload in
// place, for fault-injection harnesses checking verification sensitivity.
func CorruptRowByte(env *kernel.Env) error {
	head, err := env.ReadU64(myTableVA + myTblRowsHeadOff)
	if err != nil {
		return err
	}
	if head == 0 {
		return fmt.Errorf("mysql: no rows to corrupt")
	}
	var b [1]byte
	if err := env.Read(head+myRowDataOff, b[:]); err != nil {
		return err
	}
	b[0] ^= 0x55
	return env.Write(head+myRowDataOff, b[:])
}
