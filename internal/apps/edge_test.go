package apps

import (
	"strings"
	"testing"
)

func TestEditorEdgeCases(t *testing.T) {
	m := newMachine(t, 21)
	p, _ := m.Start("vi", ProgVi)
	// Backspace and undo on an empty document are harmless no-ops.
	feedKeys(m, p.PID, string(KeyBackspace)+string(KeyUndo)+string(KeyBackspace)+"z")
	m.Run(100)
	snap, err := SnapshotEditor(envOf(t, m, ProgVi))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Doc != "z" || snap.UndoLen != 1 {
		t.Fatalf("doc=%q undo=%d", snap.Doc, snap.UndoLen)
	}
	if snap.Keys != 4 {
		t.Fatalf("keys = %d", snap.Keys)
	}
}

func TestEditorRepeatedSaves(t *testing.T) {
	m := newMachine(t, 22)
	p, _ := m.Start("vi", ProgVi)
	feedKeys(m, p.PID, "ab"+string(KeySave)+string(KeyBackspace)+string(KeySave))
	m.Run(100)
	data, err := m.FS.ReadFile("/home/user/vi.txt")
	if err != nil {
		t.Fatal(err)
	}
	// The second save is shorter; the length prefix must reflect it even
	// though the file still holds the longer first image's bytes.
	n := uint64(data[0]) | uint64(data[1])<<8
	if n != 1 || data[8] != 'a' {
		t.Fatalf("prefix=%d data=%q", n, data[8:])
	}
}

func TestMySQLRecoveryFileEdgeCases(t *testing.T) {
	// An empty recovery file must not break startup.
	m := newMachine(t, 23)
	if err := m.FS.WriteFile("/var/lib/mysql/recovery.dat", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start("mysqld", ProgMySQL); err != nil {
		t.Fatalf("empty recovery file: %v", err)
	}
	if resp := mysqlExec(t, m, "I 1 fresh"); resp != "OK I 1 1" {
		t.Fatalf("insert after empty recovery: %q", resp)
	}

	// A recovery file with garbage lines loads what it can.
	m2 := newMachine(t, 24)
	img := "3\n5 3 abc\nnot a row\n9 3 xyz\n"
	if err := m2.FS.WriteFile("/var/lib/mysql/recovery.dat", []byte(img)); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Start("mysqld", ProgMySQL); err != nil {
		t.Fatal(err)
	}
	rows, err := MySQLSnapshot(envOf(t, m2, ProgMySQL))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || string(rows[5]) != "abc" || string(rows[9]) != "xyz" {
		t.Fatalf("rows = %v", rows)
	}
	// Rowids continue above the recovered maximum.
	if resp := mysqlExec(t, m2, "I 1 next"); resp != "OK I 1 10" {
		t.Fatalf("post-recovery rowid: %q", resp)
	}
	// The recovery image is consumed: a restart must not double-load.
	size, _ := m2.FS.Size("/var/lib/mysql/recovery.dat")
	if size != 0 {
		t.Fatalf("recovery file not consumed: %d bytes", size)
	}
}

func TestMySQLRowPayloadTruncated(t *testing.T) {
	m := newMachine(t, 25)
	if _, err := m.Start("mysqld", ProgMySQL); err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("x", MySQLRowDataCap+50)
	if resp := mysqlExec(t, m, "I 1 "+long); resp != "OK I 1 1" {
		t.Fatalf("oversized insert: %q", resp)
	}
	rows, _ := MySQLSnapshot(envOf(t, m, ProgMySQL))
	if len(rows[1]) != MySQLRowDataCap {
		t.Fatalf("stored %d bytes", len(rows[1]))
	}
}

func TestMySQLMalformedRequests(t *testing.T) {
	m := newMachine(t, 26)
	if _, err := m.Start("mysqld", ProgMySQL); err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{"", "I", "U 1 notanum v", "Z 1 2", "D 1 xyz"} {
		resp := mysqlExec(t, m, req)
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("request %q: %q", req, resp)
		}
	}
	// The server is still healthy.
	if resp := mysqlExec(t, m, "I 9 ok"); resp != "OK I 9 1" {
		t.Fatalf("after garbage: %q", resp)
	}
}

func TestApacheSessionValueTruncated(t *testing.T) {
	m := newMachine(t, 27)
	if _, err := m.Start("apache", ProgApache); err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("y", ApacheSessionDataCap+30)
	if resp := apacheExec(t, m, "S 1 7 "+long); resp != "OK 1" {
		t.Fatalf("oversized set: %q", resp)
	}
	sessions, _ := ApacheSnapshot(envOf(t, m, ProgApache))
	if len(sessions[7]) != ApacheSessionDataCap {
		t.Fatalf("stored %d bytes", len(sessions[7]))
	}
}

func TestApacheMalformedRequests(t *testing.T) {
	m := newMachine(t, 28)
	if _, err := m.Start("apache", ProgApache); err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{"", "S", "S 1 notanum v", "X 1 2"} {
		resp := apacheExec(t, m, req)
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("request %q: %q", req, resp)
		}
	}
}

func TestVolanoRoomBounds(t *testing.T) {
	m := newMachine(t, 29)
	if _, err := m.Start("volano", ProgVolano); err != nil {
		t.Fatal(err)
	}
	var resp string
	m.Net.OnRemote(VolanoPort, func(p []byte) { resp = string(p) })
	m.Net.Deliver(VolanoPort, []byte("M 1 999 hi"))
	m.Run(50)
	if resp != "ERR room" {
		t.Fatalf("out-of-range room: %q", resp)
	}
}

func TestShellHistoryCapDoesNotOverflow(t *testing.T) {
	m := newMachine(t, 30)
	p, _ := m.Start("sh", ProgShell)
	budget := 200
	m.Consoles.AttachInput(p.PID, func() (byte, bool) {
		if budget == 0 {
			return 0, false
		}
		budget--
		return 'k', true
	})
	m.Run(2000)
	snap, err := SnapshotShell(envOf(t, m, ProgShell))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.History) != 200 {
		t.Fatalf("history = %d", len(snap.History))
	}
}
