package apps

import (
	"fmt"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// The editors (Section 5.1). vi needs no modification to survive a
// microreboot: its reads retry naturally. JOE originally "treated any error
// code returned by the console read function as a critical error and
// terminated itself"; the paper's one-line fix reissues failed console
// reads. Both variants are modelled: ProgJoe carries the fix, and
// ProgJoeUnpatched reproduces the original failure.

type editorKind int

const (
	editorVi editorKind = iota
	editorJoe
	editorJoeUnpatched
)

// Editor keystrokes with special meaning.
const (
	// KeyBackspace deletes the last character.
	KeyBackspace byte = 0x08
	// KeyUndo undoes the last edit (^U).
	KeyUndo byte = 0x15
	// KeySave writes the document to its file (^S / :w).
	KeySave byte = 0x13
)

// Editor memory layout. All state lives in the address space so
// resurrection restores "not only ... the latest contents of all documents,
// but also ... the undo buffer, relative window positions and other
// application state".
const (
	edHdrVA   = 0x100000
	edDocVA   = 0x110000
	edDocCap  = 1 << 20
	edUndoVA  = 0x400000
	edUndoCap = 1 << 16 // entries
	edWinVA   = 0x600000
	edWinCap  = 1 << 16 // JOE second-window buffer
)

// Header word offsets (u64 each). Document and undo lengths share one
// word so a single atomic store commits an edit: a kernel crash between an
// edit's byte writes and its header commit leaves the previous consistent
// state, never a torn one.
const (
	edMagicOff = 8 * iota
	edLensOff  // packed: docLen (low 24 bits) | undoLen << 24
	edSavesOff
	edKeysOff
	edFDOff
	edWinLenOff
)

// packLens combines the two lengths into the atomic header word.
func packLens(docLen, undoLen uint64) uint64 { return docLen&0xFFFFFF | undoLen<<24 }

// unpackLens splits the header word.
func unpackLens(w uint64) (docLen, undoLen uint64) { return w & 0xFFFFFF, w >> 24 & 0xFFFFFF }

const edMagic = 0xED170001

// undo entry opcodes.
const (
	undoInsert byte = 1
	undoDelete byte = 2
)

// editor implements vi and both JOE variants. The struct itself is
// stateless: every step reloads what it needs from the address space.
type editor struct {
	kind editorKind
}

func newEditor(kind editorKind) *editor { return &editor{kind: kind} }

// docPath returns the file the editor edits.
func (e *editor) docPath() string {
	switch e.kind {
	case editorVi:
		return "/home/user/vi.txt"
	default:
		return "/home/user/joe.txt"
	}
}

func (e *editor) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(edHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(edDocVA, edDocCap, rw); err != nil {
		return err
	}
	if err := env.MapAnon(edUndoVA, edUndoCap*2, rw); err != nil {
		return err
	}
	if e.kind != editorVi {
		// JOE's multi-window support keeps a second buffer.
		if err := env.MapAnon(edWinVA, edWinCap, rw); err != nil {
			return err
		}
	}
	if err := env.TermOpen(uint32(env.PID())); err != nil {
		return err
	}
	fd, err := env.Open(e.docPath(), layout.FlagRead|layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		return err
	}
	if err := env.WriteU64(edHdrVA+edMagicOff, edMagic); err != nil {
		return err
	}
	return env.WriteU64(edHdrVA+edFDOff, uint64(fd))
}

func (e *editor) Rehydrate(env *kernel.Env) error { return nil }

func (e *editor) Step(env *kernel.Env) error {
	if env.SyscallAborted() && e.kind == editorJoeUnpatched {
		// Unmodified JOE treats the aborted console read as fatal.
		return env.Exit(1)
	}

	key, ok, err := env.TermRead()
	if err != nil {
		if e.kind == editorJoeUnpatched {
			return env.Exit(1)
		}
		return err
	}
	if !ok {
		return kernel.ErrYield
	}

	magic, err := env.ReadU64(edHdrVA + edMagicOff)
	if err != nil {
		return err
	}
	if magic != edMagic {
		return fmt.Errorf("editor: state corrupted (magic %#x)", magic)
	}
	lens, err := env.ReadU64(edHdrVA + edLensOff)
	if err != nil {
		return err
	}
	docLen, undoLen := unpackLens(lens)

	switch key {
	case KeyBackspace:
		if docLen > 0 {
			var ch [1]byte
			if err := env.Read(edDocVA+docLen-1, ch[:]); err != nil {
				return err
			}
			docLen--
			if undoLen < edUndoCap {
				if err := env.Write(edUndoVA+undoLen*2, []byte{undoDelete, ch[0]}); err != nil {
					return err
				}
				undoLen++
			}
		}
	case KeyUndo:
		if undoLen > 0 {
			undoLen--
			var entry [2]byte
			if err := env.Read(edUndoVA+undoLen*2, entry[:]); err != nil {
				return err
			}
			switch entry[0] {
			case undoInsert:
				if docLen > 0 {
					docLen--
				}
			case undoDelete:
				if docLen < edDocCap {
					if err := env.Write(edDocVA+docLen, []byte{entry[1]}); err != nil {
						return err
					}
					docLen++
				}
			}
		}
	case KeySave:
		if err := e.save(env, docLen); err != nil {
			return err
		}
		saves, rerr := env.ReadU64(edHdrVA + edSavesOff)
		if rerr != nil {
			return rerr
		}
		if err := env.WriteU64(edHdrVA+edSavesOff, saves+1); err != nil {
			return err
		}
	default:
		if docLen < edDocCap {
			if err := env.Write(edDocVA+docLen, []byte{key}); err != nil {
				return err
			}
			docLen++
			if undoLen < edUndoCap {
				if err := env.Write(edUndoVA+undoLen*2, []byte{undoInsert, key}); err != nil {
					return err
				}
				undoLen++
			}
			if err := env.TermWrite([]byte{key}); err != nil {
				return err
			}
			if e.kind != editorVi {
				// JOE mirrors the tail of the buffer into the second
				// window (syntax-highlighted view).
				winLen := docLen
				if winLen > edWinCap {
					winLen = edWinCap
				}
				if err := env.Write(edWinVA+winLen-1, []byte{key}); err != nil {
					return err
				}
				if err := env.WriteU64(edHdrVA+edWinLenOff, winLen); err != nil {
					return err
				}
			}
		}
	}

	// The atomic commit of this keystroke's effects.
	if err := env.WriteU64(edHdrVA+edLensOff, packLens(docLen, undoLen)); err != nil {
		return err
	}
	keys, err := env.ReadU64(edHdrVA + edKeysOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(edHdrVA+edKeysOff, keys+1); err != nil {
		return err
	}
	// Editing is memory-light and syscall-light: the paper notes editors
	// "do not have a high rate of system calls".
	env.Compute(5000)
	return nil
}

// save writes a length-prefixed document image to the editor's file and
// fsyncs it.
func (e *editor) save(env *kernel.Env, docLen uint64) error {
	fdWord, err := env.ReadU64(edHdrVA + edFDOff)
	if err != nil {
		return err
	}
	fd := uint32(fdWord)
	doc := make([]byte, docLen)
	if err := env.Read(edDocVA, doc); err != nil {
		return err
	}
	if err := env.Seek(fd, 0); err != nil {
		return err
	}
	var lenPrefix [8]byte
	for i := 0; i < 8; i++ {
		lenPrefix[i] = byte(docLen >> (8 * i))
	}
	if _, err := env.WriteFile(fd, lenPrefix[:]); err != nil {
		return err
	}
	if _, err := env.WriteFile(fd, doc); err != nil {
		return err
	}
	return env.Fsync(fd)
}

// EditorSnapshot is the externally observable editor state, used by the
// verification harness (the paper's remote progress log).
type EditorSnapshot struct {
	Doc     string
	UndoLen uint64
	Saves   uint64
	Keys    uint64
	WinLen  uint64
}

// SnapshotEditor reads the editor state out of a process's address space.
func SnapshotEditor(env *kernel.Env) (*EditorSnapshot, error) {
	magic, err := env.ReadU64(edHdrVA + edMagicOff)
	if err != nil {
		return nil, err
	}
	if magic != edMagic {
		return nil, fmt.Errorf("editor state corrupted: magic %#x", magic)
	}
	lens, err := env.ReadU64(edHdrVA + edLensOff)
	if err != nil {
		return nil, err
	}
	docLen, undoLen := unpackLens(lens)
	if docLen > edDocCap {
		return nil, fmt.Errorf("editor state corrupted: docLen %d", docLen)
	}
	doc := make([]byte, docLen)
	if err := env.Read(edDocVA, doc); err != nil {
		return nil, err
	}
	s := &EditorSnapshot{Doc: string(doc), UndoLen: undoLen}
	if s.Saves, err = env.ReadU64(edHdrVA + edSavesOff); err != nil {
		return nil, err
	}
	if s.Keys, err = env.ReadU64(edHdrVA + edKeysOff); err != nil {
		return nil, err
	}
	if s.WinLen, err = env.ReadU64(edHdrVA + edWinLenOff); err != nil {
		return nil, err
	}
	return s, nil
}
