package apps

import (
	"strings"
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
)

func newMachine(t *testing.T, seed int64) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = hw.Config{MemoryBytes: 192 << 20, NumCPUs: 2, TLBEntries: 64, WatchdogEnabled: true}
	opts.CrashRegionMB = 16
	opts.Seed = seed
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func envOf(t *testing.T, m *core.Machine, program string) *kernel.Env {
	t.Helper()
	for _, p := range m.K.Procs() {
		if p.D.Program == program {
			return &kernel.Env{K: m.K, P: p}
		}
	}
	t.Fatalf("no process for %q", program)
	return nil
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	want := map[string]int{"vi": 0, "JOE": 1, "MySQL": 75, "Apache": 115, "BLCR": 0}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if want[r.App] != r.ModifiedLines {
			t.Fatalf("%s modified lines = %d, want %d", r.App, r.ModifiedLines, want[r.App])
		}
		needsCP := r.App == "MySQL" || r.App == "Apache"
		if r.CrashProcRequired != needsCP {
			t.Fatalf("%s crash proc required = %v", r.App, r.CrashProcRequired)
		}
		if needsCP && kernel.LookupCrashProc(r.CrashProcName) == nil {
			t.Fatalf("%s crash procedure %q not registered", r.App, r.CrashProcName)
		}
		if kernel.LookupProgram(r.Program) == nil {
			t.Fatalf("%s program %q not registered", r.App, r.Program)
		}
	}
}

func feedKeys(m *core.Machine, term uint32, keys string) {
	i := 0
	m.Consoles.AttachInput(term, func() (byte, bool) {
		if i >= len(keys) {
			return 0, false
		}
		b := keys[i]
		i++
		return b, true
	})
}

func TestEditorTypingAndUndo(t *testing.T) {
	m := newMachine(t, 1)
	p, err := m.Start("vi", ProgVi)
	if err != nil {
		t.Fatal(err)
	}
	feedKeys(m, p.PID, "abc"+string(KeyUndo)+"d"+string(KeyBackspace))
	m.Run(200)
	snap, err := SnapshotEditor(envOf(t, m, ProgVi))
	if err != nil {
		t.Fatal(err)
	}
	// abc, undo removes c -> ab, type d -> abd, backspace -> ab.
	if snap.Doc != "ab" {
		t.Fatalf("doc = %q", snap.Doc)
	}
	// Undo stack: +a +b (+c -c popped) +d, then delete entry for d.
	if snap.UndoLen != 4 {
		t.Fatalf("undo len = %d", snap.UndoLen)
	}
	if snap.Keys != 6 {
		t.Fatalf("keys = %d", snap.Keys)
	}
}

func TestEditorUndoRestoresDeleted(t *testing.T) {
	m := newMachine(t, 2)
	p, _ := m.Start("vi", ProgVi)
	feedKeys(m, p.PID, "xy"+string(KeyBackspace)+string(KeyUndo))
	m.Run(200)
	snap, err := SnapshotEditor(envOf(t, m, ProgVi))
	if err != nil {
		t.Fatal(err)
	}
	// Backspace removed y; undo restores it.
	if snap.Doc != "xy" {
		t.Fatalf("doc = %q", snap.Doc)
	}
}

func TestEditorSaveWritesFile(t *testing.T) {
	m := newMachine(t, 3)
	p, _ := m.Start("vi", ProgVi)
	feedKeys(m, p.PID, "hello"+string(KeySave))
	m.Run(200)
	data, err := m.FS.ReadFile("/home/user/vi.txt")
	if err != nil {
		t.Fatal(err)
	}
	// Length-prefixed image: 8-byte length then the document.
	if len(data) < 13 || string(data[8:13]) != "hello" {
		t.Fatalf("saved image = %q", data)
	}
	snap, _ := SnapshotEditor(envOf(t, m, ProgVi))
	if snap.Saves != 1 {
		t.Fatalf("saves = %d", snap.Saves)
	}
}

func TestJoeKeepsSecondWindow(t *testing.T) {
	m := newMachine(t, 4)
	p, _ := m.Start("joe", ProgJoe)
	feedKeys(m, p.PID, "windowed")
	m.Run(100)
	snap, err := SnapshotEditor(envOf(t, m, ProgJoe))
	if err != nil {
		t.Fatal(err)
	}
	if snap.WinLen == 0 {
		t.Fatal("JOE second window empty")
	}
}

func mysqlExec(t *testing.T, m *core.Machine, req string) string {
	t.Helper()
	var resp string
	m.Net.OnRemote(MySQLPort, func(p []byte) { resp = string(p) })
	m.Net.Deliver(MySQLPort, []byte(req))
	m.Run(50)
	return resp
}

func TestMySQLInsertUpdateDelete(t *testing.T) {
	m := newMachine(t, 5)
	if _, err := m.Start("mysqld", ProgMySQL); err != nil {
		t.Fatal(err)
	}
	if resp := mysqlExec(t, m, "I 1 alpha"); resp != "OK I 1 1" {
		t.Fatalf("insert: %q", resp)
	}
	if resp := mysqlExec(t, m, "I 2 beta"); resp != "OK I 2 2" {
		t.Fatalf("insert 2: %q", resp)
	}
	if resp := mysqlExec(t, m, "U 3 1 gamma"); resp != "OK U 3" {
		t.Fatalf("update: %q", resp)
	}
	if resp := mysqlExec(t, m, "D 4 2"); resp != "OK D 4" {
		t.Fatalf("delete: %q", resp)
	}
	if resp := mysqlExec(t, m, "D 5 99"); !strings.Contains(resp, "norow") {
		t.Fatalf("missing row: %q", resp)
	}
	rows, err := MySQLSnapshot(envOf(t, m, ProgMySQL))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[1]) != "gamma" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMySQLCrashProcedureSavesAndRestarts(t *testing.T) {
	m := newMachine(t, 6)
	if _, err := m.Start("mysqld", ProgMySQL); err != nil {
		t.Fatal(err)
	}
	mysqlExec(t, m, "I 1 one")
	mysqlExec(t, m, "I 2 two")
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil || out.Result != core.ResultRecovered {
		t.Fatalf("recover: %v %v", out, err)
	}
	pr := out.Report.Procs[0]
	if pr.Outcome.String() != "restarted" {
		t.Fatalf("outcome = %v (%v)", pr.Outcome, pr.Err)
	}
	// The restarted server reloaded the saved rows.
	rows, err := MySQLSnapshot(envOf(t, m, ProgMySQL))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || string(rows[1]) != "one" || string(rows[2]) != "two" {
		t.Fatalf("rows after restart = %v", rows)
	}
	// New inserts continue from the right rowid.
	if resp := mysqlExec(t, m, "I 9 three"); resp != "OK I 9 3" {
		t.Fatalf("post-restart insert: %q", resp)
	}
}

func apacheExec(t *testing.T, m *core.Machine, req string) string {
	t.Helper()
	var resp string
	m.Net.OnRemote(ApachePort, func(p []byte) { resp = string(p) })
	m.Net.Deliver(ApachePort, []byte(req))
	m.Run(50)
	return resp
}

func TestApacheSessions(t *testing.T) {
	m := newMachine(t, 7)
	if _, err := m.Start("apache", ProgApache); err != nil {
		t.Fatal(err)
	}
	if resp := apacheExec(t, m, "S 1 10 cart=3"); resp != "OK 1" {
		t.Fatalf("set: %q", resp)
	}
	if resp := apacheExec(t, m, "G 2 10"); resp != "OK 2 cart=3" {
		t.Fatalf("get: %q", resp)
	}
	if resp := apacheExec(t, m, "G 3 11"); resp != "OK 3 -" {
		t.Fatalf("missing session: %q", resp)
	}
	if resp := apacheExec(t, m, "S 4 10 cart=5"); resp != "OK 4" {
		t.Fatalf("update: %q", resp)
	}
	sessions, err := ApacheSnapshot(envOf(t, m, ProgApache))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || string(sessions[10]) != "cart=5" {
		t.Fatalf("sessions = %v", sessions)
	}
}

func TestApacheCrashProcedurePreservesSessions(t *testing.T) {
	m := newMachine(t, 8)
	if _, err := m.Start("apache", ProgApache); err != nil {
		t.Fatal(err)
	}
	apacheExec(t, m, "S 1 21 user=alice")
	apacheExec(t, m, "S 2 22 user=bob")
	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil || out.Result != core.ResultRecovered {
		t.Fatalf("recover: %v %v", out, err)
	}
	sessions, err := ApacheSnapshot(envOf(t, m, ProgApache))
	if err != nil {
		t.Fatal(err)
	}
	if string(sessions[21]) != "user=alice" || string(sessions[22]) != "user=bob" {
		t.Fatalf("sessions after restart = %v", sessions)
	}
}

func TestBLCRCheckpointsPeriodically(t *testing.T) {
	m := newMachine(t, 9)
	if _, err := m.Start("blcr", ProgBLCR); err != nil {
		t.Fatal(err)
	}
	m.Run(BLCRCheckpointEvery + 10)
	snap, err := SnapshotBLCR(envOf(t, m, ProgBLCR))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Iter < BLCRCheckpointEvery {
		t.Fatalf("iter = %d", snap.Iter)
	}
	if snap.CkptSeq == 0 || !snap.CkptValid {
		t.Fatalf("checkpoint seq=%d valid=%v", snap.CkptSeq, snap.CkptValid)
	}
}

func TestBLCRRestoreFromCheckpoint(t *testing.T) {
	m := newMachine(t, 10)
	if _, err := m.Start("blcr", ProgBLCR); err != nil {
		t.Fatal(err)
	}
	m.Run(BLCRCheckpointEvery + 5)
	env := envOf(t, m, ProgBLCR)
	seq, err := RestoreBLCRFromCheckpoint(env)
	if err != nil || seq == 0 {
		t.Fatalf("restore: seq=%d %v", seq, err)
	}
	// After rollback the data matches the checkpointed iteration: the
	// snapshot must still parse and pages hold pre-checkpoint values.
	if _, err := SnapshotBLCR(env); err != nil {
		t.Fatal(err)
	}
}

func TestVolanoFanout(t *testing.T) {
	m := newMachine(t, 11)
	if _, err := m.Start("volano", ProgVolano); err != nil {
		t.Fatal(err)
	}
	var got []string
	m.Net.OnRemote(VolanoPort, func(p []byte) { got = append(got, string(p)) })
	m.Net.Deliver(VolanoPort, []byte("M 1 3 hello"))
	m.Run(50)
	// Expect VolanoFanout broadcasts plus the ack.
	if len(got) != VolanoFanout+1 {
		t.Fatalf("responses = %v", got)
	}
	if got[len(got)-1] != "OK 1" {
		t.Fatalf("ack = %q", got[len(got)-1])
	}
	msgs, err := VolanoMessages(envOf(t, m, ProgVolano))
	if err != nil || msgs != 1 {
		t.Fatalf("messages = %d %v", msgs, err)
	}
}

func TestShellHistoryAndPrompt(t *testing.T) {
	m := newMachine(t, 12)
	p, err := m.Start("sh", ProgShell)
	if err != nil {
		t.Fatal(err)
	}
	feedKeys(m, p.PID, "ls\npwd\n")
	m.Run(100)
	snap, err := SnapshotShell(envOf(t, m, ProgShell))
	if err != nil {
		t.Fatal(err)
	}
	if snap.History != "ls\npwd\n" {
		t.Fatalf("history = %q", snap.History)
	}
	if snap.Cmds != 2 {
		t.Fatalf("cmds = %d", snap.Cmds)
	}
}
