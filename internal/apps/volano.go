package apps

import (
	"fmt"
	"strconv"
	"strings"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// Volano models the Volano chat-server benchmark used in Table 3: "a highly
// parallel and system call intensive application, the type of workload that
// should be the most sensitive to system call overhead". Each chat message
// costs one receive plus a fan-out of sends to the room's members, so the
// syscall-to-computation ratio is far higher than MySQL's or Apache's —
// which is why protected mode costs it 11.6% in the paper.

// VolanoPort is the chat server's listen port.
const VolanoPort uint16 = 5566

// volanoSockID is the listen socket identifier.
const volanoSockID = 1

// Chat room memory layout.
const (
	voHdrVA = 0x900000
	// voRoomsVA holds VolanoRooms room slots.
	voRoomsVA = 0x901000
	// VolanoRooms is the number of chat rooms.
	VolanoRooms = 20
	// voRoomSlot is one room's storage: a length word and a message ring.
	voRoomSlot = 4096
	voRoomCap  = voRoomSlot - 16
	// VolanoFanout is how many member connections each message is
	// broadcast to.
	VolanoFanout = 4
	// voWorkVA is the server's working set (JVM-style heap and
	// connection tables) for the TLB traffic model.
	voWorkVA = 0x940000
)

// Header word offsets.
const (
	voMagicOff = 8 * iota
	voMsgsOff
)

const voMagic = 0x70A1A0

// Volano workload profile (Table 3): little memory work and little compute
// per message; the syscalls dominate.
const (
	volanoAccessPages   = 72
	volanoAccessesPerOp = 500
	volanoComputePerOp  = 41000
)

// Volano is the chat-server program.
type Volano struct{}

// Boot maps the room table and binds the listen socket.
func (v *Volano) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(voHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(voRoomsVA, VolanoRooms*voRoomSlot, rw); err != nil {
		return err
	}
	if err := env.MapAnon(voWorkVA, volanoAccessPages*4096, rw); err != nil {
		return err
	}
	if err := env.WriteU64(voHdrVA+voMagicOff, voMagic); err != nil {
		return err
	}
	return env.SockOpen(volanoSockID, layout.ProtoTCP, VolanoPort)
}

func (v *Volano) Rehydrate(env *kernel.Env) error { return nil }

// Step serves one chat message: "M <seq> <room> <text>". The text is
// appended to the room ring and broadcast to VolanoFanout member
// connections (one send each), plus the acknowledgement to the sender.
func (v *Volano) Step(env *kernel.Env) error {
	env.SyscallAborted()

	req, err := env.SockRecv(volanoSockID)
	if err != nil {
		if err == kernel.ErrWouldBlock {
			return kernel.ErrYield
		}
		return err
	}
	if err := env.Access(voWorkVA, volanoAccessPages, volanoAccessesPerOp); err != nil {
		return err
	}
	env.Compute(volanoComputePerOp)

	fields := strings.SplitN(string(req), " ", 4)
	if len(fields) < 4 {
		return env.SockSend(volanoSockID, []byte("ERR parse"))
	}
	seq := fields[1]
	room, perr := strconv.ParseUint(fields[2], 10, 64)
	if perr != nil || room >= VolanoRooms {
		return env.SockSend(volanoSockID, []byte("ERR room"))
	}
	text := fields[3]

	base := uint64(voRoomsVA + room*voRoomSlot)
	used, err := env.ReadU64(base)
	if err != nil {
		return err
	}
	msg := []byte(text + "\n")
	if used+uint64(len(msg)) > voRoomCap {
		used = 0 // ring wrap: drop scrollback
	}
	if err := env.Write(base+16+used, msg); err != nil {
		return err
	}
	if err := env.WriteU64(base, used+uint64(len(msg))); err != nil {
		return err
	}

	// Broadcast to the room members: the syscall storm Table 3 measures.
	for i := 0; i < VolanoFanout; i++ {
		if err := env.SockSend(volanoSockID, []byte(fmt.Sprintf("B %s %d %s", seq, i, text))); err != nil {
			return err
		}
	}
	msgs, err := env.ReadU64(voHdrVA + voMsgsOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(voHdrVA+voMsgsOff, msgs+1); err != nil {
		return err
	}
	return env.SockSend(volanoSockID, []byte("OK "+seq))
}

// VolanoMessages returns the served-message counter.
func VolanoMessages(env *kernel.Env) (uint64, error) {
	magic, err := env.ReadU64(voHdrVA + voMagicOff)
	if err != nil {
		return 0, err
	}
	if magic != voMagic {
		return 0, fmt.Errorf("volano state corrupted: magic %#x", magic)
	}
	return env.ReadU64(voHdrVA + voMsgsOff)
}
