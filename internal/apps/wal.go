package apps

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"time"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// WALKV is a write-ahead-logging KV store built to expose exactly the crash
// class FIRST's limitations doc describes: a transaction appends three
// page-sized records and a COMMIT record to its log, and durability hinges
// on where the fsyncs sit. The fixed protocol is
//
//	append r1,r2,r3 → fsync → append COMMIT → fsync → ack
//
// and the buggy variant reproduces FIRST's intentional commit-before-durable
// bug by dropping the first fsync:
//
//	append r1,r2,r3 → append COMMIT → fsync → ack
//
// With the block-layer crash model armed, a kernel crash between the COMMIT
// append and its fsync leaves four dirty page-cache pages whose flush order
// is undefined: the drive may persist the COMMIT page without all record
// pages — a committed-but-incomplete transaction recovery then trusts. The
// fixed protocol is immune: by the time COMMIT is dirty, the records are
// already on the platter.
//
// Records are exactly one page each so the COMMIT and its records live on
// different page-cache pages; same-page records would hide the reorder.

// WALPort is the server's listen port.
const WALPort uint16 = 7001

// WALPath is the log file, exported so the data-invariant checker can read
// the platter image directly.
const WALPath = "/var/lib/walkv/wal.log"

// WALRecordSize is the page-sized on-disk record slot.
const WALRecordSize = 4096

// WALRecsPerTxn is the number of data records per transaction (plus one
// COMMIT record).
const WALRecsPerTxn = 3

// On-disk record kinds.
const (
	WALKindRecord uint64 = 1
	WALKindCommit uint64 = 2
)

const walRecMagic = 0x57414C5245433031 // "WALREC01"

// Record header word offsets; the CRC of bytes [0, walCRCOff) sits
// little-endian at walCRCOff.
const (
	walRecMagicOff = 8 * iota
	walRecKindOff
	walRecTxnOff
	walRecSeqOff
	walRecLenOff
	walRecPayloadOff
)

const walCRCOff = WALRecordSize - 4

// WALPayloadCap bounds a record payload.
const WALPayloadCap = 1024

// Process-image layout.
const (
	walHdrVA = 0x300000
	walBufVA = 0x301000
)

// Header word offsets.
const (
	walMagicOff = 8 * iota
	walModeOff
	walPhaseOff
	walTxnOff     // in-flight transaction id
	walNextTxnOff // next id to assign
	walAppliedOff // committed transactions applied to the store
	walOpsOff     // acknowledged client operations
	walFDOff
	walEndOff // append position in the log
	walPendingSeqOff
	walPendingLenOff
)

const walMagic = 0x57414C4B56000001

// Transaction phases; each Step advances exactly one, so every write/fsync
// boundary is a schedulable crash point for the sweep tests.
const (
	WALPhaseIdle = iota
	WALPhaseRec1
	WALPhaseRec2
	WALPhaseRec3
	WALPhaseSyncRecs // fixed protocol only
	WALPhaseCommit
	WALPhaseSyncCommit
	WALPhaseAck
)

const walSockID = 1

// WALCrashProc is the registered crash-procedure name.
const WALCrashProc = "walkv-crashproc"

// walCrashProcedure handles the unresurrectable socket after a microreboot.
// The store's entire state is its on-disk log — resurrection has already
// flushed whatever dirty pages the dead kernel held — so the procedure is
// one line: restart, and let ordinary WAL recovery rebuild the store. (The
// JOE-style minimal integration of Table 2.)
func walCrashProcedure(env *kernel.Env, missing kernel.ResourceMask) (kernel.CrashAction, error) {
	return kernel.ActionRestart, nil
}

// Workload profile: a small storage engine doing mostly I/O. The access
// span covers exactly the two mapped pages (header + payload buffer).
const (
	walAccessPages   = 2
	walAccessesPerOp = 200
	walComputePerOp  = 20000
)

// WALKV is the server program.
type WALKV struct {
	// Buggy selects the commit-before-durable protocol.
	Buggy bool
	// txnAppendAt stamps (virtual time) the first record append of the
	// in-flight transaction, feeding the commit-to-durable latency
	// histogram when the commit fsync lands on the platter. Observability
	// only — the recoverable state lives entirely in simulated memory, so
	// losing this stamp across a crash merely drops that one sample.
	txnAppendAt time.Duration
	txnTimed    bool
}

// walLatencyBounds buckets the commit-to-durable latency histogram
// (virtual nanoseconds): appends are buffered, so the latency is dominated
// by the two fsyncs and grows with queued platter writes.
var walLatencyBounds = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// Boot recovers from the on-disk log, then opens it for appending and
// binds the client socket. There is no crash procedure: the store's state
// IS the log, and a restart is exactly recovery.
func (s *WALKV) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(walHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(walBufVA, 4096, rw); err != nil {
		return err
	}
	data, err := s.loadLog(env)
	if err != nil {
		return err
	}
	scan := ParseWAL(data)
	if err := env.WriteU64(walHdrVA+walMagicOff, walMagic); err != nil {
		return err
	}
	mode := uint64(0)
	if s.Buggy {
		mode = 1
	}
	if err := env.WriteU64(walHdrVA+walModeOff, mode); err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walPhaseOff, WALPhaseIdle); err != nil {
		return err
	}
	// Never reuse a transaction id any slot has seen: leftover records of a
	// lost transaction must not combine with a reissued one.
	if err := env.WriteU64(walHdrVA+walNextTxnOff, scan.MaxTxn+1); err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walAppliedOff, uint64(len(scan.Applied()))); err != nil {
		return err
	}
	fd, err := env.Open(WALPath, layout.FlagWrite|layout.FlagCreate)
	if err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walFDOff, uint64(fd)); err != nil {
		return err
	}
	// Resume appending at the next page boundary: a torn tail stays in
	// place as an invalid slot the scan skips.
	end := (uint64(len(data)) + WALRecordSize - 1) / WALRecordSize * WALRecordSize
	if err := env.Seek(fd, end); err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walEndOff, end); err != nil {
		return err
	}
	if err := env.SockOpen(walSockID, layout.ProtoTCP, WALPort); err != nil {
		return err
	}
	return env.RegisterCrashProcedure(WALCrashProc)
}

// Rehydrate is a no-op: a resurrected store continues its in-flight
// transaction from the phase word.
func (s *WALKV) Rehydrate(env *kernel.Env) error { return nil }

// loadLog reads the whole log file (empty slice if absent).
func (s *WALKV) loadLog(env *kernel.Env) ([]byte, error) {
	fd, err := env.Open(WALPath, layout.FlagRead)
	if err != nil {
		return nil, nil // no log yet: fresh store
	}
	data := make([]byte, 0, 1<<16)
	chunk := make([]byte, WALRecordSize)
	for {
		n, rerr := env.ReadFile(fd, chunk)
		if rerr != nil {
			return nil, rerr
		}
		if n == 0 {
			break
		}
		data = append(data, chunk[:n]...)
	}
	if err := env.Close(fd); err != nil {
		return nil, err
	}
	return data, nil
}

// Step advances the transaction state machine by exactly one phase.
func (s *WALKV) Step(env *kernel.Env) error {
	env.SyscallAborted() // an aborted call is retried by re-running its phase

	phase, err := env.ReadU64(walHdrVA + walPhaseOff)
	if err != nil {
		return err
	}
	if phase == WALPhaseIdle {
		req, rerr := env.SockRecv(walSockID)
		if rerr != nil {
			if rerr == kernel.ErrWouldBlock {
				return kernel.ErrYield
			}
			return rerr
		}
		return s.beginTxn(env, string(req))
	}

	if err := env.Access(walHdrVA, walAccessPages, walAccessesPerOp); err != nil {
		return err
	}
	env.Compute(walComputePerOp)

	fd64, err := env.ReadU64(walHdrVA + walFDOff)
	if err != nil {
		return err
	}
	fd := uint32(fd64)
	txn, err := env.ReadU64(walHdrVA + walTxnOff)
	if err != nil {
		return err
	}
	mode, err := env.ReadU64(walHdrVA + walModeOff)
	if err != nil {
		return err
	}

	switch phase {
	case WALPhaseRec1, WALPhaseRec2, WALPhaseRec3:
		seq := phase - WALPhaseRec1 + 1
		payload, perr := s.pendingPayload(env)
		if perr != nil {
			return perr
		}
		rec := BuildWALRecord(WALKindRecord, txn, uint64(seq),
			[]byte(fmt.Sprintf("%s#%d", payload, seq)))
		if werr := s.appendRecord(env, fd, rec); werr != nil {
			return werr
		}
		if phase == WALPhaseRec1 {
			s.txnAppendAt = env.K.M.Clock.Now()
			s.txnTimed = true
		}
		next := phase + 1
		if phase == WALPhaseRec3 && mode == 1 {
			next = WALPhaseCommit // the bug: no fsync before COMMIT
		}
		return env.WriteU64(walHdrVA+walPhaseOff, next)
	case WALPhaseSyncRecs:
		if serr := env.Fsync(fd); serr != nil {
			return serr
		}
		return env.WriteU64(walHdrVA+walPhaseOff, WALPhaseCommit)
	case WALPhaseCommit:
		rec := BuildWALRecord(WALKindCommit, txn, 0, nil)
		if werr := s.appendRecord(env, fd, rec); werr != nil {
			return werr
		}
		return env.WriteU64(walHdrVA+walPhaseOff, WALPhaseSyncCommit)
	case WALPhaseSyncCommit:
		if serr := env.Fsync(fd); serr != nil {
			return serr
		}
		// The commit record is on the platter: the transaction is durable.
		if s.txnTimed {
			env.K.Metrics.Histogram("wal_commit_durable_latency_ns",
				"first record append to commit-record-durable, per transaction",
				walLatencyBounds, nil).Observe(int64(env.K.M.Clock.Since(s.txnAppendAt)))
			s.txnTimed = false
		}
		return env.WriteU64(walHdrVA+walPhaseOff, WALPhaseAck)
	case WALPhaseAck:
		return s.ack(env, txn)
	}
	return fmt.Errorf("walkv: corrupt phase %d", phase)
}

// beginTxn parses "P <seq> <payload>", assigns a transaction id and enters
// the append phases.
func (s *WALKV) beginTxn(env *kernel.Env, req string) error {
	fields := strings.SplitN(req, " ", 3)
	if len(fields) < 3 || fields[0] != "P" {
		return env.SockSend(walSockID, []byte("ERR parse"))
	}
	payload := fields[2]
	if len(payload) > WALPayloadCap {
		payload = payload[:WALPayloadCap]
	}
	next, err := env.ReadU64(walHdrVA + walNextTxnOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walTxnOff, next); err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walNextTxnOff, next+1); err != nil {
		return err
	}
	var seqNum uint64
	fmt.Sscanf(fields[1], "%d", &seqNum)
	if err := env.WriteU64(walHdrVA+walPendingSeqOff, seqNum); err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walPendingLenOff, uint64(len(payload))); err != nil {
		return err
	}
	if err := env.Write(walBufVA, []byte(payload)); err != nil {
		return err
	}
	return env.WriteU64(walHdrVA+walPhaseOff, WALPhaseRec1)
}

// pendingPayload reads the in-flight request payload from the buffer page.
func (s *WALKV) pendingPayload(env *kernel.Env) (string, error) {
	n, err := env.ReadU64(walHdrVA + walPendingLenOff)
	if err != nil {
		return "", err
	}
	if n > WALPayloadCap {
		return "", fmt.Errorf("walkv: corrupt pending length %d", n)
	}
	buf := make([]byte, n)
	if err := env.Read(walBufVA, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// appendRecord writes one page-sized record at the tracked append position.
func (s *WALKV) appendRecord(env *kernel.Env, fd uint32, rec []byte) error {
	if _, err := env.WriteFile(fd, rec); err != nil {
		return err
	}
	end, err := env.ReadU64(walHdrVA + walEndOff)
	if err != nil {
		return err
	}
	return env.WriteU64(walHdrVA+walEndOff, end+WALRecordSize)
}

// ack applies the committed transaction and replies to the client.
func (s *WALKV) ack(env *kernel.Env, txn uint64) error {
	applied, err := env.ReadU64(walHdrVA + walAppliedOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walAppliedOff, applied+1); err != nil {
		return err
	}
	ops, err := env.ReadU64(walHdrVA + walOpsOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walOpsOff, ops+1); err != nil {
		return err
	}
	seq, err := env.ReadU64(walHdrVA + walPendingSeqOff)
	if err != nil {
		return err
	}
	if err := env.WriteU64(walHdrVA+walPhaseOff, WALPhaseIdle); err != nil {
		return err
	}
	return env.SockSend(walSockID, []byte(fmt.Sprintf("OK P %d %d", seq, txn)))
}

// WALPhase reads the server's current transaction phase, for crash-point
// sweep tests that panic the kernel at a chosen boundary.
func WALPhase(env *kernel.Env) (uint64, error) {
	magic, err := env.ReadU64(walHdrVA + walMagicOff)
	if err != nil {
		return 0, err
	}
	if magic != walMagic {
		return 0, fmt.Errorf("walkv state corrupted: magic %#x", magic)
	}
	return env.ReadU64(walHdrVA + walPhaseOff)
}

// WALHeaderMagicOK verifies the resurrected header page.
func WALHeaderMagicOK(env *kernel.Env) error {
	magic, err := env.ReadU64(walHdrVA + walMagicOff)
	if err != nil {
		return err
	}
	if magic != walMagic {
		return fmt.Errorf("walkv state corrupted: magic %#x", magic)
	}
	return nil
}

// BuildWALRecord assembles one page-sized record with its trailing CRC.
func BuildWALRecord(kind, txn, seq uint64, payload []byte) []byte {
	rec := make([]byte, WALRecordSize)
	binary.LittleEndian.PutUint64(rec[walRecMagicOff:], walRecMagic)
	binary.LittleEndian.PutUint64(rec[walRecKindOff:], kind)
	binary.LittleEndian.PutUint64(rec[walRecTxnOff:], txn)
	binary.LittleEndian.PutUint64(rec[walRecSeqOff:], seq)
	binary.LittleEndian.PutUint64(rec[walRecLenOff:], uint64(len(payload)))
	copy(rec[walRecPayloadOff:], payload)
	binary.LittleEndian.PutUint32(rec[walCRCOff:], crc32.ChecksumIEEE(rec[:walCRCOff]))
	return rec
}

// WALScan is the result of parsing a log image slot by slot.
type WALScan struct {
	// Slots counts page-sized slots examined; InvalidSlots of them failed
	// validation (zero padding, torn or rolled-back writes).
	Slots        int
	InvalidSlots int
	// Commits maps transaction id -> seen valid COMMIT slot.
	Commits map[uint64]bool
	// Records maps transaction id -> set of valid record sequence numbers.
	Records map[uint64]map[uint64]bool
	// MaxTxn is the highest transaction id any valid slot names.
	MaxTxn uint64
}

// ParseWAL scans a log image page-aligned slot by slot. Invalid slots are
// skipped, not fatal: after a torn write the log legitimately contains
// garbage slots between valid ones.
func ParseWAL(data []byte) WALScan {
	scan := WALScan{
		Commits: make(map[uint64]bool),
		Records: make(map[uint64]map[uint64]bool),
	}
	for off := 0; off+WALRecordSize <= len(data); off += WALRecordSize {
		scan.Slots++
		slot := data[off : off+WALRecordSize]
		if binary.LittleEndian.Uint64(slot[walRecMagicOff:]) != walRecMagic {
			scan.InvalidSlots++
			continue
		}
		if crc32.ChecksumIEEE(slot[:walCRCOff]) != binary.LittleEndian.Uint32(slot[walCRCOff:]) {
			scan.InvalidSlots++
			continue
		}
		kind := binary.LittleEndian.Uint64(slot[walRecKindOff:])
		txn := binary.LittleEndian.Uint64(slot[walRecTxnOff:])
		seq := binary.LittleEndian.Uint64(slot[walRecSeqOff:])
		if txn > scan.MaxTxn {
			scan.MaxTxn = txn
		}
		switch kind {
		case WALKindCommit:
			scan.Commits[txn] = true
		case WALKindRecord:
			if seq < 1 || seq > WALRecsPerTxn {
				scan.InvalidSlots++
				continue
			}
			if scan.Records[txn] == nil {
				scan.Records[txn] = make(map[uint64]bool)
			}
			scan.Records[txn][seq] = true
		default:
			scan.InvalidSlots++
		}
	}
	if tail := len(data) % WALRecordSize; tail != 0 {
		scan.Slots++
		scan.InvalidSlots++ // a torn tail is by definition invalid
	}
	return scan
}

// Complete reports whether txn has all of its data records.
func (s WALScan) Complete(txn uint64) bool {
	recs := s.Records[txn]
	if len(recs) < WALRecsPerTxn {
		return false
	}
	for seq := uint64(1); seq <= WALRecsPerTxn; seq++ {
		if !recs[seq] {
			return false
		}
	}
	return true
}

// Applied returns the transactions recovery would apply: valid COMMIT plus
// all data records.
func (s WALScan) Applied() []uint64 {
	var out []uint64
	for txn := range s.Commits {
		if s.Complete(txn) {
			out = append(out, txn)
		}
	}
	return out
}
