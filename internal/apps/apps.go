// Package apps implements the applications the paper evaluates Otherworld
// with (Section 5): the vi and JOE text editors, the MySQL database server
// with its MEMORY pluggable storage engine, the Apache/PHP web application
// server with shared-memory session state, the BLCR in-memory checkpointing
// solution, and the Volano chat-server benchmark used for the protection
// overhead measurements (Table 3), plus an interactive shell for Table 6.
//
// Every application keeps its entire persistent state inside the simulated
// address space (or in files), exactly as a real process image would, so
// resurrection genuinely reconstructs the application from raw memory.
package apps

import (
	"time"

	"otherworld/internal/kernel"
)

// Program names in the registry.
const (
	ProgVi           = "vi"
	ProgJoe          = "joe"
	ProgJoeUnpatched = "joe-unpatched"
	ProgMySQL        = "mysqld"
	ProgApache       = "apache-php"
	ProgBLCR         = "blcr-app"
	ProgVolano       = "volano"
	ProgShell        = "sh"
	ProgWAL          = "walkv"
	ProgWALBug       = "walkv-bug"
)

// Info describes an application's Otherworld integration, reproducing the
// paper's Table 2 ("Modifications to the applications to support
// Otherworld").
type Info struct {
	// App is the display name used in the paper.
	App string
	// Program is the registry name.
	Program string
	// CrashProcRequired reports whether resurrection needs a crash
	// procedure (because the app uses unresurrectable resources).
	CrashProcRequired bool
	// CrashProcName is the registered crash-procedure name ("" if none).
	CrashProcName string
	// ModifiedLines counts the application-source changes, mirroring the
	// paper's Table 2 (vi 0, JOE 1, MySQL 75, Apache 115, BLCR 0).
	ModifiedLines int
}

// Table2 returns the per-application integration summary in paper order.
func Table2() []Info {
	return []Info{
		{App: "vi", Program: ProgVi, CrashProcRequired: false, ModifiedLines: 0},
		{App: "JOE", Program: ProgJoe, CrashProcRequired: false, ModifiedLines: 1},
		{App: "MySQL", Program: ProgMySQL, CrashProcRequired: true, CrashProcName: MySQLCrashProc, ModifiedLines: 75},
		{App: "Apache", Program: ProgApache, CrashProcRequired: true, CrashProcName: ApacheCrashProc, ModifiedLines: 115},
		{App: "BLCR", Program: ProgBLCR, CrashProcRequired: false, ModifiedLines: 0},
	}
}

func init() {
	kernel.RegisterProgram(ProgVi, func() kernel.Program { return newEditor(editorVi) })
	kernel.RegisterProgram(ProgJoe, func() kernel.Program { return newEditor(editorJoe) })
	kernel.RegisterProgram(ProgJoeUnpatched, func() kernel.Program { return newEditor(editorJoeUnpatched) })
	kernel.RegisterProgram(ProgMySQL, func() kernel.Program { return &MySQL{} })
	kernel.RegisterProgram(ProgApache, func() kernel.Program { return &Apache{} })
	kernel.RegisterProgram(ProgBLCR, func() kernel.Program { return &BLCR{} })
	kernel.RegisterProgram(ProgVolano, func() kernel.Program { return &Volano{} })
	kernel.RegisterProgram(ProgShell, func() kernel.Program { return &Shell{} })
	kernel.RegisterProgram(ProgWAL, func() kernel.Program { return &WALKV{} })
	kernel.RegisterProgram(ProgWALBug, func() kernel.Program { return &WALKV{Buggy: true} })

	kernel.RegisterCrashProc(MySQLCrashProc, mysqlCrashProcedure)
	kernel.RegisterCrashProc(ApacheCrashProc, apacheCrashProcedure)
	kernel.RegisterCrashProc(WALCrashProc, walCrashProcedure)

	// Service start times for Table 6: the shell is covered by the init
	// scripts; MySQL and Apache pay service initialization on every
	// (re)start, including crash-procedure-driven restarts.
	kernel.RegisterStartupCost(ProgMySQL, 7*time.Second)
	kernel.RegisterStartupCost(ProgApache, 6*time.Second)
}
