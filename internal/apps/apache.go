package apps

import (
	"fmt"
	"strconv"
	"strings"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// Apache models the Section 5.3 case study: a web application server whose
// PHP session module keeps session data in shared memory — a hash table
// keyed by session id holding serialized session values, reachable from a
// global variable. The crash procedure saves every element of the table to
// a file and restarts; startup repopulates the table. All changes live in
// the PHP module, so "all PHP applications can benefit ... without any
// changes" — here, all workloads driving the server benefit unchanged.

// ApacheCrashProc is the registered crash-procedure name.
const ApacheCrashProc = "php-crashproc"

// ApachePort is the server's listen port.
const ApachePort uint16 = 80

// apacheSessionsPath is where the crash procedure saves session data.
const apacheSessionsPath = "/var/www/sessions.dat"

// Shared-memory session store layout.
const (
	apShmVA  = 0x500000
	apShmCap = 512 << 10
	apHdrVA  = 0x600000 // ordinary header page (request counter, socket)
	// apWorkVA is the interpreter's working set (code, opcode caches,
	// request buffers) that the TLB traffic model touches.
	apWorkVA = 0x680000

	// Session store header (inside the shm segment).
	apMagicOff     = 0
	apCountOff     = 8
	apArenaNextOff = 16
	apListHeadOff  = 24
	apArenaStart   = 64

	// Session entry layout.
	apSessIDOff   = 0
	apSessNextOff = 8
	apSessLenOff  = 16
	apSessDataOff = 24
	// ApacheSessionDataCap is the serialized session value capacity.
	ApacheSessionDataCap = 128
	apSessSlot           = apSessDataOff + ApacheSessionDataCap
)

const apMagic = 0xA9AC4E0000000001

// apacheSockID is the listen socket identifier.
const apacheSockID = 1

// Apache workload profile (Table 3): more pages touched per request than
// MySQL (request parsing, PHP interpretation, session lookup) with less
// non-memory compute, so the TLB flushes hurt proportionally more.
const (
	apacheAccessPages   = 65
	apacheAccessesPerOp = 1160
	apacheComputePerOp  = 44000
)

// Apache is the server program.
type Apache struct{}

// Boot maps the session shm segment, reloads saved sessions, binds the
// listen socket and registers the crash procedure.
func (a *Apache) Boot(env *kernel.Env) error {
	if err := env.ShmGet(0xA9AC4E, apShmCap, apShmVA); err != nil {
		return err
	}
	if err := env.MapAnon(apHdrVA, 4096, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	if err := env.MapAnon(apWorkVA, apacheAccessPages*4096, layout.ProtRead|layout.ProtWrite); err != nil {
		return err
	}
	if err := env.WriteU64(apShmVA+apMagicOff, apMagic); err != nil {
		return err
	}
	if err := env.WriteU64(apShmVA+apArenaNextOff, apShmVA+apArenaStart); err != nil {
		return err
	}
	if err := a.loadSessions(env); err != nil {
		return err
	}
	if err := env.SockOpen(apacheSockID, layout.ProtoTCP, ApachePort); err != nil {
		return err
	}
	return env.RegisterCrashProcedure(ApacheCrashProc)
}

func (a *Apache) Rehydrate(env *kernel.Env) error { return nil }

// Step serves one HTTP request, if any:
//
//	S <seq> <sess> <data>  store session data, replies "OK <seq>"
//	G <seq> <sess>         fetch session data, replies "OK <seq> <data>"
func (a *Apache) Step(env *kernel.Env) error {
	env.SyscallAborted() // the accept loop reissues its recv

	req, err := env.SockRecv(apacheSockID)
	if err != nil {
		if err == kernel.ErrWouldBlock {
			return kernel.ErrYield
		}
		return err
	}
	if err := env.Access(apWorkVA, apacheAccessPages, apacheAccessesPerOp); err != nil {
		return err
	}
	env.Compute(apacheComputePerOp)

	resp := a.handle(env, string(req))
	reqs, err := env.ReadU64(apHdrVA)
	if err != nil {
		return err
	}
	if err := env.WriteU64(apHdrVA, reqs+1); err != nil {
		return err
	}
	return env.SockSend(apacheSockID, []byte(resp))
}

func (a *Apache) handle(env *kernel.Env, req string) string {
	fields := strings.SplitN(req, " ", 4)
	if len(fields) < 3 {
		return "ERR parse"
	}
	seq := fields[1]
	sess, perr := strconv.ParseUint(fields[2], 10, 64)
	if perr != nil {
		return "ERR parse"
	}
	switch fields[0] {
	case "S":
		if len(fields) < 4 {
			return "ERR parse"
		}
		if err := apacheSetSession(env, sess, []byte(fields[3])); err != nil {
			return "ERR " + seq + " " + err.Error()
		}
		return "OK " + seq
	case "G":
		data, ok, err := apacheGetSession(env, sess)
		if err != nil {
			return "ERR " + seq + " " + err.Error()
		}
		if !ok {
			return "OK " + seq + " -"
		}
		return "OK " + seq + " " + string(data)
	}
	return "ERR op"
}

// apacheFindSession walks the session list for id.
func apacheFindSession(env *kernel.Env, id uint64) (entryVA uint64, err error) {
	cur, err := env.ReadU64(apShmVA + apListHeadOff)
	if err != nil {
		return 0, err
	}
	for hops := 0; cur != 0; hops++ {
		if hops > apShmCap/apSessSlot {
			return 0, fmt.Errorf("session list loop")
		}
		sid, err := env.ReadU64(cur + apSessIDOff)
		if err != nil {
			return 0, err
		}
		if sid == id {
			return cur, nil
		}
		if cur, err = env.ReadU64(cur + apSessNextOff); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// apacheSetSession creates or updates a session entry in the shm table.
func apacheSetSession(env *kernel.Env, id uint64, data []byte) error {
	if len(data) > ApacheSessionDataCap {
		data = data[:ApacheSessionDataCap]
	}
	entry, err := apacheFindSession(env, id)
	if err != nil {
		return err
	}
	if entry == 0 {
		// Crash-safe ordering: fill the unlinked entry, retire the
		// arena slot, then link it (the commit point). A crash in
		// between leaves the table consistent without the
		// unacknowledged session, and the client retries.
		arenaNext, err := env.ReadU64(apShmVA + apArenaNextOff)
		if err != nil {
			return err
		}
		if arenaNext+apSessSlot > apShmVA+apShmCap {
			return fmt.Errorf("session store full")
		}
		head, err := env.ReadU64(apShmVA + apListHeadOff)
		if err != nil {
			return err
		}
		entry = arenaNext
		if err := env.WriteU64(entry+apSessIDOff, id); err != nil {
			return err
		}
		if err := env.WriteU64(entry+apSessNextOff, head); err != nil {
			return err
		}
		if err := env.Write(entry+apSessDataOff, data); err != nil {
			return err
		}
		if err := env.WriteU64(entry+apSessLenOff, uint64(len(data))); err != nil {
			return err
		}
		if err := env.WriteU64(apShmVA+apArenaNextOff, arenaNext+apSessSlot); err != nil {
			return err
		}
		if err := env.WriteU64(apShmVA+apListHeadOff, entry); err != nil {
			return err
		}
		count, err := env.ReadU64(apShmVA + apCountOff)
		if err != nil {
			return err
		}
		return env.WriteU64(apShmVA+apCountOff, count+1)
	}
	// Existing session: write the value, then the length word that makes
	// it visible.
	if err := env.Write(entry+apSessDataOff, data); err != nil {
		return err
	}
	return env.WriteU64(entry+apSessLenOff, uint64(len(data)))
}

// apacheGetSession fetches a session's serialized value.
func apacheGetSession(env *kernel.Env, id uint64) ([]byte, bool, error) {
	entry, err := apacheFindSession(env, id)
	if err != nil || entry == 0 {
		return nil, false, err
	}
	n, err := env.ReadU64(entry + apSessLenOff)
	if err != nil {
		return nil, false, err
	}
	if n > ApacheSessionDataCap {
		return nil, false, fmt.Errorf("session corrupted: length %d", n)
	}
	data := make([]byte, n)
	if err := env.Read(entry+apSessDataOff, data); err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// ApacheSnapshot reads the whole session table, as the crash procedure
// does.
func ApacheSnapshot(env *kernel.Env) (map[uint64][]byte, error) {
	magic, err := env.ReadU64(apShmVA + apMagicOff)
	if err != nil {
		return nil, err
	}
	if magic != apMagic {
		return nil, fmt.Errorf("session store corrupted: magic %#x", magic)
	}
	out := make(map[uint64][]byte)
	cur, err := env.ReadU64(apShmVA + apListHeadOff)
	if err != nil {
		return nil, err
	}
	for hops := 0; cur != 0; hops++ {
		if hops > apShmCap/apSessSlot {
			return nil, fmt.Errorf("session store corrupted: list loop")
		}
		id, err := env.ReadU64(cur + apSessIDOff)
		if err != nil {
			return nil, err
		}
		n, err := env.ReadU64(cur + apSessLenOff)
		if err != nil {
			return nil, err
		}
		if n > ApacheSessionDataCap {
			return nil, fmt.Errorf("session store corrupted: length %d", n)
		}
		data := make([]byte, n)
		if err := env.Read(cur+apSessDataOff, data); err != nil {
			return nil, err
		}
		out[id] = data
		if cur, err = env.ReadU64(cur + apSessNextOff); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// apacheCrashProcedure is the Section 5.3 crash procedure: walk the session
// hash table in shared memory, save each element to a file, restart Apache.
// (~110 new lines in the real PHP module.)
func apacheCrashProcedure(env *kernel.Env, missing kernel.ResourceMask) (kernel.CrashAction, error) {
	if missing&kernel.ResShm != 0 || missing&kernel.ResMemory != 0 {
		return kernel.ActionGiveUp, nil
	}
	sessions, err := ApacheSnapshot(env)
	if err != nil {
		return kernel.ActionGiveUp, nil
	}
	fd, err := env.Open(apacheSessionsPath, layout.FlagWrite|layout.FlagCreate|layout.FlagTrunc)
	if err != nil {
		return kernel.ActionGiveUp, err
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, "%d\n", len(sessions))
	ids := make([]uint64, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sortU64(ids)
	for _, id := range ids {
		fmt.Fprintf(&buf, "%d %s\n", id, string(sessions[id]))
	}
	if _, err := env.WriteFile(fd, []byte(buf.String())); err != nil {
		return kernel.ActionGiveUp, err
	}
	if err := env.Fsync(fd); err != nil {
		return kernel.ActionGiveUp, err
	}
	if err := env.Close(fd); err != nil {
		return kernel.ActionGiveUp, err
	}
	return kernel.ActionRestart, nil
}

// loadSessions repopulates the shm table from a crash-procedure save.
func (a *Apache) loadSessions(env *kernel.Env) error {
	fd, err := env.Open(apacheSessionsPath, layout.FlagRead)
	if err != nil {
		return nil // nothing saved
	}
	data := make([]byte, 0, apShmCap)
	chunk := make([]byte, 4096)
	for {
		n, rerr := env.ReadFile(fd, chunk)
		if rerr != nil {
			return rerr
		}
		if n == 0 {
			break
		}
		data = append(data, chunk[:n]...)
	}
	if err := env.Close(fd); err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n")[1:] {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 2)
		if len(parts) < 2 {
			continue
		}
		id, perr := strconv.ParseUint(parts[0], 10, 64)
		if perr != nil {
			continue
		}
		if err := apacheSetSession(env, id, []byte(parts[1])); err != nil {
			return err
		}
	}
	fd, err = env.Open(apacheSessionsPath, layout.FlagWrite|layout.FlagTrunc)
	if err != nil {
		return err
	}
	return env.Close(fd)
}

// CorruptSessionByte flips one byte of a session's stored value in place,
// bypassing the server: fault-injection harnesses use it to plant exactly
// the damage an undetected wild write would cause, then check that
// verification catches it.
func CorruptSessionByte(env *kernel.Env, id uint64) error {
	entry, err := apacheFindSession(env, id)
	if err != nil {
		return err
	}
	if entry == 0 {
		return fmt.Errorf("apache: no session %d", id)
	}
	var b [1]byte
	if err := env.Read(entry+apSessDataOff, b[:]); err != nil {
		return err
	}
	b[0] ^= 0x55
	return env.Write(entry+apSessDataOff, b[:])
}
