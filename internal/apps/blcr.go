package apps

import (
	"fmt"
	"time"

	"otherworld/internal/checkpoint"
	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// BLCR models the Section 5.4 case study: an unmodified scientific
// application checkpointed by the (modified, in-memory) BLCR library. The
// application itself needs no crash procedure — Otherworld's resurrection
// preserves the in-memory checkpoints that a traditional reboot would wipe.
// The paper used an 800 MB footprint; the simulation defaults to a scaled
// image (see EXPERIMENTS.md).

// BLCR memory layout.
const (
	blcrHdrVA = 0x700000
	// BLCRDataVA is the application data region being checkpointed.
	BLCRDataVA = 0x800000
	// BLCRDataPages sizes the checkpointed image.
	BLCRDataPages = 2048 // 8 MiB
	// BLCRCkptVA is the in-memory checkpoint region.
	BLCRCkptVA = 0x4000000
	// BLCRCheckpointEvery is the checkpoint interval in steps ("periodic
	// in-memory checkpointing", Section 6).
	BLCRCheckpointEvery = 50
)

// Header word offsets.
const (
	blcrMagicOff = 8 * iota
	blcrIterOff
	blcrCkptSeqOff
)

const blcrMagic = 0xB1C40001

// BLCR is the checkpointed application program.
type BLCR struct{}

// Boot maps the data and checkpoint regions and fills the data image with a
// deterministic pattern.
func (b *BLCR) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(blcrHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(BLCRDataVA, BLCRDataPages*4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(BLCRCkptVA, (BLCRDataPages+1)*4096, rw); err != nil {
		return err
	}
	if err := env.WriteU64(blcrHdrVA+blcrMagicOff, blcrMagic); err != nil {
		return err
	}
	// Seed the first words of each data page so iteration effects are
	// verifiable without touching every byte.
	for i := 0; i < BLCRDataPages; i++ {
		if err := env.WriteU64(BLCRDataVA+uint64(i)*4096, uint64(i)); err != nil {
			return err
		}
	}
	return nil
}

func (b *BLCR) Rehydrate(env *kernel.Env) error { return nil }

// Step runs one iteration of the computation: take any due in-memory
// checkpoint, mutate a stride of pages, then atomically commit the
// iteration counter. Every phase is re-entrant — a kernel crash anywhere in
// the step replays it idempotently after resurrection, because the page
// writes are pure functions of the committed counter and the checkpoint is
// invalidated-then-rewritten.
func (b *BLCR) Step(env *kernel.Env) error {
	env.SyscallAborted() // computation does not care; next write proceeds

	iter, err := env.ReadU64(blcrHdrVA + blcrIterOff)
	if err != nil {
		return err
	}

	// Take (or retake, after a crash mid-copy) the checkpoint due at this
	// iteration.
	if iter > 0 && iter%BLCRCheckpointEvery == 0 {
		due := iter / BLCRCheckpointEvery
		seq, err := env.ReadU64(blcrHdrVA + blcrCkptSeqOff)
		if err != nil {
			return err
		}
		if seq != due {
			if err := checkpoint.ToMemory(env, BLCRDataVA, BLCRCkptVA, BLCRDataPages, due); err != nil {
				return err
			}
			if err := env.WriteU64(blcrHdrVA+blcrCkptSeqOff, due); err != nil {
				return err
			}
		}
	}

	// The computation writes a stride of pages per iteration; the values
	// are functions of iter, so replaying after a crash is harmless.
	for j := 0; j < 8; j++ {
		page := (iter*8 + uint64(j)) % BLCRDataPages
		if err := env.WriteU64(BLCRDataVA+page*4096+8, iter); err != nil {
			return err
		}
	}
	if err := env.Access(BLCRDataVA, BLCRDataPages, 200); err != nil {
		return err
	}
	env.Compute(300000)

	// Atomic commit of the iteration.
	return env.WriteU64(blcrHdrVA+blcrIterOff, iter+1)
}

// BLCRSnapshot is the externally verifiable BLCR state.
type BLCRSnapshot struct {
	Iter    uint64
	CkptSeq uint64
	// CkptValid reports the in-memory checkpoint header verified.
	CkptValid bool
	// DataChecksum summarizes the first word of every data page.
	DataChecksum uint64
}

// SnapshotBLCR reads the application and checkpoint state.
func SnapshotBLCR(env *kernel.Env) (*BLCRSnapshot, error) {
	magic, err := env.ReadU64(blcrHdrVA + blcrMagicOff)
	if err != nil {
		return nil, err
	}
	if magic != blcrMagic {
		return nil, fmt.Errorf("blcr state corrupted: magic %#x", magic)
	}
	s := &BLCRSnapshot{}
	if s.Iter, err = env.ReadU64(blcrHdrVA + blcrIterOff); err != nil {
		return nil, err
	}
	if s.CkptSeq, err = env.ReadU64(blcrHdrVA + blcrCkptSeqOff); err != nil {
		return nil, err
	}
	seq, pages, ok, err := checkpoint.MemoryInfo(env, BLCRCkptVA)
	if err != nil {
		return nil, err
	}
	_ = seq // the header seq may trail by one across a crash mid-commit
	s.CkptValid = ok && pages == BLCRDataPages
	for i := 0; i < BLCRDataPages; i++ {
		v, err := env.ReadU64(BLCRDataVA + uint64(i)*4096)
		if err != nil {
			return nil, err
		}
		s.DataChecksum = s.DataChecksum*1099511628211 ^ v
	}
	return s, nil
}

// MeasureCheckpointCosts captures one checkpoint of the application image
// to memory and one to disk, returning the virtual-time cost of each — the
// Section 5.4 comparison ("checkpointing performance improves approximately
// by a factor 10" when kept in memory).
func MeasureCheckpointCosts(env *kernel.Env) (memCost, diskCost time.Duration, err error) {
	clock := env.K.M.Clock
	t0 := clock.Now()
	if err := checkpoint.ToMemory(env, BLCRDataVA, BLCRCkptVA, BLCRDataPages, 1); err != nil {
		return 0, 0, err
	}
	memCost = clock.Since(t0)
	t1 := clock.Now()
	if err := checkpoint.ToDisk(env, BLCRDataVA, BLCRDataPages, "/var/lib/blcr/ckpt.img", 1); err != nil {
		return 0, 0, err
	}
	diskCost = clock.Since(t1)
	return memCost, diskCost, nil
}

// RestoreBLCRFromCheckpoint rolls the application data back to the last
// in-memory checkpoint, returning its sequence number — the post-crash
// recovery the case study exercises ("we were able to successfully recover
// application checkpoints from operating system crashes and continue
// running applications from those checkpoints").
func RestoreBLCRFromCheckpoint(env *kernel.Env) (uint64, error) {
	return checkpoint.RestoreFromMemory(env, BLCRDataVA, BLCRCkptVA)
}
