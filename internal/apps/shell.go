package apps

import (
	"fmt"

	"otherworld/internal/kernel"
	"otherworld/internal/layout"
)

// Shell is the interactive text-mode shell of Table 6's first row: the
// simplest process the interactive user cares about after a microreboot.
// It echoes keystrokes to its terminal and keeps a command history in
// memory; surviving a microreboot means the user's screen and history come
// back exactly as they were.

const (
	shHdrVA   = 0xA00000
	shHistVA  = 0xA01000
	shHistCap = 1 << 16
)

// Header word offsets.
const (
	shMagicOff = 8 * iota
	shHistLenOff
	shCmdsOff
)

const shMagic = 0x5E110001

// Shell is the program.
type Shell struct{}

// Boot maps the history buffer and opens the console.
func (s *Shell) Boot(env *kernel.Env) error {
	rw := uint8(layout.ProtRead | layout.ProtWrite)
	if err := env.MapAnon(shHdrVA, 4096, rw); err != nil {
		return err
	}
	if err := env.MapAnon(shHistVA, shHistCap, rw); err != nil {
		return err
	}
	if err := env.TermOpen(uint32(env.PID())); err != nil {
		return err
	}
	if err := env.TermWrite([]byte("$ ")); err != nil {
		return err
	}
	return env.WriteU64(shHdrVA+shMagicOff, shMagic)
}

func (s *Shell) Rehydrate(env *kernel.Env) error { return nil }

// Step reads one keystroke, echoes it and appends it to the history; '\n'
// counts a completed command and prints a fresh prompt.
func (s *Shell) Step(env *kernel.Env) error {
	env.SyscallAborted() // the read loop simply retries

	key, ok, err := env.TermRead()
	if err != nil {
		return err
	}
	if !ok {
		return kernel.ErrYield
	}
	if err := env.TermWrite([]byte{key}); err != nil {
		return err
	}
	histLen, err := env.ReadU64(shHdrVA + shHistLenOff)
	if err != nil {
		return err
	}
	if histLen < shHistCap {
		if err := env.Write(shHistVA+histLen, []byte{key}); err != nil {
			return err
		}
		histLen++
		if err := env.WriteU64(shHdrVA+shHistLenOff, histLen); err != nil {
			return err
		}
	}
	if key == '\n' {
		cmds, err := env.ReadU64(shHdrVA + shCmdsOff)
		if err != nil {
			return err
		}
		if err := env.WriteU64(shHdrVA+shCmdsOff, cmds+1); err != nil {
			return err
		}
		if err := env.TermWrite([]byte("$ ")); err != nil {
			return err
		}
	}
	env.Compute(2000)
	return nil
}

// ShellSnapshot is the externally verifiable shell state.
type ShellSnapshot struct {
	History string
	Cmds    uint64
}

// SnapshotShell reads the shell state out of the process image.
func SnapshotShell(env *kernel.Env) (*ShellSnapshot, error) {
	magic, err := env.ReadU64(shHdrVA + shMagicOff)
	if err != nil {
		return nil, err
	}
	if magic != shMagic {
		return nil, fmt.Errorf("shell state corrupted: magic %#x", magic)
	}
	n, err := env.ReadU64(shHdrVA + shHistLenOff)
	if err != nil {
		return nil, err
	}
	if n > shHistCap {
		return nil, fmt.Errorf("shell state corrupted: history length %d", n)
	}
	hist := make([]byte, n)
	if err := env.Read(shHistVA, hist); err != nil {
		return nil, err
	}
	cmds, err := env.ReadU64(shHdrVA + shCmdsOff)
	if err != nil {
		return nil, err
	}
	return &ShellSnapshot{History: string(hist), Cmds: cmds}, nil
}
