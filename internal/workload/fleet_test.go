package workload

import (
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/resurrect"
)

// TestWholeFleetSurvivesOneMicroreboot runs every Table 5 application on
// the same machine simultaneously — the paper's multi-process scenario
// where the user selects several processes for resurrection — crashes the
// kernel once, and verifies every application against its own remote log.
func TestWholeFleetSurvivesOneMicroreboot(t *testing.T) {
	m := testMachine(t, 999)
	fleet := []Driver{
		NewEditorDriver("vi", "vi", 1),
		NewEditorDriver("joe", "joe", 2),
		NewMySQLDriver(3),
		NewApacheDriver(4),
		NewBLCRDriver(5),
		NewShellDriver(6),
	}
	for _, d := range fleet {
		if err := d.Start(m); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
	for _, d := range fleet {
		d.Pump(m, 80)
	}
	if res := m.Run(6000); res.Panic != nil {
		t.Fatalf("panic during warmup: %v", res.Panic)
	}
	for _, d := range fleet {
		if d.Acked() == 0 {
			t.Fatalf("%s made no progress", d.Name())
		}
	}

	if err := m.K.InjectOops("fleet crash"); err == nil {
		t.Fatal("no panic")
	}
	out, err := m.HandleFailure()
	if err != nil || out.Result != core.ResultRecovered {
		t.Fatalf("recover: %v %v", out, err)
	}
	if len(out.Report.Candidates) != len(fleet) {
		t.Fatalf("candidates = %d, want %d", len(out.Report.Candidates), len(fleet))
	}
	for _, pr := range out.Report.Procs {
		if pr.Outcome != resurrect.OutcomeContinued && pr.Outcome != resurrect.OutcomeRestarted {
			t.Fatalf("%s: outcome %v (%v)", pr.Candidate.Name, pr.Outcome, pr.Err)
		}
	}

	for _, d := range fleet {
		if err := d.Reattach(m); err != nil {
			t.Fatalf("%s reattach: %v", d.Name(), err)
		}
	}
	for _, d := range fleet {
		d.Pump(m, 40)
	}
	if res := m.Run(4000); res.Panic != nil {
		t.Fatalf("panic after resurrection: %v", res.Panic)
	}
	for _, d := range fleet {
		if err := d.Verify(m); err != nil {
			t.Fatalf("%s verify: %v", d.Name(), err)
		}
	}
}

// TestSelectiveResurrectionDropsTheRest reproduces Section 3.3's
// configuration-file behaviour at fleet scale: only the named processes are
// revived; the window manager and friends restart fresh instead.
func TestSelectiveResurrectionDropsTheRest(t *testing.T) {
	m := testMachine(t, 1001)
	// Configure via a fresh machine: names only.
	opts := core.DefaultOptions()
	opts.HW = testHWConfig()
	opts.CrashRegionMB = 16
	opts.Seed = 1001
	opts.Resurrection = resurrect.Config{Names: []string{"mysqld"}}
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	db := NewMySQLDriver(3)
	ed := NewEditorDriver("vi", "vi", 4)
	if err := db.Start(m); err != nil {
		t.Fatal(err)
	}
	if err := ed.Start(m); err != nil {
		t.Fatal(err)
	}
	db.Pump(m, 50)
	ed.Pump(m, 50)
	m.Run(4000)

	_ = m.K.InjectOops("selective")
	out, err := m.HandleFailure()
	if err != nil || out.Result != core.ResultRecovered {
		t.Fatalf("recover: %v %v", out, err)
	}
	if len(out.Report.Procs) != 1 || out.Report.Procs[0].Candidate.Name != "mysqld" {
		t.Fatalf("resurrected %v", out.Report.Procs)
	}
	if FindProc(m, "vi") != nil {
		t.Fatal("vi should not have been resurrected")
	}
	if err := db.Reattach(m); err != nil {
		t.Fatal(err)
	}
	db.Pump(m, 30)
	m.Run(2000)
	if err := db.Verify(m); err != nil {
		t.Fatalf("mysql verify: %v", err)
	}
}
