package workload

import (
	"fmt"
	"strconv"
	"strings"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/sim"
)

// ApacheDriver plays the web clients of Section 5.3: a population of user
// sessions issuing session-state reads and writes, one request in flight,
// with the acknowledged state logged remotely and verified after crashes.
type ApacheDriver struct {
	rng *sim.RNG

	budget         int
	seq            int
	pending        string
	pendingRetried bool

	// sessions is the remote log of acknowledged session values.
	sessions map[uint64][]byte
	acked    int
	// getMismatches counts GET responses that contradicted the log.
	getMismatches int
}

// NewApacheDriver builds the HTTP session workload.
func NewApacheDriver(seed int64) *ApacheDriver {
	return &ApacheDriver{rng: sim.NewRNG(seed), sessions: make(map[uint64][]byte)}
}

// Name returns the display name.
func (d *ApacheDriver) Name() string { return "Apache/PHP" }

// Program returns the registry name.
func (d *ApacheDriver) Program() string { return apps.ProgApache }

// Start launches the server and connects the clients.
func (d *ApacheDriver) Start(m *core.Machine) error {
	if _, err := m.Start("apache", apps.ProgApache); err != nil {
		return err
	}
	d.connect(m)
	d.sendNext(m)
	return nil
}

func (d *ApacheDriver) connect(m *core.Machine) {
	m.Net.OnRemote(apps.ApachePort, func(payload []byte) {
		d.onResponse(m, string(payload))
	})
}

func (d *ApacheDriver) onResponse(m *core.Machine, resp string) {
	fields := strings.SplitN(resp, " ", 3)
	if len(fields) < 2 || d.pending == "" {
		return
	}
	if fields[1] != strconv.Itoa(d.seq) {
		return // stale duplicate
	}
	if fields[0] == "OK" {
		req := strings.SplitN(d.pending, " ", 4)
		switch req[0] {
		case "S":
			id, _ := strconv.ParseUint(req[2], 10, 64)
			d.sessions[id] = []byte(req[3])
		case "G":
			id, _ := strconv.ParseUint(req[2], 10, 64)
			want, known := d.sessions[id]
			got := ""
			if len(fields) == 3 {
				got = fields[2]
			}
			// A retried GET may race its own crash; only score
			// clean-run reads.
			if known && !d.pendingRetried && got != string(want) {
				d.getMismatches++
			}
		}
	}
	d.pending = ""
	d.pendingRetried = false
	d.acked++
	d.sendNext(m)
}

func (d *ApacheDriver) sendNext(m *core.Machine) {
	if d.pending != "" || d.budget <= 0 {
		return
	}
	d.budget--
	d.seq++
	sess := uint64(1 + d.rng.Intn(40))
	var req string
	if len(d.sessions) > 0 && d.rng.Float64() < 0.35 {
		req = fmt.Sprintf("G %d %d", d.seq, sess)
	} else {
		req = fmt.Sprintf("S %d %d cart%d", d.seq, sess, d.seq)
	}
	d.pending = req
	m.Net.Deliver(apps.ApachePort, []byte(req))
}

// Reattach reconnects after a microreboot and retransmits the in-flight
// request.
func (d *ApacheDriver) Reattach(m *core.Machine) error {
	d.connect(m)
	if d.pending != "" {
		d.pendingRetried = true
		m.Net.Deliver(apps.ApachePort, []byte(d.pending))
	} else {
		d.sendNext(m)
	}
	return nil
}

// Pump grants the clients n more requests and kicks the pipeline.
func (d *ApacheDriver) Pump(m *core.Machine, n int) {
	d.budget += n
	d.sendNext(m)
}

// Acked counts acknowledged requests.
func (d *ApacheDriver) Acked() int { return d.acked }

// Verify compares the session store against the remote log, excluding the
// session named by the single in-flight store (its value is legitimately
// old, new, or — for a brand-new session — absent).
func (d *ApacheDriver) Verify(m *core.Machine) error {
	env, err := EnvFor(m, apps.ProgApache)
	if err != nil {
		return err
	}
	got, err := apps.ApacheSnapshot(env)
	if err != nil {
		return fmt.Errorf("Apache/PHP: %w", err)
	}
	pendingSess := uint64(0)
	pendingVal := ""
	if d.pending != "" {
		req := strings.SplitN(d.pending, " ", 4)
		if req[0] == "S" && len(req) == 4 {
			pendingSess, _ = strconv.ParseUint(req[2], 10, 64)
			pendingVal = req[3]
		}
	}
	for id, want := range d.sessions {
		gotVal, ok := got[id]
		if id == pendingSess {
			if !ok || string(gotVal) == string(want) || string(gotVal) == pendingVal {
				continue
			}
			return fmt.Errorf("Apache/PHP: session %d torn: %q (log %q, in-flight %q)", id, gotVal, want, pendingVal)
		}
		if !ok {
			return fmt.Errorf("Apache/PHP: session %d (%q) missing", id, want)
		}
		if string(gotVal) != string(want) {
			return fmt.Errorf("Apache/PHP: session %d = %q diverged from log %q", id, gotVal, want)
		}
	}
	for id := range got {
		if _, known := d.sessions[id]; !known && id != pendingSess {
			return fmt.Errorf("Apache/PHP: unexpected session %d", id)
		}
	}
	if d.getMismatches > 0 {
		return fmt.Errorf("Apache/PHP: %d GET responses contradicted the log", d.getMismatches)
	}
	return nil
}
