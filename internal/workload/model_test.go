package workload

import (
	"testing"
	"testing/quick"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/kernel"
)

// TestEditorModelMatchesApplication is the model-equivalence property: for
// arbitrary keystroke sequences, the in-simulation editor and the driver's
// shadow model must agree byte-for-byte. This is what makes Table 5's
// data-corruption verdicts trustworthy: any divergence after a crash is
// corruption, not model drift.
func TestEditorModelMatchesApplication(t *testing.T) {
	check := func(raw []byte) bool {
		if len(raw) > 120 {
			raw = raw[:120]
		}
		// Map arbitrary bytes onto the editor's input alphabet.
		keys := make([]byte, len(raw))
		for i, b := range raw {
			switch b % 10 {
			case 0:
				keys[i] = apps.KeyBackspace
			case 1:
				keys[i] = apps.KeyUndo
			case 2:
				keys[i] = apps.KeySave
			case 3:
				keys[i] = '\n'
			default:
				keys[i] = 'a' + b%26
			}
		}

		m := testMachine(t, 5)
		p, err := m.Start("vi", apps.ProgVi)
		if err != nil {
			return false
		}
		i := 0
		m.Consoles.AttachInput(p.PID, func() (byte, bool) {
			if i >= len(keys) {
				return 0, false
			}
			k := keys[i]
			i++
			return k, true
		})
		if res := m.Run(len(keys)*4 + 20); res.Panic != nil {
			return false
		}

		mo := &editorModel{}
		for _, k := range keys {
			mo.apply(k)
		}
		env := &kernel.Env{K: m.K, P: p}
		snap, err := apps.SnapshotEditor(env)
		if err != nil {
			return false
		}
		return snap.Doc == string(mo.doc) &&
			int(snap.UndoLen) == len(mo.undo) &&
			int(snap.Saves) == mo.saves
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMySQLShadowMatchesTableAfterMixedOps drives inserts, updates and
// deletes and requires the snapshot to equal the acknowledged log exactly
// in the absence of crashes.
func TestMySQLShadowMatchesTableAfterMixedOps(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := testMachine(t, 200+seed)
		d := NewMySQLDriver(seed)
		if err := d.Start(m); err != nil {
			t.Fatal(err)
		}
		RunUntilIdle(m, d, 150, 8000)
		if d.Acked() < 100 {
			t.Fatalf("seed %d: only %d acked", seed, d.Acked())
		}
		if err := d.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		env, err := EnvFor(m, apps.ProgMySQL)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := apps.MySQLSnapshot(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(d.rows) {
			t.Fatalf("seed %d: table %d rows, log %d", seed, len(rows), len(d.rows))
		}
	}
}

// TestDriversSurviveTwoMicroreboots runs each stateful driver through two
// consecutive crashes with verification after each.
func TestDriversSurviveTwoMicroreboots(t *testing.T) {
	for _, mk := range []func() Driver{
		func() Driver { return NewEditorDriver("vi", "vi", 71) },
		func() Driver { return NewMySQLDriver(72) },
		func() Driver { return NewApacheDriver(73) },
	} {
		d := mk()
		t.Run(d.Name(), func(t *testing.T) {
			m := testMachine(t, 400)
			if err := d.Start(m); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 2; round++ {
				RunUntilIdle(m, d, 80, 4000)
				if err := m.K.InjectOops("round crash"); err == nil {
					t.Fatal("no panic")
				}
				out, err := m.HandleFailure()
				if err != nil || out.Result != core.ResultRecovered {
					t.Fatalf("round %d: %v %v", round, out, err)
				}
				if err := d.Reattach(m); err != nil {
					t.Fatal(err)
				}
				RunUntilIdle(m, d, 40, 2500)
				if err := d.Verify(m); err != nil {
					t.Fatalf("round %d verify: %v", round, err)
				}
			}
			if m.Reboots != 2 {
				t.Fatalf("reboots = %d", m.Reboots)
			}
		})
	}
}
