package workload

import (
	"fmt"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/sim"
)

// EditorDriver replays "a sequence of keystrokes that emulated a working
// user" into vi or JOE and verifies the document, undo buffer and terminal
// survive microreboots.
type EditorDriver struct {
	name    string
	program string
	rng     *sim.RNG

	// budget is how many keystrokes the user will type when asked.
	budget int
	// consumed logs every keystroke the editor actually read, in order —
	// the remote progress log.
	consumed []byte
	// dropCandidates indexes keystrokes that were consumed immediately
	// before a kernel crash: each may have been lost before its atomic
	// commit, so verification must accept the log with or without it.
	dropCandidates []int
	termIdx        uint32
}

// NewEditorDriver builds a keystroke workload for the given editor program
// (apps.ProgVi, apps.ProgJoe or apps.ProgJoeUnpatched).
func NewEditorDriver(name, program string, seed int64) *EditorDriver {
	return &EditorDriver{name: name, program: program, rng: sim.NewRNG(seed)}
}

// Name returns the display name.
func (d *EditorDriver) Name() string { return d.name }

// Program returns the registry name.
func (d *EditorDriver) Program() string { return d.program }

// nextKey synthesizes the user's next keystroke: mostly text, with
// occasional newlines, backspaces, undos and saves.
func (d *EditorDriver) nextKey() byte {
	r := d.rng.Float64()
	switch {
	case r < 0.78:
		return byte('a' + d.rng.Intn(26))
	case r < 0.85:
		return '\n'
	case r < 0.91:
		return apps.KeyBackspace
	case r < 0.97:
		return apps.KeyUndo
	default:
		return apps.KeySave
	}
}

// Start launches the editor and connects the keyboard.
func (d *EditorDriver) Start(m *core.Machine) error {
	p, err := m.Start(d.name, d.program)
	if err != nil {
		return err
	}
	d.termIdx = p.PID
	d.attachKeyboard(m)
	return nil
}

// attachKeyboard wires the scripted keystroke source to the terminal.
func (d *EditorDriver) attachKeyboard(m *core.Machine) {
	m.Consoles.AttachInput(d.termIdx, func() (byte, bool) {
		if d.budget <= 0 {
			return 0, false
		}
		d.budget--
		k := d.nextKey()
		d.consumed = append(d.consumed, k)
		return k, true
	})
}

// Reattach re-binds the keyboard after a microreboot and marks the
// keystroke in flight at crash time as possibly lost.
func (d *EditorDriver) Reattach(m *core.Machine) error {
	if n := len(d.consumed); n > 0 {
		d.dropCandidates = append(d.dropCandidates, n-1)
	}
	d.attachKeyboard(m)
	return nil
}

// Pump grants the user n more keystrokes.
func (d *EditorDriver) Pump(m *core.Machine, n int) { d.budget += n }

// Acked counts consumed keystrokes.
func (d *EditorDriver) Acked() int { return len(d.consumed) }

// editorModel is the shadow state the keystroke semantics produce.
type editorModel struct {
	doc   []byte
	undo  [][2]byte
	saves int
}

func (mo *editorModel) apply(key byte) {
	switch key {
	case apps.KeyBackspace:
		if len(mo.doc) > 0 {
			ch := mo.doc[len(mo.doc)-1]
			mo.doc = mo.doc[:len(mo.doc)-1]
			mo.undo = append(mo.undo, [2]byte{2, ch})
		}
	case apps.KeyUndo:
		if len(mo.undo) > 0 {
			e := mo.undo[len(mo.undo)-1]
			mo.undo = mo.undo[:len(mo.undo)-1]
			if e[0] == 1 {
				if len(mo.doc) > 0 {
					mo.doc = mo.doc[:len(mo.doc)-1]
				}
			} else {
				mo.doc = append(mo.doc, e[1])
			}
		}
	case apps.KeySave:
		mo.saves++
	default:
		mo.doc = append(mo.doc, key)
		mo.undo = append(mo.undo, [2]byte{1, key})
	}
}

// replay builds the expected state from the consumed log, skipping the
// indices in drop (keystrokes lost to an uncommitted step at crash time).
func (d *EditorDriver) replay(drop map[int]bool) *editorModel {
	mo := &editorModel{}
	for i, k := range d.consumed {
		if drop[i] {
			continue
		}
		mo.apply(k)
	}
	return mo
}

// Verify compares the editor's memory against the consumed-keystroke log.
// Each crash may have lost the one keystroke in flight at that moment, so
// every subset of the drop candidates is acceptable.
func (d *EditorDriver) Verify(m *core.Machine) error {
	env, err := EnvFor(m, d.program)
	if err != nil {
		return err
	}
	snap, err := apps.SnapshotEditor(env)
	if err != nil {
		return fmt.Errorf("%s: %w", d.name, err)
	}
	cands := d.dropCandidates
	if len(cands) > 4 {
		cands = cands[len(cands)-4:] // bound the subset search
	}
	for mask := 0; mask < 1<<len(cands); mask++ {
		drop := make(map[int]bool)
		for i, idx := range cands {
			if mask&(1<<i) != 0 {
				drop[idx] = true
			}
		}
		mo := d.replay(drop)
		if snap.Doc == string(mo.doc) && int(snap.UndoLen) == len(mo.undo) {
			return nil
		}
	}
	mo := d.replay(nil)
	return fmt.Errorf("%s: document diverged from keystroke log: got %d bytes / undo %d, want %d bytes / undo %d",
		d.name, len(snap.Doc), snap.UndoLen, len(mo.doc), len(mo.undo))
}
