package workload

import (
	"fmt"
	"strings"

	"otherworld/internal/apps"
	"otherworld/internal/core"
	"otherworld/internal/sim"
)

// ShellDriver types commands at the interactive shell of Table 6's first
// row and verifies the command history (and therefore the user's screen)
// survives microreboots.
type ShellDriver struct {
	rng *sim.RNG

	budget   int
	consumed []byte
	// dropCandidates indexes keystrokes possibly lost at each crash.
	dropCandidates []int
	termIdx        uint32
}

// NewShellDriver builds the interactive-shell workload.
func NewShellDriver(seed int64) *ShellDriver {
	return &ShellDriver{rng: sim.NewRNG(seed)}
}

// Name returns the display name.
func (d *ShellDriver) Name() string { return "shell" }

// Program returns the registry name.
func (d *ShellDriver) Program() string { return apps.ProgShell }

// Start launches the shell and connects the keyboard.
func (d *ShellDriver) Start(m *core.Machine) error {
	p, err := m.Start("sh", apps.ProgShell)
	if err != nil {
		return err
	}
	d.termIdx = p.PID
	d.attach(m)
	return nil
}

func (d *ShellDriver) attach(m *core.Machine) {
	m.Consoles.AttachInput(d.termIdx, func() (byte, bool) {
		if d.budget <= 0 {
			return 0, false
		}
		d.budget--
		var k byte
		if d.rng.Float64() < 0.18 {
			k = '\n'
		} else {
			k = byte('a' + d.rng.Intn(26))
		}
		d.consumed = append(d.consumed, k)
		return k, true
	})
}

// Reattach re-binds the keyboard after a microreboot.
func (d *ShellDriver) Reattach(m *core.Machine) error {
	if n := len(d.consumed); n > 0 {
		d.dropCandidates = append(d.dropCandidates, n-1)
	}
	d.attach(m)
	return nil
}

// Pump grants the user n more keystrokes.
func (d *ShellDriver) Pump(m *core.Machine, n int) { d.budget += n }

// Acked counts consumed keystrokes.
func (d *ShellDriver) Acked() int { return len(d.consumed) }

// Verify compares the shell history against the keystroke log, allowing
// each crash's in-flight keystroke to be absent.
func (d *ShellDriver) Verify(m *core.Machine) error {
	env, err := EnvFor(m, apps.ProgShell)
	if err != nil {
		return err
	}
	snap, err := apps.SnapshotShell(env)
	if err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	cands := d.dropCandidates
	if len(cands) > 4 {
		cands = cands[len(cands)-4:]
	}
	for mask := 0; mask < 1<<len(cands); mask++ {
		var b strings.Builder
		drop := make(map[int]bool)
		for i, idx := range cands {
			if mask&(1<<i) != 0 {
				drop[idx] = true
			}
		}
		for i, k := range d.consumed {
			if !drop[i] {
				b.WriteByte(k)
			}
		}
		if snap.History == b.String() {
			return nil
		}
	}
	return fmt.Errorf("shell: history (%d bytes) diverged from keystroke log (%d keys)",
		len(snap.History), len(d.consumed))
}
