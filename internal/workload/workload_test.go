package workload

import (
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/hw"
	"otherworld/internal/kernel"
)

// testHWConfig is the standard small test machine.
func testHWConfig() hw.Config {
	return hw.Config{
		MemoryBytes:     256 << 20,
		NumCPUs:         2,
		TLBEntries:      64,
		WatchdogEnabled: true,
	}
}

func testMachine(t *testing.T, seed int64) *core.Machine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.HW = testHWConfig()
	opts.CrashRegionMB = 16
	opts.Seed = seed
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

// drivers under test, constructed fresh per test.
func allDrivers(seed int64) []Driver {
	return []Driver{
		NewEditorDriver("vi", "vi", seed),
		NewEditorDriver("joe", "joe", seed+1),
		NewMySQLDriver(seed + 2),
		NewApacheDriver(seed + 3),
		NewBLCRDriver(seed + 4),
		NewVolanoDriver(seed + 5),
		NewShellDriver(seed + 6),
	}
}

// TestDriversCleanRun verifies every workload runs and verifies without any
// failure injected.
func TestDriversCleanRun(t *testing.T) {
	for _, d := range allDrivers(100) {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			m := testMachine(t, 7)
			if err := d.Start(m); err != nil {
				t.Fatalf("Start: %v", err)
			}
			res := RunUntilIdle(m, d, 200, 4000)
			if res.Panic != nil {
				t.Fatalf("unexpected panic: %v", res.Panic)
			}
			if d.Acked() == 0 {
				t.Fatal("workload made no progress")
			}
			if err := d.Verify(m); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

// TestDriversSurviveMicroreboot crashes the kernel mid-workload and checks
// each application's state against the remote log after resurrection.
//
// Volano is the deliberate negative case: it holds a socket and registers
// no crash procedure, so per Table 1 its resurrection must fail.
func TestDriversSurviveMicroreboot(t *testing.T) {
	for _, d := range allDrivers(200) {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			m := testMachine(t, 11)
			if err := d.Start(m); err != nil {
				t.Fatalf("Start: %v", err)
			}
			res := RunUntilIdle(m, d, 120, 2500)
			if res.Panic != nil {
				t.Fatalf("unexpected panic: %v", res.Panic)
			}
			ackedBefore := d.Acked()
			if ackedBefore == 0 {
				t.Fatal("no progress before crash")
			}

			if err := m.K.InjectOops("test crash"); err == nil {
				t.Fatal("InjectOops returned nil")
			}
			out, err := m.HandleFailure()
			if err != nil {
				t.Fatalf("HandleFailure: %v", err)
			}
			if out.Result != core.ResultRecovered {
				t.Fatalf("not recovered: %s", out.Transfer.Reason)
			}
			if got := len(out.Report.Procs); got != 1 {
				t.Fatalf("resurrected %d processes, want 1", got)
			}
			pr := out.Report.Procs[0]
			if d.Name() == "Volano" {
				if pr.Err == nil || pr.Missing&kernel.ResSockets == 0 {
					t.Fatalf("Volano should fail resurrection over its socket, got outcome %v missing %v", pr.Outcome, pr.Missing)
				}
				return
			}
			if pr.Err != nil {
				t.Fatalf("resurrection failed: %v (outcome %v)", pr.Err, pr.Outcome)
			}
			if err := d.Reattach(m); err != nil {
				t.Fatalf("Reattach: %v", err)
			}
			res = RunUntilIdle(m, d, 120, 2500)
			if res.Panic != nil {
				t.Fatalf("panic after resurrection: %v", res.Panic)
			}
			if d.Acked() <= ackedBefore {
				t.Fatalf("no progress after resurrection: %d -> %d", ackedBefore, d.Acked())
			}
			if err := d.Verify(m); err != nil {
				t.Fatalf("verify after resurrection: %v", err)
			}
		})
	}
}

// TestJoeUnpatchedDiesOnAbortedRead reproduces the paper's JOE anecdote:
// without the one-line read-retry fix, the editor exits when its console
// read is aborted by the microreboot.
func TestJoeUnpatchedDiesOnAbortedRead(t *testing.T) {
	m := testMachine(t, 13)
	d := NewEditorDriver("joe", "joe-unpatched", 300)
	if err := d.Start(m); err != nil {
		t.Fatalf("Start: %v", err)
	}
	RunUntilIdle(m, d, 60, 1200)
	if d.Acked() == 0 {
		t.Fatal("no progress")
	}

	// Crash while the editor sits inside its console read.
	p := FindProc(m, "joe-unpatched")
	if p == nil {
		t.Fatal("process missing")
	}
	p.Ctx.InSyscall = true
	p.Ctx.SyscallNo = kernel.SysNoTermRead
	if err := m.K.SaveContextToStack(p); err != nil {
		t.Fatalf("save context: %v", err)
	}
	if err := m.K.InjectOops("crash during console read"); err == nil {
		t.Fatal("InjectOops returned nil")
	}
	out, err := m.HandleFailure()
	if err != nil {
		t.Fatalf("HandleFailure: %v", err)
	}
	if out.Result != core.ResultRecovered {
		t.Fatalf("not recovered: %s", out.Transfer.Reason)
	}
	if err := d.Reattach(m); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	m.Run(50)
	if FindProc(m, "joe-unpatched") != nil {
		t.Fatal("unpatched JOE should have exited on the aborted read")
	}

	// The patched JOE survives the same situation (covered by
	// TestDriversSurviveMicroreboot, asserted again here for contrast).
}
