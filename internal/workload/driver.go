// Package workload drives the applications the way the paper's experiments
// do (Section 6): each driver plays the remote client or interactive user,
// logs every acknowledged operation on the "remote computer" (its shadow
// model), reattaches after a microreboot, and verifies the resurrected
// application's state against the log — the check behind Table 5's
// data-corruption column.
package workload

import (
	"fmt"

	"otherworld/internal/core"
	"otherworld/internal/kernel"
)

// Driver is one application workload.
type Driver interface {
	// Name is the display name ("vi", "MySQL", ...).
	Name() string
	// Program is the registry name of the application.
	Program() string
	// Start launches the application on the machine and binds the
	// external world (console keystrokes, network clients).
	Start(m *core.Machine) error
	// Reattach re-binds the external world after a microreboot and
	// retransmits any unacknowledged request, as a real client would.
	Reattach(m *core.Machine) error
	// Pump queues up to n operations of work and kicks the request
	// pipeline if it is idle.
	Pump(m *core.Machine, n int)
	// Acked reports how many operations have been acknowledged.
	Acked() int
	// Verify compares the application's current state against the remote
	// log, tolerating only the single in-flight operation.
	Verify(m *core.Machine) error
}

// DataInvariantChecker is implemented by drivers that can audit the
// on-disk state of their application after a crash — the "data survived"
// column of the Table 5-style report. Verify checks the live process;
// CheckDataInvariants checks the platter.
type DataInvariantChecker interface {
	CheckDataInvariants(m *core.Machine) error
}

// FindProc locates the (live) process running the given program on the
// current kernel. Resurrection and restarts change PIDs, so drivers always
// re-resolve.
func FindProc(m *core.Machine, program string) *kernel.Process {
	for _, p := range m.K.Procs() {
		if p.D.Program == program {
			return p
		}
	}
	return nil
}

// EnvFor builds a user-mode access environment for the driver's process.
func EnvFor(m *core.Machine, program string) (*kernel.Env, error) {
	p := FindProc(m, program)
	if p == nil {
		return nil, fmt.Errorf("workload: no live process for %q", program)
	}
	return &kernel.Env{K: m.K, P: p}, nil
}

// RunUntilIdle pumps n operations and drives the scheduler until the
// machine goes idle, a panic occurs, or the step budget is exhausted. It
// returns the scheduler result.
func RunUntilIdle(m *core.Machine, d Driver, n, maxSteps int) kernel.RunResult {
	d.Pump(m, n)
	return m.Run(maxSteps)
}
