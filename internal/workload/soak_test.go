package workload

import (
	"testing"

	"otherworld/internal/core"
)

// TestFleetSoakFiveMicroreboots drives the full fleet through five
// consecutive microreboots — alternating crash-kernel slots, alternating
// swap partitions, repeated crash-procedure restarts — verifying every
// application after every recovery. This is the long-haul stability story:
// the machine keeps absorbing kernel failures indefinitely.
func TestFleetSoakFiveMicroreboots(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	m := testMachine(t, 4242)
	fleet := []Driver{
		NewEditorDriver("vi", "vi", 1),
		NewMySQLDriver(2),
		NewApacheDriver(3),
		NewBLCRDriver(4),
	}
	for _, d := range fleet {
		if err := d.Start(m); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
	for round := 0; round < 5; round++ {
		for _, d := range fleet {
			d.Pump(m, 50)
		}
		if res := m.Run(4000); res.Panic != nil {
			t.Fatalf("round %d: unexpected panic %v", round, res.Panic)
		}
		if err := m.K.InjectOops("soak crash"); err == nil {
			t.Fatal("no panic")
		}
		out, err := m.HandleFailure()
		if err != nil || out.Result != core.ResultRecovered {
			t.Fatalf("round %d: recover %v %v", round, out, err)
		}
		for _, pr := range out.Report.Procs {
			if pr.Err != nil {
				t.Fatalf("round %d: %s: %v", round, pr.Candidate.Name, pr.Err)
			}
		}
		for _, d := range fleet {
			if err := d.Reattach(m); err != nil {
				t.Fatalf("round %d: %s reattach: %v", round, d.Name(), err)
			}
		}
		for _, d := range fleet {
			d.Pump(m, 20)
		}
		if res := m.Run(2500); res.Panic != nil {
			t.Fatalf("round %d: post-recovery panic %v", round, res.Panic)
		}
		for _, d := range fleet {
			if err := d.Verify(m); err != nil {
				t.Fatalf("round %d: %s verify: %v", round, d.Name(), err)
			}
		}
	}
	if m.Reboots != 5 {
		t.Fatalf("reboots = %d", m.Reboots)
	}
	// The kernel generation advanced each time.
	if m.K.Globals.BootCount != 5 {
		t.Fatalf("boot count = %d", m.K.Globals.BootCount)
	}
}
