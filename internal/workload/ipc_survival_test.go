package workload

import (
	"testing"

	"otherworld/internal/core"
	"otherworld/internal/kernel"
	"otherworld/internal/resurrect"
)

// TestVolanoSurvivesWithIPCResurrection upgrades the Table 1 negative case:
// with the Section 7 socket-resurrection extension enabled, the chat server
// continues across a microreboot without any crash procedure, and keeps its
// fan-out guarantees.
func TestVolanoSurvivesWithIPCResurrection(t *testing.T) {
	opts := core.DefaultOptions()
	opts.HW = testHWConfig()
	opts.CrashRegionMB = 16
	opts.Seed = 31
	opts.ResurrectIPC = true
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	d := NewVolanoDriver(9)
	if err := d.Start(m); err != nil {
		t.Fatal(err)
	}
	RunUntilIdle(m, d, 60, 3000)
	before := d.Acked()
	if before == 0 {
		t.Fatal("no progress")
	}

	_ = m.K.InjectOops("x")
	out, err := m.HandleFailure()
	if err != nil || out.Result != core.ResultRecovered {
		t.Fatalf("recover: %v %v", out, err)
	}
	pr := out.Report.Procs[0]
	if pr.Outcome != resurrect.OutcomeContinued {
		t.Fatalf("outcome %v (%v), missing=%v", pr.Outcome, pr.Err, pr.Missing)
	}
	if pr.Missing&kernel.ResSockets != 0 {
		t.Fatal("socket should have been resurrected")
	}

	if err := d.Reattach(m); err != nil {
		t.Fatal(err)
	}
	RunUntilIdle(m, d, 60, 3000)
	if d.Acked() <= before {
		t.Fatalf("no progress after resurrection: %d -> %d", before, d.Acked())
	}
	if err := d.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
